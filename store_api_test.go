package envred_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	envred "repro"
	"repro/internal/core"
)

func countStoreSolves(f func()) int {
	var n int64
	restore := core.SetEigensolveTestHook(func(int) { atomic.AddInt64(&n, 1) })
	defer restore()
	f()
	return int(atomic.LoadInt64(&n))
}

// Two Sessions — two "processes" — sharing one store: the second orders
// the same matrix content (a fresh Graph instance, so tier 1 cannot hit)
// with zero eigensolves and a byte-identical permutation.
func TestSessionStoreWarmAcrossSessions(t *testing.T) {
	st, err := envred.OpenStore("mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()

	var coldPerm envred.Perm
	cold := countStoreSolves(func() {
		sess := envred.NewSession(envred.SessionOptions{Seed: 11, Store: st})
		res, err := sess.Order(ctx, envred.Grid(12, 9), envred.AlgSpectral)
		if err != nil {
			t.Fatal(err)
		}
		coldPerm = res.Perm
	})
	if cold == 0 {
		t.Fatal("cold session performed no eigensolves")
	}

	var warmPerm envred.Perm
	warm := countStoreSolves(func() {
		sess := envred.NewSession(envred.SessionOptions{Seed: 11, Store: st})
		res, err := sess.Order(ctx, envred.Grid(12, 9), envred.AlgSpectral)
		if err != nil {
			t.Fatal(err)
		}
		warmPerm = res.Perm
	})
	if warm != 0 {
		t.Errorf("warm session performed %d eigensolves, want 0", warm)
	}
	if !coldPerm.Equal(warmPerm) {
		t.Error("warm session's permutation differs from the cold one")
	}
}

// The store also serves Session.Fiedler, and a store-backed session is
// created even with tier 1 explicitly disabled.
func TestSessionStoreFiedlerAndDisabledCache(t *testing.T) {
	st, err := envred.OpenStore("fs://" + t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()

	run := func() ([]float64, int) {
		var x []float64
		n := countStoreSolves(func() {
			sess := envred.NewSession(envred.SessionOptions{Seed: 4, CacheGraphs: -1, Store: st})
			var err error
			x, _, err = sess.Fiedler(ctx, envred.Grid(10, 10))
			if err != nil {
				t.Fatal(err)
			}
		})
		return x, n
	}
	x1, n1 := run()
	if n1 == 0 {
		t.Fatal("cold Fiedler performed no eigensolves")
	}
	x2, n2 := run()
	if n2 != 0 {
		t.Errorf("warm Fiedler performed %d eigensolves, want 0", n2)
	}
	if len(x1) != len(x2) {
		t.Fatal("Fiedler vector length changed")
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("store-served Fiedler vector differs at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

// StoreKeyFor matches what the Session writes: a caller can probe the
// store out of band for exactly the entry a session run produced.
func TestStoreKeyForMatchesSessionWrites(t *testing.T) {
	st, err := envred.OpenStore("mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := envred.Grid(9, 9)
	key := envred.StoreKeyFor(g, envred.SpectralOptions{Seed: 2})
	if _, err := st.Get(key); !errors.Is(err, envred.ErrStoreNotFound) {
		t.Fatalf("probe before run: err=%v, want ErrStoreNotFound", err)
	}
	sess := envred.NewSession(envred.SessionOptions{Seed: 2, Store: st})
	if _, err := sess.Order(context.Background(), g, envred.AlgSpectral); err != nil {
		t.Fatal(err)
	}
	rec, err := st.Get(key)
	if err != nil {
		t.Fatalf("probe after run: %v", err)
	}
	if rec.N != g.N() || !rec.HasFiedler {
		t.Errorf("stored record inconsistent: N=%d HasFiedler=%v", rec.N, rec.HasFiedler)
	}
}
