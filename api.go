package envred

import (
	"context"
	"io"

	"repro/internal/chol"
	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/iccg"
	"repro/internal/laplacian"
	"repro/internal/mm"
	"repro/internal/multilevel"
	"repro/internal/order"
	"repro/internal/perm"
	"repro/internal/pipeline"
	"repro/internal/solver"
	"repro/internal/spy"
)

// Graph is an immutable undirected graph in CSR form — the adjacency
// structure of a sparse symmetric matrix with nonzero diagonal.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// Perm is an ordering in new→old convention: Perm[k] is the original index
// placed k-th.
type Perm = perm.Perm

// EnvelopeStats carries the envelope parameters of §2.1 of the paper.
type EnvelopeStats = envelope.Stats

// SpectralOptions configures the spectral ordering (eigensolver choice,
// tolerances, seed).
type SpectralOptions = core.Options

// SpectralMethod selects the Fiedler eigensolver.
type SpectralMethod = core.Method

// Eigensolver choices for SpectralOptions.Method.
const (
	MethodAuto       = core.MethodAuto
	MethodLanczos    = core.MethodLanczos
	MethodMultilevel = core.MethodMultilevel
)

// SpectralInfo reports diagnostics of a spectral ordering run (λ2,
// residual, chosen direction, solver used, full solver statistics).
type SpectralInfo = core.Info

// SolveStats is the uniform eigensolver telemetry of the unified solver
// engine: scheme, matvecs, RQI iterations, Jacobi sweeps, hierarchy depth,
// coarsest size, residual and convergence. It appears in
// SpectralInfo.Solve, AutoReport.Solve and per spectral candidate in
// AutoReport component reports.
type SolveStats = solver.Stats

// Graph construction --------------------------------------------------------

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an undirected edge list; duplicates and
// self-loops are dropped.
func FromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// Standard families (useful as quick fixtures; closed-form Fiedler values
// are documented on each).
var (
	Path        = graph.Path
	Cycle       = graph.Cycle
	Complete    = graph.Complete
	Star        = graph.Star
	Grid        = graph.Grid
	Grid9       = graph.Grid9
	Grid3D      = graph.Grid3D
	RandomGraph = graph.Random
)

// Orderings ------------------------------------------------------------------

// Spectral computes the paper's Algorithm 1: sort the Fiedler vector in
// both directions and keep the permutation with the smaller envelope.
//
// It is a thin shim over the lazily-initialized DefaultSession (byte-
// identical output); context-first callers use Session.Order / Session.Do
// with the SPECTRAL algorithm instead.
func Spectral(g *Graph, opt SpectralOptions) (Perm, SpectralInfo, error) {
	//envlint:ignore ctxflow legacy ctx-free shim; context-first callers use Session.Order
	res, err := DefaultSession().do(context.Background(), g, AlgSpectral, OrderRequest{Seed: opt.Seed, Spectral: opt}, false)
	return res.Perm, infoOf(res), err
}

// infoOf unpacks the spectral diagnostics of a Result for the historical
// (Perm, SpectralInfo, error) return shape — populated even on error, as
// core reports the work a failed solve burned.
func infoOf(res Result) SpectralInfo {
	if res.Info != nil {
		return *res.Info
	}
	return SpectralInfo{}
}

// SpectralSloan runs the spectral ordering followed by Sloan-style local
// refinement using the spectral positions as the global priority (the
// hybrid the paper's §4 proposes as future work). Never worse in envelope
// than Spectral.
func SpectralSloan(g *Graph, opt SpectralOptions) (Perm, SpectralInfo, error) {
	//envlint:ignore ctxflow legacy ctx-free shim; context-first callers use Session.Order
	res, err := DefaultSession().do(context.Background(), g, AlgSpectralSloan, OrderRequest{Seed: opt.Seed, Spectral: opt}, false)
	return res.Perm, infoOf(res), err
}

// WeightedSpectral is Algorithm 1 on the weighted Laplacian D_w − W with
// weights |a_uv|: when matrix values are available (ReadMatrixMarketWeighted),
// strongly coupled rows are placed adjacently. The weight function must be
// symmetric and positive on edges.
func WeightedSpectral(g *Graph, weight func(u, v int) float64, opt SpectralOptions) (Perm, SpectralInfo, error) {
	//envlint:ignore ctxflow legacy ctx-free shim; context-first callers use Session.Order
	res, err := DefaultSession().do(context.Background(), g, AlgWeighted,
		OrderRequest{Seed: opt.Seed, Spectral: opt, Weight: weight}, false)
	return res.Perm, infoOf(res), err
}

// Classical orderings benchmarked by the paper, plus King and Sloan.
var (
	RCM          = order.RCM
	CuthillMcKee = order.CuthillMcKee
	GPS          = order.GPS
	GK           = order.GK
	King         = order.King
	Sloan        = order.Sloan
)

// Portfolio engine ------------------------------------------------------------

// AutoOptions configures the parallel portfolio ordering engine: the
// algorithm portfolio raced per connected component, the worker-pool width,
// the seed, an optional time budget, and an optional context for
// cancellation.
type AutoOptions = pipeline.Options

// AutoReport describes an Auto run: the winning algorithm and the losing
// candidates per component, win counts per algorithm, and the envelope
// parameters of the stitched ordering.
type AutoReport = pipeline.Report

// Canonical names of the built-in ordering algorithms — valid in
// AutoOptions.Portfolio and Session.Order (the registry accepts any
// case). Algorithms() lists these plus user registrations.
const (
	AlgRCM           = pipeline.AlgRCM
	AlgCM            = pipeline.AlgCM
	AlgGPS           = pipeline.AlgGPS
	AlgGK            = pipeline.AlgGK
	AlgKing          = pipeline.AlgKing
	AlgSloan         = pipeline.AlgSloan
	AlgSpectral      = pipeline.AlgSpectral
	AlgSpectralSloan = pipeline.AlgSpectralSloan
	AlgWeighted      = pipeline.AlgWeighted
)

// DefaultPortfolio returns the default Auto contender set.
func DefaultPortfolio() []string { return pipeline.DefaultPortfolio() }

// Auto splits g into connected components, orders every component
// concurrently while racing a portfolio of ordering algorithms, keeps the
// candidate with the smallest envelope per component (ties: bandwidth, then
// work), and stitches the winners into one global permutation. The result
// is deterministic for a fixed seed regardless of AutoOptions.Parallelism,
// unless a Budget is set: budget expiry skips unstarted candidates and
// cancels in-flight ones by wall clock, so budgeted runs trade determinism
// for latency (the first portfolio entry always runs to completion, so the
// result stays valid).
//
// Prefer Auto over Spectral when the input may be disconnected, when no
// single algorithm is known to dominate on the workload, or when spare
// cores are available to hide the portfolio's cost.
//
// Auto is a thin shim over the lazily-initialized DefaultSession (byte-
// identical output, plus the session's cross-call artifact cache);
// context-first callers use Session.Auto / Session.AutoWith.
func Auto(g *Graph, opt AutoOptions) (Perm, AutoReport, error) {
	res, err := DefaultSession().AutoWith(opt.Context, g, opt)
	rep := AutoReport{}
	if res.Report != nil {
		rep = *res.Report
	}
	return res.Perm, rep, err
}

// Identity returns the identity ordering (the matrix as given).
func Identity(n int) Perm { return perm.Identity(n) }

// RandomPerm returns a seeded uniformly random ordering.
func RandomPerm(n int, seed int64) Perm { return perm.Random(n, seed) }

// Fiedler computes the Fiedler vector and value (λ2) of a connected graph
// using the solver selected by opt (Lanczos or multilevel). It is a shim
// over the DefaultSession: repeated calls on the same graph are served
// from the session's artifact cache. Context-first callers use
// Session.Fiedler.
func Fiedler(g *Graph, opt SpectralOptions) (vec []float64, lambda2 float64, err error) {
	//envlint:ignore ctxflow legacy ctx-free shim; context-first callers use Session.Fiedler
	x, st, err := DefaultSession().fiedler(context.Background(), g, opt)
	return x, st.Lambda, err
}

// MultilevelOptions configures the §3 multilevel eigensolver when used
// through SpectralOptions.Multilevel.
type MultilevelOptions = multilevel.Options

// Envelope measurement -------------------------------------------------------

// Stats computes every envelope parameter of g under the ordering.
func Stats(g *Graph, p Perm) EnvelopeStats { return envelope.Compute(g, p) }

// Esize computes only the envelope size.
func Esize(g *Graph, p Perm) int64 { return envelope.Esize(g, p) }

// Bandwidth computes only the bandwidth.
func Bandwidth(g *Graph, p Perm) int { return envelope.Bandwidth(g, p) }

// Frontwidths returns the wavefront profile |adj(V_j)|; its sum equals
// Esize (§2.4).
func Frontwidths(g *Graph, p Perm) []int32 { return envelope.Frontwidths(g, p) }

// EnvelopeBounds evaluates the Theorem 2.2-style eigenvalue bounds on the
// minimum envelope size and work, given λ2 and an upper bound on λn
// (use GershgorinBound).
func EnvelopeBounds(n, maxDeg int, lambda2, lambdaN float64) laplacian.Bounds {
	return laplacian.Theorem22(n, maxDeg, lambda2, lambdaN)
}

// GershgorinBound returns 2·Δ ≥ λn for the graph's Laplacian.
func GershgorinBound(g *Graph) float64 { return laplacian.New(g).GershgorinBound() }

// Envelope Cholesky ----------------------------------------------------------

// EnvelopeMatrix is a symmetric matrix held in envelope (variable-band)
// storage under a fixed ordering.
type EnvelopeMatrix = chol.Matrix

// CholFactor is an envelope Cholesky factor.
type CholFactor = chol.Factor

// ValueFn supplies matrix values by original vertex labels.
type ValueFn = chol.ValueFn

// NewEnvelopeMatrix assembles PᵀAP in envelope storage.
func NewEnvelopeMatrix(g *Graph, p Perm, vals ValueFn) (*EnvelopeMatrix, error) {
	return chol.NewMatrix(g, p, vals)
}

// Factorize computes the envelope Cholesky factorization in place.
func Factorize(m *EnvelopeMatrix) (*CholFactor, error) { return chol.Factorize(m) }

// LDLFactor is a root-free envelope LDLᵀ factorization (works for
// symmetric indefinite matrices with nonsingular leading minors and
// exposes the matrix inertia).
type LDLFactor = chol.LDLFactor

// FactorizeLDL computes the envelope LDLᵀ factorization in place.
func FactorizeLDL(m *EnvelopeMatrix) (*LDLFactor, error) { return chol.FactorizeLDL(m) }

// LaplacianPlusIdentity is the SPD model matrix L(G)+I with the graph's
// pattern — handy for end-to-end solve demos and benchmarks.
func LaplacianPlusIdentity(g *Graph) ValueFn { return chol.LaplacianPlusIdentity(g) }

// Incomplete factorization / PCG ---------------------------------------------

// SparseMatrix is a symmetric matrix in sorted CSR form under a fixed
// ordering — the representation IC(0) factors without fill.
type SparseMatrix = iccg.SparseSym

// IC0Factor is a zero-fill incomplete Cholesky preconditioner.
type IC0Factor = iccg.IC0

// IC0Options configures FactorizeIC0 (diagonal shift and breakdown
// retries).
type IC0Options = iccg.IC0Options

// PCGOptions configures the preconditioned conjugate gradient solver.
type PCGOptions = iccg.PCGOptions

// PCGResult reports a PCG solve.
type PCGResult = iccg.PCGResult

// NewSparseMatrix assembles PᵀAP in sorted CSR form.
func NewSparseMatrix(g *Graph, p Perm, vals ValueFn) (*SparseMatrix, error) {
	return iccg.NewSparseSym(g, p, vals)
}

// FactorizeIC0 computes a zero-fill incomplete Cholesky preconditioner.
// Its quality — and hence the PCG iteration count — depends on the
// ordering, which is the second use the paper's introduction gives for
// envelope-reducing orderings.
func FactorizeIC0(m *SparseMatrix, opt IC0Options) (*IC0Factor, error) {
	return iccg.FactorizeIC0(m, opt)
}

// PCG runs (preconditioned) conjugate gradients on A·x = b; pass pre=nil
// for plain CG.
func PCG(A *SparseMatrix, pre *IC0Factor, b, x []float64, opt PCGOptions) PCGResult {
	return iccg.PCG(A, pre, b, x, opt)
}

// I/O and visualization ------------------------------------------------------

// ReadMatrixMarket parses a Matrix Market coordinate file into the pattern
// graph of the (symmetrized) matrix.
func ReadMatrixMarket(r io.Reader) (*Graph, error) { return mm.ReadGraph(r) }

// ReadMatrixMarketWeighted additionally keeps entry magnitudes, returning
// a symmetric positive weight function for WeightedSpectral.
func ReadMatrixMarketWeighted(r io.Reader) (*Graph, func(u, v int) float64, error) {
	return mm.ReadWeighted(r)
}

// ReadHarwellBoeing parses a matrix in the Harwell–Boeing exchange format —
// the fixed-column FORTRAN format the paper's Boeing–Harwell test matrices
// were distributed in — returning the pattern graph and entry-magnitude
// weights (unit for pattern matrices).
func ReadHarwellBoeing(r io.Reader) (*Graph, func(u, v int) float64, error) {
	return mm.ReadHarwellBoeing(r)
}

// WriteMatrixMarket writes the graph's pattern (lower triangle + unit
// diagonal) as a Matrix Market symmetric pattern file.
func WriteMatrixMarket(w io.Writer, g *Graph) error { return mm.WriteGraph(w, g) }

// SpyASCII renders a size×size ASCII spy plot of the matrix pattern under
// the ordering (Figures 4.1–4.5 in terminal form).
func SpyASCII(g *Graph, p Perm, size int) string {
	return spy.Rasterize(g, p, size).ASCII()
}

// SpyPGM writes a size×size PGM spy plot.
func SpyPGM(w io.Writer, g *Graph, p Perm, size int) error {
	return spy.Rasterize(g, p, size).WritePGM(w)
}

// Test problems --------------------------------------------------------------

// Problem is a generated stand-in for one of the paper's test matrices.
type Problem = gen.Problem

// ProblemSpec describes a named problem of the paper's tables.
type ProblemSpec = gen.Spec

// Problems returns the specs of all 18 problems of Tables 4.1–4.3 in table
// order.
func Problems() []ProblemSpec { return gen.Specs() }

// ProblemByName looks up one problem spec (e.g. "BARTH4").
func ProblemByName(name string) (ProblemSpec, bool) { return gen.ByName(name) }
