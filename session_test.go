package envred_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	envred "repro"
	"repro/internal/core"
	"repro/internal/lanczos"
	"repro/internal/laplacian"
	"repro/internal/linalg"
	"repro/internal/pipeline"
)

// lanczosUnreachable keeps the solver restarting until a hook fires.
func lanczosUnreachable(maxBasis int) lanczos.Options {
	return lanczos.Options{Tol: 1e-300, MaxBasis: maxBasis, MaxRestarts: 1000}
}

// mixedGraph builds a disconnected input with components of several
// characters — the shim-equivalence and concurrency workload.
func mixedGraph() *envred.Graph {
	parts := []*envred.Graph{
		envred.Grid(11, 7),
		envred.Path(50),
		envred.Cycle(21),
		envred.FromEdges(2, [][2]int{{0, 1}}),
		envred.FromEdges(1, nil),
	}
	total := 0
	for _, p := range parts {
		total += p.N()
	}
	b := envred.NewBuilder(total)
	off := 0
	for _, p := range parts {
		for _, e := range p.Edges() {
			b.AddEdge(off+e[0], off+e[1])
		}
		off += p.N()
	}
	return b.Build()
}

// The shim-equivalence golden test: the historical top-level functions,
// now thin shims over the default Session, must stay byte-identical to
// the direct internal paths they used to call, and to explicit Session
// usage — for fixed seeds, disconnected input included.
func TestShimEquivalenceGolden(t *testing.T) {
	g := mixedGraph()
	ctx := context.Background()
	for _, seed := range []int64{1, 5} {
		opt := envred.SpectralOptions{Seed: seed}

		wantSpectral, wantInfo, err := core.Spectral(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		gotSpectral, gotInfo, err := envred.Spectral(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !gotSpectral.Equal(wantSpectral) {
			t.Fatalf("seed %d: Spectral shim differs from core.Spectral", seed)
		}
		if gotInfo != wantInfo {
			t.Fatalf("seed %d: Spectral shim info differs:\n%+v\n%+v", seed, gotInfo, wantInfo)
		}
		sess := envred.NewSession(envred.SessionOptions{Seed: seed})
		res, err := sess.Order(ctx, g, envred.AlgSpectral)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Perm.Equal(wantSpectral) {
			t.Fatalf("seed %d: Session.Order(SPECTRAL) differs from core.Spectral", seed)
		}
		if res.Stats != envred.Stats(g, wantSpectral) {
			t.Fatalf("seed %d: Session result stats wrong", seed)
		}

		wantHybrid, _, err := core.SpectralSloan(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		gotHybrid, _, err := envred.SpectralSloan(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !gotHybrid.Equal(wantHybrid) {
			t.Fatalf("seed %d: SpectralSloan shim differs from core.SpectralSloan", seed)
		}

		aopt := envred.AutoOptions{Seed: seed, Parallelism: 4}
		wantAuto, wantRep, err := pipeline.Auto(g, aopt)
		if err != nil {
			t.Fatal(err)
		}
		gotAuto, gotRep, err := envred.Auto(g, aopt)
		if err != nil {
			t.Fatal(err)
		}
		if !gotAuto.Equal(wantAuto) {
			t.Fatalf("seed %d: Auto shim differs from pipeline.Auto", seed)
		}
		if gotRep.Stats != wantRep.Stats || len(gotRep.Components) != len(wantRep.Components) {
			t.Fatalf("seed %d: Auto shim report differs", seed)
		}
		sres, err := sess.AutoWith(ctx, g, aopt)
		if err != nil {
			t.Fatal(err)
		}
		if !sres.Perm.Equal(wantAuto) {
			t.Fatalf("seed %d: Session.AutoWith differs from pipeline.Auto", seed)
		}

		// Classical orderings: Session.Order vs the historical top-level
		// functions.
		classics := map[string]envred.Perm{
			envred.AlgRCM:   envred.RCM(g),
			envred.AlgCM:    envred.CuthillMcKee(g),
			envred.AlgGPS:   envred.GPS(g),
			envred.AlgGK:    envred.GK(g),
			envred.AlgKing:  envred.King(g),
			envred.AlgSloan: envred.Sloan(g),
		}
		for alg, want := range classics {
			res, err := sess.Order(ctx, g, alg)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if !res.Perm.Equal(want) {
				t.Fatalf("seed %d: Session.Order(%s) differs from the top-level function", seed, alg)
			}
		}

		// Weighted spectral: shim vs direct core path.
		weight := func(u, v int) float64 { return 1 + float64((u*3+v)%5) }
		wantW, _, err := core.WeightedSpectral(ctx, g, weight, opt)
		if err != nil {
			t.Fatal(err)
		}
		gotW, _, err := envred.WeightedSpectral(g, weight, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !gotW.Equal(wantW) {
			t.Fatalf("seed %d: WeightedSpectral shim differs from core path", seed)
		}
		resW, err := sess.OrderWeighted(ctx, g, envred.AlgWeighted, weight)
		if err != nil {
			t.Fatal(err)
		}
		if !resW.Perm.Equal(wantW) {
			t.Fatalf("seed %d: Session.OrderWeighted differs from core path", seed)
		}
	}
}

// One Session shared by many goroutines: every call must return the same
// (deterministic) result its algorithm returns alone. Run under -race this
// also exercises the cache and artifact locking.
func TestSessionConcurrentOrder(t *testing.T) {
	g := mixedGraph()
	sess := envred.NewSession(envred.SessionOptions{Seed: 9})
	ctx := context.Background()
	algs := []string{envred.AlgRCM, envred.AlgSloan, envred.AlgSpectral, envred.AlgSpectralSloan, envred.AlgGK}
	want := map[string]envred.Perm{}
	for _, alg := range algs {
		res, err := sess.Order(ctx, g, alg)
		if err != nil {
			t.Fatal(err)
		}
		want[alg] = res.Perm
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				alg := algs[(w+i)%len(algs)]
				res, err := sess.Order(ctx, g, alg)
				if err != nil {
					errc <- err
					return
				}
				if !res.Perm.Equal(want[alg]) {
					errc <- errors.New(alg + ": concurrent result differs from serial result")
					return
				}
				if _, err := sess.Auto(ctx, g); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// A Session's artifact cache carries eigensolves across calls: the second
// Auto on the same graph re-solves nothing and returns the identical
// permutation.
func TestSessionCachesEigensolvesAcrossCalls(t *testing.T) {
	g := mixedGraph()
	sess := envred.NewSession(envred.SessionOptions{Seed: 3})
	ctx := context.Background()
	count := func(f func()) int {
		var n int64
		restore := core.SetEigensolveTestHook(func(int) { atomic.AddInt64(&n, 1) })
		defer restore()
		f()
		return int(atomic.LoadInt64(&n))
	}
	var first, second envred.Perm
	s1 := count(func() {
		res, err := sess.Auto(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		first = res.Perm
	})
	s2 := count(func() {
		res, err := sess.Auto(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		second = res.Perm
	})
	if s1 == 0 {
		t.Fatal("first Auto performed no eigensolves")
	}
	if s2 != 0 {
		t.Fatalf("second Auto repeated %d eigensolves despite the session cache", s2)
	}
	if !first.Equal(second) {
		t.Fatal("cached Auto differs from fresh Auto")
	}

	// Session.Fiedler is cached the same way (connected graph).
	cg := envred.Grid(15, 11)
	s3 := count(func() {
		if _, _, err := sess.Fiedler(ctx, cg); err != nil {
			t.Fatal(err)
		}
	})
	s4 := count(func() {
		if _, _, err := sess.Fiedler(ctx, cg); err != nil {
			t.Fatal(err)
		}
	})
	if s3 != 1 || s4 != 0 {
		t.Fatalf("Session.Fiedler solves: first=%d second=%d, want 1 then 0", s3, s4)
	}

	// CacheGraphs < 0 disables caching.
	nocache := envred.NewSession(envred.SessionOptions{Seed: 3, CacheGraphs: -1})
	n1 := count(func() {
		if _, err := nocache.Auto(ctx, g); err != nil {
			t.Fatal(err)
		}
	})
	n2 := count(func() {
		if _, err := nocache.Auto(ctx, g); err != nil {
			t.Fatal(err)
		}
	})
	if n1 == 0 || n2 != n1 {
		t.Fatalf("cache-disabled session should re-solve every run: %d then %d", n1, n2)
	}
}

// cancelOp cancels a context after a fixed number of matvecs — the hooked
// operator of the Session cancellation acceptance test.
type cancelOp struct {
	laplacian.Interface
	applies  int32
	cancelAt int32
	cancel   context.CancelFunc
}

func (c *cancelOp) hit() {
	if atomic.AddInt32(&c.applies, 1) == c.cancelAt {
		c.cancel()
	}
}

func (c *cancelOp) Apply(x, y []float64) {
	c.hit()
	c.Interface.Apply(x, y)
}

func (c *cancelOp) ApplyAxpy(x, y []float64, beta float64, z []float64) {
	c.hit()
	c.Interface.ApplyAxpy(x, y, beta, z)
}

var _ linalg.AxpyApplier = (*cancelOp)(nil)

// Cancelling a Session.Order mid-eigensolve returns within one restart
// iteration: the hooked operator cancels after a fixed matvec count and
// the solve must stop at the next restart boundary.
func TestSessionOrderCancelMidEigensolve(t *testing.T) {
	g := envred.Grid(30, 20)
	ctx, cancel := context.WithCancel(context.Background())
	const maxBasis = 24
	op := &cancelOp{Interface: laplacian.New(g), cancelAt: maxBasis + 5, cancel: cancel}
	sess := envred.NewSession(envred.SessionOptions{})
	_, err := sess.Do(ctx, g, envred.AlgSpectral, envred.OrderRequest{
		Seed: 1,
		Spectral: envred.SpectralOptions{
			Seed:     1,
			Method:   envred.MethodLanczos,
			Operator: op,
			Lanczos:  lanczosUnreachable(maxBasis),
		},
	})
	if err == nil {
		t.Fatal("cancelled Session.Order reported success")
	}
	var ce *envred.ErrCancelled
	if !errors.As(err, &ce) {
		t.Fatalf("err %v (%T) is not *envred.ErrCancelled", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not unwrap to context.Canceled", err)
	}
	if ce.Vector == nil {
		t.Fatal("no best-so-far fallback in the cancellation error")
	}
	applied := atomic.LoadInt32(&op.applies)
	if limit := op.cancelAt + maxBasis + 2; applied > limit {
		t.Fatalf("solve ran %d applies after cancellation at %d (limit %d) — not within one restart",
			applied, op.cancelAt, limit)
	}
}

// The artifact-backed connected-graph path of Session.Do must stay
// field-identical to the historical core path — permutation AND spectral
// diagnostics — and must hand out copies, never the cache's own slices.
func TestSessionConnectedCachePathEquivalence(t *testing.T) {
	g := envred.Grid(17, 13) // connected: Session.Do attaches whole-graph artifacts
	ctx := context.Background()
	opt := envred.SpectralOptions{Seed: 11}

	wantP, wantInfo, err := core.Spectral(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotP, gotInfo, err := envred.Spectral(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !gotP.Equal(wantP) {
		t.Fatal("cached connected Spectral shim differs from core.Spectral")
	}
	if gotInfo != wantInfo {
		t.Fatalf("cached connected Spectral info differs:\n got %+v\nwant %+v", gotInfo, wantInfo)
	}
	wantH, wantHInfo, err := core.SpectralSloan(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotH, gotHInfo, err := envred.SpectralSloan(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !gotH.Equal(wantH) || gotHInfo != wantHInfo {
		t.Fatal("cached connected SpectralSloan shim differs from core path")
	}
	sess := envred.NewSession(envred.SessionOptions{Seed: 11})
	for alg, want := range map[string]envred.Perm{
		envred.AlgRCM:   envred.RCM(g),
		envred.AlgGK:    envred.GK(g),
		envred.AlgSloan: envred.Sloan(g),
		envred.AlgKing:  envred.King(g),
	} {
		res, err := sess.Order(ctx, g, alg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !res.Perm.Equal(want) {
			t.Fatalf("cached connected Session.Order(%s) differs from the top-level function", alg)
		}
	}

	// Mutating a returned Perm must not corrupt the cache.
	first, err := sess.Order(ctx, g, envred.AlgSpectral)
	if err != nil {
		t.Fatal(err)
	}
	first.Perm[0], first.Perm[1] = first.Perm[1], first.Perm[0]
	again, err := sess.Order(ctx, g, envred.AlgSpectral)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Perm.Equal(wantP) {
		t.Fatal("mutating a returned Perm corrupted the session cache")
	}

	// Mutating a returned Fiedler vector must not corrupt the cache either.
	x1, st1, err := sess.Fiedler(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	x1[0] = 1e9
	x2, st2, err := sess.Fiedler(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if x2[0] == 1e9 || st1.Lambda != st2.Lambda {
		t.Fatal("mutating a returned Fiedler vector corrupted the session cache")
	}
}

// Repeated and mixed Session.Order calls on a connected graph share one
// eigensolve through the session's whole-graph artifacts.
func TestSessionOrderSharesEigensolveOnConnectedGraph(t *testing.T) {
	g := envred.Grid(14, 12)
	sess := envred.NewSession(envred.SessionOptions{Seed: 6})
	ctx := context.Background()
	var solves int64
	restore := core.SetEigensolveTestHook(func(int) { atomic.AddInt64(&solves, 1) })
	defer restore()
	for _, alg := range []string{envred.AlgSpectral, envred.AlgSpectralSloan, envred.AlgSpectral, envred.AlgRCM} {
		if _, err := sess.Order(ctx, g, alg); err != nil {
			t.Fatal(err)
		}
	}
	if n := atomic.LoadInt64(&solves); n != 1 {
		t.Fatalf("%d eigensolves across SPECTRAL, SPECTRAL+SLOAN, SPECTRAL, RCM — the session cache should share one", n)
	}
}

// On a connected graph the whole-graph artifacts Session.Order memoizes
// and the spanning-component artifacts Auto resolves are the same object,
// so mixing the two entry points still costs exactly one eigensolve.
func TestSessionOrderThenAutoSharesEigensolve(t *testing.T) {
	g := envred.Grid(14, 12)
	sess := envred.NewSession(envred.SessionOptions{Seed: 6})
	ctx := context.Background()
	var solves int64
	restore := core.SetEigensolveTestHook(func(int) { atomic.AddInt64(&solves, 1) })
	defer restore()
	want, err := sess.Order(ctx, g, envred.AlgSpectral)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := sess.Auto(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt64(&solves); n != 1 {
		t.Fatalf("%d eigensolves across Order(SPECTRAL)+Auto — the cache should share one", n)
	}
	// And the shared artifacts change nothing about the result: the
	// portfolio's SPECTRAL candidate scored the same ordering.
	uncached, err := envred.NewSession(envred.SessionOptions{Seed: 6, CacheGraphs: -1}).Auto(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Perm.Equal(uncached.Perm) {
		t.Fatal("artifact sharing with Session.Order changed the Auto result")
	}
	_ = want
}

// A spectral-free portfolio must report zero eigensolves even when the
// session cache holds a Fiedler solve from an earlier call on the same
// graph — the report describes this run's work, not the cache's history.
func TestReportClaimsOnlyConsumedEigensolves(t *testing.T) {
	g := envred.Grid(13, 9)
	sess := envred.NewSession(envred.SessionOptions{Seed: 2})
	ctx := context.Background()
	if _, _, err := sess.Fiedler(ctx, g); err != nil {
		t.Fatal(err)
	}
	res, err := sess.AutoWith(ctx, g, envred.AutoOptions{Seed: 2, Portfolio: []string{envred.AlgRCM, envred.AlgSloan}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Eigensolves != 0 || res.Solve != nil {
		t.Fatalf("RCM/SLOAN run claims %d cached eigensolves (Solve=%v)", res.Report.Eigensolves, res.Solve)
	}
	// A spectral portfolio on the same warm cache does consume the solve
	// and reports it, without re-running it.
	var solves int64
	restore := core.SetEigensolveTestHook(func(int) { atomic.AddInt64(&solves, 1) })
	spectral, err := sess.AutoWith(ctx, g, envred.AutoOptions{Seed: 2, Portfolio: []string{envred.AlgRCM, envred.AlgSpectral}})
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if spectral.Report.Eigensolves != 1 || atomic.LoadInt64(&solves) != 0 {
		t.Fatalf("spectral run on warm cache: Eigensolves=%d, fresh solves=%d; want 1 consumed, 0 run",
			spectral.Report.Eigensolves, solves)
	}
}

// testShortRegistered registers the nil-perm orderer once per process —
// the registry is append-only, so go test -count=N must not re-register.
var testShortRegistered = func() bool {
	envred.MustRegister("TEST-SHORT", envred.OrdererFunc(
		func(ctx context.Context, g *envred.Graph, req *envred.OrderRequest) (envred.Result, error) {
			return envred.Result{}, nil // nil Perm, nil error
		}))
	return true
}()

// A registered Orderer returning a wrong-length ordering must surface as
// an error on the call (Session.Order) or the candidate (Auto) — never a
// panic in the envelope scorer.
func TestWrongLengthOrdererIsAnError(t *testing.T) {
	_ = testShortRegistered
	sess := envred.NewSession(envred.SessionOptions{Seed: 1})
	ctx := context.Background()
	g := envred.Path(10)
	if _, err := sess.Order(ctx, g, "TEST-SHORT"); err == nil {
		t.Fatal("Session.Order accepted a nil permutation from a custom orderer")
	}
	res, err := sess.AutoWith(ctx, g, envred.AutoOptions{
		Seed:      1,
		Portfolio: []string{envred.AlgRCM, "TEST-SHORT"},
	})
	if err != nil {
		t.Fatalf("wrong-length candidate must not fail the run: %v", err)
	}
	if err := res.Perm.Check(); err != nil || len(res.Perm) != g.N() {
		t.Fatalf("Auto result invalid: %v", err)
	}
	found := false
	for _, c := range res.Report.Components[0].Candidates {
		if c.Algorithm == "TEST-SHORT" {
			found = true
			if c.Err == "" {
				t.Fatal("wrong-length ordering not recorded as the candidate's error")
			}
		}
	}
	if !found {
		t.Fatal("TEST-SHORT candidate missing from the report")
	}
}

// A registered Orderer must observe the identical request — spectral seed
// included — whether invoked via Session.Order or raced inside Auto
// (the engine's reproducibility contract extends to user orderers).
func TestCustomOrdererSeesSameSeedFromBothEntryPoints(t *testing.T) {
	_ = seedProbeRegistered
	seeds := map[string][]int64{}
	seedProbeMu.Lock()
	seedProbeSink = func(mode string, seed int64) { seeds[mode] = append(seeds[mode], seed) }
	seedProbeMu.Unlock()
	defer func() {
		seedProbeMu.Lock()
		seedProbeSink = nil
		seedProbeMu.Unlock()
	}()
	sess := envred.NewSession(envred.SessionOptions{Seed: 42, CacheGraphs: -1})
	ctx := context.Background()
	g := envred.Path(20)
	if _, err := sess.Order(ctx, g, "TEST-SEED-PROBE"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AutoWith(ctx, g, envred.AutoOptions{Seed: 42, Portfolio: []string{"TEST-SEED-PROBE"}}); err != nil {
		t.Fatal(err)
	}
	seedProbeMu.Lock()
	defer seedProbeMu.Unlock()
	if len(seeds["order"]) != 1 || len(seeds["auto"]) != 1 {
		t.Fatalf("probe not invoked from both entry points: %v", seeds)
	}
	if seeds["order"][0] != 42 || seeds["auto"][0] != 42 {
		t.Fatalf("entry points disagree on the pre-defaulted spectral seed: %v", seeds)
	}
}

// The probe orderer is registered once per process (append-only registry,
// go test -count=N safe) and reports into whatever sink the running test
// installed under seedProbeMu.
var (
	seedProbeMu   sync.Mutex
	seedProbeSink func(mode string, seed int64)
)

var seedProbeRegistered = func() bool {
	envred.MustRegister("TEST-SEED-PROBE", envred.OrdererFunc(
		func(ctx context.Context, g *envred.Graph, req *envred.OrderRequest) (envred.Result, error) {
			seedProbeMu.Lock()
			if seedProbeSink != nil {
				seedProbeSink(probeMode(req), req.Spectral.Seed)
			}
			seedProbeMu.Unlock()
			return envred.Result{Perm: envred.Identity(g.N())}, nil
		}))
	return true
}()

// probeMode distinguishes the probe's entry points. Valid only because the
// probe Session disables caching — with a cache, Session.Order supplies
// whole-graph Artifacts on connected input too.
func probeMode(req *envred.OrderRequest) string {
	if req.Artifacts != nil {
		return "auto"
	}
	return "order"
}
