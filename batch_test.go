package envred_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	envred "repro"
	"repro/internal/graph"
)

// batchSuite builds a mixed bag of graphs exercising every OrderBatch path:
// fast-path-eligible connected graphs, a disconnected union, tiny graphs
// below the artifact threshold (n < 3), and a path/complete pathology pair.
func batchSuite() []*envred.Graph {
	var gs []*envred.Graph
	gs = append(gs, grid(9, 11), grid(16, 16), path(150), complete(23))
	// Disconnected: two grids in one graph.
	b := graph.NewBuilder(5*5 + 4*4)
	for off, side := range map[int]int{0: 5, 25: 4} {
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				v := off + r*side + c
				if c+1 < side {
					b.AddEdge(v, v+1)
				}
				if r+1 < side {
					b.AddEdge(v, v+side)
				}
			}
		}
	}
	gs = append(gs, b.Build())
	// Below the artifact threshold.
	b2 := graph.NewBuilder(2)
	b2.AddEdge(0, 1)
	gs = append(gs, b2.Build())
	gs = append(gs, grid(31, 7))
	return gs
}

func grid(rows, cols int) *envred.Graph {
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				b.AddEdge(v, v+1)
			}
			if r+1 < rows {
				b.AddEdge(v, v+cols)
			}
		}
	}
	return b.Build()
}

func path(n int) *envred.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func complete(n int) *envred.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// sameResult reports whether two Results are byte-identical in every
// deterministic field (Elapsed is wall-clock and excluded).
func sameResult(t *testing.T, tag string, got, want envred.Result) {
	t.Helper()
	if len(got.Perm) != len(want.Perm) {
		t.Fatalf("%s: perm length %d, want %d", tag, len(got.Perm), len(want.Perm))
	}
	for i := range want.Perm {
		if got.Perm[i] != want.Perm[i] {
			t.Fatalf("%s: perm[%d] = %d, want %d", tag, i, got.Perm[i], want.Perm[i])
		}
	}
	if got.Algorithm != want.Algorithm {
		t.Fatalf("%s: algorithm %q, want %q", tag, got.Algorithm, want.Algorithm)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v, want %+v", tag, got.Stats, want.Stats)
	}
	if (got.Solve == nil) != (want.Solve == nil) {
		t.Fatalf("%s: solve presence %v, want %v", tag, got.Solve != nil, want.Solve != nil)
	}
	if got.Solve != nil && *got.Solve != *want.Solve {
		t.Fatalf("%s: solve %+v, want %+v", tag, *got.Solve, *want.Solve)
	}
	if (got.Info == nil) != (want.Info == nil) {
		t.Fatalf("%s: info presence %v, want %v", tag, got.Info != nil, want.Info != nil)
	}
	if got.Info != nil && *got.Info != *want.Info {
		t.Fatalf("%s: info %+v, want %+v", tag, *got.Info, *want.Info)
	}
}

// TestOrderBatchMatchesOrder pins the batch API's core contract: every
// item's Result is byte-identical to a Session.Order call with the same
// options on the same graph — across algorithms (fast path and generic),
// worker counts, cold and warm artifact caches, and recycled result slots.
func TestOrderBatchMatchesOrder(t *testing.T) {
	graphs := batchSuite()
	for _, alg := range []string{"SPECTRAL", "RCM", "SPECTRAL+SLOAN", "GPS"} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", alg, workers), func(t *testing.T) {
				ref := envred.NewSession(envred.SessionOptions{Seed: 7, CacheGraphs: len(graphs)})
				want := make([]envred.Result, len(graphs))
				for i, g := range graphs {
					r, err := ref.Order(context.Background(), g, alg)
					if err != nil {
						t.Fatalf("Order(%d): %v", i, err)
					}
					want[i] = r
				}
				sess := envred.NewSession(envred.SessionOptions{Seed: 7, CacheGraphs: len(graphs)})
				var results []envred.BatchResult
				// Two rounds: the first runs cold, the second recycles the
				// result slots against warm artifacts — both must match.
				for round := 0; round < 2; round++ {
					var err error
					results, err = sess.OrderBatch(context.Background(), graphs, envred.BatchOptions{
						Algorithm: alg,
						Workers:   workers,
						Results:   results,
					})
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					for i := range results {
						if results[i].Err != nil {
							t.Fatalf("round %d item %d: %v", round, i, results[i].Err)
						}
						sameResult(t, fmt.Sprintf("round %d item %d", round, i), results[i].Result, want[i])
					}
				}
			})
		}
	}
}

// TestOrderBatchSeedAndSpectralDefaults pins that batch-level Seed and
// Spectral options reach every item exactly as Session.Do applies them.
func TestOrderBatchSeedAndSpectralDefaults(t *testing.T) {
	g := grid(13, 17)
	sess := envred.NewSession(envred.SessionOptions{Seed: 3})
	want, err := sess.Do(context.Background(), g, "SPECTRAL",
		envred.OrderRequest{Seed: 41, Spectral: envred.SpectralOptions{Method: envred.MethodLanczos}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.OrderBatch(context.Background(), []*envred.Graph{g}, envred.BatchOptions{
		Algorithm: "spectral", // case-insensitive like Order
		Seed:      41,
		Spectral:  envred.SpectralOptions{Method: envred.MethodLanczos},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	sameResult(t, "seeded item", res[0].Result, want)
}

// TestOrderBatchItemErrors pins per-item error independence: a failing item
// reports its own error and its neighbors complete normally.
func TestOrderBatchItemErrors(t *testing.T) {
	sess := envred.NewSession(envred.SessionOptions{Seed: 5})
	graphs := []*envred.Graph{grid(6, 6), grid(4, 4), grid(5, 5)}
	// WEIGHTED needs a weight function; OrderBatch has no way to pass one,
	// so every item fails with the algorithm's own error — independently.
	res, err := sess.OrderBatch(context.Background(), graphs, envred.BatchOptions{Algorithm: "WEIGHTED"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Err == nil {
			t.Fatalf("item %d: expected weight-function error", i)
		}
	}
	// Unknown algorithm is the one global failure.
	if _, err := sess.OrderBatch(context.Background(), graphs, envred.BatchOptions{Algorithm: "NOPE"}); err == nil {
		t.Fatal("expected unknown-algorithm error")
	}
}

// TestOrderBatchSharedSessionRace drives concurrent OrderBatch and Order
// calls through one Session — the serving shape — under the race detector.
func TestOrderBatchSharedSessionRace(t *testing.T) {
	sess := envred.NewSession(envred.SessionOptions{Seed: 11, CacheGraphs: 16})
	graphs := batchSuite()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				res, err := sess.OrderBatch(context.Background(), graphs, envred.BatchOptions{Algorithm: "SPECTRAL", Workers: 2})
				if err != nil {
					t.Error(err)
					return
				}
				for i := range res {
					if res[i].Err != nil {
						t.Errorf("item %d: %v", i, res[i].Err)
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sess.Order(context.Background(), graphs[0], "SPECTRAL"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestOrderBatchSteadyStateAllocs pins the batch fast path's headline
// property: once the session's artifacts are warm and the result slots are
// recycled, a whole batch of cached SPECTRAL orderings allocates nothing.
func TestOrderBatchSteadyStateAllocs(t *testing.T) {
	graphs := []*envred.Graph{grid(9, 11), grid(16, 16), path(150), grid(31, 7)}
	sess := envred.NewSession(envred.SessionOptions{Seed: 13, CacheGraphs: len(graphs)})
	results, err := sess.OrderBatch(context.Background(), graphs, envred.BatchOptions{Algorithm: "SPECTRAL", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(10, func() {
		var err error
		results, err = sess.OrderBatch(ctx, graphs, envred.BatchOptions{
			Algorithm: "SPECTRAL",
			Workers:   1,
			Results:   results,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range results {
			if results[i].Err != nil {
				t.Fatal(results[i].Err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state OrderBatch allocated %v times per batch, want 0", allocs)
	}
}
