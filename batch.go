package envred

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/scratch"
)

// BatchOptions configures Session.OrderBatch. The zero value of every
// field defaults to the session's own configuration, so
// OrderBatch(ctx, graphs, BatchOptions{Algorithm: "RCM"}) behaves like a
// loop of Session.Order calls.
type BatchOptions struct {
	// Algorithm is the registered algorithm every item runs (see
	// Algorithms; case-insensitive, required).
	Algorithm string
	// Seed drives randomized pieces of every item (0 = the session seed).
	Seed int64
	// Spectral carries per-batch eigensolver options (zero value = the
	// session's).
	Spectral SpectralOptions
	// Workers bounds how many items are in flight at once across the
	// persistent batch worker pool (≤ 0 = GOMAXPROCS). Items are
	// independent; any worker count produces byte-identical results.
	Workers int
	// Results, when non-nil, is the result slice of a previous OrderBatch
	// call to recycle: slots (including each Result.Perm's capacity) are
	// reused instead of allocated, which is what makes the steady-state
	// batch loop allocation-free. Leave nil to allocate fresh storage.
	Results []BatchResult
}

// BatchResult is one item's outcome in an OrderBatch: the same Result a
// Session.Order call on that graph returns, or the error that item
// failed with. Result.Solve and Result.Info, when set, point at storage
// owned by this slot — they are overwritten if the slot is recycled
// through BatchOptions.Results.
type BatchResult struct {
	Result Result
	Err    error

	// Value backing for the fast path's Result.Solve/Result.Info, so the
	// steady-state loop never allocates them.
	solve SolveStats
	info  SpectralInfo
}

// orderBatch is the pooled run state of one OrderBatch call — the
// pipeline.BatchRunner the persistent batch workers drive. Holding the
// per-item OrderRequests in a reused slice keeps them off the heap: the
// Orderer interface receives *OrderRequest, which would otherwise escape
// a stack-allocated request on every item.
type orderBatch struct {
	s       *Session
	ctx     context.Context
	name    string
	seed    int64
	sopt    SpectralOptions
	fast    bool // batch-eligible for the cached-SPECTRAL fast path
	graphs  []*Graph
	results []BatchResult
}

var orderBatchPool = sync.Pool{New: func() any { return new(orderBatch) }}

// OrderBatch pipelines many graphs through one algorithm, amortizing what
// per-call Order cannot: items run on a persistent worker pool whose
// workspaces stay warm across batches, per-item results land in recycled
// storage (BatchOptions.Results), and the cached-artifact SPECTRAL path
// skips every per-call allocation — the serving hot loop of the batch
// endpoint runs at zero allocations per item once warm (pinned by
// TestOrderBatchSteadyStateAllocs).
//
// Each item's outcome is byte-identical to a Session.Order call with the
// same options on the same graph — batching changes throughput, never
// results (pinned by TestOrderBatchMatchesOrder). Items are independent:
// one item's failure is reported in its own BatchResult.Err and the rest
// proceed. ctx cancellation interrupts in-flight items exactly as it
// interrupts Order; already-finished items keep their results.
//
// The returned slice is valid until the next OrderBatch call that
// recycles it; the caller owns it otherwise. A global error is returned
// only when the batch cannot start at all (unknown algorithm).
func (s *Session) OrderBatch(ctx context.Context, graphs []*Graph, opt BatchOptions) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	name := pipeline.Canonical(opt.Algorithm)
	if _, ok := pipeline.Lookup(name); !ok {
		return nil, fmt.Errorf("envred: unknown algorithm %q (registered: %v)", opt.Algorithm, Algorithms())
	}
	results := opt.Results
	if cap(results) >= len(graphs) {
		results = results[:len(graphs)]
	} else {
		results = make([]BatchResult, len(graphs))
	}
	seed := opt.Seed
	if seed == 0 {
		seed = s.opt.Seed
	}
	sopt := opt.Spectral
	if sopt == (SpectralOptions{}) {
		sopt = s.opt.Spectral
	}
	if sopt.Seed == 0 {
		sopt.Seed = seed
	}
	b := orderBatchPool.Get().(*orderBatch)
	b.s, b.ctx, b.name, b.seed, b.sopt = s, ctx, name, seed, sopt
	b.fast = name == pipeline.AlgSpectral && s.cache != nil &&
		sopt.Operator == nil && sopt.Multilevel.FinestOp == nil
	b.graphs, b.results = graphs, results
	pipeline.RunBatch(opt.Workers, len(graphs), b)
	*b = orderBatch{}
	orderBatchPool.Put(b)
	return results, nil
}

// RunItem orders item i (pipeline.BatchRunner). The calling worker's
// workspace serves the whole item: orderer scratch and the envelope scan.
func (b *orderBatch) RunItem(i int, ws *scratch.Workspace) {
	g := b.graphs[i]
	slot := &b.results[i]
	if b.fast && g.N() >= 3 {
		if art := b.s.cache.WholeIfConnected(g, b.sopt); art != nil && b.runFast(slot, g, art, ws) {
			return
		}
	}
	// Generic path: exactly Session.Do with the batch's options — cold
	// artifacts, disconnected graphs, non-SPECTRAL algorithms and failed
	// solves all land here and stay bit-for-bit Do-identical.
	res, err := b.s.do(b.ctx, g, b.name, OrderRequest{Seed: b.seed, Spectral: b.sopt, Workspace: ws}, true)
	slot.Result, slot.Err = res, err
}

// ItemPanicked implements pipeline.BatchPanicHandler: a panic while
// running item i (outside the orderer call, which Session.do already
// guards) becomes that item's error, leaving the other items and the
// persistent pool workers untouched.
func (b *orderBatch) ItemPanicked(i int, err error) {
	b.results[i] = BatchResult{Err: err}
}

// runFast serves one item from the session's memoized whole-graph
// SPECTRAL artifacts without allocating: the ordering is copied into the
// slot's recycled Perm buffer, Solve/Info are backed by slot-owned
// values, and the envelope statistics come from the artifact's own memo
// (SpectralStats) instead of a fresh O(n+nnz) scan per request. The
// memoized ordering was validated when it entered the memo (fresh solves
// by construction, store hits by the tier-2 probe's Check), so the
// defensive re-validation Session.do applies to arbitrary registered
// orderers is not repeated per item. Returns false — leaving the slot
// untouched — when the memoized solve errored, deferring to the generic
// path for the exact Do error shape.
func (b *orderBatch) runFast(slot *BatchResult, g *Graph, art *Artifacts, ws *scratch.Workspace) bool {
	start := time.Now()
	o, stats, reversed, st, err := art.SpectralStats(b.ctx, ws)
	if err != nil {
		return false
	}
	p := append(slot.Result.Perm[:0], o...)
	slot.solve = st
	pipeline.FillConnectedInfo(&slot.info, st, reversed)
	slot.Result = Result{
		Perm:      p,
		Algorithm: b.name,
		Stats:     stats,
		Solve:     &slot.solve,
		Info:      &slot.info,
		Elapsed:   time.Since(start),
	}
	slot.Err = nil
	return true
}
