package envred

import (
	"repro/internal/graph"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// Persistent artifact store (tier 2) --------------------------------------
//
// A Store persists eigensolve artifacts — Fiedler vectors, the spectral
// orderings derived from them, solver statistics — keyed by content
// (graph fingerprint + option digest), so they outlive the process that
// computed them. Hand one to SessionOptions.Store and a Session fills its
// in-memory cache misses from the store and writes solves back; a second
// process (or daemon restart, or CLI run) pointed at the same store then
// orders the same matrix without a single eigensolve.

// Store is the persistent artifact store driver interface. Implementations
// must be safe for concurrent use. Open the built-in backends with
// OpenStore; add schemes with RegisterStoreDriver.
type Store = store.Store

// StoreKey addresses one persistent artifact entry: canonical graph
// fingerprint plus spectral-option digest. Compute one with StoreKeyFor.
type StoreKey = store.Key

// StoreArtifact is the persistent eigensolve record stored at a StoreKey.
type StoreArtifact = store.Artifact

// StoreDriver opens a Store from a parsed URL; see RegisterStoreDriver.
type StoreDriver = store.Driver

// StoreStats snapshots a CountedStore's traffic.
type StoreStats = store.Stats

// CountedStore wraps a Store with hit/miss/error accounting — the
// instrumentation the daemon's metrics and the CLI's -stats read.
type CountedStore = store.Counted

// GraphFingerprint is the canonical SHA-256 content identity of a Graph —
// the identity persistent store entries are addressed by.
type GraphFingerprint = graph.Fingerprint

// ResilientStore wraps any Store with the fault-tolerance layer network
// backends need: per-operation timeouts, capped full-jitter retries for
// transient errors, and a consecutive-failure circuit breaker that trips
// to cache-only operation, half-opens on a probe interval and exposes its
// state (State/Stats/Healthy). Wrap the raw store before handing it to
// SessionOptions.Store or the daemon so a dead backend costs one
// fast-failing probe, never a stalled solve.
type ResilientStore = store.Resilient

// ResilienceOptions tunes a ResilientStore (zero value = sane defaults).
type ResilienceOptions = store.ResilienceOptions

// ResilienceStats snapshots a ResilientStore's breaker state and counters.
type ResilienceStats = store.ResilienceStats

// BreakerState is a ResilientStore's circuit position.
type BreakerState = store.BreakerState

// Circuit breaker positions.
const (
	BreakerClosed   = store.BreakerClosed
	BreakerOpen     = store.BreakerOpen
	BreakerHalfOpen = store.BreakerHalfOpen
)

// NewResilientStore wraps s with timeouts, retries and a circuit breaker.
func NewResilientStore(s Store, opts ResilienceOptions) *ResilientStore {
	return store.NewResilient(s, opts)
}

// Store error sentinels: ErrStoreNotFound is the clean miss; ErrStoreCorrupt
// is wrapped by Get when an entry exists but cannot be decoded (callers
// treat it as a miss plus a counted error); ErrStoreTransient marks backend
// failures that may succeed on retry (the ResilientStore retries exactly
// these); ErrStoreUnavailable is the fast failure of an open circuit
// breaker.
var (
	ErrStoreNotFound    = store.ErrNotFound
	ErrStoreCorrupt     = store.ErrCorrupt
	ErrStoreTransient   = store.ErrTransient
	ErrStoreUnavailable = store.ErrUnavailable
)

// OpenStore opens a persistent artifact store by URL, dispatching on the
// scheme like database/sql:
//
//	fs:///var/cache/envorder?max_bytes=1073741824   on-disk store
//	mem://?max_entries=64                           in-process store
//	chaos://fs:///path?err_rate=0.2&seed=7          fault-injection wrapper
//	/var/cache/envorder                             bare path = fs
func OpenStore(url string) (Store, error) { return store.Open(url) }

// RegisterStoreDriver makes a driver available to OpenStore under the given
// URL scheme (init-time; panics on duplicates), leaving room for redis/SQL
// backends without touching callers.
func RegisterStoreDriver(scheme string, d StoreDriver) { store.Register(scheme, d) }

// StoreSchemes returns the registered store URL schemes, sorted.
func StoreSchemes() []string { return store.Schemes() }

// NewCountedStore wraps s with traffic counters; observe (optional) receives
// each operation's name and wall-clock seconds.
func NewCountedStore(s Store, observe func(op string, seconds float64)) *CountedStore {
	return store.NewCounted(s, observe)
}

// FingerprintOf computes g's canonical content fingerprint.
func FingerprintOf(g *Graph) GraphFingerprint { return graph.FingerprintOf(g) }

// StoreKeyFor computes the persistent-store key for g's artifacts under
// opt — the key a Session consults for the same graph and options. Useful
// for probing, pre-warming or invalidating entries out of band.
func StoreKeyFor(g *Graph, opt SpectralOptions) StoreKey {
	return pipeline.StoreKeyFor(g, opt)
}
