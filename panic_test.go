package envred_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	envred "repro"
)

// testPanicRegistered registers the panicking orderer once per process
// (the registry is append-only, so go test -count=N must not re-register).
var testPanicRegistered = func() bool {
	envred.MustRegister("TEST-PANIC", envred.OrdererFunc(
		func(ctx context.Context, g *envred.Graph, req *envred.OrderRequest) (envred.Result, error) {
			panic("orderer detonated")
		}))
	return true
}()

// The Orderer contract: a panic in pluggable code fails the call with a
// *PanicError — it never crosses Session.Order, never kills a portfolio
// worker, and never poisons the session for later calls.
func TestPanickingOrdererFailsCallNotProcess(t *testing.T) {
	_ = testPanicRegistered
	sess := envred.NewSession(envred.SessionOptions{Seed: 1})
	ctx := context.Background()
	g := envred.Grid(8, 6)

	_, err := sess.Order(ctx, g, "TEST-PANIC")
	if err == nil {
		t.Fatal("Session.Order returned nil error for a panicking orderer")
	}
	var perr *envred.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("error %T is not a *PanicError", err)
	}
	if !strings.Contains(err.Error(), "orderer detonated") || len(perr.Stack) == 0 {
		t.Fatalf("PanicError incomplete: %v (stack %d bytes)", err, len(perr.Stack))
	}

	// The session still works.
	res, err := sess.Order(ctx, g, envred.AlgRCM)
	if err != nil || len(res.Perm) != g.N() {
		t.Fatalf("session poisoned by the panic: %v", err)
	}
}

// A panicking candidate inside an Auto portfolio fails only its own slot:
// the run completes with the surviving candidates and the report records
// the candidate's error.
func TestPanickingCandidateFailsOnlyItsSlot(t *testing.T) {
	_ = testPanicRegistered
	sess := envred.NewSession(envred.SessionOptions{Seed: 1})
	g := envred.Grid(8, 6)

	res, err := sess.AutoWith(context.Background(), g, envred.AutoOptions{
		Seed:      1,
		Portfolio: []string{envred.AlgRCM, "TEST-PANIC"},
	})
	if err != nil {
		t.Fatalf("panicking candidate must not fail the run: %v", err)
	}
	if err := res.Perm.Check(); err != nil || len(res.Perm) != g.N() {
		t.Fatalf("Auto result invalid: %v", err)
	}
	found := false
	for _, c := range res.Report.Components[0].Candidates {
		if c.Algorithm == "TEST-PANIC" {
			found = true
			if !strings.Contains(c.Err, "panic") {
				t.Fatalf("candidate error %q does not record the panic", c.Err)
			}
		}
	}
	if !found {
		t.Fatal("TEST-PANIC candidate missing from the report")
	}
}

// OrderBatch delivers a panicking item as that item's BatchResult.Err;
// the other items and subsequent batches are untouched.
func TestOrderBatchPanickingItemIsolated(t *testing.T) {
	_ = testPanicRegistered
	sess := envred.NewSession(envred.SessionOptions{Seed: 1})
	ctx := context.Background()
	graphs := []*envred.Graph{envred.Path(12), envred.Grid(6, 5), envred.Path(20)}

	results, err := sess.OrderBatch(ctx, graphs, envred.BatchOptions{Algorithm: "TEST-PANIC"})
	if err != nil {
		t.Fatalf("batch-level error: %v", err)
	}
	for i := range results {
		var perr *envred.PanicError
		if results[i].Err == nil || !errors.As(results[i].Err, &perr) {
			t.Fatalf("item %d: err = %v, want a *PanicError", i, results[i].Err)
		}
	}

	// Recycle the same slots through a clean batch: every slot recovers.
	results, err = sess.OrderBatch(ctx, graphs, envred.BatchOptions{
		Algorithm: envred.AlgRCM, Results: results,
	})
	if err != nil {
		t.Fatalf("clean batch after panics: %v", err)
	}
	for i := range results {
		if results[i].Err != nil || len(results[i].Result.Perm) != graphs[i].N() {
			t.Fatalf("item %d after recycle: err=%v perm=%d", i, results[i].Err, len(results[i].Result.Perm))
		}
	}
}
