package envred_test

import (
	"context"
	"testing"

	envred "repro"
)

// batchBenchSuite is the 64-graph serving workload of the batch benchmarks:
// small connected grids of varied aspect, the regime where per-call
// overhead (allocation, validation, workspace checkout) rivals the cached
// ordering work itself and batching has something to amortize.
func batchBenchSuite() []*envred.Graph {
	gs := make([]*envred.Graph, 0, 64)
	for i := 0; i < 64; i++ {
		gs = append(gs, grid(8+i%7, 9+i/4))
	}
	return gs
}

// warmBatchSession returns a session whose artifact cache holds every
// suite graph — steady serving state, the regime both benchmarks measure.
func warmBatchSession(b *testing.B, graphs []*envred.Graph) *envred.Session {
	sess := envred.NewSession(envred.SessionOptions{Seed: benchSeed, CacheGraphs: len(graphs)})
	for _, g := range graphs {
		if _, err := sess.Order(context.Background(), g, "SPECTRAL"); err != nil {
			b.Fatal(err)
		}
	}
	return sess
}

// BenchmarkOrderSingleton is the batch benchmark's baseline: the same
// 64-graph warm-cache workload served one Session.Order call at a time —
// the pre-batch serving shape whose per-call costs (result allocation,
// permutation re-validation, workspace checkout) OrderBatch amortizes.
func BenchmarkOrderSingleton(b *testing.B) {
	graphs := batchBenchSuite()
	sess := warmBatchSession(b, graphs)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			if _, err := sess.Order(ctx, g, "SPECTRAL"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(graphs))*float64(b.N)/b.Elapsed().Seconds(), "graphs/sec")
}

// BenchmarkOrderBatch measures Session.OrderBatch on the same workload with
// recycled result slots — the steady-state batch loop. The acceptance gate
// (cmd/benchjson -require) holds it to ≥ 1.5x BenchmarkOrderSingleton's
// graphs/sec and 0 allocs/op.
func BenchmarkOrderBatch(b *testing.B) {
	graphs := batchBenchSuite()
	sess := warmBatchSession(b, graphs)
	ctx := context.Background()
	opt := envred.BatchOptions{Algorithm: "SPECTRAL", Workers: 1}
	results, err := sess.OrderBatch(ctx, graphs, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Results = results
		results, err = sess.OrderBatch(ctx, graphs, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for i := range results {
		if results[i].Err != nil {
			b.Fatal(results[i].Err)
		}
	}
	b.ReportMetric(float64(len(graphs))*float64(b.N)/b.Elapsed().Seconds(), "graphs/sec")
}
