package envred_test

import (
	"math"
	"strings"
	"testing"

	envred "repro"
)

func TestLDLPublicPath(t *testing.T) {
	g := envred.Grid(9, 9)
	p := envred.RCM(g)
	m, err := envred.NewEnvelopeMatrix(g, p, envred.LaplacianPlusIdentity(g))
	if err != nil {
		t.Fatal(err)
	}
	f, err := envred.FactorizeLDL(m)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg, zero := f.Inertia()
	if pos != g.N() || neg != 0 || zero != 0 {
		t.Fatalf("SPD inertia = (%d,%d,%d)", pos, neg, zero)
	}
	b := make([]float64, g.N())
	for i := range b {
		b[i] = 1
	}
	x := f.SolveOriginal(b)
	for i, xi := range x {
		if math.Abs(xi-1) > 1e-10 {
			t.Fatalf("x[%d] = %v", i, xi)
		}
	}
}

func TestWeightedSpectralPublicPath(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
6 6 8
1 1 2
2 1 -3
3 2 -3
4 3 -0.1
5 4 -3
6 5 -3
5 5 2
6 6 2
`
	g, w, err := envred.ReadMatrixMarketWeighted(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	p, info, err := envred.WeightedSpectral(g, w, envred.SpectralOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if info.Lambda2 <= 0 {
		t.Fatalf("λ2 = %v", info.Lambda2)
	}
	// The weak middle link means the two triples {0,1,2} and {3,4,5} are
	// each strongly coupled: each must be contiguous in the ordering.
	inv := p.Inverse()
	span := func(vs ...int) int {
		min, max := 1<<30, -1
		for _, v := range vs {
			if int(inv[v]) < min {
				min = int(inv[v])
			}
			if int(inv[v]) > max {
				max = int(inv[v])
			}
		}
		return max - min
	}
	if span(0, 1, 2) != 2 || span(3, 4, 5) != 2 {
		t.Fatalf("weakly-linked groups interleaved: spans %d, %d", span(0, 1, 2), span(3, 4, 5))
	}
}

func TestPCGPublicPath(t *testing.T) {
	g := envred.Grid9(12, 12)
	p := envred.GK(g)
	a, err := envred.NewSparseMatrix(g, p, envred.LaplacianPlusIdentity(g))
	if err != nil {
		t.Fatal(err)
	}
	f, err := envred.FactorizeIC0(a, envred.IC0Options{MaxShiftRetries: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	b[0] = 1
	x := make([]float64, g.N())
	res := envred.PCG(a, f, b, x, envred.PCGOptions{Tol: 1e-9})
	if !res.Converged {
		t.Fatalf("PCG: %+v", res)
	}
	// Verify via matvec.
	ax := make([]float64, g.N())
	a.Apply(x, ax)
	var diff float64
	for i := range ax {
		d := ax[i] - b[i]
		diff += d * d
	}
	if math.Sqrt(diff) > 1e-8 {
		t.Fatalf("residual %v", math.Sqrt(diff))
	}
}

func TestSpectralSloanPublic(t *testing.T) {
	g := envred.RandomGraph(120, 260, 3)
	ph, _, err := envred.SpectralSloan(g, envred.SpectralOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ps, _, err := envred.Spectral(g, envred.SpectralOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if envred.Esize(g, ph) > envred.Esize(g, ps) {
		t.Fatal("hybrid worse than plain spectral")
	}
}
