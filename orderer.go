package envred

import (
	"repro/internal/lanczos"
	"repro/internal/pipeline"
	"repro/internal/scratch"
)

// Orderer is a pluggable ordering algorithm — the extension point of the
// ordering service. Implementations registered with Register become
// callable by name through Session.Order and race in Auto's per-component
// portfolio on equal footing with the built-ins, shared artifact cache
// included. See the pipeline.Orderer contract: in Auto's portfolio the
// graph is one connected component, through Session.Order it is the
// caller's whole (possibly disconnected) input, and in either mode
// OrderRequest.Artifacts, when non-nil, is the memoized artifact cache for
// exactly that graph. Implementations must be deterministic for a fixed
// (graph, request), must not retain OrderRequest.Workspace, and must honor
// ctx cancellation.
type Orderer = pipeline.Orderer

// OrdererFunc adapts a plain function to the Orderer interface.
type OrdererFunc = pipeline.OrdererFunc

// OrderRequest carries the per-call inputs handed to an Orderer: seed,
// eigensolver options, optional edge weights, the portfolio engine's
// per-component artifact cache and the calling worker's scratch workspace.
type OrderRequest = pipeline.OrderRequest

// Result is the uniform outcome of an ordering run — returned by
// Session.Order, Session.Auto and every registered Orderer: the
// permutation, the algorithm name, the envelope parameters, the
// eigensolver statistics and spectral diagnostics when applicable, the
// wall-clock time, and (for Auto) the full portfolio report.
type Result = pipeline.Result

// Artifacts is the per-component artifact cache the portfolio engine
// shares among racing candidates: the Fiedler eigensolve, the
// pseudo-peripheral root and the pseudo-diameter pair, each computed at
// most once per component. Registered Orderers reach it via
// OrderRequest.Artifacts; slices obtained from it (the Fiedler vector,
// the spectral ordering) are the shared memoized copies and must be
// treated as read-only, and its Operator() must not be driven by user
// orderers (one matvec at a time, possibly mid-eigensolve elsewhere).
type Artifacts = pipeline.Artifacts

// ArtifactCache memoizes component decompositions, extracted subgraphs and
// per-component Artifacts across calls on the same graph, LRU-bounded.
// Sessions own one; AutoOptions.Cache threads one into a bare Auto call.
type ArtifactCache = pipeline.Cache

// NewArtifactCache returns an ArtifactCache retaining at most maxGraphs
// graphs (≤ 0 means DefaultCacheGraphs).
func NewArtifactCache(maxGraphs int) *ArtifactCache { return pipeline.NewCache(maxGraphs) }

// DefaultCacheGraphs is the default ArtifactCache capacity.
const DefaultCacheGraphs = pipeline.DefaultCacheGraphs

// Workspace is the reusable per-worker scratch workspace threaded through
// the hot paths (see OrderRequest.Workspace). Not safe for concurrent use;
// buffers checked out of one must not be retained.
type Workspace = scratch.Workspace

// PanicError is the error a panic in pluggable code is converted to: a
// registered Orderer (or BatchRunner item, or daemon job) that panics
// fails its own call/item/job with a *PanicError carrying the panic value
// and stack — it never kills the worker pool, the batch barrier or a
// daemon hosting the Session. See the Orderer contract.
type PanicError = pipeline.PanicError

// ErrCancelled is the typed error an interrupted run returns when its
// context is cancelled or its deadline (e.g. AutoOptions.Budget) expires
// mid-eigensolve: it wraps the context error (errors.Is sees
// context.Canceled / context.DeadlineExceeded through it) and carries the
// best-so-far fallback eigenpair, so callers can still order with the
// partial result instead of losing the work already spent.
type ErrCancelled = lanczos.ErrCancelled

// Register adds an Orderer to the process-wide algorithm registry under
// the given case-insensitive name, making it available to Session.Order
// and to Auto portfolios. It errors on an empty name, a nil Orderer or a
// name already taken (the registry is append-only). Safe for concurrent
// use.
func Register(name string, o Orderer) error { return pipeline.Register(name, o) }

// MustRegister is Register that panics on error — for package init blocks.
func MustRegister(name string, o Orderer) { pipeline.MustRegister(name, o) }

// Lookup returns the Orderer registered under name (case-insensitive).
func Lookup(name string) (Orderer, bool) { return pipeline.Lookup(name) }

// Algorithms returns the sorted canonical names of every registered
// ordering algorithm — the built-ins plus user registrations.
func Algorithms() []string { return pipeline.Algorithms() }
