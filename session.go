package envred

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/perm"
	"repro/internal/pipeline"
	"repro/internal/scratch"
)

// SessionOptions configures a Session. The zero value is a good default:
// seed 0, automatic eigensolver selection, GOMAXPROCS portfolio workers
// and a DefaultCacheGraphs-sized artifact cache.
type SessionOptions struct {
	// Seed drives every randomized piece of the session's runs; fixed seed
	// ⇒ reproducible results.
	Seed int64
	// Spectral carries the eigensolver options used when a call does not
	// supply its own. Its Seed defaults to SessionOptions.Seed when zero.
	Spectral SpectralOptions
	// Parallelism bounds Session.Auto's worker pool (≤ 0 = GOMAXPROCS).
	Parallelism int
	// Portfolio is Session.Auto's contender list by registry name (empty =
	// DefaultPortfolio).
	Portfolio []string
	// Budget soft-limits Session.Auto runs (0 = unlimited); see
	// AutoOptions.Budget.
	Budget time.Duration
	// CacheGraphs bounds the per-graph artifact cache: > 0 sets the
	// capacity, 0 means DefaultCacheGraphs, < 0 disables caching.
	CacheGraphs int
	// Store, when non-nil, is the persistent tier behind the in-memory
	// cache (see OpenStore): cache misses probe it by content fingerprint
	// before solving, successful solves are written back, and a corrupt or
	// unreadable entry degrades to a miss — never a wrong answer. The
	// session does not own the store: the caller opens it, may share it
	// across sessions and processes, and closes it after the session is
	// done. Setting Store implies an artifact cache even when CacheGraphs
	// < 0 (the store is reached through it). See the package documentation
	// ("Persistent artifact store") for the full contract.
	Store Store
}

// Session is a reusable, goroutine-safe ordering service: it owns a
// per-graph artifact cache (component decomposition, extracted subgraphs,
// Fiedler eigensolves, peripheral roots and pseudo-diameter pairs, LRU-
// bounded by SessionOptions.CacheGraphs) and runs every call on the shared
// scratch-arena, Lanczos-workspace and parallel-SpMV worker pools, so a
// long-lived Session amortizes all of that across calls — the serving
// shape the top-level convenience functions (Spectral, Auto, Fiedler, …)
// now delegate to through a lazily-initialized default Session.
//
// All methods are context-first: cancellation and deadlines interrupt
// in-flight eigensolves at restart / V-cycle granularity, returning the
// typed *ErrCancelled with the best-so-far fallback inside. Methods may be
// called concurrently from any number of goroutines; concurrent calls on
// the same graph share cached artifacts instead of repeating work.
//
// The in-memory cache is tier 1: keyed by graph pointer, it lives and dies
// with the Session. SessionOptions.Store adds a persistent tier 2 keyed by
// content fingerprint — tier-1 misses are filled from the store before
// solving and solves are written back, so eigensolves survive restarts and
// pool across processes sharing one store.
//
// Caching never changes results: every cached artifact is a pure function
// of the graph and the options, so Session calls are byte-identical to the
// uncached top-level functions (pinned by the shim-equivalence tests) —
// and store-warmed calls to both.
type Session struct {
	opt   SessionOptions
	cache *pipeline.Cache
}

// NewSession returns a Session with the given options. The zero
// SessionOptions value is valid.
func NewSession(opt SessionOptions) *Session {
	s := &Session{opt: opt}
	if opt.CacheGraphs >= 0 || opt.Store != nil {
		s.cache = pipeline.NewCache(opt.CacheGraphs)
		if opt.Store != nil {
			s.cache.SetStore(opt.Store)
		}
	}
	return s
}

var (
	defaultSessionOnce sync.Once
	defaultSession     *Session
)

// DefaultSession returns the lazily-initialized process-wide Session the
// top-level convenience functions (Spectral, SpectralSloan,
// WeightedSpectral, Auto, Fiedler) delegate to. Its artifact cache
// retains up to DefaultCacheGraphs recently-ordered graphs (with their
// extracted subgraphs and Fiedler vectors) to amortize repeated calls;
// call DefaultSession().Reset() to release that working set, or hold a
// dedicated NewSession(SessionOptions{CacheGraphs: -1}) for strictly
// stateless behavior.
func DefaultSession() *Session {
	defaultSessionOnce.Do(func() {
		defaultSession = NewSession(SessionOptions{})
	})
	return defaultSession
}

// spectral returns the session-default eigensolver options with the seed
// defaulted.
func (s *Session) spectral() SpectralOptions {
	opt := s.opt.Spectral
	if opt.Seed == 0 {
		opt.Seed = s.opt.Seed
	}
	return opt
}

// Order runs one registered algorithm (see Algorithms) on g — the whole
// graph, disconnected inputs included — and reports the uniform Result.
// The algorithm name is case-insensitive; unknown names error with the
// registered list.
func (s *Session) Order(ctx context.Context, g *Graph, algorithm string) (Result, error) {
	return s.Do(ctx, g, algorithm, OrderRequest{Seed: s.opt.Seed, Spectral: s.opt.Spectral})
}

// OrderWeighted is Order with a symmetric positive edge-weight function —
// the input of the WEIGHTED spectral algorithm (and of any registered
// Orderer that reads OrderRequest.Weight).
func (s *Session) OrderWeighted(ctx context.Context, g *Graph, algorithm string, weight func(u, v int) float64) (Result, error) {
	return s.Do(ctx, g, algorithm, OrderRequest{Seed: s.opt.Seed, Spectral: s.opt.Spectral, Weight: weight})
}

// Do runs a registered algorithm with an explicit request — the escape
// hatch Order and OrderWeighted are sugar over, and the one the
// compatibility shims use to pass per-call eigensolver options. The
// request's Seed defaults to the session's; its Artifacts and Workspace
// fields are managed by the engine and should be left nil.
func (s *Session) Do(ctx context.Context, g *Graph, algorithm string, req OrderRequest) (Result, error) {
	return s.do(ctx, g, algorithm, req, true)
}

// do is Do with Result.Stats optional: the historical shims discard the
// envelope parameters, so they skip that O(n+nnz) scan entirely rather
// than compute and throw it away.
func (s *Session) do(ctx context.Context, g *Graph, algorithm string, req OrderRequest, wantStats bool) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	name := pipeline.Canonical(algorithm)
	ord, ok := pipeline.Lookup(name)
	if !ok {
		return Result{}, fmt.Errorf("envred: unknown algorithm %q (registered: %v)", algorithm, Algorithms())
	}
	if req.Seed == 0 {
		req.Seed = s.opt.Seed
	}
	// Pre-default the spectral seed exactly as the portfolio engine does,
	// so a registered Orderer observes the same request whether it was
	// invoked here or raced inside Auto.
	if req.Spectral.Seed == 0 {
		req.Spectral.Seed = req.Seed
	}
	req.Algorithm = name
	// On connected inputs, hand the orderer the session's memoized
	// whole-graph artifact cache (eigensolve, peripheral root, pseudo-
	// diameter): repeated Order calls on the same graph — and mixed
	// SPECTRAL / SPECTRAL+SLOAN / BFS-rooted calls — then share the
	// expensive precomputations. Artifacts are pure functions of
	// (graph, options), so results stay byte-identical to the uncached
	// path (pinned by the shim-equivalence golden test). Components of
	// < 3 vertices and disconnected graphs take the whole-graph path.
	// A caller-supplied operator (req.Spectral.Operator or
	// req.Spectral.Multilevel.FinestOp) bypasses the cache: the caller
	// wants that exact instance driven (instrumented or preconditioned
	// operators), and cached artifacts install their own.
	cached := false
	if req.Artifacts == nil && s.cache != nil && req.Spectral.Operator == nil &&
		req.Spectral.Multilevel.FinestOp == nil && g.N() >= 3 {
		req.Artifacts = s.cache.WholeIfConnected(g, req.Spectral)
		cached = req.Artifacts != nil
	}
	start := time.Now()
	// SafeOrder: a panicking registered Orderer becomes this call's error
	// (*pipeline.PanicError, stack attached) — a third-party algorithm can
	// fail a request, never the process hosting the Session.
	res, err := pipeline.SafeOrder(ctx, ord, name, g, &req)
	res.Algorithm = name
	res.Elapsed = time.Since(start)
	if err != nil {
		return res, err
	}
	if cached && res.Perm != nil {
		// The artifact-backed paths may return the memoized ordering
		// itself; callers own their Result, so hand out a copy and keep the
		// cache immutable.
		res.Perm = append(perm.Perm(nil), res.Perm...)
	}
	// Length first: Check only proves the slice permutes its own indices,
	// and the envelope scorer panics on a size mismatch.
	if len(res.Perm) != g.N() {
		return res, fmt.Errorf("envred: %s returned a %d-length ordering for a %d-vertex graph", name, len(res.Perm), g.N())
	}
	if cerr := res.Perm.Check(); cerr != nil {
		return res, fmt.Errorf("envred: %s returned an invalid permutation: %w", name, cerr)
	}
	if wantStats {
		res.Stats = envelope.Compute(g, res.Perm)
	}
	return res, nil
}

// Auto races the session's portfolio per connected component (see the
// package-level Auto) with the session's seed, parallelism and budget,
// reusing the session's per-graph artifact cache. The full per-component
// report rides in Result.Report.
func (s *Session) Auto(ctx context.Context, g *Graph) (Result, error) {
	return s.AutoWith(ctx, g, AutoOptions{
		Seed:        s.opt.Seed,
		Spectral:    s.opt.Spectral,
		Parallelism: s.opt.Parallelism,
		Portfolio:   s.opt.Portfolio,
		Budget:      s.opt.Budget,
	})
}

// AutoWith is Auto with explicit engine options (the session contributes
// its artifact cache, and ctx overrides opt.Context).
func (s *Session) AutoWith(ctx context.Context, g *Graph, opt AutoOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt.Context = ctx
	if opt.Cache == nil {
		opt.Cache = s.cache
	}
	start := time.Now()
	p, rep, err := pipeline.Auto(g, opt)
	res := Result{
		Perm:      p,
		Algorithm: "AUTO",
		Stats:     rep.Stats,
		Report:    &rep,
		Elapsed:   time.Since(start),
	}
	if rep.Eigensolves > 0 {
		solve := rep.Solve
		res.Solve = &solve
	}
	return res, err
}

// Fiedler computes the Fiedler vector of the connected graph g with the
// session's eigensolver options, reporting the uniform solver statistics
// (λ2 in Stats.Lambda). Repeated calls on the same graph are served from
// the session's artifact cache — the eigensolve runs once.
func (s *Session) Fiedler(ctx context.Context, g *Graph) ([]float64, SolveStats, error) {
	return s.fiedler(ctx, g, s.spectral())
}

func (s *Session) fiedler(ctx context.Context, g *Graph, opt core.Options) ([]float64, SolveStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ws := scratch.Get()
	defer scratch.Put(ws)
	// Caller-supplied operators bypass the cache for the same reason Do's
	// do: the caller wants that exact instance driven, while cached
	// artifacts install their own shared operator.
	if s.cache != nil && opt.Operator == nil && opt.Multilevel.FinestOp == nil {
		if a := s.cache.WholeIfConnected(g, opt); a != nil {
			x, st, err := a.Fiedler(ctx, ws)
			if x != nil {
				// The memoized vector stays cache-owned; callers get a copy.
				x = append([]float64(nil), x...)
			}
			return x, st, err
		}
	}
	// No cache (or unspecified disconnected input): solve directly, exactly
	// as the historical core path does.
	return core.FiedlerConnectedWS(ctx, ws, g, opt)
}

// Reset drops the session's in-memory artifact cache, releasing every
// graph, subgraph and eigenvector it was pinning. Useful when a long-lived
// Session (including the DefaultSession behind the top-level shims) has
// finished with a working set of graphs and the memory should go back to
// the collector. The persistent store (SessionOptions.Store) is untouched:
// a reset session re-warms from it by content instead of re-solving.
func (s *Session) Reset() {
	if s.cache != nil {
		s.cache.Clear()
	}
}
