package envred_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	envred "repro"
)

func TestQuickstartFlow(t *testing.T) {
	g := envred.Grid(20, 10)
	p, info, err := envred.Spectral(g, envred.SpectralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	s := envred.Stats(g, p)
	if s.Esize <= 0 || s.Bandwidth <= 0 {
		t.Fatalf("stats = %+v", s)
	}
	want := 4 * math.Pow(math.Sin(math.Pi/40), 2)
	if math.Abs(info.Lambda2-want) > 1e-4 {
		t.Fatalf("λ2 = %v, want %v", info.Lambda2, want)
	}
}

func TestAllPublicOrderings(t *testing.T) {
	g := envred.RandomGraph(80, 160, 1)
	for name, f := range map[string]func(*envred.Graph) envred.Perm{
		"RCM": envred.RCM, "CM": envred.CuthillMcKee, "GPS": envred.GPS,
		"GK": envred.GK, "King": envred.King, "Sloan": envred.Sloan,
	} {
		p := f(g)
		if err := p.Check(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestEndToEndSolve(t *testing.T) {
	g := envred.Grid9(15, 15)
	p, _, err := envred.Spectral(g, envred.SpectralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := envred.NewEnvelopeMatrix(g, p, envred.LaplacianPlusIdentity(g))
	if err != nil {
		t.Fatal(err)
	}
	f, err := envred.Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	for i := range b {
		b[i] = 1
	}
	x := f.SolveOriginal(b)
	// (L+I)x = 1 ⇒ x = 1 is NOT the solution (Lx=0 ⇒ x=1 gives (L+I)1 = 1 ✓).
	// Actually L·1 = 0, so (L+I)·1 = 1: the exact solution IS the ones vector.
	for i, xi := range x {
		if math.Abs(xi-1) > 1e-10 {
			t.Fatalf("x[%d] = %v, want 1", i, xi)
		}
	}
	if f.Flops() <= 0 || f.EnvelopeSize() != envred.Esize(g, p) {
		t.Fatal("factor metadata wrong")
	}
}

func TestMatrixMarketRoundTripPublic(t *testing.T) {
	g := envred.Star(12)
	var buf bytes.Buffer
	if err := envred.WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := envred.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 12 || back.M() != 11 {
		t.Fatalf("round trip: N=%d M=%d", back.N(), back.M())
	}
}

func TestSpyPublic(t *testing.T) {
	g := envred.Path(50)
	art := envred.SpyASCII(g, envred.Identity(50), 10)
	if len(strings.Split(strings.TrimSpace(art), "\n")) != 10 {
		t.Fatal("spy ascii shape wrong")
	}
	var buf bytes.Buffer
	if err := envred.SpyPGM(&buf, g, envred.Identity(50), 16); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P5\n")) {
		t.Fatal("not a PGM")
	}
}

func TestProblemsPublic(t *testing.T) {
	if len(envred.Problems()) != 18 {
		t.Fatal("problem catalogue incomplete")
	}
	spec, ok := envred.ProblemByName("POW9")
	if !ok {
		t.Fatal("POW9 missing")
	}
	p := spec.Generate(0.2, 1)
	if p.G.N() == 0 {
		t.Fatal("empty problem")
	}
}

func TestEnvelopeBoundsPublic(t *testing.T) {
	g := envred.Grid(12, 12)
	_, lambda2, err := envred.Fiedler(g, envred.SpectralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := envred.EnvelopeBounds(g.N(), g.MaxDegree(), lambda2, envred.GershgorinBound(g))
	p, _, _ := envred.Spectral(g, envred.SpectralOptions{})
	es := float64(envred.Esize(g, p))
	if es < b.EsizeLower {
		t.Fatalf("achieved envelope %v below the λ2 lower bound %v", es, b.EsizeLower)
	}
	if b.EsizeLower <= 0 || b.EsizeUpper <= b.EsizeLower {
		t.Fatalf("degenerate bounds %+v", b)
	}
}

func TestFrontwidthsPublic(t *testing.T) {
	g := envred.Grid(10, 10)
	p := envred.RCM(g)
	var sum int64
	for _, f := range envred.Frontwidths(g, p) {
		sum += int64(f)
	}
	if sum != envred.Esize(g, p) {
		t.Fatal("frontwidth identity violated through public API")
	}
}
