// Package envred (import path "repro") is a Go implementation of the
// spectral envelope-reduction algorithm of Barnard, Pothen & Simon
// (Supercomputing '93): reordering a sparse symmetric matrix to shrink its
// envelope (profile/variable-band) by sorting the components of a second
// Laplacian eigenvector (Fiedler vector).
//
// The package bundles everything the paper's evaluation needs, built from
// scratch on the standard library:
//
//   - a CSR graph substrate with BFS level structures and pseudo-peripheral
//     vertex location,
//   - a Lanczos eigensolver and the multilevel Fiedler solver of §3
//     (maximal-independent-set contraction, interpolation, Rayleigh
//     Quotient Iteration with MINRES inner solves),
//   - the spectral ordering itself (Algorithm 1) plus the spectral–Sloan
//     hybrid the paper's closing section anticipates,
//   - the classical competitors: reverse Cuthill–McKee, Gibbs–Poole–
//     Stockmeyer, Gibbs–King, King and Sloan,
//   - envelope parameter computation (size, work, bandwidth, 1-sum, 2-sum,
//     wavefront), envelope Cholesky and root-free LDLᵀ factorization with
//     solves, IC(0) incomplete factorization and preconditioned CG,
//   - a value-weighted variant of the spectral ordering for matrices with
//     numerical entries,
//   - Matrix Market and Harwell–Boeing I/O, spy-plot rendering, and
//     deterministic generators reproducing the paper's 18 test problems by
//     size and topology class,
//   - a parallel portfolio ordering engine (Auto) that decomposes the
//     graph into connected components, races a configurable portfolio of
//     the above algorithms per component on a bounded worker pool, keeps
//     the smallest-envelope candidate per component and stitches the
//     winners into one deterministic global permutation.
//
// # Quick start
//
//	g := envred.Grid(40, 30)                       // a 5-point mesh
//	p, info, err := envred.Spectral(g, envred.SpectralOptions{})
//	if err != nil { ... }
//	s := envred.Stats(g, p)
//	fmt.Println(s.Esize, s.Bandwidth, info.Lambda2)
//
// # Choosing an ordering
//
// Spectral is the paper's algorithm and the right default on a single
// large connected mesh. Prefer Auto when the input may be disconnected,
// when no single algorithm is known to dominate the workload (the
// portfolio's winner varies by component topology), or when spare cores
// can hide the cost of racing the portfolio:
//
//	p, rep, err := envred.Auto(g, envred.AutoOptions{Seed: 1})
//	if err != nil { ... }
//	fmt.Println(rep.Stats.Esize, rep.Wins)         // per-algorithm wins
//
// Auto's envelope is never worse than the best portfolio member's on any
// component, and its result is byte-identical for a fixed seed regardless
// of AutoOptions.Parallelism — unless AutoOptions.Budget is set, which
// skips slow candidates by wall clock and so trades determinism for
// latency.
//
// Orderings use the new→old convention: p[k] is the original index of the
// row placed k-th. See the examples directory for complete programs and
// cmd/paperbench for the harness that regenerates every table and figure
// of the paper.
package envred
