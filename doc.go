// Package envred (import path "repro") is a Go implementation of the
// spectral envelope-reduction algorithm of Barnard, Pothen & Simon
// (Supercomputing '93): reordering a sparse symmetric matrix to shrink its
// envelope (profile/variable-band) by sorting the components of a second
// Laplacian eigenvector (Fiedler vector).
//
// The package bundles everything the paper's evaluation needs, built from
// scratch on the standard library:
//
//   - a CSR graph substrate with BFS level structures and pseudo-peripheral
//     vertex location,
//   - a unified eigensolver engine (internal/solver): one Solver interface
//     with uniform statistics (matvecs, RQI iterations, Jacobi sweeps,
//     hierarchy depth, residual, convergence) implemented by a Lanczos
//     solver, the multilevel Fiedler scheme of §3 (maximal-independent-set
//     contraction, interpolation, Rayleigh Quotient Iteration with MINRES
//     inner solves) and standalone RQI refinement,
//   - the spectral ordering itself (Algorithm 1) plus the spectral–Sloan
//     hybrid the paper's closing section anticipates,
//   - the classical competitors: reverse Cuthill–McKee, Gibbs–Poole–
//     Stockmeyer, Gibbs–King, King and Sloan,
//   - envelope parameter computation (size, work, bandwidth, 1-sum, 2-sum,
//     wavefront), envelope Cholesky and root-free LDLᵀ factorization with
//     solves, IC(0) incomplete factorization and preconditioned CG,
//   - a value-weighted variant of the spectral ordering for matrices with
//     numerical entries,
//   - Matrix Market and Harwell–Boeing I/O, spy-plot rendering, and
//     deterministic generators reproducing the paper's 18 test problems by
//     size and topology class,
//   - a parallel portfolio ordering engine (Auto) that decomposes the
//     graph into connected components, races a configurable portfolio of
//     registered algorithms per component on a bounded worker pool, keeps
//     the smallest-envelope candidate per component and stitches the
//     winners into one deterministic global permutation,
//   - a context-first ordering service: a pluggable Orderer registry
//     (Register, Lookup, Algorithms) that every built-in self-registers
//     into and user algorithms join at runtime, and a reusable,
//     goroutine-safe Session that owns per-graph artifact caches and the
//     scratch/solver/SpMV worker pools across calls.
//
// # Quick start
//
//	g := envred.Grid(40, 30)                       // a 5-point mesh
//	p, info, err := envred.Spectral(g, envred.SpectralOptions{})
//	if err != nil { ... }
//	s := envred.Stats(g, p)
//	fmt.Println(s.Esize, s.Bandwidth, info.Lambda2)
//
// # The ordering service: Session and the Orderer registry
//
// The service surface is a Session — long-lived, goroutine-safe, context-
// first. It owns a per-graph artifact cache (component decomposition,
// extracted subgraphs, Fiedler eigensolves, peripheral roots and pseudo-
// diameter pairs; LRU-bounded by SessionOptions.CacheGraphs), so repeated
// calls on the same graph pay for the expensive precomputations once:
//
//	sess := envred.NewSession(envred.SessionOptions{Seed: 1})
//	res, err := sess.Order(ctx, g, envred.AlgSpectral)  // any registered name
//	res, err = sess.Auto(ctx, g)                        // portfolio race
//	x, solve, err := sess.Fiedler(ctx, g)               // cached eigensolve
//
// Every method returns the uniform Result{Perm, Stats, Solve, Info,
// Algorithm, Elapsed, Report}. Cancelling ctx (or exceeding an Auto
// Budget) interrupts in-flight eigensolves at restart / V-cycle
// granularity and returns the typed *ErrCancelled carrying the best-so-far
// fallback eigenpair.
//
// Algorithms are pluggable: anything implementing Orderer can Register
// under a name, becoming callable via Session.Order and raceable in Auto
// portfolios with full access to the per-component artifact cache
// (OrderRequest.Artifacts) — see examples/customorderer for a user
// algorithm that outbids the built-ins on the components it specializes
// in. The built-ins (RCM, CM, GPS, GK, KING, SLOAN, SPECTRAL,
// SPECTRAL+SLOAN, WEIGHTED) self-register at init; Algorithms() lists the
// current set.
//
// Plugin code is isolated: an Orderer that panics fails its call, never
// the process. Session.Order returns a *PanicError carrying the panic
// value and stack, a panicking candidate inside an Auto portfolio loses
// only its own slot (the race completes with the surviving candidates and
// the report records the error), and a panicking batch item fails only
// its BatchResult. The worker pools behind all three survive and keep
// serving subsequent calls.
//
// The historical one-shot functions (Spectral, SpectralSloan,
// WeightedSpectral, Auto, Fiedler, RCM, ...) remain as thin shims over a
// lazily-initialized DefaultSession and stay byte-identical to their
// pre-Session outputs (pinned by the shim-equivalence golden test).
//
// # Batch ordering
//
// Session.OrderBatch is the throughput path: many graphs, one registered
// algorithm, one call. Items are independent — each BatchResult carries
// either the uniform Result or that item's error — and every permutation
// is byte-identical to a sequential Session.Order on the same graph, seed
// and options (pinned by test). The win is amortization, not semantics:
// a persistent pool of workers (BatchOptions.Workers, default GOMAXPROCS)
// holds one scratch workspace each across the whole batch, cache-eligible
// spectral items run a fast path that reuses the Session's memoized
// eigensolves and envelope statistics, and recycling the Results slice
// across calls makes the warm steady state allocation-free (0 allocs/op,
// gated by BenchmarkOrderBatch in CI):
//
//	results, err := sess.OrderBatch(ctx, graphs, envred.BatchOptions{
//		Algorithm: envred.AlgSpectral,
//		Seed:      1,
//		Results:   results, // recycled from the previous batch, may be nil
//	})
//
// The same path serves POST /v1/order/batch on cmd/envorderd (one JSON
// document in, aligned results and per-item errors out), client.OrderBatch
// on the typed client, and envorder -batch on the CLI.
//
// # Persistent artifact store
//
// The Session's in-memory cache is tier 1: keyed by graph pointer, gone
// with the process. SessionOptions.Store binds a tier 2 that persists
// eigensolve artifacts by content — the canonical SHA-256 fingerprint of
// the graph's CSR arrays plus a digest of the spectral options — so a
// daemon restart comes up warm, replicas pool eigensolves through a shared
// directory, and a second CLI run on the same matrix performs zero solves:
//
//	st, err := envred.OpenStore("fs:///var/cache/envorder?max_bytes=1073741824")
//	if err != nil { ... }
//	defer st.Close()
//	sess := envred.NewSession(envred.SessionOptions{Store: st})
//
// The contract: the caller owns the store (open it, share it across
// sessions and processes, close it when every session is done); tier-1
// misses probe it before solving and successful solves are written back
// (a spectral ordering upgrades a Fiedler-only entry in place); failures
// degrade gracefully — a corrupt, truncated or unreadable entry is a miss
// plus a counted error (wrap it with NewCountedStore to observe traffic),
// the entry is dropped and rewritten by the re-solve, and no store outcome
// can ever change a result, only its cost. Stored vectors obey the same
// read-only memoized-slice contract as freshly solved ones. Backends are
// URL-dispatched (OpenStore, RegisterStoreDriver): the built-in fs://
// backend writes one file per entry with atomic write-then-rename and
// oldest-first size-bounded eviction (?max_bytes), and mem:// is an
// in-process LRU for tests and single-process pooling.
//
// For production use, wrap the backend in NewResilientStore: it adds
// per-operation timeouts, capped full-jitter retries of transient errors
// (ErrStoreTransient, or anything exposing Retryable() bool), and a
// circuit breaker that fast-fails traffic to a repeatedly-failing backend
// and probes it periodically until it recovers — ResilientStore.Stats
// reports the breaker state and counters. The chaos:// driver wraps any
// inner store URL with deterministic seeded fault injection for testing
// this layer (see internal/store for the knobs).
//
// # Choosing an ordering
//
// Spectral is the paper's algorithm and the right default on a single
// large connected mesh. Prefer Auto when the input may be disconnected,
// when no single algorithm is known to dominate the workload (the
// portfolio's winner varies by component topology), or when spare cores
// can hide the cost of racing the portfolio:
//
//	p, rep, err := envred.Auto(g, envred.AutoOptions{Seed: 1})
//	if err != nil { ... }
//	fmt.Println(rep.Stats.Esize, rep.Wins)         // per-algorithm wins
//
// Auto's envelope is never worse than the best portfolio member's on any
// component, and its result is byte-identical for a fixed seed regardless
// of AutoOptions.Parallelism — unless AutoOptions.Budget is set, which
// skips slow candidates by wall clock and so trades determinism for
// latency.
//
// Orderings use the new→old convention: p[k] is the original index of the
// row placed k-th. See the examples directory for complete programs and
// cmd/paperbench for the harness that regenerates every table and figure
// of the paper.
//
// # Solver architecture
//
// Every Fiedler computation goes through the unified engine in
// internal/solver: a Solver interface (Solve(ctx, ws, g) → vector,
// SolveStats, error) implemented by the direct Lanczos solver, the §3
// multilevel scheme and standalone RQI, with the context checked in the
// restart and V-cycle loops so cancellation and budgets interrupt real
// work. SpectralOptions.Method picks the scheme
// (MethodAuto crosses from Lanczos to multilevel above
// SpectralOptions.AutoThreshold, default 2000 vertices), and every layer
// reports the same SolveStats record: SpectralInfo.Solve for the ordering
// entry points, AutoReport.Solve plus a per-spectral-candidate copy for
// the portfolio engine, and a matvecs column in the harness tables.
// Partial convergence is surfaced, not swallowed: a solver that runs out
// of budget returns its best vector with Converged=false and the residual
// quantifying the miss.
//
// The portfolio engine adds a per-component artifact cache on top: the
// Fiedler vector, the George–Liu pseudo-peripheral root and the GPS
// pseudo-diameter pair are each computed once per component and shared by
// every candidate that needs them, so racing SPECTRAL and SPECTRAL+SLOAN
// costs one eigensolve, not two. cmd/envorder's -stats json flag emits the
// whole record — envelope parameters, solver statistics, per-candidate
// portfolio results — as one machine-readable document.
//
// # Allocation-free hot paths
//
// The measurement and extraction layers have two call surfaces. The public
// functions here (Stats, Esize, Bandwidth, the ordering constructors) are
// convenience wrappers: each borrows a pooled workspace, so they are safe,
// concurrent and moderately fast, but pay pool traffic per call. The
// internal *Into / *WS variants (envelope.ComputeInto, envelope.EsizeInto,
// graph.SubgraphInto, order.RCMWS, core.SpectralWS,
// multilevel.FiedlerWS, ...) take an explicit scratch workspace and run
// with zero steady-state allocations; the parallel engine behind Auto
// checks one workspace out per worker and threads it through subgraph
// extraction, every portfolio algorithm and the fused envelope scoring of
// each candidate. The multilevel solver carves its whole hierarchy —
// coarse CSR arrays, domain maps, per-level operators, iterates and MINRES
// work vectors — out of the same arenas, so the V-cycle refinement
// (interpolate + smooth + RQI) runs at 0 allocs/op once warm.
//
// The Lanczos eigensolve — the hottest loop in the repository — follows
// the same discipline with its own workspace (lanczos.Work): the Krylov
// basis is a single contiguous row-major backing array (row j = basis
// vector j), reorthogonalization runs as blocked BLAS-2 kernels over it
// (linalg.OrthoMGS for the modified-Gram–Schmidt pass, linalg.GemvT /
// linalg.GemvSub for the classical refinement pass near breakdown), the
// α/β tridiagonal buffers and the Ritz extraction scratch are reused
// across restart cycles, and the operators fuse the three-term recurrence
// into the matvec (linalg.AxpyApplier). lanczos.FiedlerWS with a warm Work
// is 0 allocs/op per solve. The matvec itself is laplacian.ParallelOp:
// nonzero-balanced row blocks executed by a pool of persistent worker
// goroutines shared process-wide, engaged automatically above the
// laplacian.MinRowsPerWorker / MinNnzPerWorker thresholds (the tunable
// parallel-crossover knobs) or by explicit request, with the chosen
// fan-out reported as SolveStats.Workers through every layer. The operator
// also picks its storage layout per graph (laplacian.Auto/AutoFrom): above
// laplacian.SellMinRows rows it is repacked into a SELL-C-σ sliced-ELLPACK
// layout (laplacian.NewSell; rows degree-sorted within σ-windows, packed
// into 8-row column-major slices) whose branch-free inner loop carries
// eight independent accumulator chains where CSR's per-row loop has one;
// smaller graphs keep plain CSR, whose packing cost would not amortize.
// Every layout/parallel combination is bitwise-identical — selection is
// purely a speed decision. Builds with GOAMD64=v3 swap the innermost
// linalg kernels for FMA variants (see linalg.KernelISA).
//
// The workspace contract: a workspace must not be shared across goroutines,
// and buffers obtained from one are only valid until the matching release —
// never retain them or return them to callers. Results that outlive a call
// (permutations, extracted subgraphs held across pipeline stages, Fiedler
// vectors memoized in the artifact cache) are always freshly allocated or
// copied out. testing.AllocsPerRun guards in internal/envelope,
// internal/graph, internal/multilevel, internal/lanczos and
// internal/linalg pin the steady-state envelope scoring, subgraph
// extraction, V-cycle refinement, Lanczos solve and Ritz extraction paths
// at 0 allocs/op, and CI regenerates the BENCH_pipeline.json artifact and
// fails if those gates regress.
//
// These prose contracts are also enforced statically. internal/analysis
// implements five project-specific analyzers — wsretain (workspace
// lifetime), ctxflow (context threading), errsentinel (errors.Is over
// ==/!= and %w wrapping), noalloc and readonly (the //envlint:noalloc and
// //envlint:readonly function markers carried by the kernels above) — and
// cmd/envlint runs them as a multichecker over every build variant in CI.
// A deviation from any contract in this documentation fails the build
// rather than waiting for a reviewer; deliberate exceptions carry an
// //envlint:ignore directive with a mandatory reason.
package envred
