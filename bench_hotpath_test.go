// Hot-path microbenchmarks: envelope scoring, subgraph extraction, CSR
// construction and the portfolio engine on the generated suite. These are
// the per-candidate costs of the pipeline; cmd/benchjson turns their output
// into the BENCH_pipeline.json artifact and CI gates the allocation counts.
package envred_test

import (
	"testing"

	envred "repro"
	"repro/internal/envelope"
	"repro/internal/graph"
)

// benchDisconnected builds a multi-component graph (a union of grids) used
// by the subgraph-extraction and portfolio benchmarks.
func benchDisconnected() (*graph.Graph, [][]int) {
	b := graph.NewBuilder(30*30 + 20*20 + 10*10)
	off := 0
	for _, side := range []int{30, 20, 10} {
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				v := off + r*side + c
				if c+1 < side {
					b.AddEdge(v, v+1)
				}
				if r+1 < side {
					b.AddEdge(v, v+side)
				}
			}
		}
		off += side * side
	}
	g := b.Build()
	return g, graph.Components(g)
}

// BenchmarkEnvelopeCompute measures the all-stats envelope scoring of one
// ordering — the cost Auto pays per (component, algorithm) candidate.
func BenchmarkEnvelopeCompute(b *testing.B) {
	p := benchProblem(b, "BARTH4")
	o := envred.RCM(p.G)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = envelope.Compute(p.G, o)
	}
}

// BenchmarkEnvelopeEsize measures the envelope-size-only scoring used by
// Algorithm 1's ascending/descending comparison.
func BenchmarkEnvelopeEsize(b *testing.B) {
	p := benchProblem(b, "BARTH4")
	o := envred.RCM(p.G)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = envelope.Esize(p.G, o)
	}
}

// BenchmarkSubgraph measures induced-subgraph extraction of every component
// of a disconnected graph — the pipeline's stage-1 cost.
func BenchmarkSubgraph(b *testing.B) {
	g, comps := benchDisconnected()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range comps {
			_, _ = g.Subgraph(c)
		}
	}
}

// BenchmarkBuilderBuild measures canonical CSR construction from an edge
// list.
func BenchmarkBuilderBuild(b *testing.B) {
	p := benchProblem(b, "BARTH4")
	edges := p.G.Edges()
	n := p.G.N()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := graph.NewBuilder(n)
		for _, e := range edges {
			bb.AddEdge(e[0], e[1])
		}
		_ = bb.Build()
	}
}

// BenchmarkAutoSuite runs the portfolio engine on a fixed disconnected
// graph with the cheap combinatorial portfolio — the pipeline number the
// BENCH_pipeline.json trajectory tracks.
func BenchmarkAutoSuite(b *testing.B) {
	g, _ := benchDisconnected()
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := envred.Auto(g, envred.AutoOptions{
					Seed:        benchSeed,
					Parallelism: workers,
					Portfolio:   []string{envred.AlgRCM, envred.AlgGK, envred.AlgSloan},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("spectral", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _, err := envred.Auto(g, envred.AutoOptions{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
