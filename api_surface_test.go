package envred_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPISurface is the golden API-surface gate: it derives the
// exported symbol list of the root package (the go doc surface — types,
// funcs, consts, vars and exported methods) from the source and compares
// it against the committed testdata/api_surface.golden. An accidental
// removal or rename fails the test; intentional surface changes are
// committed by regenerating the golden with UPDATE_API_SURFACE=1:
//
//	UPDATE_API_SURFACE=1 go test -run TestPublicAPISurface .
//
// The daemon's typed client (package client) is public surface too and
// gets the same treatment against testdata/api_surface_client.golden.
func TestPublicAPISurface(t *testing.T) {
	t.Run("root", func(t *testing.T) {
		checkSurface(t, ".", "testdata/api_surface.golden")
	})
	t.Run("client", func(t *testing.T) {
		checkSurface(t, "client", "testdata/api_surface_client.golden")
	})
}

func checkSurface(t *testing.T, dir, golden string) {
	got := publicSurface(t, dir)
	if os.Getenv("UPDATE_API_SURFACE") != "" {
		if err := os.WriteFile(golden, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d symbols)", golden, len(got))
		return
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with UPDATE_API_SURFACE=1): %v", golden, err)
	}
	want := strings.Split(strings.TrimSpace(string(raw)), "\n")

	wantSet := map[string]bool{}
	for _, s := range want {
		wantSet[s] = true
	}
	gotSet := map[string]bool{}
	for _, s := range got {
		gotSet[s] = true
	}
	var removed, added []string
	for _, s := range want {
		if !gotSet[s] {
			removed = append(removed, s)
		}
	}
	for _, s := range got {
		if !wantSet[s] {
			added = append(added, s)
		}
	}
	if len(removed) > 0 {
		t.Errorf("public API symbols REMOVED (breaking change — update %s with UPDATE_API_SURFACE=1 only if intentional):\n  %s",
			golden, strings.Join(removed, "\n  "))
	}
	if len(added) > 0 {
		t.Errorf("public API symbols added but not recorded in %s (regenerate with UPDATE_API_SURFACE=1):\n  %s",
			golden, strings.Join(added, "\n  "))
	}
}

// publicSurface parses the package's non-test sources and lists every
// exported top-level symbol: "func Name", "type Name", "const Name",
// "var Name", and "method (Recv) Name" for exported methods on exported
// receivers.
func publicSurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Recv == nil {
						out = append(out, "func "+d.Name.Name)
						continue
					}
					recv := recvTypeName(d.Recv.List[0].Type)
					if recv == "" || !ast.IsExported(recv) {
						continue
					}
					out = append(out, fmt.Sprintf("method (%s) %s", recv, d.Name.Name))
				case *ast.GenDecl:
					kind := ""
					switch d.Tok {
					case token.TYPE:
						kind = "type"
					case token.CONST:
						kind = "const"
					case token.VAR:
						kind = "var"
					default:
						continue
					}
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() {
								out = append(out, kind+" "+sp.Name.Name)
							}
						case *ast.ValueSpec:
							for _, id := range sp.Names {
								if id.IsExported() {
									out = append(out, kind+" "+id.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

func recvTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	}
	return ""
}
