//go:build integration

// Integration tests for the envorderd daemon, run with
//
//	go test -tags integration ./client/...
//
// When ENVORDERD_ADDR is set (host:port or full URL) the tests target
// that live daemon — the CI integration job builds cmd/envorderd, starts
// it, and points this suite at it. ENVORDERD_API_KEY carries the key for
// daemons running with -api-keys. Without ENVORDERD_ADDR the suite spins
// an in-process server so the tier also runs on a bare checkout.
package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	envred "repro"
	"repro/client"
	"repro/internal/service"
)

// integrationTarget resolves the daemon under test.
func integrationTarget(t *testing.T) *client.Client {
	t.Helper()
	var opts []client.Option
	if key := os.Getenv("ENVORDERD_API_KEY"); key != "" {
		opts = append(opts, client.WithAPIKey(key))
	}
	if addr := os.Getenv("ENVORDERD_ADDR"); addr != "" {
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		c := client.New(addr, opts...)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := c.Health(ctx); err != nil {
			t.Fatalf("daemon at %s not healthy: %v", addr, err)
		}
		return c
	}
	svc := service.New(service.Config{Seed: 1})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return client.New(ts.URL, opts...)
}

func TestIntegrationOrderMatchesLocal(t *testing.T) {
	c := integrationTarget(t)
	ctx := context.Background()
	g := envred.Grid(40, 30)
	sess := envred.NewSession(envred.SessionOptions{Seed: 7})

	for _, alg := range []string{envred.AlgRCM, envred.AlgSloan, envred.AlgSpectral} {
		want, err := sess.Do(ctx, g, alg, envred.OrderRequest{Seed: 7})
		if err != nil {
			t.Fatalf("%s local: %v", alg, err)
		}
		got, err := c.Order(ctx, g, client.OrderRequest{Algorithm: alg, Seed: 7})
		if err != nil {
			t.Fatalf("%s remote: %v", alg, err)
		}
		if got.Algorithm != alg {
			t.Fatalf("served %q, want %q", got.Algorithm, alg)
		}
		if len(got.Perm) != len(want.Perm) {
			t.Fatalf("%s: perm length %d, want %d", alg, len(got.Perm), len(want.Perm))
		}
		for i := range got.Perm {
			if got.Perm[i] != want.Perm[i] {
				t.Fatalf("%s: remote ordering diverges from local at %d: %d vs %d",
					alg, i, got.Perm[i], want.Perm[i])
			}
		}
		if got.Envelope.Esize != want.Stats.Esize {
			t.Fatalf("%s: esize %d, want %d", alg, got.Envelope.Esize, want.Stats.Esize)
		}
	}
}

func TestIntegrationJobLifecycle(t *testing.T) {
	c := integrationTarget(t)
	ctx := context.Background()
	g := envred.Grid(35, 28)

	id, err := c.SubmitJob(ctx, g, client.OrderRequest{Algorithm: "auto", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	res, err := c.WaitJob(wctx, id, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "AUTO" || len(res.Perm) != g.N() {
		t.Fatalf("job result %q, perm length %d", res.Algorithm, len(res.Perm))
	}

	want, err := envred.NewSession(envred.SessionOptions{Seed: 1}).AutoWith(ctx, g, envred.AutoOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Perm {
		if res.Perm[i] != want.Perm[i] {
			t.Fatalf("async AUTO diverges from local at %d: %d vs %d", i, res.Perm[i], want.Perm[i])
		}
	}
}

func TestIntegrationFiedler(t *testing.T) {
	c := integrationTarget(t)
	ctx := context.Background()
	g := envred.Grid(25, 20)

	fr, err := c.Fiedler(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if fr.N != g.N() || len(fr.Vector) != g.N() {
		t.Fatalf("fiedler n=%d vector length %d, want %d", fr.N, len(fr.Vector), g.N())
	}
	if fr.Lambda2 <= 0 || fr.Lambda2 > 1 {
		t.Fatalf("lambda2 = %g, want a small positive algebraic connectivity", fr.Lambda2)
	}
	if fr.Solve == nil || fr.Solve.MatVecs == 0 {
		t.Fatalf("solve stats missing: %+v", fr.Solve)
	}
}

// TestIntegrationConcurrentLoad is the in-suite cousin of cmd/loadgen:
// 200 concurrent orderings over a handful of distinct graphs and
// algorithms, zero errors tolerated, identical requests must agree.
func TestIntegrationConcurrentLoad(t *testing.T) {
	c := integrationTarget(t)
	ctx := context.Background()
	graphs := []*envred.Graph{
		envred.Grid(30, 25), envred.Grid(31, 25), envred.Grid(32, 25), envred.Grid(33, 25),
	}
	algs := []string{"rcm", "sloan", "spectral"}
	const n = 200

	perms := make([]envred.Perm, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := graphs[i%len(graphs)]
			res, err := c.Order(ctx, g, client.OrderRequest{Algorithm: algs[i%len(algs)], Seed: 5})
			if err != nil {
				errs[i] = err
				return
			}
			if len(res.Perm) != g.N() {
				errs[i] = fmt.Errorf("perm length %d, want %d", len(res.Perm), g.N())
				return
			}
			perms[i] = res.Perm
		}(i)
	}
	wg.Wait()

	failures := 0
	for i, err := range errs {
		if err != nil {
			failures++
			if failures <= 5 {
				t.Errorf("request %d: %v", i, err)
			}
		}
	}
	if failures > 0 {
		t.Fatalf("%d/%d concurrent orderings failed (want 0)", failures, n)
	}
	// Identical (graph, algorithm) pairs repeat every len(graphs)*len(algs)
	// requests; ordering is deterministic, so their permutations must match.
	stride := len(graphs) * len(algs)
	for i := stride; i < n; i++ {
		a, b := perms[i-stride], perms[i]
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("requests %d and %d (same graph+algorithm) disagree at %d", i-stride, i, k)
			}
		}
	}
}

func TestIntegrationMetricsScrape(t *testing.T) {
	c := integrationTarget(t)
	ctx := context.Background()

	if _, err := c.Order(ctx, envred.Grid(22, 17), client.OrderRequest{Algorithm: "rcm"}); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"envorderd_orders_total", "envorderd_cache_hits_total",
		"envorderd_cache_misses_total", "envorderd_order_seconds_count",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("metrics scrape missing %s:\n%.500s", name, text)
		}
	}
}
