package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	envred "repro"
)

// BatchRequest parameterizes an OrderBatch call: one algorithm, one seed,
// one server-side budget for the whole document. AUTO and WEIGHTED are
// not batchable (the server rejects them with 400).
type BatchRequest struct {
	// Algorithm is the registered algorithm every item runs (required).
	Algorithm string
	// Seed fixes every item's randomness; 0 uses the server default.
	Seed int64
	// Timeout is the server-side budget for the whole batch. 0 uses the
	// server default.
	Timeout time.Duration
	// Workers bounds the batch's server-side parallelism (0 = server
	// default).
	Workers int
}

// BatchItemError reports one failed batch item by its index in the
// request's graph slice.
type BatchItemError struct {
	Index   int    `json:"index"`
	Message string `json:"error"`
}

func (e *BatchItemError) Error() string {
	return fmt.Sprintf("envorderd: batch item %d: %s", e.Index, e.Message)
}

// BatchResult is the /v1/order/batch reply: Results[i] answers the i-th
// graph of the request (nil when that item failed — its failure is in
// Errors), all in one round trip.
type BatchResult struct {
	Algorithm string            `json:"algorithm"`
	Count     int               `json:"count"`
	Failed    int               `json:"failed"`
	Results   []*OrderResult    `json:"results"`
	Errors    []*BatchItemError `json:"errors,omitempty"`
	ElapsedMS float64           `json:"elapsed_ms"`
}

// batchWire mirrors the server's batch request document; graphs ship as
// inline Matrix Market text, the same encoding Order uses.
type batchWire struct {
	Algorithm string          `json:"algorithm"`
	Seed      int64           `json:"seed,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	Workers   int             `json:"workers,omitempty"`
	Items     []batchItemWire `json:"items"`
}

type batchItemWire struct {
	MatrixMarket string `json:"matrix_market"`
}

// OrderBatch orders many graphs with one algorithm in a single round
// trip — the high-throughput path for suites of matrices. Items are
// independent on the server: a failed item is reported in the result's
// Errors and the rest complete. The call itself errors only when the
// whole document is rejected (unknown algorithm, oversize batch) or the
// exchange fails.
func (c *Client) OrderBatch(ctx context.Context, graphs []*envred.Graph, req BatchRequest) (*BatchResult, error) {
	doc := batchWire{
		Algorithm: req.Algorithm,
		Seed:      req.Seed,
		Workers:   req.Workers,
		Items:     make([]batchItemWire, len(graphs)),
	}
	if req.Timeout > 0 {
		doc.TimeoutMS = req.Timeout.Milliseconds()
	}
	for i, g := range graphs {
		body, err := graphBody(g)
		if err != nil {
			return nil, fmt.Errorf("client: batch item %d: %w", i, err)
		}
		doc.Items[i].MatrixMarket = string(body)
	}
	body, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("client: encoding batch: %w", err)
	}
	var out BatchResult
	if err := c.call(ctx, http.MethodPost, "/v1/order/batch", "application/json", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
