// Package client is the typed Go client of the envorderd ordering
// daemon (cmd/envorderd): the root package's Session API over HTTP/JSON,
// from the consumer side.
//
// A Client is safe for concurrent use, retries transient 5xx replies and
// network errors with exponential backoff (request bodies are buffered so
// replays are safe), and plumbs context through every call. Typical use:
//
//	c := client.New("http://localhost:8080", client.WithAPIKey("secret"))
//	res, err := c.Order(ctx, g, client.OrderRequest{Algorithm: "spectral", Seed: 1})
//	// res.Perm, res.Envelope.Esize, res.Solve ...
//
// Large matrices go through the async job API — SubmitJob returns an id,
// WaitJob polls until the ordering is ready:
//
//	id, _ := c.SubmitJob(ctx, g, client.OrderRequest{Algorithm: "auto"})
//	res, err := c.WaitJob(ctx, id, 500*time.Millisecond)
//
// Server-side failures surface as *APIError. A 503 whose ordering timed
// out mid-eigensolve may still carry a usable best-so-far permutation
// (APIError.BestSoFar, APIError.Perm) — the service's answer for callers
// with hard latency budgets; such replies are not retried.
package client
