package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	envred "repro"
	"repro/client"
	"repro/internal/service"
)

func newService(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts
}

func TestOrderRoundTrip(t *testing.T) {
	ts := newService(t, service.Config{})
	c := client.New(ts.URL)
	ctx := context.Background()
	g := envred.Grid(18, 14)

	want, err := envred.NewSession(envred.SessionOptions{Seed: 9}).Order(ctx, g, envred.AlgRCM)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Order(ctx, g, client.OrderRequest{Algorithm: "rcm", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != envred.AlgRCM || res.N != g.N() {
		t.Fatalf("got algorithm=%q n=%d", res.Algorithm, res.N)
	}
	if len(res.Perm) != len(want.Perm) {
		t.Fatalf("perm length %d, want %d", len(res.Perm), len(want.Perm))
	}
	for i := range res.Perm {
		if res.Perm[i] != want.Perm[i] {
			t.Fatalf("perm[%d] = %d, local library says %d", i, res.Perm[i], want.Perm[i])
		}
	}
	if res.Envelope.Esize != want.Stats.Esize || res.Envelope.Bandwidth != want.Stats.Bandwidth {
		t.Fatalf("envelope %+v, want esize=%d bandwidth=%d", res.Envelope, want.Stats.Esize, want.Stats.Bandwidth)
	}

	// Same content again: the daemon interns by content, so this must hit.
	res2, err := c.Order(ctx, envred.Grid(18, 14), client.OrderRequest{Algorithm: "rcm", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("repeat order of identical content should report cached=true")
	}
}

func TestAPIKeyPlumbing(t *testing.T) {
	ts := newService(t, service.Config{APIKeys: map[string]string{"hunter2": "ops"}})
	ctx := context.Background()
	g := envred.Path(8)

	_, err := client.New(ts.URL).Order(ctx, g, client.OrderRequest{Algorithm: "rcm"})
	var aerr *client.APIError
	if !errors.As(err, &aerr) || aerr.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless order: err %v, want 401 APIError", err)
	}
	if _, err := client.New(ts.URL, client.WithAPIKey("hunter2")).Order(ctx, g, client.OrderRequest{Algorithm: "rcm"}); err != nil {
		t.Fatalf("keyed order: %v", err)
	}
}

func TestAPIErrorDecoding(t *testing.T) {
	ts := newService(t, service.Config{})
	c := client.New(ts.URL)
	_, err := c.Order(context.Background(), envred.Path(5), client.OrderRequest{Algorithm: "no-such-alg"})
	var aerr *client.APIError
	if !errors.As(err, &aerr) {
		t.Fatalf("err %v, want *APIError", err)
	}
	if aerr.StatusCode != http.StatusBadRequest || !strings.Contains(aerr.Message, "unknown algorithm") {
		t.Fatalf("got %d %q", aerr.StatusCode, aerr.Message)
	}
}

func TestJobFlow(t *testing.T) {
	ts := newService(t, service.Config{})
	c := client.New(ts.URL)
	ctx := context.Background()
	g := envred.Grid(16, 13)

	id, err := c.SubmitJob(ctx, g, client.OrderRequest{Algorithm: "sloan", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty job id")
	}
	st, err := c.JobStatus(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != id {
		t.Fatalf("status id %q, want %q", st.ID, id)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	res, err := c.WaitJob(wctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != envred.AlgSloan || len(res.Perm) != g.N() {
		t.Fatalf("job result %q, perm length %d", res.Algorithm, len(res.Perm))
	}

	_, err = c.JobStatus(ctx, "no-such-job")
	var aerr *client.APIError
	if !errors.As(err, &aerr) || aerr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: err %v, want 404 APIError", err)
	}
}

func TestAlgorithmsAndFiedler(t *testing.T) {
	ts := newService(t, service.Config{Seed: 1})
	c := client.New(ts.URL)
	ctx := context.Background()

	algs, err := c.Algorithms(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range algs {
		if a == "AUTO" {
			found = true
		}
	}
	if !found {
		t.Fatalf("AUTO missing from %v", algs)
	}

	g := envred.Grid(11, 9)
	fr, err := c.Fiedler(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if fr.N != g.N() || len(fr.Vector) != g.N() || fr.Lambda2 <= 0 {
		t.Fatalf("fiedler n=%d len=%d lambda2=%g", fr.N, len(fr.Vector), fr.Lambda2)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	ts := newService(t, service.Config{})
	c := client.New(ts.URL)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "envorderd_orders_total") {
		t.Fatalf("metrics text missing order counter:\n%s", text)
	}
}

// TestRetryOnTransient5xx: 502s are retried with backoff until the
// daemon recovers.
func TestRetryOnTransient5xx(t *testing.T) {
	var calls atomic.Int32
	real := newService(t, service.Config{})
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"upstream hiccup"}`, http.StatusBadGateway)
			return
		}
		// Recovered: proxy to a real service.
		req, _ := http.NewRequestWithContext(r.Context(), r.Method, real.URL+r.URL.RequestURI(), r.Body)
		req.Header = r.Header
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32*1024)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	defer flaky.Close()

	c := client.New(flaky.URL, client.WithRetries(3, time.Millisecond))
	res, err := c.Order(context.Background(), envred.Path(10), client.OrderRequest{Algorithm: "rcm"})
	if err != nil {
		t.Fatalf("order through flaky front end: %v", err)
	}
	if len(res.Perm) != 10 {
		t.Fatalf("perm length %d", len(res.Perm))
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (2 failures + 1 success)", got)
	}
}

// TestRetryBudgetExhausted: a daemon that never recovers fails after
// 1 + maxRetries attempts with the last error preserved in the chain.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"still down"}`, http.StatusGatewayTimeout)
	}))
	defer down.Close()

	c := client.New(down.URL, client.WithRetries(2, time.Millisecond))
	_, err := c.Order(context.Background(), envred.Path(4), client.OrderRequest{Algorithm: "rcm"})
	if err == nil {
		t.Fatal("want error")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (1 + 2 retries)", got)
	}
	var aerr *client.APIError
	if !errors.As(err, &aerr) || aerr.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("err %v, want wrapped 504 APIError", err)
	}
}

// TestNoRetryOnFinalReplies: plain 500s and best-so-far 503s are final —
// exactly one attempt each.
func TestNoRetryOnFinalReplies(t *testing.T) {
	cases := []struct {
		name      string
		status    int
		body      string
		bestSoFar bool
	}{
		{name: "plain 500", status: http.StatusInternalServerError, body: `{"error":"kaput"}`},
		{name: "best-so-far 503", status: http.StatusServiceUnavailable,
			body: `{"error":"ordering timed out","best_so_far":true,"perm":[0,1,2,3]}`, bestSoFar: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int32
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(tc.status)
				w.Write([]byte(tc.body))
			}))
			defer srv.Close()

			c := client.New(srv.URL, client.WithRetries(3, time.Millisecond))
			_, err := c.Order(context.Background(), envred.Path(4), client.OrderRequest{Algorithm: "rcm"})
			var aerr *client.APIError
			if !errors.As(err, &aerr) || aerr.StatusCode != tc.status {
				t.Fatalf("err %v, want %d APIError", err, tc.status)
			}
			if aerr.BestSoFar != tc.bestSoFar {
				t.Fatalf("BestSoFar = %v, want %v", aerr.BestSoFar, tc.bestSoFar)
			}
			if tc.bestSoFar && len(aerr.Perm) != 4 {
				t.Fatalf("best-so-far perm %v", aerr.Perm)
			}
			if got := calls.Load(); got != 1 {
				t.Fatalf("%d attempts, want exactly 1 (no retry on final replies)", got)
			}
		})
	}
}

func TestJobResultNotReady(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"abc","status":"running"}`))
	}))
	defer srv.Close()
	_, err := client.New(srv.URL).JobResult(context.Background(), "abc")
	if !errors.Is(err, client.ErrJobNotReady) {
		t.Fatalf("err %v, want ErrJobNotReady", err)
	}
}

func TestNonJSONErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot says no", http.StatusTeapot)
	}))
	defer srv.Close()
	_, err := client.New(srv.URL).Algorithms(context.Background())
	var aerr *client.APIError
	if !errors.As(err, &aerr) {
		t.Fatalf("err %v, want *APIError", err)
	}
	if aerr.StatusCode != http.StatusTeapot || !strings.Contains(aerr.Message, "teapot says no") {
		t.Fatalf("got %d %q", aerr.StatusCode, aerr.Message)
	}
}
