package client_test

import (
	"context"
	"errors"
	"testing"

	envred "repro"
	"repro/client"
	"repro/internal/service"
)

// TestOrderBatchRoundTrip pins the typed batch API end to end: one
// OrderBatch call orders every graph, results align by index and each
// equals the local library's answer for the same (algorithm, seed).
func TestOrderBatchRoundTrip(t *testing.T) {
	ts := newService(t, service.Config{})
	c := client.New(ts.URL)
	ctx := context.Background()
	graphs := []*envred.Graph{envred.Grid(12, 9), envred.Grid(6, 17), envred.Grid(8, 8)}

	sess := envred.NewSession(envred.SessionOptions{Seed: 5})
	res, err := c.OrderBatch(ctx, graphs, client.BatchRequest{Algorithm: "spectral", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != len(graphs) || res.Failed != 0 || len(res.Results) != len(graphs) {
		t.Fatalf("count=%d failed=%d results=%d", res.Count, res.Failed, len(res.Results))
	}
	for i, item := range res.Results {
		want, err := sess.Order(ctx, graphs[i], envred.AlgSpectral)
		if err != nil {
			t.Fatal(err)
		}
		if item == nil || item.Algorithm != envred.AlgSpectral || item.N != graphs[i].N() {
			t.Fatalf("item %d: %+v", i, item)
		}
		for k := range item.Perm {
			if item.Perm[k] != want.Perm[k] {
				t.Fatalf("item %d: perm[%d] = %d, library says %d", i, k, item.Perm[k], want.Perm[k])
			}
		}
		if item.Envelope.Esize != want.Stats.Esize {
			t.Fatalf("item %d: esize %d, want %d", i, item.Envelope.Esize, want.Stats.Esize)
		}
	}
}

// TestOrderBatchRejection pins the typed error for unbatchable documents.
func TestOrderBatchRejection(t *testing.T) {
	ts := newService(t, service.Config{})
	c := client.New(ts.URL)
	_, err := c.OrderBatch(context.Background(), []*envred.Graph{envred.Grid(4, 4)}, client.BatchRequest{Algorithm: "auto"})
	var aerr *client.APIError
	if !errors.As(err, &aerr) || aerr.StatusCode != 400 {
		t.Fatalf("want 400 *APIError, got %v", err)
	}
}
