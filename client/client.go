package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	envred "repro"
	"repro/internal/retry"
)

// Client talks to an envorderd daemon. Create with New; zero-value
// Clients are not usable.
type Client struct {
	baseURL    string
	apiKey     string
	hc         *http.Client
	maxRetries int
	backoff    time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithAPIKey authenticates every request with the given API key
// (Authorization: Bearer).
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets the retry budget for transient failures (network
// errors and retryable 5xx replies) and the base backoff. Delays use full
// jitter: each wait is uniform in [0, min(cap, base·2^attempt)), so a
// thundering herd of clients retries spread out instead of in lockstep.
// The default is 3 retries starting at 100ms.
func WithRetries(max int, base time.Duration) Option {
	return func(c *Client) {
		c.maxRetries = max
		c.backoff = base
	}
}

// New returns a Client for the daemon at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL:    strings.TrimRight(baseURL, "/"),
		hc:         &http.Client{},
		maxRetries: 3,
		backoff:    100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// OrderRequest parameterizes an ordering call.
type OrderRequest struct {
	// Algorithm is any name the daemon's registry knows (see Algorithms),
	// or "auto" for the portfolio engine. Empty = auto.
	Algorithm string
	// Seed fixes the run's randomness; 0 uses the server default.
	Seed int64
	// Timeout is the server-side ordering budget; expiry yields a 503
	// *APIError, possibly carrying a best-so-far permutation. 0 uses the
	// server default. (Client-side cancellation rides ctx.)
	Timeout time.Duration
}

// Envelope carries the envelope parameters of an ordering, as computed by
// the server.
type Envelope struct {
	Esize         int64 `json:"esize"`
	Ework         int64 `json:"ework"`
	Bandwidth     int   `json:"bandwidth"`
	OneSum        int64 `json:"one_sum"`
	TwoSum        int64 `json:"two_sum"`
	MaxFrontwidth int   `json:"max_frontwidth"`
}

// OrderResult is a finished ordering.
type OrderResult struct {
	Algorithm string      `json:"algorithm"`
	N         int         `json:"n"`
	Nonzeros  int         `json:"nonzeros"`
	Perm      envred.Perm `json:"perm"`
	Envelope  Envelope    `json:"envelope"`
	// Lambda2 and Solve report the eigensolver when one ran.
	Lambda2 float64            `json:"lambda2,omitempty"`
	Solve   *envred.SolveStats `json:"solve,omitempty"`
	// Winners and Eigensolves summarize auto portfolio runs.
	Winners     map[string]int `json:"winners,omitempty"`
	Eigensolves int            `json:"eigensolves,omitempty"`
	// Cached reports whether the server had the graph (and so its
	// eigensolves and other artifacts) already resident.
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// FiedlerResult is the /v1/fiedler reply: the Fiedler vector, λ2 and the
// solver statistics.
type FiedlerResult struct {
	N         int                `json:"n"`
	Lambda2   float64            `json:"lambda2"`
	Vector    []float64          `json:"vector"`
	Solve     *envred.SolveStats `json:"solve,omitempty"`
	Cached    bool               `json:"cached"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

// JobStatus is the async-job poll document.
type JobStatus struct {
	ID         string `json:"id"`
	Status     string `json:"status"` // queued | running | done | failed
	Algorithm  string `json:"algorithm"`
	N          int    `json:"n"`
	CreatedMS  int64  `json:"created_unix_ms"`
	StartedMS  int64  `json:"started_unix_ms,omitempty"`
	FinishedMS int64  `json:"finished_unix_ms,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Terminal reports whether the job has finished (done or failed).
func (s *JobStatus) Terminal() bool { return s.Status == "done" || s.Status == "failed" }

// APIError is a non-2xx server reply.
type APIError struct {
	StatusCode int
	Message    string
	// BestSoFar is set on 503 timeout replies: true means the interrupted
	// run still produced a usable ordering, carried in Perm.
	BestSoFar bool
	Perm      envred.Perm
}

// Retryable reports whether the reply is worth retrying — the marker the
// shared transient-failure classifier (and so the Client's own retry
// loop) consults: gateway errors (502/504) and 503s that carry no final
// best-so-far answer are transient; a 503 with a best-so-far ordering is
// a final (partial) answer, and plain 500s are deterministic server-side
// failures that would just fail again.
func (e *APIError) Retryable() bool {
	switch e.StatusCode {
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	case http.StatusServiceUnavailable:
		return !e.BestSoFar
	default:
		return false
	}
}

func (e *APIError) Error() string {
	if e.BestSoFar {
		return fmt.Sprintf("envorderd: %d %s (best-so-far ordering available)", e.StatusCode, e.Message)
	}
	return fmt.Sprintf("envorderd: %d %s", e.StatusCode, e.Message)
}

// Order computes an ordering of g synchronously. The graph is shipped as
// Matrix Market text.
func (c *Client) Order(ctx context.Context, g *envred.Graph, req OrderRequest) (*OrderResult, error) {
	body, err := graphBody(g)
	if err != nil {
		return nil, err
	}
	var out OrderResult
	if err := c.call(ctx, http.MethodPost, "/v1/order"+req.query(), "application/x-matrix-market", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// OrderMatrixMarket is Order with the matrix already in Matrix Market
// form (the bytes are posted as-is).
func (c *Client) OrderMatrixMarket(ctx context.Context, matrix []byte, req OrderRequest) (*OrderResult, error) {
	var out OrderResult
	if err := c.call(ctx, http.MethodPost, "/v1/order"+req.query(), "application/x-matrix-market", matrix, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Fiedler computes the Fiedler vector and λ2 of the connected graph g.
func (c *Client) Fiedler(ctx context.Context, g *envred.Graph) (*FiedlerResult, error) {
	body, err := graphBody(g)
	if err != nil {
		return nil, err
	}
	var out FiedlerResult
	if err := c.call(ctx, http.MethodPost, "/v1/fiedler", "application/x-matrix-market", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Algorithms lists the algorithm names the daemon accepts.
func (c *Client) Algorithms(ctx context.Context) ([]string, error) {
	var out struct {
		Algorithms []string `json:"algorithms"`
	}
	if err := c.call(ctx, http.MethodGet, "/v1/algorithms", "", nil, &out); err != nil {
		return nil, err
	}
	return out.Algorithms, nil
}

// SubmitJob enqueues an async ordering of g and returns the job id.
func (c *Client) SubmitJob(ctx context.Context, g *envred.Graph, req OrderRequest) (string, error) {
	body, err := graphBody(g)
	if err != nil {
		return "", err
	}
	var out JobStatus
	if err := c.call(ctx, http.MethodPost, "/v1/jobs"+req.query(), "application/x-matrix-market", body, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// JobStatus polls an async job.
func (c *Client) JobStatus(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.call(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobResult fetches a finished job's ordering. A job that is still
// queued or running returns ErrJobNotReady; a failed job returns its
// failure as an *APIError.
func (c *Client) JobResult(ctx context.Context, id string) (*OrderResult, error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/result"
	resp, err := c.do(ctx, http.MethodGet, path, "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return nil, ErrJobNotReady
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiErrorOf(resp)
	}
	var out OrderResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding %s: %w", path, err)
	}
	return &out, nil
}

// ErrJobNotReady is JobResult's reply for a job that has not finished.
var ErrJobNotReady = fmt.Errorf("client: job not finished yet")

// WaitJob polls an async job every poll interval until it finishes (or
// ctx expires), then fetches the result.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*OrderResult, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.JobStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			return c.JobResult(ctx, id)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Health checks the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	var out struct {
		Status string `json:"status"`
	}
	if err := c.call(ctx, http.MethodGet, "/healthz", "", nil, &out); err != nil {
		return err
	}
	if out.Status != "ok" {
		return fmt.Errorf("client: daemon reports status %q", out.Status)
	}
	return nil
}

// Metrics fetches the daemon's Prometheus text exposition verbatim.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", "", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiErrorOf(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// Internals -------------------------------------------------------------------

func (r OrderRequest) query() string {
	q := url.Values{}
	if r.Algorithm != "" {
		q.Set("algorithm", r.Algorithm)
	}
	if r.Seed != 0 {
		q.Set("seed", fmt.Sprint(r.Seed))
	}
	if r.Timeout > 0 {
		q.Set("timeout", r.Timeout.String())
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

func graphBody(g *envred.Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := envred.WriteMatrixMarket(&buf, g); err != nil {
		return nil, fmt.Errorf("client: encoding graph: %w", err)
	}
	return buf.Bytes(), nil
}

// call runs one JSON API exchange, decoding a 2xx body into out.
func (c *Client) call(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	resp, err := c.do(ctx, method, path, contentType, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiErrorOf(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s: %w", path, err)
	}
	return nil
}

// do performs one HTTP exchange with the retry/backoff policy: network
// errors and retryable 5xx replies (502/504, and 503s that do not carry a
// final best-so-far answer) are retried up to the budget with full-jitter
// backoff (see WithRetries); bodies are byte slices, so every attempt
// replays cleanly. The waits are deadline-aware: a ctx whose deadline
// cannot outlive the next backoff fails now with the last real error
// instead of sleeping into it, and cancellation interrupts a wait
// immediately.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) (*http.Response, error) {
	pol := retry.Policy{Base: c.backoff}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.apiKey != "" {
			req.Header.Set("Authorization", "Bearer "+c.apiKey)
		}
		resp, err := c.hc.Do(req)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				// The caller gave up; don't dress cancellation as a failure.
				return nil, ctx.Err()
			}
			lastErr = err // network errors are transient by construction
		case resp.StatusCode >= 500:
			aerr := apiErrorOf(resp) // drains and closes the body
			if !retry.Transient(aerr) {
				return nil, aerr
			}
			lastErr = aerr
		default:
			return resp, nil
		}
		if attempt >= c.maxRetries {
			return nil, fmt.Errorf("client: %s %s failed after %d attempt(s): %w", method, path, attempt+1, lastErr)
		}
		if err := retry.Sleep(ctx, pol.Delay(attempt)); err != nil {
			return nil, fmt.Errorf("client: %s %s: %w (last failure: %v)", method, path, err, lastErr)
		}
	}
}

// apiErrorOf decodes a non-2xx reply into *APIError, draining the body.
func apiErrorOf(resp *http.Response) *APIError {
	defer resp.Body.Close()
	e := &APIError{StatusCode: resp.StatusCode}
	var doc struct {
		Error     string      `json:"error"`
		BestSoFar *bool       `json:"best_so_far"`
		Perm      envred.Perm `json:"perm"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(raw, &doc); err == nil && doc.Error != "" {
		e.Message = doc.Error
		e.BestSoFar = doc.BestSoFar != nil && *doc.BestSoFar
		e.Perm = doc.Perm
	} else {
		e.Message = strings.TrimSpace(string(raw))
		if e.Message == "" {
			e.Message = resp.Status
		}
	}
	return e
}
