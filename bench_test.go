// Benchmarks regenerating every table and figure of the paper's Section 4.
//
// Each BenchmarkTable4x_* sub-benchmark runs one (problem, algorithm) cell
// of the corresponding table: it computes the ordering and reports envelope
// size and bandwidth as benchmark metrics alongside the timing — the same
// three columns the paper prints. BenchmarkTable44_* times the envelope
// Cholesky factorization under SPECTRAL vs RCM (Table 4.4), and
// BenchmarkFigure4_* regenerates the BARTH4 spy plots (Figures 4.1–4.5).
//
// Problems are generated at benchScale of the paper's sizes so the full
// suite completes in minutes; `go run ./cmd/paperbench` runs the
// full-scale experiment and writes the complete tables.
package envred_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	envred "repro"
	"repro/internal/chol"
	"repro/internal/envelope"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/perm"
	"repro/internal/spy"
)

const (
	benchScale = 0.10
	benchSeed  = 1993 // the paper's year; any fixed seed works
)

var problemCache = map[string]gen.Problem{}

func benchProblem(b *testing.B, name string) gen.Problem {
	b.Helper()
	if p, ok := problemCache[name]; ok {
		return p
	}
	spec, ok := gen.ByName(name)
	if !ok {
		b.Fatalf("unknown problem %s", name)
	}
	p := spec.Generate(benchScale, benchSeed)
	problemCache[name] = p
	return p
}

// benchTableCell runs one (problem, algorithm) cell: each iteration
// computes the ordering from scratch (what the "Run time" column measures);
// envelope and bandwidth are attached as metrics.
func benchTableCell(b *testing.B, problem string, alg string) {
	p := benchProblem(b, problem)
	var f harness.OrderFunc
	for _, a := range harness.Algorithms(benchSeed) {
		if a.Name == alg {
			f = a.F
		}
	}
	if f == nil {
		b.Fatalf("unknown algorithm %s", alg)
	}
	var last perm.Perm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := f(context.Background(), p.G)
		if err != nil {
			b.Fatal(err)
		}
		last = r.Perm
	}
	b.StopTimer()
	s := envelope.Compute(p.G, last)
	b.ReportMetric(float64(s.Esize), "envelope")
	b.ReportMetric(float64(s.Bandwidth), "bandwidth")
}

func benchTable(b *testing.B, problems []string) {
	for _, prob := range problems {
		for _, alg := range []string{harness.AlgSpectral, harness.AlgGK, harness.AlgGPS, harness.AlgRCM} {
			b.Run(fmt.Sprintf("%s/%s", prob, alg), func(b *testing.B) {
				benchTableCell(b, prob, alg)
			})
		}
	}
}

// BenchmarkTable41 regenerates Table 4.1 (Boeing–Harwell structural).
func BenchmarkTable41(b *testing.B) {
	benchTable(b, []string{"BCSSTK13", "BCSSTK29", "BCSSTK30", "BCSSTK31", "BCSSTK32", "BCSSTK33"})
}

// BenchmarkTable42 regenerates Table 4.2 (Boeing–Harwell miscellaneous).
func BenchmarkTable42(b *testing.B) {
	benchTable(b, []string{"CAN1072", "POW9", "BLKHOLE", "DWT2680", "SSTMODEL"})
}

// BenchmarkTable43 regenerates Table 4.3 (NASA).
func BenchmarkTable43(b *testing.B) {
	benchTable(b, []string{"BARTH4", "SHUTTLE", "SKIRT", "PWT", "BODY", "FLAP", "IN3C"})
}

// BenchmarkTable44 regenerates Table 4.4: numeric envelope Cholesky
// factorization time under the SPECTRAL vs RCM orderings (the ordering is
// computed outside the timed loop; only the factorization is measured, as
// in the paper).
func BenchmarkTable44(b *testing.B) {
	for _, prob := range []string{"BCSSTK29", "BCSSTK33", "BARTH4"} {
		for _, alg := range []string{harness.AlgSpectral, harness.AlgRCM} {
			b.Run(fmt.Sprintf("%s/%s", prob, alg), func(b *testing.B) {
				p := benchProblem(b, prob)
				var f harness.OrderFunc
				for _, a := range harness.Algorithms(benchSeed) {
					if a.Name == alg {
						f = a.F
					}
				}
				r, err := f(context.Background(), p.G)
				if err != nil {
					b.Fatal(err)
				}
				o := r.Perm
				vals := chol.LaplacianPlusIdentity(p.G)
				var flops int64
				var esize int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					m, err := chol.NewMatrix(p.G, o, vals) // assembly untimed
					if err != nil {
						b.Fatal(err)
					}
					esize = m.EnvelopeSize()
					b.StartTimer()
					fac, err := chol.Factorize(m)
					if err != nil {
						b.Fatal(err)
					}
					flops = fac.Flops()
				}
				b.StopTimer()
				b.ReportMetric(float64(esize), "envelope")
				b.ReportMetric(float64(flops), "flops")
			})
		}
	}
}

// figureOrderings mirrors Figures 4.1–4.5: the BARTH4 matrix under the
// original, GPS, GK, RCM and SPECTRAL orderings.
func figureOrderings(b *testing.B, g *graph.Graph) map[string]perm.Perm {
	b.Helper()
	spectral, _, err := envred.Spectral(g, envred.SpectralOptions{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	return map[string]perm.Perm{
		"Fig4.1_original": perm.Identity(g.N()),
		"Fig4.2_GPS":      envred.GPS(g),
		"Fig4.3_GK":       envred.GK(g),
		"Fig4.4_RCM":      envred.RCM(g),
		"Fig4.5_SPECTRAL": spectral,
	}
}

// BenchmarkFigures41to45 regenerates the five BARTH4 spy plots; each
// iteration rasterizes and encodes one figure.
func BenchmarkFigures41to45(b *testing.B) {
	p := benchProblem(b, "BARTH4")
	figs := figureOrderings(b, p.G)
	for _, name := range []string{"Fig4.1_original", "Fig4.2_GPS", "Fig4.3_GK", "Fig4.4_RCM", "Fig4.5_SPECTRAL"} {
		o := figs[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := spy.Rasterize(p.G, o, 256)
				if err := r.WritePGM(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEigensolver compares the two Fiedler solvers at equal
// ordering quality targets — the DESIGN.md ablation for the multilevel
// machinery of §3.
func BenchmarkAblationEigensolver(b *testing.B) {
	p := benchProblem(b, "PWT")
	for _, m := range []struct {
		name   string
		method envred.SpectralMethod
	}{
		{"Lanczos", envred.MethodLanczos},
		{"Multilevel", envred.MethodMultilevel},
	} {
		b.Run(m.name, func(b *testing.B) {
			var es int64
			for i := 0; i < b.N; i++ {
				o, _, err := envred.Spectral(p.G, envred.SpectralOptions{Method: m.method, Seed: benchSeed})
				if err != nil {
					b.Fatal(err)
				}
				es = envred.Esize(p.G, o)
			}
			b.ReportMetric(float64(es), "envelope")
		})
	}
}

// BenchmarkAblationCoarsestSize sweeps the multilevel stopping size (the
// paper's "typically 100"): smaller coarsest graphs mean more interpolation
// levels and cheaper Lanczos; larger ones the reverse. Envelope quality is
// attached as a metric so the time/quality trade is visible in one run.
func BenchmarkAblationCoarsestSize(b *testing.B) {
	p := benchProblem(b, "BODY")
	for _, size := range []int{25, 100, 400, 1600} {
		b.Run(fmt.Sprintf("coarsest%d", size), func(b *testing.B) {
			var es int64
			for i := 0; i < b.N; i++ {
				o, _, err := envred.Spectral(p.G, envred.SpectralOptions{
					Method:     envred.MethodMultilevel,
					Multilevel: envred.MultilevelOptions{CoarsestSize: size},
					Seed:       benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				es = envred.Esize(p.G, o)
			}
			b.ReportMetric(float64(es), "envelope")
		})
	}
}

// BenchmarkAblationSmoothing sweeps the Jacobi smoothing sweeps applied to
// each interpolated vector before RQI (DESIGN.md ablation: smoothing
// removes the piecewise-constant interpolation artifacts).
func BenchmarkAblationSmoothing(b *testing.B) {
	p := benchProblem(b, "PWT")
	for _, steps := range []int{1, 3, 8} {
		b.Run(fmt.Sprintf("smooth%d", steps), func(b *testing.B) {
			var es int64
			for i := 0; i < b.N; i++ {
				o, _, err := envred.Spectral(p.G, envred.SpectralOptions{
					Method:     envred.MethodMultilevel,
					Multilevel: envred.MultilevelOptions{SmoothSteps: steps},
					Seed:       benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				es = envred.Esize(p.G, o)
			}
			b.ReportMetric(float64(es), "envelope")
		})
	}
}

// BenchmarkAutoPortfolio compares the parallel portfolio engine against the
// best single algorithm chosen in hindsight: "Auto" runs the whole
// portfolio per component on a worker pool (1 worker vs all cores), while
// "BestSingle" runs the four paper algorithms sequentially and keeps the
// smallest envelope — the oracle Auto has to match. The envelope metric of
// Auto must never exceed BestSingle's; the timing columns show what the
// portfolio costs (serial) and what the pool buys back (parallel).
func BenchmarkAutoPortfolio(b *testing.B) {
	for _, prob := range []string{"BARTH4", "DWT2680"} {
		p := benchProblem(b, prob)
		for _, pool := range []struct {
			name    string
			workers int
		}{
			{"Auto/serial", 1},
			{"Auto/parallel", 0}, // 0 = GOMAXPROCS
		} {
			b.Run(fmt.Sprintf("%s/%s", prob, pool.name), func(b *testing.B) {
				var es int64
				for i := 0; i < b.N; i++ {
					o, rep, err := envred.Auto(p.G, envred.AutoOptions{Seed: benchSeed, Parallelism: pool.workers})
					if err != nil {
						b.Fatal(err)
					}
					_ = rep
					es = envred.Esize(p.G, o)
				}
				b.ReportMetric(float64(es), "envelope")
			})
		}
		b.Run(fmt.Sprintf("%s/BestSingle", prob), func(b *testing.B) {
			var es int64
			for i := 0; i < b.N; i++ {
				best := int64(-1)
				for _, alg := range harness.Algorithms(benchSeed) {
					r, err := alg.F(context.Background(), p.G)
					if err != nil {
						b.Fatal(err)
					}
					if e := envred.Esize(p.G, r.Perm); best < 0 || e < best {
						best = e
					}
				}
				es = best
			}
			b.ReportMetric(float64(es), "envelope")
		})
	}
}

// BenchmarkAblationHybrid measures the spectral–Sloan refinement benefit.
func BenchmarkAblationHybrid(b *testing.B) {
	p := benchProblem(b, "BARTH4")
	for _, m := range []struct {
		name string
		f    func(*graph.Graph) (perm.Perm, int64)
	}{
		{"SpectralOnly", func(g *graph.Graph) (perm.Perm, int64) {
			o, _, err := envred.Spectral(g, envred.SpectralOptions{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			return o, envred.Esize(g, o)
		}},
		{"SpectralSloan", func(g *graph.Graph) (perm.Perm, int64) {
			o, _, err := envred.SpectralSloan(g, envred.SpectralOptions{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			return o, envred.Esize(g, o)
		}},
	} {
		b.Run(m.name, func(b *testing.B) {
			var es int64
			for i := 0; i < b.N; i++ {
				_, es = m.f(p.G)
			}
			b.ReportMetric(float64(es), "envelope")
		})
	}
}
