// Structural analysis workload: the paper's motivating application. A
// BCSSTK-style stiffness pattern (multi-DOF shell) is reordered by all four
// contenders and then factorized with the envelope Cholesky solver,
// demonstrating the storage-and-time win the paper reports in Table 4.4.
package main

import (
	"fmt"
	"log"
	"time"

	envred "repro"
)

func main() {
	// A shell problem in the BCSSTK29 family at reduced scale (the real
	// sizes run too; use cmd/paperbench for the full experiment).
	spec, ok := envred.ProblemByName("BCSSTK29")
	if !ok {
		log.Fatal("problem catalogue missing BCSSTK29")
	}
	p := spec.Generate(0.25, 42)
	g := p.G
	fmt.Printf("%s stand-in: n = %d, nnz = %d (paper: n = %d, nnz = %d)\n\n",
		p.Name, g.N(), g.Nonzeros(), p.PaperN, p.PaperNNZ)

	type contender struct {
		name string
		f    func() (envred.Perm, error)
	}
	contenders := []contender{
		{"SPECTRAL", func() (envred.Perm, error) {
			o, _, err := envred.Spectral(g, envred.SpectralOptions{Seed: 42})
			return o, err
		}},
		{"GK", func() (envred.Perm, error) { return envred.GK(g), nil }},
		{"GPS", func() (envred.Perm, error) { return envred.GPS(g), nil }},
		{"RCM", func() (envred.Perm, error) { return envred.RCM(g), nil }},
	}

	fmt.Printf("%-10s %12s %10s %12s %14s %12s\n",
		"algorithm", "envelope", "bandwidth", "order (s)", "factor flops", "factor (s)")
	for _, c := range contenders {
		t0 := time.Now()
		o, err := c.f()
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		orderTime := time.Since(t0).Seconds()
		s := envred.Stats(g, o)

		// Assemble and factorize the SPD model matrix L+I under this
		// ordering: the work is Θ(Σ rᵢ²), so envelope wins compound.
		m, err := envred.NewEnvelopeMatrix(g, o, envred.LaplacianPlusIdentity(g))
		if err != nil {
			log.Fatal(err)
		}
		t1 := time.Now()
		fac, err := envred.Factorize(m)
		if err != nil {
			log.Fatalf("%s: factorization: %v", c.name, err)
		}
		factorTime := time.Since(t1).Seconds()
		fmt.Printf("%-10s %12d %10d %12.3f %14d %12.3f\n",
			c.name, s.Esize, s.Bandwidth, orderTime, fac.Flops(), factorTime)
	}
	fmt.Println("\nNote the paper's Table 4.4 pattern: factorization time tracks the")
	fmt.Println("envelope roughly quadratically, so the spectral ordering's smaller")
	fmt.Println("envelope repays its higher ordering cost at factorization time.")
}
