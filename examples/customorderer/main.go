// Example customorderer plugs a user-written ordering algorithm into the
// ordering service: it registers a brute-force exact-envelope Orderer
// under the name "BRUTE", then runs Auto with a portfolio that includes it
// and shows it winning the components small enough for exhaustive search —
// on equal footing with the built-ins, per-component artifact cache and
// all. The same registration makes it callable directly by name through
// Session.Order.
package main

import (
	"context"
	"fmt"
	"log"

	envred "repro"
)

// bruteMax bounds the exhaustive search: 8! = 40320 candidate orderings.
const bruteMax = 8

// brute is the custom Orderer: exact minimum-envelope ordering by
// exhaustive permutation search on tiny graphs. On components larger than
// bruteMax it reports an error, which Auto records on the candidate while
// the rest of the portfolio covers the component — a clean way to ship a
// specialist algorithm that only bids on inputs it can handle.
//
// The Orderer contract in one look: in Auto's portfolio the graph is one
// connected component; called through Session.Order it is the caller's
// whole input. Either way req.Artifacts, when non-nil, offers the shared
// artifact cache for that exact graph (Fiedler vector, peripheral root,
// pseudo-diameter) — a caching Session provides it on connected input
// too. Implementations must be deterministic and honor ctx.
func brute(ctx context.Context, g *envred.Graph, req *envred.OrderRequest) (envred.Result, error) {
	n := g.N()
	if n > bruteMax {
		return envred.Result{}, fmt.Errorf("brute: n=%d exceeds the exhaustive-search bound %d", n, bruteMax)
	}
	best := make(envred.Perm, n)
	cur := make(envred.Perm, n)
	for i := range cur {
		best[i], cur[i] = int32(i), int32(i)
	}
	bestEsize := envred.Esize(g, best)
	var walk func(k int)
	walk = func(k int) {
		if ctx.Err() != nil {
			return
		}
		if k == n {
			if e := envred.Esize(g, cur); e < bestEsize {
				bestEsize = e
				copy(best, cur)
			}
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			walk(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	walk(0)
	if err := ctx.Err(); err != nil {
		return envred.Result{}, err
	}
	return envred.Result{Perm: best}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("customorderer: ")

	if err := envred.Register("BRUTE", envred.OrdererFunc(brute)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered algorithms: %v\n\n", envred.Algorithms())

	// A graph with several tiny tangled components — a 7-vertex knot whose
	// exact minimum envelope (11) strictly beats every built-in heuristic
	// (12+) — plus one grid that is far beyond the brute-forcer's reach.
	knot := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
		{0, 5}, {1, 3}, {1, 5}, {2, 5}, {3, 5},
	}
	grid := envred.Grid(12, 8)
	b := envred.NewBuilder(grid.N() + 4*7)
	for _, e := range grid.Edges() {
		b.AddEdge(e[0], e[1])
	}
	off := grid.N()
	for c := 0; c < 4; c++ {
		for _, e := range knot {
			b.AddEdge(off+e[0], off+e[1])
		}
		off += 7
	}
	g := b.Build()

	// Race BRUTE against the default contenders. The portfolio's first
	// entry is the budget fallback that must always produce a valid
	// ordering, so a specialist that declines large components belongs
	// after the built-ins, never first.
	sess := envred.NewSession(envred.SessionOptions{
		Seed:      7,
		Portfolio: append(envred.DefaultPortfolio(), "BRUTE"),
	})
	res, err := sess.Auto(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global envelope %d; wins per algorithm: %v\n\n", res.Stats.Esize, res.Report.Wins)
	for _, cr := range res.Report.Components {
		fmt.Printf("component %d (n=%d): winner %-8s envelope %d\n", cr.Index, cr.Size, cr.Winner, cr.Stats.Esize)
	}
	if res.Report.Wins["BRUTE"] == 0 {
		log.Fatal("BRUTE won no component — expected it to take the knots")
	}

	// The registration also makes it a first-class Session.Order target.
	tiny := envred.Path(6)
	direct, err := sess.Order(context.Background(), tiny, "brute") // names are case-insensitive
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSession.Order(\"brute\") on a 6-path: envelope %d (optimal is %d)\n",
		direct.Stats.Esize, tiny.N()-1)
}
