// Power network end-to-end solve: reorder a POW9-style electrical network,
// factorize an SPD system on it with the envelope Cholesky solver, and
// solve — the complete direct-solver pipeline the envelope machinery
// exists to serve.
package main

import (
	"fmt"
	"log"
	"math"

	envred "repro"
)

func main() {
	spec, ok := envred.ProblemByName("POW9")
	if !ok {
		log.Fatal("problem catalogue missing POW9")
	}
	p := spec.Generate(1.0, 9)
	g := p.G
	fmt.Printf("power network: n = %d buses, nnz = %d\n\n", g.N(), g.Nonzeros())

	// Reorder with the spectral-Sloan hybrid (best envelope) vs RCM.
	hybrid, _, err := envred.SpectralSloan(g, envred.SpectralOptions{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	rcm := envred.RCM(g)
	fmt.Printf("envelope: hybrid %d vs RCM %d\n\n",
		envred.Esize(g, hybrid), envred.Esize(g, rcm))

	// Assemble the system: a weighted-Laplacian-like SPD "admittance"
	// matrix Y = L + I (shunt terms on the diagonal keep it definite), and
	// an injection vector with one source and one sink.
	m, err := envred.NewEnvelopeMatrix(g, hybrid, envred.LaplacianPlusIdentity(g))
	if err != nil {
		log.Fatal(err)
	}
	f, err := envred.Factorize(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factor: %d envelope entries, %d flops\n", f.EnvelopeSize(), f.Flops())

	b := make([]float64, g.N())
	b[0] = 1        // source bus
	b[g.N()-1] = -1 // sink bus
	x := f.SolveOriginal(b)

	// Verify the residual through an independent matrix-vector product.
	check, err := envred.NewEnvelopeMatrix(g, envred.Identity(g.N()), envred.LaplacianPlusIdentity(g))
	if err != nil {
		log.Fatal(err)
	}
	ax := make([]float64, g.N())
	check.MulVec(x, ax)
	var resid, bn float64
	for i := range ax {
		d := ax[i] - b[i]
		resid += d * d
		bn += b[i] * b[i]
	}
	fmt.Printf("solve residual ‖Yx−b‖/‖b‖ = %.2e\n", math.Sqrt(resid/bn))
	fmt.Printf("potential at source %.4f, at sink %.4f\n", x[0], x[g.N()-1])
}
