// Example portfolio runs the parallel portfolio ordering engine on a
// generated suite problem with extra disconnected pieces mixed in, and
// prints the per-component winner report: which algorithm won each
// component, at what envelope, and what the losing candidates scored.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	envred "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("portfolio: ")

	// A suite problem (the paper's DWT2680 stand-in at reduced scale)
	// plus a grid and a path, disjointly unioned so the engine has
	// several components of different character to race on.
	spec, ok := envred.ProblemByName("DWT2680")
	if !ok {
		log.Fatal("DWT2680 missing from the suite")
	}
	mesh := spec.Generate(0.25, 1).G
	grid := envred.Grid(24, 16)
	path := envred.Path(120)

	total := mesh.N() + grid.N() + path.N()
	b := envred.NewBuilder(total)
	off := 0
	for _, part := range []*envred.Graph{mesh, grid, path} {
		for _, e := range part.Edges() {
			b.AddEdge(off+e[0], off+e[1])
		}
		off += part.N()
	}
	g := b.Build()

	// The contenders come from the ordering-service registry; a Session
	// races them and keeps the per-graph artifacts warm across calls.
	fmt.Printf("registered algorithms: %v\n\n", envred.Algorithms())
	sess := envred.NewSession(envred.SessionOptions{
		Seed:        1993,
		Parallelism: runtime.GOMAXPROCS(0),
	})
	res, err := sess.Auto(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	p, rep := res.Perm, *res.Report

	fmt.Printf("ordered %d vertices / %d components on %d workers in %.3fs\n",
		g.N(), len(rep.Components), rep.Parallelism, rep.Seconds)
	fmt.Printf("global envelope %d, bandwidth %d\n\n", rep.Stats.Esize, rep.Stats.Bandwidth)

	for _, cr := range rep.Components {
		fmt.Printf("component %d: n=%d m=%d → winner %s (envelope %d)\n",
			cr.Index, cr.Size, cr.Edges, cr.Winner, cr.Stats.Esize)
		for _, c := range cr.Candidates {
			mark := " "
			if c.Algorithm == cr.Winner {
				mark = "*"
			}
			switch {
			case c.Skipped:
				fmt.Printf("  %s %-14s skipped (budget)\n", mark, c.Algorithm)
			case c.Err != "":
				fmt.Printf("  %s %-14s failed: %s\n", mark, c.Algorithm, c.Err)
			default:
				fmt.Printf("  %s %-14s envelope=%-8d bandwidth=%-5d work=%-10d %.4fs\n",
					mark, c.Algorithm, c.Esize, c.Bandwidth, c.Ework, c.Seconds)
			}
		}
	}

	fmt.Printf("\nwins: %v\n", rep.Wins)
	if err := p.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stitched permutation is valid (%d entries)\n", len(p))
}
