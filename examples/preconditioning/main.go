// Preconditioning study: the second application the paper's introduction
// gives for envelope-reducing orderings — the quality of an IC(0)
// incomplete-Cholesky preconditioner, and hence the iteration count of
// preconditioned conjugate gradients, depends on the matrix ordering
// (D'Azevedo–Forsyth–Tang 1992; Duff–Meurant 1989). This example measures
// PCG iterations for the same SPD system under different orderings.
package main

import (
	"fmt"
	"log"
	"math/rand"

	envred "repro"
)

func main() {
	spec, ok := envred.ProblemByName("DWT2680")
	if !ok {
		log.Fatal("problem catalogue missing DWT2680")
	}
	p := spec.Generate(1.0, 5)
	g := p.G
	fmt.Printf("system: %s stand-in, n = %d, nnz = %d\n", p.Name, g.N(), g.Nonzeros())
	fmt.Printf("matrix: L(G) + I,  solver: PCG with IC(0),  tol 1e-8\n\n")

	rng := rand.New(rand.NewSource(11))
	b := make([]float64, g.N())
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	spectral, _, err := envred.Spectral(g, envred.SpectralOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	orderings := []struct {
		name string
		p    envred.Perm
	}{
		{"random", envred.RandomPerm(g.N(), 1)},
		{"original", envred.Identity(g.N())},
		{"RCM", envred.RCM(g)},
		{"GK", envred.GK(g)},
		{"SPECTRAL", spectral},
	}

	fmt.Printf("%-10s %14s %12s\n", "ordering", "PCG iterations", "residual")
	for _, o := range orderings {
		a, err := envred.NewSparseMatrix(g, o.p, envred.LaplacianPlusIdentity(g))
		if err != nil {
			log.Fatal(err)
		}
		f, err := envred.FactorizeIC0(a, envred.IC0Options{MaxShiftRetries: 8})
		if err != nil {
			log.Fatalf("%s: %v", o.name, err)
		}
		// Permute the right-hand side into ordering positions.
		pb := make([]float64, len(b))
		for i, v := range o.p {
			pb[i] = b[v]
		}
		x := make([]float64, len(b))
		res := envred.PCG(a, f, pb, x, envred.PCGOptions{Tol: 1e-8})
		if !res.Converged {
			log.Fatalf("%s: PCG did not converge (%+v)", o.name, res)
		}
		fmt.Printf("%-10s %14d %12.2e\n", o.name, res.Iterations, res.Residual)
	}

	// Unpreconditioned baseline.
	a, _ := envred.NewSparseMatrix(g, envred.Identity(g.N()), envred.LaplacianPlusIdentity(g))
	x := make([]float64, len(b))
	plain := envred.PCG(a, nil, b, x, envred.PCGOptions{Tol: 1e-8})
	fmt.Printf("%-10s %14d %12.2e  (no preconditioner)\n", "plain CG", plain.Iterations, plain.Residual)
}
