// Quickstart: build a small sparse matrix pattern, reorder it with the
// spectral algorithm, and compare the envelope against the classical
// orderings — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	envred "repro"
)

func main() {
	// A 30×12 five-point grid: the matrix pattern of a small 2-D PDE
	// discretization (n = 360).
	g := envred.Grid(30, 12)
	fmt.Printf("matrix: n = %d, lower-triangle nonzeros = %d\n\n", g.N(), g.Nonzeros())

	// The paper's Algorithm 1: Laplacian → Fiedler vector → sort.
	spectral, info, err := envred.Spectral(g, envred.SpectralOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fiedler value λ2 = %.6f (eigensolver residual %.1e)\n\n", info.Lambda2, info.Residual)

	fmt.Printf("%-10s %10s %10s %10s\n", "ordering", "envelope", "work Σr²", "bandwidth")
	show := func(name string, p envred.Perm) {
		s := envred.Stats(g, p)
		fmt.Printf("%-10s %10d %10d %10d\n", name, s.Esize, s.Ework, s.Bandwidth)
	}
	show("original", envred.Identity(g.N()))
	show("random", envred.RandomPerm(g.N(), 7))
	show("RCM", envred.RCM(g))
	show("GPS", envred.GPS(g))
	show("GK", envred.GK(g))
	show("SPECTRAL", spectral)

	// The reordered pattern, as ASCII art: a thin band hugging the diagonal.
	fmt.Println("\nspectral-ordered structure:")
	fmt.Print(envred.SpyASCII(g, spectral, 36))
}
