// Quickstart: build a small sparse matrix pattern, reorder it through a
// reusable ordering Session, and compare the envelope against the
// classical orderings — the five-minute tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	envred "repro"
)

func main() {
	// A 30×12 five-point grid: the matrix pattern of a small 2-D PDE
	// discretization (n = 360).
	g := envred.Grid(30, 12)
	fmt.Printf("matrix: n = %d, lower-triangle nonzeros = %d\n\n", g.N(), g.Nonzeros())

	// A Session is the context-first front door: it owns the scratch pools
	// and a per-graph artifact cache, so repeated calls on the same graph
	// (like the loop below) reuse decomposition and eigensolve work. The
	// one-shot convenience shims (envred.Spectral, envred.Auto, ...) remain
	// and delegate to a shared default Session.
	ctx := context.Background()
	sess := envred.NewSession(envred.SessionOptions{Seed: 1})

	// The paper's Algorithm 1: Laplacian → Fiedler vector → sort.
	spectral, err := sess.Order(ctx, g, envred.AlgSpectral)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fiedler value λ2 = %.6f (eigensolver residual %.1e, %s in %v)\n\n",
		spectral.Info.Lambda2, spectral.Info.Residual, spectral.Solve.Scheme, spectral.Elapsed.Round(time.Microsecond))

	fmt.Printf("%-10s %10s %10s %10s\n", "ordering", "envelope", "work Σr²", "bandwidth")
	show := func(name string, s envred.EnvelopeStats) {
		fmt.Printf("%-10s %10d %10d %10d\n", name, s.Esize, s.Ework, s.Bandwidth)
	}
	show("original", envred.Stats(g, envred.Identity(g.N())))
	show("random", envred.Stats(g, envred.RandomPerm(g.N(), 7)))
	// Every registered algorithm is callable by name — user-registered
	// Orderers included (see examples/customorderer).
	for _, alg := range []string{envred.AlgRCM, envred.AlgGPS, envred.AlgGK, envred.AlgSloan} {
		res, err := sess.Order(ctx, g, alg)
		if err != nil {
			log.Fatal(err)
		}
		show(alg, res.Stats)
	}
	show("SPECTRAL", spectral.Stats)

	// The reordered pattern, as ASCII art: a thin band hugging the diagonal.
	fmt.Println("\nspectral-ordered structure:")
	fmt.Print(envred.SpyASCII(g, spectral.Perm, 36))
}
