// Ordering-time versus quality trade-off: the paper stresses that the
// spectral algorithm "is iterative in nature ... It allows a user to
// terminate the reordering process depending on a stopping criterion, thus
// permitting the user to make trade-offs in ordering time versus storage
// efficiency." This example sweeps the Lanczos iteration budget and shows
// envelope quality improving with eigensolver effort.
package main

import (
	"fmt"
	"log"
	"time"

	envred "repro"
	"repro/internal/lanczos"
)

func main() {
	spec, ok := envred.ProblemByName("BLKHOLE")
	if !ok {
		log.Fatal("problem catalogue missing BLKHOLE")
	}
	p := spec.Generate(1.0, 3)
	g := p.G
	fmt.Printf("%s stand-in: n = %d, nnz = %d\n\n", p.Name, g.N(), g.Nonzeros())

	fmt.Printf("%-22s %10s %12s %10s\n", "eigensolver budget", "envelope", "λ2 estimate", "time (s)")
	for _, budget := range []struct {
		name     string
		basis    int
		restarts int
	}{
		{"5 Lanczos vectors", 5, 1},
		{"15 Lanczos vectors", 15, 1},
		{"40 Lanczos vectors", 40, 1},
		{"40 vectors, 5 cycles", 40, 5},
		{"converged (default)", 0, 0},
	} {
		opt := envred.SpectralOptions{
			Method: envred.MethodLanczos,
			Lanczos: lanczos.Options{
				MaxBasis:    budget.basis,
				MaxRestarts: budget.restarts,
				Seed:        3,
			},
			Seed: 3,
		}
		t0 := time.Now()
		o, info, err := envred.Spectral(g, opt)
		elapsed := time.Since(t0).Seconds()
		if err != nil {
			log.Fatalf("%s: %v", budget.name, err)
		}
		fmt.Printf("%-22s %10d %12.6f %10.3f\n",
			budget.name, envred.Esize(g, o), info.Lambda2, elapsed)
	}
	fmt.Println("\nRCM reference:")
	fmt.Printf("%-22s %10d\n", "RCM", envred.Esize(g, envred.RCM(g)))
}
