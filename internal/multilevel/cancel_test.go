package multilevel

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/laplacian"
	"repro/internal/linalg"
	"repro/internal/scratch"
)

// cancelOp cancels a context after a fixed number of Apply calls (fused
// path included) — the hooked operator of the cancellation acceptance
// tests.
type cancelOp struct {
	laplacian.Interface
	applies  int
	cancelAt int
	cancel   context.CancelFunc
}

func (c *cancelOp) hit() {
	c.applies++
	if c.applies == c.cancelAt {
		c.cancel()
	}
}

func (c *cancelOp) Apply(x, y []float64) {
	c.hit()
	c.Interface.Apply(x, y)
}

func (c *cancelOp) ApplyAxpy(x, y []float64, beta float64, z []float64) {
	c.hit()
	c.Interface.ApplyAxpy(x, y, beta, z)
}

var _ linalg.AxpyApplier = (*cancelOp)(nil)

// A solve cancelled mid-eigensolve hands back a finest-level fallback
// vector inside the typed error.
func TestFiedlerWSCancelledCarriesFallback(t *testing.T) {
	g := graph.Grid(25, 16) // n = 400
	ctx, cancel := context.WithCancel(context.Background())
	op := &cancelOp{Interface: laplacian.New(g), cancelAt: 40, cancel: cancel}
	ws := scratch.Get()
	defer scratch.Put(ws)
	// CoarsestSize above n keeps the hierarchy trivial, so the hooked
	// finest operator drives the (coarsest == finest) Lanczos solve, with
	// an unreachable tolerance keeping it restarting until the hook fires.
	res, err := FiedlerWS(ctx, ws, g, Options{
		CoarsestSize: 1000,
		FinestOp:     op,
		Lanczos:      lanczos.Options{Tol: 1e-300, MaxBasis: 16, MaxRestarts: 1000},
	})
	if err == nil {
		t.Fatal("cancelled solve reported success")
	}
	var ce *lanczos.ErrCancelled
	if !errors.As(err, &ce) {
		t.Fatalf("err %v (%T) is not *lanczos.ErrCancelled", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not unwrap to context.Canceled", err)
	}
	if len(ce.Vector) != g.N() {
		t.Fatalf("fallback vector has length %d, want finest n=%d", len(ce.Vector), g.N())
	}
	if len(res.Vector) != g.N() || res.Converged {
		t.Fatalf("result should carry the unconverged fallback: len=%d converged=%v", len(res.Vector), res.Converged)
	}
}

// Cancellation during the coarsest solve of a real hierarchy still yields
// a finest-length fallback: the partial coarse vector is interpolated all
// the way up.
func TestFiedlerWSCoarseCancelInterpolatesToFinest(t *testing.T) {
	g := graph.Grid(40, 30) // n = 1200, contracts below CoarsestSize 100
	ws := scratch.Get()
	defer scratch.Put(ws)

	// First, measure nothing — just force cancellation inside the coarsest
	// Lanczos via an already-short deadline that trips between restarts:
	// use a pre-cancelled context checked only after the hierarchy is
	// built... a pre-cancelled ctx hits the coarsest solve's first restart
	// check, where no usable vector exists yet, so the solve must fail
	// with a cancellation and no fallback.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FiedlerWS(cancelled, ws, g, Options{})
	if err == nil {
		t.Fatal("pre-cancelled hierarchy solve succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not unwrap to context.Canceled", err)
	}

	// Second, cancel after the coarsest solve has produced at least one
	// Ritz pair: unreachable tolerance + a restart budget consumed while a
	// goroutine-free hook (the coarse operator is built internally, so
	// hook via deadline-free manual cancel after N V-cycle smoothing
	// applies on the finest operator).
	ctx2, cancel2 := context.WithCancel(context.Background())
	fop := &cancelOp{Interface: laplacian.New(g), cancelAt: 1, cancel: cancel2}
	res, err := FiedlerWS(ctx2, ws, g, Options{
		FinestOp: fop,
		RQI:      RQIOptions{Tol: 1e-300, MaxIter: 50, InnerMaxIter: 10},
	})
	// The finest level is the LAST refined: cancelling on its first apply
	// stops the RQI loop early (checked per iteration) but the V-cycle has
	// no later level to abort, so either outcome — a completed-but-
	// unconverged result or a typed cancellation — must carry a
	// finest-length vector.
	if err != nil {
		var ce *lanczos.ErrCancelled
		if !errors.As(err, &ce) {
			t.Fatalf("err %v (%T) is not *lanczos.ErrCancelled", err, err)
		}
		if len(ce.Vector) != g.N() {
			t.Fatalf("fallback length %d, want %d", len(ce.Vector), g.N())
		}
	} else if len(res.Vector) != g.N() {
		t.Fatalf("vector length %d, want %d", len(res.Vector), g.N())
	}
}
