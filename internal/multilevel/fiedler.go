package multilevel

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/laplacian"
	"repro/internal/linalg"
	"repro/internal/scratch"
)

// Options configures the multilevel Fiedler computation.
type Options struct {
	// CoarsestSize is the vertex count below which the hierarchy stops and
	// Lanczos solves directly ("typically 100" per the paper). Default 100.
	CoarsestSize int
	// MaxLevels caps the hierarchy depth. Default 30.
	MaxLevels int
	// SmoothSteps is the number of weighted-Jacobi smoothing sweeps applied
	// to each interpolated vector before RQI. Default 3.
	SmoothSteps int
	// RQI configures the per-level Rayleigh Quotient Iteration.
	RQI RQIOptions
	// Lanczos configures the coarsest-level (and direct fallback) solve.
	Lanczos lanczos.Options
	// Seed drives the randomized maximal independent sets.
	Seed int64
	// FinestOp, when non-nil, is a pre-built Laplacian operator of the
	// input graph, used for the finest-level smoothing/RQI sweeps (and the
	// direct solve when no coarsening happens) instead of constructing one.
	// The pipeline's artifact cache threads the component's shared operator
	// — with its persistent-pool worker partition — through here.
	FinestOp laplacian.Interface
}

func (o *Options) setDefaults() {
	if o.CoarsestSize == 0 {
		o.CoarsestSize = 100
	}
	if o.CoarsestSize < 2 {
		o.CoarsestSize = 2
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 30
	}
	if o.MaxLevels < 1 {
		o.MaxLevels = 1 // negative caps mean "no coarsening", not a panic
	}
	if o.SmoothSteps == 0 {
		o.SmoothSteps = 3
	}
}

// Result reports the multilevel computation.
type Result struct {
	// Lambda is the Rayleigh quotient of the returned vector — the λ2
	// estimate.
	Lambda float64
	// Vector is the unit-norm Fiedler vector approximation.
	Vector []float64
	// Residual is ‖Lx − λx‖ on the finest graph.
	Residual float64
	// Levels is the number of graphs in the hierarchy (1 = no coarsening).
	Levels int
	// CoarsestN is the vertex count of the coarsest graph.
	CoarsestN int
	// MatVecs counts Laplacian applications across the whole solve: the
	// coarsest Lanczos solve, every smoothing sweep, every RQI residual
	// check and every MINRES inner iteration.
	MatVecs int
	// RQIIterations is the total RQI step count across all levels.
	RQIIterations int
	// JacobiSweeps is the total smoothing sweep count across all levels.
	JacobiSweeps int
	// Workers is the row-block fan-out of the finest-level Laplacian matvec
	// (1 = serial operator).
	Workers int
	// Converged reports whether the solve met its tolerances: the
	// coarsest-level eigensolve converged AND, when a hierarchy was built,
	// the finest-level residual is within the RQI tolerance. When false the
	// returned vector is the best partial result (still usable for
	// ordering) and Residual records how far off it is — previously a
	// partial coarsest solve was silently swallowed.
	Converged bool
}

// Fiedler computes an approximate Fiedler vector of the connected graph g
// using the multilevel contraction / interpolation / RQI-refinement scheme
// of §3. Graphs already below CoarsestSize are handed straight to Lanczos.
func Fiedler(g *graph.Graph, opt Options) (Result, error) {
	ws := scratch.Get()
	defer scratch.Put(ws)
	//envlint:ignore ctxflow ctx-free convenience wrapper; FiedlerWS is the cancellable entry point
	return FiedlerWS(context.Background(), ws, g, opt)
}

// FiedlerWS is Fiedler with caller-provided scratch: the whole hierarchy
// (coarse CSR arrays, domain maps, per-level operators and iterates) lives
// in ws arenas for the duration of the call. The returned vector is freshly
// allocated and safe to retain.
//
// ctx is checked between hierarchy-build contractions, at every V-cycle
// level and inside the coarsest Lanczos solve's restart loop: on
// cancellation the current iterate is
// piecewise-constant interpolated straight up to the finest level — no
// smoothing or RQI — and returned inside a *lanczos.ErrCancelled as the
// best-so-far fallback, so a budget-expired solve still yields a usable
// ordering vector (cancellation during the build, before any iterate
// exists, carries no fallback).
func FiedlerWS(ctx context.Context, ws *scratch.Workspace, g *graph.Graph, opt Options) (Result, error) {
	opt.setDefaults()
	n := g.N()
	if n == 0 {
		return Result{}, fmt.Errorf("multilevel: empty graph")
	}
	if n == 1 {
		return Result{Lambda: 0, Vector: []float64{1}, Levels: 1, CoarsestN: 1, Converged: true}, nil
	}
	mark := ws.Mark()
	defer ws.Release(mark)

	// Build the hierarchy. Cancellation is observed between contraction
	// levels too: a budget that expired before (or during) the build must
	// not pay for the remaining MIS contractions. No iterate exists yet, so
	// the ErrCancelled carries no fallback (Vector nil — the documented
	// "before anything usable existed" state).
	levels := make([]*graph.Graph, 1, opt.MaxLevels)
	levels[0] = g
	contractions := make([]*Contraction, 0, opt.MaxLevels)
	cur := g
	for cur.N() > opt.CoarsestSize && len(levels) < opt.MaxLevels {
		if ctx != nil && ctx.Err() != nil {
			return Result{Levels: len(levels), CoarsestN: cur.N()}, &lanczos.ErrCancelled{Cause: ctx.Err()}
		}
		c := ContractWS(ws, cur, opt.Seed+int64(len(levels)))
		// Contraction must make progress; an independent set of size == n
		// (edgeless graph) cannot shrink further.
		if c.Coarse.N() >= cur.N() {
			break
		}
		contractions = append(contractions, c)
		levels = append(levels, c.Coarse)
		cur = c.Coarse
	}

	// Solve the coarsest level with Lanczos.
	coarsest := levels[len(levels)-1]
	res := Result{Levels: len(levels), CoarsestN: coarsest.N()}
	var op laplacian.Interface
	if len(levels) == 1 && opt.FinestOp != nil {
		op = opt.FinestOp
	} else {
		op = laplacian.AutoFrom(coarsest, ws.Float64s(coarsest.N()))
	}

	// fallback interpolates the iterate at contraction index li straight up
	// to the finest level — piecewise-constant, no smoothing or RQI — and
	// copies it off the arenas: the cheapest usable vector a cancelled solve
	// can hand back.
	fallback := func(x []float64, li int) []float64 {
		for lj := li; lj >= 0; lj-- {
			fx := ws.Float64s(levels[lj].N())
			contractions[lj].InterpolateInto(fx, x)
			x = fx
		}
		linalg.ProjectOutOnes(x)
		linalg.Normalize(x)
		return append([]float64(nil), x...)
	}

	lres, err := lanczos.Fiedler(ctx, op, op.GershgorinBound(), opt.Lanczos)
	res.MatVecs += lres.MatVecs
	var cancelled *lanczos.ErrCancelled
	if errors.As(err, &cancelled) {
		if lres.Vector == nil {
			return Result{}, fmt.Errorf("multilevel: coarsest solve: %w", err)
		}
		res.Lambda = lres.Lambda
		res.Vector = fallback(lres.Vector, len(contractions)-1)
		return res, &lanczos.ErrCancelled{Cause: cancelled.Cause, Lambda: res.Lambda, Vector: res.Vector}
	}
	if err != nil && lres.Vector == nil {
		return Result{}, fmt.Errorf("multilevel: coarsest solve: %w", err)
	}
	// A partial (not-converged) coarsest vector is still usable for
	// ordering, but the miss must not vanish: record it in Converged and
	// let the finest-level Residual quantify it.
	res.Converged = err == nil
	res.Lambda = lres.Lambda
	x := lres.Vector

	// Interpolate and refine up the hierarchy. Cancellation is checked once
	// per level: a whole V-cycle level (smoothing sweeps plus RQI with its
	// MINRES inner solves) is the unit of interruption, mirroring the
	// per-restart granularity of the Lanczos loop.
	shifted := &linalg.ShiftedOp{}
	finestOp := op
	for li := len(contractions) - 1; li >= 0; li-- {
		if cerr := ctxErr(ctx); cerr != nil {
			// The refinement was truncated: the coarsest solve's Converged
			// must not stand for the unfinished finer levels.
			res.Converged = false
			res.Vector = fallback(x, li)
			return res, &lanczos.ErrCancelled{Cause: cerr, Lambda: res.Lambda, Vector: res.Vector}
		}
		c := contractions[li]
		fineG := levels[li]
		fx := ws.Float64s(fineG.N())
		c.InterpolateInto(fx, x)
		x = fx
		linalg.ProjectOutOnes(x)
		linalg.Normalize(x)
		var fineOp laplacian.Interface
		if li == 0 && opt.FinestOp != nil {
			fineOp = opt.FinestOp
		} else {
			fineOp = laplacian.AutoFrom(fineG, ws.Float64s(fineG.N()))
		}
		res.MatVecs += JacobiSmoothWS(ws, fineG, fineOp, x, opt.SmoothSteps)
		res.JacobiSweeps += opt.SmoothSteps
		rr := rqiRefine(ctx, ws, fineOp, x, opt.RQI, shifted)
		res.RQIIterations += rr.Iterations
		res.MatVecs += rr.MatVecs
		res.Lambda = rr.Lambda
		finestOp = fineOp
	}

	// Cancellation during the finest level's refinement must surface: the
	// loop-top check never runs again, and a silently-truncated vector
	// returned with a nil error would be memoized by the artifact cache as
	// if it were the converged solve. The refined iterate still rides along
	// as the fallback. (With no contractions there was no refinement to
	// truncate — the completed coarsest solve stands.)
	if cerr := ctxErr(ctx); cerr != nil && len(contractions) > 0 {
		res.Converged = false // truncated refinement, not a converged solve
		res.Lambda = finestOp.RayleighQuotient(x)
		res.MatVecs++
		res.Vector = append([]float64(nil), x...)
		linalg.ProjectOutOnes(res.Vector)
		linalg.Normalize(res.Vector)
		return res, &lanczos.ErrCancelled{Cause: cerr, Lambda: res.Lambda, Vector: res.Vector}
	}

	res.Lambda = finestOp.RayleighQuotient(x)
	res.Residual = rayleighResidual(ws, finestOp, x)
	res.MatVecs++
	res.Workers = finestOp.Workers()
	if len(contractions) > 0 {
		// The refinement is only converged if the finest residual met the
		// RQI target — the same test rqiRefine applies per level — so the
		// uniform Stats.Converged means the same thing for every scheme.
		rqiOpt := opt.RQI
		rqiOpt.setDefaults()
		scale := finestOp.GershgorinBound()
		if scale <= 0 {
			scale = 1
		}
		res.Converged = res.Converged && res.Residual <= rqiOpt.Tol*scale
		// x is ws-backed; copy it out so the result outlives the arenas.
		x = append([]float64(nil), x...)
	}
	res.Vector = x
	return res, nil
}
