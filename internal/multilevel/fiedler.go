package multilevel

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/laplacian"
	"repro/internal/linalg"
)

// Options configures the multilevel Fiedler computation.
type Options struct {
	// CoarsestSize is the vertex count below which the hierarchy stops and
	// Lanczos solves directly ("typically 100" per the paper). Default 100.
	CoarsestSize int
	// MaxLevels caps the hierarchy depth. Default 30.
	MaxLevels int
	// SmoothSteps is the number of weighted-Jacobi smoothing sweeps applied
	// to each interpolated vector before RQI. Default 3.
	SmoothSteps int
	// RQI configures the per-level Rayleigh Quotient Iteration.
	RQI RQIOptions
	// Lanczos configures the coarsest-level (and direct fallback) solve.
	Lanczos lanczos.Options
	// Seed drives the randomized maximal independent sets.
	Seed int64
}

func (o *Options) setDefaults() {
	if o.CoarsestSize == 0 {
		o.CoarsestSize = 100
	}
	if o.CoarsestSize < 2 {
		o.CoarsestSize = 2
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 30
	}
	if o.SmoothSteps == 0 {
		o.SmoothSteps = 3
	}
}

// Result reports the multilevel computation.
type Result struct {
	// Lambda is the Rayleigh quotient of the returned vector — the λ2
	// estimate.
	Lambda float64
	// Vector is the unit-norm Fiedler vector approximation.
	Vector []float64
	// Residual is ‖Lx − λx‖ on the finest graph.
	Residual float64
	// Levels is the number of graphs in the hierarchy (1 = no coarsening).
	Levels int
	// CoarsestN is the vertex count of the coarsest graph.
	CoarsestN int
}

// Fiedler computes an approximate Fiedler vector of the connected graph g
// using the multilevel contraction / interpolation / RQI-refinement scheme
// of §3. Graphs already below CoarsestSize are handed straight to Lanczos.
func Fiedler(g *graph.Graph, opt Options) (Result, error) {
	opt.setDefaults()
	n := g.N()
	if n == 0 {
		return Result{}, fmt.Errorf("multilevel: empty graph")
	}
	if n == 1 {
		return Result{Lambda: 0, Vector: []float64{1}, Levels: 1, CoarsestN: 1}, nil
	}

	// Build the hierarchy.
	levels := []*graph.Graph{g}
	var contractions []*Contraction
	cur := g
	for cur.N() > opt.CoarsestSize && len(levels) < opt.MaxLevels {
		c := Contract(cur, opt.Seed+int64(len(levels)))
		// Contraction must make progress; an independent set of size == n
		// (edgeless graph) cannot shrink further.
		if c.Coarse.N() >= cur.N() {
			break
		}
		contractions = append(contractions, c)
		levels = append(levels, c.Coarse)
		cur = c.Coarse
	}

	// Solve the coarsest level with Lanczos.
	coarsest := levels[len(levels)-1]
	op := laplacian.Auto(coarsest)
	lres, err := lanczos.Fiedler(op, op.GershgorinBound(), opt.Lanczos)
	if err != nil && lres.Vector == nil {
		return Result{}, fmt.Errorf("multilevel: coarsest solve: %w", err)
	}
	x := lres.Vector

	// Interpolate and refine up the hierarchy.
	for li := len(contractions) - 1; li >= 0; li-- {
		c := contractions[li]
		fineG := levels[li]
		x = c.Interpolate(x)
		linalg.ProjectOutOnes(x)
		linalg.Normalize(x)
		fineOp := laplacian.Auto(fineG)
		jacobiSmooth(fineG, fineOp, x, opt.SmoothSteps)
		RQI(fineG, x, opt.RQI)
	}

	fineOp := laplacian.Auto(g)
	res := Result{
		Vector:    x,
		Lambda:    fineOp.RayleighQuotient(x),
		Residual:  rayleighResidual(fineOp, x),
		Levels:    len(levels),
		CoarsestN: coarsest.N(),
	}
	return res, nil
}
