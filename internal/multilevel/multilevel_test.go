package multilevel

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/laplacian"
	"repro/internal/linalg"
)

func TestMaximalIndependentSetIsIndependentAndMaximal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(80, 160, seed)
		mis := MaximalIndependentSet(g, seed)
		inSet := make([]bool, g.N())
		for _, v := range mis {
			inSet[v] = true
		}
		// Independence.
		for _, v := range mis {
			for _, w := range g.Neighbors(int(v)) {
				if inSet[w] {
					t.Fatalf("seed %d: adjacent vertices %d,%d both in MIS", seed, v, w)
				}
			}
		}
		// Maximality: every vertex is in the set or has a neighbor in it.
		for v := 0; v < g.N(); v++ {
			if inSet[v] {
				continue
			}
			ok := false
			for _, w := range g.Neighbors(v) {
				if inSet[w] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("seed %d: vertex %d not dominated", seed, v)
			}
		}
	}
}

func TestMISDeterministic(t *testing.T) {
	g := graph.Grid(10, 10)
	a := MaximalIndependentSet(g, 3)
	b := MaximalIndependentSet(g, 3)
	if len(a) != len(b) {
		t.Fatal("same seed different MIS size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed different MIS")
		}
	}
}

func TestContractShrinksAndCovers(t *testing.T) {
	g := graph.Grid(20, 20)
	c := Contract(g, 1)
	if c.Coarse.N() >= g.N() {
		t.Fatalf("no shrinkage: %d -> %d", g.N(), c.Coarse.N())
	}
	if c.Coarse.N() != len(c.Centers) {
		t.Fatalf("coarse N %d != centers %d", c.Coarse.N(), len(c.Centers))
	}
	// Every fine vertex has a valid domain.
	for v, d := range c.DomainOf {
		if d < 0 || int(d) >= c.Coarse.N() {
			t.Fatalf("vertex %d domain %d out of range", v, d)
		}
	}
	// Centers belong to their own domains.
	for i, ctr := range c.Centers {
		if c.DomainOf[ctr] != int32(i) {
			t.Fatalf("center %d not in its domain", ctr)
		}
	}
	if err := c.Coarse.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContractPreservesConnectivity(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Random(150, 250, seed)
		c := Contract(g, seed)
		if !graph.IsConnected(c.Coarse) {
			t.Fatalf("seed %d: contraction disconnected a connected graph", seed)
		}
	}
}

// Domains are connected: each domain grows by BFS from its center.
func TestContractDomainsConnected(t *testing.T) {
	g := graph.Grid(15, 15)
	c := Contract(g, 2)
	for dom := 0; dom < c.Coarse.N(); dom++ {
		var members []int
		for v, d := range c.DomainOf {
			if int(d) == dom {
				members = append(members, v)
			}
		}
		sub, _ := g.Subgraph(members)
		if !graph.IsConnected(sub) {
			t.Fatalf("domain %d (size %d) not connected", dom, len(members))
		}
	}
}

func TestInterpolate(t *testing.T) {
	g := graph.Grid(8, 8)
	c := Contract(g, 1)
	coarse := make([]float64, c.Coarse.N())
	for i := range coarse {
		coarse[i] = float64(i)
	}
	fine := c.Interpolate(coarse)
	for v, d := range c.DomainOf {
		if fine[v] != coarse[d] {
			t.Fatalf("vertex %d: %v != domain value %v", v, fine[v], coarse[d])
		}
	}
}

func TestRQIRefinesPerturbedEigenvector(t *testing.T) {
	g := graph.Grid(12, 9)
	// Exact Fiedler vector from the dense solver, then perturb.
	eig, V := linalg.SymEig(laplacian.Dense(g))
	n := g.N()
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = V.At(i, 1) + 0.05*math.Sin(float64(3*i))
	}
	res := RQI(g, x, RQIOptions{})
	if math.Abs(res.Lambda-eig[1]) > 1e-6*(1+eig[1]) {
		t.Fatalf("RQI λ = %v, want %v (residual %v)", res.Lambda, eig[1], res.Residual)
	}
}

func TestRQIZeroInputRecovers(t *testing.T) {
	g := graph.Path(20)
	x := make([]float64, 20) // degenerate all-zero start
	res := RQI(g, x, RQIOptions{MaxIter: 8})
	if linalg.Nrm2(x) == 0 {
		t.Fatal("RQI left zero vector")
	}
	if res.Lambda < 0 {
		t.Fatalf("negative Rayleigh quotient %v", res.Lambda)
	}
}

func TestFiedlerMatchesClosedFormsLarge(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"Path600", graph.Path(600), 4 * math.Pow(math.Sin(math.Pi/1200), 2)},
		{"Grid40x30", graph.Grid(40, 30), 4 * math.Pow(math.Sin(math.Pi/80), 2)},
		{"Cycle500", graph.Cycle(500), 2 - 2*math.Cos(2*math.Pi/500)},
	}
	for _, tc := range cases {
		res, err := Fiedler(tc.g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Levels < 2 {
			t.Errorf("%s: expected multilevel hierarchy, got %d levels", tc.name, res.Levels)
		}
		// The multilevel result is approximate; accept a generous relative
		// window around λ2 but demand it not lock onto λ3 ≈ 4·λ2 for these
		// graphs. (Orderings only need the right global shape.)
		if tc.want > 0 && (res.Lambda < 0.5*tc.want || res.Lambda > 2.5*tc.want) {
			t.Errorf("%s: λ = %v, want ≈ %v", tc.name, res.Lambda, tc.want)
		}
	}
}

func TestFiedlerSmallGraphDirect(t *testing.T) {
	g := graph.Grid(6, 5) // below CoarsestSize ⇒ pure Lanczos
	res, err := Fiedler(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != 1 {
		t.Fatalf("levels = %d, want 1", res.Levels)
	}
	want := 4 * math.Pow(math.Sin(math.Pi/12), 2)
	if math.Abs(res.Lambda-want) > 1e-6*(1+want) {
		t.Fatalf("λ2 = %v, want %v", res.Lambda, want)
	}
}

func TestFiedlerVectorQuality(t *testing.T) {
	// On a long path the multilevel vector must be (nearly) monotone —
	// the property that makes the spectral ordering work.
	g := graph.Path(2000)
	res, err := Fiedler(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := res.Vector
	// Count adjacent inversions; a good approximation has very few.
	invUp, invDown := 0, 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[i-1] {
			invUp++
		} else if x[i] > x[i-1] {
			invDown++
		}
	}
	inv := invUp
	if invDown < invUp {
		inv = invDown
	}
	if inv > len(x)/50 {
		t.Fatalf("path Fiedler vector has %d/%d adjacent inversions", inv, len(x)-1)
	}
}

func TestFiedlerOrthogonalToOnes(t *testing.T) {
	g := graph.Random(3000, 6000, 4)
	res, err := Fiedler(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.Vector {
		sum += v
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("1ᵀx = %v", sum)
	}
	if math.Abs(linalg.Nrm2(res.Vector)-1) > 1e-8 {
		t.Fatalf("‖x‖ = %v", linalg.Nrm2(res.Vector))
	}
}

func TestFiedlerEmptyGraphError(t *testing.T) {
	if _, err := Fiedler(graph.NewBuilder(0).Build(), Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestFiedlerSingleton(t *testing.T) {
	res, err := Fiedler(graph.NewBuilder(1).Build(), Options{})
	if err != nil || len(res.Vector) != 1 {
		t.Fatalf("singleton: %+v, %v", res, err)
	}
}

// Theorem 2.5 (Fiedler): for the exact second eigenvector, S(p) = {v : x_v ≥ p}
// induces a connected subgraph for p ≤ 0, and S'(p) = {v : x_v ≤ p} for p ≥ 0.
func TestTheorem25Connectivity(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.Random(30, 45, seed)
		_, V := linalg.SymEig(laplacian.Dense(g))
		n := g.N()
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = V.At(i, 1)
		}
		thresholds := []float64{-0.3, -0.1, -0.01, 0}
		for _, p := range thresholds {
			var s []int
			for v := 0; v < n; v++ {
				if x[v] >= p {
					s = append(s, v)
				}
			}
			if len(s) == 0 {
				continue
			}
			sub, _ := g.Subgraph(s)
			if !graph.IsConnected(sub) {
				t.Fatalf("seed %d: S(%v) disconnected", seed, p)
			}
		}
		for _, p := range []float64{0, 0.01, 0.1, 0.3} {
			var s []int
			for v := 0; v < n; v++ {
				if x[v] <= p {
					s = append(s, v)
				}
			}
			if len(s) == 0 {
				continue
			}
			sub, _ := g.Subgraph(s)
			if !graph.IsConnected(sub) {
				t.Fatalf("seed %d: S'(%v) disconnected", seed, p)
			}
		}
	}
}

func BenchmarkMultilevelFiedler(b *testing.B) {
	g := graph.Grid(120, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fiedler(g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
