package multilevel

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/scratch"
)

// Property test over random connected graphs and seeds: Contract yields a
// valid partition — every fine vertex mapped to exactly one in-range
// domain, every domain anchored by its center, the coarse graph simple,
// symmetric and strictly smaller.
func TestContractPartitionProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 60 + int(seed)*37
		g := graph.Random(n, 2*n, seed)
		c := Contract(g, seed)
		nc := c.Coarse.N()
		if nc >= n {
			t.Fatalf("seed %d: contraction did not shrink: %d -> %d", seed, n, nc)
		}
		if len(c.Centers) != nc {
			t.Fatalf("seed %d: %d centers for %d coarse vertices", seed, len(c.Centers), nc)
		}
		if len(c.DomainOf) != n {
			t.Fatalf("seed %d: DomainOf covers %d of %d vertices", seed, len(c.DomainOf), n)
		}
		// Every fine vertex in exactly one domain (DomainOf is total and
		// in range); every domain nonempty.
		size := make([]int, nc)
		for v, d := range c.DomainOf {
			if d < 0 || int(d) >= nc {
				t.Fatalf("seed %d: vertex %d mapped to out-of-range domain %d", seed, v, d)
			}
			size[d]++
		}
		for d, s := range size {
			if s == 0 {
				t.Fatalf("seed %d: domain %d empty", seed, d)
			}
		}
		// Centers are distinct and sit in their own domains.
		seen := make(map[int32]bool, nc)
		for i, ctr := range c.Centers {
			if seen[ctr] {
				t.Fatalf("seed %d: center %d repeated", seed, ctr)
			}
			seen[ctr] = true
			if c.DomainOf[ctr] != int32(i) {
				t.Fatalf("seed %d: center %d not in its own domain", seed, ctr)
			}
		}
		// Coarse graph is canonical CSR: simple, sorted, symmetric, no
		// self-loops.
		if err := c.Coarse.Validate(); err != nil {
			t.Fatalf("seed %d: coarse graph invalid: %v", seed, err)
		}
		// A coarse edge exists iff some fine edge crosses the two domains.
		for u := 0; u < nc; u++ {
			for _, w := range c.Coarse.Neighbors(u) {
				found := false
				for v := 0; v < n && !found; v++ {
					if c.DomainOf[v] != int32(u) {
						continue
					}
					for _, x := range g.Neighbors(v) {
						if c.DomainOf[x] == w {
							found = true
							break
						}
					}
				}
				if !found {
					t.Fatalf("seed %d: coarse edge %d-%d has no crossing fine edge", seed, u, w)
				}
			}
		}
	}
}

// ContractWS must produce exactly what Contract produces (the public entry
// point is a deep copy of the arena-backed result).
func TestContractWSMatchesContract(t *testing.T) {
	g := graph.Grid(18, 13)
	want := Contract(g, 5)
	ws := scratch.New()
	got := ContractWS(ws, g, 5)
	if got.Coarse.N() != want.Coarse.N() {
		t.Fatalf("coarse sizes differ: %d vs %d", got.Coarse.N(), want.Coarse.N())
	}
	for v := range want.DomainOf {
		if got.DomainOf[v] != want.DomainOf[v] {
			t.Fatalf("DomainOf[%d] differs: %d vs %d", v, got.DomainOf[v], want.DomainOf[v])
		}
	}
	for i := range want.Coarse.Xadj {
		if got.Coarse.Xadj[i] != want.Coarse.Xadj[i] {
			t.Fatalf("Xadj[%d] differs", i)
		}
	}
	for i := range want.Coarse.Adj {
		if got.Coarse.Adj[i] != want.Coarse.Adj[i] {
			t.Fatalf("Adj[%d] differs", i)
		}
	}
}

// Interpolation round-trips shapes: the fine vector has one entry per fine
// vertex, is constant on every domain, and averaging it back over each
// domain recovers the coarse vector exactly (piecewise-constant
// prolongation).
func TestInterpolateRoundTripShapes(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.Random(120, 260, seed)
		c := Contract(g, seed)
		nc := c.Coarse.N()
		coarse := make([]float64, nc)
		for i := range coarse {
			coarse[i] = math.Sin(float64(i) * 0.7)
		}
		fine := c.Interpolate(coarse)
		if len(fine) != g.N() {
			t.Fatalf("seed %d: fine length %d, want %d", seed, len(fine), g.N())
		}
		fine2 := make([]float64, g.N())
		c.InterpolateInto(fine2, coarse)
		for v := range fine {
			if fine[v] != fine2[v] {
				t.Fatalf("seed %d: Interpolate and InterpolateInto disagree at %d", seed, v)
			}
			if fine[v] != coarse[c.DomainOf[v]] {
				t.Fatalf("seed %d: vertex %d not constant on its domain", seed, v)
			}
		}
		// Restriction by domain averaging recovers the coarse vector.
		sum := make([]float64, nc)
		cnt := make([]float64, nc)
		for v, d := range c.DomainOf {
			sum[d] += fine[v]
			cnt[d]++
		}
		for d := 0; d < nc; d++ {
			if got := sum[d] / cnt[d]; math.Abs(got-coarse[d]) > 1e-12 {
				t.Fatalf("seed %d: domain %d average %g, want %g", seed, d, got, coarse[d])
			}
		}
	}
}

// RQI on a path graph from a perturbed exact eigenvector must converge to
// the analytic λ2 = 2(1 − cos(π/n)).
func TestRQIConvergesToAnalyticPathLambda2(t *testing.T) {
	for _, n := range []int{100, 500} {
		g := graph.Path(n)
		want := 2 * (1 - math.Cos(math.Pi/float64(n)))
		x := make([]float64, n)
		for v := 0; v < n; v++ {
			// Exact eigenvector cos(π(v+1/2)/n) plus a rough perturbation.
			x[v] = math.Cos(math.Pi*(float64(v)+0.5)/float64(n)) + 0.03*math.Sin(float64(5*v))
		}
		ws := scratch.New()
		res := RQIWS(ws, g, x, RQIOptions{})
		if math.Abs(res.Lambda-want) > 1e-6*(1+want) {
			t.Fatalf("n=%d: RQI λ = %g, want %g (residual %g, iters %d)",
				n, res.Lambda, want, res.Residual, res.Iterations)
		}
		if res.MatVecs == 0 {
			t.Fatalf("n=%d: RQI matvecs not counted", n)
		}
	}
}

// The bugfix regression: a coarsest-level Lanczos solve that runs out of
// budget used to be silently swallowed; now it must surface as
// Converged=false with a usable vector and a nonzero residual.
func TestCoarsestPartialConvergenceSurfaces(t *testing.T) {
	g := graph.Grid(40, 40)
	res, err := Fiedler(g, Options{
		CoarsestSize: 200,
		Lanczos:      lanczos.Options{MaxBasis: 3, MaxRestarts: 1, Tol: 1e-14},
	})
	if err != nil {
		t.Fatalf("partial coarsest convergence must not be a hard error: %v", err)
	}
	if res.Converged {
		t.Fatal("starved coarsest solve reported Converged=true")
	}
	if len(res.Vector) != g.N() {
		t.Fatalf("vector length %d, want %d", len(res.Vector), g.N())
	}
	if res.Residual == 0 {
		t.Fatal("residual not recorded for partial solve")
	}
	// A healthy run reports Converged=true.
	res, err = Fiedler(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("healthy solve not converged (residual %g)", res.Residual)
	}
	if res.MatVecs == 0 || res.RQIIterations == 0 || res.JacobiSweeps == 0 {
		t.Fatalf("multilevel instrumentation empty: %+v", res)
	}
}
