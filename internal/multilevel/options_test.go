package multilevel

import (
	"testing"

	"repro/internal/graph"
)

func TestMaxLevelsRespected(t *testing.T) {
	g := graph.Grid(60, 60) // deep hierarchy if unconstrained
	res, err := Fiedler(g, Options{CoarsestSize: 10, MaxLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels > 3 {
		t.Fatalf("levels = %d, want ≤ 3", res.Levels)
	}
	// With the hierarchy truncated, the coarsest graph is larger than the
	// requested coarsest size — and Lanczos still handles it.
	if res.CoarsestN <= 10 {
		t.Fatalf("coarsest %d unexpectedly small for a truncated hierarchy", res.CoarsestN)
	}
}

func TestCoarsestSizeControlsDepth(t *testing.T) {
	g := graph.Grid(50, 50)
	shallow, err := Fiedler(g, Options{CoarsestSize: 1200})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Fiedler(g, Options{CoarsestSize: 30})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Levels <= shallow.Levels {
		t.Fatalf("deep %d levels vs shallow %d", deep.Levels, shallow.Levels)
	}
	if shallow.CoarsestN > 1200 || deep.CoarsestN > 30 {
		t.Fatalf("coarsest sizes %d/%d exceed their caps", shallow.CoarsestN, deep.CoarsestN)
	}
	// Both must land near the same λ2.
	ratio := deep.Lambda / shallow.Lambda
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("λ estimates diverge: %v vs %v", deep.Lambda, shallow.Lambda)
	}
}

func TestRQIInnerIterationCap(t *testing.T) {
	g := graph.Grid(25, 25)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	res := RQI(g, x, RQIOptions{MaxIter: 2, InnerMaxIter: 5})
	if res.InnerIters > 2*5 {
		t.Fatalf("inner iterations %d exceed cap", res.InnerIters)
	}
}

func TestContractOnCompleteGraph(t *testing.T) {
	// On K_n the MIS is a single vertex: contraction collapses to 1 vertex
	// and the driver must stop cleanly rather than loop.
	g := graph.Complete(30)
	res, err := Fiedler(g, Options{CoarsestSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < 25 || res.Lambda > 31 {
		t.Fatalf("K30 λ2 estimate %v far from 30", res.Lambda)
	}
}

func TestContractEdgelessGraph(t *testing.T) {
	// Every vertex is its own domain; no shrinkage is possible and the
	// driver must not loop forever (Fiedler handles it per component at
	// the caller level; here we exercise Contract directly).
	g := graph.FromEdges(6, nil)
	c := Contract(g, 1)
	if c.Coarse.N() != 6 {
		t.Fatalf("edgeless contraction changed size: %d", c.Coarse.N())
	}
}

func TestSmoothStepsZeroUsesDefault(t *testing.T) {
	g := graph.Grid(40, 40)
	// SmoothSteps 0 means "default", and negative values are the caller's
	// way to request... there is no negative semantics: ensure default path
	// converges.
	res, err := Fiedler(g, Options{SmoothSteps: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda <= 0 {
		t.Fatalf("λ = %v", res.Lambda)
	}
}
