package multilevel

import (
	"repro/internal/graph"
	"repro/internal/laplacian"
	"repro/internal/linalg"
)

// RQIOptions configures the Rayleigh Quotient Iteration refinement.
type RQIOptions struct {
	// MaxIter caps the RQI steps per level; cubic convergence means "one or
	// perhaps two iterations" usually suffice (paper §3). Default 4.
	MaxIter int
	// Tol is the relative residual target ‖Lx − ρx‖ ≤ Tol·scale. Default 1e-7.
	Tol float64
	// InnerTol is the MINRES relative tolerance. Default 1e-6.
	InnerTol float64
	// InnerMaxIter caps MINRES iterations per solve. Default 200.
	InnerMaxIter int
}

func (o *RQIOptions) setDefaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 4
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	if o.InnerTol == 0 {
		o.InnerTol = 1e-6
	}
	if o.InnerMaxIter == 0 {
		o.InnerMaxIter = 200
	}
}

// RQIResult reports the refined eigenpair.
type RQIResult struct {
	Lambda     float64
	Residual   float64
	Iterations int
	InnerIters int
}

// jacobiSmooth applies a few weighted-Jacobi smoothing steps toward the
// small end of the spectrum: x ← x − ω·D⁻¹(Lx − ρx), keeping x ⊥ 1. It
// knocks the piecewise-constant interpolation artifacts (high-frequency
// error) out of the iterate before RQI locks onto an eigenpair.
func jacobiSmooth(g *graph.Graph, op laplacian.Interface, x []float64, steps int) {
	n := g.N()
	y := make([]float64, n)
	const omega = 0.5
	for s := 0; s < steps; s++ {
		rho := op.RayleighQuotient(x)
		op.Apply(x, y)
		for v := 0; v < n; v++ {
			d := float64(g.Degree(v))
			if d == 0 {
				d = 1
			}
			x[v] -= omega * (y[v] - rho*x[v]) / d
		}
		linalg.ProjectOutOnes(x)
		linalg.Normalize(x)
	}
}

// RQI refines an approximate Fiedler vector x (modified in place) of the
// Laplacian of g using Rayleigh Quotient Iteration: repeatedly solve
// (L − ρI)·y = x with MINRES (the symmetric-indefinite role SYMMLQ plays in
// the original implementation) and renormalize, where ρ is the current
// Rayleigh quotient. Iterates are kept orthogonal to the constant vector,
// on which L − ρI is nonsingular for 0 < ρ < λ2 or λ2-adjacent shifts.
func RQI(g *graph.Graph, x []float64, opt RQIOptions) RQIResult {
	opt.setDefaults()
	op := laplacian.Auto(g)
	scale := op.GershgorinBound()
	if scale <= 0 {
		scale = 1
	}
	n := g.N()

	linalg.ProjectOutOnes(x)
	if linalg.Normalize(x) == 0 {
		// Degenerate input: fall back to an arbitrary non-constant vector.
		for i := range x {
			x[i] = float64(1 - 2*(i&1))
		}
		linalg.ProjectOutOnes(x)
		linalg.Normalize(x)
	}

	var res RQIResult
	r := make([]float64, n)
	y := make([]float64, n)
	for it := 0; it < opt.MaxIter; it++ {
		rho := op.RayleighQuotient(x)
		op.Apply(x, r)
		linalg.Axpy(-rho, x, r)
		res.Lambda = rho
		res.Residual = linalg.Nrm2(r)
		res.Iterations = it
		if res.Residual <= opt.Tol*scale {
			return res
		}
		shifted := linalg.ShiftedOp{A: op, Sigma: rho}
		mr := linalg.MINRES(shifted, x, y, linalg.MINRESOptions{
			Tol:         opt.InnerTol,
			MaxIter:     opt.InnerMaxIter,
			ProjectOnes: true,
		})
		res.InnerIters += mr.Iterations
		linalg.ProjectOutOnes(y)
		if linalg.Normalize(y) == 0 {
			// Breakdown: the solve returned (numerically) zero. Keep x.
			return res
		}
		copy(x, y)
	}
	rho := op.RayleighQuotient(x)
	op.Apply(x, r)
	linalg.Axpy(-rho, x, r)
	res.Lambda = rho
	res.Residual = linalg.Nrm2(r)
	res.Iterations = opt.MaxIter
	return res
}

// rayleighResidual returns ‖Lx − ρx‖ for diagnostics.
func rayleighResidual(op laplacian.Interface, x []float64) float64 {
	n := op.Dim()
	r := make([]float64, n)
	rho := op.RayleighQuotient(x)
	op.Apply(x, r)
	linalg.Axpy(-rho, x, r)
	return linalg.Nrm2(r)
}
