package multilevel

import (
	"context"

	"repro/internal/graph"
	"repro/internal/laplacian"
	"repro/internal/linalg"
	"repro/internal/scratch"
)

// ctxErr is a nil-tolerant ctx.Err: callers that never cancel may pass nil.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// RQIOptions configures the Rayleigh Quotient Iteration refinement.
type RQIOptions struct {
	// MaxIter caps the RQI steps per level; cubic convergence means "one or
	// perhaps two iterations" usually suffice (paper §3). Default 4.
	MaxIter int
	// Tol is the relative residual target ‖Lx − ρx‖ ≤ Tol·scale. Default 1e-7.
	Tol float64
	// InnerTol is the MINRES relative tolerance. Default 1e-6.
	InnerTol float64
	// InnerMaxIter caps MINRES iterations per solve. Default 200.
	InnerMaxIter int
}

func (o *RQIOptions) setDefaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 4
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	if o.InnerTol == 0 {
		o.InnerTol = 1e-6
	}
	if o.InnerMaxIter == 0 {
		o.InnerMaxIter = 200
	}
}

// RQIResult reports the refined eigenpair.
type RQIResult struct {
	Lambda     float64
	Residual   float64
	Iterations int
	InnerIters int
	// MatVecs counts Laplacian applications (residual checks plus one per
	// MINRES inner iteration).
	MatVecs int
	// Converged reports Residual ≤ Tol·scale under the iteration's own
	// tolerance — the single source of truth consumers should read instead
	// of re-deriving the test.
	Converged bool
}

// JacobiSmoothWS applies weighted-Jacobi smoothing steps toward the
// small end of the spectrum: x ← x − ω·D⁻¹(Lx − ρx), keeping x ⊥ 1. It
// knocks the piecewise-constant interpolation artifacts (high-frequency
// error) out of the iterate before RQI locks onto an eigenpair. It returns
// the matvec count (one Laplacian application per sweep). Exported for the
// standalone RQI solver in internal/solver, which smooths its random start
// the same way the V-cycle smooths an interpolant.
func JacobiSmoothWS(ws *scratch.Workspace, g *graph.Graph, op laplacian.Interface, x []float64, steps int) int {
	n := g.N()
	m := ws.Mark()
	defer ws.Release(m)
	y := ws.Float64s(n)
	const omega = 0.5
	for s := 0; s < steps; s++ {
		rho := op.RayleighQuotient(x)
		op.Apply(x, y)
		for v := 0; v < n; v++ {
			d := float64(g.Degree(v))
			if d == 0 {
				d = 1
			}
			x[v] -= omega * (y[v] - rho*x[v]) / d
		}
		linalg.ProjectOutOnes(x)
		linalg.Normalize(x)
	}
	return steps
}

// RQI refines an approximate Fiedler vector x (modified in place) of the
// Laplacian of g using Rayleigh Quotient Iteration: repeatedly solve
// (L − ρI)·y = x with MINRES (the symmetric-indefinite role SYMMLQ plays in
// the original implementation) and renormalize, where ρ is the current
// Rayleigh quotient. Iterates are kept orthogonal to the constant vector,
// on which L − ρI is nonsingular for 0 < ρ < λ2 or λ2-adjacent shifts.
func RQI(g *graph.Graph, x []float64, opt RQIOptions) RQIResult {
	ws := scratch.Get()
	defer scratch.Put(ws)
	return RQIWS(ws, g, x, opt)
}

// RQIWS is RQI with caller-provided scratch: the operator's degree table,
// the residual and solution vectors and the MINRES work vectors all come
// from ws.
func RQIWS(ws *scratch.Workspace, g *graph.Graph, x []float64, opt RQIOptions) RQIResult {
	m := ws.Mark()
	defer ws.Release(m)
	//envlint:ignore ctxflow ctx-free convenience wrapper; RQIOnWS is the cancellable entry point
	return RQIOnWS(context.Background(), ws, laplacian.AutoFrom(g, ws.Float64s(g.N())), x, opt)
}

// RQIOnWS is RQIWS against an already-constructed Laplacian operator, for
// callers (the standalone RQI solver) that hold one from an earlier stage.
// ctx is checked once per RQI step: on cancellation the iteration stops at
// the current iterate (Converged=false) instead of starting another MINRES
// inner solve.
func RQIOnWS(ctx context.Context, ws *scratch.Workspace, op laplacian.Interface, x []float64, opt RQIOptions) RQIResult {
	shifted := &linalg.ShiftedOp{A: op}
	return rqiRefine(ctx, ws, op, x, opt, shifted)
}

// rqiRefine is the workspace-threaded RQI core shared by RQIWS and the
// V-cycle in FiedlerWS. shifted is a reusable shifted-operator shell (its A
// and Sigma are overwritten) so the hot loop boxes no new operator values;
// the caller allocates it once per solve.
func rqiRefine(ctx context.Context, ws *scratch.Workspace, op laplacian.Interface, x []float64, opt RQIOptions, shifted *linalg.ShiftedOp) RQIResult {
	opt.setDefaults()
	scale := op.GershgorinBound()
	if scale <= 0 {
		scale = 1
	}
	n := op.Dim()

	linalg.ProjectOutOnes(x)
	if linalg.Normalize(x) == 0 {
		// Degenerate input: fall back to an arbitrary non-constant vector.
		for i := range x {
			x[i] = float64(1 - 2*(i&1))
		}
		linalg.ProjectOutOnes(x)
		linalg.Normalize(x)
	}

	m := ws.Mark()
	defer ws.Release(m)
	var res RQIResult
	r := ws.Float64s(n)
	y := ws.Float64s(n)
	work := linalg.MINRESWork{
		V: ws.Float64s(n), VOld: ws.Float64s(n), W: ws.Float64s(n),
		D: ws.Float64s(n), DOld: ws.Float64s(n), DOld2: ws.Float64s(n),
	}
	shifted.A = op
	for it := 0; it < opt.MaxIter; it++ {
		rho := op.RayleighQuotient(x)
		op.Apply(x, r)
		res.MatVecs++
		linalg.Axpy(-rho, x, r)
		res.Lambda = rho
		res.Residual = linalg.Nrm2(r)
		res.Iterations = it
		if res.Residual <= opt.Tol*scale {
			res.Converged = true
			return res
		}
		// Cancellation stops the refinement before the next (expensive)
		// MINRES inner solve; the current iterate stays usable.
		if ctxErr(ctx) != nil {
			return res
		}
		shifted.Sigma = rho
		mr := linalg.MINRESWS(shifted, x, y, linalg.MINRESOptions{
			Tol:         opt.InnerTol,
			MaxIter:     opt.InnerMaxIter,
			ProjectOnes: true,
		}, &work)
		res.InnerIters += mr.Iterations
		res.MatVecs += mr.Iterations
		linalg.ProjectOutOnes(y)
		if linalg.Normalize(y) == 0 {
			// Breakdown: the solve returned (numerically) zero. Keep x.
			return res
		}
		copy(x, y)
	}
	rho := op.RayleighQuotient(x)
	op.Apply(x, r)
	res.MatVecs++
	linalg.Axpy(-rho, x, r)
	res.Lambda = rho
	res.Residual = linalg.Nrm2(r)
	res.Iterations = opt.MaxIter
	res.Converged = res.Residual <= opt.Tol*scale
	return res
}

// rayleighResidual returns ‖Lx − ρx‖ for diagnostics, using a ws-backed
// residual vector.
func rayleighResidual(ws *scratch.Workspace, op laplacian.Interface, x []float64) float64 {
	m := ws.Mark()
	defer ws.Release(m)
	r := ws.Float64s(op.Dim())
	rho := op.RayleighQuotient(x)
	op.Apply(x, r)
	linalg.Axpy(-rho, x, r)
	return linalg.Nrm2(r)
}
