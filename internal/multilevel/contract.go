// Package multilevel implements the multilevel Fiedler-vector computation
// of §3 of the paper (Barnard & Simon's scheme): graph contraction via
// maximal independent sets and breadth-first domain growing, interpolation
// of the coarse eigenvector to the finer graph, and Rayleigh Quotient
// Iteration refinement with MINRES inner solves.
//
// The coarsest graph (below CoarsestSize vertices) is solved directly with
// Lanczos; the eigenvector is then carried back up the hierarchy.
//
// The solver is workspace-threaded: FiedlerWS, ContractWS and RQIWS draw
// every per-level structure (coarse CSR arrays, domain maps, iterate and
// MINRES work vectors) from a scratch.Workspace, so the hierarchy build and
// the V-cycle refinement run without per-level allocations once the arenas
// are warm. The plain Fiedler/Contract/RQI entry points borrow a pooled
// workspace and copy out anything they return.
package multilevel

import (
	"math/rand"
	"slices"

	"repro/internal/graph"
	"repro/internal/scratch"
)

// Contraction records one coarsening step: the coarse graph, and for every
// fine vertex the coarse vertex (domain) that absorbed it.
type Contraction struct {
	Coarse *graph.Graph
	// DomainOf[v] = index (coarse label) of the domain containing fine v.
	DomainOf []int32
	// Centers[i] = fine vertex chosen as the i-th independent-set vertex.
	Centers []int32
}

// MaximalIndependentSet greedily selects a maximal independent set of g,
// visiting vertices in a seeded random order (matching the paper's
// description: "graph contraction is accomplished by first finding a
// maximal independent set of vertices"). The result is sorted.
func MaximalIndependentSet(g *graph.Graph, seed int64) []int32 {
	ws := scratch.Get()
	defer scratch.Put(ws)
	return misInto(ws, g, seed, make([]int32, 0, g.N()))
}

// misInto appends a sorted maximal independent set of g to mis, using ws
// for the shuffle order and blocked flags. mis must have capacity ≥ g.N().
func misInto(ws *scratch.Workspace, g *graph.Graph, seed int64, mis []int32) []int32 {
	n := g.N()
	m := ws.Mark()
	defer ws.Release(m)
	order := ws.Int32s(n)
	for i := range order {
		order[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })

	blocked := ws.Bools(n)
	for _, v := range order {
		if blocked[v] {
			continue
		}
		mis = append(mis, v)
		blocked[v] = true
		for _, w := range g.Neighbors(int(v)) {
			blocked[w] = true
		}
	}
	// Sorted output keeps downstream structures deterministic given the seed.
	slices.Sort(mis)
	return mis
}

// Contract builds one level of the hierarchy: the independent-set vertices
// become the coarse vertices; domains are grown from them breadth-first
// (multi-source BFS, ties broken by arrival order), and a coarse edge is
// added whenever an edge of the fine graph joins two different domains —
// "adding an edge to the contracted graph when two domains intersect".
//
// The result owns its storage; the hot path inside FiedlerWS uses
// ContractWS instead.
func Contract(g *graph.Graph, seed int64) *Contraction {
	ws := scratch.Get()
	defer scratch.Put(ws)
	c := ContractWS(ws, g, seed)
	nc := c.Coarse.N()
	return &Contraction{
		Coarse: &graph.Graph{
			Xadj: append([]int32(nil), c.Coarse.Xadj...),
			Adj:  append([]int32(nil), c.Coarse.Adj...),
		},
		DomainOf: append([]int32(nil), c.DomainOf...),
		Centers:  append([]int32(nil), c.Centers[:nc]...),
	}
}

// ContractWS is Contract with every output and temporary drawn from ws: the
// returned Contraction (coarse CSR arrays, DomainOf, Centers) is backed by
// ws arenas and is only valid until the enclosing ws.Release or
// scratch.Put. The multilevel driver holds the whole hierarchy this way for
// the duration of one solve.
func ContractWS(ws *scratch.Workspace, g *graph.Graph, seed int64) *Contraction {
	n := g.N()
	// Persistent outputs are checked out before the scratch mark so that
	// releasing the mark frees only the temporaries.
	domain := ws.Int32s(n)
	centers := misInto(ws, g, seed, ws.Int32s(n)[:0])

	m := ws.Mark()
	for i := range domain {
		domain[i] = -1
	}
	queue := ws.Int32s(n)[:0]
	for i, c := range centers {
		domain[c] = int32(i)
		queue = append(queue, c)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(int(v)) {
			if domain[w] < 0 {
				domain[w] = domain[v]
				queue = append(queue, w)
			}
		}
	}
	// Vertices never reached sit in components without a center; each MIS
	// covers every component containing at least one vertex (a maximal set
	// touches every vertex or its neighbor), so all vertices are reached on
	// connected inputs. Guard anyway: orphan singleton domains.
	for v := 0; v < n; v++ {
		if domain[v] < 0 {
			domain[v] = int32(len(centers))
			centers = append(centers, int32(v))
		}
	}
	nc := len(centers)
	// Count the coarse arcs (both directions) so the CSR arrays can be
	// checked out at exact size before the counting-sort temporaries.
	nArcs := 0
	for v := 0; v < n; v++ {
		dv := domain[v]
		for _, w := range g.Neighbors(v) {
			if domain[w] != dv {
				nArcs++
			}
		}
	}
	ws.Release(m)

	xadj := ws.Int32s(nc + 1)
	adj := ws.Int32s(nArcs)
	m2 := ws.Mark()
	// Two-pass counting sort over the cross-domain arcs, exactly as
	// graph.Builder.Build: the arc multiset is symmetric, so one prefix-sum
	// table indexes both the by-target buckets and the by-source output.
	deg := ws.Int32s(nc + 1)
	for i := range deg {
		deg[i] = 0
	}
	for v := 0; v < n; v++ {
		dv := domain[v]
		for _, w := range g.Neighbors(v) {
			if domain[w] != dv {
				deg[dv+1]++
			}
		}
	}
	for c := 0; c < nc; c++ {
		deg[c+1] += deg[c]
	}
	off := ws.Int32s(nc)
	copy(off, deg[:nc])
	srcByTarget := ws.Int32s(nArcs)
	for v := 0; v < n; v++ {
		dv := domain[v]
		for _, w := range g.Neighbors(v) {
			if dw := domain[w]; dw != dv {
				srcByTarget[off[dw]] = dv
				off[dw]++
			}
		}
	}
	copy(off, deg[:nc])
	for t := 0; t < nc; t++ {
		for k := deg[t]; k < deg[t+1]; k++ {
			s := srcByTarget[k]
			adj[off[s]] = int32(t)
			off[s]++
		}
	}
	// Dedupe each (sorted) list, compacting in place.
	out := int32(0)
	for c := 0; c < nc; c++ {
		start := out
		prev := int32(-1)
		for k := deg[c]; k < deg[c+1]; k++ {
			if w := adj[k]; w != prev {
				adj[out] = w
				prev = w
				out++
			}
		}
		xadj[c] = start
	}
	xadj[nc] = out
	ws.Release(m2)
	coarse := &graph.Graph{Xadj: xadj[:nc+1], Adj: adj[:out]}
	return &Contraction{Coarse: coarse, DomainOf: domain, Centers: centers}
}

// Interpolate transfers a coarse vector to the fine graph by piecewise-
// constant prolongation: each fine vertex takes the value of its domain.
// The subsequent smoothing and RQI refinement remove the blockiness.
func (c *Contraction) Interpolate(coarse []float64) []float64 {
	fine := make([]float64, len(c.DomainOf))
	c.InterpolateInto(fine, coarse)
	return fine
}

// InterpolateInto is Interpolate into a caller-provided fine vector of
// length len(c.DomainOf).
func (c *Contraction) InterpolateInto(fine, coarse []float64) {
	for v, d := range c.DomainOf {
		fine[v] = coarse[d]
	}
}
