// Package multilevel implements the multilevel Fiedler-vector computation
// of §3 of the paper (Barnard & Simon's scheme): graph contraction via
// maximal independent sets and breadth-first domain growing, interpolation
// of the coarse eigenvector to the finer graph, and Rayleigh Quotient
// Iteration refinement with MINRES inner solves.
//
// The coarsest graph (below CoarsestSize vertices) is solved directly with
// Lanczos; the eigenvector is then carried back up the hierarchy.
package multilevel

import (
	"math/rand"

	"repro/internal/graph"
)

// Contraction records one coarsening step: the coarse graph, and for every
// fine vertex the coarse vertex (domain) that absorbed it.
type Contraction struct {
	Coarse *graph.Graph
	// DomainOf[v] = index (coarse label) of the domain containing fine v.
	DomainOf []int32
	// Centers[i] = fine vertex chosen as the i-th independent-set vertex.
	Centers []int32
}

// MaximalIndependentSet greedily selects a maximal independent set of g,
// visiting vertices in a seeded random order (matching the paper's
// description: "graph contraction is accomplished by first finding a
// maximal independent set of vertices"). The result is sorted.
func MaximalIndependentSet(g *graph.Graph, seed int64) []int32 {
	n := g.N()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })

	blocked := make([]bool, n)
	var mis []int32
	for _, v := range order {
		if blocked[v] {
			continue
		}
		mis = append(mis, v)
		blocked[v] = true
		for _, w := range g.Neighbors(int(v)) {
			blocked[w] = true
		}
	}
	// Sorted output keeps downstream structures deterministic given the seed.
	for i := 1; i < len(mis); i++ {
		for j := i; j > 0 && mis[j-1] > mis[j]; j-- {
			mis[j-1], mis[j] = mis[j], mis[j-1]
		}
	}
	return mis
}

// Contract builds one level of the hierarchy: the independent-set vertices
// become the coarse vertices; domains are grown from them breadth-first
// (multi-source BFS, ties broken by arrival order), and a coarse edge is
// added whenever an edge of the fine graph joins two different domains —
// "adding an edge to the contracted graph when two domains intersect".
func Contract(g *graph.Graph, seed int64) *Contraction {
	n := g.N()
	centers := MaximalIndependentSet(g, seed)
	domain := make([]int32, n)
	for i := range domain {
		domain[i] = -1
	}
	queue := make([]int32, 0, n)
	for i, c := range centers {
		domain[c] = int32(i)
		queue = append(queue, c)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(int(v)) {
			if domain[w] < 0 {
				domain[w] = domain[v]
				queue = append(queue, w)
			}
		}
	}
	// Vertices never reached sit in components without a center; each MIS
	// covers every component containing at least one vertex (a maximal set
	// touches every vertex or its neighbor), so all vertices are reached on
	// connected inputs. Guard anyway: orphan singleton domains.
	for v := 0; v < n; v++ {
		if domain[v] < 0 {
			domain[v] = int32(len(centers))
			centers = append(centers, int32(v))
		}
	}

	b := graph.NewBuilder(len(centers))
	for v := 0; v < n; v++ {
		dv := domain[v]
		for _, w := range g.Neighbors(v) {
			if dw := domain[w]; dw > dv {
				b.AddEdge(int(dv), int(dw))
			}
		}
	}
	return &Contraction{Coarse: b.Build(), DomainOf: domain, Centers: centers}
}

// Interpolate transfers a coarse vector to the fine graph by piecewise-
// constant prolongation: each fine vertex takes the value of its domain.
// The subsequent smoothing and RQI refinement remove the blockiness.
func (c *Contraction) Interpolate(coarse []float64) []float64 {
	fine := make([]float64, len(c.DomainOf))
	for v, d := range c.DomainOf {
		fine[v] = coarse[d]
	}
	return fine
}
