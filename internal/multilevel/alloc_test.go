package multilevel

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/laplacian"
	"repro/internal/linalg"
	"repro/internal/scratch"
)

// refineFixture builds one contraction level with warm ws-backed storage
// plus everything the V-cycle refinement step needs: the fine operator, a
// coarse vector and a reusable shifted-operator shell.
type refineFixture struct {
	ws      *scratch.Workspace
	g       *graph.Graph
	c       *Contraction
	op      laplacian.Interface
	shifted *linalg.ShiftedOp
	coarseX []float64
	x       []float64
}

func newRefineFixture(side int) *refineFixture {
	g := graph.Grid(side, side)
	ws := scratch.New()
	c := ContractWS(ws, g, 1)
	coarseX := make([]float64, c.Coarse.N())
	for i := range coarseX {
		coarseX[i] = float64(i%17) - 8
	}
	linalg.ProjectOutOnes(coarseX)
	linalg.Normalize(coarseX)
	return &refineFixture{
		ws:      ws,
		g:       g,
		c:       c,
		op:      laplacian.AutoFrom(g, make([]float64, g.N())),
		shifted: &linalg.ShiftedOp{},
		coarseX: coarseX,
		x:       make([]float64, g.N()),
	}
}

// refine runs one interpolate + smooth + RQI step — the steady-state body
// of the multilevel V-cycle.
func (f *refineFixture) refine() {
	f.c.InterpolateInto(f.x, f.coarseX)
	linalg.ProjectOutOnes(f.x)
	linalg.Normalize(f.x)
	JacobiSmoothWS(f.ws, f.g, f.op, f.x, 3)
	rqiRefine(context.Background(), f.ws, f.op, f.x, RQIOptions{MaxIter: 2}, f.shifted)
}

// The V-cycle refinement must run with zero steady-state allocations once
// the workspace arenas are warm: interpolation, smoothing and RQI
// (including the MINRES inner solves) all draw from the workspace.
func TestRefineSteadyStateAllocs(t *testing.T) {
	// Below laplacian's parallel threshold so Apply spawns no goroutines.
	f := newRefineFixture(40)
	f.refine() // warm the arenas
	if allocs := testing.AllocsPerRun(20, f.refine); allocs != 0 {
		t.Fatalf("refine steady state allocates %.0f allocs/op, want 0", allocs)
	}
}

// BenchmarkMultilevelRefineWS is the CI-gated benchmark behind the
// steady-state guard: cmd/benchjson enforces 0 allocs/op on it.
func BenchmarkMultilevelRefineWS(b *testing.B) {
	f := newRefineFixture(40)
	f.refine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.refine()
	}
}

// Hierarchy construction through ContractWS must also be allocation-free on
// warm arenas (the MIS rng and the Contraction struct are the only heap
// allocations, both O(1)).
func TestContractWSWarmAllocs(t *testing.T) {
	g := graph.Grid(30, 30)
	ws := scratch.New()
	mark := ws.Mark()
	run := func() {
		ws.Release(mark)
		ContractWS(ws, g, 7)
	}
	run()
	// The rand.Rand and the returned *Contraction are per-call heap values;
	// everything per-level (CSR, domains, centers, queues) is arena-backed.
	const overhead = 8
	if allocs := testing.AllocsPerRun(20, run); allocs > overhead {
		t.Fatalf("ContractWS allocates %.0f allocs/op on warm arenas (budget %d)", allocs, overhead)
	}
}
