package pipeline

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/scratch"
	"repro/internal/store"
)

// DefaultCacheGraphs is the default number of distinct graphs a Cache
// retains before evicting least-recently-used entries.
const DefaultCacheGraphs = 8

// maxArtifactOptionSets bounds how many distinct spectral-option variants
// of a graph's artifacts an entry retains. The LRU bounds graph count;
// this bounds the per-graph dimension, so a caller sweeping seeds or
// tolerances on one pinned graph cannot grow memory without bound. On
// overflow the option map is reset — in-flight runs keep the artifacts
// they already hold, the next call re-solves.
const maxArtifactOptionSets = 4

// Cache memoizes per-graph ordering artifacts across calls: the connected
// component decomposition, the extracted component subgraphs, and the
// per-component Artifacts (Fiedler solve, peripheral root, pseudo-diameter)
// keyed by the spectral options that parameterize them. A Session threads
// one Cache through every Auto and Fiedler call, so repeated orderings of
// the same graph — the serving pattern of a long-lived ordering service —
// pay for decomposition, extraction and eigensolves once.
//
// Graphs are keyed by pointer identity, which is sound because Graph is
// immutable. Entries are evicted least-recently-used beyond the configured
// capacity, bounding the memory a long-lived Session can pin. The Cache —
// and with it every artifact it memoizes — lives exactly as long as its
// Session: eviction or process exit discards the work. Binding a tier-2
// store (SetStore) is what extends artifact lifetime past the process:
// evicted or never-seen graphs re-enter warm by content fingerprint, from
// this process's earlier life or any other process sharing the store. A
// Cache is safe for concurrent use; artifacts reached through it retain
// the Artifacts guarantees (memoized once, cancelled solves retried).
//
// Caching never changes results: every artifact is a pure function of the
// graph and the options, so a cached Auto run is byte-identical to an
// uncached one — and a store-warmed run to both.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[*graph.Graph]*list.Element
	lru     *list.List  // of *cacheEntry; front = most recently used
	store   store.Store // tier 2; nil = in-memory only
}

// NewCache returns a Cache retaining at most maxGraphs graphs (≤ 0 means
// DefaultCacheGraphs).
func NewCache(maxGraphs int) *Cache {
	if maxGraphs <= 0 {
		maxGraphs = DefaultCacheGraphs
	}
	return &Cache{
		max:     maxGraphs,
		entries: map[*graph.Graph]*list.Element{},
		lru:     list.New(),
	}
}

// SetStore binds the persistent tier-2 store newly created artifacts probe
// before solving and write back after. Set it before the Cache serves
// traffic (artifacts created earlier keep running store-less); the Cache
// does not own st and never closes it.
func (c *Cache) SetStore(st store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
}

// tier2 returns the bound store (nil without one).
func (c *Cache) tier2() store.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// cacheEntry is one graph's memo. Its mutex serializes the (one-time)
// decomposition and the per-options artifact map; the artifacts themselves
// do their own finer-grained memoization.
type cacheEntry struct {
	g         *graph.Graph
	mu        sync.Mutex
	connected *bool // memoized IsConnected (pure function of the graph)
	comps     [][]int
	subs      []*graph.Graph // aligned with comps; nil for trivial components
	arts      map[core.Options][]*Artifacts
	whole     map[core.Options]*Artifacts // whole-graph artifacts (connected inputs)
}

// entry returns g's cache entry, creating it (and evicting the
// least-recently-used entry past capacity) as needed.
func (c *Cache) entry(g *graph.Graph) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[g]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry)
	}
	e := &cacheEntry{g: g}
	c.entries[g] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*cacheEntry).g)
		c.lru.Remove(back)
	}
	return e
}

// Len reports the number of graphs currently cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Clear drops every cached entry, releasing the graphs, subgraphs and
// artifact vectors the cache was pinning. Safe for concurrent use;
// in-flight runs keep working on the entries they already hold.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[*graph.Graph]*list.Element{}
	c.lru.Init()
}

// artKey normalizes spectral options into a comparable artifact-map key:
// the operator fields are per-solve plumbing (the artifacts install their
// own shared operator), not identity.
func artKey(opt core.Options) core.Options {
	opt.Operator = nil
	opt.Multilevel.FinestOp = nil
	return opt
}

// resolved is one graph's decomposition plus per-component artifacts for a
// specific spectral-options key. subs and arts are nil at trivial
// components (≤ 2 vertices).
type resolved struct {
	comps [][]int
	subs  []*graph.Graph
	arts  []*Artifacts
}

// extractAll decomposes g and extracts every nontrivial component subgraph
// on the worker pool — the uncached stage-1 work of Auto. st (may be nil)
// is the tier-2 store bound into the fresh artifacts.
func extractAll(g *graph.Graph, workers int, sopt core.Options, st store.Store) resolved {
	comps := graph.Components(g)
	r := resolved{
		comps: comps,
		subs:  make([]*graph.Graph, len(comps)),
		arts:  make([]*Artifacts, len(comps)),
	}
	runPool(workers, len(comps), func(ci int, ws *scratch.Workspace) {
		if len(comps[ci]) <= 2 {
			return
		}
		if len(comps[ci]) == g.N() {
			// A component spanning the whole graph is the graph itself
			// (members are sorted, so the relabeling is the identity): skip
			// the extraction copy and key the artifacts on g, letting the
			// cache share them with the whole-graph entry points.
			r.subs[ci] = g
			r.arts[ci] = newArtifacts(g, sopt, st)
			return
		}
		sub := &graph.Graph{}
		g.SubgraphInto(ws, sub, comps[ci])
		r.subs[ci] = sub
		r.arts[ci] = newArtifacts(sub, sopt, st)
	})
	return r
}

// resolve returns g's decomposition and artifacts for sopt, through the
// cache when one is configured. A connected graph's single component uses
// the same Artifacts the whole-graph entry points (Session.Order,
// Session.Fiedler) memoize, so e.g. a SPECTRAL row and a later Auto run
// on the same connected graph share one eigensolve.
func resolve(g *graph.Graph, workers int, sopt core.Options, cache *Cache) resolved {
	if cache == nil {
		return extractAll(g, workers, sopt, nil)
	}
	st := cache.tier2()
	e := cache.entry(g)
	e.mu.Lock()
	defer e.mu.Unlock()
	key := artKey(sopt)
	if e.comps == nil {
		r := extractAll(g, workers, sopt, st)
		e.comps, e.subs = r.comps, r.subs
		for i, sub := range e.subs {
			if sub == g {
				r.arts[i] = e.wholeLocked(g, sopt, st) // may pre-date this run
			}
		}
		e.arts = map[core.Options][]*Artifacts{key: r.arts}
		return resolved{comps: e.comps, subs: e.subs, arts: r.arts}
	}
	arts, ok := e.arts[key]
	if !ok {
		if len(e.arts) >= maxArtifactOptionSets {
			e.arts = map[core.Options][]*Artifacts{}
		}
		arts = make([]*Artifacts, len(e.comps))
		for i, sub := range e.subs {
			switch {
			case sub == g:
				arts[i] = e.wholeLocked(g, sopt, st)
			case sub != nil:
				arts[i] = newArtifacts(sub, sopt, st)
			}
		}
		e.arts[key] = arts
	}
	return resolved{comps: e.comps, subs: e.subs, arts: arts}
}

// WholeIfConnected returns memoized whole-graph Artifacts when g is
// connected, nil otherwise (connectivity itself is memoized on the
// entry). This is the substrate of Session.Order and Session.Fiedler on
// connected inputs: the graph's own labeling (no component relabeling)
// with eigensolve, root and diameter reuse across calls.
func (c *Cache) WholeIfConnected(g *graph.Graph, sopt core.Options) *Artifacts {
	e := c.entry(g)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.connected == nil {
		conn := graph.IsConnected(g)
		e.connected = &conn
	}
	if !*e.connected {
		return nil
	}
	return e.wholeLocked(g, sopt, c.tier2())
}

// wholeLocked returns the entry's memoized whole-graph Artifacts for sopt,
// creating (and capacity-capping) as needed; st (may be nil) is bound into
// fresh artifacts. The caller holds e.mu. Both the whole-graph entry
// points and resolve's spanning-component path land here, which is what
// makes their eigensolves shared.
func (e *cacheEntry) wholeLocked(g *graph.Graph, sopt core.Options, st store.Store) *Artifacts {
	key := artKey(sopt)
	if a, ok := e.whole[key]; ok {
		return a
	}
	if e.whole == nil || len(e.whole) >= maxArtifactOptionSets {
		e.whole = map[core.Options]*Artifacts{}
	}
	a := newArtifacts(g, sopt, st)
	e.whole[key] = a
	return a
}
