package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/scratch"
	"repro/internal/solver"
)

// Orderer is a pluggable ordering algorithm: anything that can produce a
// permutation of a graph. All built-ins (RCM, CM, GPS, GK, King, Sloan,
// Spectral, Spectral+Sloan, Weighted) implement it and self-register into
// the package registry; user implementations registered with Register race
// in Auto's portfolio on equal footing, per-component artifact cache
// included.
//
// The contract has two calling modes:
//
//   - Portfolio mode (inside Auto): g is one connected component of ≥ 3
//     vertices of the graph the engine was given.
//   - Whole-graph mode (Session.Order and direct calls): g is the caller's
//     full, possibly disconnected, possibly empty graph; the Orderer must
//     handle every component itself.
//
// req.Artifacts, when non-nil, is the memoized artifact cache describing
// exactly the g being passed — use it for the Fiedler vector, the
// pseudo-peripheral root or the pseudo-diameter pair instead of
// recomputing them. It is always set in portfolio mode, and a caching
// Session also sets it for connected whole-graph input, so its presence
// does not distinguish the modes; correct implementations treat both the
// same — order the g they are given, using the artifacts when offered.
//
// Implementations must be deterministic for a fixed (graph, request) — the
// engine's reproducibility contract extends to them — must not retain
// req.Workspace or any buffer from it past the call, must treat slices
// obtained from req.Artifacts (the Fiedler vector, the spectral ordering)
// as read-only — they are the memoized copies every other candidate and
// later cached call reads — must not drive req.Artifacts.Operator()
// themselves (the shared instance supports one matvec at a time and may be
// mid-eigensolve on another worker; wrap the graph in laplacian.Auto for a
// private operator) — and must honor ctx:
// return promptly (with ctx.Err() or a *lanczos.ErrCancelled) once it is
// cancelled. Only Result.Perm and optionally Result.Solve and Result.Info
// need to be filled in; the engine computes Stats, Algorithm and Elapsed.
//
// A panic in an implementation fails the call, not the process: every
// engine entry point (Session.Order, the portfolio race, batch workers)
// recovers it into a *PanicError carrying the value and stack.
type Orderer interface {
	Order(ctx context.Context, g *graph.Graph, req *OrderRequest) (Result, error)
}

// OrdererFunc adapts a plain function to the Orderer interface.
type OrdererFunc func(ctx context.Context, g *graph.Graph, req *OrderRequest) (Result, error)

// Order implements Orderer.
func (f OrdererFunc) Order(ctx context.Context, g *graph.Graph, req *OrderRequest) (Result, error) {
	return f(ctx, g, req)
}

// OrderRequest carries everything an Orderer may need beyond the graph.
// The zero value is valid: built-ins fall back to default options.
type OrderRequest struct {
	// Algorithm is the canonical registry name the orderer was invoked
	// under (useful for one Orderer registered under several names).
	Algorithm string
	// Seed drives randomized pieces; fixed seed ⇒ reproducible run.
	Seed int64
	// Spectral carries the eigensolver options for spectral orderers. Its
	// Seed defaults to OrderRequest.Seed when zero.
	Spectral core.Options
	// Weight is an optional symmetric positive edge-weight function (by the
	// labels of g as passed). The WEIGHTED built-in requires it; the
	// portfolio engine relabels Options.Weight per component before
	// invoking candidates.
	Weight func(u, v int) float64
	// Artifacts, when non-nil, is the memoized artifact cache for the graph
	// being ordered — always set in portfolio mode, and also set by a
	// caching Session on connected whole-graph input (see Orderer).
	Artifacts *Artifacts
	// Workspace is the calling worker's scratch, or nil (orderers that want
	// one then check it out of the shared pool via the workspace helper).
	Workspace *scratch.Workspace
}

// spectral returns the request's eigensolver options with the seed
// defaulted from the request seed.
func (r *OrderRequest) spectral() core.Options {
	s := r.Spectral
	if s.Seed == 0 {
		s.Seed = r.Seed
	}
	return s
}

// workspace returns the request's workspace, checking one out of the
// shared pool (with a release func) when the caller did not provide one.
func (r *OrderRequest) workspace() (*scratch.Workspace, func()) {
	if r.Workspace != nil {
		return r.Workspace, func() {}
	}
	ws := scratch.Get()
	return ws, func() { scratch.Put(ws) }
}

// Result is the uniform outcome of one ordering run — what Session.Order,
// Session.Auto and every registered Orderer trade in.
type Result struct {
	// Perm is the computed ordering (new→old).
	Perm perm.Perm
	// Algorithm is the canonical name of the algorithm that produced Perm
	// (for Auto: the portfolio engine's name, with per-component winners in
	// Report).
	Algorithm string
	// Stats are the envelope parameters of Perm on the input graph.
	Stats envelope.Stats
	// Solve carries the eigensolver statistics behind the run (nil for
	// purely combinatorial orderings).
	Solve *solver.Stats
	// Info carries the full spectral diagnostics (λ2, residual, direction)
	// when the run was a spectral ordering; nil otherwise.
	Info *core.Info
	// Elapsed is the wall-clock ordering time.
	Elapsed time.Duration
	// Report is the full portfolio report when the run came from the Auto
	// engine; nil otherwise.
	Report *Report
}

// Registry ------------------------------------------------------------------

var (
	regMu    sync.RWMutex
	registry = map[string]Orderer{}
)

// Canonical normalizes an algorithm name to its registry form (upper-case,
// surrounding space trimmed): lookups and portfolio specs are
// case-insensitive.
func Canonical(name string) string {
	return strings.ToUpper(strings.TrimSpace(name))
}

// Register adds an Orderer under the given (case-insensitive) name. It
// errors on an empty name, a nil Orderer, or a name already taken — the
// registry is append-only so a portfolio spec can never silently change
// meaning. Safe for concurrent use.
func Register(name string, o Orderer) error {
	key := Canonical(name)
	if key == "" {
		return fmt.Errorf("pipeline: Register: empty algorithm name")
	}
	if o == nil {
		return fmt.Errorf("pipeline: Register %q: nil Orderer", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		return fmt.Errorf("pipeline: Register %q: already registered", key)
	}
	registry[key] = o
	return nil
}

// MustRegister is Register that panics on error — for package init blocks.
func MustRegister(name string, o Orderer) {
	if err := Register(name, o); err != nil {
		panic(err)
	}
}

// Lookup returns the Orderer registered under name (case-insensitive).
func Lookup(name string) (Orderer, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	o, ok := registry[Canonical(name)]
	return o, ok
}

// Algorithms returns the sorted canonical names of every registered
// Orderer — built-ins and user registrations alike.
func Algorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
