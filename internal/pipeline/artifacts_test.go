package pipeline

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/perm"
	"repro/internal/scratch"
)

// countEigensolves runs f with the core eigensolve hook installed and
// returns how many Fiedler eigensolves it performed.
func countEigensolves(f func()) int {
	var solves int64
	restore := core.SetEigensolveTestHook(func(int) { atomic.AddInt64(&solves, 1) })
	defer restore()
	f()
	return int(atomic.LoadInt64(&solves))
}

// The PR's acceptance gate: with both SPECTRAL candidates in the portfolio,
// Auto performs exactly one Fiedler eigensolve per nontrivial component —
// the artifact cache shares the solve — at any parallelism.
func TestAutoEigensolvesOncePerComponent(t *testing.T) {
	g := multiComponentGraph() // 4 nontrivial components + edge + singleton
	const nontrivial = 4
	for _, workers := range []int{1, 8} {
		var rep Report
		solves := countEigensolves(func() {
			p, r, err := Auto(g, Options{Seed: 5, Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Check(); err != nil {
				t.Fatal(err)
			}
			rep = r
		})
		if solves != nontrivial {
			t.Fatalf("parallelism %d: %d eigensolves for %d nontrivial components — SPECTRAL and SPECTRAL+SLOAN must share one solve",
				workers, solves, nontrivial)
		}
		if rep.Eigensolves != nontrivial {
			t.Fatalf("parallelism %d: Report.Eigensolves = %d, want %d", workers, rep.Eigensolves, nontrivial)
		}
		if rep.Solve.MatVecs == 0 {
			t.Fatalf("parallelism %d: aggregate Solve.MatVecs not recorded", workers)
		}
	}
}

// A portfolio with a single spectral entry still solves once per component,
// and one with no spectral entry solves zero times.
func TestAutoEigensolveCountPerPortfolio(t *testing.T) {
	g := multiComponentGraph()
	cases := []struct {
		portfolio []string
		want      int
	}{
		{[]string{AlgSpectral}, 4},
		{[]string{AlgSpectralSloan}, 4},
		{[]string{AlgSpectral, AlgSpectralSloan}, 4},
		{[]string{AlgRCM, AlgGK, AlgGPS, AlgSloan}, 0},
	}
	for _, tc := range cases {
		solves := countEigensolves(func() {
			if _, _, err := Auto(g, Options{Seed: 2, Portfolio: tc.portfolio}); err != nil {
				t.Fatal(err)
			}
		})
		if solves != tc.want {
			t.Fatalf("portfolio %v: %d eigensolves, want %d", tc.portfolio, solves, tc.want)
		}
	}
}

// Spectral candidates must expose the shared solver statistics; the
// combinatorial candidates must not.
func TestCandidateSolveStats(t *testing.T) {
	g := multiComponentGraph()
	_, rep, err := Auto(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range rep.Components {
		if cr.Winner == AlgTrivial {
			continue
		}
		var spectral, hybrid *Candidate
		for i := range cr.Candidates {
			c := &cr.Candidates[i]
			switch c.Algorithm {
			case AlgSpectral:
				spectral = c
			case AlgSpectralSloan:
				hybrid = c
			default:
				if c.Solve != nil {
					t.Fatalf("component %d: combinatorial candidate %s carries solver stats", cr.Index, c.Algorithm)
				}
			}
		}
		if spectral == nil || hybrid == nil {
			t.Fatalf("component %d: spectral candidates missing", cr.Index)
		}
		if spectral.Solve == nil || hybrid.Solve == nil {
			t.Fatalf("component %d: spectral candidates missing solver stats", cr.Index)
		}
		if *spectral.Solve != *hybrid.Solve {
			t.Fatalf("component %d: SPECTRAL and SPECTRAL+SLOAN report different solves:\n%+v\n%+v",
				cr.Index, *spectral.Solve, *hybrid.Solve)
		}
		if spectral.Solve.MatVecs == 0 {
			t.Fatalf("component %d: zero matvecs recorded", cr.Index)
		}
	}
}

// Every artifact-backed candidate must be byte-identical to its standalone
// algorithm: the cache only removes recomputation, never changes results.
func TestArtifactCandidatesMatchStandalone(t *testing.T) {
	// One connected graph (grid plus chords) so the standalone per-graph
	// entry points see exactly the pipeline's component.
	b := graph.NewBuilder(15 * 15)
	for r := 0; r < 15; r++ {
		for c := 0; c < 15; c++ {
			v := r*15 + c
			if c+1 < 15 {
				b.AddEdge(v, v+1)
			}
			if r+1 < 15 {
				b.AddEdge(v, v+15)
			}
		}
	}
	for i := 0; i < 15; i++ {
		b.AddEdge(i, 224-i)
	}
	g := b.Build()

	seed := int64(11)
	standalone := map[string]func() perm.Perm{
		AlgRCM:   func() perm.Perm { return order.RCM(g) },
		AlgCM:    func() perm.Perm { return order.CuthillMcKee(g) },
		AlgGPS:   func() perm.Perm { return order.GPS(g) },
		AlgGK:    func() perm.Perm { return order.GK(g) },
		AlgKing:  func() perm.Perm { return order.King(g) },
		AlgSloan: func() perm.Perm { return order.Sloan(g) },
		AlgSpectral: func() perm.Perm {
			p, _, err := core.Spectral(g, core.Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		AlgSpectralSloan: func() perm.Perm {
			p, _, err := core.SpectralSloan(g, core.Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	for alg, f := range standalone {
		p, _, err := Auto(g, Options{Seed: seed, Portfolio: []string{alg}})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		want := f()
		if !p.Equal(want) {
			t.Errorf("%s: artifact-backed candidate differs from standalone algorithm", alg)
		}
	}
}

// Artifacts are memoized: repeated access returns identical values, and the
// pseudo-diameter substrate matches a direct graph.PseudoDiameter call.
func TestArtifactsMemoization(t *testing.T) {
	g := graph.Grid(12, 9)
	ws := scratch.New()
	art := newArtifacts(g, core.Options{Seed: 3}, nil)

	root := art.Root()
	wantRoot, _ := graph.PseudoPeripheral(g, 0)
	if root != wantRoot {
		t.Fatalf("Root artifact %d != PseudoPeripheral %d", root, wantRoot)
	}
	u, v, lsU, lsV := art.Diameter()
	wu, wv, wlsU, wlsV := graph.PseudoDiameter(g, 0)
	if u != wu || v != wv || lsU.Depth() != wlsU.Depth() || lsV.Depth() != wlsV.Depth() {
		t.Fatalf("Diameter artifact (%d,%d) != PseudoDiameter (%d,%d)", u, v, wu, wv)
	}
	if r2 := art.Root(); r2 != root {
		t.Fatalf("Root not memoized: %d then %d", root, r2)
	}

	x1, st1, err := art.Fiedler(context.Background(), ws)
	if err != nil {
		t.Fatal(err)
	}
	x2, st2, err := art.Fiedler(context.Background(), ws)
	if err != nil {
		t.Fatal(err)
	}
	if &x1[0] != &x2[0] || st1 != st2 {
		t.Fatal("Fiedler artifact recomputed on second access")
	}
	if st1.MatVecs == 0 || st1.Scheme == "" {
		t.Fatalf("Fiedler stats not populated: %+v", st1)
	}
	// The memoized spectral ordering matches core.Spectral, and its cached
	// envelope size is the true one.
	o, esize, _, st3, err := art.Spectral(context.Background(), ws)
	if err != nil {
		t.Fatal(err)
	}
	if st3 != st1 {
		t.Fatal("Spectral artifact reports different solve stats")
	}
	p, _, err := core.Spectral(g, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Equal(p) {
		t.Fatal("artifact spectral ordering differs from core.Spectral")
	}
	if esize != envelope.Esize(g, o) {
		t.Fatalf("cached esize %d != recomputed %d", esize, envelope.Esize(g, o))
	}
	if o2, _, _, _, _ := art.Spectral(context.Background(), ws); &o2[0] != &o[0] {
		t.Fatal("Spectral artifact recomputed on second access")
	}
}

// TestArtifactsOperatorShared pins the per-component operator artifact: one
// Laplacian operator (with its worker partition) is built per component and
// every access — including the Fiedler solve — sees the same instance.
func TestArtifactsOperatorShared(t *testing.T) {
	g := graph.Grid(20, 15)
	art := newArtifacts(g, core.Options{Seed: 3}, nil)
	op1 := art.Operator()
	if op1 == nil || op1.Dim() != g.N() {
		t.Fatalf("Operator artifact wrong: %v", op1)
	}
	if op2 := art.Operator(); op2 != op1 {
		t.Fatal("Operator artifact rebuilt on second access")
	}
	ws := scratch.Get()
	defer scratch.Put(ws)
	if _, st, err := art.Fiedler(context.Background(), ws); err != nil {
		t.Fatal(err)
	} else if st.Workers != op1.Workers() {
		t.Fatalf("Fiedler solve reports %d workers, shared operator has %d", st.Workers, op1.Workers())
	}
}
