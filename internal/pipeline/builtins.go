package pipeline

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/perm"
	"repro/internal/scratch"
	"repro/internal/solver"
)

// Canonical algorithm names of the built-in Orderers.
const (
	AlgRCM           = "RCM"
	AlgCM            = "CM"
	AlgGPS           = "GPS"
	AlgGK            = "GK"
	AlgKing          = "KING"
	AlgSloan         = "SLOAN"
	AlgSpectral      = "SPECTRAL"
	AlgSpectralSloan = "SPECTRAL+SLOAN"
	AlgWeighted      = "WEIGHTED"

	// AlgTrivial marks components of ≤ 2 vertices, where every ordering is
	// optimal and the portfolio is not run.
	AlgTrivial = "TRIVIAL"
)

// builtin is the shape every built-in Orderer shares: a whole-graph path
// (Session.Order and the compatibility shims; must handle disconnected
// input) and a component path that exploits the portfolio engine's
// per-component artifact cache. Both are byte-identical in output to the
// standalone algorithm — the artifact cache removes recomputation, never
// changes results (pinned by TestArtifactCandidatesMatchStandalone).
type builtin struct {
	whole     func(ctx context.Context, ws *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error)
	component func(ctx context.Context, ws *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error)
}

// Order implements Orderer, dispatching on the calling mode (see Orderer).
func (b *builtin) Order(ctx context.Context, g *graph.Graph, req *OrderRequest) (Result, error) {
	ws, release := req.workspace()
	defer release()
	if req.Artifacts != nil {
		return b.component(ctx, ws, g, req)
	}
	return b.whole(ctx, ws, g, req)
}

// plain wraps a bare permutation as a component-mode Result.
func plain(o perm.Perm, err error) (Result, error) {
	return Result{Perm: o}, err
}

// FillConnectedInfo writes into info the exact core.Info a whole-graph
// spectral run reports on a connected graph, reconstructed from the
// memoized artifact state — the fill-style core of connectedInfo, exported
// so the batch executor can back Result.Info with storage it reuses
// across items instead of allocating per call. Every field of info is
// overwritten.
func FillConnectedInfo(info *core.Info, st solver.Stats, reversed bool) {
	*info = core.Info{
		Lambda2:    st.Lambda,
		Residual:   st.Residual,
		Reversed:   reversed,
		Multilevel: st.Scheme == solver.SchemeMultilevel,
		Components: 1,
		MatVecs:    st.MatVecs,
		Solve:      st,
	}
}

// connectedInfo is FillConnectedInfo into a fresh allocation, so the
// artifact-backed path (Session.Do on a connected graph) stays field-
// identical to core.SpectralWS — the shim-equivalence contract.
func connectedInfo(st solver.Stats, reversed bool) *core.Info {
	info := new(core.Info)
	FillConnectedInfo(info, st, reversed)
	return info
}

// failedInfo mirrors the core.Info a whole-graph spectral run reports when
// the connected-graph eigensolve errors: the failed solve's burned
// counters, no estimates (see core's spectralConnected error path).
func failedInfo(st solver.Stats) *core.Info {
	info := &core.Info{Components: 1, MatVecs: st.MatVecs}
	info.Solve.Accumulate(st)
	return info
}

// combinatorial wraps a whole-graph combinatorial ordering (no eigensolver,
// no randomness) as the builtin whole path.
func combinatorial(f func(ws *scratch.Workspace, g *graph.Graph) perm.Perm) func(context.Context, *scratch.Workspace, *graph.Graph, *OrderRequest) (Result, error) {
	return func(_ context.Context, ws *scratch.Workspace, g *graph.Graph, _ *OrderRequest) (Result, error) {
		return Result{Perm: f(ws, g)}, nil
	}
}

// spectralResult packages a core spectral run as a Result. The Info pointer
// is set even on error — core reports the work a failed solve burned — so
// the compatibility shims can preserve the historical (nil perm, partial
// info, err) return shape.
func spectralResult(o perm.Perm, info core.Info, err error) (Result, error) {
	return Result{Perm: o, Solve: &info.Solve, Info: &info}, err
}

func init() {
	MustRegister(AlgRCM, &builtin{
		whole: combinatorial(func(ws *scratch.Workspace, g *graph.Graph) perm.Perm { return order.RCMWS(ws, g) }),
		component: func(_ context.Context, ws *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			return plain(order.RCMFromRootWS(ws, g, req.Artifacts.Root()), nil)
		},
	})
	MustRegister(AlgCM, &builtin{
		whole: combinatorial(func(ws *scratch.Workspace, g *graph.Graph) perm.Perm { return order.CuthillMcKeeWS(ws, g) }),
		component: func(_ context.Context, ws *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			return plain(order.CuthillMcKeeFromRootWS(ws, g, req.Artifacts.Root()), nil)
		},
	})
	MustRegister(AlgGPS, &builtin{
		whole: combinatorial(func(_ *scratch.Workspace, g *graph.Graph) perm.Perm { return order.GPS(g) }),
		component: func(_ context.Context, _ *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			u, v, lsU, lsV := req.Artifacts.Diameter()
			return plain(order.GPSFromDiameter(g, u, v, lsU, lsV), nil)
		},
	})
	MustRegister(AlgGK, &builtin{
		whole: combinatorial(func(_ *scratch.Workspace, g *graph.Graph) perm.Perm { return order.GK(g) }),
		component: func(_ context.Context, _ *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			u, v, lsU, lsV := req.Artifacts.Diameter()
			return plain(order.GKFromDiameter(g, u, v, lsU, lsV), nil)
		},
	})
	MustRegister(AlgKing, &builtin{
		whole: combinatorial(func(_ *scratch.Workspace, g *graph.Graph) perm.Perm { return order.King(g) }),
		component: func(_ context.Context, _ *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			return plain(order.KingFromRoot(g, req.Artifacts.Root()), nil)
		},
	})
	MustRegister(AlgSloan, &builtin{
		whole: combinatorial(func(ws *scratch.Workspace, g *graph.Graph) perm.Perm { return order.SloanWS(ws, g) }),
		component: func(_ context.Context, ws *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			u, _, _, lsV := req.Artifacts.Diameter()
			return plain(order.SloanFromDiameterWS(ws, g, u, lsV.LevelOf), nil)
		},
	})
	MustRegister(AlgSpectral, &builtin{
		whole: func(ctx context.Context, ws *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			o, info, err := core.SpectralWS(ctx, ws, g, req.spectral())
			return spectralResult(o, info, err)
		},
		component: func(ctx context.Context, ws *scratch.Workspace, _ *graph.Graph, req *OrderRequest) (Result, error) {
			o, _, reversed, st, err := req.Artifacts.Spectral(ctx, ws)
			if err != nil {
				return Result{Solve: &st, Info: failedInfo(st)}, err
			}
			return Result{Perm: o, Solve: &st, Info: connectedInfo(st, reversed)}, nil
		},
	})
	MustRegister(AlgSpectralSloan, &builtin{
		whole: func(ctx context.Context, ws *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			o, info, err := core.SpectralSloanWS(ctx, ws, g, req.spectral())
			return spectralResult(o, info, err)
		},
		component: func(ctx context.Context, ws *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			spectral, esize, reversed, st, err := req.Artifacts.Spectral(ctx, ws)
			if err != nil {
				return Result{Solve: &st, Info: failedInfo(st)}, err
			}
			return Result{Perm: core.RefineSpectralWS(ws, g, spectral, esize), Solve: &st, Info: connectedInfo(st, reversed)}, nil
		},
	})
	MustRegister(AlgWeighted, &builtin{
		whole: func(ctx context.Context, _ *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			if req.Weight == nil {
				return Result{}, fmt.Errorf("pipeline: %s needs an edge-weight function (OrderRequest.Weight / Options.Weight)", AlgWeighted)
			}
			o, info, err := core.WeightedSpectral(ctx, g, req.Weight, req.spectral())
			return spectralResult(o, info, err)
		},
		component: func(ctx context.Context, _ *scratch.Workspace, g *graph.Graph, req *OrderRequest) (Result, error) {
			if req.Weight == nil {
				return Result{}, fmt.Errorf("pipeline: %s needs an edge-weight function (Options.Weight)", AlgWeighted)
			}
			// The weighted solve has no artifact to share (its operator is
			// value-dependent, the pattern cache's is not), so the component
			// path is the connected whole-graph path.
			o, info, err := core.WeightedSpectral(ctx, g, req.Weight, req.spectral())
			return spectralResult(o, info, err)
		},
	})
}
