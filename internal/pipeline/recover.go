package pipeline

import (
	"context"
	"fmt"
	"runtime/debug"

	"repro/internal/graph"
)

// PanicError is what a recovered panic in pluggable code — a registered
// Orderer, a BatchRunner item, a service job — is converted to: a per-call
// error carrying the panic value and the goroutine stack at recovery, so
// one broken algorithm costs its own candidate/item/job and nothing else.
// The engine's contract (see Orderer) is that third-party code panicking
// is never allowed to kill a worker pool, a batch barrier or a daemon.
type PanicError struct {
	// Op names what panicked ("orderer MYALG", "batch item 3", "job x1").
	Op string
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline: panic in %s: %v", e.Op, e.Value)
}

// Recovered converts a non-nil recover() value into a *PanicError,
// capturing the current goroutine's stack. Call it directly inside the
// deferred function so the stack still shows the panic site.
func Recovered(op string, p any) *PanicError {
	return &PanicError{Op: op, Value: p, Stack: debug.Stack()}
}

// SafeOrder invokes o.Order with panic isolation: a panic inside the
// Orderer returns as a *PanicError instead of unwinding into the caller.
// Every path that runs registry code — the portfolio engine's candidates,
// Session whole-graph calls, batch items — goes through here, which is
// what makes registering a third-party Orderer safe for a daemon.
func SafeOrder(ctx context.Context, o Orderer, name string, g *graph.Graph, req *OrderRequest) (res Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res = Result{}
			err = Recovered("orderer "+name, p)
		}
	}()
	return o.Order(ctx, g, req)
}
