package pipeline

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/store"
)

// StoreKeyFor computes the persistent-store key for g's artifacts under
// sopt: the graph's canonical content fingerprint paired with a digest of
// the spectral options, normalized exactly like the in-memory artifact
// maps (artKey — operator plumbing cleared), so tier 1 and tier 2 agree on
// what "the same solve" means. The service uses it to probe the store for
// a request's cache status without running the pipeline.
func StoreKeyFor(g *graph.Graph, sopt core.Options) store.Key {
	return store.Key{Graph: graph.FingerprintOf(g), Opts: OptionDigest(sopt)}
}

// OptionDigest hashes the identity-bearing spectral options into the store
// key's option half. After artKey clears the per-solve operator fields,
// every remaining field is a scalar, so the %#v rendering is a canonical
// deterministic encoding of the option set (and automatically picks up
// fields added to core.Options later).
func OptionDigest(sopt core.Options) [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("%#v", artKey(sopt))))
}
