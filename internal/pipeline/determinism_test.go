package pipeline

import (
	"testing"

	"repro/internal/graph"
)

// multiComponentGraph builds a disconnected mix of grids, paths and random
// components large enough that every portfolio algorithm does real work.
func multiComponentGraph() *graph.Graph {
	total := 12*12 + 9*9 + 40 + 25 + 2 + 1
	b := graph.NewBuilder(total)
	off := 0
	for _, side := range []int{12, 9} {
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				v := off + r*side + c
				if c+1 < side {
					b.AddEdge(v, v+1)
				}
				if r+1 < side {
					b.AddEdge(v, v+side)
				}
			}
		}
		off += side * side
	}
	for i := 0; i < 39; i++ {
		b.AddEdge(off+i, off+i+1)
	}
	off += 40
	// A denser component: cycle plus chords.
	for i := 0; i < 25; i++ {
		b.AddEdge(off+i, off+(i+1)%25)
		b.AddEdge(off+i, off+(i+7)%25)
	}
	off += 25
	b.AddEdge(off, off+1)
	return b.Build()
}

// The engine's determinism contract under the pooled workspaces: for a
// fixed graph, portfolio and seed, Auto with Parallelism 1 and 8 must be
// byte-identical — same permutation, same winners, same candidate stats.
// The CI race job runs this under -race, which also proves the per-worker
// workspaces never share state.
func TestAutoDeterminismPooledWorkspaces(t *testing.T) {
	g := multiComponentGraph()
	run := func(workers int) (string, Report) {
		p, rep, err := Auto(g, Options{Seed: 1993, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		return permBytes(p), rep
	}
	p1, rep1 := run(1)
	for trial := 0; trial < 3; trial++ {
		p8, rep8 := run(8)
		if p1 != p8 {
			t.Fatalf("trial %d: Parallelism 1 and 8 orderings differ", trial)
		}
		if len(rep1.Components) != len(rep8.Components) {
			t.Fatalf("trial %d: component counts differ", trial)
		}
		for i := range rep1.Components {
			a, b := rep1.Components[i], rep8.Components[i]
			if a.Winner != b.Winner || a.Stats != b.Stats || a.Size != b.Size {
				t.Fatalf("trial %d: component %d reports differ: %+v vs %+v", trial, i, a, b)
			}
			for j := range a.Candidates {
				ca, cb := a.Candidates[j], b.Candidates[j]
				if ca.Algorithm != cb.Algorithm || ca.Esize != cb.Esize ||
					ca.Bandwidth != cb.Bandwidth || ca.Ework != cb.Ework || ca.Err != cb.Err {
					t.Fatalf("trial %d: candidate %d/%d differs: %+v vs %+v", trial, i, j, ca, cb)
				}
			}
		}
		if rep1.Stats != rep8.Stats {
			t.Fatalf("trial %d: global stats differ: %+v vs %+v", trial, rep1.Stats, rep8.Stats)
		}
	}
}

func permBytes(p []int32) string {
	buf := make([]byte, 0, 4*len(p))
	for _, v := range p {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}
