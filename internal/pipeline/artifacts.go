package pipeline

import (
	"context"
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/laplacian"
	"repro/internal/perm"
	"repro/internal/scratch"
	"repro/internal/solver"
	"repro/internal/store"
)

// Artifacts memoizes the expensive per-component precomputations the
// portfolio candidates share: the Fiedler eigensolve (SPECTRAL and
// SPECTRAL+SLOAN), the George–Liu pseudo-peripheral root (CM, RCM, King)
// and the GPS pseudo-diameter pair with its two rooted level structures
// (GPS, GK, Sloan). Each artifact is computed at most once per component —
// by whichever racing candidate asks first — and every computation is a
// pure function of the component graph and the engine options, so the
// memoization preserves the engine's determinism contract regardless of
// which worker wins the race. User Orderers racing in the portfolio reach
// the same cache through OrderRequest.Artifacts.
//
// A cancelled eigensolve is the one outcome that is NOT memoized: budget
// expiry must not poison a cache that a Session carries across calls, so
// the next caller retries (and observes its own context). Results are
// plain heap values (never workspace-backed): candidates on other workers
// read them after the memoizing mutex is released.
//
// When a tier-2 store is bound (Cache.SetStore), the first Fiedler/Spectral
// call additionally probes the persistent store before solving and writes
// successful outcomes back after. Store traffic never changes a result:
// a hit is validated against the graph before it is trusted, anything
// invalid is dropped and re-solved, and vectors loaded from the store obey
// the same read-only memoized-slice contract as freshly solved ones.
type Artifacts struct {
	g   *graph.Graph
	opt core.Options

	// tier2 is the persistent store shared through the owning Cache (nil
	// without one). probed/persistLevel sequence the one probe per process
	// and the fiedler→spectral upgrade writes; both are touched only while
	// holding the memo semaphore.
	tier2        store.Store
	keyOnce      sync.Once
	key          store.Key
	probed       bool
	persistLevel int // 0 nothing, 1 fiedler, 2 fiedler+spectral written

	opOnce sync.Once
	op     laplacian.Interface

	// memo is a capacity-1 semaphore serializing the Fiedler solve and the
	// spectral ordering derived from it (the second racing spectral
	// candidate blocks until the first finishes — the sync.Once behavior,
	// but retryable after a cancelled solve). A semaphore rather than a
	// mutex so a waiter whose context expires mid-wait can give up instead
	// of sitting behind another caller's minutes-long solve (lockCtx).
	// mu guards the memoized fields and the use counter for the brief
	// snapshot reads (fiedlerReport, solveUses), which must never park
	// behind a solve in flight under the semaphore.
	memo          chan struct{}
	mu            sync.Mutex
	uses          int // Fiedler/Spectral consumptions (see solveUses)
	fiedlerDone   bool
	fiedlerVec    []float64
	fiedlerStats  solver.Stats
	fiedlerErr    error
	spectralDone  bool
	spectralOrd   perm.Perm
	spectralEsize int64
	spectralRev   bool
	envDone       bool
	envStats      envelope.Stats

	rootOnce sync.Once
	root     int
	rootLS   *graph.LevelStructure

	pdOnce       sync.Once
	pdU, pdV     int
	pdLSU, pdLSV *graph.LevelStructure
}

func newArtifacts(g *graph.Graph, opt core.Options, tier2 store.Store) *Artifacts {
	return &Artifacts{g: g, opt: opt, tier2: tier2, memo: make(chan struct{}, 1)}
}

// storeKey lazily computes the artifact's persistent-store key (one graph
// hash per Artifacts, not per call).
func (a *Artifacts) storeKey() store.Key {
	a.keyOnce.Do(func() { a.key = StoreKeyFor(a.g, a.opt) })
	return a.key
}

// tier2Probe tries to fill the memo from the persistent store — once per
// Artifacts lifetime, before the first eigensolve. A hit is trusted only
// after validation against the live graph (vertex count, vector lengths,
// permutation validity); an entry that decodes but does not fit is deleted
// and treated as a miss, so a bad store can cost a re-solve but never an
// answer. The caller holds the memo semaphore.
func (a *Artifacts) tier2Probe() {
	if a.tier2 == nil || a.probed {
		return
	}
	a.probed = true
	rec, err := a.tier2.Get(a.storeKey())
	if err != nil {
		return // miss, or an error the Counted wrapper has already counted
	}
	n := a.g.N()
	if rec.N != n || !rec.HasFiedler || len(rec.Fiedler) != n ||
		(rec.HasSpectral && (len(rec.Perm) != n || perm.Perm(rec.Perm).Check() != nil)) {
		a.tier2.Delete(a.storeKey())
		return
	}
	a.mu.Lock()
	a.fiedlerVec, a.fiedlerStats, a.fiedlerErr = rec.Fiedler, rec.Stats, nil
	a.fiedlerDone = true
	a.persistLevel = 1
	if rec.HasSpectral {
		a.spectralOrd, a.spectralEsize, a.spectralRev = rec.Perm, rec.Esize, rec.Reversed
		a.spectralDone = true
		a.persistLevel = 2
	}
	a.mu.Unlock()
}

// tier2Save writes the memoized outcome back to the persistent store when
// it says more than what is already there (a spectral ordering upgrades a
// fiedler-only entry in place). Only successful solves persist: a hard
// failure stays a process-local memo and a cancelled solve was never
// memoized at all. Put errors are counted by the store's instrumentation
// and otherwise ignored — persistence is an accelerator, not a commitment.
// The caller holds the memo semaphore.
func (a *Artifacts) tier2Save() {
	if a.tier2 == nil {
		return
	}
	a.mu.Lock()
	level := 0
	if a.fiedlerDone && a.fiedlerErr == nil {
		level = 1
		if a.spectralDone {
			level = 2
		}
	}
	if level <= a.persistLevel {
		a.mu.Unlock()
		return
	}
	rec := &store.Artifact{
		N:          a.g.N(),
		HasFiedler: true,
		Fiedler:    a.fiedlerVec,
		Stats:      a.fiedlerStats,
	}
	if level == 2 {
		rec.HasSpectral = true
		rec.Perm = a.spectralOrd
		rec.Esize = a.spectralEsize
		rec.Reversed = a.spectralRev
	}
	a.mu.Unlock()
	if a.tier2.Put(a.storeKey(), rec) == nil {
		a.mu.Lock()
		if level > a.persistLevel {
			a.persistLevel = level
		}
		a.mu.Unlock()
	}
}

// lockCtx acquires the memo semaphore, giving up with the context error if
// ctx expires while waiting behind another caller's solve. An
// already-expired ctx still acquires an uncontended semaphore, so cached
// results stay servable past a deadline.
func (a *Artifacts) lockCtx(ctx context.Context) error {
	select {
	case a.memo <- struct{}{}:
		return nil
	default:
	}
	if ctx == nil {
		a.memo <- struct{}{}
		return nil
	}
	select {
	case a.memo <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *Artifacts) lock()   { a.memo <- struct{}{} }
func (a *Artifacts) unlock() { <-a.memo }

// isCancelled reports whether err came from context cancellation or
// deadline expiry anywhere down the eigensolver stack.
func isCancelled(err error) bool {
	var ce *lanczos.ErrCancelled
	return errors.As(err, &ce) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// Operator returns the component's memoized Laplacian operator —
// heap-backed (never workspace-backed), parallelized by the laplacian auto
// heuristics, its worker partition computed once. The instance supports
// one matvec at a time (see ParallelOp), which holds today because the
// only consumer is the Fiedler solve serialized under the artifact mutex; a
// future candidate that runs its own matvecs concurrently must wrap the
// component in its own ParallelOp instead of borrowing this one.
func (a *Artifacts) Operator() laplacian.Interface {
	a.opOnce.Do(func() {
		a.op = laplacian.Auto(a.g)
	})
	return a.op
}

// Fiedler returns the component's memoized Fiedler vector and solver
// statistics, computing them on first call (ws is used only for that
// computation's scratch). Both spectral portfolio candidates call this, so
// the component pays for exactly one eigensolve, run against the shared
// component operator. A cancelled solve is returned but not memoized, and
// a caller whose ctx expires while waiting behind another caller's solve
// returns *lanczos.ErrCancelled instead of blocking out its deadline.
//
// The returned vector is the memoized slice every other candidate (and
// every later cached call) reads: treat it as read-only, copying before
// any in-place scaling or reordering.
func (a *Artifacts) Fiedler(ctx context.Context, ws *scratch.Workspace) ([]float64, solver.Stats, error) {
	if err := a.lockCtx(ctx); err != nil {
		return nil, solver.Stats{}, &lanczos.ErrCancelled{Cause: err}
	}
	defer a.unlock()
	a.mu.Lock()
	a.uses++
	a.mu.Unlock()
	return a.fiedlerLocked(ctx, ws)
}

func (a *Artifacts) fiedlerLocked(ctx context.Context, ws *scratch.Workspace) ([]float64, solver.Stats, error) {
	a.mu.Lock()
	if a.fiedlerDone {
		vec, st, err := a.fiedlerVec, a.fiedlerStats, a.fiedlerErr
		a.mu.Unlock()
		return vec, st, err
	}
	a.mu.Unlock()
	a.tier2Probe()
	a.mu.Lock()
	if a.fiedlerDone { // the probe hit
		vec, st, err := a.fiedlerVec, a.fiedlerStats, a.fiedlerErr
		a.mu.Unlock()
		return vec, st, err
	}
	a.mu.Unlock()
	opt := a.opt
	opt.Operator = a.Operator()
	vec, st, err := core.FiedlerConnectedWS(ctx, ws, a.g, opt)
	if isCancelled(err) {
		return vec, st, err
	}
	a.mu.Lock()
	a.fiedlerVec, a.fiedlerStats, a.fiedlerErr = vec, st, err
	a.fiedlerDone = true
	a.mu.Unlock()
	a.tier2Save()
	return vec, st, err
}

// Spectral returns the component's memoized Algorithm 1 ordering (the
// Fiedler vector sorted in the better direction) with its envelope size,
// the winning sort direction and the solve statistics. SPECTRAL returns
// it directly; SPECTRAL+SLOAN refines it — neither repeats the
// eigensolve, the sort or the both-direction envelope scan. Like
// Fiedler's vector, the returned ordering is the shared memoized slice:
// read-only, copy before mutating.
func (a *Artifacts) Spectral(ctx context.Context, ws *scratch.Workspace) (o perm.Perm, esize int64, reversed bool, st solver.Stats, err error) {
	if lerr := a.lockCtx(ctx); lerr != nil {
		return nil, 0, false, solver.Stats{}, &lanczos.ErrCancelled{Cause: lerr}
	}
	defer a.unlock()
	a.mu.Lock()
	a.uses++
	if a.spectralDone {
		o, esize, reversed, st, err := a.spectralOrd, a.spectralEsize, a.spectralRev, a.fiedlerStats, a.fiedlerErr
		a.mu.Unlock()
		return o, esize, reversed, st, err
	}
	a.mu.Unlock()
	x, st, err := a.fiedlerLocked(ctx, ws)
	if err != nil {
		return nil, 0, false, st, err
	}
	a.mu.Lock()
	if a.spectralDone { // the tier-2 probe under fiedlerLocked filled it
		o, esize, reversed = a.spectralOrd, a.spectralEsize, a.spectralRev
		a.mu.Unlock()
		return o, esize, reversed, st, nil
	}
	a.mu.Unlock()
	o, esize, reversed = core.OrderFiedler(ws, a.g, x)
	a.mu.Lock()
	a.spectralOrd, a.spectralEsize, a.spectralRev = o, esize, reversed
	a.spectralDone = true
	a.mu.Unlock()
	a.tier2Save()
	return o, esize, reversed, st, nil
}

// SpectralStats is Spectral plus the full envelope statistics of the
// memoized ordering, themselves memoized: the statistics are a pure
// function of (component graph, memoized ordering), so like every other
// artifact they are computed at most once and identical to what
// envelope.Compute reports on the same ordering. This is what lets the
// batch fast path serve a warm graph without repeating the O(n+nnz)
// envelope scan per request. Concurrent first calls may both run the scan
// (outside the memo semaphore, each in its own workspace) and store the
// same value — harmless by purity.
func (a *Artifacts) SpectralStats(ctx context.Context, ws *scratch.Workspace) (o perm.Perm, stats envelope.Stats, reversed bool, st solver.Stats, err error) {
	o, _, reversed, st, err = a.Spectral(ctx, ws)
	if err != nil {
		return
	}
	a.mu.Lock()
	if a.envDone {
		stats = a.envStats
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	stats = envelope.ComputeInto(ws, a.g, o)
	a.mu.Lock()
	a.envStats, a.envDone = stats, true
	a.mu.Unlock()
	return
}

// fiedlerReport snapshots the memoized eigensolve outcome for the run
// report (stage 3 of Auto), without racing a concurrent run that shares
// this Artifacts through a Session cache.
func (a *Artifacts) fiedlerReport() (done bool, st solver.Stats, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fiedlerDone, a.fiedlerStats, a.fiedlerErr
}

// solveUses counts Fiedler/Spectral consumptions over the artifact's
// lifetime. Auto snapshots it around a run to attribute a (possibly
// cross-call-cached) eigensolve to the report only when one of the run's
// own candidates actually read it.
func (a *Artifacts) solveUses() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.uses
}

// Root returns the memoized George–Liu pseudo-peripheral vertex of the
// component — the start vertex of CM, RCM and King.
func (a *Artifacts) Root() int {
	a.rootOnce.Do(func() {
		a.root, a.rootLS = graph.PseudoPeripheral(a.g, 0)
	})
	return a.root
}

// Diameter returns the memoized GPS pseudo-diameter endpoints and their
// rooted level structures — the substrate of GPS, GK and Sloan. The
// returned structures are shared: callers must treat them as read-only.
func (a *Artifacts) Diameter() (u, v int, lsU, lsV *graph.LevelStructure) {
	a.pdOnce.Do(func() {
		a.Root() // the diameter search continues from the peripheral root
		a.pdU, a.pdV, a.pdLSU, a.pdLSV = graph.PseudoDiameterFrom(a.g, a.root, a.rootLS)
	})
	return a.pdU, a.pdV, a.pdLSU, a.pdLSV
}
