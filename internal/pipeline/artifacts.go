package pipeline

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/laplacian"
	"repro/internal/perm"
	"repro/internal/scratch"
	"repro/internal/solver"
)

// Artifacts memoizes the expensive per-component precomputations the
// portfolio candidates share: the Fiedler eigensolve (SPECTRAL and
// SPECTRAL+SLOAN), the George–Liu pseudo-peripheral root (CM, RCM, King)
// and the GPS pseudo-diameter pair with its two rooted level structures
// (GPS, GK, Sloan). Each artifact is computed at most once per component —
// by whichever racing candidate asks first — and every computation is a
// pure function of the component graph and the engine options, so the
// memoization preserves the engine's determinism contract regardless of
// which worker wins the race.
//
// Results are plain heap values (never workspace-backed): candidates on
// other workers read them after their sync.Once completes.
type Artifacts struct {
	g   *graph.Graph
	opt core.Options

	opOnce sync.Once
	op     laplacian.Interface

	fiedlerOnce  sync.Once
	fiedlerDone  bool
	fiedlerVec   []float64
	fiedlerStats solver.Stats
	fiedlerErr   error

	spectralOnce  sync.Once
	spectralOrd   perm.Perm
	spectralEsize int64

	rootOnce sync.Once
	root     int
	rootLS   *graph.LevelStructure

	pdOnce       sync.Once
	pdU, pdV     int
	pdLSU, pdLSV *graph.LevelStructure
}

func newArtifacts(g *graph.Graph, opt core.Options) *Artifacts {
	return &Artifacts{g: g, opt: opt}
}

// Operator returns the component's memoized Laplacian operator —
// heap-backed (never workspace-backed), parallelized by the laplacian auto
// heuristics, its worker partition computed once. The instance supports
// one matvec at a time (see ParallelOp), which holds today because the
// only consumer is the Fiedler solve serialized under fiedlerOnce; a
// future candidate that runs its own matvecs concurrently must wrap the
// component in its own ParallelOp instead of borrowing this one.
func (a *Artifacts) Operator() laplacian.Interface {
	a.opOnce.Do(func() {
		a.op = laplacian.Auto(a.g)
	})
	return a.op
}

// Fiedler returns the component's memoized Fiedler vector and solver
// statistics, computing them on first call (ws is used only for that
// computation's scratch). Both spectral portfolio candidates call this, so
// the component pays for exactly one eigensolve, run against the shared
// component operator.
func (a *Artifacts) Fiedler(ws *scratch.Workspace) ([]float64, solver.Stats, error) {
	a.fiedlerOnce.Do(func() {
		opt := a.opt
		opt.Operator = a.Operator()
		a.fiedlerVec, a.fiedlerStats, a.fiedlerErr = core.FiedlerConnectedWS(ws, a.g, opt)
		a.fiedlerDone = true
	})
	return a.fiedlerVec, a.fiedlerStats, a.fiedlerErr
}

// Spectral returns the component's memoized Algorithm 1 ordering (the
// Fiedler vector sorted in the better direction) with its envelope size and
// the solve statistics. SPECTRAL returns it directly; SPECTRAL+SLOAN
// refines it — neither repeats the eigensolve, the sort or the
// both-direction envelope scan.
func (a *Artifacts) Spectral(ws *scratch.Workspace) (perm.Perm, int64, solver.Stats, error) {
	a.spectralOnce.Do(func() {
		x, _, err := a.Fiedler(ws)
		if err != nil {
			return
		}
		a.spectralOrd, a.spectralEsize, _ = core.OrderFiedler(ws, a.g, x)
	})
	return a.spectralOrd, a.spectralEsize, a.fiedlerStats, a.fiedlerErr
}

// Root returns the memoized George–Liu pseudo-peripheral vertex of the
// component — the start vertex of CM, RCM and King.
func (a *Artifacts) Root() int {
	a.rootOnce.Do(func() {
		a.root, a.rootLS = graph.PseudoPeripheral(a.g, 0)
	})
	return a.root
}

// Diameter returns the memoized GPS pseudo-diameter endpoints and their
// rooted level structures — the substrate of GPS, GK and Sloan. The
// returned structures are shared: callers must treat them as read-only.
func (a *Artifacts) Diameter() (u, v int, lsU, lsV *graph.LevelStructure) {
	a.pdOnce.Do(func() {
		a.Root() // the diameter search continues from the peripheral root
		a.pdU, a.pdV, a.pdLSU, a.pdLSV = graph.PseudoDiameterFrom(a.g, a.root, a.rootLS)
	})
	return a.pdU, a.pdV, a.pdLSU, a.pdLSV
}
