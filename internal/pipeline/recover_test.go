package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/scratch"
)

func TestSafeOrderConvertsPanic(t *testing.T) {
	g := graph.Path(6)
	bomb := OrdererFunc(func(ctx context.Context, g *graph.Graph, req *OrderRequest) (Result, error) {
		panic("boom 42")
	})
	_, err := SafeOrder(context.Background(), bomb, "BOMB", g, &OrderRequest{})
	if err == nil {
		t.Fatal("SafeOrder swallowed the panic without an error")
	}
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("error %T is not a *PanicError", err)
	}
	if perr.Op != "orderer BOMB" || perr.Value != "boom 42" {
		t.Fatalf("PanicError{Op: %q, Value: %v}", perr.Op, perr.Value)
	}
	if len(perr.Stack) == 0 || !strings.Contains(string(perr.Stack), "recover_test") {
		t.Fatal("PanicError carries no useful stack")
	}
	if !strings.Contains(err.Error(), "boom 42") {
		t.Fatalf("error text %q hides the panic value", err.Error())
	}
}

func TestSafeOrderPassesThroughCleanRuns(t *testing.T) {
	g := graph.Path(5)
	ident := OrdererFunc(func(ctx context.Context, g *graph.Graph, req *OrderRequest) (Result, error) {
		res := Result{Perm: make([]int32, g.N())}
		for i := range res.Perm {
			res.Perm[i] = int32(i)
		}
		return res, nil
	})
	res, err := SafeOrder(context.Background(), ident, "IDENT", g, &OrderRequest{})
	if err != nil || len(res.Perm) != g.N() {
		t.Fatalf("clean run: res=%v err=%v", res, err)
	}
}

// panicBatch panics on selected items; with handler=true it implements
// BatchPanicHandler and collects per-item errors.
type panicBatch struct {
	panicAt map[int]bool
	handler bool
	ran     []atomic.Bool

	mu   sync.Mutex
	errs map[int]error
}

func (b *panicBatch) RunItem(i int, ws *scratch.Workspace) {
	b.ran[i].Store(true)
	if b.panicAt[i] {
		panic("item blew up")
	}
}

func (b *panicBatch) ItemPanicked(i int, err error) {
	if !b.handler {
		panic("ItemPanicked called on non-handler runner")
	}
	b.mu.Lock()
	b.errs[i] = err
	b.mu.Unlock()
}

// bareBatch narrows panicBatch to the BatchRunner interface alone (a
// plain field, not an embed, so ItemPanicked is not promoted) — RunBatch
// must fall back to re-raising.
type bareBatch struct{ b *panicBatch }

func (b bareBatch) RunItem(i int, ws *scratch.Workspace) { b.b.RunItem(i, ws) }

func TestRunBatchPanicToHandler(t *testing.T) {
	const n = 32
	b := &panicBatch{
		panicAt: map[int]bool{3: true, 17: true},
		handler: true,
		ran:     make([]atomic.Bool, n),
		errs:    map[int]error{},
	}
	RunBatch(4, n, b)
	for i := 0; i < n; i++ {
		if !b.ran[i].Load() {
			t.Fatalf("item %d never ran", i)
		}
	}
	if len(b.errs) != 2 {
		t.Fatalf("got %d item errors, want 2: %v", len(b.errs), b.errs)
	}
	for i, err := range b.errs {
		var perr *PanicError
		if !errors.As(err, &perr) || perr.Value != "item blew up" {
			t.Fatalf("item %d error %v is not the recovered panic", i, err)
		}
	}

	// The persistent pool survived: a clean batch on the same workers.
	c := &panicBatch{handler: true, ran: make([]atomic.Bool, n), errs: map[int]error{}}
	RunBatch(4, n, c)
	for i := 0; i < n; i++ {
		if !c.ran[i].Load() {
			t.Fatalf("post-panic batch: item %d never ran", i)
		}
	}
	if len(c.errs) != 0 {
		t.Fatalf("post-panic batch reported errors: %v", c.errs)
	}
}

func TestRunBatchPanicReRaisedWithoutHandler(t *testing.T) {
	const n = 16
	b := &panicBatch{panicAt: map[int]bool{5: true}, ran: make([]atomic.Bool, n)}
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		RunBatch(2, n, bareBatch{b})
	}()
	perr, ok := recovered.(*PanicError)
	if !ok || perr.Value != "item blew up" {
		t.Fatalf("RunBatch re-raised %v, want the recovered *PanicError", recovered)
	}
	// Every item still ran: one panic fails the call, not the barrier.
	for i := 0; i < n; i++ {
		if !b.ran[i].Load() {
			t.Fatalf("item %d skipped after the panic", i)
		}
	}

	// And the pool is intact afterwards.
	c := &panicBatch{handler: true, ran: make([]atomic.Bool, n), errs: map[int]error{}}
	RunBatch(2, n, c)
	for i := 0; i < n; i++ {
		if !c.ran[i].Load() {
			t.Fatalf("post-panic batch: item %d never ran", i)
		}
	}
}
