package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/store"
)

// storeTestGraph builds a fresh instance of the test graph — distinct
// pointer each call, identical content, so a second "process" never hits
// the pointer-keyed tier 1.
func storeTestGraph() *graph.Graph {
	edges := [][2]int{}
	const side = 8 // 8×8 grid, 64 vertices — big enough for real solves
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < side {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return graph.FromEdges(side*side, edges)
}

// autoThroughStore runs Auto on a fresh graph instance and fresh Cache
// bound to st — the shape of a brand-new process sharing only the store.
func autoThroughStore(t *testing.T, st store.Store, opt Options) []int32 {
	t.Helper()
	cache := NewCache(4)
	cache.SetStore(st)
	opt.Cache = cache
	if opt.Portfolio == nil {
		opt.Portfolio = []string{"RCM", "SPECTRAL"}
	}
	p, _, err := Auto(storeTestGraph(), opt)
	if err != nil {
		t.Fatalf("Auto: %v", err)
	}
	return p
}

// TestStoreWarmRunZeroSolves is the tentpole contract at pipeline level: a
// run through a fresh Cache (new graph pointer — a "new process") bound to
// a store warmed by an earlier run performs zero eigensolves and returns
// the byte-identical permutation.
func TestStoreWarmRunZeroSolves(t *testing.T) {
	st := store.NewMem(0)
	defer st.Close()

	var coldPerm, warmPerm []int32
	cold := countEigensolves(func() {
		coldPerm = autoThroughStore(t, st, Options{Seed: 7})
	})
	if cold == 0 {
		t.Fatal("cold run performed no eigensolves — test graph too small?")
	}
	if n, err := st.Len(); err != nil || n == 0 {
		t.Fatalf("store empty after cold run (len=%d, err=%v)", n, err)
	}

	warm := countEigensolves(func() {
		warmPerm = autoThroughStore(t, st, Options{Seed: 7})
	})
	if warm != 0 {
		t.Errorf("warm run performed %d eigensolves, want 0", warm)
	}
	if len(warmPerm) != len(coldPerm) {
		t.Fatalf("perm length mismatch: %d vs %d", len(warmPerm), len(coldPerm))
	}
	for i := range coldPerm {
		if warmPerm[i] != coldPerm[i] {
			t.Fatalf("warm permutation differs from cold at %d: %d vs %d", i, warmPerm[i], coldPerm[i])
		}
	}
}

// TestStoreDifferentOptionsMiss: a warm store serves only the option set it
// was written under — a different seed is a different key and re-solves.
func TestStoreDifferentOptionsMiss(t *testing.T) {
	st := store.NewMem(0)
	defer st.Close()
	run := func(seed int64) int {
		return countEigensolves(func() {
			autoThroughStore(t, st, Options{Seed: seed})
		})
	}
	run(1)
	if n := run(2); n == 0 {
		t.Error("different seed served from store — option digest not in the key?")
	}
	if n := run(1); n != 0 {
		t.Errorf("original seed re-solved %d times, want 0", n)
	}
}

// TestStoreCorruptEntryDegrades: a corrupted store entry must surface as a
// counted error, be dropped, and leave the result identical to a cold run.
func TestStoreCorruptEntryDegrades(t *testing.T) {
	mem := store.NewMem(0)
	defer mem.Close()
	counted := store.NewCounted(mem, nil)

	coldPerm := autoThroughStore(t, counted, Options{Seed: 3})

	key := StoreKeyFor(storeTestGraph(), core.Options{Seed: 3})
	if _, err := mem.Get(key); err != nil {
		t.Fatalf("expected entry at computed key: %v", err)
	}
	if !store.CorruptMemEntry(mem, key, []byte("garbage")) {
		t.Fatal("CorruptMemEntry found nothing")
	}

	before := counted.Stats()
	var warmPerm []int32
	solves := countEigensolves(func() {
		warmPerm = autoThroughStore(t, counted, Options{Seed: 3})
	})
	if solves == 0 {
		t.Error("corrupt entry was served instead of re-solved")
	}
	after := counted.Stats()
	if after.Errors <= before.Errors {
		t.Errorf("corrupt read not counted as error: %+v -> %+v", before, after)
	}
	for i := range coldPerm {
		if warmPerm[i] != coldPerm[i] {
			t.Fatalf("permutation after corrupt-store recovery differs at %d", i)
		}
	}
	// The re-solve rewrote the entry: a third run is warm again.
	if n := countEigensolves(func() {
		autoThroughStore(t, counted, Options{Seed: 3})
	}); n != 0 {
		t.Errorf("store not rewritten after corrupt-entry recovery (%d solves)", n)
	}
}

// TestStoreMismatchedEntryDropped: an entry that decodes but does not fit
// the graph (wrong N) is deleted and re-solved, never served.
func TestStoreMismatchedEntryDropped(t *testing.T) {
	mem := store.NewMem(0)
	defer mem.Close()
	g := storeTestGraph()
	key := StoreKeyFor(g, core.Options{Seed: 5})
	// A valid artifact for a *different* (smaller) graph planted under g's
	// key — as if a buggy writer crossed entries.
	bogus := &store.Artifact{
		N: 3, HasFiedler: true, Fiedler: []float64{0.1, 0.2, 0.3},
		HasSpectral: true, Perm: []int32{2, 1, 0}, Esize: 2,
	}
	if err := mem.Put(key, bogus); err != nil {
		t.Fatal(err)
	}
	solves := countEigensolves(func() {
		autoThroughStore(t, mem, Options{Seed: 5})
	})
	if solves == 0 {
		t.Error("mismatched entry was served instead of re-solved")
	}
	rec, err := mem.Get(key)
	if err != nil {
		t.Fatalf("entry not rewritten after mismatch: %v", err)
	}
	if rec.N != g.N() {
		t.Errorf("rewritten entry has N=%d, want %d", rec.N, g.N())
	}
}

// TestStoreKeyDeterminism: the option digest must be a pure function of
// the identity-bearing options, ignoring per-solve operator plumbing.
func TestStoreKeyDeterminism(t *testing.T) {
	g := storeTestGraph()
	a := StoreKeyFor(g, core.Options{Seed: 9})
	b := StoreKeyFor(storeTestGraph(), core.Options{Seed: 9})
	if a != b {
		t.Error("same graph content + options produced different keys")
	}
	if c := StoreKeyFor(g, core.Options{Seed: 10}); c == a {
		t.Error("different seeds produced the same key")
	}
	withOp := core.Options{Seed: 9}
	withOp.Operator = nil // explicit: operator fields are cleared by artKey
	if d := StoreKeyFor(g, withOp); d != a {
		t.Error("operator field leaked into the option digest")
	}
}
