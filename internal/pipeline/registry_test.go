package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/perm"
	"repro/internal/scratch"
)

func TestRegisterValidation(t *testing.T) {
	noop := OrdererFunc(func(context.Context, *graph.Graph, *OrderRequest) (Result, error) {
		return Result{}, nil
	})
	if err := Register("", noop); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register("   ", noop); err == nil {
		t.Fatal("blank name accepted")
	}
	if err := Register("nil-orderer-test", nil); err == nil {
		t.Fatal("nil Orderer accepted")
	}
	// The registry is append-only and process-global, so under
	// go test -count=N the first registration exists from the prior run.
	if err := Register("dup-test-alg", noop); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("first registration failed: %v", err)
	}
	if err := Register("DUP-TEST-ALG", noop); err == nil {
		t.Fatal("duplicate (case-insensitive) registration accepted")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate error %q does not say so", err)
	}
	// Built-in names are taken too.
	if err := Register("rcm", noop); err == nil {
		t.Fatal("shadowing a built-in accepted")
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	for _, name := range []string{"RCM", "rcm", "Rcm", " spectral+sloan "} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) missed", name)
		}
	}
	if _, ok := Lookup("definitely-not-registered"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
}

func TestAlgorithmsSortedAndComplete(t *testing.T) {
	names := Algorithms()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Algorithms() not sorted: %v", names)
	}
	want := []string{AlgRCM, AlgCM, AlgGPS, AlgGK, AlgKing, AlgSloan, AlgSpectral, AlgSpectralSloan, AlgWeighted}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("built-in %s missing from Algorithms(): %v", w, names)
		}
	}
}

func TestPortfolioNormalizesAndListsOnError(t *testing.T) {
	names, err := Portfolio(Options{Portfolio: []string{"rcm", "Sloan", "SPECTRAL"}})
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != AlgRCM || names[1] != AlgSloan || names[2] != AlgSpectral {
		t.Fatalf("names not canonicalized: %v", names)
	}
	_, err = Portfolio(Options{Portfolio: []string{"NOPE"}})
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), AlgRCM) || !strings.Contains(err.Error(), AlgSpectralSloan) {
		t.Fatalf("unknown-name error %q does not list the registered algorithms", err)
	}
}

// optimalStar orders small star-with-chord components exactly (hub in the
// middle), beating every level-structure built-in; on anything else it
// declines with an error. Registered once for the whole test binary.
var optimalStarRegistered = func() bool {
	MustRegister("TEST-STAR", OrdererFunc(func(ctx context.Context, g *graph.Graph, req *OrderRequest) (Result, error) {
		n := g.N()
		if n > 9 {
			return Result{}, fmt.Errorf("test-star: too big (n=%d)", n)
		}
		// Exhaustive search over the engine's full (envelope, bandwidth,
		// work) score — exact, hence never strictly beaten, and as the
		// portfolio's first entry it keeps ties.
		better := func(a, b envelope.Stats) bool {
			if a.Esize != b.Esize {
				return a.Esize < b.Esize
			}
			if a.Bandwidth != b.Bandwidth {
				return a.Bandwidth < b.Bandwidth
			}
			return a.Ework < b.Ework
		}
		best := perm.Identity(n)
		bestS := envelope.Compute(g, best)
		cur := perm.Identity(n)
		var walk func(k int)
		walk = func(k int) {
			if k == n {
				if s := envelope.Compute(g, cur); better(s, bestS) {
					bestS = s
					copy(best, cur)
				}
				return
			}
			for i := k; i < n; i++ {
				cur[k], cur[i] = cur[i], cur[k]
				walk(k + 1)
				cur[k], cur[i] = cur[i], cur[k]
			}
		}
		walk(0)
		return Result{Perm: best}, nil
	}))
	return true
}()

// starsAndGrid builds one big grid component plus several 7-vertex stars —
// components the exhaustive custom orderer handles and wins.
func starsAndGrid() *graph.Graph {
	grid := graph.Grid(10, 8)
	b := graph.NewBuilder(grid.N() + 3*7)
	for _, e := range grid.Edges() {
		b.AddEdge(e[0], e[1])
	}
	off := grid.N()
	for c := 0; c < 3; c++ {
		for leaf := 1; leaf < 7; leaf++ {
			b.AddEdge(off, off+leaf)
		}
		b.AddEdge(off+1, off+2)
		off += 7
	}
	return b.Build()
}

// The acceptance gate for the pluggable registry: a user-registered
// Orderer races in Auto with everything the built-ins get and wins the
// components it is best at.
func TestCustomOrdererWinsComponentsInAuto(t *testing.T) {
	_ = optimalStarRegistered
	g := starsAndGrid()
	portfolio := append([]string{"TEST-STAR"}, DefaultPortfolio()...)
	p, rep, err := Auto(g, Options{Seed: 3, Portfolio: portfolio, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if rep.Wins["TEST-STAR"] < 3 {
		t.Fatalf("custom orderer won %d components, want the 3 stars; wins=%v", rep.Wins["TEST-STAR"], rep.Wins)
	}
	// The big component is beyond the custom orderer: its error is
	// recorded on the candidate, not fatal to the run.
	big := rep.Components[0]
	found := false
	for _, c := range big.Candidates {
		if c.Algorithm == "TEST-STAR" {
			found = true
			if c.Err == "" {
				t.Fatal("custom orderer's decline on the big component not recorded")
			}
		}
	}
	if !found {
		t.Fatal("custom candidate missing from the big component's report")
	}
	// Determinism holds with a custom orderer in the race.
	p1, _, err := Auto(g, Options{Seed: 3, Portfolio: portfolio, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(p1) {
		t.Fatal("custom portfolio not deterministic across parallelism")
	}
}

// testBlockRegistered registers the blocking orderer once per process —
// the registry is append-only, so go test -count=N must not re-register.
// It simulates a long eigensolve that honors cancellation: blocks until
// the engine's budget context expires.
var testBlockRegistered = func() bool {
	MustRegister("TEST-BLOCK", OrdererFunc(func(ctx context.Context, g *graph.Graph, req *OrderRequest) (Result, error) {
		<-ctx.Done()
		return Result{}, ctx.Err()
	}))
	return true
}()

// Budget expiry must interrupt candidates that are already running — the
// blocking candidate observes its deadline context — while the fallback
// completes and wins.
func TestBudgetInterruptsRunningCandidate(t *testing.T) {
	_ = testBlockRegistered
	g := graph.Grid(12, 9)
	start := time.Now()
	p, rep, err := Auto(g, Options{
		Seed:      1,
		Portfolio: []string{AlgRCM, "TEST-BLOCK"},
		Budget:    100 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("budget did not interrupt the running candidate (took %v)", elapsed)
	}
	cr := rep.Components[0]
	if cr.Winner != AlgRCM {
		t.Fatalf("winner %s, want the %s fallback", cr.Winner, AlgRCM)
	}
	var blocked *Candidate
	for i := range cr.Candidates {
		if cr.Candidates[i].Algorithm == "TEST-BLOCK" {
			blocked = &cr.Candidates[i]
		}
	}
	if blocked == nil {
		t.Fatal("blocking candidate missing from report")
	}
	if blocked.Skipped || blocked.Err == "" {
		t.Fatalf("blocking candidate should have been cancelled mid-run: %+v", *blocked)
	}
	if !strings.Contains(blocked.Err, context.DeadlineExceeded.Error()) {
		t.Fatalf("cancelled candidate error %q does not carry the deadline cause", blocked.Err)
	}
}

// A caller whose context expires while waiting behind another caller's
// in-flight solve on the same Artifacts gives up promptly with
// ErrCancelled instead of blocking out its deadline.
func TestArtifactsLockHonorsContext(t *testing.T) {
	g := graph.Grid(12, 9)
	art := newArtifacts(g, spectralOpt(Options{Seed: 2}), nil)
	ws := scratch.Get()
	defer scratch.Put(ws)
	hold := make(chan struct{})
	started := make(chan struct{})
	go func() {
		art.lock() // occupy the solve semaphore, as a long solve would
		close(started)
		<-hold
		art.unlock()
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, _, err := art.Fiedler(ctx, ws)
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("waiter blocked %v past its deadline", elapsed)
	}
	var ce *lanczos.ErrCancelled
	if !errors.As(err, &ce) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCancelled carrying the deadline, got %v", err)
	}
	close(hold)
	// The semaphore holder's release restores normal service.
	if _, _, err := art.Fiedler(context.Background(), ws); err != nil {
		t.Fatal(err)
	}
}

// A cancelled eigensolve must not poison the artifact cache: the next
// caller (with a live context) retries and succeeds.
func TestArtifactsRetryAfterCancelledSolve(t *testing.T) {
	g := graph.Grid(12, 9)
	art := newArtifacts(g, spectralOpt(Options{Seed: 2}), nil)
	ws := scratch.Get()
	defer scratch.Put(ws)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := art.Fiedler(cancelled, ws); err == nil {
		t.Fatal("cancelled solve succeeded")
	} else if !isCancelled(err) {
		t.Fatalf("err %v not a cancellation", err)
	}
	x, st, err := art.Fiedler(context.Background(), ws)
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if len(x) != g.N() || st.MatVecs == 0 {
		t.Fatalf("retry produced no usable solve: len=%d stats=%+v", len(x), st)
	}
}

// WEIGHTED races in the portfolio when Options.Weight is supplied, with
// per-component relabeling handled by the engine.
func TestWeightedInPortfolio(t *testing.T) {
	g := multiComponentGraph()
	weight := func(u, v int) float64 { return 1 + float64((u+v)%3) }
	p, rep, err := Auto(g, Options{
		Seed:      4,
		Portfolio: []string{AlgRCM, AlgWeighted},
		Weight:    weight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	for _, cr := range rep.Components {
		if cr.Winner == AlgTrivial {
			continue
		}
		for _, c := range cr.Candidates {
			if c.Algorithm == AlgWeighted && c.Err != "" {
				t.Fatalf("component %d: WEIGHTED failed: %s", cr.Index, c.Err)
			}
		}
	}
	// Without a weight function the candidate fails cleanly and the rest
	// of the portfolio covers.
	p2, rep2, err := Auto(g, Options{Seed: 4, Portfolio: []string{AlgRCM, AlgWeighted}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Check(); err != nil {
		t.Fatal(err)
	}
	for _, cr := range rep2.Components {
		for _, c := range cr.Candidates {
			if c.Algorithm == AlgWeighted && c.Err == "" {
				t.Fatal("WEIGHTED without a weight function should record an error")
			}
		}
	}
}

// Cache: a second Auto run on the same graph through the same Cache reuses
// decomposition, subgraphs and eigensolves, and stays byte-identical to
// the uncached run.
func TestCacheReusesArtifactsAcrossRuns(t *testing.T) {
	g := multiComponentGraph()
	cache := NewCache(0)
	opt := Options{Seed: 5, Cache: cache}
	var first, second perm.Perm
	solves1 := countEigensolves(func() {
		p, _, err := Auto(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		first = p
	})
	solves2 := countEigensolves(func() {
		p, _, err := Auto(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		second = p
	})
	if solves1 == 0 {
		t.Fatal("first run performed no eigensolves")
	}
	if solves2 != 0 {
		t.Fatalf("second run repeated %d eigensolves despite the cache", solves2)
	}
	if !first.Equal(second) {
		t.Fatal("cached run differs from fresh run")
	}
	uncached, _, err := Auto(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(uncached) {
		t.Fatal("cached run differs from uncached run — caching changed results")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d graphs, want 1", cache.Len())
	}
}

// Cache eviction is LRU-bounded.
func TestCacheEviction(t *testing.T) {
	cache := NewCache(2)
	graphs := []*graph.Graph{graph.Path(30), graph.Path(31), graph.Path(32)}
	for _, g := range graphs {
		if _, _, err := Auto(g, Options{Seed: 1, Cache: cache, Portfolio: []string{AlgRCM}}); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d graphs, want capacity 2", cache.Len())
	}
}
