// Package pipeline implements the parallel portfolio ordering engine: it
// decomposes a graph into connected components, orders every component
// concurrently on a bounded worker pool while racing a configurable
// portfolio of ordering algorithms per component, scores the candidates by
// envelope size (ties broken by bandwidth, then envelope work, then
// portfolio position), and stitches the per-component winners into one
// global permutation.
//
// Candidates on the same component share a per-component artifact cache
// (see Artifacts): the Fiedler eigensolve, the pseudo-peripheral root and
// the pseudo-diameter pair are each computed once — by whichever racing
// candidate asks first — so SPECTRAL and SPECTRAL+SLOAN cost one
// eigensolve per component, and the BFS-rooted algorithms share their
// peripheral searches. Artifacts are pure functions of the component and
// the seed, so sharing does not perturb determinism or results.
//
// The engine is deterministic: for a fixed graph, portfolio and seed the
// result is byte-identical regardless of Parallelism or goroutine
// scheduling, because every (component, algorithm) candidate is computed
// into its own slot and the winner selection is a pure function of the
// collected slots. The only exception is an expiring Budget, which skips
// not-yet-started non-fallback candidates and therefore depends on timing;
// the fallback (first portfolio entry) always runs, so a valid permutation
// is produced even with a zero budget.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/perm"
	"repro/internal/scratch"
	"repro/internal/solver"
)

// Canonical algorithm names accepted in Options.Portfolio.
const (
	AlgRCM           = "RCM"
	AlgCM            = "CM"
	AlgGPS           = "GPS"
	AlgGK            = "GK"
	AlgKing          = "KING"
	AlgSloan         = "SLOAN"
	AlgSpectral      = "SPECTRAL"
	AlgSpectralSloan = "SPECTRAL+SLOAN"

	// AlgTrivial marks components of ≤ 2 vertices, where every ordering is
	// optimal and the portfolio is not run.
	AlgTrivial = "TRIVIAL"
)

// DefaultPortfolio returns the default contender set: the paper's
// combinatorial baselines plus both spectral variants. The first entry is
// the budget fallback and should stay cheap.
func DefaultPortfolio() []string {
	return []string{AlgRCM, AlgGK, AlgGPS, AlgSloan, AlgSpectral, AlgSpectralSloan}
}

// Options configures Auto.
type Options struct {
	// Portfolio lists the algorithms raced on each component, by canonical
	// name (see the Alg* constants). Empty means DefaultPortfolio. The
	// first entry is the fallback that always runs even past the Budget.
	Portfolio []string
	// Parallelism bounds the worker pool; ≤ 0 means GOMAXPROCS.
	Parallelism int
	// Seed drives the spectral solvers; runs are reproducible per seed.
	Seed int64
	// Spectral carries eigensolver knobs for the spectral portfolio
	// entries. Its Seed defaults to Options.Seed when zero.
	Spectral core.Options
	// Budget, when positive, soft-limits the run: candidates (other than
	// each component's fallback) that have not started when the budget
	// expires are skipped and recorded in the report. Skipping depends on
	// timing, so budgeted runs trade determinism for latency.
	Budget time.Duration
	// Context, when non-nil, cancels the run: Auto returns ctx.Err() and a
	// nil permutation. Nil means context.Background().
	Context context.Context
}

// Candidate reports one algorithm's attempt on one component.
type Candidate struct {
	Algorithm string
	Esize     int64
	Bandwidth int
	Ework     int64
	Seconds   float64
	// Skipped is true when the budget expired before this candidate
	// started; Err is set when the algorithm failed (eigensolver
	// breakdown) or returned an invalid permutation.
	Skipped bool
	Err     string
	// Solve carries the eigensolver statistics behind a spectral candidate
	// (nil for the combinatorial algorithms). SPECTRAL and SPECTRAL+SLOAN
	// report the same solve: the component's artifact cache runs it once
	// and both candidates share the result.
	Solve *solver.Stats `json:",omitempty"`
}

// ComponentReport describes the portfolio outcome on one component.
type ComponentReport struct {
	// Index is the component's position in the stitched ordering (0 =
	// numbered first); components are ordered by decreasing size.
	Index int
	Size  int
	Edges int
	// Winner is the algorithm whose ordering was kept (AlgTrivial for
	// components of ≤ 2 vertices).
	Winner     string
	Stats      envelope.Stats
	Candidates []Candidate
}

// Report describes a whole Auto run.
type Report struct {
	Components []ComponentReport
	// Wins counts stitched winners per algorithm name.
	Wins map[string]int
	// Stats are the envelope parameters of the final global ordering.
	Stats       envelope.Stats
	Parallelism int
	Seconds     float64
	// Eigensolves counts the Fiedler eigensolves actually performed: with
	// both spectral candidates in the portfolio this is one per nontrivial
	// component, not two — the per-component artifact cache shares the
	// solve.
	Eigensolves int
	// Solve aggregates the eigensolver statistics across all components:
	// counters summed, estimates (λ2, residual, hierarchy shape) from the
	// largest component that ran a solve.
	Solve solver.Stats
}

// orderFunc orders a connected component (≥ 3 vertices). The workspace is
// the calling worker's scratch; implementations must not retain it or any
// buffer from it. art is the component's shared artifact cache; the
// optional stats report the eigensolve behind a spectral candidate.
type orderFunc func(ws *scratch.Workspace, g *graph.Graph, opt Options, art *Artifacts) (perm.Perm, *solver.Stats, error)

func spectralOpt(opt Options) core.Options {
	s := opt.Spectral
	if s.Seed == 0 {
		s.Seed = opt.Seed
	}
	return s
}

var registry = map[string]orderFunc{
	AlgRCM: func(ws *scratch.Workspace, g *graph.Graph, _ Options, art *Artifacts) (perm.Perm, *solver.Stats, error) {
		return order.RCMFromRootWS(ws, g, art.Root()), nil, nil
	},
	AlgCM: func(ws *scratch.Workspace, g *graph.Graph, _ Options, art *Artifacts) (perm.Perm, *solver.Stats, error) {
		return order.CuthillMcKeeFromRootWS(ws, g, art.Root()), nil, nil
	},
	AlgGPS: func(_ *scratch.Workspace, g *graph.Graph, _ Options, art *Artifacts) (perm.Perm, *solver.Stats, error) {
		u, v, lsU, lsV := art.Diameter()
		return order.GPSFromDiameter(g, u, v, lsU, lsV), nil, nil
	},
	AlgGK: func(_ *scratch.Workspace, g *graph.Graph, _ Options, art *Artifacts) (perm.Perm, *solver.Stats, error) {
		u, v, lsU, lsV := art.Diameter()
		return order.GKFromDiameter(g, u, v, lsU, lsV), nil, nil
	},
	AlgKing: func(_ *scratch.Workspace, g *graph.Graph, _ Options, art *Artifacts) (perm.Perm, *solver.Stats, error) {
		return order.KingFromRoot(g, art.Root()), nil, nil
	},
	AlgSloan: func(ws *scratch.Workspace, g *graph.Graph, _ Options, art *Artifacts) (perm.Perm, *solver.Stats, error) {
		u, _, _, lsV := art.Diameter()
		return order.SloanFromDiameterWS(ws, g, u, lsV.LevelOf), nil, nil
	},
	AlgSpectral: func(ws *scratch.Workspace, _ *graph.Graph, _ Options, art *Artifacts) (perm.Perm, *solver.Stats, error) {
		o, _, st, err := art.Spectral(ws)
		if err != nil {
			return nil, &st, err
		}
		return o, &st, nil
	},
	AlgSpectralSloan: func(ws *scratch.Workspace, g *graph.Graph, _ Options, art *Artifacts) (perm.Perm, *solver.Stats, error) {
		spectral, esize, st, err := art.Spectral(ws)
		if err != nil {
			return nil, &st, err
		}
		return core.RefineSpectralWS(ws, g, spectral, esize), &st, nil
	},
}

// Portfolio resolves opt.Portfolio (or the default) against the algorithm
// registry, returning the names in race order.
func Portfolio(opt Options) ([]string, error) {
	names := opt.Portfolio
	if len(names) == 0 {
		names = DefaultPortfolio()
	}
	for _, name := range names {
		if _, ok := registry[name]; !ok {
			return nil, fmt.Errorf("pipeline: unknown portfolio algorithm %q", name)
		}
	}
	return names, nil
}

// candidate is one (component, algorithm) slot filled by the worker pool.
type candidate struct {
	Candidate
	order perm.Perm
	stats envelope.Stats
}

// componentWork is the per-component state shared between stages.
type componentWork struct {
	verts []int
	sub   *graph.Graph
	old   []int
	art   *Artifacts
	cands []candidate
}

// Auto computes the portfolio ordering of g. See the package comment for
// the engine's contract; the returned Report names the winning algorithm
// and the losing candidates per component.
func Auto(g *graph.Graph, opt Options) (perm.Perm, Report, error) {
	start := time.Now()
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var deadline time.Time
	if opt.Budget > 0 {
		deadline = start.Add(opt.Budget)
	}
	names, err := Portfolio(opt)
	if err != nil {
		return nil, Report{}, err
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := Report{Wins: map[string]int{}, Parallelism: workers}

	n := g.N()
	if n == 0 {
		rep.Seconds = time.Since(start).Seconds()
		return perm.Perm{}, rep, nil
	}

	comps := graph.Components(g)
	work := make([]*componentWork, len(comps))
	for i, c := range comps {
		work[i] = &componentWork{verts: c}
	}

	// Stage 1: extract subgraphs (parallel over components). Trivial
	// components (≤ 2 vertices) take a fast path and skip the portfolio —
	// every ordering of them is optimal. The extracted CSR is retained
	// across stages, so each component gets its own Graph, but the
	// relabeling runs off the worker's stamp map — no per-component map.
	runPool(workers, len(work), func(ci int, ws *scratch.Workspace) {
		w := work[ci]
		if len(w.verts) <= 2 {
			return
		}
		w.sub = &graph.Graph{}
		g.SubgraphInto(ws, w.sub, w.verts)
		w.old = w.verts
		w.art = newArtifacts(w.sub, spectralOpt(opt))
	})

	// Stage 2: race the portfolio — one task per (component, algorithm)
	// pair, so a single huge component still exploits portfolio-width
	// parallelism. Each task writes only its own slot; no locks needed.
	type task struct{ ci, ai int }
	var tasks []task
	for ci, w := range work {
		if w.sub == nil {
			continue
		}
		w.cands = make([]candidate, len(names))
		for ai := range names {
			tasks = append(tasks, task{ci, ai})
		}
	}
	runPool(workers, len(tasks), func(ti int, ws *scratch.Workspace) {
		t := tasks[ti]
		w := work[t.ci]
		slot := &w.cands[t.ai]
		slot.Algorithm = names[t.ai]
		if ctx.Err() != nil {
			slot.Skipped = true
			return
		}
		// The budget skips everything but each component's fallback
		// (portfolio position 0), which guarantees a valid result.
		if t.ai > 0 && !deadline.IsZero() && time.Now().After(deadline) {
			slot.Skipped = true
			return
		}
		t0 := time.Now()
		o, solve, err := registry[names[t.ai]](ws, w.sub, opt, w.art)
		slot.Seconds = time.Since(t0).Seconds()
		slot.Solve = solve
		if err == nil {
			err = o.Check()
		}
		if err != nil {
			slot.Err = err.Error()
			return
		}
		s := envelope.ComputeInto(ws, w.sub, o)
		slot.order = o
		slot.stats = s
		slot.Esize = s.Esize
		slot.Bandwidth = s.Bandwidth
		slot.Ework = s.Ework
	})
	if err := ctx.Err(); err != nil {
		return nil, rep, err
	}

	// Stage 3: pick winners and stitch, in deterministic component order.
	// Eigensolver statistics aggregate largest-component-first: the first
	// component whose solve succeeded provides the estimates; every solve
	// that ran — errored ones included — contributes its counters, and any
	// failure or partial convergence clears the aggregate Converged.
	out := make(perm.Perm, 0, n)
	var counters solver.Stats
	allConverged := true
	haveEstimates := false
	for _, w := range work {
		a := w.art
		if a == nil || !a.fiedlerDone {
			continue
		}
		rep.Eigensolves++
		st := a.fiedlerStats
		counters.AddCounters(st)
		if a.fiedlerErr != nil || !st.Converged {
			allConverged = false
		}
		if !haveEstimates && a.fiedlerErr == nil {
			rep.Solve = st
			haveEstimates = true
		}
	}
	if rep.Eigensolves > 0 {
		// Replace the estimate-solve's own counters with the run totals.
		rep.Solve.MatVecs, rep.Solve.RQIIterations, rep.Solve.JacobiSweeps = 0, 0, 0
		rep.Solve.AddCounters(counters)
		rep.Solve.Converged = allConverged
	}
	for ci, w := range work {
		cr := ComponentReport{Index: ci, Size: len(w.verts)}
		var local perm.Perm
		if w.sub == nil {
			local = perm.Identity(len(w.verts))
			cr.Winner = AlgTrivial
			// Reuse the identity stitch below with old = verts.
			w.old = w.verts
			if len(w.verts) == 2 {
				// A 2-vertex component is a single edge; its envelope
				// parameters are all 1 under any ordering.
				cr.Edges = 1
				cr.Stats = envelope.Stats{Esize: 1, Ework: 1, Bandwidth: 1, OneSum: 1, TwoSum: 1, MaxFrontwidth: 1}
			}
		} else {
			cr.Edges = w.sub.M()
			cr.Candidates = make([]Candidate, len(w.cands))
			best := -1
			for ai := range w.cands {
				cr.Candidates[ai] = w.cands[ai].Candidate
				if w.cands[ai].order == nil {
					continue
				}
				if best < 0 || beats(&w.cands[ai], &w.cands[best]) {
					best = ai
				}
			}
			if best < 0 {
				return nil, rep, fmt.Errorf("pipeline: no portfolio algorithm produced an ordering for component %d (size %d)", ci, len(w.verts))
			}
			local = w.cands[best].order
			cr.Winner = names[best]
			cr.Stats = w.cands[best].stats
		}
		for _, v := range local {
			out = append(out, int32(w.old[v]))
		}
		rep.Wins[cr.Winner]++
		rep.Components = append(rep.Components, cr)
	}
	if err := out.Check(); err != nil {
		return nil, rep, fmt.Errorf("pipeline: stitched ordering invalid: %w", err)
	}
	rep.Stats = envelope.Compute(g, out)
	rep.Seconds = time.Since(start).Seconds()
	return out, rep, nil
}

// beats reports whether candidate a strictly beats b under the scoring
// order (envelope, bandwidth, work); ties keep the earlier portfolio entry.
func beats(a, b *candidate) bool {
	if a.Esize != b.Esize {
		return a.Esize < b.Esize
	}
	if a.Bandwidth != b.Bandwidth {
		return a.Bandwidth < b.Bandwidth
	}
	return a.Ework < b.Ework
}

// runPool executes f(0..count-1) on at most workers goroutines. It is the
// single concurrency primitive of the engine; each index is processed by
// exactly one goroutine. Every worker checks one Workspace out of the
// shared scratch pool for its whole lifetime, so steady-state scoring and
// extraction run without allocations and without cross-worker sharing.
func runPool(workers, count int, f func(int, *scratch.Workspace)) {
	if count == 0 {
		return
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		ws := scratch.Get()
		defer scratch.Put(ws)
		for i := 0; i < count; i++ {
			f(i, ws)
		}
		return
	}
	var next int
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= count {
			return -1
		}
		i := next
		next++
		return i
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws := scratch.Get()
			defer scratch.Put(ws)
			for {
				i := take()
				if i < 0 {
					return
				}
				f(i, ws)
			}
		}()
	}
	wg.Wait()
}
