// Package pipeline implements the context-first ordering service behind
// the public API: a registry of pluggable ordering algorithms (Orderer,
// Register, Lookup, Algorithms) into which every built-in self-registers,
// and the parallel portfolio engine (Auto) that races them. Auto
// decomposes a graph into connected components, orders every component
// concurrently on a bounded worker pool while racing a configurable
// portfolio of registered Orderers per component, scores the candidates by
// envelope size (ties broken by bandwidth, then envelope work, then
// portfolio position), and stitches the per-component winners into one
// global permutation.
//
// Candidates on the same component share a per-component artifact cache
// (see Artifacts): the Fiedler eigensolve, the pseudo-peripheral root and
// the pseudo-diameter pair are each computed once — by whichever racing
// candidate asks first — so SPECTRAL and SPECTRAL+SLOAN cost one
// eigensolve per component, and the BFS-rooted algorithms share their
// peripheral searches. User-registered Orderers reach the same cache
// through OrderRequest.Artifacts. Artifacts are pure functions of the
// component and the options, so sharing does not perturb determinism or
// results. Options.Cache additionally persists decomposition, subgraphs
// and artifacts across Auto calls on the same graph — the reuse a
// long-lived Session provides.
//
// The engine is deterministic: for a fixed graph, portfolio and seed the
// result is byte-identical regardless of Parallelism or goroutine
// scheduling, because every (component, algorithm) candidate is computed
// into its own slot and the winner selection is a pure function of the
// collected slots. The only exception is an expiring Budget, which cancels
// in-flight non-fallback candidates (their eigensolves observe the
// deadline context within one restart / V-cycle iteration) and skips
// unstarted ones, and therefore depends on timing; the fallback (first
// portfolio entry) always runs to completion, so a valid permutation is
// produced even with a zero budget.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/scratch"
	"repro/internal/solver"
)

// DefaultPortfolio returns the default Auto contender set: the paper's
// combinatorial baselines plus both spectral variants. The first entry is
// the budget fallback and should stay cheap.
func DefaultPortfolio() []string {
	return []string{AlgRCM, AlgGK, AlgGPS, AlgSloan, AlgSpectral, AlgSpectralSloan}
}

// Options configures Auto.
type Options struct {
	// Portfolio lists the algorithms raced on each component by registry
	// name (case-insensitive; see Register). Empty means DefaultPortfolio.
	// The first entry is the fallback that always runs even past the
	// Budget.
	Portfolio []string
	// Parallelism bounds the worker pool; ≤ 0 means GOMAXPROCS.
	Parallelism int
	// Seed drives the spectral solvers; runs are reproducible per seed.
	Seed int64
	// Spectral carries eigensolver knobs for the spectral portfolio
	// entries. Its Seed defaults to Options.Seed when zero.
	Spectral core.Options
	// Weight is an optional symmetric positive edge-weight function (by
	// g's labels), relabeled per component and passed to candidates via
	// OrderRequest.Weight — required by the WEIGHTED portfolio entry.
	Weight func(u, v int) float64
	// Budget, when positive, soft-limits the run: non-fallback candidates
	// that have not started when the budget expires are skipped, and ones
	// already running are cancelled via a deadline context (in-flight
	// eigensolves return within one restart / V-cycle iteration). Both
	// depend on timing, so budgeted runs trade determinism for latency.
	Budget time.Duration
	// Context, when non-nil, cancels the run: Auto returns ctx.Err() and a
	// nil permutation. Nil means context.Background().
	Context context.Context
	// Cache, when non-nil, memoizes the component decomposition, subgraph
	// extraction and per-component artifacts across Auto calls on the same
	// graph (see Cache). Sessions install theirs here.
	Cache *Cache
}

// Candidate reports one algorithm's attempt on one component.
type Candidate struct {
	Algorithm string
	Esize     int64
	Bandwidth int
	Ework     int64
	Seconds   float64
	// Skipped is true when the budget expired before this candidate
	// started; Err is set when the algorithm failed (eigensolver breakdown,
	// budget cancellation mid-solve) or returned an invalid permutation.
	Skipped bool
	Err     string
	// Solve carries the eigensolver statistics behind a spectral candidate
	// (nil for the combinatorial algorithms). SPECTRAL and SPECTRAL+SLOAN
	// report the same solve: the component's artifact cache runs it once
	// and both candidates share the result.
	Solve *solver.Stats `json:",omitempty"`
}

// ComponentReport describes the portfolio outcome on one component.
type ComponentReport struct {
	// Index is the component's position in the stitched ordering (0 =
	// numbered first); components are ordered by decreasing size.
	Index int
	Size  int
	Edges int
	// Winner is the algorithm whose ordering was kept (AlgTrivial for
	// components of ≤ 2 vertices).
	Winner     string
	Stats      envelope.Stats
	Candidates []Candidate
}

// Report describes a whole Auto run.
type Report struct {
	Components []ComponentReport
	// Wins counts stitched winners per algorithm name.
	Wins map[string]int
	// Stats are the envelope parameters of the final global ordering.
	Stats       envelope.Stats
	Parallelism int
	Seconds     float64
	// Eigensolves counts the Fiedler solves this run's candidates consumed:
	// with both spectral candidates in the portfolio this is one per
	// nontrivial component, not two — the per-component artifact cache
	// shares the solve. A solve served from a Session's cross-call cache
	// counts only when a candidate of this run read it; a spectral-free
	// portfolio reports zero even on a warm cache.
	Eigensolves int
	// Solve aggregates the eigensolver statistics across all components:
	// counters summed, estimates (λ2, residual, hierarchy shape) from the
	// largest component that ran a solve.
	Solve solver.Stats
}

func spectralOpt(opt Options) core.Options {
	s := opt.Spectral
	if s.Seed == 0 {
		s.Seed = opt.Seed
	}
	return s
}

// Portfolio resolves opt.Portfolio (or the default) against the algorithm
// registry, returning the canonical names in race order. Unknown names
// error with the list of registered algorithms.
func Portfolio(opt Options) ([]string, error) {
	names := opt.Portfolio
	if len(names) == 0 {
		names = DefaultPortfolio()
	}
	out := make([]string, len(names))
	for i, name := range names {
		key := Canonical(name)
		if _, ok := Lookup(key); !ok {
			return nil, fmt.Errorf("pipeline: unknown portfolio algorithm %q (registered: %s)",
				name, strings.Join(Algorithms(), ", "))
		}
		out[i] = key
	}
	return out, nil
}

// candidate is one (component, algorithm) slot filled by the worker pool.
type candidate struct {
	Candidate
	order perm.Perm
	stats envelope.Stats
}

// componentWork is the per-component state shared between stages.
type componentWork struct {
	verts  []int
	sub    *graph.Graph
	old    []int
	art    *Artifacts
	weight func(u, v int) float64
	cands  []candidate
}

// Auto computes the portfolio ordering of g. See the package comment for
// the engine's contract; the returned Report names the winning algorithm
// and the losing candidates per component.
func Auto(g *graph.Graph, opt Options) (perm.Perm, Report, error) {
	start := time.Now()
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	names, err := Portfolio(opt)
	if err != nil {
		return nil, Report{}, err
	}
	orderers := make([]Orderer, len(names))
	for i, name := range names {
		orderers[i], _ = Lookup(name)
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := Report{Wins: map[string]int{}, Parallelism: workers}

	n := g.N()
	if n == 0 {
		rep.Seconds = time.Since(start).Seconds()
		return perm.Perm{}, rep, nil
	}

	// The budget context lets an expiring Budget interrupt candidates that
	// are already running, not just skip unstarted ones: every non-fallback
	// candidate observes budgetCtx, whose deadline reaches the eigensolver
	// restart loops. The fallback (portfolio position 0) observes only the
	// caller's context, so it always completes and a valid permutation
	// exists past any budget.
	var deadline time.Time
	budgetCtx := ctx
	if opt.Budget > 0 {
		deadline = start.Add(opt.Budget)
		var cancel context.CancelFunc
		budgetCtx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	// Stage 1: decompose into components and extract subgraphs (parallel
	// over components, through the cross-call cache when one is
	// configured). Trivial components (≤ 2 vertices) skip the portfolio —
	// every ordering of them is optimal.
	sopt := spectralOpt(opt)
	// A caller-supplied operator is per-call identity that artKey
	// deliberately strips from the cache key, so such runs are served
	// uncached — otherwise a second run could be handed a solve driven by
	// the previous call's operator (mirrors Session.Do / Session.fiedler).
	cache := opt.Cache
	if sopt.Operator != nil || sopt.Multilevel.FinestOp != nil {
		cache = nil
	}
	res := resolve(g, workers, sopt, cache)
	work := make([]*componentWork, len(res.comps))
	for i := range res.comps {
		work[i] = &componentWork{verts: res.comps[i], old: res.comps[i]}
		if res.subs[i] != nil {
			work[i].sub = res.subs[i]
			work[i].art = res.arts[i]
			if opt.Weight != nil {
				old := res.comps[i]
				weight := opt.Weight
				work[i].weight = func(u, v int) float64 { return weight(old[u], old[v]) }
			}
		}
	}

	// Snapshot each artifact's consumption count: cached artifacts may
	// carry an eigensolve from an earlier run on the same graph, which this
	// run's report must claim only if one of its own candidates reads it.
	usesBefore := make([]int, len(work))
	for i, w := range work {
		if w.art != nil {
			usesBefore[i] = w.art.solveUses()
		}
	}

	// Stage 2: race the portfolio — one task per (component, algorithm)
	// pair, so a single huge component still exploits portfolio-width
	// parallelism. Each task writes only its own slot; no locks needed.
	type task struct{ ci, ai int }
	var tasks []task
	for ci, w := range work {
		if w.sub == nil {
			continue
		}
		w.cands = make([]candidate, len(names))
		for ai := range names {
			tasks = append(tasks, task{ci, ai})
		}
	}
	runPool(workers, len(tasks), func(ti int, ws *scratch.Workspace) {
		t := tasks[ti]
		w := work[t.ci]
		slot := &w.cands[t.ai]
		slot.Algorithm = names[t.ai]
		if ctx.Err() != nil {
			slot.Skipped = true
			return
		}
		// The budget skips everything but each component's fallback
		// (portfolio position 0), which guarantees a valid result; a
		// non-fallback candidate that does start runs under the deadline
		// context and is cancelled mid-flight when the budget expires.
		taskCtx := ctx
		if t.ai > 0 {
			if !deadline.IsZero() && time.Now().After(deadline) {
				slot.Skipped = true
				return
			}
			taskCtx = budgetCtx
		}
		req := OrderRequest{
			Algorithm: names[t.ai],
			Seed:      opt.Seed,
			Spectral:  sopt, // the one seed-defaulted options value the artifacts are keyed by
			Weight:    w.weight,
			Artifacts: w.art,
			Workspace: ws,
		}
		t0 := time.Now()
		// SafeOrder: a registered Orderer that panics surfaces as this
		// candidate's error, never as a dead pool worker.
		ores, err := SafeOrder(taskCtx, orderers[t.ai], names[t.ai], w.sub, &req)
		o := ores.Perm
		slot.Seconds = time.Since(t0).Seconds()
		slot.Solve = ores.Solve
		// Length is validated before Check (which only proves o permutes its
		// own indices): a registered Orderer returning a wrong-sized ordering
		// must surface as this candidate's error, not crash the scorer.
		if err == nil && len(o) != w.sub.N() {
			err = fmt.Errorf("pipeline: %s returned a %d-length ordering for a %d-vertex component",
				names[t.ai], len(o), w.sub.N())
		}
		if err == nil {
			err = o.Check()
		}
		if err != nil {
			slot.Err = err.Error()
			return
		}
		s := envelope.ComputeInto(ws, w.sub, o)
		slot.order = o
		slot.stats = s
		slot.Esize = s.Esize
		slot.Bandwidth = s.Bandwidth
		slot.Ework = s.Ework
	})
	if err := ctx.Err(); err != nil {
		return nil, rep, err
	}

	// Stage 3: pick winners and stitch, in deterministic component order.
	// Eigensolver statistics aggregate largest-component-first: the first
	// component whose solve succeeded provides the estimates; every solve
	// consumed by this run's candidates — errored ones included —
	// contributes its counters, and any failure or partial convergence
	// clears the aggregate Converged. A cached solve no candidate read
	// (e.g. a spectral-free portfolio on a warm Session cache) is not this
	// run's work and stays out of the report.
	out := make(perm.Perm, 0, n)
	var counters solver.Stats
	allConverged := true
	haveEstimates := false
	for i, w := range work {
		if w.art == nil || w.art.solveUses() == usesBefore[i] {
			continue
		}
		// The use-count delta alone can race a concurrent run sharing this
		// cached artifact, so additionally require that one of this run's
		// own candidates reported solver stats — the signature of having
		// read the solve. WEIGHTED is excluded from that signature: its
		// stats come from a private value-dependent solve that never moves
		// the use count, so under a concurrent-run race it must not vouch
		// for the pattern solve. (A user orderer that reads the artifacts
		// but reports no Solve makes this attribution best-effort, never
		// an over-claim by the built-ins.)
		consumed := false
		for ai := range w.cands {
			if w.cands[ai].Solve != nil && names[ai] != AlgWeighted {
				consumed = true
				break
			}
		}
		if !consumed {
			continue
		}
		done, st, ferr := w.art.fiedlerReport()
		if !done {
			continue
		}
		rep.Eigensolves++
		counters.AddCounters(st)
		if ferr != nil || !st.Converged {
			allConverged = false
		}
		if !haveEstimates && ferr == nil {
			rep.Solve = st
			haveEstimates = true
		}
	}
	if rep.Eigensolves > 0 {
		// Replace the estimate-solve's own counters with the run totals.
		rep.Solve.MatVecs, rep.Solve.RQIIterations, rep.Solve.JacobiSweeps = 0, 0, 0
		rep.Solve.AddCounters(counters)
		rep.Solve.Converged = allConverged
	}
	for ci, w := range work {
		cr := ComponentReport{Index: ci, Size: len(w.verts)}
		var local perm.Perm
		if w.sub == nil {
			local = perm.Identity(len(w.verts))
			cr.Winner = AlgTrivial
			if len(w.verts) == 2 {
				// A 2-vertex component is a single edge; its envelope
				// parameters are all 1 under any ordering.
				cr.Edges = 1
				cr.Stats = envelope.Stats{Esize: 1, Ework: 1, Bandwidth: 1, OneSum: 1, TwoSum: 1, MaxFrontwidth: 1}
			}
		} else {
			cr.Edges = w.sub.M()
			cr.Candidates = make([]Candidate, len(w.cands))
			best := -1
			for ai := range w.cands {
				cr.Candidates[ai] = w.cands[ai].Candidate
				if w.cands[ai].order == nil {
					continue
				}
				if best < 0 || beats(&w.cands[ai], &w.cands[best]) {
					best = ai
				}
			}
			if best < 0 {
				return nil, rep, fmt.Errorf("pipeline: no portfolio algorithm produced an ordering for component %d (size %d)", ci, len(w.verts))
			}
			local = w.cands[best].order
			cr.Winner = names[best]
			cr.Stats = w.cands[best].stats
		}
		for _, v := range local {
			out = append(out, int32(w.old[v]))
		}
		rep.Wins[cr.Winner]++
		rep.Components = append(rep.Components, cr)
	}
	if err := out.Check(); err != nil {
		return nil, rep, fmt.Errorf("pipeline: stitched ordering invalid: %w", err)
	}
	rep.Stats = envelope.Compute(g, out)
	rep.Seconds = time.Since(start).Seconds()
	return out, rep, nil
}

// beats reports whether candidate a strictly beats b under the scoring
// order (envelope, bandwidth, work); ties keep the earlier portfolio entry.
func beats(a, b *candidate) bool {
	if a.Esize != b.Esize {
		return a.Esize < b.Esize
	}
	if a.Bandwidth != b.Bandwidth {
		return a.Bandwidth < b.Bandwidth
	}
	return a.Ework < b.Ework
}

// runPool executes f(0..count-1) on at most workers goroutines. It is the
// single concurrency primitive of the engine; each index is processed by
// exactly one goroutine. Every worker checks one Workspace out of the
// shared scratch pool for its whole lifetime, so steady-state scoring and
// extraction run without allocations and without cross-worker sharing.
func runPool(workers, count int, f func(int, *scratch.Workspace)) {
	if count == 0 {
		return
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		ws := scratch.Get()
		defer scratch.Put(ws)
		for i := 0; i < count; i++ {
			f(i, ws)
		}
		return
	}
	var next int
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= count {
			return -1
		}
		i := next
		next++
		return i
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws := scratch.Get()
			defer scratch.Put(ws)
			for {
				i := take()
				if i < 0 {
					return
				}
				f(i, ws)
			}
		}()
	}
	wg.Wait()
}
