package pipeline

import (
	"context"
	"testing"
	"time"

	"repro/internal/envelope"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/perm"
)

func mustAuto(t *testing.T, g *graph.Graph, opt Options) (perm.Perm, Report) {
	t.Helper()
	p, rep, err := Auto(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatalf("invalid permutation: %v", err)
	}
	return p, rep
}

func TestAutoEmptyGraph(t *testing.T) {
	p, rep := mustAuto(t, graph.FromEdges(0, nil), Options{})
	if len(p) != 0 {
		t.Fatalf("got %d entries for empty graph", len(p))
	}
	if len(rep.Components) != 0 || rep.Stats.Esize != 0 {
		t.Fatalf("unexpected report %+v", rep)
	}
}

func TestAutoSingleVertex(t *testing.T) {
	p, rep := mustAuto(t, graph.FromEdges(1, nil), Options{})
	if len(p) != 1 || p[0] != 0 {
		t.Fatalf("got %v", p)
	}
	if len(rep.Components) != 1 || rep.Components[0].Winner != AlgTrivial {
		t.Fatalf("unexpected report %+v", rep)
	}
}

func TestAutoPathIsOptimal(t *testing.T) {
	// The optimal envelope of a path on n vertices is n-1 (each row after
	// the first has width exactly 1).
	const n = 64
	g := graph.Path(n)
	p, rep := mustAuto(t, g, Options{Seed: 1})
	if es := envelope.Esize(g, p); es != n-1 {
		t.Fatalf("path envelope %d, want %d", es, n-1)
	}
	if len(rep.Components) != 1 {
		t.Fatalf("path split into %d components", len(rep.Components))
	}
	if rep.Wins[rep.Components[0].Winner] != 1 {
		t.Fatalf("wins table inconsistent: %+v", rep.Wins)
	}
}

// disconnected builds a graph with many components of mixed type: grids,
// paths, cycles, an edge and isolated vertices.
func disconnected() *graph.Graph {
	parts := []*graph.Graph{
		graph.Grid(9, 7),
		graph.Path(40),
		graph.Cycle(25),
		graph.Grid(5, 5),
		graph.FromEdges(2, [][2]int{{0, 1}}),
		graph.FromEdges(3, nil), // three isolated vertices
	}
	total := 0
	for _, p := range parts {
		total += p.N()
	}
	b := graph.NewBuilder(total)
	off := 0
	for _, p := range parts {
		for _, e := range p.Edges() {
			b.AddEdge(off+e[0], off+e[1])
		}
		off += p.N()
	}
	return b.Build()
}

func TestAutoManyComponents(t *testing.T) {
	g := disconnected()
	p, rep := mustAuto(t, g, Options{Seed: 3, Parallelism: 4})
	if want := 8; len(rep.Components) != want {
		t.Fatalf("got %d components, want %d", len(rep.Components), want)
	}
	// Every component must occupy a contiguous block of positions, in
	// decreasing size order.
	inv := p.Inverse()
	comps := graph.Components(g)
	pos := 0
	for ci, comp := range comps {
		lo, hi := g.N(), -1
		for _, v := range comp {
			q := int(inv[v])
			if q < lo {
				lo = q
			}
			if q > hi {
				hi = q
			}
		}
		if lo != pos || hi != pos+len(comp)-1 {
			t.Fatalf("component %d not contiguous: positions [%d,%d], want [%d,%d]",
				ci, lo, hi, pos, pos+len(comp)-1)
		}
		pos += len(comp)
	}
	// The report's per-component stats must add up to the global envelope
	// (components don't interact when kept contiguous).
	var sum int64
	for _, cr := range rep.Components {
		sum += cr.Stats.Esize
	}
	if sum != rep.Stats.Esize {
		t.Fatalf("component envelopes sum to %d, global is %d", sum, rep.Stats.Esize)
	}
	if rep.Stats.Esize != envelope.Esize(g, p) {
		t.Fatalf("report stats %d != recomputed %d", rep.Stats.Esize, envelope.Esize(g, p))
	}
}

func TestAutoDeterministicAcrossParallelism(t *testing.T) {
	g := disconnected()
	for _, seed := range []int64{1, 7} {
		p1, _ := mustAuto(t, g, Options{Seed: seed, Parallelism: 1})
		p8, _ := mustAuto(t, g, Options{Seed: seed, Parallelism: 8})
		if !p1.Equal(p8) {
			t.Fatalf("seed %d: -parallel 1 and -parallel 8 orderings differ", seed)
		}
	}
}

func TestAutoNeverWorseThanSingleAlgorithms(t *testing.T) {
	g := disconnected()
	p, _ := mustAuto(t, g, Options{Seed: 5})
	auto := envelope.Esize(g, p)
	for name, f := range map[string]func(*graph.Graph) perm.Perm{
		"RCM":   order.RCM,
		"GK":    order.GK,
		"Sloan": order.Sloan,
	} {
		if single := envelope.Esize(g, f(g)); auto > single {
			t.Errorf("Auto envelope %d worse than %s %d", auto, name, single)
		}
	}
}

func TestAutoCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Auto(graph.Grid(30, 30), Options{Context: ctx})
	if err != context.Canceled {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
}

func TestAutoBudgetStillValid(t *testing.T) {
	// An already-expired budget must still produce a valid ordering via
	// the fallback (first portfolio entry).
	g := disconnected()
	p, rep, err := Auto(g, Options{Seed: 2, Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	for _, cr := range rep.Components {
		if cr.Winner == AlgTrivial {
			continue
		}
		if len(cr.Candidates) == 0 || cr.Candidates[0].Skipped {
			t.Fatalf("fallback was skipped on component %d: %+v", cr.Index, cr.Candidates)
		}
	}
}

func TestAutoUnknownAlgorithm(t *testing.T) {
	_, _, err := Auto(graph.Path(4), Options{Portfolio: []string{"NOPE"}})
	if err == nil {
		t.Fatal("expected error for unknown portfolio algorithm")
	}
}

func TestAutoCustomPortfolio(t *testing.T) {
	g := graph.Grid(10, 10)
	p, rep, err := Auto(g, Options{Portfolio: []string{AlgKing, AlgGPS}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	w := rep.Components[0].Winner
	if w != AlgKing && w != AlgGPS {
		t.Fatalf("winner %q not in custom portfolio", w)
	}
}

// TestAutoSuiteAcceptance is the PR's acceptance gate: on every generated
// suite problem, Auto's envelope is no worse than the best of RCM, GK,
// Sloan and Spectral run individually, and the result is identical across
// worker counts.
func TestAutoSuiteAcceptance(t *testing.T) {
	const scale, seed = 0.05, 11
	for _, spec := range gen.Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			g := spec.Generate(scale, seed).G
			p1, _ := mustAuto(t, g, Options{Seed: seed, Parallelism: 1})
			p8, _ := mustAuto(t, g, Options{Seed: seed, Parallelism: 8})
			if !p1.Equal(p8) {
				t.Fatal("ordering differs between -parallel 1 and -parallel 8")
			}
			auto := envelope.Esize(g, p1)
			singles := map[string]int64{
				"RCM":   envelope.Esize(g, order.RCM(g)),
				"GK":    envelope.Esize(g, order.GK(g)),
				"Sloan": envelope.Esize(g, order.Sloan(g)),
			}
			if sp, _, err := Auto(g, Options{Seed: seed, Portfolio: []string{AlgSpectral}}); err == nil {
				singles["Spectral"] = envelope.Esize(g, sp)
			}
			for name, es := range singles {
				if auto > es {
					t.Errorf("Auto envelope %d worse than %s %d", auto, name, es)
				}
			}
		})
	}
}
