package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/scratch"
)

// This file is the engine room of Session.OrderBatch: a package-level pool
// of persistent batch workers, each parked on a task channel with its own
// warm scratch workspace, plus the allocation-free run descriptor that
// fans a batch of independent items across them. Unlike runPool (the
// portfolio engine's per-call goroutine fan-out), nothing here is spawned
// per call: the goroutines persist, the workspaces stay checked out, and
// the descriptors recycle through a sync.Pool — so the steady-state batch
// loop allocates nothing, which the BenchmarkOrderBatch alloc gate pins.

// BatchRunner is the per-item callback RunBatch drives: RunItem is invoked
// exactly once for each index in [0, count), possibly concurrently from
// multiple workers, with a workspace private to the calling worker for the
// duration of the item. Implementations must treat distinct items as
// independent (no cross-item ordering is guaranteed).
type BatchRunner interface {
	RunItem(i int, ws *scratch.Workspace)
}

// BatchPanicHandler is optionally implemented by a BatchRunner that wants
// a panicking item delivered as that item's error: ItemPanicked(i, err)
// receives the recovered *PanicError, possibly concurrently from several
// workers. Runners that do not implement it keep panic semantics — the
// first item panic is re-raised from RunBatch on the caller's goroutine —
// but either way the persistent pool workers and the completion barrier
// survive: a panic can fail an item or the call, never strand the pool.
type BatchPanicHandler interface {
	ItemPanicked(i int, err error)
}

// batchRun is the pooled descriptor of one RunBatch call: the runner, an
// atomic next-item cursor every participating worker draws from (work
// stealing without per-item channel traffic), and the completion barrier.
type batchRun struct {
	r     BatchRunner
	next  atomic.Int32
	count int32
	wg    sync.WaitGroup
	// pan holds the first recovered item panic when the runner is not a
	// BatchPanicHandler, re-raised on the RunBatch caller after the barrier.
	pan atomic.Pointer[PanicError]
}

var batchRunPool = sync.Pool{New: func() any { return new(batchRun) }}

// batchPool is the persistent worker pool shared by every RunBatch call in
// the process: GOMAXPROCS goroutines started on first use, each parked on
// the task channel holding a permanently checked-out scratch workspace —
// the warm-up the batch path amortizes across requests.
var batchPool struct {
	once  sync.Once
	tasks chan *batchRun
}

func batchPoolStart() {
	n := runtime.GOMAXPROCS(0)
	batchPool.tasks = make(chan *batchRun, 8*n)
	for i := 0; i < n; i++ {
		go func() {
			ws := scratch.Get() // held for the goroutine's lifetime
			for run := range batchPool.tasks {
				run.drain(ws)
				run.wg.Done()
			}
		}()
	}
}

// drain draws items off the run's cursor until none remain.
func (run *batchRun) drain(ws *scratch.Workspace) {
	for {
		i := run.next.Add(1) - 1
		if i >= run.count {
			return
		}
		run.runItem(int(i), ws)
	}
}

// runItem guards one item with panic isolation: a panicking RunItem must
// not kill a persistent pool worker or skip the wg.Done that the batch's
// completion barrier is counting on.
func (run *batchRun) runItem(i int, ws *scratch.Workspace) {
	defer func() {
		if p := recover(); p != nil {
			perr := Recovered(fmt.Sprintf("batch item %d", i), p)
			if h, ok := run.r.(BatchPanicHandler); ok {
				h.ItemPanicked(i, perr)
				return
			}
			run.pan.CompareAndSwap(nil, perr)
		}
	}()
	run.r.RunItem(i, ws)
}

// RunBatch drives r.RunItem over every index in [0, count) using up to
// `workers` concurrent executors: the calling goroutine plus parked pool
// workers (workers ≤ 0 means GOMAXPROCS). Helper recruitment is
// non-blocking — if the pool's queue is saturated by other batches the
// call simply proceeds with fewer helpers, the caller itself guaranteeing
// progress. Returns when every item has run. Steady state allocates
// nothing.
func RunBatch(workers, count int, r BatchRunner) {
	if count <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}
	run := batchRunPool.Get().(*batchRun)
	run.r = r
	run.count = int32(count)
	run.next.Store(0)
	run.pan.Store(nil)
	if workers > 1 {
		batchPool.once.Do(batchPoolStart)
		run.wg.Add(workers - 1)
		for h := 1; h < workers; h++ {
			select {
			case batchPool.tasks <- run:
			default:
				run.wg.Done() // pool saturated: run with fewer helpers
			}
		}
	}
	ws := scratch.Get()
	run.drain(ws)
	scratch.Put(ws)
	run.wg.Wait()
	pan := run.pan.Load()
	run.r = nil
	batchRunPool.Put(run)
	if pan != nil {
		// The runner declined per-item delivery: re-raise the first item
		// panic here, on the caller's goroutine, after the barrier — the
		// pool workers and the other items are already safe.
		panic(pan)
	}
}
