package graph

// LevelStructure is a rooted level structure: the partition of a connected
// vertex set into BFS levels from a root. It is the central data structure
// of the Cuthill–McKee family of ordering algorithms.
type LevelStructure struct {
	Root int
	// LevelOf[v] = BFS distance of v from Root, or -1 if v was not reached.
	LevelOf []int32
	// Verts lists the reached vertices in BFS order (level by level).
	Verts []int32
	// Offsets has length Depth()+1; level l is Verts[Offsets[l]:Offsets[l+1]].
	Offsets []int32
}

// Depth returns the number of levels (eccentricity of the root + 1).
func (ls *LevelStructure) Depth() int { return len(ls.Offsets) - 1 }

// Level returns the vertices at level l as a shared sub-slice.
func (ls *LevelStructure) Level(l int) []int32 {
	return ls.Verts[ls.Offsets[l]:ls.Offsets[l+1]]
}

// Width returns the maximum level size.
func (ls *LevelStructure) Width() int {
	w := 0
	for l := 0; l < ls.Depth(); l++ {
		if s := len(ls.Level(l)); s > w {
			w = s
		}
	}
	return w
}

// Size returns the number of reached vertices.
func (ls *LevelStructure) Size() int { return len(ls.Verts) }

// NewLevelStructure runs a breadth-first search from root and returns the
// rooted level structure of root's connected component.
func NewLevelStructure(g *Graph, root int) *LevelStructure {
	ls := &LevelStructure{}
	LevelStructureInto(g, root, ls)
	return ls
}

// LevelStructureInto runs a breadth-first search from root into ls, reusing
// ls's slices when their capacity allows. The pseudo-peripheral searches
// and the ordering algorithms ping-pong a pair of structures through this
// to keep their repeated BFS sweeps off the allocator.
func LevelStructureInto(g *Graph, root int, ls *LevelStructure) {
	n := g.N()
	if cap(ls.LevelOf) >= n {
		ls.LevelOf = ls.LevelOf[:n]
	} else {
		ls.LevelOf = make([]int32, n)
	}
	levelOf := ls.LevelOf
	for i := range levelOf {
		levelOf[i] = -1
	}
	verts := ls.Verts[:0]
	offsets := append(ls.Offsets[:0], 0)

	levelOf[root] = 0
	verts = append(verts, int32(root))
	head := 0
	curLevel := int32(0)
	for head < len(verts) {
		v := verts[head]
		if levelOf[v] > curLevel {
			offsets = append(offsets, int32(head))
			curLevel = levelOf[v]
		}
		head++
		for _, w := range g.Neighbors(int(v)) {
			if levelOf[w] < 0 {
				levelOf[w] = levelOf[v] + 1
				verts = append(verts, w)
			}
		}
	}
	offsets = append(offsets, int32(len(verts)))
	ls.Root = root
	ls.Verts = verts
	ls.Offsets = offsets
}

// Eccentricity returns the BFS eccentricity of v within its component.
func Eccentricity(g *Graph, v int) int {
	return NewLevelStructure(g, v).Depth() - 1
}

// BFSOrder returns the vertices of root's component in plain BFS order with
// neighbors visited in adjacency-list order.
func BFSOrder(g *Graph, root int) []int {
	ls := NewLevelStructure(g, root)
	out := make([]int, len(ls.Verts))
	for i, v := range ls.Verts {
		out[i] = int(v)
	}
	return out
}

// Distances returns the BFS distance from root to every vertex (-1 for
// unreachable vertices).
func Distances(g *Graph, root int) []int32 {
	return NewLevelStructure(g, root).LevelOf
}
