package graph

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/scratch"
)

func TestSubgraphIntoMatchesSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := scratch.New()
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(40) + 5
		g := Random(n, rng.Intn(3*n), rng.Int63())
		// Pick a random subset, sometimes shuffled to hit the unsorted path.
		var verts []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				verts = append(verts, v)
			}
		}
		if len(verts) == 0 {
			verts = []int{0}
		}
		if trial%2 == 1 {
			rng.Shuffle(len(verts), func(i, j int) { verts[i], verts[j] = verts[j], verts[i] })
		}
		want, _ := g.Subgraph(verts)
		var dst Graph
		g.SubgraphInto(ws, &dst, verts)
		if err := dst.Validate(); err != nil {
			t.Fatalf("trial %d: invalid subgraph: %v", trial, err)
		}
		if !slices.Equal(dst.Xadj, want.Xadj) || !slices.Equal(dst.Adj, want.Adj) {
			t.Fatalf("trial %d: SubgraphInto differs from Subgraph\n got xadj %v adj %v\nwant xadj %v adj %v",
				trial, dst.Xadj, dst.Adj, want.Xadj, want.Adj)
		}
	}
}

func TestSubgraphIntoReusesDst(t *testing.T) {
	g := Grid(10, 10)
	comps := [][]int{}
	for start := 0; start < 100; start += 25 {
		var c []int
		for v := start; v < start+25; v++ {
			c = append(c, v)
		}
		comps = append(comps, c)
	}
	ws := scratch.New()
	var dst Graph
	g.SubgraphInto(ws, &dst, comps[0])
	adj0 := &dst.Adj[0]
	g.SubgraphInto(ws, &dst, comps[1])
	if &dst.Adj[0] != adj0 {
		t.Fatal("SubgraphInto did not reuse dst's Adj storage")
	}
}

// The tentpole's second allocation guard: steady-state subgraph extraction
// must not allocate.
func TestSubgraphIntoIsAllocationFree(t *testing.T) {
	g := Grid(30, 30)
	verts := make([]int, 0, 450)
	for v := 0; v < 900; v += 2 {
		verts = append(verts, v)
	}
	ws := scratch.New()
	var dst Graph
	g.SubgraphInto(ws, &dst, verts) // warm dst and the stamp map
	allocs := testing.AllocsPerRun(50, func() {
		g.SubgraphInto(ws, &dst, verts)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SubgraphInto allocates: %v allocs/op", allocs)
	}
}

func TestSubgraphIntoEmptyVerts(t *testing.T) {
	g := Grid(3, 3)
	ws := scratch.New()
	var dst Graph
	g.SubgraphInto(ws, &dst, nil)
	if dst.N() != 0 || len(dst.Adj) != 0 {
		t.Fatalf("empty extraction: n=%d adj=%v", dst.N(), dst.Adj)
	}
}

func BenchmarkSubgraphInto(b *testing.B) {
	g := Grid(40, 40)
	verts := make([]int, 0, 800)
	for v := 0; v < 1600; v += 2 {
		verts = append(verts, v)
	}
	ws := scratch.New()
	var dst Graph
	g.SubgraphInto(ws, &dst, verts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SubgraphInto(ws, &dst, verts)
	}
}
