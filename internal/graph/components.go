package graph

import "sort"

// Components returns the connected components of g, each as a sorted slice
// of vertex labels. Components are ordered by decreasing size, ties broken
// by smallest contained label, so the ordering is deterministic.
func Components(g *Graph) [][]int {
	n := g.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(len(comps))
		comp[s] = id
		queue = append(queue[:0], int32(s))
		members := []int{s}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(int(v)) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
					members = append(members, int(w))
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	sort.SliceStable(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// IsConnected reports whether g is connected (the empty graph and singleton
// graphs count as connected).
func IsConnected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	return NewLevelStructure(g, 0).Size() == g.N()
}
