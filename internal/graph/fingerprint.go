package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint is the canonical content identity of a Graph: the SHA-256
// digest of its CSR arrays. Two graphs have equal fingerprints exactly when
// they are structurally identical (same vertex count, same canonical
// adjacency), regardless of how or where they were built — the identity the
// service's graph interner, the Session artifact cache and the persistent
// artifact store all key by, so an eigensolve computed for a matrix in one
// process is addressable from any other.
type Fingerprint [sha256.Size]byte

// String returns the lowercase hex form — stable, filesystem- and
// URL-safe, suitable for store entry names and log lines.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// FingerprintOf computes g's content fingerprint, hashing the CSR arrays
// chunk-wise through a fixed buffer (no allocation proportional to the
// graph). Graphs are immutable after construction, so the fingerprint can
// be computed once and reused for the graph's lifetime.
func FingerprintOf(g *Graph) Fingerprint {
	h := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(g.N()))
	h.Write(hdr[:])
	var buf [4 * 4096]byte
	hashInt32s(h, buf[:], g.Xadj)
	hashInt32s(h, buf[:], g.Adj)
	return Fingerprint(h.Sum(nil))
}

func hashInt32s(h interface{ Write([]byte) (int, error) }, buf []byte, vals []int32) {
	for len(vals) > 0 {
		n := len(buf) / 4
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(vals[i]))
		}
		h.Write(buf[:4*n])
		vals = vals[n:]
	}
}
