package graph

import (
	"testing"
)

// FuzzBuildRoundTrip feeds arbitrary edge lists — duplicates, reversed
// directions and self-loops included — through Builder.Build and checks the
// canonical-CSR invariants plus a FromCSR round trip. This guards the
// counting-sort construction: every list sorted and duplicate-free, no
// self-loops, symmetric adjacency, and re-ingesting the built CSR yields an
// identical graph.
func FuzzBuildRoundTrip(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 1, 0, 2, 2, 1, 3})
	f.Add(uint8(1), []byte{0, 0})
	f.Add(uint8(6), []byte{5, 0, 0, 5, 5, 0, 3, 3, 2, 4})
	f.Add(uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, nRaw uint8, raw []byte) {
		n := int(nRaw%32) + 1
		b := NewBuilder(n)
		type edge struct{ u, v int }
		seen := map[edge]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			b.AddEdge(u, v)
			if u != v {
				if u > v {
					u, v = v, u
				}
				seen[edge{u, v}] = true
			}
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Fatalf("Build violated CSR invariants: %v", err)
		}
		if g.N() != n {
			t.Fatalf("N = %d, want %d", g.N(), n)
		}
		if g.M() != len(seen) {
			t.Fatalf("M = %d, want %d distinct edges", g.M(), len(seen))
		}
		for e := range seen {
			if !g.HasEdge(e.u, e.v) || !g.HasEdge(e.v, e.u) {
				t.Fatalf("edge {%d,%d} lost", e.u, e.v)
			}
		}
		// Round trip: the built CSR must re-ingest unchanged.
		g2, err := FromCSR(g.Xadj, g.Adj)
		if err != nil {
			t.Fatalf("FromCSR rejected Build output: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
		}
		// And rebuilding from the extracted edges must reproduce the CSR.
		g3 := FromEdges(n, g.Edges())
		for v := 0; v < n; v++ {
			a, c := g.Neighbors(v), g3.Neighbors(v)
			if len(a) != len(c) {
				t.Fatalf("rebuild changed degree of %d", v)
			}
			for i := range a {
				if a[i] != c[i] {
					t.Fatalf("rebuild changed adjacency of %d", v)
				}
			}
		}
	})
}
