package graph

import "sort"

// PseudoPeripheral finds a pseudo-peripheral vertex of start's connected
// component using the George–Liu algorithm (the SPARSPAK variant of the
// procedure in Gibbs–Poole–Stockmeyer): repeatedly root a level structure at
// a minimum-degree vertex of the deepest level until the eccentricity stops
// growing. It returns the vertex and its rooted level structure.
//
// All of RCM, GPS and GK begin from (an endpoint of) a pseudo-diameter; this
// is the shared substrate.
func PseudoPeripheral(g *Graph, start int) (int, *LevelStructure) {
	r := start
	ls := NewLevelStructure(g, r)
	spare := &LevelStructure{}
	for {
		last := ls.Level(ls.Depth() - 1)
		// Minimum-degree vertex of the last level.
		best := last[0]
		for _, v := range last[1:] {
			if g.Degree(int(v)) < g.Degree(int(best)) {
				best = v
			}
		}
		// Ping-pong the two structures so the search allocates a bounded
		// two BFS buffers no matter how many sweeps it takes.
		LevelStructureInto(g, int(best), spare)
		if spare.Depth() > ls.Depth() {
			r = int(best)
			ls, spare = spare, ls
			continue
		}
		return r, ls
	}
}

// PseudoDiameter locates the two endpoints of a pseudo-diameter of start's
// component following Gibbs–Poole–Stockmeyer: from a pseudo-peripheral
// vertex u, examine one minimum-degree representative of each degree value
// in the deepest level ("shrinking" the candidate set as GPS prescribes),
// rooting a level structure at each; if any is deeper, restart from it;
// otherwise pick the candidate of minimum width as the far endpoint v.
//
// It returns u, v and their rooted level structures.
func PseudoDiameter(g *Graph, start int) (u, v int, lsU, lsV *LevelStructure) {
	u, lsU = PseudoPeripheral(g, start)
	return PseudoDiameterFrom(g, u, lsU)
}

// PseudoDiameterFrom is the second half of PseudoDiameter: it runs the GPS
// shrinking search from an already-located pseudo-peripheral vertex u with
// its rooted level structure lsU (as returned by PseudoPeripheral). lsU is
// consumed — the returned structures may recycle its storage. The pipeline's
// per-component artifact cache uses the split so the George–Liu root (RCM's
// start) and the GPS endpoint pair share one peripheral search.
func PseudoDiameterFrom(g *Graph, start int, lsStart *LevelStructure) (u, v int, lsU, lsV *LevelStructure) {
	u, lsU = start, lsStart
	cand := &LevelStructure{}
	var lastBuf []int32
	for {
		last := append(lastBuf[:0], lsU.Level(lsU.Depth()-1)...)
		lastBuf = last
		sort.Slice(last, func(i, j int) bool {
			di, dj := g.Degree(int(last[i])), g.Degree(int(last[j]))
			if di != dj {
				return di < dj
			}
			return last[i] < last[j]
		})
		// Shrink: keep one vertex of each distinct degree.
		cands := last[:0]
		prevDeg := -1
		for _, w := range last {
			if d := g.Degree(int(w)); d != prevDeg {
				cands = append(cands, w)
				prevDeg = d
			}
		}
		bestWidth := int(^uint(0) >> 1)
		var deeper bool
		for _, c := range cands {
			// cand, lsU and lsV are three distinct structures rotated by
			// swap, so each candidate BFS reuses retired storage.
			LevelStructureInto(g, int(c), cand)
			if cand.Depth() > lsU.Depth() {
				u = int(c)
				lsU, cand = cand, lsU
				deeper = true
				break
			}
			if w := cand.Width(); w < bestWidth {
				bestWidth = w
				v = int(c)
				if lsV == nil {
					lsV = &LevelStructure{}
				}
				lsV, cand = cand, lsV
			}
		}
		if !deeper {
			return u, v, lsU, lsV
		}
	}
}
