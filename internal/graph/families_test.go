package graph

import "testing"

func TestPathFamily(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("P5: N=%d M=%d", g.N(), g.M())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 || g.Degree(4) != 1 {
		t.Fatal("P5 degrees wrong")
	}
	if Path(1).M() != 0 || Path(0).N() != 0 {
		t.Fatal("degenerate paths wrong")
	}
}

func TestCycleFamily(t *testing.T) {
	g := Cycle(6)
	if g.M() != 6 {
		t.Fatalf("C6: M=%d", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("C6 degree(%d)=%d", v, g.Degree(v))
		}
	}
	// C2 degenerates to a single edge, not a double edge.
	if Cycle(2).M() != 1 {
		t.Fatalf("C2: M=%d, want 1", Cycle(2).M())
	}
	if Cycle(3).M() != 3 {
		t.Fatal("C3 wrong")
	}
}

func TestCompleteAndStarFamilies(t *testing.T) {
	if Complete(6).M() != 15 {
		t.Fatal("K6 edge count")
	}
	s := Star(7)
	if s.M() != 6 || s.Degree(0) != 6 || s.Degree(3) != 1 {
		t.Fatal("Star7 wrong")
	}
}

func TestGrid9Family(t *testing.T) {
	g := Grid9(3, 3)
	// 5-point edges: 12; diagonals: 2 per cell × 4 cells = 8 → 20 total.
	if g.M() != 20 {
		t.Fatalf("Grid9(3,3): M=%d, want 20", g.M())
	}
	// Center vertex adjacent to all others.
	if g.Degree(4) != 8 {
		t.Fatalf("center degree %d", g.Degree(4))
	}
	if !IsConnected(g) {
		t.Fatal("disconnected")
	}
}

func TestGrid3DFamily(t *testing.T) {
	g := Grid3D(3, 4, 5)
	if g.N() != 60 {
		t.Fatalf("N=%d", g.N())
	}
	// m = (nx-1)·ny·nz + nx·(ny-1)·nz + nx·ny·(nz-1) = 40+45+48 = 133.
	if g.M() != 133 {
		t.Fatalf("M=%d, want 133", g.M())
	}
	if !IsConnected(g) {
		t.Fatal("disconnected")
	}
	// Interior vertex degree 6.
	if g.Degree((2*4+1)*3+1) != 6 {
		t.Fatalf("interior degree %d", g.Degree((2*4+1)*3+1))
	}
}

func TestRandomFamilyConnectivity(t *testing.T) {
	for _, n := range []int{1, 2, 10, 500} {
		g := Random(n, n/2, 7)
		if g.N() != n {
			t.Fatalf("n=%d: N=%d", n, g.N())
		}
		if !IsConnected(g) {
			t.Fatalf("n=%d: Random graph disconnected", n)
		}
	}
}
