// Package graph provides a compressed sparse row (CSR) representation of
// undirected graphs — the adjacency structure of sparse symmetric matrices —
// together with the traversal primitives the ordering algorithms need:
// breadth-first search, rooted level structures, connected components and
// pseudo-peripheral vertex location.
//
// A Graph is immutable after construction. Vertices are labeled 0..N-1.
// Self-loops are never stored (the matrix diagonal is implicit), and each
// undirected edge {u,v} appears in both adjacency lists.
package graph

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/scratch"
)

// Graph is an undirected graph in CSR form. The neighbors of vertex v are
// Adj[Xadj[v]:Xadj[v+1]], sorted in increasing order. Graphs are built with
// NewBuilder or one of the constructors and must not be mutated afterwards.
type Graph struct {
	// Xadj has length N+1; Xadj[v] is the offset of v's adjacency list.
	Xadj []int32
	// Adj holds the concatenated, sorted adjacency lists (length 2·edges).
	Adj []int32
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Xadj) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.Adj) / 2 }

// Degree returns the number of neighbors of v (excluding any self-loop,
// which is never stored).
func (g *Graph) Degree(v int) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// Neighbors returns the adjacency list of v as a shared sub-slice.
// Callers must not modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.Adj[g.Xadj[v]:g.Xadj[v+1]] }

// MaxDegree returns the maximum vertex degree (Δ in the paper), or 0 for an
// empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether the edge {u,v} is present. It binary-searches the
// shorter adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= int32(v) })
	return i < len(adj) && adj[i] == int32(v)
}

// Validate checks the structural invariants of the CSR form: monotone Xadj,
// in-range sorted duplicate-free neighbor lists, no self-loops and symmetric
// adjacency. It is used by tests and by constructors that ingest external
// data.
func (g *Graph) Validate() error {
	n := g.N()
	if n < 0 {
		return fmt.Errorf("graph: negative vertex count")
	}
	if g.Xadj[0] != 0 {
		return fmt.Errorf("graph: Xadj[0] = %d, want 0", g.Xadj[0])
	}
	if int(g.Xadj[n]) != len(g.Adj) {
		return fmt.Errorf("graph: Xadj[n] = %d, want len(Adj) = %d", g.Xadj[n], len(g.Adj))
	}
	for v := 0; v < n; v++ {
		if g.Xadj[v+1] < g.Xadj[v] {
			return fmt.Errorf("graph: Xadj not monotone at %d", v)
		}
		adj := g.Neighbors(v)
		for i, w := range adj {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: neighbor %d of %d out of range", w, v)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && adj[i-1] >= w {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if !g.HasEdge(int(w), v) {
				return fmt.Errorf("graph: edge %d-%d not symmetric", v, w)
			}
		}
	}
	return nil
}

// Edges returns all undirected edges {u,v} with u < v, in lexicographic
// order. It allocates a fresh slice.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.M())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				edges = append(edges, [2]int{v, int(w)})
			}
		}
	}
	return edges
}

// Nonzeros returns the number of stored entries of the corresponding
// symmetric matrix pattern counting the diagonal and one triangle:
// N + M. This matches the "nonzeros" convention of the paper's tables for
// lower-triangular storage.
func (g *Graph) Nonzeros() int { return g.N() + g.M() }

// Builder accumulates undirected edges and produces a canonical Graph.
// Duplicate edges and self-loops are discarded; edges may be added in any
// order and direction.
type Builder struct {
	n     int
	us    []int32
	vs    []int32
	valid bool
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, valid: true}
}

// AddEdge records the undirected edge {u,v}. Self-loops are ignored.
// AddEdge panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// Build produces the canonical CSR graph via a two-pass counting sort over
// the directed arcs — O(n + m), deterministic, no comparison sort. The
// Builder may be reused after Build; already-added edges are retained.
func (b *Builder) Build() *Graph {
	n := b.n
	// Each undirected edge {u,v} contributes the arcs u→v and v→u, so the
	// multisets of arc sources and arc targets coincide and one prefix-sum
	// table serves both counting passes.
	deg := make([]int32, n+1)
	for i := range b.us {
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	nArcs := deg[n]
	// Pass 1: bucket arcs by target, recording each arc's source.
	off := make([]int32, n)
	copy(off, deg[:n])
	srcByTarget := make([]int32, nArcs)
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		srcByTarget[off[v]] = u
		off[v]++
		srcByTarget[off[u]] = v
		off[u]++
	}
	// Pass 2: scan targets in increasing order and append each to its
	// source's list. The stable placement leaves every adjacency list
	// sorted with duplicates adjacent.
	copy(off, deg[:n])
	adj := make([]int32, nArcs)
	for t := 0; t < n; t++ {
		for k := deg[t]; k < deg[t+1]; k++ {
			s := srcByTarget[k]
			adj[off[s]] = int32(t)
			off[s]++
		}
	}
	// Dedupe each (sorted) list, compacting in place.
	xadj := make([]int32, n+1)
	out := int32(0)
	for v := 0; v < n; v++ {
		start := out
		prev := int32(-1)
		for k := deg[v]; k < deg[v+1]; k++ {
			if w := adj[k]; w != prev {
				adj[out] = w
				prev = w
				out++
			}
		}
		xadj[v] = start
	}
	xadj[n] = out
	return &Graph{Xadj: xadj, Adj: append([]int32(nil), adj[:out]...)}
}

// FromEdges builds a graph on n vertices from an edge list. It is a
// convenience wrapper around Builder.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// FromCSR constructs a Graph from raw CSR arrays, validating the invariants.
// The slices are retained; callers must not modify them afterwards.
func FromCSR(xadj, adj []int32) (*Graph, error) {
	if len(xadj) == 0 {
		return nil, fmt.Errorf("graph: empty Xadj")
	}
	g := &Graph{Xadj: xadj, Adj: adj}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Subgraph extracts the induced subgraph on the given vertices. It returns
// the subgraph and the mapping from new labels (positions in verts) back to
// old labels. Vertices must be distinct and in range.
func (g *Graph) Subgraph(verts []int) (*Graph, []int) {
	ws := scratch.Get()
	defer scratch.Put(ws)
	dst := &Graph{}
	g.SubgraphInto(ws, dst, verts)
	old := append([]int(nil), verts...)
	return dst, old
}

// SubgraphInto extracts the induced subgraph on verts into dst, reusing
// dst's CSR slices when their capacity allows; with a warm dst and ws the
// extraction is allocation-free. The old labels of the result are the
// entries of verts (new label i ↔ verts[i]); unlike Subgraph no copy of
// verts is made. Vertices must be distinct and in range; dst must not
// alias g.
//
// Relabeling uses the workspace's stamp map instead of a heap-allocated
// map, and when verts is sorted ascending (as graph.Components guarantees)
// the neighbor lists are emitted directly in sorted order with no per-list
// sort at all.
//
// Contract: on return ws's stamp map holds the old→new binding
// (MapGet(verts[i]) = i, misses elsewhere) until the next MapReset; callers
// relabeling further data against the same vertex set may rely on it.
func (g *Graph) SubgraphInto(ws *scratch.Workspace, dst *Graph, verts []int) {
	nv := len(verts)
	ws.MapReset(g.N())
	sorted := true
	for i, v := range verts {
		ws.MapSet(v, int32(i))
		if i > 0 && verts[i-1] >= v {
			sorted = false
		}
	}
	if cap(dst.Xadj) >= nv+1 {
		dst.Xadj = dst.Xadj[:nv+1]
	} else {
		dst.Xadj = make([]int32, nv+1)
	}
	adj := dst.Adj[:0]
	for i, v := range verts {
		dst.Xadj[i] = int32(len(adj))
		for _, w := range g.Neighbors(v) {
			if j, ok := ws.MapGet(int(w)); ok {
				adj = append(adj, j)
			}
		}
	}
	dst.Xadj[nv] = int32(len(adj))
	dst.Adj = adj
	if !sorted {
		// Relabeling by an unsorted verts permutes neighbor values, so each
		// list must be re-sorted to restore the CSR invariant.
		for i := 0; i < nv; i++ {
			slices.Sort(adj[dst.Xadj[i]:dst.Xadj[i+1]])
		}
	}
}
