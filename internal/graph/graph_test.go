package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop, dropped
	b.AddEdge(3, 2)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if g.Degree(2) != 1 || !g.HasEdge(2, 3) {
		t.Errorf("edge 2-3 missing")
	}
	if g.HasEdge(2, 2) {
		t.Errorf("self-loop stored")
	}
}

func TestBuilderEmptyAndSingleton(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph N=%d M=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g = NewBuilder(1).Build()
	if g.N() != 1 || g.Degree(0) != 0 {
		t.Fatalf("singleton graph wrong")
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 5 {
		t.Fatalf("M = %d, want 5", g.M())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := Random(40, 60, 1)
	g2 := FromEdges(orig.N(), orig.Edges())
	if !reflect.DeepEqual(orig.Xadj, g2.Xadj) || !reflect.DeepEqual(orig.Adj, g2.Adj) {
		t.Fatal("Edges/FromEdges round trip mismatch")
	}
}

func TestFromCSRValidates(t *testing.T) {
	// Asymmetric adjacency must be rejected.
	if _, err := FromCSR([]int32{0, 1, 1}, []int32{1}); err == nil {
		t.Fatal("asymmetric CSR accepted")
	}
	// Self loop rejected.
	if _, err := FromCSR([]int32{0, 1}, []int32{0}); err == nil {
		t.Fatal("self-loop accepted")
	}
	// Valid tiny graph accepted.
	if _, err := FromCSR([]int32{0, 1, 2}, []int32{1, 0}); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
}

func TestMaxDegree(t *testing.T) {
	if d := Star(7).MaxDegree(); d != 6 {
		t.Errorf("star max degree = %d, want 6", d)
	}
	if d := NewBuilder(0).Build().MaxDegree(); d != 0 {
		t.Errorf("empty max degree = %d, want 0", d)
	}
	if d := Grid(4, 4).MaxDegree(); d != 4 {
		t.Errorf("grid max degree = %d, want 4", d)
	}
}

func TestHasEdgeProperty(t *testing.T) {
	g := Random(30, 80, 2)
	f := func(a, b uint8) bool {
		u, v := int(a)%g.N(), int(b)%g.N()
		want := false
		if u != v {
			for _, w := range g.Neighbors(u) {
				if int(w) == v {
					want = true
				}
			}
		}
		return g.HasEdge(u, v) == want && g.HasEdge(v, u) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevelStructurePath(t *testing.T) {
	g := Path(6)
	ls := NewLevelStructure(g, 0)
	if ls.Depth() != 6 {
		t.Fatalf("depth = %d, want 6", ls.Depth())
	}
	if ls.Width() != 1 {
		t.Fatalf("width = %d, want 1", ls.Width())
	}
	for v := 0; v < 6; v++ {
		if int(ls.LevelOf[v]) != v {
			t.Errorf("LevelOf[%d] = %d", v, ls.LevelOf[v])
		}
	}
	// From the middle the depth halves.
	ls = NewLevelStructure(g, 3)
	if ls.Depth() != 4 {
		t.Fatalf("depth from middle = %d, want 4", ls.Depth())
	}
}

func TestLevelStructureGrid(t *testing.T) {
	g := Grid(5, 5)
	ls := NewLevelStructure(g, 0)
	if ls.Depth() != 9 { // manhattan eccentricity of a corner is 8
		t.Fatalf("depth = %d, want 9", ls.Depth())
	}
	if ls.Size() != 25 {
		t.Fatalf("size = %d, want 25", ls.Size())
	}
	// Level l contains exactly the vertices at manhattan distance l.
	for l := 0; l < ls.Depth(); l++ {
		for _, v := range ls.Level(l) {
			x, y := int(v)%5, int(v)/5
			if x+y != l {
				t.Errorf("vertex %d at level %d, manhattan %d", v, l, x+y)
			}
		}
	}
}

func TestLevelStructureLevelsPartition(t *testing.T) {
	g := Random(60, 120, 3)
	ls := NewLevelStructure(g, 7)
	seen := make(map[int32]bool)
	total := 0
	for l := 0; l < ls.Depth(); l++ {
		for _, v := range ls.Level(l) {
			if seen[v] {
				t.Fatalf("vertex %d in two levels", v)
			}
			seen[v] = true
			if int(ls.LevelOf[v]) != l {
				t.Fatalf("LevelOf[%d]=%d but listed in level %d", v, ls.LevelOf[v], l)
			}
			total++
		}
	}
	if total != g.N() {
		t.Fatalf("levels cover %d of %d vertices", total, g.N())
	}
	// Edges connect only same or adjacent levels (BFS level property).
	for _, e := range g.Edges() {
		d := ls.LevelOf[e[0]] - ls.LevelOf[e[1]]
		if d < -1 || d > 1 {
			t.Fatalf("edge %v spans levels %d and %d", e, ls.LevelOf[e[0]], ls.LevelOf[e[1]])
		}
	}
}

func TestDistancesUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1) // component {0,1}; 2 and 3 isolated
	g := b.Build()
	d := Distances(g, 0)
	if d[0] != 0 || d[1] != 1 || d[2] != -1 || d[3] != -1 {
		t.Fatalf("distances = %v", d)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(9)
	// Component A: 0-1-2-3 (size 4), B: 4-5 (2), C: {6} {7} {8} singletons.
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	g := b.Build()
	comps := Components(g)
	if len(comps) != 5 {
		t.Fatalf("got %d components, want 5", len(comps))
	}
	if !reflect.DeepEqual(comps[0], []int{0, 1, 2, 3}) {
		t.Errorf("largest component = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []int{4, 5}) {
		t.Errorf("second component = %v", comps[1])
	}
	// Singletons ordered by label.
	if !reflect.DeepEqual(comps[2], []int{6}) || !reflect.DeepEqual(comps[4], []int{8}) {
		t.Errorf("singletons = %v %v %v", comps[2], comps[3], comps[4])
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(Path(10)) || !IsConnected(NewBuilder(1).Build()) || !IsConnected(NewBuilder(0).Build()) {
		t.Error("connected graphs reported disconnected")
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	if IsConnected(b.Build()) {
		t.Error("disconnected graph reported connected")
	}
}

func TestSubgraph(t *testing.T) {
	g := Grid(4, 4)
	verts := []int{0, 1, 2, 4, 5, 6} // top-left 3x2 block
	sub, old := g.Subgraph(verts)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.N() != 6 {
		t.Fatalf("sub N = %d", sub.N())
	}
	if sub.M() != 7 { // 3x2 grid has 7 edges
		t.Fatalf("sub M = %d, want 7", sub.M())
	}
	if !reflect.DeepEqual(old, verts) {
		t.Fatalf("old labels = %v", old)
	}
	// Every subgraph edge must exist in g under the label map.
	for _, e := range sub.Edges() {
		if !g.HasEdge(old[e[0]], old[e[1]]) {
			t.Fatalf("subgraph edge %v not in parent", e)
		}
	}
}

func TestPseudoPeripheralPath(t *testing.T) {
	g := Path(15)
	for start := 0; start < 15; start += 7 {
		r, ls := PseudoPeripheral(g, start)
		if r != 0 && r != 14 {
			t.Errorf("start %d: pseudo-peripheral = %d, want an end of the path", start, r)
		}
		if ls.Depth() != 15 {
			t.Errorf("start %d: depth = %d, want 15", start, ls.Depth())
		}
	}
}

func TestPseudoDiameterGrid(t *testing.T) {
	g := Grid(7, 3)
	u, v, lsU, lsV := PseudoDiameter(g, 8)
	if lsU.Depth() != lsV.Depth() {
		t.Errorf("endpoint eccentricities differ: %d vs %d", lsU.Depth(), lsV.Depth())
	}
	// The 7x3 grid's diameter is 6+2=8, so depth must be 9.
	if lsU.Depth() != 9 {
		t.Errorf("pseudo-diameter depth = %d, want 9", lsU.Depth())
	}
	if lsU.LevelOf[v] != int32(lsU.Depth()-1) {
		t.Errorf("v=%d not in the deepest level of u=%d", v, u)
	}
}

func TestPseudoPeripheralEccentricityMonotone(t *testing.T) {
	// The returned vertex's eccentricity must be >= the start's.
	for seed := int64(0); seed < 5; seed++ {
		g := Random(50, 70, seed)
		start := int(seed) * 9 % g.N()
		r, ls := PseudoPeripheral(g, start)
		if ls.Depth()-1 < Eccentricity(g, start) {
			t.Errorf("seed %d: ecc(%d)=%d < ecc(start %d)=%d",
				seed, r, ls.Depth()-1, start, Eccentricity(g, start))
		}
	}
}

func TestValidateRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := Random(100, 200, seed)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !IsConnected(g) {
			t.Fatalf("seed %d: Random graph not connected", seed)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	edges := Grid(200, 200).Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(200*200, edges)
	}
}

func BenchmarkBFS(b *testing.B) {
	g := Grid(300, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewLevelStructure(g, 0)
	}
}
