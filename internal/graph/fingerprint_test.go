package graph

import "testing"

func TestFingerprintIdentity(t *testing.T) {
	g1 := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	// Same edges added in a different order and direction: the builder
	// canonicalizes, so the content — and the fingerprint — must match.
	g2 := FromEdges(5, [][2]int{{4, 3}, {2, 1}, {3, 2}, {1, 0}})
	if FingerprintOf(g1) != FingerprintOf(g2) {
		t.Fatal("structurally identical graphs have different fingerprints")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	cases := map[string]*Graph{
		"extra edge":    FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}}),
		"missing edge":  FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		"more vertices": FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}),
		"relabeled":     FromEdges(5, [][2]int{{0, 2}, {2, 1}, {1, 3}, {3, 4}}),
	}
	fp := FingerprintOf(base)
	for name, g := range cases {
		if FingerprintOf(g) == fp {
			t.Errorf("%s: fingerprint collides with base graph", name)
		}
	}
}

func TestFingerprintEmptyAndIsolated(t *testing.T) {
	empty := FromEdges(0, nil)
	isolated := FromEdges(3, nil)
	if FingerprintOf(empty) == FingerprintOf(isolated) {
		t.Fatal("0-vertex and 3-vertex edgeless graphs share a fingerprint")
	}
}

func TestFingerprintStringHex(t *testing.T) {
	s := FingerprintOf(FromEdges(2, [][2]int{{0, 1}})).String()
	if len(s) != 64 {
		t.Fatalf("String() = %q, want 64 hex chars", s)
	}
	for _, c := range s {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("String() contains non-hex char %q", c)
		}
	}
}
