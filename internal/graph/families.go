package graph

import "math/rand"

// This file provides standard graph families. They serve both as
// convenience constructors for users and as the fixtures with closed-form
// Laplacian spectra that validate the eigensolver stack (see the tests in
// internal/lanczos and internal/multilevel).

// Path returns the path graph P_n: 0-1-2-...-(n-1).
// Its Laplacian has λ2 = 4·sin²(π/2n).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n. λ2 = 2−2cos(2π/n).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	if n == 2 {
		b.AddEdge(0, 1)
		return b.Build()
	}
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Complete returns the complete graph K_n. λ2 = n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with center vertex 0. λ2 = 1.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// Grid returns the nx×ny 5-point grid graph (Cartesian product of two
// paths), vertex (x,y) labeled y·nx+x. λ2 = min over the two factor paths.
func Grid(nx, ny int) *Graph {
	b := NewBuilder(nx * ny)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < ny {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return b.Build()
}

// Grid9 returns the nx×ny 9-point grid graph (5-point grid plus diagonals).
func Grid9(nx, ny int) *Graph {
	b := NewBuilder(nx * ny)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < ny {
				b.AddEdge(id(x, y), id(x, y+1))
			}
			if x+1 < nx && y+1 < ny {
				b.AddEdge(id(x, y), id(x+1, y+1))
				b.AddEdge(id(x+1, y), id(x, y+1))
			}
		}
	}
	return b.Build()
}

// Grid3D returns the nx×ny×nz 7-point grid graph.
func Grid3D(nx, ny, nz int) *Graph {
	b := NewBuilder(nx * ny * nz)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					b.AddEdge(id(x, y, z), id(x+1, y, z))
				}
				if y+1 < ny {
					b.AddEdge(id(x, y, z), id(x, y+1, z))
				}
				if z+1 < nz {
					b.AddEdge(id(x, y, z), id(x, y, z+1))
				}
			}
		}
	}
	return b.Build()
}

// Random returns a connected random graph on n vertices: a random ancestor
// tree plus `extra` uniformly random candidate edges (duplicates and
// self-pairs dropped). Deterministic for a given seed.
func Random(n, extra int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v))
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}
