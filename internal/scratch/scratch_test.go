package scratch

import "testing"

func TestArenaReuse(t *testing.T) {
	ws := New()
	m := ws.Mark()
	a := ws.Int32s(100)
	b := ws.Int32s(50)
	if len(a) != 100 || len(b) != 50 {
		t.Fatalf("lengths %d,%d", len(a), len(b))
	}
	a[0], b[0] = 7, 9
	ws.Release(m)
	a2 := ws.Int32s(80)
	if len(a2) != 80 {
		t.Fatalf("len %d", len(a2))
	}
	if &a2[0] != &a[0] {
		t.Fatalf("arena did not reuse the first buffer after Release")
	}
}

func TestBoolsZeroed(t *testing.T) {
	ws := New()
	m := ws.Mark()
	b := ws.Bools(10)
	for i := range b {
		b[i] = true
	}
	ws.Release(m)
	b2 := ws.Bools(10)
	for i, v := range b2 {
		if v {
			t.Fatalf("Bools not cleared at %d", i)
		}
	}
}

func TestMarkReleaseNesting(t *testing.T) {
	ws := New()
	outer := ws.Mark()
	x := ws.Int32s(10)
	x[3] = 42
	inner := ws.Mark()
	y := ws.Int32s(10)
	if &y[0] == &x[0] {
		t.Fatal("nested checkout aliased the outer buffer")
	}
	ws.Release(inner)
	// The outer buffer must survive an inner release untouched.
	if x[3] != 42 {
		t.Fatalf("outer buffer clobbered: %d", x[3])
	}
	z := ws.Int32s(5)
	if &z[0] != &y[0] {
		t.Fatal("inner slot not reused after inner release")
	}
	ws.Release(outer)
}

func TestStampMap(t *testing.T) {
	ws := New()
	ws.MapReset(10)
	ws.MapSet(3, 30)
	ws.MapSet(7, 70)
	if v, ok := ws.MapGet(3); !ok || v != 30 {
		t.Fatalf("MapGet(3) = %d,%v", v, ok)
	}
	if _, ok := ws.MapGet(4); ok {
		t.Fatal("MapGet(4) should miss")
	}
	ws.MapReset(10)
	if _, ok := ws.MapGet(3); ok {
		t.Fatal("MapReset did not clear")
	}
	// Shrinking then growing the key range must stay consistent.
	ws.MapReset(5)
	ws.MapSet(4, 44)
	ws.MapReset(10)
	if _, ok := ws.MapGet(4); ok {
		t.Fatal("stale entry visible after grow")
	}
}

func TestStampMapGenerationWrap(t *testing.T) {
	ws := New()
	ws.MapReset(4)
	ws.MapSet(1, 11)
	ws.mapCur = ^uint32(0) // force the next reset to wrap
	ws.mapGen[1] = ws.mapCur
	ws.MapReset(4)
	if _, ok := ws.MapGet(1); ok {
		t.Fatal("entry survived generation wrap")
	}
	ws.MapSet(2, 22)
	if v, ok := ws.MapGet(2); !ok || v != 22 {
		t.Fatalf("MapGet(2) after wrap = %d,%v", v, ok)
	}
}

func TestZeroAllocSteadyState(t *testing.T) {
	ws := New()
	// Warm up.
	m := ws.Mark()
	_ = ws.Int32s(1000)
	_ = ws.Bools(1000)
	_ = ws.Float64s(1000)
	ws.MapReset(1000)
	ws.Release(m)
	allocs := testing.AllocsPerRun(100, func() {
		m := ws.Mark()
		a := ws.Int32s(1000)
		b := ws.Bools(500)
		f := ws.Float64s(200)
		a[0], b[0], f[0] = 1, true, 1
		ws.MapReset(1000)
		ws.MapSet(5, 50)
		ws.Release(m)
	})
	if allocs != 0 {
		t.Fatalf("steady-state workspace checkout allocates: %v allocs/op", allocs)
	}
}

func TestPool(t *testing.T) {
	ws := Get()
	_ = ws.Int32s(10)
	Put(ws)
	ws2 := Get()
	// After Put every slot must be released.
	if ws2 == ws && ws2.nexti != 0 {
		t.Fatal("Put did not rewind the arenas")
	}
	Put(ws2)
}
