// Package scratch provides reusable per-worker scratch memory for the hot
// combinatorial kernels of the ordering pipeline: envelope scoring, subgraph
// extraction and the breadth-first machinery of the classical orderings.
//
// A Workspace is a set of typed arenas (int32, bool, float64) handed out in
// stack order plus a stamp-cleared integer map over a dense key range. After
// the first few calls at a given problem size every checkout is served from
// retained capacity, so kernels written against a Workspace run with zero
// steady-state allocations (see the AllocsPerRun guards in the consuming
// packages).
//
// Contract: a Workspace is NOT safe for concurrent use; give each worker
// goroutine its own (Get/Put wrap a sync.Pool for exactly that). Buffers
// obtained from a Workspace are only valid until the matching Release (or
// Put) and must never be retained, returned, or stored in long-lived
// structures — copy out anything that outlives the call.
package scratch

import "sync"

// Workspace is a reusable bundle of scratch arenas. The zero value is ready
// to use.
type Workspace struct {
	i32   [][]int32
	nexti int
	b     [][]bool
	nextb int
	f64   [][]float64
	nextf int

	// Stamp-cleared map over keys [0, n): val[k] is current iff gen[k]
	// equals cur. Clearing is O(1) — bump cur.
	mapVal []int32
	mapGen []uint32
	mapCur uint32
}

// New returns an empty Workspace.
func New() *Workspace { return &Workspace{} }

var pool = sync.Pool{New: func() any { return New() }}

// Get checks a Workspace out of the global pool.
func Get() *Workspace { return pool.Get().(*Workspace) }

// Put releases every outstanding buffer of ws and returns it to the global
// pool. The caller must not use ws or any buffer obtained from it
// afterwards.
func Put(ws *Workspace) {
	ws.nexti, ws.nextb, ws.nextf = 0, 0, 0
	pool.Put(ws)
}

// Mark records the current arena positions; passing it to Release frees
// every buffer checked out after the Mark call. Marks nest like a stack:
// release in reverse order of marking.
type Mark struct{ i, b, f int }

// Mark returns a checkpoint of the arenas.
//
//envlint:noalloc
func (ws *Workspace) Mark() Mark { return Mark{ws.nexti, ws.nextb, ws.nextf} }

// Release returns every buffer checked out since m to the arenas. The freed
// buffers keep their capacity and will back future checkouts.
//
//envlint:noalloc
func (ws *Workspace) Release(m Mark) {
	ws.nexti, ws.nextb, ws.nextf = m.i, m.b, m.f
}

// Int32s returns a length-n int32 buffer with unspecified contents.
func (ws *Workspace) Int32s(n int) []int32 {
	if ws.nexti == len(ws.i32) {
		ws.i32 = append(ws.i32, nil)
	}
	buf := ws.i32[ws.nexti]
	if cap(buf) < n {
		buf = make([]int32, n)
	}
	buf = buf[:n]
	ws.i32[ws.nexti] = buf
	ws.nexti++
	return buf
}

// Bools returns a length-n bool buffer with every element false.
func (ws *Workspace) Bools(n int) []bool {
	if ws.nextb == len(ws.b) {
		ws.b = append(ws.b, nil)
	}
	buf := ws.b[ws.nextb]
	if cap(buf) < n {
		buf = make([]bool, n)
	} else {
		buf = buf[:n]
		for i := range buf {
			buf[i] = false
		}
	}
	ws.b[ws.nextb] = buf
	ws.nextb++
	return buf
}

// Float64s returns a length-n float64 buffer with unspecified contents.
func (ws *Workspace) Float64s(n int) []float64 {
	if ws.nextf == len(ws.f64) {
		ws.f64 = append(ws.f64, nil)
	}
	buf := ws.f64[ws.nextf]
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	ws.f64[ws.nextf] = buf
	ws.nextf++
	return buf
}

// MapReset clears the stamp map and sizes its key range to [0, n). Only one
// stamp map is live per Workspace at a time; a second MapReset discards the
// first map's contents.
func (ws *Workspace) MapReset(n int) {
	if cap(ws.mapGen) < n {
		ws.mapVal = make([]int32, n)
		ws.mapGen = make([]uint32, n)
		ws.mapCur = 1
		return
	}
	ws.mapVal = ws.mapVal[:n]
	ws.mapGen = ws.mapGen[:n]
	ws.mapCur++
	if ws.mapCur == 0 { // generation counter wrapped: hard-clear once
		for i := range ws.mapGen {
			ws.mapGen[i] = 0
		}
		ws.mapCur = 1
	}
}

// MapSet binds key k (in the range given to MapReset) to v.
//
//envlint:noalloc
func (ws *Workspace) MapSet(k int, v int32) {
	ws.mapVal[k] = v
	ws.mapGen[k] = ws.mapCur
}

// MapGet returns the value bound to k since the last MapReset.
//
//envlint:noalloc
func (ws *Workspace) MapGet(k int) (int32, bool) {
	if ws.mapGen[k] != ws.mapCur {
		return 0, false
	}
	return ws.mapVal[k], true
}
