// Package harness runs the paper's Section 4 experiments: for each test
// problem it executes the SPECTRAL, GK, GPS and RCM orderings, measures
// envelope size, bandwidth and wall-clock ordering time, ranks the
// algorithms by envelope (the "Rank" column), and formats rows matching
// Tables 4.1–4.3. It also drives the factorization-time comparison of
// Table 4.4, and can append an AUTO row — the parallel portfolio engine of
// internal/pipeline — to every comparison (RunProblemPortfolio,
// RunSuitePortfolio).
//
// All algorithm rows run through one reusable envred.Session per table,
// with the contenders resolved from the ordering-service registry. The
// session's cross-call artifact cache is disabled: the tables compare
// algorithm costs, so every row pays its own decomposition and eigensolve.
package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	envred "repro"
	"repro/internal/chol"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/solver"
)

// Algorithm names in the paper's table order, plus the portfolio engine.
const (
	AlgSpectral = "SPECTRAL"
	AlgGK       = "GK"
	AlgGPS      = "GPS"
	AlgRCM      = "RCM"
	AlgAuto     = "AUTO"
)

// OrderFunc computes an ordering of a graph, reported as the ordering
// service's uniform Result: the permutation, its envelope parameters,
// the eigensolver statistics (zero for the combinatorial orderings) and
// the ordering's own wall-clock time. The tables read Seconds off
// Result.Elapsed, which times the algorithm alone — scoring and
// validation stay out of the published timings. ctx flows through to the
// Session call, so a cancelled table run interrupts in-flight
// eigensolves instead of finishing the row.
type OrderFunc func(context.Context, *graph.Graph) (envred.Result, error)

// NamedAlgorithm pairs a table label with its ordering function.
type NamedAlgorithm struct {
	Name string
	F    OrderFunc
}

// Algorithms returns the paper's four contenders in table order, each a
// registry-resolved Session.Order call on a shared Session. seed drives
// the spectral solver's randomness. The Session's artifact cache is
// disabled: every row must pay its algorithm's full cost, or the tables'
// Seconds column would report warm-cache numbers.
func Algorithms(seed int64) []NamedAlgorithm {
	return sessionAlgorithms(envred.NewSession(envred.SessionOptions{Seed: seed, CacheGraphs: -1}))
}

func sessionAlgorithms(sess *envred.Session) []NamedAlgorithm {
	mk := func(alg string) OrderFunc {
		return func(ctx context.Context, g *graph.Graph) (envred.Result, error) {
			return sess.Order(ctx, g, alg)
		}
	}
	return []NamedAlgorithm{
		{AlgSpectral, mk(envred.AlgSpectral)},
		{AlgGK, mk(envred.AlgGK)},
		{AlgGPS, mk(envred.AlgGPS)},
		{AlgRCM, mk(envred.AlgRCM)},
	}
}

func statsOf(res envred.Result) solver.Stats {
	if res.Solve != nil {
		return *res.Solve
	}
	return solver.Stats{}
}

// PortfolioAlgorithms returns the paper's four contenders plus the AUTO
// portfolio engine running its default portfolio on parallel workers
// (≤ 0 means GOMAXPROCS). The AUTO row shows what racing all contenders
// per component buys over committing to any single one. The shared
// Session's artifact cache is disabled so each row's Seconds reflects its
// algorithm's full cost (AUTO still shares one eigensolve among its own
// candidates within the run — that sharing is the engine, not the cache).
func PortfolioAlgorithms(seed int64, parallel int) []NamedAlgorithm {
	sess := envred.NewSession(envred.SessionOptions{Seed: seed, Parallelism: parallel, CacheGraphs: -1})
	return append(sessionAlgorithms(sess), NamedAlgorithm{AlgAuto, func(ctx context.Context, g *graph.Graph) (envred.Result, error) {
		return sess.Auto(ctx, g)
	}})
}

// Row is one line of a Section 4 table: one algorithm on one problem.
type Row struct {
	Problem   string
	Algorithm string
	Envelope  int64
	Bandwidth int
	Seconds   float64
	Rank      int // 1 = smallest envelope among the four
	// MatVecs is the eigensolver work behind the row: Laplacian
	// applications across every solve of the run (0 for the combinatorial
	// orderings).
	MatVecs int
	// Workers is the widest row-block fan-out any of the row's Laplacian
	// matvecs ran across (0 for the combinatorial orderings, 1 for a
	// serial eigensolve) — sourced from solver.Stats.Workers.
	Workers int
}

// ProblemResult gathers the four rows of one problem, in table order.
type ProblemResult struct {
	Problem gen.Problem
	Rows    []Row
}

// RunProblem executes all four algorithms on the problem and fills in the
// envelope ranks. Failing algorithms (eigensolver breakdowns) report an
// error; the paper's algorithms never legitimately fail on connected
// graphs.
func RunProblem(ctx context.Context, p gen.Problem, seed int64) (ProblemResult, error) {
	return runProblem(ctx, p, Algorithms(seed))
}

// RunProblemPortfolio is RunProblem with the AUTO portfolio row appended:
// five ranked rows per problem.
func RunProblemPortfolio(ctx context.Context, p gen.Problem, seed int64, parallel int) (ProblemResult, error) {
	return runProblem(ctx, p, PortfolioAlgorithms(seed, parallel))
}

func runProblem(ctx context.Context, p gen.Problem, algs []NamedAlgorithm) (ProblemResult, error) {
	res := ProblemResult{Problem: p}
	for _, alg := range algs {
		r, err := alg.F(ctx, p.G)
		if err != nil {
			return res, fmt.Errorf("harness: %s on %s: %w", alg.Name, p.Name, err)
		}
		if err := r.Perm.Check(); err != nil {
			return res, fmt.Errorf("harness: %s on %s: invalid ordering: %w", alg.Name, p.Name, err)
		}
		solve := statsOf(r)
		res.Rows = append(res.Rows, Row{
			Problem:   p.Name,
			Algorithm: alg.Name,
			Envelope:  r.Stats.Esize,
			Bandwidth: r.Stats.Bandwidth,
			Seconds:   r.Elapsed.Seconds(),
			MatVecs:   solve.MatVecs,
			Workers:   solve.Workers,
		})
	}
	rank(res.Rows)
	return res, nil
}

// rank assigns 1..k by increasing envelope (ties share the earlier order,
// matching the paper's distinct ranks via stable ordering).
func rank(rows []Row) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rows[idx[a]].Envelope < rows[idx[b]].Envelope })
	for r, i := range idx {
		rows[i].Rank = r + 1
	}
}

// RunSuite runs every problem of a suite at the given scale.
func RunSuite(ctx context.Context, suite string, scale float64, seed int64) ([]ProblemResult, error) {
	return runSuite(suite, scale, seed, func(p gen.Problem) (ProblemResult, error) {
		return RunProblem(ctx, p, seed)
	})
}

// RunSuitePortfolio runs every problem of a suite with the AUTO portfolio
// row included.
func RunSuitePortfolio(ctx context.Context, suite string, scale float64, seed int64, parallel int) ([]ProblemResult, error) {
	return runSuite(suite, scale, seed, func(p gen.Problem) (ProblemResult, error) {
		return RunProblemPortfolio(ctx, p, seed, parallel)
	})
}

func runSuite(suite string, scale float64, seed int64, run func(gen.Problem) (ProblemResult, error)) ([]ProblemResult, error) {
	var out []ProblemResult
	for _, spec := range gen.SuiteSpecs(suite) {
		r, err := run(spec.Generate(scale, seed))
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteTable formats results in the layout of Tables 4.1–4.3.
func WriteTable(w io.Writer, title string, results []ProblemResult) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	line := strings.Repeat("-", 82)
	fmt.Fprintln(w, line)
	fmt.Fprintf(w, "%-12s %14s %10s %10s  %-9s %4s %8s %7s\n",
		"Title", "Envelope", "Bandwidth", "Run time", "Algorithm", "Rank", "MatVecs", "Workers")
	fmt.Fprintf(w, "%-12s %14s %10s %10s\n", "(equations)", "", "", "(sec)")
	fmt.Fprintf(w, "%-12s\n", "(nonzeros)")
	fmt.Fprintln(w, line)
	for _, pr := range results {
		g := pr.Problem.G
		hdr := []string{
			pr.Problem.Name,
			fmt.Sprintf("(%d)", g.N()),
			fmt.Sprintf("(%d)", g.Nonzeros()),
		}
		for i, row := range pr.Rows {
			h := ""
			if i < len(hdr) {
				h = hdr[i]
			}
			fmt.Fprintf(w, "%-12s %14d %10d %10.2f  %-9s %4d %8d %7d\n",
				h, row.Envelope, row.Bandwidth, row.Seconds, row.Algorithm, row.Rank, row.MatVecs, row.Workers)
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

// FactorRow is one line of Table 4.4.
type FactorRow struct {
	Problem   string
	Algorithm string
	Envelope  int64
	Seconds   float64
	Flops     int64
}

// RunFactorization reproduces one Table 4.4 pair: order the problem with
// SPECTRAL and RCM, assemble the SPD model matrix L+I under each ordering,
// and time the envelope Cholesky factorization.
func RunFactorization(ctx context.Context, p gen.Problem, seed int64) ([]FactorRow, error) {
	algs := Algorithms(seed)
	var rows []FactorRow
	for _, alg := range algs {
		if alg.Name != AlgSpectral && alg.Name != AlgRCM {
			continue
		}
		r, err := alg.F(ctx, p.G)
		if err != nil {
			return nil, fmt.Errorf("harness: %s on %s: %w", alg.Name, p.Name, err)
		}
		m, err := chol.NewMatrix(p.G, r.Perm, chol.LaplacianPlusIdentity(p.G))
		if err != nil {
			return nil, err
		}
		esize := m.EnvelopeSize()
		start := time.Now()
		f, err := chol.Factorize(m)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return nil, fmt.Errorf("harness: factorizing %s/%s: %w", p.Name, alg.Name, err)
		}
		rows = append(rows, FactorRow{
			Problem:   p.Name,
			Algorithm: alg.Name,
			Envelope:  esize,
			Seconds:   elapsed,
			Flops:     f.Flops(),
		})
	}
	return rows, nil
}

// WriteFactorTable formats Table 4.4.
func WriteFactorTable(w io.Writer, rows []FactorRow) error {
	fmt.Fprintln(w, "Table 4.4: Factorization times")
	line := strings.Repeat("-", 66)
	fmt.Fprintln(w, line)
	fmt.Fprintf(w, "%-10s %14s %14s %14s %-9s\n", "Title", "Envelope", "Factor time", "Flops", "Algorithm")
	fmt.Fprintf(w, "%-10s %14s %14s\n", "", "", "(sec)")
	fmt.Fprintln(w, line)
	last := ""
	for _, r := range rows {
		name := r.Problem
		if name == last {
			name = ""
		} else if last != "" {
			fmt.Fprintln(w, line)
		}
		last = r.Problem
		fmt.Fprintf(w, "%-10s %14d %14.3f %14d %-9s\n", name, r.Envelope, r.Seconds, r.Flops, r.Algorithm)
	}
	fmt.Fprintln(w, line)
	return nil
}
