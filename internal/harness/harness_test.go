package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/gen"
)

func smallProblem(t *testing.T, name string) gen.Problem {
	t.Helper()
	spec, ok := gen.ByName(name)
	if !ok {
		t.Fatalf("unknown problem %s", name)
	}
	return spec.Generate(0.08, 42)
}

func TestRunProblemRanks(t *testing.T) {
	p := smallProblem(t, "DWT2680")
	res, err := RunProblem(context.Background(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// Ranks are a permutation of 1..4 consistent with envelope order.
	seen := map[int]bool{}
	for _, r := range res.Rows {
		if r.Rank < 1 || r.Rank > 4 || seen[r.Rank] {
			t.Fatalf("bad rank set: %+v", res.Rows)
		}
		seen[r.Rank] = true
	}
	for _, a := range res.Rows {
		for _, b := range res.Rows {
			if a.Rank < b.Rank && a.Envelope > b.Envelope {
				t.Fatalf("rank inversion: %+v vs %+v", a, b)
			}
		}
	}
	// Algorithms in paper order.
	wantOrder := []string{AlgSpectral, AlgGK, AlgGPS, AlgRCM}
	for i, r := range res.Rows {
		if r.Algorithm != wantOrder[i] {
			t.Fatalf("row %d algorithm %s, want %s", i, r.Algorithm, wantOrder[i])
		}
	}
}

func TestRunSuiteSmallScale(t *testing.T) {
	results, err := RunSuite(context.Background(), gen.SuiteMisc, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d problems", len(results))
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, "Table 4.2 (scaled)", results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"CAN1072", "POW9", "BLKHOLE", "DWT2680", "SSTMODEL"} {
		if !strings.Contains(out, name) {
			t.Errorf("table missing %s", name)
		}
	}
	for _, alg := range []string{AlgSpectral, AlgGK, AlgGPS, AlgRCM} {
		if !strings.Contains(out, alg) {
			t.Errorf("table missing %s", alg)
		}
	}
}

func TestRunProblemPortfolio(t *testing.T) {
	p := smallProblem(t, "DWT2680")
	res, err := RunProblemPortfolio(context.Background(), p, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 4 + AUTO", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Algorithm != AlgAuto {
		t.Fatalf("last row is %s, want %s", last.Algorithm, AlgAuto)
	}
	// The portfolio can never lose to its own contenders on envelope, so
	// AUTO must rank first (possibly tied, in which case stable ranking
	// puts the single algorithm first — allow rank ≤ losing contenders).
	for _, r := range res.Rows[:4] {
		if last.Envelope > r.Envelope {
			t.Fatalf("AUTO envelope %d worse than %s %d", last.Envelope, r.Algorithm, r.Envelope)
		}
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, "portfolio", []ProblemResult{res}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), AlgAuto) {
		t.Fatal("table missing AUTO row")
	}
}

func TestRunFactorization(t *testing.T) {
	p := smallProblem(t, "BARTH4")
	rows, err := RunFactorization(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want SPECTRAL and RCM", len(rows))
	}
	if rows[0].Algorithm != AlgSpectral || rows[1].Algorithm != AlgRCM {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Envelope <= 0 || r.Flops <= 0 {
			t.Fatalf("degenerate factor row %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := WriteFactorTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Factor time") {
		t.Fatal("factor table header missing")
	}
}

// The central claim of the paper, at reduced scale: on the airfoil mesh the
// spectral ordering produces a smaller envelope than RCM.
func TestSpectralBeatsRCMOnAirfoil(t *testing.T) {
	spec, _ := gen.ByName("BARTH4")
	p := spec.Generate(0.25, 7)
	res, err := RunProblem(context.Background(), p, 7)
	if err != nil {
		t.Fatal(err)
	}
	var spectral, rcm int64
	for _, r := range res.Rows {
		switch r.Algorithm {
		case AlgSpectral:
			spectral = r.Envelope
		case AlgRCM:
			rcm = r.Envelope
		}
	}
	if spectral >= rcm {
		t.Fatalf("spectral envelope %d not below RCM %d on airfoil", spectral, rcm)
	}
}

// GPS should give the best (or near-best) bandwidth — the paper's repeated
// observation.
func TestGPSBandwidthBeatsSpectral(t *testing.T) {
	spec, _ := gen.ByName("BARTH4")
	p := spec.Generate(0.25, 7)
	res, err := RunProblem(context.Background(), p, 7)
	if err != nil {
		t.Fatal(err)
	}
	var spectralBW, gpsBW int
	for _, r := range res.Rows {
		switch r.Algorithm {
		case AlgSpectral:
			spectralBW = r.Bandwidth
		case AlgGPS:
			gpsBW = r.Bandwidth
		}
	}
	if gpsBW >= spectralBW {
		t.Fatalf("GPS bandwidth %d not below spectral %d", gpsBW, spectralBW)
	}
}
