package laplacian

import (
	"fmt"

	"repro/internal/graph"
)

// Weighted is the weighted graph Laplacian L = D_w − W, where W carries a
// positive weight per edge and D_w the weighted degrees. The paper's
// algorithm is pattern-only (all weights 1), but its §2.3 relaxation
// argument extends verbatim to the weighted 2-sum Σ w_uv (x_u − x_v)²:
// sorting the weighted Fiedler vector orders strongly-coupled rows
// adjacently. This is the natural extension when the matrix values are
// available (e.g. from a Matrix Market file with real entries).
type Weighted struct {
	G *graph.Graph
	// w is aligned with G.Adj: w[k] is the weight of the adjacency entry
	// G.Adj[k]. Symmetric entries carry equal weights.
	w    []float64
	wdeg []float64
}

// NewWeighted builds the weighted Laplacian with weight(u,v) > 0 per edge.
// weight is called once per direction and must be symmetric; it returns an
// error if any weight is non-positive (take absolute values of matrix
// entries first).
func NewWeighted(g *graph.Graph, weight func(u, v int) float64) (*Weighted, error) {
	n := g.N()
	w := make([]float64, len(g.Adj))
	wdeg := make([]float64, n)
	for v := 0; v < n; v++ {
		base := g.Xadj[v]
		for i, u := range g.Neighbors(v) {
			wt := weight(v, int(u))
			if wt <= 0 {
				return nil, fmt.Errorf("laplacian: non-positive weight %g on edge (%d,%d)", wt, v, u)
			}
			w[int(base)+i] = wt
			wdeg[v] += wt
		}
	}
	return &Weighted{G: g, w: w, wdeg: wdeg}, nil
}

// Dim returns the number of vertices.
func (o *Weighted) Dim() int { return o.G.N() }

// Apply computes y = L_w·x.
func (o *Weighted) Apply(x, y []float64) {
	g := o.G
	for v := 0; v < g.N(); v++ {
		s := o.wdeg[v] * x[v]
		base := g.Xadj[v]
		adj := g.Neighbors(v)
		for i, u := range adj {
			s -= o.w[int(base)+i] * x[u]
		}
		y[v] = s
	}
}

// ApplyAxpy computes y = L_w·x − beta·qprev in one pass (linalg.AxpyApplier).
func (o *Weighted) ApplyAxpy(x, y []float64, beta float64, qprev []float64) {
	g := o.G
	for v := 0; v < g.N(); v++ {
		s := o.wdeg[v]*x[v] - beta*qprev[v]
		base := g.Xadj[v]
		for i, u := range g.Neighbors(v) {
			s -= o.w[int(base)+i] * x[u]
		}
		y[v] = s
	}
}

// Workers reports the weighted operator's single row block.
func (o *Weighted) Workers() int { return 1 }

// RayleighQuotient returns xᵀL_w x / xᵀx via the weighted edge form.
func (o *Weighted) RayleighQuotient(x []float64) float64 {
	g := o.G
	var num, den float64
	for v := 0; v < g.N(); v++ {
		den += x[v] * x[v]
		base := g.Xadj[v]
		for i, u := range g.Neighbors(v) {
			if int(u) > v {
				d := x[v] - x[u]
				num += o.w[int(base)+i] * d * d
			}
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// GershgorinBound returns 2·max weighted degree ≥ λn(L_w).
func (o *Weighted) GershgorinBound() float64 {
	max := 0.0
	for _, d := range o.wdeg {
		if d > max {
			max = d
		}
	}
	return 2 * max
}

var _ Interface = (*Weighted)(nil)

// UnitWeights adapts the unweighted case to the Weighted constructor.
func UnitWeights(u, v int) float64 { return 1 }
