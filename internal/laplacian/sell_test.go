package laplacian

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// sellSuite is the graph suite the SELL equivalence properties run over:
// regular grids, uniform random graphs, and pathological degree
// distributions (stars and near-cliques embedded in sparse hosts) that
// stress the σ-window sorting, the ragged tails and the rest rows.
func sellSuite(t testing.TB) []*graph.Graph {
	suite := []*graph.Graph{
		graph.Grid(37, 41), // 1517 rows: partial final window + rest rows
		graph.Grid(64, 64), // 4096 rows: exact window multiple
		graph.Path(1000),   // degree ≤ 2, long diameter
		graph.Complete(97), // dense: every slice ragged-free, huge kmin
		graph.Random(5000, 15000, 1),
		graph.Random(4099, 9000, 2), // odd n: rest rows
	}
	// Power-law-ish pathology: a few hubs adjacent to everything plus a
	// sparse ring — extreme degree spread inside single σ-windows.
	b := graph.NewBuilder(3000)
	for v := 1; v < 3000; v++ {
		b.AddEdge(v-1, v)
	}
	for hub := 0; hub < 5; hub++ {
		for v := 10 + hub; v < 3000; v += 7 {
			b.AddEdge(hub, v)
		}
	}
	suite = append(suite, b.Build())
	return suite
}

// TestSellMatchesCSRBitwise is the tentpole equivalence property: the
// SELL-C-σ operator reproduces the CSR Op bitwise for Apply and
// ApplyAxpy on every suite graph, under every worker count 1..8 (all
// through the persistent pool), and under perturbed layout tunables.
func TestSellMatchesCSRBitwise(t *testing.T) {
	defer func(sig int) { SellSigma = sig }(SellSigma)
	for _, sigma := range []int{8, 64, 256} {
		SellSigma = sigma
		for gi, g := range sellSuite(t) {
			n := g.N()
			op := New(g)
			sell := NewSell(op)
			x := make([]float64, n)
			q := make([]float64, n)
			for i := range x {
				x[i] = math.Sin(float64(i)*0.61 + float64(gi))
				q[i] = math.Cos(float64(i) * 0.23)
			}
			want := make([]float64, n)
			wantAxpy := make([]float64, n)
			op.Apply(x, want)
			op.ApplyAxpy(x, wantAxpy, 0.75, q)
			got := make([]float64, n)
			sell.Apply(x, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("σ=%d graph %d: serial Apply mismatch at row %d: %v vs %v", sigma, gi, i, got[i], want[i])
				}
			}
			sell.ApplyAxpy(x, got, 0.75, q)
			for i := range wantAxpy {
				if got[i] != wantAxpy[i] {
					t.Fatalf("σ=%d graph %d: serial ApplyAxpy mismatch at row %d: %v vs %v", sigma, gi, i, got[i], wantAxpy[i])
				}
			}
			for workers := 1; workers <= 8; workers++ {
				pop := NewParallelSell(sell, workers)
				pop.Apply(x, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("σ=%d graph %d workers %d: Apply mismatch at row %d: %v vs %v",
							sigma, gi, workers, i, got[i], want[i])
					}
				}
				pop.ApplyAxpy(x, got, 0.75, q)
				for i := range wantAxpy {
					if got[i] != wantAxpy[i] {
						t.Fatalf("σ=%d graph %d workers %d: ApplyAxpy mismatch at row %d: %v vs %v",
							sigma, gi, workers, i, got[i], wantAxpy[i])
					}
				}
			}
		}
	}
}

// TestSellCoversAllRows checks the layout partition: slices + rest
// jointly cover every vertex exactly once, and every slice's full phase
// plus tail stores exactly its rows' adjacency.
func TestSellCoversAllRows(t *testing.T) {
	for _, g := range sellSuite(t) {
		s := NewSell(New(g))
		seen := make([]bool, g.N())
		mark := func(v int32) {
			if seen[v] {
				t.Fatalf("row %d packed twice", v)
			}
			seen[v] = true
		}
		for _, v := range s.rows {
			mark(v)
		}
		for _, v := range s.rest {
			mark(v)
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("row %d not packed", v)
			}
		}
		if len(s.rest) >= sellC {
			t.Fatalf("%d rest rows; want < %d", len(s.rest), sellC)
		}
		if got, want := len(s.cols)+len(s.tails)+restEntries(g, s), len(g.Adj); got != want {
			t.Fatalf("stored entries %d, want %d", got, want)
		}
	}
}

func restEntries(g *graph.Graph, s *Sell) int {
	n := 0
	for _, v := range s.rest {
		n += g.Degree(int(v))
	}
	return n
}
