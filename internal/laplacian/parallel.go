package laplacian

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// ParallelOp is the Laplacian operator with the matrix–vector product
// parallelized across row blocks. The paper's §1 argues this is the
// spectral algorithm's structural advantage over the BFS-based orderings:
// its kernel is a sparse matvec, which "not only vectorizes easily, but
// also can be implemented in parallel with little effort". ParallelOp is
// that remark made concrete; the ablation benchmark in bench_test.go
// measures the speedup.
//
// Rows are statically partitioned into equal-cardinality blocks. Each
// worker writes a disjoint slice of y, so no synchronization beyond the
// final barrier is needed.
type ParallelOp struct {
	op      *Op
	workers int
	starts  []int // worker w owns rows starts[w]:starts[w+1]
	wg      sync.WaitGroup
}

// NewParallelOp wraps an Op with a parallel Apply using the given number
// of workers (≤ 0 selects GOMAXPROCS). Small graphs fall back to a single
// worker: goroutine fan-out costs more than it saves below a few thousand
// rows per worker.
func NewParallelOp(op *Op, workers int) *ParallelOp {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := op.Dim()
	const minRowsPerWorker = 4096
	if maxW := n / minRowsPerWorker; workers > maxW {
		workers = maxW
	}
	if workers < 1 {
		workers = 1
	}
	// Balance by nonzeros, not rows: split the adjacency array evenly.
	starts := make([]int, workers+1)
	total := len(op.G.Adj)
	row := 0
	for w := 1; w < workers; w++ {
		target := total * w / workers
		for row < n && int(op.G.Xadj[row]) < target {
			row++
		}
		starts[w] = row
	}
	starts[workers] = n
	return &ParallelOp{op: op, workers: workers, starts: starts}
}

// Dim returns the number of vertices.
func (p *ParallelOp) Dim() int { return p.op.Dim() }

// Apply computes y = L·x using all workers.
func (p *ParallelOp) Apply(x, y []float64) {
	if p.workers == 1 {
		p.op.Apply(x, y)
		return
	}
	g := p.op.G
	deg := p.op.deg
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		lo, hi := p.starts[w], p.starts[w+1]
		go func(lo, hi int) {
			defer p.wg.Done()
			for v := lo; v < hi; v++ {
				s := deg[v] * x[v]
				for _, u := range g.Neighbors(v) {
					s -= x[u]
				}
				y[v] = s
			}
		}(lo, hi)
	}
	p.wg.Wait()
}

// RayleighQuotient delegates to the serial implementation (it is called
// once per RQI step, not in the inner loop).
func (p *ParallelOp) RayleighQuotient(x []float64) float64 {
	return p.op.RayleighQuotient(x)
}

// GershgorinBound delegates to the serial implementation.
func (p *ParallelOp) GershgorinBound() float64 { return p.op.GershgorinBound() }

// Interface is the operator surface the eigensolver stack needs: the
// matvec plus the two Laplacian-specific queries. Both Op and ParallelOp
// satisfy it.
type Interface interface {
	Dim() int
	Apply(x, y []float64)
	RayleighQuotient(x []float64) float64
	GershgorinBound() float64
}

var (
	_ Interface = (*Op)(nil)
	_ Interface = (*ParallelOp)(nil)
)

// Auto returns the Laplacian of g with the matvec parallelized when the
// graph is large enough to profit (ParallelOp itself falls back to one
// worker below its threshold). Results are bitwise identical to the serial
// operator for any worker count: each row is reduced in the same order,
// rows are merely distributed.
func Auto(g *graph.Graph) Interface {
	return NewParallelOp(New(g), 0)
}

// AutoFrom is Auto with a caller-provided degree buffer (see NewFrom).
func AutoFrom(g *graph.Graph, deg []float64) Interface {
	return NewParallelOp(NewFrom(g, deg), 0)
}
