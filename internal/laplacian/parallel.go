package laplacian

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Worker-count heuristics for the auto path (NewParallelOp with
// workers ≤ 0). They are variables, not constants, so deployments can tune
// the parallel crossover: a graph gets one worker per MinRowsPerWorker rows
// OR per MinNnzPerWorker stored nonzeros, whichever grants more — the nnz
// term keeps small-but-dense graphs from serializing on the row count
// alone. Explicit worker requests bypass both (see NewParallelOp).
var (
	MinRowsPerWorker = 4096
	MinNnzPerWorker  = 16384
)

// ParallelOp is the Laplacian operator with the matrix–vector product
// parallelized across row blocks. The paper's §1 argues this is the
// spectral algorithm's structural advantage over the BFS-based orderings:
// its kernel is a sparse matvec, which "not only vectorizes easily, but
// also can be implemented in parallel with little effort". ParallelOp is
// that remark made concrete; the ablation benchmark in parallel_test.go
// (BenchmarkSpMV) measures the speedup.
//
// Rows are statically partitioned into blocks balanced by nonzeros. Each
// worker writes a disjoint slice of y, so no synchronization beyond the
// final barrier is needed, and results are bitwise identical to the serial
// operator for any worker count: each row is reduced in the same order,
// rows are merely distributed.
//
// Block execution rides a package-level pool of persistent goroutines
// (see spmvPool): Apply publishes its operands, hands the helper blocks to
// the parked workers and computes block 0 itself — no per-Apply goroutine
// spawning, no closure allocation.
//
// A ParallelOp is NOT safe for concurrent Apply/ApplyAxpy calls on the
// same instance: the per-call operands are published through the operator
// (and the barrier WaitGroup is per-instance), so each instance supports
// one matvec at a time. Distinct instances compose freely — they share
// only the worker pool, which is what the concurrent-solves race test
// exercises. Give each concurrent solver its own ParallelOp (wrapping the
// same Op is fine).
type ParallelOp struct {
	op      *Op
	sell    *Sell // non-nil: slice-layout kernel, starts index slices
	workers int
	starts  []int // worker w owns rows (or slices) starts[w]:starts[w+1]
	wg      sync.WaitGroup

	// Per-Apply operands published to the pool workers. Written before the
	// task sends, read by workers, cleared after wg.Wait — the channel send
	// and WaitGroup edges order the accesses.
	x, y, qprev []float64
	beta        float64
}

// spmvPool is the shared pool of persistent SpMV workers: GOMAXPROCS
// goroutines started on first parallel Apply, each parked on the task
// channel. Every ParallelOp in the process shares it, so concurrent solves
// never oversubscribe the machine and an operator's lifetime never leaks a
// goroutine. Tasks are plain (op, block) values — channel sends copy them
// without heap allocation.
var spmvPool struct {
	once  sync.Once
	tasks chan spmvTask
}

type spmvTask struct {
	op    *ParallelOp
	block int
}

func poolStart() {
	n := runtime.GOMAXPROCS(0)
	spmvPool.tasks = make(chan spmvTask, 8*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range spmvPool.tasks {
				t.op.runBlock(t.block)
				t.op.wg.Done()
			}
		}()
	}
}

// NewParallelOp wraps an Op with a parallel Apply using the given number of
// workers. A positive workers count is an explicit request and is honored
// (clamped only to the row count), including on graphs below the heuristic
// thresholds — small-but-dense cases used to be silently serialized.
// workers ≤ 0 selects automatically: GOMAXPROCS capped by the
// MinRowsPerWorker/MinNnzPerWorker heuristics, falling back to a single
// worker when goroutine fan-out would cost more than it saves.
func NewParallelOp(op *Op, workers int) *ParallelOp {
	n := op.Dim()
	if workers <= 0 {
		workers = AutoWorkers(n, len(op.G.Adj))
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	// Balance by nonzeros, not rows: split the adjacency array evenly.
	starts := make([]int, workers+1)
	total := len(op.G.Adj)
	row := 0
	for w := 1; w < workers; w++ {
		target := total * w / workers
		for row < n && int(op.G.Xadj[row]) < target {
			row++
		}
		starts[w] = row
	}
	starts[workers] = n
	return &ParallelOp{op: op, workers: workers, starts: starts}
}

// NewParallelSell wraps a Sell slice operator with a parallel Apply: the
// partition unit is the slice (never splitting a slice's eight lanes),
// balanced by stored entries exactly as NewParallelOp balances rows by
// nonzeros. The semantics of workers match NewParallelOp: positive counts
// are explicit requests clamped only to the slice count, workers ≤ 0
// selects by the AutoWorkers heuristic. The rest rows (final partial
// slice) ride with the last block. Bitwise identity to the serial Sell —
// and so to the CSR Op — holds for any worker count: slices are merely
// distributed, never re-reduced.
func NewParallelSell(s *Sell, workers int) *ParallelOp {
	units := len(s.kmin)
	if workers <= 0 {
		workers = AutoWorkers(s.Dim(), s.nnz)
	}
	if workers > units {
		workers = units
	}
	if workers < 1 {
		workers = 1
	}
	starts := make([]int, workers+1)
	slice := 0
	done := 0
	for w := 1; w < workers; w++ {
		target := s.nnz * w / workers
		for slice < units && done < target {
			done += s.sliceEntries(slice)
			slice++
		}
		starts[w] = slice
	}
	starts[workers] = units
	return &ParallelOp{op: s.op, sell: s, workers: workers, starts: starts}
}

// AutoWorkers is the one worker-count heuristic every layer shares: the
// number of SpMV workers the auto path engages for an operator with the
// given row and stored-nonzero counts — GOMAXPROCS capped by the
// MinRowsPerWorker/MinNnzPerWorker thresholds (one worker per
// MinRowsPerWorker rows OR MinNnzPerWorker nonzeros, whichever grants
// more), never below one. NewParallelOp/NewParallelSell auto paths,
// pipeline solve-concurrency accounting and the service all derive from
// this single function instead of re-implementing the thresholds.
func AutoWorkers(rows, nnz int) int {
	w := runtime.GOMAXPROCS(0)
	byRows := rows / MinRowsPerWorker
	byNnz := nnz / MinNnzPerWorker
	maxW := byRows
	if byNnz > maxW {
		maxW = byNnz
	}
	if w > maxW {
		w = maxW
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Dim returns the number of vertices.
func (p *ParallelOp) Dim() int { return p.op.Dim() }

// Workers returns the number of row blocks the matvec runs across.
func (p *ParallelOp) Workers() int { return p.workers }

// runBlock computes this block's rows of y = L·x (minus beta·qprev when
// qprev is set) from the published operands.
func (p *ParallelOp) runBlock(b int) {
	lo, hi := p.starts[b], p.starts[b+1]
	switch {
	case p.sell == nil && p.qprev == nil:
		p.op.applyRange(p.x, p.y, lo, hi)
	case p.sell == nil:
		p.op.applyAxpyRange(p.x, p.y, p.beta, p.qprev, lo, hi)
	case p.qprev == nil:
		p.sell.applySlices(p.x, p.y, lo, hi)
		if hi == len(p.sell.kmin) {
			p.sell.applyRest(p.x, p.y)
		}
	default:
		p.sell.applyAxpySlices(p.x, p.y, p.beta, p.qprev, lo, hi)
		if hi == len(p.sell.kmin) {
			p.sell.applyAxpyRest(p.x, p.y, p.beta, p.qprev)
		}
	}
}

// dispatch publishes the operands and fans the helper blocks out to the
// persistent pool; the calling goroutine computes block 0.
func (p *ParallelOp) dispatch(x, y []float64, beta float64, qprev []float64) {
	p.x, p.y, p.beta, p.qprev = x, y, beta, qprev
	spmvPool.once.Do(poolStart)
	p.wg.Add(p.workers - 1)
	for b := 1; b < p.workers; b++ {
		spmvPool.tasks <- spmvTask{p, b}
	}
	p.runBlock(0)
	p.wg.Wait()
	p.x, p.y, p.qprev = nil, nil, nil
}

// Apply computes y = L·x using all workers.
func (p *ParallelOp) Apply(x, y []float64) {
	if p.workers == 1 {
		if p.sell != nil {
			p.sell.Apply(x, y)
		} else {
			p.op.Apply(x, y)
		}
		return
	}
	p.dispatch(x, y, 0, nil)
}

// ApplyAxpy computes y = L·x − beta·qprev fused into the same parallel
// pass — the three-term-recurrence form the Lanczos engine consumes (see
// linalg.AxpyApplier).
func (p *ParallelOp) ApplyAxpy(x, y []float64, beta float64, qprev []float64) {
	if p.workers == 1 {
		if p.sell != nil {
			p.sell.ApplyAxpy(x, y, beta, qprev)
		} else {
			p.op.ApplyAxpy(x, y, beta, qprev)
		}
		return
	}
	p.dispatch(x, y, beta, qprev)
}

// RayleighQuotient delegates to the serial implementation (it is called
// once per RQI step, not in the inner loop).
func (p *ParallelOp) RayleighQuotient(x []float64) float64 {
	return p.op.RayleighQuotient(x)
}

// GershgorinBound delegates to the serial implementation.
func (p *ParallelOp) GershgorinBound() float64 { return p.op.GershgorinBound() }

// Interface is the operator surface the eigensolver stack needs: the matvec
// (plain and fused with the Lanczos recurrence), the two Laplacian-specific
// queries and the worker count behind SolveStats.Workers. Op, ParallelOp
// and Weighted all satisfy it.
type Interface interface {
	Dim() int
	Apply(x, y []float64)
	ApplyAxpy(x, y []float64, beta float64, z []float64)
	RayleighQuotient(x []float64) float64
	GershgorinBound() float64
	Workers() int
}

var (
	_ Interface = (*Op)(nil)
	_ Interface = (*ParallelOp)(nil)
	_ Interface = (*Weighted)(nil)
)

// Auto returns the Laplacian of g in the layout and parallel shape the
// heuristics select: the SELL-C-σ slice layout above SellMinRows rows
// (its packing pass amortizes across an eigensolve's many matvecs),
// plain CSR below, with the matvec parallelized when the graph is large
// enough to profit (AutoWorkers falls back to one worker below its
// thresholds). Every layout/parallel combination is bitwise-identical —
// selection is purely a speed decision.
func Auto(g *graph.Graph) Interface {
	return AutoFrom(g, make([]float64, g.N()))
}

// AutoFrom is Auto with a caller-provided degree buffer (see NewFrom).
func AutoFrom(g *graph.Graph, deg []float64) Interface {
	op := NewFrom(g, deg)
	if g.N() >= SellMinRows {
		return NewParallelSell(NewSell(op), 0)
	}
	return NewParallelOp(op, 0)
}
