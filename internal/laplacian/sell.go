package laplacian

import "sort"

// sellC is the slice height C of the SELL-C-σ layout: the number of rows
// whose accumulators the inner kernel carries simultaneously. Eight
// float64 accumulators fit the 16 vector registers of every amd64 level
// with room for the column gathers, and give eight independent
// floating-point dependency chains where the CSR row loop has one.
const sellC = 8

// Layout tunables for the SELL-C-σ slice operator. They are variables so
// deployments can tune the crossover; the defaults are measured on the
// bench grids (see BenchmarkSpMV).
var (
	// SellSigma is the σ sorting-window size: vertices are sorted by
	// degree (descending) within windows of σ consecutive rows before
	// being packed into slices of sellC rows. Larger windows make slices
	// more degree-uniform (less ragged tail) but scatter the x-vector
	// gathers further from the natural row order. Rounded down to a
	// multiple of sellC; minimum sellC.
	SellSigma = 256

	// SellMinRows is the row count below which Auto/AutoFrom keep the
	// plain CSR operator: the slice layout pays a packing pass at
	// construction, which only amortizes across the many matvecs of an
	// eigensolve on graphs with enough rows.
	SellMinRows = 8192
)

// Sell is the Laplacian operator in a cache-blocked SELL-C-σ slice layout
// (Kreutzer et al.'s "Sliced ELLPACK" adapted to the implicit-valued
// Laplacian: diagonal = degree, off-diagonals = −1, so no values array is
// stored at all). Rows are degree-sorted within σ-windows and packed into
// slices of C = 8 rows; each slice stores the first Kmin neighbor columns
// of its rows column-major (Kmin = the slice's minimum degree), so the
// inner loop is a branch-free stride of eight independent gathers and
// subtractions with no padding entries. The few neighbors beyond Kmin in a
// ragged slice follow as per-lane tails, and the ≤ C−1 leftover rows of
// the final partial window run through the scalar CSR kernel.
//
// Sell is bitwise-identical to the CSR Op for every input: each row's
// accumulation visits exactly the same terms in exactly the same order
// (diagonal first, then neighbors in adjacency order) — the layout only
// changes which rows are in flight together, never the per-row reduction
// order. The equivalence property suite in sell_test.go pins this.
type Sell struct {
	op *Op

	rows    []int32 // slice lanes: rows[s*C+lane] = original vertex
	kmin    []int32 // per slice: columns covered by the full phase
	colOff  []int32 // per slice +1: start into cols
	cols    []int32 // full-phase columns, column-major within each slice
	tailOff []int32 // per slice +1: start into tailCols
	tails   []int32 // ragged per-lane tail columns, lane-major
	rest    []int32 // leftover rows (< C in the final window), CSR kernel
	nnz     int     // stored nonzeros, for partitioning and telemetry
}

// NewSell packs op's graph into the SELL-C-σ slice layout. The packing
// pass costs O(n log σ + nnz) and is worth a small number of matvecs of
// memory traffic; use it when the operator will be applied repeatedly
// (every eigensolve does), and prefer Auto/AutoFrom, which select it
// automatically above SellMinRows.
func NewSell(op *Op) *Sell {
	g := op.G
	n := g.N()
	sigma := SellSigma
	if sigma < sellC {
		sigma = sellC
	}
	sigma -= sigma % sellC
	s := &Sell{op: op, nnz: len(g.Adj)}
	nSlices := n / sellC
	s.rows = make([]int32, 0, nSlices*sellC)
	s.kmin = make([]int32, 0, nSlices)
	s.colOff = append(make([]int32, 0, nSlices+1), 0)
	s.tailOff = append(make([]int32, 0, nSlices+1), 0)
	s.cols = make([]int32, 0, len(g.Adj))
	ord := make([]int32, sigma)
	for w0 := 0; w0 < n; w0 += sigma {
		w1 := w0 + sigma
		if w1 > n {
			w1 = n
		}
		win := ord[:w1-w0]
		for i := range win {
			win[i] = int32(w0 + i)
		}
		// Degree-descending, vertex-ascending: a deterministic total order,
		// so the layout (and the parallel partition derived from it) is a
		// pure function of the graph.
		sort.Slice(win, func(i, j int) bool {
			di, dj := g.Degree(int(win[i])), g.Degree(int(win[j]))
			if di != dj {
				return di > dj
			}
			return win[i] < win[j]
		})
		full := len(win) - len(win)%sellC
		for i := 0; i < full; i += sellC {
			lanes := win[i : i+sellC]
			kmin := g.Degree(int(lanes[sellC-1]))
			s.rows = append(s.rows, lanes...)
			s.kmin = append(s.kmin, int32(kmin))
			for k := 0; k < kmin; k++ {
				for _, rv := range lanes {
					s.cols = append(s.cols, g.Adj[int(g.Xadj[rv])+k])
				}
			}
			s.colOff = append(s.colOff, int32(len(s.cols)))
			for _, rv := range lanes {
				s.tails = append(s.tails, g.Adj[int(g.Xadj[rv])+kmin:g.Xadj[rv+1]]...)
			}
			s.tailOff = append(s.tailOff, int32(len(s.tails)))
		}
		s.rest = append(s.rest, win[full:]...)
	}
	return s
}

// Dim returns the number of vertices.
func (s *Sell) Dim() int { return s.op.Dim() }

// Workers reports the serial operator's single block.
func (s *Sell) Workers() int { return 1 }

// Apply computes y = L·x through the slice layout.
//
//envlint:noalloc
//envlint:readonly x
func (s *Sell) Apply(x, y []float64) {
	s.applySlices(x, y, 0, len(s.kmin))
	s.applyRest(x, y)
}

// ApplyAxpy computes y = L·x − beta·qprev fused into the slice pass (see
// Op.ApplyAxpy).
//
//envlint:noalloc
//envlint:readonly x qprev
func (s *Sell) ApplyAxpy(x, y []float64, beta float64, qprev []float64) {
	s.applyAxpySlices(x, y, beta, qprev, 0, len(s.kmin))
	s.applyAxpyRest(x, y, beta, qprev)
}

// applySlices computes slices lo:hi of y = L·x — the block kernel the
// parallel wrapper distributes. Each slice runs eight rows' accumulations
// as independent chains: a full phase covering the slice's common Kmin
// columns (branch-free, column-major gathers), then the ragged per-lane
// tails continued in place on y — the same per-row term order as CSR.
//
//envlint:noalloc
//envlint:readonly x
func (s *Sell) applySlices(x, y []float64, lo, hi int) {
	deg := s.op.deg
	cols := s.cols
	for si := lo; si < hi; si++ {
		r := s.rows[si*sellC : si*sellC+sellC : si*sellC+sellC]
		r0, r1, r2, r3 := r[0], r[1], r[2], r[3]
		r4, r5, r6, r7 := r[4], r[5], r[6], r[7]
		a0 := deg[r0] * x[r0]
		a1 := deg[r1] * x[r1]
		a2 := deg[r2] * x[r2]
		a3 := deg[r3] * x[r3]
		a4 := deg[r4] * x[r4]
		a5 := deg[r5] * x[r5]
		a6 := deg[r6] * x[r6]
		a7 := deg[r7] * x[r7]
		p := int(s.colOff[si])
		for e := int(s.colOff[si+1]); p < e; p += sellC {
			c := cols[p : p+sellC : p+sellC]
			a0 -= x[c[0]]
			a1 -= x[c[1]]
			a2 -= x[c[2]]
			a3 -= x[c[3]]
			a4 -= x[c[4]]
			a5 -= x[c[5]]
			a6 -= x[c[6]]
			a7 -= x[c[7]]
		}
		y[r0] = a0
		y[r1] = a1
		y[r2] = a2
		y[r3] = a3
		y[r4] = a4
		y[r5] = a5
		y[r6] = a6
		y[r7] = a7
		if s.tailOff[si+1] > s.tailOff[si] {
			s.tailSlice(x, y, si, r)
		}
	}
}

// tailSlice finishes the ragged lanes of slice si: each lane with more
// than Kmin neighbors continues its accumulation in place on y, visiting
// its remaining columns in adjacency order. Lanes are degree-descending,
// so the first lane with no tail ends the scan.
//
//envlint:noalloc
//envlint:readonly x r
func (s *Sell) tailSlice(x, y []float64, si int, r []int32) {
	g := s.op.G
	k := int(s.kmin[si])
	t := int(s.tailOff[si])
	for _, rv := range r {
		ext := int(g.Xadj[rv+1]) - int(g.Xadj[rv]) - k
		if ext <= 0 {
			break
		}
		a := y[rv]
		for e := 0; e < ext; e++ {
			a -= x[s.tails[t]]
			t++
		}
		y[rv] = a
	}
}

// applyRest runs the scalar CSR kernel over the leftover rows of the
// final partial window (at most sellC−1 rows).
//
//envlint:noalloc
//envlint:readonly x
func (s *Sell) applyRest(x, y []float64) {
	g := s.op.G
	for _, v := range s.rest {
		a := s.op.deg[v] * x[v]
		for _, w := range g.Neighbors(int(v)) {
			a -= x[w]
		}
		y[v] = a
	}
}

// applyAxpySlices is applySlices with the Lanczos recurrence term fused:
// each lane seeds deg·x − beta·qprev, exactly as the CSR kernel does.
//
//envlint:noalloc
//envlint:readonly x qprev
func (s *Sell) applyAxpySlices(x, y []float64, beta float64, qprev []float64, lo, hi int) {
	deg := s.op.deg
	cols := s.cols
	for si := lo; si < hi; si++ {
		r := s.rows[si*sellC : si*sellC+sellC : si*sellC+sellC]
		r0, r1, r2, r3 := r[0], r[1], r[2], r[3]
		r4, r5, r6, r7 := r[4], r[5], r[6], r[7]
		a0 := deg[r0]*x[r0] - beta*qprev[r0]
		a1 := deg[r1]*x[r1] - beta*qprev[r1]
		a2 := deg[r2]*x[r2] - beta*qprev[r2]
		a3 := deg[r3]*x[r3] - beta*qprev[r3]
		a4 := deg[r4]*x[r4] - beta*qprev[r4]
		a5 := deg[r5]*x[r5] - beta*qprev[r5]
		a6 := deg[r6]*x[r6] - beta*qprev[r6]
		a7 := deg[r7]*x[r7] - beta*qprev[r7]
		p := int(s.colOff[si])
		for e := int(s.colOff[si+1]); p < e; p += sellC {
			c := cols[p : p+sellC : p+sellC]
			a0 -= x[c[0]]
			a1 -= x[c[1]]
			a2 -= x[c[2]]
			a3 -= x[c[3]]
			a4 -= x[c[4]]
			a5 -= x[c[5]]
			a6 -= x[c[6]]
			a7 -= x[c[7]]
		}
		y[r0] = a0
		y[r1] = a1
		y[r2] = a2
		y[r3] = a3
		y[r4] = a4
		y[r5] = a5
		y[r6] = a6
		y[r7] = a7
		if s.tailOff[si+1] > s.tailOff[si] {
			s.tailSlice(x, y, si, r)
		}
	}
}

// applyAxpyRest is applyRest with the recurrence term fused.
//
//envlint:noalloc
//envlint:readonly x qprev
func (s *Sell) applyAxpyRest(x, y []float64, beta float64, qprev []float64) {
	g := s.op.G
	for _, v := range s.rest {
		a := s.op.deg[v]*x[v] - beta*qprev[v]
		for _, w := range g.Neighbors(int(v)) {
			a -= x[w]
		}
		y[v] = a
	}
}

// RayleighQuotient delegates to the CSR operator (called once per RQI
// step, not in the inner loop).
func (s *Sell) RayleighQuotient(x []float64) float64 { return s.op.RayleighQuotient(x) }

// GershgorinBound delegates to the CSR operator.
func (s *Sell) GershgorinBound() float64 { return s.op.GershgorinBound() }

var _ Interface = (*Sell)(nil)

// sliceEntries reports the stored entries (full-phase + tail) of slice
// si — the cost weight the nnz-balanced parallel partition uses.
func (s *Sell) sliceEntries(si int) int {
	return int(s.colOff[si+1]-s.colOff[si]) + int(s.tailOff[si+1]-s.tailOff[si])
}
