package laplacian

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		g := graph.Grid(120, 110) // big enough to engage multiple workers
		op := New(g)
		pop := NewParallelOp(op, workers)
		if pop.Dim() != g.N() {
			t.Fatalf("dim mismatch")
		}
		n := g.N()
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i) * 0.37)
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		op.Apply(x, y1)
		pop.Apply(x, y2)
		for i := range y1 {
			if y1[i] != y2[i] {
				t.Fatalf("workers=%d: mismatch at %d: %v vs %v", workers, i, y1[i], y2[i])
			}
		}
	}
}

// TestParallelPropertyApplyMatchesSerial is the satellite property test:
// on a suite of random graphs, every worker count 1..8 (all through the
// persistent pool) reproduces the serial Apply and ApplyAxpy bitwise, and
// the row partition covers all rows disjointly.
func TestParallelPropertyApplyMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 500 + int(seed)*700
		g := graph.Random(n, 3*n, seed)
		op := New(g)
		x := make([]float64, n)
		q := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i)*0.61 + float64(seed))
			q[i] = math.Cos(float64(i) * 0.23)
		}
		want := make([]float64, n)
		wantAxpy := make([]float64, n)
		op.Apply(x, want)
		op.ApplyAxpy(x, wantAxpy, 0.75, q)
		for workers := 1; workers <= 8; workers++ {
			pop := NewParallelOp(op, workers)
			if pop.Workers() != workers {
				t.Fatalf("seed %d: explicit request for %d workers got %d", seed, workers, pop.Workers())
			}
			// Partition properties: starts from 0 to n, monotone — blocks
			// disjoint and jointly exhaustive.
			if pop.starts[0] != 0 || pop.starts[workers] != n {
				t.Fatalf("seed %d workers %d: partition endpoints %v", seed, workers, pop.starts)
			}
			for w := 1; w <= workers; w++ {
				if pop.starts[w] < pop.starts[w-1] {
					t.Fatalf("seed %d workers %d: partition not monotone: %v", seed, workers, pop.starts)
				}
			}
			got := make([]float64, n)
			pop.Apply(x, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d: Apply mismatch at row %d: %v vs %v",
						seed, workers, i, got[i], want[i])
				}
			}
			pop.ApplyAxpy(x, got, 0.75, q)
			for i := range wantAxpy {
				if got[i] != wantAxpy[i] {
					t.Fatalf("seed %d workers %d: ApplyAxpy mismatch at row %d: %v vs %v",
						seed, workers, i, got[i], wantAxpy[i])
				}
			}
		}
	}
}

// TestParallelExplicitWorkersHonored pins the satellite fix: an explicit
// workers request is honored even on graphs far below the
// rows-per-worker heuristic (previously silently serialized), clamped only
// by the row count; the auto path (workers ≤ 0) keeps its fallback.
func TestParallelExplicitWorkersHonored(t *testing.T) {
	g := graph.Grid(10, 10) // 100 rows — well under MinRowsPerWorker
	pop := NewParallelOp(New(g), 8)
	if pop.Workers() != 8 {
		t.Fatalf("explicit 8 workers on a small graph got %d", pop.Workers())
	}
	x := make([]float64, 100)
	y := make([]float64, 100)
	x[5] = 1
	pop.Apply(x, y)
	if y[5] == 0 {
		t.Fatal("apply did nothing")
	}
	// More workers than rows clamps to the row count.
	tiny := graph.Path(3)
	if w := NewParallelOp(New(tiny), 8).Workers(); w != 3 {
		t.Fatalf("8 workers on P3 got %d, want 3", w)
	}
	// The auto path still falls back to one worker below the thresholds.
	if w := NewParallelOp(New(g), 0).Workers(); w != 1 {
		t.Fatalf("auto on a small graph got %d workers, want 1", w)
	}
}

// TestParallelAutoNnzHeuristic checks the auto path's nonzero term: a
// small-but-dense graph (few rows, many nonzeros) may parallelize even
// though its row count alone would serialize it.
func TestParallelAutoNnzHeuristic(t *testing.T) {
	defer func(r, z int) { MinRowsPerWorker, MinNnzPerWorker = r, z }(MinRowsPerWorker, MinNnzPerWorker)
	MinRowsPerWorker = 1 << 30 // rows alone would always serialize
	MinNnzPerWorker = 1000
	g := graph.Complete(60) // 60 rows, 3540 stored nonzeros
	pop := NewParallelOp(New(g), 0)
	want := len(g.Adj) / MinNnzPerWorker
	if maxp := runtime.GOMAXPROCS(0); want > maxp {
		want = maxp
	}
	if want < 1 {
		want = 1
	}
	if pop.Workers() != want {
		t.Fatalf("auto on K60 got %d workers, want %d", pop.Workers(), want)
	}
}

// TestParallelConcurrentSolvesSharePool drives many concurrent operators
// through the shared persistent pool at once — the -race job's coverage
// that per-op operand publication and the pool's task channel are properly
// synchronized.
func TestParallelConcurrentSolvesSharePool(t *testing.T) {
	g := graph.Grid(90, 90)
	op := New(g)
	n := g.N()
	x := make([]float64, n)
	q := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.11)
		q[i] = float64(i%7) - 3
	}
	want := make([]float64, n)
	op.ApplyAxpy(x, want, 1.25, q)

	var wg sync.WaitGroup
	for solver := 0; solver < 6; solver++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			pop := NewParallelOp(op, workers)
			y := make([]float64, n)
			for rep := 0; rep < 20; rep++ {
				pop.ApplyAxpy(x, y, 1.25, q)
				for i := range want {
					if y[i] != want[i] {
						t.Errorf("workers=%d rep=%d: mismatch at %d", workers, rep, i)
						return
					}
				}
			}
		}(2 + solver%4)
	}
	wg.Wait()
}

func TestParallelPartitionCoversAllRows(t *testing.T) {
	g := graph.Random(50000, 100000, 1)
	pop := NewParallelOp(New(g), 6)
	if pop.starts[0] != 0 || pop.starts[len(pop.starts)-1] != g.N() {
		t.Fatalf("partition endpoints wrong: %v", pop.starts)
	}
	for w := 1; w < len(pop.starts); w++ {
		if pop.starts[w] < pop.starts[w-1] {
			t.Fatalf("partition not monotone: %v", pop.starts)
		}
	}
}

func TestParallelDelegates(t *testing.T) {
	g := graph.Grid(60, 60)
	op := New(g)
	pop := NewParallelOp(op, 2)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i % 11)
	}
	if pop.RayleighQuotient(x) != op.RayleighQuotient(x) {
		t.Fatal("RayleighQuotient differs")
	}
	if pop.GershgorinBound() != op.GershgorinBound() {
		t.Fatal("GershgorinBound differs")
	}
}

// BenchmarkSpMV is the layout × parallelism SpMV ablation the
// BENCH_pipeline.json artifact carries: the same Laplacian matvec at
// n ≈ 20k and n ≈ 200k rows, in the CSR row layout and the SELL-C-σ
// slice layout, serially and through the persistent worker pool under
// the auto heuristics. CI requires all eight rows to be present
// (cmd/benchjson -require) and gates the csr-vs-sell serial ratio at
// n=200k. The "workers" metric on the parallel rows records the fan-out
// actually engaged: on a single-core host the auto path selects 1 worker
// and the parallel rows measure the same serial kernel (any delta is run
// noise) — the parallel axis only carries signal where workers > 1; the
// layout axis carries signal everywhere.
func BenchmarkSpMV(b *testing.B) {
	sizes := []struct {
		name string
		g    *graph.Graph
	}{
		{"n20k", graph.Grid(141, 141)},  // 19881 rows
		{"n200k", graph.Grid(450, 450)}, // 202500 rows
	}
	for _, sz := range sizes {
		n := sz.g.N()
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i % 17)
		}
		op := New(sz.g)
		sell := NewSell(op)
		b.Run("csr/serial/"+sz.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op.Apply(x, y)
			}
		})
		b.Run("sell/serial/"+sz.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sell.Apply(x, y)
			}
		})
		pop := NewParallelOp(op, 0)
		b.Run("csr/parallel/"+sz.name, func(b *testing.B) {
			b.ReportMetric(float64(pop.Workers()), "workers")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pop.Apply(x, y)
			}
		})
		psell := NewParallelSell(sell, 0)
		b.Run("sell/parallel/"+sz.name, func(b *testing.B) {
			b.ReportMetric(float64(psell.Workers()), "workers")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				psell.Apply(x, y)
			}
		})
	}
}
