package laplacian

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		g := graph.Grid(120, 110) // big enough to engage multiple workers
		op := New(g)
		pop := NewParallelOp(op, workers)
		if pop.Dim() != g.N() {
			t.Fatalf("dim mismatch")
		}
		n := g.N()
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i) * 0.37)
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		op.Apply(x, y1)
		pop.Apply(x, y2)
		for i := range y1 {
			if y1[i] != y2[i] {
				t.Fatalf("workers=%d: mismatch at %d: %v vs %v", workers, i, y1[i], y2[i])
			}
		}
	}
}

func TestParallelSmallGraphFallsBack(t *testing.T) {
	g := graph.Grid(10, 10)
	pop := NewParallelOp(New(g), 8)
	if pop.workers != 1 {
		t.Fatalf("small graph got %d workers", pop.workers)
	}
	x := make([]float64, 100)
	y := make([]float64, 100)
	x[5] = 1
	pop.Apply(x, y) // must not panic
	if y[5] == 0 {
		t.Fatal("apply did nothing")
	}
}

func TestParallelPartitionCoversAllRows(t *testing.T) {
	g := graph.Random(50000, 100000, 1)
	pop := NewParallelOp(New(g), 6)
	if pop.starts[0] != 0 || pop.starts[len(pop.starts)-1] != g.N() {
		t.Fatalf("partition endpoints wrong: %v", pop.starts)
	}
	for w := 1; w < len(pop.starts); w++ {
		if pop.starts[w] < pop.starts[w-1] {
			t.Fatalf("partition not monotone: %v", pop.starts)
		}
	}
}

func TestParallelDelegates(t *testing.T) {
	g := graph.Grid(60, 60)
	op := New(g)
	pop := NewParallelOp(op, 2)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i % 11)
	}
	if pop.RayleighQuotient(x) != op.RayleighQuotient(x) {
		t.Fatal("RayleighQuotient differs")
	}
	if pop.GershgorinBound() != op.GershgorinBound() {
		t.Fatal("GershgorinBound differs")
	}
}

func BenchmarkApplySerial(b *testing.B) {
	g := graph.Grid3D(80, 80, 40)
	op := New(g)
	x := make([]float64, g.N())
	y := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(x, y)
	}
}

func BenchmarkApplyParallel(b *testing.B) {
	g := graph.Grid3D(80, 80, 40)
	op := NewParallelOp(New(g), 0)
	x := make([]float64, g.N())
	y := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(x, y)
	}
}
