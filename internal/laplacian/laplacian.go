// Package laplacian implements the discrete Laplacian matrix Q(G) = D − B
// of §2.2 of the paper as an implicit operator over the adjacency graph,
// together with the spectral bounds of Theorem 2.2.
//
// Q is symmetric positive semidefinite with Q·1 = 0; for a connected graph
// the second smallest eigenvalue λ2 is positive and its eigenvector is the
// Fiedler vector that drives the spectral ordering.
package laplacian

import (
	"repro/internal/graph"
	"repro/internal/linalg"
)

// Op is the Laplacian of a graph as a linalg.Operator. Apply costs
// O(n + m) and vectorizes trivially — the property the paper highlights
// when contrasting the spectral algorithm with the BFS-based orderings.
type Op struct {
	G   *graph.Graph
	deg []float64
}

// New returns the Laplacian operator of g, precomputing degrees.
func New(g *graph.Graph) *Op {
	return NewFrom(g, make([]float64, g.N()))
}

// NewFrom is New with a caller-provided degree buffer of length g.N(). The
// buffer is filled and retained by the operator, letting the multilevel
// hierarchy carve its per-level operators out of one scratch arena instead
// of allocating per level. The caller must not reuse deg while the operator
// is live.
func NewFrom(g *graph.Graph, deg []float64) *Op {
	for v := range deg {
		deg[v] = float64(g.Degree(v))
	}
	return &Op{G: g, deg: deg}
}

// Dim returns the number of vertices.
func (o *Op) Dim() int { return o.G.N() }

// Apply computes y = L·x with y[v] = deg(v)·x[v] − Σ_{w∼v} x[w].
//
//envlint:noalloc
//envlint:readonly x
func (o *Op) Apply(x, y []float64) {
	o.applyRange(x, y, 0, o.G.N())
}

// ApplyAxpy computes y = L·x − beta·qprev in one pass over the rows — the
// fused three-term-recurrence matvec of linalg.AxpyApplier that saves the
// Lanczos engine a separate Axpy sweep over y.
//
//envlint:noalloc
//envlint:readonly x qprev
func (o *Op) ApplyAxpy(x, y []float64, beta float64, qprev []float64) {
	o.applyAxpyRange(x, y, beta, qprev, 0, o.G.N())
}

// Workers reports the serial operator's single row block.
func (o *Op) Workers() int { return 1 }

// applyRange computes rows lo:hi of y = L·x — the block kernel ParallelOp
// distributes across its workers.
//
//envlint:noalloc
//envlint:readonly x
func (o *Op) applyRange(x, y []float64, lo, hi int) {
	g := o.G
	for v := lo; v < hi; v++ {
		s := o.deg[v] * x[v]
		for _, w := range g.Neighbors(v) {
			s -= x[w]
		}
		y[v] = s
	}
}

// applyAxpyRange computes rows lo:hi of y = L·x − beta·qprev.
//
//envlint:noalloc
//envlint:readonly x qprev
func (o *Op) applyAxpyRange(x, y []float64, beta float64, qprev []float64, lo, hi int) {
	g := o.G
	for v := lo; v < hi; v++ {
		s := o.deg[v]*x[v] - beta*qprev[v]
		for _, w := range g.Neighbors(v) {
			s -= x[w]
		}
		y[v] = s
	}
}

// RayleighQuotient returns xᵀLx / xᵀx, using the edge form
// xᵀLx = Σ_{(u,v)∈E} (x_u − x_v)², which is exact and cheaper than a
// matvec plus dot product.
//
//envlint:noalloc
//envlint:readonly x
func (o *Op) RayleighQuotient(x []float64) float64 {
	g := o.G
	var num float64
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				d := x[v] - x[w]
				num += d * d
			}
		}
	}
	den := linalg.Dot(x, x)
	if den == 0 {
		return 0
	}
	return num / den
}

// GershgorinBound returns 2·Δ, an upper bound on the largest Laplacian
// eigenvalue λn (row sums of |L| are at most 2·deg).
func (o *Op) GershgorinBound() float64 {
	return 2 * float64(o.G.MaxDegree())
}

// Dense materializes L as a dense matrix — only for small graphs (tests,
// the coarsest multilevel level).
func Dense(g *graph.Graph) *linalg.Dense {
	n := g.N()
	m := linalg.NewDense(n)
	for v := 0; v < n; v++ {
		m.Set(v, v, float64(g.Degree(v)))
		for _, w := range g.Neighbors(v) {
			m.Set(v, int(w), -1)
		}
	}
	return m
}

// Bounds holds the Theorem 2.2 bounds on the minimum envelope size and
// minimum envelope work in terms of λ2 and λn.
type Bounds struct {
	EsizeLower, EsizeUpper float64
	EworkLower, EworkUpper float64
}

// Theorem22 evaluates eigenvalue bounds on the minimum envelope size and
// minimum envelope work in the spirit of Theorem 2.2. The scanned paper's
// prefactors are illegible, so we use the variants provable from the
// quadratic-assignment argument of §2.3. Write ℓ = n(n²−1)/12 (the squared
// norm of the centered permutation vectors for odd n, a lower bound on it
// for even n) and Δ = max degree. For every permutation vector p ⊥ 1:
//
//	λ2·ℓ ≤ pᵀLp = σ2(p) ≤ λn·n(n+1)(n+2)/12
//
// combined with Theorem 2.1's per-ordering sandwiches
// (Ework ≤ σ2 ≤ Δ·Ework, Esize ≤ σ1 ≤ σ2, σ1 ≥ σ2/(n−1)) gives
//
//	Ework_min ≥ λ2·ℓ/Δ            Ework_min ≤ λn·n(n+1)(n+2)/12
//	Esize_min ≥ λ2·n(n+1)/(12Δ)   Esize_min ≤ λn·n(n+1)(n+2)/12
//
// The lower bounds indicate how close a computed ordering is to optimal.
func Theorem22(n int, maxDeg int, lambda2, lambdaN float64) Bounds {
	fn := float64(n)
	ell := fn * (fn*fn - 1) / 12
	upper := lambdaN * fn * (fn + 1) * (fn + 2) / 12
	d := float64(maxDeg)
	if d == 0 {
		d = 1
	}
	return Bounds{
		EsizeLower: lambda2 * fn * (fn + 1) / (12 * d),
		EsizeUpper: upper,
		EworkLower: lambda2 * ell / d,
		EworkUpper: upper,
	}
}
