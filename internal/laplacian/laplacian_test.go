package laplacian

import (
	"math"
	"testing"

	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/linalg"
)

func TestApplyMatchesDense(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(25, 40, seed)
		op := New(g)
		d := Dense(g)
		x := make([]float64, g.N())
		for i := range x {
			x[i] = math.Sin(float64(i)*1.7 + float64(seed))
		}
		y1 := make([]float64, g.N())
		y2 := make([]float64, g.N())
		op.Apply(x, y1)
		d.MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12 {
				t.Fatalf("seed %d: Apply mismatch at %d: %v vs %v", seed, i, y1[i], y2[i])
			}
		}
	}
}

func TestNullVector(t *testing.T) {
	g := graph.Grid(5, 4)
	op := New(g)
	x := make([]float64, g.N())
	linalg.Fill(x, 3.25)
	y := make([]float64, g.N())
	op.Apply(x, y)
	if n := linalg.Nrm2(y); n > 1e-12 {
		t.Fatalf("L·1 = %v ≠ 0", n)
	}
}

func TestRayleighQuotientMatchesQuadForm(t *testing.T) {
	g := graph.Random(30, 60, 3)
	op := New(g)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, g.N())
	op.Apply(x, y)
	want := linalg.Dot(x, y) / linalg.Dot(x, x)
	got := op.RayleighQuotient(x)
	if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
		t.Fatalf("RQ = %v, want %v", got, want)
	}
}

func TestRayleighQuotientZeroVector(t *testing.T) {
	g := graph.Path(4)
	if rq := New(g).RayleighQuotient(make([]float64, 4)); rq != 0 {
		t.Fatalf("RQ of zero vector = %v", rq)
	}
}

func TestSpectrumKnownGraphs(t *testing.T) {
	cases := []struct {
		name        string
		g           *graph.Graph
		wantLambda2 float64
	}{
		{"P8", graph.Path(8), 4 * math.Pow(math.Sin(math.Pi/16), 2)},
		{"C10", graph.Cycle(10), 2 - 2*math.Cos(2*math.Pi/10)},
		{"K6", graph.Complete(6), 6},
		{"Star9", graph.Star(9), 1},
		{"Grid4x3", graph.Grid(4, 3), 4 * math.Pow(math.Sin(math.Pi/8), 2)},
	}
	for _, tc := range cases {
		eig, _ := linalg.SymEig(Dense(tc.g))
		if math.Abs(eig[0]) > 1e-10 {
			t.Errorf("%s: λ1 = %v ≠ 0", tc.name, eig[0])
		}
		if math.Abs(eig[1]-tc.wantLambda2) > 1e-9 {
			t.Errorf("%s: λ2 = %v, want %v", tc.name, eig[1], tc.wantLambda2)
		}
	}
}

func TestGershgorinBound(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Random(18, 30, seed)
		eig, _ := linalg.SymEig(Dense(g))
		bound := New(g).GershgorinBound()
		if eig[len(eig)-1] > bound+1e-9 {
			t.Fatalf("seed %d: λn = %v > Gershgorin %v", seed, eig[len(eig)-1], bound)
		}
	}
}

// Theorem 2.2 sandwich versus the exhaustive optimum on tiny graphs.
func TestTheorem22AgainstExhaustive(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(6),
		graph.Cycle(6),
		graph.Complete(5),
		graph.Star(6),
		graph.Grid(3, 2),
		graph.Random(7, 8, 1),
	}
	for gi, g := range graphs {
		if !graph.IsConnected(g) {
			t.Fatalf("case %d disconnected", gi)
		}
		eig, _ := linalg.SymEig(Dense(g))
		n := g.N()
		b := Theorem22(n, g.MaxDegree(), eig[1], eig[n-1])
		minEsize, minEwork := envelope.ExhaustiveMin(g)
		if float64(minEsize) < b.EsizeLower-1e-9 {
			t.Errorf("case %d: Esize_min %d < lower bound %v", gi, minEsize, b.EsizeLower)
		}
		if float64(minEsize) > b.EsizeUpper+1e-9 {
			t.Errorf("case %d: Esize_min %d > upper bound %v", gi, minEsize, b.EsizeUpper)
		}
		if float64(minEwork) < b.EworkLower-1e-9 {
			t.Errorf("case %d: Ework_min %d < lower bound %v", gi, minEwork, b.EworkLower)
		}
		if float64(minEwork) > b.EworkUpper+1e-9 {
			t.Errorf("case %d: Ework_min %d > upper bound %v", gi, minEwork, b.EworkUpper)
		}
	}
}

func TestTheorem22ZeroDegreeGuard(t *testing.T) {
	b := Theorem22(3, 0, 0, 0)
	if math.IsNaN(b.EsizeLower) || math.IsInf(b.EsizeLower, 0) {
		t.Fatal("degenerate bounds")
	}
}

func BenchmarkApply(b *testing.B) {
	g := graph.Grid(200, 200)
	op := New(g)
	x := make([]float64, g.N())
	y := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i % 13)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(x, y)
	}
}
