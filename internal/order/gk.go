package order

import (
	"container/heap"

	"repro/internal/graph"
	"repro/internal/perm"
)

// GK computes the Gibbs–King ordering (Gibbs' "hybrid profile reduction"
// Algorithm 509, as implemented by Lewis in TOMS 582): the GPS
// pseudo-diameter and level-structure combination, but with King's
// minimum-frontwidth-growth numbering inside each level, then reversal.
// GK is the envelope champion among the local algorithms in the paper.
func GK(g *graph.Graph) perm.Perm {
	return overComponents(g, gkComponent)
}

func gkComponent(g *graph.Graph) []int32 {
	n := g.N()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int32{0}
	}
	c := diameterAndCombine(g)
	return gkNumber(g, c)
}

func gkNumber(g *graph.Graph, c *combined) []int32 {
	order := numberByKing(g, c)
	reverse(order)
	return order
}

// GKFromDiameter is the Gibbs–King ordering of the connected graph g built
// on a precomputed pseudo-diameter (see GPSFromDiameter). The level
// structures are read, never modified.
func GKFromDiameter(g *graph.Graph, u, v int, lsU, lsV *graph.LevelStructure) perm.Perm {
	if g.N() == 1 {
		return perm.Perm{0}
	}
	return perm.Perm(gkNumber(g, combineLevelStructures(g, u, v, lsU, lsV)))
}

// kingState maintains King's greedy criterion incrementally.
//
// grow[w] = number of unnumbered neighbors of w not yet in the front: the
// exact number of vertices that numbering w would add to the front. Placing
// a vertex moves its unnumbered neighbors into the front, which decrements
// grow for *their* neighbors; each edge is touched O(1) times overall, so
// the total maintenance cost is O(m) plus heap traffic.
type kingState struct {
	g        *graph.Graph
	numbered []bool
	inFront  []bool
	grow     []int32
	order    []int32
}

func newKingState(g *graph.Graph) *kingState {
	n := g.N()
	ks := &kingState{
		g:        g,
		numbered: make([]bool, n),
		inFront:  make([]bool, n),
		grow:     make([]int32, n),
		order:    make([]int32, 0, n),
	}
	for v := 0; v < n; v++ {
		ks.grow[v] = int32(g.Degree(v))
	}
	return ks
}

// place numbers v, updating the front and the grow counters. It returns
// the vertices whose grow value changed (for heap re-push).
func (ks *kingState) place(v int32, touched *[]int32) {
	g := ks.g
	ks.numbered[v] = true
	wasInFront := ks.inFront[v]
	ks.inFront[v] = false
	ks.order = append(ks.order, v)
	if !wasInFront {
		// v skipped the front entirely: it still counted in its neighbors'
		// grow, so remove it now.
		for _, w := range g.Neighbors(int(v)) {
			if !ks.numbered[w] {
				ks.grow[w]--
				*touched = append(*touched, w)
			}
		}
	}
	for _, u := range g.Neighbors(int(v)) {
		if ks.numbered[u] || ks.inFront[u] {
			continue
		}
		// u enters the front: u no longer counts toward grow of its
		// unnumbered neighbors.
		ks.inFront[u] = true
		*touched = append(*touched, u)
		for _, x := range g.Neighbors(int(u)) {
			if !ks.numbered[x] {
				ks.grow[x]--
				*touched = append(*touched, x)
			}
		}
	}
}

// kingItem is a lazily-invalidated heap entry ordered by (grow, degree,
// label).
type kingItem struct {
	grow int32
	deg  int32
	v    int32
}

type kingHeap []kingItem

func (h kingHeap) Len() int { return len(h) }
func (h kingHeap) Less(i, j int) bool {
	if h[i].grow != h[j].grow {
		return h[i].grow < h[j].grow
	}
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].v < h[j].v
}
func (h kingHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *kingHeap) Push(x any)   { *h = append(*h, x.(kingItem)) }
func (h *kingHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// numberByKing numbers the combined level structure level by level; inside
// a level it repeatedly numbers, among unnumbered level vertices in the
// front (or all remaining level vertices when the front misses the level),
// the one whose numbering introduces the fewest new vertices into the
// front — King's greedy wavefront rule. Ties break by degree then label.
func numberByKing(g *graph.Graph, c *combined) []int32 {
	ks := newKingState(g)
	var touched []int32
	ks.place(int32(c.start), &touched)

	for l := 0; l < c.k; l++ {
		level := c.levels[l]
		inLevel := func(w int32) bool { return c.levelOf[w] == int32(l) }
		remaining := 0
		h := make(kingHeap, 0, len(level))
		for _, w := range level {
			if !ks.numbered[w] {
				remaining++
				if ks.inFront[w] {
					h = append(h, kingItem{ks.grow[w], int32(g.Degree(int(w))), w})
				}
			}
		}
		heap.Init(&h)
		for remaining > 0 {
			var pick int32 = -1
			for h.Len() > 0 {
				it := heap.Pop(&h).(kingItem)
				if ks.numbered[it.v] || !ks.inFront[it.v] || ks.grow[it.v] != it.grow {
					continue // stale entry
				}
				pick = it.v
				break
			}
			if pick < 0 {
				// The front does not reach this level (level-internal
				// disconnection): seed with the min-(grow,deg) remaining
				// level vertex.
				for _, w := range level {
					if ks.numbered[w] {
						continue
					}
					if pick < 0 || ks.grow[w] < ks.grow[pick] ||
						(ks.grow[w] == ks.grow[pick] && better(g, w, pick)) {
						pick = w
					}
				}
			}
			touched = touched[:0]
			ks.place(pick, &touched)
			remaining--
			for _, w := range touched {
				if !ks.numbered[w] && ks.inFront[w] && inLevel(w) {
					heap.Push(&h, kingItem{ks.grow[w], int32(g.Degree(int(w))), w})
				}
			}
		}
	}
	return ks.order
}

// better is the shared tie-break: lower degree, then lower label. A
// negative incumbent always loses.
func better(g *graph.Graph, w, incumbent int32) bool {
	if incumbent < 0 {
		return true
	}
	dw, di := g.Degree(int(w)), g.Degree(int(incumbent))
	if dw != di {
		return dw < di
	}
	return w < incumbent
}

// King computes King's profile-reduction ordering on the whole graph
// (no level structure): from a pseudo-peripheral root, always number the
// front vertex introducing the fewest new front vertices, then reverse.
// Provided both as a baseline in its own right and as the reference the
// GK within-level variant is tested against.
func King(g *graph.Graph) perm.Perm {
	return overComponents(g, kingComponent)
}

func kingComponent(g *graph.Graph) []int32 {
	if g.N() == 0 {
		return nil
	}
	root, _ := graph.PseudoPeripheral(g, 0)
	return kingRooted(g, root)
}

// KingFromRoot is King's ordering of the connected graph g from a
// precomputed pseudo-peripheral root (see CuthillMcKeeFromRootWS).
func KingFromRoot(g *graph.Graph, root int) perm.Perm {
	return perm.Perm(kingRooted(g, root))
}

func kingRooted(g *graph.Graph, root int) []int32 {
	n := g.N()
	ks := newKingState(g)
	var touched []int32
	h := make(kingHeap, 0, n)
	ks.place(int32(root), &touched)
	for _, w := range touched {
		if !ks.numbered[w] && ks.inFront[w] {
			heap.Push(&h, kingItem{ks.grow[w], int32(g.Degree(int(w))), w})
		}
	}
	for len(ks.order) < n {
		var pick int32 = -1
		for h.Len() > 0 {
			it := heap.Pop(&h).(kingItem)
			if ks.numbered[it.v] || !ks.inFront[it.v] || ks.grow[it.v] != it.grow {
				continue
			}
			pick = it.v
			break
		}
		if pick < 0 {
			break // disconnected remainder; overComponents prevents this
		}
		touched = touched[:0]
		ks.place(pick, &touched)
		for _, w := range touched {
			if !ks.numbered[w] && ks.inFront[w] {
				heap.Push(&h, kingItem{ks.grow[w], int32(g.Degree(int(w))), w})
			}
		}
	}
	reverse(ks.order)
	return ks.order
}
