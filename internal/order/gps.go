package order

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/perm"
)

// GPS computes the Gibbs–Poole–Stockmeyer ordering: pseudo-diameter, level
// structure combination, then Cuthill–McKee-style numbering level by level
// within the combined structure, followed by reversal (which preserves
// bandwidth and never hurts the envelope). GPS is the bandwidth champion in
// the paper's tables.
func GPS(g *graph.Graph) perm.Perm {
	return overComponents(g, gpsComponent)
}

func gpsComponent(g *graph.Graph) []int32 {
	n := g.N()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int32{0}
	}
	c := diameterAndCombine(g)
	return gpsNumber(g, c)
}

func gpsNumber(g *graph.Graph, c *combined) []int32 {
	order := numberByAdjacency(g, c)
	reverse(order)
	return order
}

// GPSFromDiameter is the GPS ordering of the connected graph g built on a
// precomputed pseudo-diameter (u, v, lsU, lsV) — the artifact the portfolio
// pipeline caches per component so GPS, GK and Sloan share one
// pseudo-diameter search. The level structures are read, never modified.
func GPSFromDiameter(g *graph.Graph, u, v int, lsU, lsV *graph.LevelStructure) perm.Perm {
	if g.N() == 1 {
		return perm.Perm{0}
	}
	return perm.Perm(gpsNumber(g, combineLevelStructures(g, u, v, lsU, lsV)))
}

// numberByAdjacency is the GPS numbering pass (GPS 1976, step III,
// simplified tie-breaking): process the combined levels consecutively;
// within a level, first number unnumbered vertices adjacent to
// already-numbered vertices of the previous level in the order those were
// numbered (each batch sorted by increasing degree), then vertices adjacent
// to numbered vertices of the current level, and when the level is
// exhausted of connected candidates, seed with its minimum-degree
// unnumbered vertex.
func numberByAdjacency(g *graph.Graph, c *combined) []int32 {
	n := g.N()
	numbered := make([]bool, n)
	order := make([]int32, 0, n)
	byDeg := func(buf []int32) {
		sort.Slice(buf, func(i, j int) bool {
			di, dj := g.Degree(int(buf[i])), g.Degree(int(buf[j]))
			if di != dj {
				return di < dj
			}
			return buf[i] < buf[j]
		})
	}

	levelStart := 0 // index in order where the previous level began
	var buf []int32
	for l := 0; l < c.k; l++ {
		curStart := len(order)
		if l == 0 {
			order = append(order, int32(c.start))
			numbered[c.start] = true
		} else {
			// Seed from the previous level's numbered vertices in order.
			for idx := levelStart; idx < curStart; idx++ {
				v := order[idx]
				buf = buf[:0]
				for _, w := range g.Neighbors(int(v)) {
					if !numbered[w] && c.levelOf[w] == int32(l) {
						numbered[w] = true
						buf = append(buf, w)
					}
				}
				byDeg(buf)
				order = append(order, buf...)
			}
		}
		// Sweep within the level until all its vertices are numbered.
		for {
			progressed := false
			for idx := curStart; idx < len(order); idx++ {
				v := order[idx]
				buf = buf[:0]
				for _, w := range g.Neighbors(int(v)) {
					if !numbered[w] && c.levelOf[w] == int32(l) {
						numbered[w] = true
						buf = append(buf, w)
					}
				}
				if len(buf) > 0 {
					byDeg(buf)
					order = append(order, buf...)
					progressed = true
				}
			}
			// Any vertices of this level left (disconnected inside the
			// level)? Seed with a minimum-degree one.
			var seed int32 = -1
			for _, w := range c.levels[l] {
				if !numbered[w] && (seed < 0 || g.Degree(int(w)) < g.Degree(int(seed))) {
					seed = w
				}
			}
			if seed >= 0 {
				numbered[seed] = true
				order = append(order, seed)
				progressed = true
			}
			if !progressed {
				break
			}
			// Check completion of the level.
			done := true
			for _, w := range c.levels[l] {
				if !numbered[w] {
					done = false
					break
				}
			}
			if done {
				break
			}
		}
		levelStart = curStart
	}
	return order
}
