// Package order implements the local-search (breadth-first) envelope and
// bandwidth reduction orderings the paper compares against: Cuthill–McKee
// and reverse Cuthill–McKee (the SPARSPAK baseline), Gibbs–Poole–Stockmeyer
// (GPS), Gibbs–King (GK), King's ordering, and — as the paper's proposed
// "local reordering strategy" extension — Sloan's algorithm.
//
// All algorithms handle disconnected graphs by ordering components
// independently (largest first, matching internal/graph.Components) and
// concatenating. All return permutations in the repository's new→old
// convention.
//
// The *WS variants take a scratch.Workspace and are what the parallel
// pipeline calls: component extraction and the BFS bookkeeping run off
// reusable arenas instead of per-call allocations. The plain functions
// borrow a pooled workspace and are otherwise identical.
package order

import (
	"slices"

	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/scratch"
)

// overComponents runs a per-component ordering function over every
// connected component of g and concatenates the results. f receives the
// component subgraph and must return a new→old ordering of it; old labels
// are translated back to g's labels. Component subgraphs are extracted
// into one reused buffer, so f must not retain its argument.
func overComponents(g *graph.Graph, f func(*graph.Graph) []int32) perm.Perm {
	if graph.IsConnected(g) {
		local := f(g)
		out := make(perm.Perm, len(local))
		copy(out, local)
		return out
	}
	ws := scratch.Get()
	defer scratch.Put(ws)
	out := make(perm.Perm, 0, g.N())
	var sub graph.Graph
	for _, comp := range graph.Components(g) {
		g.SubgraphInto(ws, &sub, comp)
		for _, v := range f(&sub) {
			out = append(out, int32(comp[v]))
		}
	}
	return out
}

// overComponentsWS is the workspace-threaded dispatch: f appends its
// component ordering (in component-local labels) to out and returns the
// extended slice; labels are translated to g's in place afterwards.
func overComponentsWS(ws *scratch.Workspace, g *graph.Graph, f func(ws *scratch.Workspace, sub *graph.Graph, out []int32) []int32) perm.Perm {
	n := g.N()
	out := make([]int32, 0, n)
	if graph.IsConnected(g) {
		return perm.Perm(f(ws, g, out))
	}
	var sub graph.Graph
	for _, comp := range graph.Components(g) {
		start := len(out)
		g.SubgraphInto(ws, &sub, comp)
		out = f(ws, &sub, out)
		for i := start; i < len(out); i++ {
			out[i] = int32(comp[out[i]])
		}
	}
	return perm.Perm(out)
}

// cmComponentInto appends the Cuthill–McKee ordering of a connected graph
// to out: start from a pseudo-peripheral vertex; number vertices level by
// level, visiting each numbered vertex's unnumbered neighbors in order of
// increasing degree (ties by label). The result is an adjacency ordering
// (§2.4 of the paper).
func cmComponentInto(ws *scratch.Workspace, g *graph.Graph, out []int32) []int32 {
	if g.N() == 0 {
		return out
	}
	root, _ := graph.PseudoPeripheral(g, 0)
	return cmRootedInto(ws, g, root, out)
}

// cmRootedInto is the Cuthill–McKee numbering from a given root (the
// second half of cmComponentInto, split so callers with a cached
// pseudo-peripheral vertex skip the peripheral search).
func cmRootedInto(ws *scratch.Workspace, g *graph.Graph, root int, out []int32) []int32 {
	n := g.N()
	m := ws.Mark()
	defer ws.Release(m)
	numbered := ws.Bools(n)
	buf := ws.Int32s(n)
	head := len(out)
	out = append(out, int32(root))
	numbered[root] = true
	for ; head < len(out); head++ {
		v := out[head]
		k := 0
		for _, w := range g.Neighbors(int(v)) {
			if !numbered[w] {
				buf[k] = w
				k++
				numbered[w] = true
			}
		}
		slices.SortFunc(buf[:k], func(a, b int32) int {
			if da, db := g.Degree(int(a)), g.Degree(int(b)); da != db {
				return da - db
			}
			return int(a - b)
		})
		out = append(out, buf[:k]...)
	}
	return out
}

// CuthillMcKee returns the Cuthill–McKee ordering of g.
func CuthillMcKee(g *graph.Graph) perm.Perm {
	ws := scratch.Get()
	defer scratch.Put(ws)
	return CuthillMcKeeWS(ws, g)
}

// CuthillMcKeeWS is CuthillMcKee with caller-provided scratch.
func CuthillMcKeeWS(ws *scratch.Workspace, g *graph.Graph) perm.Perm {
	return overComponentsWS(ws, g, cmComponentInto)
}

// RCM returns the reverse Cuthill–McKee ordering — the SPARSPAK standard
// the paper benchmarks. Reversal leaves the bandwidth unchanged but never
// increases (and usually shrinks) the envelope (Liu & Sherman 1976).
func RCM(g *graph.Graph) perm.Perm {
	ws := scratch.Get()
	defer scratch.Put(ws)
	return RCMWS(ws, g)
}

// RCMWS is RCM with caller-provided scratch.
func RCMWS(ws *scratch.Workspace, g *graph.Graph) perm.Perm {
	return overComponentsWS(ws, g, func(ws *scratch.Workspace, sub *graph.Graph, out []int32) []int32 {
		start := len(out)
		out = cmComponentInto(ws, sub, out)
		reverse(out[start:])
		return out
	})
}

// CuthillMcKeeFromRootWS is the Cuthill–McKee ordering of the connected
// graph g started at a precomputed pseudo-peripheral root — the artifact
// the portfolio pipeline caches per component so racing CM, RCM and King
// pays for one George–Liu search, not three.
func CuthillMcKeeFromRootWS(ws *scratch.Workspace, g *graph.Graph, root int) perm.Perm {
	return perm.Perm(cmRootedInto(ws, g, root, make([]int32, 0, g.N())))
}

// RCMFromRootWS is the reverse Cuthill–McKee ordering of the connected
// graph g from a precomputed pseudo-peripheral root.
func RCMFromRootWS(ws *scratch.Workspace, g *graph.Graph, root int) perm.Perm {
	o := cmRootedInto(ws, g, root, make([]int32, 0, g.N()))
	reverse(o)
	return perm.Perm(o)
}

// reverse flips a slice in place.
func reverse(s []int32) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
