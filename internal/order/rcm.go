// Package order implements the local-search (breadth-first) envelope and
// bandwidth reduction orderings the paper compares against: Cuthill–McKee
// and reverse Cuthill–McKee (the SPARSPAK baseline), Gibbs–Poole–Stockmeyer
// (GPS), Gibbs–King (GK), King's ordering, and — as the paper's proposed
// "local reordering strategy" extension — Sloan's algorithm.
//
// All algorithms handle disconnected graphs by ordering components
// independently (largest first, matching internal/graph.Components) and
// concatenating. All return permutations in the repository's new→old
// convention.
package order

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/perm"
)

// overComponents runs a per-component ordering function over every
// connected component of g and concatenates the results. f receives the
// component subgraph and must return a new→old ordering of it; old labels
// are translated back to g's labels.
func overComponents(g *graph.Graph, f func(*graph.Graph) []int32) perm.Perm {
	if graph.IsConnected(g) {
		local := f(g)
		out := make(perm.Perm, len(local))
		copy(out, local)
		return out
	}
	out := make(perm.Perm, 0, g.N())
	for _, comp := range graph.Components(g) {
		sub, old := g.Subgraph(comp)
		for _, v := range f(sub) {
			out = append(out, int32(old[v]))
		}
	}
	return out
}

// cmComponent computes the Cuthill–McKee ordering of a connected graph:
// start from a pseudo-peripheral vertex; number vertices level by level,
// visiting each numbered vertex's unnumbered neighbors in order of
// increasing degree (ties by label). The result is an adjacency ordering
// (§2.4 of the paper).
func cmComponent(g *graph.Graph) []int32 {
	n := g.N()
	if n == 0 {
		return nil
	}
	root, _ := graph.PseudoPeripheral(g, 0)
	order := make([]int32, 0, n)
	numbered := make([]bool, n)
	order = append(order, int32(root))
	numbered[root] = true
	var buf []int32
	for head := 0; head < len(order); head++ {
		v := order[head]
		buf = buf[:0]
		for _, w := range g.Neighbors(int(v)) {
			if !numbered[w] {
				buf = append(buf, w)
				numbered[w] = true
			}
		}
		sort.Slice(buf, func(i, j int) bool {
			di, dj := g.Degree(int(buf[i])), g.Degree(int(buf[j]))
			if di != dj {
				return di < dj
			}
			return buf[i] < buf[j]
		})
		order = append(order, buf...)
	}
	return order
}

// CuthillMcKee returns the Cuthill–McKee ordering of g.
func CuthillMcKee(g *graph.Graph) perm.Perm {
	return overComponents(g, cmComponent)
}

// RCM returns the reverse Cuthill–McKee ordering — the SPARSPAK standard
// the paper benchmarks. Reversal leaves the bandwidth unchanged but never
// increases (and usually shrinks) the envelope (Liu & Sherman 1976).
func RCM(g *graph.Graph) perm.Perm {
	return overComponents(g, func(sub *graph.Graph) []int32 {
		o := cmComponent(sub)
		for i, j := 0, len(o)-1; i < j; i, j = i+1, j-1 {
			o[i], o[j] = o[j], o[i]
		}
		return o
	})
}
