package order

import (
	"sort"

	"repro/internal/graph"
)

// combined is the general level structure GPS and GK share: an assignment
// of every vertex of a connected graph to one of k levels built from the
// two rooted level structures of a pseudo-diameter (GPS 1976, step II).
type combined struct {
	k       int
	levelOf []int32 // vertex -> combined level
	levels  [][]int32
	// start and end are the pseudo-diameter endpoints; numbering begins at
	// start (the lower-degree endpoint, per GPS).
	start, end int
}

// combineLevelStructures implements the GPS "combination" step. With Lu
// rooted at u and Lv rooted at v, both of depth k, each vertex w gets the
// pair (i, j) with i = level in Lu and j = (k−1) − level in Lv. Vertices
// with i == j are fixed at level i. The rest are grouped into connected
// components of the unassigned subgraph; components are processed in
// decreasing size, each placed wholesale on its Lu levels or its Lv levels,
// whichever keeps the maximum level width smaller.
func combineLevelStructures(g *graph.Graph, u, v int, lsU, lsV *graph.LevelStructure) *combined {
	n := g.N()
	k := lsU.Depth()
	if lsV.Depth() > k {
		k = lsV.Depth()
	}
	levelOf := make([]int32, n)
	for i := range levelOf {
		levelOf[i] = -1
	}
	// Width bookkeeping for placed vertices.
	width := make([]int32, k)

	hi := func(w int32) int32 { return lsU.LevelOf[w] }              // level from u
	lo := func(w int32) int32 { return int32(k-1) - lsV.LevelOf[w] } // mirrored level from v

	unassigned := make([]bool, n)
	for w := 0; w < n; w++ {
		if hi(int32(w)) == lo(int32(w)) {
			levelOf[w] = hi(int32(w))
			width[levelOf[w]]++
		} else {
			unassigned[w] = true
		}
	}

	// Connected components of the subgraph induced on unassigned vertices.
	var comps [][]int32
	seen := make([]bool, n)
	var stack []int32
	for s := 0; s < n; s++ {
		if !unassigned[s] || seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack[:0], int32(s))
		comp := []int32{int32(s)}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(int(x)) {
				if unassigned[w] && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
					comp = append(comp, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	sort.SliceStable(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })

	for _, comp := range comps {
		// Candidate widths if the component is placed on hi (Lu) levels or
		// on lo (Lv) levels.
		var maxHi, maxLo int32
		cntHi := make(map[int32]int32)
		cntLo := make(map[int32]int32)
		for _, w := range comp {
			cntHi[hi(w)]++
			cntLo[lo(w)]++
		}
		for l, c := range cntHi {
			if t := width[l] + c; t > maxHi {
				maxHi = t
			}
		}
		for l, c := range cntLo {
			if t := width[l] + c; t > maxLo {
				maxLo = t
			}
		}
		use := hi
		if maxLo < maxHi {
			use = lo
		}
		for _, w := range comp {
			levelOf[w] = use(w)
			width[use(w)]++
		}
	}

	levels := make([][]int32, k)
	for w := 0; w < n; w++ {
		l := levelOf[w]
		levels[l] = append(levels[l], int32(w))
	}
	// Numbering starts from the lower-degree endpoint. If the start ends up
	// in the last level rather than the first, flip the level indices so the
	// start is at level 0.
	start, end := u, v
	if g.Degree(v) < g.Degree(u) {
		start, end = v, u
	}
	if levelOf[start] != 0 {
		for w := 0; w < n; w++ {
			levelOf[w] = int32(k-1) - levelOf[w]
		}
		for i, j := 0, k-1; i < j; i, j = i+1, j-1 {
			levels[i], levels[j] = levels[j], levels[i]
		}
	}
	return &combined{k: k, levelOf: levelOf, levels: levels, start: start, end: end}
}

// diameterAndCombine is the shared first half of GPS and GK on a connected
// component: find a pseudo-diameter and build the combined level structure.
func diameterAndCombine(g *graph.Graph) *combined {
	u, v, lsU, lsV := graph.PseudoDiameter(g, 0)
	return combineLevelStructures(g, u, v, lsU, lsV)
}
