package order

import (
	"testing"

	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/perm"
)

// allOrderings enumerates every ordering algorithm in this package for the
// generic validity/quality tests.
var allOrderings = []struct {
	name string
	f    func(*graph.Graph) perm.Perm
}{
	{"CM", CuthillMcKee},
	{"RCM", RCM},
	{"GPS", GPS},
	{"GK", GK},
	{"King", King},
	{"Sloan", Sloan},
}

func TestAllAreValidPermutations(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":      graph.Path(17),
		"cycle":     graph.Cycle(20),
		"grid":      graph.Grid(7, 5),
		"star":      graph.Star(9),
		"complete":  graph.Complete(6),
		"random":    graph.Random(60, 120, 1),
		"singleton": graph.NewBuilder(1).Build(),
		"empty":     graph.NewBuilder(0).Build(),
		"edgeless":  graph.FromEdges(5, nil),
		"two-comps": graph.FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}}),
	}
	for gname, g := range graphs {
		for _, alg := range allOrderings {
			p := alg.f(g)
			if len(p) != g.N() {
				t.Errorf("%s/%s: length %d, want %d", alg.name, gname, len(p), g.N())
				continue
			}
			if err := p.Check(); err != nil {
				t.Errorf("%s/%s: %v", alg.name, gname, err)
			}
		}
	}
}

func TestRCMPathIsOptimal(t *testing.T) {
	g := graph.Path(25)
	p := RCM(g)
	s := envelope.Compute(g, p)
	if s.Bandwidth != 1 {
		t.Errorf("RCM path bandwidth = %d, want 1", s.Bandwidth)
	}
	if s.Esize != 24 {
		t.Errorf("RCM path Esize = %d, want 24", s.Esize)
	}
}

func TestGPSPathIsOptimal(t *testing.T) {
	g := graph.Path(25)
	s := envelope.Compute(g, GPS(g))
	if s.Bandwidth != 1 {
		t.Errorf("GPS path bandwidth = %d, want 1", s.Bandwidth)
	}
}

func TestGKPathIsOptimal(t *testing.T) {
	g := graph.Path(25)
	s := envelope.Compute(g, GK(g))
	if s.Bandwidth != 1 {
		t.Errorf("GK path bandwidth = %d, want 1", s.Bandwidth)
	}
}

func TestCMIsAdjacencyOrdering(t *testing.T) {
	// §2.4: Cuthill–McKee is an adjacency ordering: each v_{j+1} is
	// adjacent to some earlier vertex (on connected graphs).
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Random(50, 90, seed)
		p := CuthillMcKee(g)
		pos := p.Inverse()
		for j := 1; j < len(p); j++ {
			v := int(p[j])
			ok := false
			for _, w := range g.Neighbors(v) {
				if int(pos[w]) < j {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("seed %d: CM vertex at position %d has no earlier neighbor", seed, j)
			}
		}
	}
}

func TestOrderingsBeatRandomOnGrids(t *testing.T) {
	g := graph.Grid(15, 15)
	worst := envelope.Esize(g, perm.Random(g.N(), 99))
	for _, alg := range allOrderings {
		if e := envelope.Esize(g, alg.f(g)); e >= worst {
			t.Errorf("%s: Esize %d not better than random %d", alg.name, e, worst)
		}
	}
}

func TestGridBandwidthQuality(t *testing.T) {
	// For an a×b grid (a ≥ b) the optimal bandwidth is b; the BFS family
	// should come close (≤ b+1 for RCM/GPS).
	g := graph.Grid(12, 5)
	for _, alg := range []struct {
		name string
		f    func(*graph.Graph) perm.Perm
		max  int
	}{
		{"RCM", RCM, 7},
		{"GPS", GPS, 7},
		{"GK", GK, 9},
	} {
		bw := envelope.Bandwidth(g, alg.f(g))
		if bw > alg.max {
			t.Errorf("%s grid bandwidth = %d, want ≤ %d", alg.name, bw, alg.max)
		}
	}
}

func TestRCMEnvelopeNotWorseThanCM(t *testing.T) {
	// Liu–Sherman: RCM's envelope is never worse than CM's.
	for seed := int64(0); seed < 10; seed++ {
		g := graph.Random(45, 80, seed)
		ecm := envelope.Esize(g, CuthillMcKee(g))
		ercm := envelope.Esize(g, RCM(g))
		if ercm > ecm {
			t.Errorf("seed %d: RCM %d > CM %d", seed, ercm, ecm)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Random(80, 150, 5)
	for _, alg := range allOrderings {
		a, b := alg.f(g), alg.f(g)
		if !a.Equal(b) {
			t.Errorf("%s: non-deterministic", alg.name)
		}
	}
}

func TestDisconnectedComponentsContiguous(t *testing.T) {
	// Components must occupy contiguous position ranges.
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4) // comp A: 0..4 (size 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7) // comp B: 5..7 (size 3)
	b.AddEdge(8, 9) // comp C: 8..9 (size 2)
	g := b.Build()
	compOf := func(v int32) int {
		switch {
		case v <= 4:
			return 0
		case v <= 7:
			return 1
		default:
			return 2
		}
	}
	for _, alg := range allOrderings {
		p := alg.f(g)
		// Check each component's positions form an interval.
		seen := map[int]bool{}
		last := -1
		for _, v := range p {
			c := compOf(v)
			if c != last {
				if seen[c] {
					t.Errorf("%s: component %d split", alg.name, c)
					break
				}
				seen[c] = true
				last = c
			}
		}
	}
}

func TestGKBeatsOrMatchesRCMEnvelopeOnMeshes(t *testing.T) {
	// The paper (and Lewis 1982) report GK usually giving smaller envelopes
	// than RCM on mesh problems. Allow slack, but catch gross regressions.
	g := graph.Grid9(20, 20)
	egk := envelope.Esize(g, GK(g))
	ercm := envelope.Esize(g, RCM(g))
	if float64(egk) > 1.15*float64(ercm) {
		t.Errorf("GK envelope %d much worse than RCM %d", egk, ercm)
	}
}

func TestSloanCompetitiveOnGrid(t *testing.T) {
	g := graph.Grid(20, 20)
	es := envelope.Esize(g, Sloan(g))
	ercm := envelope.Esize(g, RCM(g))
	if float64(es) > 1.3*float64(ercm) {
		t.Errorf("Sloan envelope %d not competitive with RCM %d", es, ercm)
	}
}

func TestCombineLevelStructure(t *testing.T) {
	g := graph.Grid(9, 4)
	u, v, lsU, lsV := graph.PseudoDiameter(g, 0)
	c := combineLevelStructures(g, u, v, lsU, lsV)
	// Every vertex assigned to exactly one level in range.
	count := 0
	for l := 0; l < c.k; l++ {
		count += len(c.levels[l])
		for _, w := range c.levels[l] {
			if c.levelOf[w] != int32(l) {
				t.Fatalf("levelOf mismatch for %d", w)
			}
		}
	}
	if count != g.N() {
		t.Fatalf("combined levels cover %d of %d", count, g.N())
	}
	// Start is in level 0.
	if c.levelOf[c.start] != 0 {
		t.Fatalf("start %d at level %d", c.start, c.levelOf[c.start])
	}
	// Combined width should be ≤ the worse of the two inputs on this
	// well-behaved mesh.
	maxW := 0
	for _, lv := range c.levels {
		if len(lv) > maxW {
			maxW = len(lv)
		}
	}
	inW := lsU.Width()
	if lsV.Width() > inW {
		inW = lsV.Width()
	}
	if maxW > inW {
		t.Errorf("combined width %d exceeds both inputs (%d)", maxW, inW)
	}
}

func TestKingFrontGrowthIsMinimalStep(t *testing.T) {
	// After King numbering, verify first step: order[...last] — reversal
	// makes direct front checks awkward, so instead verify the ordering is
	// valid and its max frontwidth is no worse than CM's on a grid.
	g := graph.Grid(10, 10)
	sk := envelope.Compute(g, King(g))
	scm := envelope.Compute(g, CuthillMcKee(g))
	if sk.MaxFrontwidth > scm.MaxFrontwidth+2 {
		t.Errorf("King max frontwidth %d much worse than CM %d", sk.MaxFrontwidth, scm.MaxFrontwidth)
	}
}

func BenchmarkRCMGrid(b *testing.B) {
	g := graph.Grid(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RCM(g)
	}
}

func BenchmarkGPSGrid(b *testing.B) {
	g := graph.Grid(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GPS(g)
	}
}

func BenchmarkGKGrid(b *testing.B) {
	g := graph.Grid(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GK(g)
	}
}

func BenchmarkSloanGrid(b *testing.B) {
	g := graph.Grid(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sloan(g)
	}
}
