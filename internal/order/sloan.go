package order

import (
	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/scratch"
)

// SloanWeights are the priority weights of Sloan's algorithm. The priority
// of a candidate v is  W1·dist(v,end) − W2·(cdeg(v)+1), where cdeg is the
// current degree (unnumbered, not-yet-active neighbors). Sloan's recommended
// defaults are W1=1, W2=2.
type SloanWeights struct {
	W1, W2 int32
}

// DefaultSloanWeights returns Sloan's published defaults.
func DefaultSloanWeights() SloanWeights { return SloanWeights{W1: 1, W2: 2} }

// Sloan computes Sloan's profile-reduction ordering: a greedy numbering
// driven by a priority combining the global distance-to-end-vertex of a
// pseudo-diameter with the local wavefront growth. The paper's §4 closes by
// proposing exactly this kind of "limited use of a local reordering
// strategy" to improve spectral envelopes; the spectral–Sloan hybrid in
// internal/core uses this machinery with spectral positions as the global
// term.
func Sloan(g *graph.Graph) perm.Perm {
	ws := scratch.Get()
	defer scratch.Put(ws)
	return SloanWS(ws, g)
}

// SloanWS is Sloan with caller-provided scratch.
func SloanWS(ws *scratch.Workspace, g *graph.Graph) perm.Perm {
	w := DefaultSloanWeights()
	return overComponentsWS(ws, g, func(ws *scratch.Workspace, sub *graph.Graph, out []int32) []int32 {
		if sub.N() == 0 {
			return out
		}
		if sub.N() == 1 {
			return append(out, 0)
		}
		// Numbering starts at endpoint u of a pseudo-diameter; the global
		// priority term is the BFS distance to the far endpoint v, which is
		// exactly lsV.LevelOf (lsV is rooted at v).
		u, _, _, lsV := graph.PseudoDiameter(sub, 0)
		return sloanComponentInto(ws, sub, u, lsV.LevelOf, w, out)
	})
}

// Vertex states of Sloan's algorithm. Widened to int32 so the status array
// can live in a workspace's int32 arena.
const (
	sloanInactive  int32 = iota // far from the front
	sloanPreactive              // neighbor of an active/numbered vertex
	sloanActive                 // in the front (unnumbered, adjacent to numbered)
	sloanNumbered
)

type sloanItem struct {
	prio int32
	deg  int32
	v    int32
}

// sloanHeap is a typed max-heap on (priority, −degree, −label). It
// re-implements the sift operations of container/heap to avoid the
// interface boxing of heap.Push/Pop, which allocated once per push on the
// hottest loop of the algorithm.
type sloanHeap []sloanItem

func (h sloanHeap) less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio // max-heap on priority
	}
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].v < h[j].v
}

func (h *sloanHeap) push(it sloanItem) {
	*h = append(*h, it)
	// Sift up.
	s := *h
	j := len(s) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if !s.less(j, parent) {
			break
		}
		s[j], s[parent] = s[parent], s[j]
		j = parent
	}
}

func (h *sloanHeap) pop() sloanItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s) && s.less(l, smallest) {
			smallest = l
		}
		if r < len(s) && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// sloanComponentInto runs Sloan's numbering on a connected graph, appending
// to out. dist holds the global term (distance to the end vertex in classic
// Sloan; scaled spectral ranks in the hybrid); start is the first vertex
// numbered.
func sloanComponentInto(ws *scratch.Workspace, g *graph.Graph, start int, dist []int32, w SloanWeights, out []int32) []int32 {
	n := g.N()
	m := ws.Mark()
	defer ws.Release(m)
	status := ws.Int32s(n)
	// prio[v] = W1·dist[v] − W2·(cdeg(v)+1); cdeg decrements are folded in
	// as +W2 bumps, matching Sloan's published update rules.
	prio := ws.Int32s(n)
	for v := 0; v < n; v++ {
		status[v] = sloanInactive
		prio[v] = w.W1*dist[v] - w.W2*int32(g.Degree(v)+1)
	}
	first := len(out)
	h := make(sloanHeap, 0, n)

	push := func(v int32) {
		h.push(sloanItem{prio[v], int32(g.Degree(int(v))), v})
	}
	bump := func(v int32, delta int32) {
		prio[v] += delta
		if status[v] == sloanPreactive || status[v] == sloanActive {
			push(v)
		}
	}

	status[start] = sloanPreactive
	push(int32(start))
	for len(out)-first < n {
		// Pop the highest-priority pre-active/active vertex, skipping stale
		// entries.
		var v int32 = -1
		for len(h) > 0 {
			it := h.pop()
			if status[it.v] == sloanNumbered || prio[it.v] != it.prio {
				continue
			}
			v = it.v
			break
		}
		if v < 0 {
			break // disconnected remainder; callers order per component
		}
		if status[v] == sloanPreactive {
			// Numbering a pre-active vertex makes its neighbors pre-active
			// and bumps their priority (their current degree drops).
			for _, u := range g.Neighbors(int(v)) {
				if status[u] == sloanNumbered {
					continue
				}
				bump(u, w.W2)
				if status[u] == sloanInactive {
					status[u] = sloanPreactive
					push(u)
				}
			}
		}
		status[v] = sloanNumbered
		out = append(out, v)
		// Activate v's neighbors: a pre-active neighbor u becomes active;
		// u's neighbors get a priority bump and become at least pre-active.
		for _, u := range g.Neighbors(int(v)) {
			if status[u] != sloanPreactive {
				continue
			}
			status[u] = sloanActive
			bump(u, w.W2)
			for _, x := range g.Neighbors(int(u)) {
				if status[x] == sloanNumbered || x == v {
					continue
				}
				bump(x, w.W2)
				if status[x] == sloanInactive {
					status[x] = sloanPreactive
					push(x)
				}
			}
		}
	}
	return out
}

// SloanFromDiameterWS is Sloan's ordering of the connected graph g from a
// precomputed pseudo-diameter: start numbering at endpoint u with the BFS
// distances to the far endpoint (lsV.LevelOf for lsV rooted at v) as the
// global priority. distToEnd is read, never modified.
func SloanFromDiameterWS(ws *scratch.Workspace, g *graph.Graph, u int, distToEnd []int32) perm.Perm {
	n := g.N()
	if n == 0 {
		return perm.Perm{}
	}
	if n == 1 {
		return perm.Perm{0}
	}
	w := DefaultSloanWeights()
	return perm.Perm(sloanComponentInto(ws, g, u, distToEnd, w, make([]int32, 0, n)))
}

// SloanOrderWithGlobal exposes the Sloan numbering for a connected graph
// with an arbitrary global priority vector; the spectral–Sloan hybrid in
// internal/core is its consumer.
func SloanOrderWithGlobal(g *graph.Graph, start int, global []int32, w SloanWeights) ([]int32, bool) {
	if !graph.IsConnected(g) {
		return nil, false
	}
	ws := scratch.Get()
	defer scratch.Put(ws)
	return sloanComponentInto(ws, g, start, global, w, make([]int32, 0, g.N())), true
}
