package order

import (
	"container/heap"

	"repro/internal/graph"
	"repro/internal/perm"
)

// SloanWeights are the priority weights of Sloan's algorithm. The priority
// of a candidate v is  W1·dist(v,end) − W2·(cdeg(v)+1), where cdeg is the
// current degree (unnumbered, not-yet-active neighbors). Sloan's recommended
// defaults are W1=1, W2=2.
type SloanWeights struct {
	W1, W2 int32
}

// DefaultSloanWeights returns Sloan's published defaults.
func DefaultSloanWeights() SloanWeights { return SloanWeights{W1: 1, W2: 2} }

// Sloan computes Sloan's profile-reduction ordering: a greedy numbering
// driven by a priority combining the global distance-to-end-vertex of a
// pseudo-diameter with the local wavefront growth. The paper's §4 closes by
// proposing exactly this kind of "limited use of a local reordering
// strategy" to improve spectral envelopes; the spectral–Sloan hybrid in
// internal/core uses this machinery with spectral positions as the global
// term.
func Sloan(g *graph.Graph) perm.Perm {
	w := DefaultSloanWeights()
	return overComponents(g, func(sub *graph.Graph) []int32 {
		if sub.N() == 0 {
			return nil
		}
		if sub.N() == 1 {
			return []int32{0}
		}
		// Numbering starts at endpoint u of a pseudo-diameter; the global
		// priority term is the BFS distance to the far endpoint v, which is
		// exactly lsV.LevelOf (lsV is rooted at v).
		u, _, _, lsV := graph.PseudoDiameter(sub, 0)
		return sloanComponent(sub, u, lsV.LevelOf, w)
	})
}

// sloanStatus is a vertex state in Sloan's algorithm.
type sloanStatus uint8

const (
	sloanInactive  sloanStatus = iota // far from the front
	sloanPreactive                    // neighbor of an active/numbered vertex
	sloanActive                       // in the front (unnumbered, adjacent to numbered)
	sloanNumbered
)

type sloanItem struct {
	prio int32
	deg  int32
	v    int32
}

type sloanHeap []sloanItem

func (h sloanHeap) Len() int { return len(h) }
func (h sloanHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio // max-heap on priority
	}
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].v < h[j].v
}
func (h sloanHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sloanHeap) Push(x any)   { *h = append(*h, x.(sloanItem)) }
func (h *sloanHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// sloanComponent runs Sloan's numbering on a connected graph. dist holds
// the global term (distance to the end vertex in classic Sloan; scaled
// spectral ranks in the hybrid); start is the first vertex numbered.
func sloanComponent(g *graph.Graph, start int, dist []int32, w SloanWeights) []int32 {
	n := g.N()
	status := make([]sloanStatus, n)
	// prio[v] = W1·dist[v] − W2·(cdeg(v)+1); cdeg decrements are folded in
	// as +W2 bumps, matching Sloan's published update rules.
	prio := make([]int32, n)
	for v := 0; v < n; v++ {
		prio[v] = w.W1*dist[v] - w.W2*int32(g.Degree(v)+1)
	}
	h := make(sloanHeap, 0, n)
	order := make([]int32, 0, n)

	push := func(v int32) {
		heap.Push(&h, sloanItem{prio[v], int32(g.Degree(int(v))), v})
	}
	bump := func(v int32, delta int32) {
		prio[v] += delta
		if status[v] == sloanPreactive || status[v] == sloanActive {
			push(v)
		}
	}

	status[start] = sloanPreactive
	push(int32(start))
	for len(order) < n {
		// Pop the highest-priority pre-active/active vertex, skipping stale
		// entries.
		var v int32 = -1
		for h.Len() > 0 {
			it := heap.Pop(&h).(sloanItem)
			if status[it.v] == sloanNumbered || prio[it.v] != it.prio {
				continue
			}
			v = it.v
			break
		}
		if v < 0 {
			break // disconnected remainder; callers order per component
		}
		if status[v] == sloanPreactive {
			// Numbering a pre-active vertex makes its neighbors pre-active
			// and bumps their priority (their current degree drops).
			for _, u := range g.Neighbors(int(v)) {
				if status[u] == sloanNumbered {
					continue
				}
				bump(u, w.W2)
				if status[u] == sloanInactive {
					status[u] = sloanPreactive
					push(u)
				}
			}
		}
		status[v] = sloanNumbered
		order = append(order, v)
		// Activate v's neighbors: a pre-active neighbor u becomes active;
		// u's neighbors get a priority bump and become at least pre-active.
		for _, u := range g.Neighbors(int(v)) {
			if status[u] != sloanPreactive {
				continue
			}
			status[u] = sloanActive
			bump(u, w.W2)
			for _, x := range g.Neighbors(int(u)) {
				if status[x] == sloanNumbered || x == v {
					continue
				}
				bump(x, w.W2)
				if status[x] == sloanInactive {
					status[x] = sloanPreactive
					push(x)
				}
			}
		}
	}
	return order
}

// SloanOrderWithGlobal exposes sloanComponent for a connected graph with an
// arbitrary global priority vector; the spectral–Sloan hybrid in
// internal/core is its consumer.
func SloanOrderWithGlobal(g *graph.Graph, start int, global []int32, w SloanWeights) ([]int32, bool) {
	if !graph.IsConnected(g) {
		return nil, false
	}
	return sloanComponent(g, start, global, w), true
}
