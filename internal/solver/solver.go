// Package solver defines the unified eigensolver engine behind the
// spectral ordering: a single Solver interface with uniform per-solve
// statistics, implemented by the direct Lanczos solver, the §3 multilevel
// scheme and standalone Rayleigh Quotient Iteration.
//
// The abstraction exists so every layer above — internal/core's Algorithm 1
// dispatch, the portfolio pipeline's per-component artifact cache, the
// harness tables and the benchmark tooling — consumes one instrumented
// surface instead of three ad-hoc result types. Every Solve threads a
// scratch.Workspace down into the hierarchy construction and V-cycle
// refinement, so repeated solves on warm arenas run without per-level
// allocations.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/laplacian"
	"repro/internal/linalg"
	"repro/internal/multilevel"
	"repro/internal/scratch"
)

// Scheme names for Stats.Scheme / Solver.Name.
const (
	SchemeLanczos    = "lanczos"
	SchemeMultilevel = "multilevel"
	SchemeRQI        = "rqi"
)

// Stats is the uniform per-solve telemetry every Solver reports. Counters
// that a given scheme does not exercise are zero (direct Lanczos performs
// no RQI iterations; its hierarchy is the trivial one-level one).
type Stats struct {
	// Scheme is the Solver.Name of the scheme that produced the solve.
	Scheme string `json:"scheme,omitempty"`
	// Lambda is the λ2 estimate (Rayleigh quotient of the returned vector).
	Lambda float64 `json:"lambda"`
	// Residual is ‖Lx − λx‖ on the input graph.
	Residual float64 `json:"residual"`
	// MatVecs counts Laplacian applications, including MINRES inner
	// iterations and smoothing sweeps.
	MatVecs int `json:"matvecs"`
	// RQIIterations is the total Rayleigh Quotient Iteration step count.
	RQIIterations int `json:"rqi_iterations,omitempty"`
	// JacobiSweeps is the total weighted-Jacobi smoothing sweep count.
	JacobiSweeps int `json:"jacobi_sweeps,omitempty"`
	// Levels is the hierarchy depth (1 = direct solve, no coarsening).
	Levels int `json:"levels"`
	// CoarsestN is the vertex count of the coarsest hierarchy level (the
	// input size for direct solves).
	CoarsestN int `json:"coarsest_n"`
	// Workers is the number of row blocks the Laplacian matvec ran across
	// (1 = serial operator). For the multilevel scheme it reports the
	// finest-level operator; aggregations keep the maximum across solves.
	Workers int `json:"workers,omitempty"`
	// Converged reports whether the solve met its tolerance; false comes
	// with a usable partial vector and a Residual quantifying the miss.
	Converged bool `json:"converged"`
}

// AddCounters sums only another solve's work counters into s (MatVecs,
// RQIIterations, JacobiSweeps) and keeps the wider of the two Workers
// fan-outs, leaving the spectral estimates and Converged untouched. It is
// the single place the counter field list lives; every aggregator goes
// through it.
func (s *Stats) AddCounters(o Stats) {
	s.MatVecs += o.MatVecs
	s.RQIIterations += o.RQIIterations
	s.JacobiSweeps += o.JacobiSweeps
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
}

// Accumulate folds another solve into s: counters summed (AddCounters) and
// Converged and-ed, while keeping s's spectral estimates (Lambda, Residual,
// Levels, CoarsestN) — the convention the per-component ordering drivers
// use: estimates describe the recorded (largest) component, counters
// describe the whole run.
func (s *Stats) Accumulate(o Stats) {
	s.AddCounters(o)
	s.Converged = s.Converged && o.Converged
}

// Solver computes an approximate Fiedler vector of a connected graph. The
// returned vector is freshly allocated (never workspace-backed) and safe to
// retain; implementations use ws only for scratch.
type Solver interface {
	// Name identifies the scheme ("lanczos", "multilevel", "rqi").
	Name() string
	// Solve computes the Fiedler pair of the connected graph g. A non-nil
	// error means no usable vector was produced; partial convergence is
	// reported via Stats.Converged=false with a usable vector instead.
	// ctx cancels an in-flight solve: the schemes check it at restart /
	// V-cycle granularity and return a *lanczos.ErrCancelled carrying the
	// best-so-far fallback vector (also returned in the vector slot when
	// usable). nil ctx means no cancellation.
	Solve(ctx context.Context, ws *scratch.Workspace, g *graph.Graph) ([]float64, Stats, error)
}

// Lanczos is the direct solver: full-reorthogonalization Lanczos on the
// whole graph, restarted from the best Ritz vector.
type Lanczos struct {
	Opt lanczos.Options
	// Op, when non-nil, is a pre-built Laplacian operator of the graph
	// passed to Solve — the pipeline's artifact cache shares one (with its
	// worker partition) across a component's candidates. Nil builds one per
	// solve, parallelized above the laplacian auto thresholds.
	Op laplacian.Interface
}

// Name implements Solver.
func (Lanczos) Name() string { return SchemeLanczos }

// Solve implements Solver.
func (s Lanczos) Solve(ctx context.Context, ws *scratch.Workspace, g *graph.Graph) ([]float64, Stats, error) {
	m := ws.Mark()
	op := s.Op
	if op == nil {
		op = laplacian.AutoFrom(g, ws.Float64s(g.N()))
	}
	res, err := lanczos.Fiedler(ctx, op, op.GershgorinBound(), s.Opt)
	ws.Release(m)
	st := Stats{
		Scheme:    SchemeLanczos,
		Lambda:    res.Lambda,
		Residual:  res.Residual,
		MatVecs:   res.MatVecs,
		Levels:    1,
		CoarsestN: g.N(),
		Workers:   op.Workers(),
		Converged: err == nil,
	}
	if err != nil && res.Vector == nil {
		return nil, st, err
	}
	// Cancellation propagates as an error — the caller asked the solve to
	// stop — but the best-so-far vector rides along for fallback-aware
	// layers (the portfolio engine's budget path).
	var cancelled *lanczos.ErrCancelled
	if errors.As(err, &cancelled) {
		return res.Vector, st, err
	}
	// A not-fully-converged vector is still usable for ordering — the
	// paper's "terminate the reordering process depending on a stopping
	// criterion" trade-off — so only hard failures propagate.
	return res.Vector, st, nil
}

// Multilevel is the §3 scheme: MIS contraction hierarchy, coarsest-level
// Lanczos, interpolation with Jacobi smoothing and RQI refinement.
type Multilevel struct {
	Opt multilevel.Options
	// Op, when non-nil, is a pre-built Laplacian operator of the finest
	// graph, shared with the refinement sweeps there (see Lanczos.Op).
	Op laplacian.Interface
}

// Name implements Solver.
func (Multilevel) Name() string { return SchemeMultilevel }

// Solve implements Solver.
func (s Multilevel) Solve(ctx context.Context, ws *scratch.Workspace, g *graph.Graph) ([]float64, Stats, error) {
	opt := s.Opt
	if opt.FinestOp == nil {
		opt.FinestOp = s.Op
	}
	res, err := multilevel.FiedlerWS(ctx, ws, g, opt)
	st := Stats{
		Scheme:        SchemeMultilevel,
		Lambda:        res.Lambda,
		Residual:      res.Residual,
		MatVecs:       res.MatVecs,
		RQIIterations: res.RQIIterations,
		JacobiSweeps:  res.JacobiSweeps,
		Levels:        res.Levels,
		CoarsestN:     res.CoarsestN,
		Workers:       res.Workers,
		Converged:     res.Converged,
	}
	if err != nil {
		// A cancelled multilevel solve still reports its interpolated
		// fallback vector alongside the error.
		return res.Vector, st, err
	}
	return res.Vector, st, nil
}

// RQI is standalone Rayleigh Quotient Iteration from a supplied (or seeded
// random, Jacobi-smoothed) start vector. RQI converges cubically to the
// eigenpair nearest its start, so it is a refinement scheme, not a global
// solver: use it to polish an approximate Fiedler vector, or for ablations
// against the full multilevel driver.
type RQI struct {
	Opt multilevel.RQIOptions
	// SmoothSteps smooths a random start toward the low end of the spectrum
	// before iterating (ignored when Start is set). Default 10.
	SmoothSteps int
	// Seed drives the random start vector.
	Seed int64
	// Start, when non-nil, is the initial iterate (copied, not modified).
	Start []float64
}

// Name implements Solver.
func (RQI) Name() string { return SchemeRQI }

// Solve implements Solver.
func (s RQI) Solve(ctx context.Context, ws *scratch.Workspace, g *graph.Graph) ([]float64, Stats, error) {
	n := g.N()
	if n == 0 {
		return nil, Stats{Scheme: SchemeRQI}, fmt.Errorf("solver: empty graph")
	}
	x := make([]float64, n)
	st := Stats{Scheme: SchemeRQI, Levels: 1, CoarsestN: n}
	if s.Start != nil {
		if len(s.Start) != n {
			return nil, st, fmt.Errorf("solver: rqi start has length %d, want %d", len(s.Start), n)
		}
		copy(x, s.Start)
	} else {
		rng := rand.New(rand.NewSource(s.Seed*2654435761 + 12345))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		linalg.ProjectOutOnes(x)
		linalg.Normalize(x)
	}
	m := ws.Mark()
	defer ws.Release(m)
	op := laplacian.AutoFrom(g, ws.Float64s(n))
	st.Workers = op.Workers()
	if s.Start == nil {
		steps := s.SmoothSteps
		if steps == 0 {
			steps = 10
		}
		st.MatVecs += multilevel.JacobiSmoothWS(ws, g, op, x, steps)
		st.JacobiSweeps += steps
	}
	res := multilevel.RQIOnWS(ctx, ws, op, x, s.Opt)
	st.Lambda = res.Lambda
	st.Residual = res.Residual
	st.MatVecs += res.MatVecs
	st.RQIIterations = res.Iterations
	st.Converged = res.Converged
	return x, st, nil
}
