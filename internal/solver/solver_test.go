package solver

import (
	"context"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/multilevel"
	"repro/internal/scratch"
)

// Both real solvers must agree on λ2 of a grid (within the multilevel
// scheme's approximation window) and fill the uniform stats.
func TestSolversAgreeOnGrid(t *testing.T) {
	g := graph.Grid(40, 30)
	want := 4 * math.Pow(math.Sin(math.Pi/80), 2)
	ws := scratch.New()
	for _, s := range []Solver{Lanczos{}, Multilevel{}} {
		x, st, err := s.Solve(context.Background(), ws, g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(x) != g.N() {
			t.Fatalf("%s: vector length %d, want %d", s.Name(), len(x), g.N())
		}
		if st.MatVecs == 0 {
			t.Errorf("%s: MatVecs not instrumented", s.Name())
		}
		if !st.Converged {
			t.Errorf("%s: not converged (residual %g)", s.Name(), st.Residual)
		}
		if st.Lambda < 0.5*want || st.Lambda > 2.5*want {
			t.Errorf("%s: λ = %g, want ≈ %g", s.Name(), st.Lambda, want)
		}
		if st.CoarsestN == 0 || st.Levels == 0 {
			t.Errorf("%s: hierarchy stats empty: %+v", s.Name(), st)
		}
	}
}

// The multilevel solver on a large graph must build a real hierarchy and
// report RQI/smoothing work; direct Lanczos must report the trivial one.
func TestStatsShapePerScheme(t *testing.T) {
	g := graph.Grid(60, 60)
	ws := scratch.New()
	_, ml, err := Multilevel{}.Solve(context.Background(), ws, g)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Levels < 2 || ml.CoarsestN >= g.N() {
		t.Fatalf("multilevel hierarchy stats: %+v", ml)
	}
	if ml.RQIIterations == 0 || ml.JacobiSweeps == 0 {
		t.Fatalf("multilevel refinement not instrumented: %+v", ml)
	}
	_, lz, err := Lanczos{}.Solve(context.Background(), ws, g)
	if err != nil {
		t.Fatal(err)
	}
	if lz.Levels != 1 || lz.CoarsestN != g.N() {
		t.Fatalf("lanczos stats should be the trivial hierarchy: %+v", lz)
	}
	if lz.RQIIterations != 0 || lz.JacobiSweeps != 0 {
		t.Fatalf("lanczos reports refinement work: %+v", lz)
	}
}

// A starved Lanczos budget yields a usable partial vector with
// Converged=false — not a hard error.
func TestLanczosPartialConvergenceSurfaces(t *testing.T) {
	g := graph.Grid(50, 50)
	ws := scratch.New()
	x, st, err := Lanczos{Opt: lanczos.Options{MaxBasis: 4, MaxRestarts: 1}}.Solve(context.Background(), ws, g)
	if err != nil {
		t.Fatalf("partial convergence must not be a hard error: %v", err)
	}
	if x == nil {
		t.Fatal("no vector returned")
	}
	if st.Converged {
		t.Fatal("starved solve reported Converged=true")
	}
	if st.Residual == 0 {
		t.Fatal("residual not recorded for partial solve")
	}
}

// Standalone RQI from a perturbed exact start must lock onto λ2 of the
// path: λ2 = 2(1 − cos(π/n)).
func TestRQIPolishesStartOnPath(t *testing.T) {
	const n = 300
	g := graph.Path(n)
	want := 2 * (1 - math.Cos(math.Pi/n))
	// Exact Fiedler vector of the path: x_v = cos(π(v + 1/2)/n).
	start := make([]float64, n)
	for v := 0; v < n; v++ {
		start[v] = math.Cos(math.Pi*(float64(v)+0.5)/float64(n)) + 0.02*math.Sin(float64(7*v))
	}
	ws := scratch.New()
	_, st, err := RQI{Start: start}.Solve(context.Background(), ws, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Lambda-want) > 1e-6*(1+want) {
		t.Fatalf("RQI λ = %g, want %g (residual %g)", st.Lambda, want, st.Residual)
	}
	if st.RQIIterations == 0 && !st.Converged {
		t.Fatalf("no iterations and not converged: %+v", st)
	}
}

// The random-start RQI path must produce a unit vector orthogonal to ones
// and a nonnegative Rayleigh quotient.
func TestRQIRandomStart(t *testing.T) {
	g := graph.Grid(20, 20)
	ws := scratch.New()
	x, st, err := RQI{Seed: 3}.Solve(context.Background(), ws, g)
	if err != nil {
		t.Fatal(err)
	}
	var sum, nrm float64
	for _, v := range x {
		sum += v
		nrm += v * v
	}
	if math.Abs(sum) > 1e-8 || math.Abs(nrm-1) > 1e-8 {
		t.Fatalf("1ᵀx = %g, ‖x‖² = %g", sum, nrm)
	}
	if st.Lambda < 0 {
		t.Fatalf("negative λ %g", st.Lambda)
	}
	if st.JacobiSweeps == 0 || st.MatVecs == 0 {
		t.Fatalf("random-start smoothing not instrumented: %+v", st)
	}
}

func TestStatsAccumulate(t *testing.T) {
	a := Stats{Lambda: 1, Residual: 2, MatVecs: 10, RQIIterations: 3, JacobiSweeps: 4, Levels: 5, CoarsestN: 6, Converged: true}
	a.Accumulate(Stats{MatVecs: 7, RQIIterations: 1, JacobiSweeps: 2, Converged: true})
	if a.MatVecs != 17 || a.RQIIterations != 4 || a.JacobiSweeps != 6 || !a.Converged {
		t.Fatalf("counters wrong: %+v", a)
	}
	if a.Lambda != 1 || a.Residual != 2 || a.Levels != 5 || a.CoarsestN != 6 {
		t.Fatalf("estimates must stay the recorded solve's: %+v", a)
	}
	a.Accumulate(Stats{Converged: false})
	if a.Converged {
		t.Fatal("Converged must and-accumulate")
	}
}

// MultilevelOptionsRoundTrip: solver options pass through to the scheme.
func TestMultilevelOptionsPassThrough(t *testing.T) {
	g := graph.Grid(50, 50)
	ws := scratch.New()
	_, st, err := Multilevel{Opt: multilevel.Options{CoarsestSize: 30}}.Solve(context.Background(), ws, g)
	if err != nil {
		t.Fatal(err)
	}
	if st.CoarsestN > 30 {
		t.Fatalf("CoarsestSize not honored: %+v", st)
	}
}
