package solver

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/scratch"
)

// BenchmarkEigensolver is the multilevel-vs-direct-Lanczos ablation the
// BENCH_pipeline.json artifact tracks: the same Fiedler computation at the
// two sizes bracketing the core.AutoThreshold crossover (n ≈ 2k and
// n ≈ 20k). The matvecs/solve metric rides along so the artifact records
// solver work, not just wall clock.
func BenchmarkEigensolver(b *testing.B) {
	sizes := []struct {
		name string
		g    *graph.Graph
	}{
		{"n2k", graph.Grid(45, 45)},    // 2025 vertices
		{"n20k", graph.Grid(141, 141)}, // 19881 vertices
	}
	for _, sz := range sizes {
		for _, s := range []Solver{Multilevel{}, Lanczos{}} {
			b.Run(s.Name()+"/"+sz.name, func(b *testing.B) {
				ws := scratch.New()
				b.ReportAllocs()
				b.ResetTimer()
				var matvecs int
				for i := 0; i < b.N; i++ {
					_, st, err := s.Solve(context.Background(), ws, sz.g)
					if err != nil {
						b.Fatal(err)
					}
					matvecs = st.MatVecs
				}
				b.ReportMetric(float64(matvecs), "matvecs/solve")
			})
		}
	}
}
