package envelope

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/perm"
)

func TestExhaustiveMinPath(t *testing.T) {
	// The path's natural order is optimal: Esize = Ework = n−1.
	for n := 2; n <= 7; n++ {
		g := graph.Path(n)
		esize, ework := ExhaustiveMin(g)
		if esize != int64(n-1) || ework != int64(n-1) {
			t.Fatalf("P%d: min = %d/%d, want %d/%d", n, esize, ework, n-1, n-1)
		}
	}
}

func TestExhaustiveMinComplete(t *testing.T) {
	// K_n's envelope is ordering-invariant: n(n−1)/2 and Σi².
	g := graph.Complete(5)
	esize, ework := ExhaustiveMin(g)
	if esize != 10 {
		t.Fatalf("K5 Esize min = %d, want 10", esize)
	}
	if ework != 0+1+4+9+16 {
		t.Fatalf("K5 Ework min = %d, want 30", ework)
	}
}

func TestExhaustiveMinMatchesCompute(t *testing.T) {
	// The streamlined inner loop must agree with Compute on every graph.
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(6, 6, seed)
		esize, ework := ExhaustiveMin(g)
		// Recompute by brute force through the public Compute.
		bestE, bestW := int64(1<<62), int64(1<<62)
		order := perm.Identity(6)
		var rec func(k int)
		rec = func(k int) {
			if k == 6 {
				s := Compute(g, order)
				if s.Esize < bestE {
					bestE = s.Esize
				}
				if s.Ework < bestW {
					bestW = s.Ework
				}
				return
			}
			for i := k; i < 6; i++ {
				order[k], order[i] = order[i], order[k]
				rec(k + 1)
				order[k], order[i] = order[i], order[k]
			}
		}
		rec(0)
		if esize != bestE || ework != bestW {
			t.Fatalf("seed %d: ExhaustiveMin %d/%d vs Compute %d/%d", seed, esize, ework, bestE, bestW)
		}
	}
}

func TestExhaustiveMinOrderAttainsMin(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		g := graph.Random(7, 9, seed)
		o, e := ExhaustiveMinOrder(g)
		if err := o.Check(); err != nil {
			t.Fatal(err)
		}
		if Esize(g, o) != e {
			t.Fatalf("returned order does not attain claimed envelope")
		}
		minE, _ := ExhaustiveMin(g)
		if e != minE {
			t.Fatalf("ExhaustiveMinOrder %d != ExhaustiveMin %d", e, minE)
		}
	}
}

func TestExhaustivePanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExhaustiveMin(graph.Path(ExhaustiveMax + 1))
}

func TestExhaustiveEmpty(t *testing.T) {
	esize, ework := ExhaustiveMin(graph.NewBuilder(0).Build())
	if esize != 0 || ework != 0 {
		t.Fatal("empty graph minima nonzero")
	}
}
