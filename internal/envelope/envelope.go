// Package envelope computes the envelope parameters of Section 2 of the
// paper for a sparse symmetric matrix pattern (given as its adjacency graph
// plus an implicit nonzero diagonal) under an ordering: row widths, envelope
// size, envelope work, bandwidth, 1-sum, 2-sum and the frontwidth profile.
//
// These are the objective functions every experiment in Section 4 reports,
// and the inequalities of Theorem 2.1 hold among them per ordering (see the
// property tests).
//
// The *Into variants are the hot path: they take a scratch.Workspace, fuse
// every statistic into a single traversal of the ordering, and run with
// zero steady-state allocations (guarded by AllocsPerRun tests). The plain
// functions are thin wrappers that borrow a pooled workspace.
package envelope

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/scratch"
)

// Stats collects the envelope parameters of a matrix pattern under one
// ordering. All quantities use the paper's definitions (nonzero diagonal
// assumed, 0-based positions).
type Stats struct {
	// Esize is the envelope size |Env(A)| = Σᵢ rᵢ.
	Esize int64
	// Ework is the work estimate Σᵢ rᵢ² for envelope Cholesky.
	Ework int64
	// Bandwidth is max rᵢ.
	Bandwidth int
	// OneSum is σ₁(A) = Σ over lower-triangle nonzeros of (i−j)
	// = Σ over edges |pos(u)−pos(v)|.
	OneSum int64
	// TwoSum is σ₂(A) = Σ over lower-triangle nonzeros of (i−j)².
	TwoSum int64
	// MaxFrontwidth is max_j |adj(V_j)|, the peak wavefront.
	MaxFrontwidth int
}

// RowWidths returns rᵢ = i − fᵢ for each position i of the ordering, where
// fᵢ is the position of the leftmost neighbor of the vertex at position i
// (or i itself when no neighbor precedes it; the diagonal is implicit).
// order is new→old.
func RowWidths(g *graph.Graph, order perm.Perm) []int32 {
	inv := order.Inverse()
	r := make([]int32, len(order))
	for i, v := range order {
		first := int32(i)
		for _, w := range g.Neighbors(int(v)) {
			if p := inv[w]; p < first {
				first = p
			}
		}
		r[i] = int32(i) - first
	}
	return r
}

// Compute returns the envelope statistics of graph g under the ordering.
// It panics if the ordering length does not match g.N(); use Check for a
// non-panicking validation.
func Compute(g *graph.Graph, order perm.Perm) Stats {
	ws := scratch.Get()
	defer scratch.Put(ws)
	return ComputeInto(ws, g, order)
}

// ComputeInto is the fused envelope kernel: it produces every Stats field
// in one traversal of the ordering, using ws for the inverse-permutation
// and wavefront scratch. Steady state is allocation-free.
//
//envlint:noalloc
//envlint:readonly order
func ComputeInto(ws *scratch.Workspace, g *graph.Graph, order perm.Perm) Stats {
	if len(order) != g.N() {
		panic(fmt.Sprintf("envelope: ordering length %d != n %d", len(order), g.N()))
	}
	m := ws.Mark()
	defer ws.Release(m)
	n := len(order)
	inv := ws.Int32s(n)
	for i, v := range order {
		inv[v] = int32(i)
	}
	// active[w] tracks whether w is currently in adj(V_j): numbered later
	// than j but adjacent to some numbered vertex.
	active := ws.Bools(n)
	var s Stats
	front := 0
	for j, v := range order {
		if active[v] {
			active[v] = false
			front--
		}
		first := int32(j)
		for _, w := range g.Neighbors(int(v)) {
			p := inv[w]
			if p < first {
				first = p
			}
			if int(p) > j {
				// Each edge is charged once, from its earlier endpoint:
				// |Δpos| to the 1-sum, Δpos² to the 2-sum.
				d := int64(p) - int64(j)
				s.OneSum += d
				s.TwoSum += d * d
				if !active[w] {
					active[w] = true
					front++
				}
			}
		}
		r := int64(int64(j) - int64(first))
		s.Esize += r
		s.Ework += r * r
		if int(r) > s.Bandwidth {
			s.Bandwidth = int(r)
		}
		if front > s.MaxFrontwidth {
			s.MaxFrontwidth = front
		}
	}
	return s
}

// Esize returns only the envelope size; it is the hot call used by
// Algorithm 1 to compare the two sort directions.
func Esize(g *graph.Graph, order perm.Perm) int64 {
	ws := scratch.Get()
	defer scratch.Put(ws)
	return EsizeInto(ws, g, order)
}

// EsizeInto computes the envelope size with ws scratch; steady state is
// allocation-free.
//
//envlint:noalloc
//envlint:readonly order
func EsizeInto(ws *scratch.Workspace, g *graph.Graph, order perm.Perm) int64 {
	m := ws.Mark()
	defer ws.Release(m)
	inv := ws.Int32s(len(order))
	for i, v := range order {
		inv[v] = int32(i)
	}
	var total int64
	for i, v := range order {
		first := int32(i)
		for _, w := range g.Neighbors(int(v)) {
			if p := inv[w]; p < first {
				first = p
			}
		}
		total += int64(int32(i) - first)
	}
	return total
}

// EsizeBothInto returns the envelope sizes of order and of its reversal in
// a single traversal with one shared inverse — the asc-vs-desc comparison
// of Algorithm 1 step 3 without materializing the reversed permutation.
//
// The identity: under the reversal, the vertex at (reversed) position
// n−1−i has row width max(0, maxp−i) where maxp is the largest original
// position among the vertex and its neighbors.
//
//envlint:noalloc
//envlint:readonly order
func EsizeBothInto(ws *scratch.Workspace, g *graph.Graph, order perm.Perm) (fwd, rev int64) {
	m := ws.Mark()
	defer ws.Release(m)
	inv := ws.Int32s(len(order))
	for i, v := range order {
		inv[v] = int32(i)
	}
	for i, v := range order {
		minp, maxp := int32(i), int32(i)
		for _, w := range g.Neighbors(int(v)) {
			p := inv[w]
			if p < minp {
				minp = p
			}
			if p > maxp {
				maxp = p
			}
		}
		fwd += int64(int32(i) - minp)
		rev += int64(maxp - int32(i))
	}
	return fwd, rev
}

// Bandwidth returns only the bandwidth of the ordering.
func Bandwidth(g *graph.Graph, order perm.Perm) int {
	ws := scratch.Get()
	defer scratch.Put(ws)
	return BandwidthInto(ws, g, order)
}

// BandwidthInto computes the bandwidth with ws scratch.
//
//envlint:noalloc
//envlint:readonly order
func BandwidthInto(ws *scratch.Workspace, g *graph.Graph, order perm.Perm) int {
	m := ws.Mark()
	defer ws.Release(m)
	inv := ws.Int32s(len(order))
	for i, v := range order {
		inv[v] = int32(i)
	}
	bw := 0
	for i, v := range order {
		for _, w := range g.Neighbors(int(v)) {
			if p := int(inv[w]); p < i && i-p > bw {
				bw = i - p
			}
		}
	}
	return bw
}

// Frontwidths returns the wavefront profile: out[j] = |adj(V_j)| where
// V_j is the set of the first j+1 vertices in the ordering. Σ out[j] over
// the profile equals Esize (the identity of §2.4), which the tests verify.
func Frontwidths(g *graph.Graph, order perm.Perm) []int32 {
	ws := scratch.Get()
	defer scratch.Put(ws)
	n := g.N()
	m := ws.Mark()
	defer ws.Release(m)
	inv := ws.Int32s(n)
	for i, v := range order {
		inv[v] = int32(i)
	}
	out := make([]int32, n)
	active := ws.Bools(n)
	front := int32(0)
	for j, v := range order {
		if active[v] {
			// v was in the front and is now being numbered.
			active[v] = false
			front--
		}
		for _, w := range g.Neighbors(int(v)) {
			if int(inv[w]) > j && !active[w] {
				active[w] = true
				front++
			}
		}
		out[j] = front
	}
	return out
}

// EworkBound returns the upper bound (1/2)·Σ rᵢ(rᵢ+3) on the flops of an
// envelope Cholesky factorization quoted in §2.1.
func EworkBound(g *graph.Graph, order perm.Perm) int64 {
	var total int64
	for _, r := range RowWidths(g, order) {
		total += int64(r) * (int64(r) + 3)
	}
	return total / 2
}
