// Package envelope computes the envelope parameters of Section 2 of the
// paper for a sparse symmetric matrix pattern (given as its adjacency graph
// plus an implicit nonzero diagonal) under an ordering: row widths, envelope
// size, envelope work, bandwidth, 1-sum, 2-sum and the frontwidth profile.
//
// These are the objective functions every experiment in Section 4 reports,
// and the inequalities of Theorem 2.1 hold among them per ordering (see the
// property tests).
package envelope

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/perm"
)

// Stats collects the envelope parameters of a matrix pattern under one
// ordering. All quantities use the paper's definitions (nonzero diagonal
// assumed, 0-based positions).
type Stats struct {
	// Esize is the envelope size |Env(A)| = Σᵢ rᵢ.
	Esize int64
	// Ework is the work estimate Σᵢ rᵢ² for envelope Cholesky.
	Ework int64
	// Bandwidth is max rᵢ.
	Bandwidth int
	// OneSum is σ₁(A) = Σ over lower-triangle nonzeros of (i−j)
	// = Σ over edges |pos(u)−pos(v)|.
	OneSum int64
	// TwoSum is σ₂(A) = Σ over lower-triangle nonzeros of (i−j)².
	TwoSum int64
	// MaxFrontwidth is max_j |adj(V_j)|, the peak wavefront.
	MaxFrontwidth int
}

// RowWidths returns rᵢ = i − fᵢ for each position i of the ordering, where
// fᵢ is the position of the leftmost neighbor of the vertex at position i
// (or i itself when no neighbor precedes it; the diagonal is implicit).
// order is new→old.
func RowWidths(g *graph.Graph, order perm.Perm) []int32 {
	inv := order.Inverse()
	r := make([]int32, len(order))
	for i, v := range order {
		first := int32(i)
		for _, w := range g.Neighbors(int(v)) {
			if p := inv[w]; p < first {
				first = p
			}
		}
		r[i] = int32(i) - first
	}
	return r
}

// Compute returns the envelope statistics of graph g under the ordering.
// It panics if the ordering length does not match g.N(); use Check for a
// non-panicking validation.
func Compute(g *graph.Graph, order perm.Perm) Stats {
	if len(order) != g.N() {
		panic(fmt.Sprintf("envelope: ordering length %d != n %d", len(order), g.N()))
	}
	inv := order.Inverse()
	var s Stats
	for i, v := range order {
		first := int32(i)
		for _, w := range g.Neighbors(int(v)) {
			if p := inv[w]; p < first {
				first = p
			}
		}
		r := int64(int32(i) - first)
		s.Esize += r
		s.Ework += r * r
		if int(r) > s.Bandwidth {
			s.Bandwidth = int(r)
		}
	}
	// 1-sum and 2-sum over edges: each lower-triangular off-diagonal nonzero
	// corresponds to exactly one edge and contributes |Δpos| and Δpos².
	for v := 0; v < g.N(); v++ {
		pv := int64(inv[v])
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				d := pv - int64(inv[w])
				if d < 0 {
					d = -d
				}
				s.OneSum += d
				s.TwoSum += d * d
			}
		}
	}
	s.MaxFrontwidth = maxFrontwidth(g, order, inv)
	return s
}

// Esize returns only the envelope size; it is the hot call used by
// Algorithm 1 to compare the two sort directions.
func Esize(g *graph.Graph, order perm.Perm) int64 {
	inv := order.Inverse()
	var total int64
	for i, v := range order {
		first := int32(i)
		for _, w := range g.Neighbors(int(v)) {
			if p := inv[w]; p < first {
				first = p
			}
		}
		total += int64(int32(i) - first)
	}
	return total
}

// Bandwidth returns only the bandwidth of the ordering.
func Bandwidth(g *graph.Graph, order perm.Perm) int {
	inv := order.Inverse()
	bw := 0
	for i, v := range order {
		for _, w := range g.Neighbors(int(v)) {
			if p := int(inv[w]); p < i && i-p > bw {
				bw = i - p
			}
		}
	}
	return bw
}

// Frontwidths returns the wavefront profile: out[j] = |adj(V_j)| where
// V_j is the set of the first j+1 vertices in the ordering. Σ out[j] over
// the profile equals Esize (the identity of §2.4), which the tests verify.
func Frontwidths(g *graph.Graph, order perm.Perm) []int32 {
	n := g.N()
	inv := order.Inverse()
	out := make([]int32, n)
	// active[w] tracks whether w is currently in adj(V_j): numbered later
	// than j but adjacent to some numbered vertex.
	active := make([]bool, n)
	front := int32(0)
	for j, v := range order {
		if active[v] {
			// v was in the front and is now being numbered.
			active[v] = false
			front--
		}
		for _, w := range g.Neighbors(int(v)) {
			if int(inv[w]) > j && !active[w] {
				active[w] = true
				front++
			}
		}
		out[j] = front
	}
	return out
}

func maxFrontwidth(g *graph.Graph, order perm.Perm, inv perm.Perm) int {
	n := g.N()
	active := make([]bool, n)
	front, max := 0, 0
	for j, v := range order {
		if active[v] {
			active[v] = false
			front--
		}
		for _, w := range g.Neighbors(int(v)) {
			if int(inv[w]) > j && !active[w] {
				active[w] = true
				front++
			}
		}
		if front > max {
			max = front
		}
	}
	return max
}

// EworkBound returns the upper bound (1/2)·Σ rᵢ(rᵢ+3) on the flops of an
// envelope Cholesky factorization quoted in §2.1.
func EworkBound(g *graph.Graph, order perm.Perm) int64 {
	var total int64
	for _, r := range RowWidths(g, order) {
		total += int64(r) * (int64(r) + 3)
	}
	return total / 2
}
