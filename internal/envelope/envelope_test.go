package envelope

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/perm"
)

// pathStats: P_n under the identity has r_0=0 and r_i=1 for i>0.
func TestPathIdentity(t *testing.T) {
	g := graph.Path(6)
	s := Compute(g, perm.Identity(6))
	if s.Esize != 5 {
		t.Errorf("Esize = %d, want 5", s.Esize)
	}
	if s.Ework != 5 {
		t.Errorf("Ework = %d, want 5", s.Ework)
	}
	if s.Bandwidth != 1 {
		t.Errorf("Bandwidth = %d, want 1", s.Bandwidth)
	}
	if s.OneSum != 5 || s.TwoSum != 5 {
		t.Errorf("sums = %d,%d want 5,5", s.OneSum, s.TwoSum)
	}
	if s.MaxFrontwidth != 1 {
		t.Errorf("MaxFrontwidth = %d, want 1", s.MaxFrontwidth)
	}
}

// A hand-computed example: K_3 with one pendant vertex, ordering 0,1,2,3
// with edges {0,1},{0,2},{1,2},{2,3}.
func TestHandComputed(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	s := Compute(g, perm.Identity(4))
	// r = [0, 1, 2, 1]; Esize = 4; Ework = 0+1+4+1 = 6; bw = 2.
	if s.Esize != 4 || s.Ework != 6 || s.Bandwidth != 2 {
		t.Fatalf("got Esize=%d Ework=%d bw=%d", s.Esize, s.Ework, s.Bandwidth)
	}
	// σ1: edges (0,1):1 (0,2):2 (1,2):1 (2,3):1 → 5; σ2: 1+4+1+1 = 7.
	if s.OneSum != 5 || s.TwoSum != 7 {
		t.Fatalf("σ1=%d σ2=%d want 5,7", s.OneSum, s.TwoSum)
	}
}

func TestCompleteGraph(t *testing.T) {
	n := 7
	g := graph.Complete(n)
	s := Compute(g, perm.Identity(n))
	// r_i = i; Esize = n(n-1)/2; bandwidth n-1.
	if s.Esize != int64(n*(n-1)/2) {
		t.Errorf("Esize = %d", s.Esize)
	}
	if s.Bandwidth != n-1 {
		t.Errorf("Bandwidth = %d", s.Bandwidth)
	}
	// Envelope of K_n is invariant under any ordering.
	for seed := int64(0); seed < 5; seed++ {
		p := perm.Random(n, seed)
		if got := Esize(g, p); got != s.Esize {
			t.Errorf("K_n envelope changed under permutation: %d", got)
		}
	}
}

func TestBandwidthMatchesCompute(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := graph.Random(40, 80, seed)
		p := perm.Random(40, seed+100)
		if bw := Bandwidth(g, p); bw != Compute(g, p).Bandwidth {
			t.Fatalf("seed %d: Bandwidth %d != Compute %d", seed, bw, Compute(g, p).Bandwidth)
		}
	}
}

func TestRowWidthsSumIsEsize(t *testing.T) {
	g := graph.Grid(6, 5)
	p := perm.Random(30, 3)
	var sum int64
	for _, r := range RowWidths(g, p) {
		sum += int64(r)
	}
	if sum != Esize(g, p) {
		t.Fatalf("Σr = %d, Esize = %d", sum, Esize(g, p))
	}
}

// §2.4: Esize(A) = Σ_j |adj(V_j)| — the frontwidth identity.
func TestFrontwidthIdentity(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := graph.Random(50, 100, seed)
		p := perm.Random(50, seed*3+1)
		var sum int64
		for _, f := range Frontwidths(g, p) {
			sum += int64(f)
		}
		if es := Esize(g, p); sum != es {
			t.Fatalf("seed %d: Σ frontwidths = %d, Esize = %d", seed, sum, es)
		}
	}
}

func TestFrontwidthLastIsZero(t *testing.T) {
	g := graph.Grid(4, 4)
	fw := Frontwidths(g, perm.Identity(16))
	if fw[len(fw)-1] != 0 {
		t.Fatalf("final frontwidth = %d, want 0", fw[len(fw)-1])
	}
}

// Theorem 2.1, per-ordering forms. For any ordering:
//
//	Esize ≤ σ1 ≤ Δ·Esize,  Ework ≤ σ2 ≤ Δ·Ework,
//	σ1 ≤ σ2 (integer gaps ≥ 1),  σ1² ≤ m·σ2 (Cauchy–Schwarz).
func TestTheorem21Inequalities(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(40) + 2
		g := graph.Random(n, rng.Intn(3*n), rng.Int63())
		p := perm.Random(n, rng.Int63())
		s := Compute(g, p)
		delta := int64(g.MaxDegree())
		m := int64(g.M())
		if s.Esize > s.OneSum {
			t.Fatalf("Esize %d > σ1 %d", s.Esize, s.OneSum)
		}
		if s.OneSum > delta*s.Esize {
			t.Fatalf("σ1 %d > Δ·Esize %d", s.OneSum, delta*s.Esize)
		}
		if s.Ework > s.TwoSum {
			t.Fatalf("Ework %d > σ2 %d", s.Ework, s.TwoSum)
		}
		if s.TwoSum > delta*s.Ework {
			t.Fatalf("σ2 %d > Δ·Ework %d", s.TwoSum, delta*s.Ework)
		}
		if s.OneSum > s.TwoSum {
			t.Fatalf("σ1 %d > σ2 %d", s.OneSum, s.TwoSum)
		}
		if s.OneSum*s.OneSum > m*s.TwoSum {
			t.Fatalf("σ1² %d > m·σ2 %d", s.OneSum*s.OneSum, m*s.TwoSum)
		}
	}
}

// Quick property: envelope parameters are invariant under reversal only for
// symmetric profiles — but bandwidth always is an upper bound for row widths
// and Esize ≤ n·bw.
func TestEnvelopeBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%30+30) % 61
		if n < 2 {
			n = 2
		}
		g := graph.Random(n, n, seed)
		p := perm.Random(n, seed+1)
		s := Compute(g, p)
		if s.Esize > int64(n)*int64(s.Bandwidth) {
			return false
		}
		if s.Ework > int64(n)*int64(s.Bandwidth)*int64(s.Bandwidth) {
			return false
		}
		if int64(s.MaxFrontwidth) > s.Esize && s.Esize > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEworkBound(t *testing.T) {
	g := graph.Grid(5, 5)
	p := perm.Identity(25)
	rw := RowWidths(g, p)
	var want int64
	for _, r := range rw {
		want += int64(r) * (int64(r) + 3)
	}
	want /= 2
	if got := EworkBound(g, p); got != want {
		t.Fatalf("EworkBound = %d, want %d", got, want)
	}
	// The bound dominates Ework/2 and is dominated by Ework when bw ≥ 3... just
	// check it is at least Esize (since r(r+3)/2 ≥ r).
	if got := EworkBound(g, p); got < Esize(g, p) {
		t.Fatalf("EworkBound %d < Esize %d", got, Esize(g, p))
	}
}

func TestComputePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compute(graph.Path(4), perm.Identity(3))
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(3, nil)
	s := Compute(g, perm.Identity(3))
	if s.Esize != 0 || s.Bandwidth != 0 || s.OneSum != 0 || s.MaxFrontwidth != 0 {
		t.Fatalf("edgeless graph stats = %+v", s)
	}
}

func BenchmarkCompute(b *testing.B) {
	g := graph.Grid(100, 100)
	p := perm.Random(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, p)
	}
}

func BenchmarkEsize(b *testing.B) {
	g := graph.Grid(100, 100)
	p := perm.Random(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Esize(g, p)
	}
}
