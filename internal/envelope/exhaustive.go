package envelope

import (
	"math"

	"repro/internal/graph"
	"repro/internal/perm"
)

// ExhaustiveMax is the largest graph Exhaustive* will accept; n! orderings
// are enumerated, so 10 (3.6M orderings) is already seconds of work.
const ExhaustiveMax = 10

// ExhaustiveMin enumerates all n! orderings of a tiny graph and returns the
// minimum envelope size and minimum envelope work (generally attained by
// different orderings, as §2.1 notes). It exists to validate heuristics
// and the Theorem 2.2 bounds; it panics if g has more than ExhaustiveMax
// vertices.
func ExhaustiveMin(g *graph.Graph) (minEsize, minEwork int64) {
	n := g.N()
	if n > ExhaustiveMax {
		panic("envelope: graph too large for exhaustive enumeration")
	}
	if n == 0 {
		return 0, 0
	}
	order := make(perm.Perm, n)
	for i := range order {
		order[i] = int32(i)
	}
	minEsize, minEwork = math.MaxInt64, math.MaxInt64
	inv := make(perm.Perm, n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			for p, v := range order {
				inv[v] = int32(p)
			}
			var esize, ework int64
			for i, v := range order {
				first := int32(i)
				for _, w := range g.Neighbors(int(v)) {
					if p := inv[w]; p < first {
						first = p
					}
				}
				r := int64(int32(i) - first)
				esize += r
				ework += r * r
			}
			if esize < minEsize {
				minEsize = esize
			}
			if ework < minEwork {
				minEwork = ework
			}
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			rec(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	rec(0)
	return minEsize, minEwork
}

// ExhaustiveMinOrder returns an ordering attaining the minimum envelope
// size (ties broken by enumeration order). Same size limit as
// ExhaustiveMin.
func ExhaustiveMinOrder(g *graph.Graph) (perm.Perm, int64) {
	n := g.N()
	if n > ExhaustiveMax {
		panic("envelope: graph too large for exhaustive enumeration")
	}
	best := perm.Identity(n)
	bestE := Esize(g, best)
	order := perm.Identity(n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if e := Esize(g, order); e < bestE {
				bestE = e
				copy(best, order)
			}
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			rec(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	rec(0)
	return best, bestE
}
