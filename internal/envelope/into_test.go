package envelope

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/scratch"
)

// referenceStats is the original multi-pass computation, kept as the oracle
// for the fused single-pass kernel.
func referenceStats(g *graph.Graph, order perm.Perm) Stats {
	inv := order.Inverse()
	var s Stats
	for i, v := range order {
		first := int32(i)
		for _, w := range g.Neighbors(int(v)) {
			if p := inv[w]; p < first {
				first = p
			}
		}
		r := int64(int32(i) - first)
		s.Esize += r
		s.Ework += r * r
		if int(r) > s.Bandwidth {
			s.Bandwidth = int(r)
		}
	}
	for v := 0; v < g.N(); v++ {
		pv := int64(inv[v])
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				d := pv - int64(inv[w])
				if d < 0 {
					d = -d
				}
				s.OneSum += d
				s.TwoSum += d * d
			}
		}
	}
	n := g.N()
	active := make([]bool, n)
	front, max := 0, 0
	for j, v := range order {
		if active[v] {
			active[v] = false
			front--
		}
		for _, w := range g.Neighbors(int(v)) {
			if int(inv[w]) > j && !active[w] {
				active[w] = true
				front++
			}
		}
		if front > max {
			max = front
		}
	}
	s.MaxFrontwidth = max
	return s
}

func TestComputeIntoMatchesReference(t *testing.T) {
	ws := scratch.New()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(60) + 1
		g := graph.Random(n, rng.Intn(4*n), rng.Int63())
		p := perm.Random(n, rng.Int63())
		got := ComputeInto(ws, g, p)
		want := referenceStats(g, p)
		if got != want {
			t.Fatalf("trial %d (n=%d): fused %+v != reference %+v", trial, n, got, want)
		}
	}
}

func TestEsizeBothIntoMatchesEsize(t *testing.T) {
	ws := scratch.New()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(50) + 1
		g := graph.Random(n, rng.Intn(3*n), rng.Int63())
		p := perm.Random(n, rng.Int63())
		fwd, rev := EsizeBothInto(ws, g, p)
		if want := Esize(g, p); fwd != want {
			t.Fatalf("trial %d: fwd %d != Esize %d", trial, fwd, want)
		}
		if want := Esize(g, p.Reverse()); rev != want {
			t.Fatalf("trial %d: rev %d != Esize(reversed) %d", trial, rev, want)
		}
	}
}

func TestEsizeIntoMatchesCompute(t *testing.T) {
	ws := scratch.New()
	g := graph.Grid(8, 9)
	for seed := int64(0); seed < 5; seed++ {
		p := perm.Random(72, seed)
		if got, want := EsizeInto(ws, g, p), ComputeInto(ws, g, p).Esize; got != want {
			t.Fatalf("seed %d: EsizeInto %d != Compute.Esize %d", seed, got, want)
		}
	}
}

// The allocation guards of the tentpole: steady-state envelope scoring must
// not allocate at all.
func TestScoringIsAllocationFree(t *testing.T) {
	ws := scratch.New()
	g := graph.Grid(40, 40)
	p := perm.Random(1600, 3)
	ComputeInto(ws, g, p) // warm the arenas
	for name, f := range map[string]func(){
		"ComputeInto":   func() { ComputeInto(ws, g, p) },
		"EsizeInto":     func() { EsizeInto(ws, g, p) },
		"EsizeBothInto": func() { EsizeBothInto(ws, g, p) },
		"BandwidthInto": func() { BandwidthInto(ws, g, p) },
	} {
		if allocs := testing.AllocsPerRun(50, f); allocs != 0 {
			t.Errorf("%s allocates in steady state: %v allocs/op", name, allocs)
		}
	}
}

func BenchmarkComputeInto(b *testing.B) {
	ws := scratch.New()
	g := graph.Grid(100, 100)
	p := perm.Random(10000, 1)
	ComputeInto(ws, g, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeInto(ws, g, p)
	}
}

func BenchmarkEsizeBothInto(b *testing.B) {
	ws := scratch.New()
	g := graph.Grid(100, 100)
	p := perm.Random(10000, 1)
	EsizeBothInto(ws, g, p) // warm the arenas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EsizeBothInto(ws, g, p)
	}
}
