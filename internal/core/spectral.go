// Package core implements the paper's primary contribution: the spectral
// envelope-reduction ordering (Algorithm 1). Given a sparse symmetric
// matrix pattern it forms the Laplacian of the adjacency graph, computes a
// second Laplacian eigenvector (Fiedler vector) — directly with Lanczos for
// small graphs or via the multilevel scheme of §3 for large ones — sorts
// the eigenvector components in both directions, and keeps the permutation
// with the smaller envelope.
//
// Theorem 2.3's guarantee, that the rank permutation of the eigenvector is
// the closest permutation vector to it, is exercised in this package's
// tests; §2.4's near-adjacency-ordering property is as well.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/laplacian"
	"repro/internal/multilevel"
	"repro/internal/order"
	"repro/internal/perm"
	"repro/internal/scratch"
	"repro/internal/solver"
)

// Method selects how the Fiedler vector is computed.
type Method int

const (
	// MethodAuto uses direct Lanczos below AutoThreshold vertices and the
	// multilevel scheme above — the paper's practical configuration.
	MethodAuto Method = iota
	// MethodLanczos forces the direct Lanczos solver.
	MethodLanczos
	// MethodMultilevel forces the multilevel solver.
	MethodMultilevel
)

// AutoThreshold is the default component size at which MethodAuto switches
// from direct Lanczos to the multilevel scheme. Options.AutoThreshold
// overrides it per run.
const AutoThreshold = 2000

// Options configures the spectral ordering.
type Options struct {
	// Method picks the eigensolver (default MethodAuto).
	Method Method
	// AutoThreshold overrides the component size at which MethodAuto
	// switches from direct Lanczos to the multilevel scheme (0 = the
	// AutoThreshold default). The portfolio engine and the benchmarks use
	// it to ablate the crossover.
	AutoThreshold int
	// Lanczos configures the direct solver.
	Lanczos lanczos.Options
	// Multilevel configures the multilevel solver.
	Multilevel multilevel.Options
	// Seed drives all randomized pieces; runs are reproducible per seed.
	Seed int64
	// Operator, when non-nil, is a pre-built Laplacian operator of the
	// exact (connected) graph being solved, threaded through to the
	// selected scheme's finest level. The pipeline's per-component artifact
	// cache uses it to share one operator — with its persistent-pool worker
	// partition — across a component's spectral candidates. Leave nil for
	// whole-graph calls: Spectral's per-component dispatch builds its own.
	Operator laplacian.Interface
}

func (o Options) threshold() int {
	if o.AutoThreshold > 0 {
		return o.AutoThreshold
	}
	return AutoThreshold
}

// Solver resolves the eigensolver Options select for an n-vertex connected
// component, with seeds defaulted from Options.Seed. This is the single
// construction point of the unified solver engine: Spectral, the pipeline's
// artifact cache and the ablation benchmarks all go through it.
func (o Options) Solver(n int) solver.Solver {
	useML := false
	switch o.Method {
	case MethodMultilevel:
		useML = true
	case MethodLanczos:
		useML = false
	default:
		useML = n > o.threshold()
	}
	if useML {
		mlOpt := o.Multilevel
		if mlOpt.Seed == 0 {
			mlOpt.Seed = o.Seed
		}
		if mlOpt.Lanczos.Seed == 0 {
			mlOpt.Lanczos.Seed = o.Seed
		}
		return solver.Multilevel{Opt: mlOpt, Op: o.Operator}
	}
	lOpt := o.Lanczos
	if lOpt.Seed == 0 {
		lOpt.Seed = o.Seed
	}
	return solver.Lanczos{Opt: lOpt, Op: o.Operator}
}

// Info reports diagnostics of a spectral ordering run.
type Info struct {
	// Lambda2 is the λ2 estimate of the (largest) component.
	Lambda2 float64
	// Residual is the eigensolver residual on the largest component.
	Residual float64
	// Reversed is true when the nonincreasing sort won the envelope
	// comparison of Algorithm 1 step 3.
	Reversed bool
	// Multilevel is true when the multilevel solver was used for the
	// largest component.
	Multilevel bool
	// Components is the number of connected components ordered.
	Components int
	// MatVecs counts Laplacian applications across every eigensolve of the
	// run, all components and both schemes included (it mirrors
	// Solve.MatVecs). The SpectralSloan regression tests use it to prove
	// the hybrid never repeats an eigensolve.
	MatVecs int
	// Solve carries the full uniform solver statistics: estimates (Lambda,
	// Residual, Levels, CoarsestN, Scheme) from the largest component's
	// solve, counters (MatVecs, RQIIterations, JacobiSweeps) summed across
	// every component, Converged and-ed across them.
	Solve solver.Stats
}

// absorb folds one component's solve statistics into the run diagnostics.
// record is true for the largest (first-ordered) component, whose spectral
// estimates become the run's.
func (info *Info) absorb(st solver.Stats, record bool) {
	info.MatVecs += st.MatVecs
	if record {
		counters := info.Solve
		info.Solve = st
		info.Solve.AddCounters(counters)
		info.Lambda2 = st.Lambda
		info.Residual = st.Residual
		info.Multilevel = st.Scheme == solver.SchemeMultilevel
	} else {
		info.Solve.Accumulate(st)
	}
}

// eigensolveCount counts every Fiedler eigensolve this process has
// performed (not consumed-from-cache). The CLI's -stats output and the CI
// persistent-store check read it to prove a warm run solved nothing.
var eigensolveCount atomic.Int64

// EigensolveCount reports the number of Fiedler eigensolves performed by
// this process so far. Unlike Info/Report counters, which attribute cached
// solves to the runs that consume them, this counts work actually done —
// the number a persistent artifact store exists to drive to zero.
func EigensolveCount() int64 { return eigensolveCount.Load() }

// testHookEigensolve, when non-nil, observes every Fiedler eigensolve with
// the component size. Tests install it to assert the solver runs exactly
// once per component.
var testHookEigensolve func(n int)

// SetEigensolveTestHook installs f to observe every Fiedler eigensolve
// (called with the component size) and returns a function restoring the
// previous hook. Tests here and in internal/pipeline use it to prove each
// component's eigensolve runs exactly once across portfolio candidates.
func SetEigensolveTestHook(f func(n int)) (restore func()) {
	prev := testHookEigensolve
	testHookEigensolve = f
	return func() { testHookEigensolve = prev }
}

// Spectral computes the spectral envelope-reducing ordering of g
// (Algorithm 1). Disconnected graphs are ordered component by component
// (each uses the eigenvector of the smallest positive eigenvalue of its own
// Laplacian, per the paper's remark in §1) and concatenated largest-first.
func Spectral(g *graph.Graph, opt Options) (perm.Perm, Info, error) {
	ws := scratch.Get()
	defer scratch.Put(ws)
	//envlint:ignore ctxflow ctx-free convenience wrapper; SpectralWS is the cancellable entry point
	return SpectralWS(context.Background(), ws, g, opt)
}

// SpectralWS is Spectral with caller-provided scratch and cancellation: the
// envelope comparisons and subgraph extractions reuse ws buffers, which the
// parallel pipeline checks out once per worker, and ctx interrupts in-flight
// eigensolves at restart / V-cycle granularity (the typed
// *lanczos.ErrCancelled propagates with the best-so-far fallback inside).
func SpectralWS(ctx context.Context, ws *scratch.Workspace, g *graph.Graph, opt Options) (perm.Perm, Info, error) {
	n := g.N()
	info := Info{}
	if n == 0 {
		return perm.Perm{}, info, nil
	}
	if graph.IsConnected(g) {
		info.Components = 1
		o, err := spectralConnected(ctx, ws, g, opt, &info, true)
		return o, info, err
	}
	comps := graph.Components(g)
	info.Components = len(comps)
	// A caller-supplied operator describes the whole graph, not the
	// component subgraphs about to be solved.
	opt.Operator = nil
	out := make(perm.Perm, 0, n)
	var sub graph.Graph
	for ci, comp := range comps {
		g.SubgraphInto(ws, &sub, comp)
		local, err := spectralConnected(ctx, ws, &sub, opt, &info, ci == 0)
		if err != nil {
			return nil, info, fmt.Errorf("core: component %d: %w", ci, err)
		}
		for _, v := range local {
			out = append(out, int32(comp[v]))
		}
	}
	return out, info, nil
}

// FiedlerVector computes the Fiedler vector of the connected graph g with
// the solver selected by opt. It is exported for the examples and the
// ablation benchmarks.
func FiedlerVector(g *graph.Graph, opt Options) ([]float64, float64, error) {
	ws := scratch.Get()
	defer scratch.Put(ws)
	//envlint:ignore ctxflow ctx-free convenience wrapper; FiedlerConnectedWS is the cancellable entry point
	x, st, err := FiedlerConnectedWS(context.Background(), ws, g, opt)
	return x, st.Lambda, err
}

// FiedlerConnectedWS computes the Fiedler vector of the connected graph g
// with the solver selected by opt, reporting the uniform solver statistics.
// It is the single eigensolve entry point: Spectral, SpectralSloan and the
// pipeline's per-component artifact cache all funnel through it (and
// through the eigensolve test hook). The returned vector is freshly
// allocated and safe to retain; ws is used only for scratch.
func FiedlerConnectedWS(ctx context.Context, ws *scratch.Workspace, g *graph.Graph, opt Options) ([]float64, solver.Stats, error) {
	n := g.N()
	eigensolveCount.Add(1)
	if testHookEigensolve != nil {
		testHookEigensolve(n)
	}
	return opt.Solver(n).Solve(ctx, ws, g)
}

// OrderFiedler is Algorithm 1 step 3 on a precomputed Fiedler vector of the
// connected graph g: sort vertices by component value and keep the
// direction with the smaller envelope, scoring both off one fused
// traversal. esize is the winning direction's envelope size (already paid
// for — callers comparing against a refinement should reuse it) and
// reversed reports whether the nonincreasing sort won.
func OrderFiedler(ws *scratch.Workspace, g *graph.Graph, x []float64) (o perm.Perm, esize int64, reversed bool) {
	asc := OrderByValues(x)
	fwd, rev := envelope.EsizeBothInto(ws, g, asc)
	if rev < fwd {
		return asc.Reverse(), rev, true
	}
	return asc, fwd, false
}

func spectralConnected(ctx context.Context, ws *scratch.Workspace, g *graph.Graph, opt Options, info *Info, record bool) (perm.Perm, error) {
	n := g.N()
	if n == 1 {
		return perm.Perm{0}, nil
	}
	x, st, err := FiedlerConnectedWS(ctx, ws, g, opt)
	if err != nil {
		// The failed solve's work still counts toward the run's totals (a
		// caller diagnosing the failure sees what it burned); estimates are
		// not recorded.
		info.MatVecs += st.MatVecs
		info.Solve.Accumulate(st)
		return nil, err
	}
	info.absorb(st, record)
	o, _, reversed := OrderFiedler(ws, g, x)
	if reversed && record {
		info.Reversed = true
	}
	return o, nil
}

// OrderByValues returns the permutation that sorts vertices by
// nondecreasing value (ties by vertex label, making the ordering
// deterministic), in new→old convention. This is the "closest permutation
// vector" construction of Theorem 2.3.
func OrderByValues(x []float64) perm.Perm {
	o := make(perm.Perm, len(x))
	for i := range o {
		o[i] = int32(i)
	}
	sort.SliceStable(o, func(a, b int) bool { return x[o[a]] < x[o[b]] })
	return o
}

// SpectralSloan is the hybrid the paper's §4 anticipates ("limited use of a
// local reordering strategy based on the adjacency structure to improve the
// envelope parameters obtained from the spectral method") and which
// Kumfert & Pothen later published: run Sloan's greedy numbering with the
// spectral positions as the global priority term instead of BFS distances.
// It returns the better of the hybrid and the plain spectral ordering.
func SpectralSloan(g *graph.Graph, opt Options) (perm.Perm, Info, error) {
	ws := scratch.Get()
	defer scratch.Put(ws)
	//envlint:ignore ctxflow ctx-free convenience wrapper; SpectralSloanWS is the cancellable entry point
	return SpectralSloanWS(context.Background(), ws, g, opt)
}

// SpectralSloanWS is SpectralSloan with caller-provided scratch.
//
// On disconnected graphs the already-computed global spectral ordering is
// sliced per component — Spectral concatenates components in
// graph.Components order, so each slice IS that component's spectral
// ordering — rather than re-running the eigensolver per component. Errors
// from the single spectral pass propagate; the refinement itself cannot
// fail (a component that Sloan cannot improve keeps its spectral slice).
func SpectralSloanWS(ctx context.Context, ws *scratch.Workspace, g *graph.Graph, opt Options) (perm.Perm, Info, error) {
	spectral, info, err := SpectralWS(ctx, ws, g, opt)
	if err != nil {
		return nil, info, err
	}
	n := g.N()
	if n <= 2 {
		return spectral, info, nil
	}
	best := spectral
	bestEsize := envelope.EsizeInto(ws, g, spectral)

	if graph.IsConnected(g) {
		best = RefineSpectralWS(ws, g, spectral, bestEsize)
	} else {
		// Refine each component's slice of the global spectral ordering and
		// concatenate in the same component order Spectral used.
		comps := graph.Components(g)
		out := make(perm.Perm, 0, n)
		mark := ws.Mark()
		// Components come largest-first, so one checkout covers every
		// component's local-ordering buffer.
		localBuf := ws.Int32s(len(comps[0]))
		var sub graph.Graph
		off := 0
		for _, comp := range comps {
			sz := len(comp)
			seg := spectral[off : off+sz]
			off += sz
			if sz <= 2 {
				out = append(out, seg...)
				continue
			}
			g.SubgraphInto(ws, &sub, comp)
			// Relabel the global slice to component-local labels via the
			// stamp map SubgraphInto just built (old→new binding).
			local := perm.Perm(localBuf[:sz])
			for k, gl := range seg {
				j, ok := ws.MapGet(int(gl))
				if !ok {
					return nil, info, fmt.Errorf("core: spectral ordering does not cover component vertex %d", gl)
				}
				local[k] = j
			}
			pick := RefineSpectralWS(ws, &sub, local, envelope.EsizeInto(ws, &sub, local))
			for _, lv := range pick {
				out = append(out, int32(comp[lv]))
			}
		}
		ws.Release(mark)
		if e := envelope.EsizeInto(ws, g, out); e < bestEsize {
			best, bestEsize = out, e
		}
	}
	return best, info, nil
}

// RefineSpectralWS returns the better of spectral and its Sloan refinement
// on the connected graph g, given spectral's (already-computed) envelope
// size. This is the single acceptance rule of the SPECTRAL+SLOAN hybrid:
// SpectralSloanWS and the pipeline's artifact-backed candidate both call
// it, so the two can never drift apart.
func RefineSpectralWS(ws *scratch.Workspace, g *graph.Graph, spectral perm.Perm, spectralEsize int64) perm.Perm {
	if hybrid, ok := SloanRefine(g, spectral); ok {
		if e := envelope.EsizeInto(ws, g, hybrid); e < spectralEsize {
			return hybrid
		}
	}
	return spectral
}

// SloanRefine runs Sloan's numbering on the connected graph g using the
// spectral ranks as the global priority. The rank spread is rescaled to the
// graph diameter estimate so the W1/W2 balance of classic Sloan carries
// over. Exported for the pipeline's SPECTRAL+SLOAN candidate, which reuses
// the component's cached Fiedler ordering instead of re-running the
// eigensolver.
func SloanRefine(g *graph.Graph, spectral perm.Perm) (perm.Perm, bool) {
	n := g.N()
	inv := spectral.Inverse()
	// Scale ranks 0..n-1 down to a BFS-distance-like range: use the
	// eccentricity of the spectral start vertex as the target spread.
	start := int(spectral[0])
	ecc := graph.Eccentricity(g, start)
	if ecc < 1 {
		ecc = 1
	}
	global := make([]int32, n)
	scale := float64(ecc) / float64(n-1)
	for v := 0; v < n; v++ {
		// High global priority = numbered early in Sloan; position 0 should
		// go first, so invert the rank.
		global[v] = int32(float64(int32(n-1)-inv[v]) * scale)
	}
	o, ok := order.SloanOrderWithGlobal(g, start, global, order.DefaultSloanWeights())
	if !ok {
		return nil, false
	}
	out := make(perm.Perm, len(o))
	copy(out, o)
	return out, true
}
