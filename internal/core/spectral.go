// Package core implements the paper's primary contribution: the spectral
// envelope-reduction ordering (Algorithm 1). Given a sparse symmetric
// matrix pattern it forms the Laplacian of the adjacency graph, computes a
// second Laplacian eigenvector (Fiedler vector) — directly with Lanczos for
// small graphs or via the multilevel scheme of §3 for large ones — sorts
// the eigenvector components in both directions, and keeps the permutation
// with the smaller envelope.
//
// Theorem 2.3's guarantee, that the rank permutation of the eigenvector is
// the closest permutation vector to it, is exercised in this package's
// tests; §2.4's near-adjacency-ordering property is as well.
package core

import (
	"fmt"
	"sort"

	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/laplacian"
	"repro/internal/multilevel"
	"repro/internal/order"
	"repro/internal/perm"
	"repro/internal/scratch"
)

// Method selects how the Fiedler vector is computed.
type Method int

const (
	// MethodAuto uses direct Lanczos below AutoThreshold vertices and the
	// multilevel scheme above — the paper's practical configuration.
	MethodAuto Method = iota
	// MethodLanczos forces the direct Lanczos solver.
	MethodLanczos
	// MethodMultilevel forces the multilevel solver.
	MethodMultilevel
)

// AutoThreshold is the component size at which MethodAuto switches from
// direct Lanczos to the multilevel scheme.
const AutoThreshold = 2000

// Options configures the spectral ordering.
type Options struct {
	// Method picks the eigensolver (default MethodAuto).
	Method Method
	// Lanczos configures the direct solver.
	Lanczos lanczos.Options
	// Multilevel configures the multilevel solver.
	Multilevel multilevel.Options
	// Seed drives all randomized pieces; runs are reproducible per seed.
	Seed int64
}

// Info reports diagnostics of a spectral ordering run.
type Info struct {
	// Lambda2 is the λ2 estimate of the (largest) component.
	Lambda2 float64
	// Residual is the eigensolver residual on the largest component.
	Residual float64
	// Reversed is true when the nonincreasing sort won the envelope
	// comparison of Algorithm 1 step 3.
	Reversed bool
	// Multilevel is true when the multilevel solver was used for the
	// largest component.
	Multilevel bool
	// Components is the number of connected components ordered.
	Components int
	// MatVecs counts Laplacian applications across every Lanczos solve of
	// the run, all components included (multilevel solves are not
	// instrumented and contribute 0). The SpectralSloan regression tests
	// use it to prove the hybrid never repeats an eigensolve.
	MatVecs int
}

// testHookEigensolve, when non-nil, observes every Fiedler eigensolve with
// the component size. Tests install it to assert the solver runs exactly
// once per component.
var testHookEigensolve func(n int)

// Spectral computes the spectral envelope-reducing ordering of g
// (Algorithm 1). Disconnected graphs are ordered component by component
// (each uses the eigenvector of the smallest positive eigenvalue of its own
// Laplacian, per the paper's remark in §1) and concatenated largest-first.
func Spectral(g *graph.Graph, opt Options) (perm.Perm, Info, error) {
	ws := scratch.Get()
	defer scratch.Put(ws)
	return SpectralWS(ws, g, opt)
}

// SpectralWS is Spectral with caller-provided scratch: the envelope
// comparisons and subgraph extractions reuse ws buffers, which the parallel
// pipeline checks out once per worker.
func SpectralWS(ws *scratch.Workspace, g *graph.Graph, opt Options) (perm.Perm, Info, error) {
	n := g.N()
	info := Info{}
	if n == 0 {
		return perm.Perm{}, info, nil
	}
	if graph.IsConnected(g) {
		info.Components = 1
		o, err := spectralConnected(ws, g, opt, &info, true)
		return o, info, err
	}
	comps := graph.Components(g)
	info.Components = len(comps)
	out := make(perm.Perm, 0, n)
	var sub graph.Graph
	for ci, comp := range comps {
		g.SubgraphInto(ws, &sub, comp)
		local, err := spectralConnected(ws, &sub, opt, &info, ci == 0)
		if err != nil {
			return nil, info, fmt.Errorf("core: component %d: %w", ci, err)
		}
		for _, v := range local {
			out = append(out, int32(comp[v]))
		}
	}
	return out, info, nil
}

// FiedlerVector computes the Fiedler vector of the connected graph g with
// the solver selected by opt. It is exported for the examples and the
// ablation benchmarks.
func FiedlerVector(g *graph.Graph, opt Options) ([]float64, float64, error) {
	var info Info
	x, err := fiedler(g, opt, &info, true)
	return x, info.Lambda2, err
}

func fiedler(g *graph.Graph, opt Options, info *Info, record bool) ([]float64, error) {
	n := g.N()
	if testHookEigensolve != nil {
		testHookEigensolve(n)
	}
	useML := false
	switch opt.Method {
	case MethodMultilevel:
		useML = true
	case MethodLanczos:
		useML = false
	default:
		useML = n > AutoThreshold
	}
	if useML {
		mlOpt := opt.Multilevel
		if mlOpt.Seed == 0 {
			mlOpt.Seed = opt.Seed
		}
		if mlOpt.Lanczos.Seed == 0 {
			mlOpt.Lanczos.Seed = opt.Seed
		}
		res, err := multilevel.Fiedler(g, mlOpt)
		if err != nil {
			return nil, err
		}
		if record {
			info.Lambda2 = res.Lambda
			info.Residual = res.Residual
			info.Multilevel = true
		}
		return res.Vector, nil
	}
	lOpt := opt.Lanczos
	if lOpt.Seed == 0 {
		lOpt.Seed = opt.Seed
	}
	op := laplacian.Auto(g)
	res, err := lanczos.Fiedler(op, op.GershgorinBound(), lOpt)
	info.MatVecs += res.MatVecs
	if err != nil && res.Vector == nil {
		return nil, err
	}
	// A not-fully-converged vector is still usable for ordering — the
	// paper's "terminate the reordering process depending on a stopping
	// criterion" trade-off — so only hard failures propagate.
	if record {
		info.Lambda2 = res.Lambda
		info.Residual = res.Residual
		info.Multilevel = false
	}
	return res.Vector, nil
}

func spectralConnected(ws *scratch.Workspace, g *graph.Graph, opt Options, info *Info, record bool) (perm.Perm, error) {
	n := g.N()
	if n == 1 {
		return perm.Perm{0}, nil
	}
	x, err := fiedler(g, opt, info, record)
	if err != nil {
		return nil, err
	}
	asc := OrderByValues(x)
	// Algorithm 1 step 3: take the direction with the smaller envelope.
	// One fused traversal scores both directions off a single inverse.
	fwd, rev := envelope.EsizeBothInto(ws, g, asc)
	if rev < fwd {
		if record {
			info.Reversed = true
		}
		return asc.Reverse(), nil
	}
	return asc, nil
}

// OrderByValues returns the permutation that sorts vertices by
// nondecreasing value (ties by vertex label, making the ordering
// deterministic), in new→old convention. This is the "closest permutation
// vector" construction of Theorem 2.3.
func OrderByValues(x []float64) perm.Perm {
	o := make(perm.Perm, len(x))
	for i := range o {
		o[i] = int32(i)
	}
	sort.SliceStable(o, func(a, b int) bool { return x[o[a]] < x[o[b]] })
	return o
}

// SpectralSloan is the hybrid the paper's §4 anticipates ("limited use of a
// local reordering strategy based on the adjacency structure to improve the
// envelope parameters obtained from the spectral method") and which
// Kumfert & Pothen later published: run Sloan's greedy numbering with the
// spectral positions as the global priority term instead of BFS distances.
// It returns the better of the hybrid and the plain spectral ordering.
func SpectralSloan(g *graph.Graph, opt Options) (perm.Perm, Info, error) {
	ws := scratch.Get()
	defer scratch.Put(ws)
	return SpectralSloanWS(ws, g, opt)
}

// SpectralSloanWS is SpectralSloan with caller-provided scratch.
//
// On disconnected graphs the already-computed global spectral ordering is
// sliced per component — Spectral concatenates components in
// graph.Components order, so each slice IS that component's spectral
// ordering — rather than re-running the eigensolver per component. Errors
// from the single spectral pass propagate; the refinement itself cannot
// fail (a component that Sloan cannot improve keeps its spectral slice).
func SpectralSloanWS(ws *scratch.Workspace, g *graph.Graph, opt Options) (perm.Perm, Info, error) {
	spectral, info, err := SpectralWS(ws, g, opt)
	if err != nil {
		return nil, info, err
	}
	n := g.N()
	if n <= 2 {
		return spectral, info, nil
	}
	best := spectral
	bestEsize := envelope.EsizeInto(ws, g, spectral)

	if graph.IsConnected(g) {
		if hybrid, ok := sloanRefine(g, spectral); ok {
			if e := envelope.EsizeInto(ws, g, hybrid); e < bestEsize {
				best, bestEsize = hybrid, e
			}
		}
	} else {
		// Refine each component's slice of the global spectral ordering and
		// concatenate in the same component order Spectral used.
		comps := graph.Components(g)
		out := make(perm.Perm, 0, n)
		mark := ws.Mark()
		// Components come largest-first, so one checkout covers every
		// component's local-ordering buffer.
		localBuf := ws.Int32s(len(comps[0]))
		var sub graph.Graph
		off := 0
		for _, comp := range comps {
			sz := len(comp)
			seg := spectral[off : off+sz]
			off += sz
			if sz <= 2 {
				out = append(out, seg...)
				continue
			}
			g.SubgraphInto(ws, &sub, comp)
			// Relabel the global slice to component-local labels via the
			// stamp map SubgraphInto just built (old→new binding).
			local := perm.Perm(localBuf[:sz])
			for k, gl := range seg {
				j, ok := ws.MapGet(int(gl))
				if !ok {
					return nil, info, fmt.Errorf("core: spectral ordering does not cover component vertex %d", gl)
				}
				local[k] = j
			}
			pick := local
			if hybrid, ok := sloanRefine(&sub, local); ok &&
				envelope.EsizeInto(ws, &sub, hybrid) < envelope.EsizeInto(ws, &sub, local) {
				pick = hybrid
			}
			for _, lv := range pick {
				out = append(out, int32(comp[lv]))
			}
		}
		ws.Release(mark)
		if e := envelope.EsizeInto(ws, g, out); e < bestEsize {
			best, bestEsize = out, e
		}
	}
	return best, info, nil
}

// sloanRefine runs Sloan's numbering using the spectral ranks as the global
// priority. The rank spread is rescaled to the graph diameter estimate so
// the W1/W2 balance of classic Sloan carries over.
func sloanRefine(g *graph.Graph, spectral perm.Perm) (perm.Perm, bool) {
	n := g.N()
	inv := spectral.Inverse()
	// Scale ranks 0..n-1 down to a BFS-distance-like range: use the
	// eccentricity of the spectral start vertex as the target spread.
	start := int(spectral[0])
	ecc := graph.Eccentricity(g, start)
	if ecc < 1 {
		ecc = 1
	}
	global := make([]int32, n)
	scale := float64(ecc) / float64(n-1)
	for v := 0; v < n; v++ {
		// High global priority = numbered early in Sloan; position 0 should
		// go first, so invert the rank.
		global[v] = int32(float64(int32(n-1)-inv[v]) * scale)
	}
	o, ok := order.SloanOrderWithGlobal(g, start, global, order.DefaultSloanWeights())
	if !ok {
		return nil, false
	}
	out := make(perm.Perm, len(o))
	copy(out, o)
	return out, true
}
