package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/multilevel"
	"repro/internal/solver"
)

// Multilevel runs must report nonzero MatVecs in Info — the acceptance
// criterion closing the "multilevel contributes 0" gap.
func TestMultilevelMatVecsInstrumented(t *testing.T) {
	g := graph.Grid(30, 30)
	_, info, err := Spectral(g, Options{Method: MethodMultilevel, Multilevel: multilevel.Options{CoarsestSize: 60}})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Multilevel {
		t.Fatal("multilevel solver not recorded")
	}
	if info.MatVecs == 0 {
		t.Fatal("multilevel run reports 0 MatVecs")
	}
	if info.Solve.Scheme != solver.SchemeMultilevel {
		t.Fatalf("Solve.Scheme = %q, want %q", info.Solve.Scheme, solver.SchemeMultilevel)
	}
	if info.Solve.MatVecs != info.MatVecs {
		t.Fatalf("Info.MatVecs %d does not mirror Solve.MatVecs %d", info.MatVecs, info.Solve.MatVecs)
	}
	if info.Solve.Levels < 2 || info.Solve.RQIIterations == 0 || info.Solve.JacobiSweeps == 0 {
		t.Fatalf("multilevel solve stats incomplete: %+v", info.Solve)
	}
	if !info.Solve.Converged {
		t.Fatalf("healthy solve not converged: %+v", info.Solve)
	}
}

// Options.AutoThreshold moves the Lanczos↔multilevel crossover: a graph
// below the default threshold switches to the multilevel scheme when the
// threshold is lowered beneath its size, and the default behavior is
// unchanged when the field is zero.
func TestAutoThresholdConfigurable(t *testing.T) {
	g := graph.Grid(25, 20) // n = 500 < default 2000
	_, info, err := Spectral(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Multilevel {
		t.Fatal("default threshold sent a 500-vertex graph to the multilevel solver")
	}
	_, info, err = Spectral(g, Options{AutoThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Multilevel {
		t.Fatal("AutoThreshold=100 did not send a 500-vertex graph to the multilevel solver")
	}
	if info.MatVecs == 0 {
		t.Fatal("multilevel crossover run reports 0 MatVecs")
	}
}

// The partial-convergence bugfix must propagate to Info: a starved
// multilevel coarsest solve surfaces Converged=false through Info.Solve
// while still producing a valid ordering.
func TestPartialConvergencePropagatesToInfo(t *testing.T) {
	g := graph.Grid(40, 40)
	opt := Options{Method: MethodMultilevel}
	opt.Multilevel.CoarsestSize = 200
	opt.Multilevel.Lanczos = lanczos.Options{MaxBasis: 3, MaxRestarts: 1, Tol: 1e-14}
	p, info, err := Spectral(g, opt)
	if err != nil {
		t.Fatalf("partial convergence must not be a hard error: %v", err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if info.Solve.Converged {
		t.Fatal("starved coarsest solve reported Converged=true in Info")
	}
	if info.Solve.Residual == 0 {
		t.Fatal("residual not propagated for partial solve")
	}
}

// On a disconnected graph the Info counters aggregate across components
// while the estimates stay the largest component's.
func TestInfoAggregatesAcrossComponents(t *testing.T) {
	g := disconnectedFixture()
	_, info, err := Spectral(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if info.Components != 5 {
		t.Fatalf("components = %d, want 5", info.Components)
	}
	if info.Solve.MatVecs != info.MatVecs {
		t.Fatalf("Solve.MatVecs %d != MatVecs %d", info.Solve.MatVecs, info.MatVecs)
	}
	// The largest component (6x6 grid) is what the estimates describe.
	if info.Solve.CoarsestN != 36 {
		t.Fatalf("estimates not from the largest component: %+v", info.Solve)
	}
	if !info.Solve.Converged {
		t.Fatalf("all-healthy run not converged: %+v", info.Solve)
	}
}
