package core

import (
	"testing"

	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/perm"
)

// disconnectedFixture builds a graph with three nontrivial components (two
// grids and a path) plus a 2-vertex and a 1-vertex component.
func disconnectedFixture() *graph.Graph {
	b := graph.NewBuilder(6*6 + 4*4 + 10 + 2 + 1)
	off := 0
	for _, side := range []int{6, 4} {
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				v := off + r*side + c
				if c+1 < side {
					b.AddEdge(v, v+1)
				}
				if r+1 < side {
					b.AddEdge(v, v+side)
				}
			}
		}
		off += side * side
	}
	for i := 0; i < 9; i++ {
		b.AddEdge(off+i, off+i+1)
	}
	off += 10
	b.AddEdge(off, off+1)
	return b.Build()
}

// The regression for the duplicated eigensolve: on a disconnected graph
// SpectralSloan must run the eigensolver exactly once per nontrivial
// component — the same count as plain Spectral — not twice, and its matvec
// total must match Spectral's exactly.
func TestSpectralSloanEigensolvesOncePerComponent(t *testing.T) {
	g := disconnectedFixture()
	opt := Options{Seed: 7}

	countSolves := func(f func() (perm.Perm, Info, error)) (int, Info, perm.Perm) {
		solves := 0
		testHookEigensolve = func(int) { solves++ }
		defer func() { testHookEigensolve = nil }()
		p, info, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return solves, info, p
	}

	spectralSolves, spectralInfo, _ := countSolves(func() (perm.Perm, Info, error) { return Spectral(g, opt) })
	sloanSolves, sloanInfo, p := countSolves(func() (perm.Perm, Info, error) { return SpectralSloan(g, opt) })

	// Three components have n > 1 (grids and the path) plus the edge pair;
	// the singleton takes the n==1 fast path with no solve.
	if spectralSolves != 4 {
		t.Fatalf("Spectral ran %d eigensolves, want 4", spectralSolves)
	}
	if sloanSolves != spectralSolves {
		t.Fatalf("SpectralSloan ran %d eigensolves, Spectral ran %d — the hybrid must not repeat the eigensolve",
			sloanSolves, spectralSolves)
	}
	if sloanInfo.MatVecs != spectralInfo.MatVecs {
		t.Fatalf("SpectralSloan used %d matvecs, Spectral used %d — matvec count must not grow",
			sloanInfo.MatVecs, spectralInfo.MatVecs)
	}
	if spectralInfo.MatVecs == 0 {
		t.Fatal("MatVecs not instrumented (0 recorded)")
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

// The hybrid must never lose to plain Spectral on envelope size, and on a
// disconnected graph its result must order every component contiguously
// exactly as the per-component refinement dictates.
func TestSpectralSloanDisconnectedQuality(t *testing.T) {
	g := disconnectedFixture()
	opt := Options{Seed: 3}
	ps, _, err := Spectral(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ph, _, err := SpectralSloan(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ph.Check(); err != nil {
		t.Fatal(err)
	}
	if eh, es := envelope.Esize(g, ph), envelope.Esize(g, ps); eh > es {
		t.Fatalf("hybrid envelope %d worse than spectral %d", eh, es)
	}
}

// Slicing the global ordering per component must agree with what an
// independent spectral run on the extracted component produces.
func TestSpectralSliceMatchesComponentRun(t *testing.T) {
	g := disconnectedFixture()
	opt := Options{Seed: 5}
	global, _, err := Spectral(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	comps := graph.Components(g)
	off := 0
	for ci, comp := range comps {
		seg := global[off : off+len(comp)]
		off += len(comp)
		sub, old := g.Subgraph(comp)
		local, _, err := Spectral(sub, opt)
		if err != nil {
			t.Fatal(err)
		}
		for k := range local {
			if int(seg[k]) != old[local[k]] {
				t.Fatalf("component %d: global slice and component run disagree at position %d", ci, k)
			}
		}
	}
}
