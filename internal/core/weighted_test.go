package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/laplacian"
	"repro/internal/linalg"
	"repro/internal/perm"
)

func unit(u, v int) float64 { return 1 }

func TestWeightedUnitMatchesUnweighted(t *testing.T) {
	g := graph.Random(60, 110, 3)
	pw, infoW, err := WeightedSpectral(context.Background(), g, unit, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pu, infoU, err := Spectral(g, Options{Method: MethodLanczos, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(infoW.Lambda2-infoU.Lambda2) > 1e-8*(1+infoU.Lambda2) {
		t.Fatalf("λ2: weighted %v vs unweighted %v", infoW.Lambda2, infoU.Lambda2)
	}
	if !pw.Equal(pu) {
		// Same eigenvalue but possibly sign-flipped vector; envelopes must
		// agree regardless.
		if envelope.Esize(g, pw) != envelope.Esize(g, pu) {
			t.Fatalf("unit-weight ordering differs in envelope: %d vs %d",
				envelope.Esize(g, pw), envelope.Esize(g, pu))
		}
	}
}

func TestWeightedSpectralValid(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":      graph.Grid(9, 7),
		"star":      graph.Star(8),
		"singleton": graph.NewBuilder(1).Build(),
		"empty":     graph.NewBuilder(0).Build(),
		"two-comps": graph.FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}}),
	}
	w := func(u, v int) float64 { return 1 + 0.1*float64((u+v)%5) }
	for name, g := range graphs {
		p, _, err := WeightedSpectral(context.Background(), g, w, Options{Seed: 1})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(p) != g.N() || p.Check() != nil {
			t.Errorf("%s: invalid permutation", name)
		}
	}
}

func TestWeightedSpectralRejectsNonPositive(t *testing.T) {
	g := graph.Path(4)
	bad := func(u, v int) float64 { return -1 }
	if _, _, err := WeightedSpectral(context.Background(), g, bad, Options{}); err == nil {
		t.Fatal("negative weights accepted")
	}
}

// A "barbell": two cliques joined by a path of weak links. The weighted
// Fiedler vector must keep each clique contiguous in the ordering —
// strongly coupled rows stay adjacent.
func TestWeightedSpectralBarbell(t *testing.T) {
	b := graph.NewBuilder(14)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j) // clique A: 0..4
		}
	}
	for i := 9; i < 14; i++ {
		for j := i + 1; j < 14; j++ {
			b.AddEdge(i, j) // clique B: 9..13
		}
	}
	for i := 4; i < 10; i++ {
		b.AddEdge(i, i+1) // bridge path 4-5-...-10 (4 and 9 are in cliques)
	}
	g := b.Build()
	w := func(u, v int) float64 {
		inA := func(x int) bool { return x < 5 }
		inB := func(x int) bool { return x >= 9 }
		if (inA(u) && inA(v)) || (inB(u) && inB(v)) {
			return 10 // strong intra-clique coupling
		}
		return 0.1 // weak bridge
	}
	p, _, err := WeightedSpectral(context.Background(), g, w, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pos := p.Inverse()
	spanOf := func(lo, hi int) int {
		min, max := 1<<30, -1
		for v := lo; v <= hi; v++ {
			if int(pos[v]) < min {
				min = int(pos[v])
			}
			if int(pos[v]) > max {
				max = int(pos[v])
			}
		}
		return max - min
	}
	if s := spanOf(0, 4); s != 4 {
		t.Fatalf("clique A not contiguous: span %d", s)
	}
	if s := spanOf(9, 13); s != 4 {
		t.Fatalf("clique B not contiguous: span %d", s)
	}
}

// Weighted Laplacian spectral facts: a path with uniform weight w has
// λ2 = 4w·sin²(π/2n).
func TestWeightedLaplacianScaling(t *testing.T) {
	g := graph.Path(20)
	for _, w := range []float64{0.5, 2, 7.25} {
		op, err := laplacian.NewWeighted(g, func(u, v int) float64 { return w })
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 20)
		for i := range x {
			x[i] = math.Cos((float64(i) + 0.5) * math.Pi / 20)
		}
		linalg.ProjectOutOnes(x)
		want := 4 * w * math.Pow(math.Sin(math.Pi/40), 2)
		if got := op.RayleighQuotient(x); math.Abs(got-want) > 1e-10*(1+want) {
			t.Fatalf("w=%v: RQ = %v, want %v", w, got, want)
		}
		// Apply consistency: RQ computed both ways agrees.
		y := make([]float64, 20)
		op.Apply(x, y)
		rq := linalg.Dot(x, y) / linalg.Dot(x, x)
		if math.Abs(rq-want) > 1e-10*(1+want) {
			t.Fatalf("w=%v: Apply-based RQ = %v, want %v", w, rq, want)
		}
	}
}

func TestWeightedGershgorin(t *testing.T) {
	g := graph.Star(6)
	op, err := laplacian.NewWeighted(g, func(u, v int) float64 { return 3 })
	if err != nil {
		t.Fatal(err)
	}
	// Center weighted degree = 15; bound = 30 ≥ λn = 3·6 = 18.
	if b := op.GershgorinBound(); b != 30 {
		t.Fatalf("bound = %v", b)
	}
}

func TestWeightedSpectralEnvelopeNotWorseThanRandom(t *testing.T) {
	g := graph.Grid9(12, 12)
	w := func(u, v int) float64 { return 1 + float64(u%3) }
	p, _, err := WeightedSpectral(context.Background(), g, w, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if envelope.Esize(g, p) >= envelope.Esize(g, perm.Random(g.N(), 7)) {
		t.Fatal("weighted spectral no better than random")
	}
}
