package core

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/lanczos"
	"repro/internal/laplacian"
	"repro/internal/perm"
	"repro/internal/scratch"
	"repro/internal/solver"
)

// WeightedSpectral is Algorithm 1 on the weighted Laplacian: when the
// matrix values are available, sorting the eigenvector of L_w = D_w − W
// (weights |a_uv|) minimizes the continuous relaxation of the *weighted*
// 2-sum, placing strongly coupled rows adjacently. The envelope objective
// used to choose the sort direction stays pattern-based — the envelope is
// a structural quantity.
//
// The weighted solve always uses Lanczos (the multilevel hierarchy in this
// repository is pattern-only); for very large weighted problems expect
// longer solve times than Spectral.
func WeightedSpectral(ctx context.Context, g *graph.Graph, weight func(u, v int) float64, opt Options) (perm.Perm, Info, error) {
	n := g.N()
	info := Info{}
	if n == 0 {
		return perm.Perm{}, info, nil
	}
	if graph.IsConnected(g) {
		info.Components = 1
		o, err := weightedConnected(ctx, g, weight, opt, &info, true)
		return o, info, err
	}
	comps := graph.Components(g)
	info.Components = len(comps)
	out := make(perm.Perm, 0, n)
	for ci, comp := range comps {
		sub, old := g.Subgraph(comp)
		subWeight := func(u, v int) float64 { return weight(old[u], old[v]) }
		local, err := weightedConnected(ctx, sub, subWeight, opt, &info, ci == 0)
		if err != nil {
			return nil, info, fmt.Errorf("core: component %d: %w", ci, err)
		}
		for _, v := range local {
			out = append(out, int32(old[v]))
		}
	}
	return out, info, nil
}

func weightedConnected(ctx context.Context, g *graph.Graph, weight func(u, v int) float64, opt Options, info *Info, record bool) (perm.Perm, error) {
	n := g.N()
	if n == 1 {
		return perm.Perm{0}, nil
	}
	op, err := laplacian.NewWeighted(g, weight)
	if err != nil {
		return nil, err
	}
	lOpt := opt.Lanczos
	if lOpt.Seed == 0 {
		lOpt.Seed = opt.Seed
	}
	res, err := lanczos.Fiedler(ctx, op, op.GershgorinBound(), lOpt)
	st := solver.Stats{
		Scheme:    solver.SchemeLanczos,
		Lambda:    res.Lambda,
		Residual:  res.Residual,
		MatVecs:   res.MatVecs,
		Levels:    1,
		CoarsestN: n,
		Converged: err == nil,
	}
	if err != nil && res.Vector == nil {
		// The failed solve's work still counts toward the run's totals,
		// exactly as in the unweighted path.
		info.MatVecs += st.MatVecs
		info.Solve.Accumulate(st)
		return nil, err
	}
	info.absorb(st, record)
	ws := scratch.Get()
	defer scratch.Put(ws)
	o, _, reversed := OrderFiedler(ws, g, res.Vector)
	if reversed && record {
		info.Reversed = true
	}
	return o, nil
}
