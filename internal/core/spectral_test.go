package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/laplacian"
	"repro/internal/linalg"
	"repro/internal/order"
	"repro/internal/perm"
)

func TestSpectralValidPermutation(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":      graph.Path(30),
		"grid":      graph.Grid(8, 6),
		"random":    graph.Random(70, 140, 2),
		"star":      graph.Star(11),
		"complete":  graph.Complete(7),
		"singleton": graph.NewBuilder(1).Build(),
		"empty":     graph.NewBuilder(0).Build(),
		"two-comps": graph.FromEdges(9, [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}, {7, 8}}),
	}
	for name, g := range graphs {
		p, info, err := Spectral(g, Options{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(p) != g.N() {
			t.Errorf("%s: length %d want %d", name, len(p), g.N())
			continue
		}
		if err := p.Check(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		_ = info
	}
}

func TestSpectralPathRecoversNaturalOrder(t *testing.T) {
	// On a path the Fiedler vector is monotone, so the spectral ordering
	// must recover the natural order (or its reverse) — bandwidth 1,
	// envelope n−1: the optimum.
	g := graph.Path(40)
	p, _, err := Spectral(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := envelope.Compute(g, p)
	if s.Bandwidth != 1 || s.Esize != 39 {
		t.Fatalf("spectral path: bw=%d Esize=%d, want 1, 39", s.Bandwidth, s.Esize)
	}
}

func TestSpectralGridQuality(t *testing.T) {
	// On an a×b grid (a > b) the spectral ordering should sweep along the
	// long axis, giving envelope close to RCM's (which is near-optimal).
	g := graph.Grid(20, 8)
	p, _, err := Spectral(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	es := envelope.Esize(g, p)
	ercm := envelope.Esize(g, order.RCM(g))
	if float64(es) > 1.4*float64(ercm) {
		t.Fatalf("spectral grid envelope %d ≫ RCM %d", es, ercm)
	}
}

func TestSpectralDeterministicPerSeed(t *testing.T) {
	g := graph.Random(120, 240, 3)
	a, _, err := Spectral(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Spectral(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different orderings")
	}
}

func TestSpectralMultilevelAgreesWithLanczos(t *testing.T) {
	// The two solvers may pick different tie-breaks but envelope quality
	// must be comparable on a mesh.
	g := graph.Grid(30, 20)
	pl, _, err := Spectral(g, Options{Method: MethodLanczos})
	if err != nil {
		t.Fatal(err)
	}
	pm, infoM, err := Spectral(g, Options{Method: MethodMultilevel})
	if err != nil {
		t.Fatal(err)
	}
	if !infoM.Multilevel {
		t.Fatal("multilevel method not recorded")
	}
	el, em := envelope.Esize(g, pl), envelope.Esize(g, pm)
	if float64(em) > 1.5*float64(el) {
		t.Fatalf("multilevel envelope %d ≫ Lanczos %d", em, el)
	}
}

func TestOrderByValues(t *testing.T) {
	x := []float64{0.3, -1.2, 0.0, 0.3, -5}
	o := OrderByValues(x)
	want := perm.Perm{4, 1, 2, 0, 3} // ties (0.3) keep label order
	if !o.Equal(want) {
		t.Fatalf("OrderByValues = %v, want %v", o, want)
	}
}

// centeredPermVectors enumerates the paper's permutation-vector set P for
// size n (odd: components of {-(n-1)/2..(n-1)/2}; even: ±{1..n/2}).
func centeredValues(n int) []float64 {
	vals := make([]float64, 0, n)
	if n%2 == 1 {
		for k := -(n - 1) / 2; k <= (n-1)/2; k++ {
			vals = append(vals, float64(k))
		}
	} else {
		for k := -n / 2; k <= n/2; k++ {
			if k != 0 {
				vals = append(vals, float64(k))
			}
		}
	}
	return vals
}

// Theorem 2.3: the permutation vector induced by sorting x is the closest
// vector in P to x (2-norm). Verified exhaustively for n ≤ 7.
func TestTheorem23ClosestPermutationExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 4, 5, 6, 7} {
		for trial := 0; trial < 5; trial++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			vals := centeredValues(n)
			// Spectral construction: vertex with rank k gets vals[k].
			o := OrderByValues(x)
			pm := make([]float64, n)
			for k, v := range o {
				pm[v] = vals[k]
			}
			distM := distSq(pm, x)
			// Exhaustive check over all assignments of vals to positions.
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			best := math.Inf(1)
			var rec func(k int)
			used := make([]bool, n)
			assign := make([]float64, n)
			rec = func(k int) {
				if k == n {
					if d := distSq(assign, x); d < best {
						best = d
					}
					return
				}
				for i := 0; i < n; i++ {
					if used[i] {
						continue
					}
					used[i] = true
					assign[k] = vals[i]
					rec(k + 1)
					used[i] = false
				}
			}
			rec(0)
			if distM > best+1e-9 {
				t.Fatalf("n=%d: sorted permutation vector distance %v > optimum %v", n, distM, best)
			}
		}
	}
}

func distSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// §2.4: when vertices with positive Fiedler components are added in
// increasing order after N∪Z, each extends the adjacency of the current
// set. Equivalently, with the exact eigenvector, every prefix of the
// spectral ordering that crosses the zero boundary stays connected on the
// positive side; we verify the concrete claim: for j ≥ p−1 (0-based: the
// first position with positive component), v_{j+1} ∈ adj(V_j).
func TestSection24AdjacencyProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Random(24, 40, seed)
		_, V := linalg.SymEig(laplacian.Dense(g))
		n := g.N()
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = V.At(i, 1)
		}
		o := OrderByValues(x)
		pos := o.Inverse()
		// First position whose component is strictly positive.
		p := n
		for k := 0; k < n; k++ {
			if x[o[k]] > 1e-12 {
				p = k
				break
			}
		}
		for j := p; j < n; j++ {
			// v at position j must be adjacent to some vertex before it.
			v := int(o[j])
			ok := false
			for _, w := range g.Neighbors(v) {
				if int(pos[w]) < j {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("seed %d: position %d (vertex %d) violates the §2.4 adjacency property", seed, j, v)
			}
		}
	}
}

func TestSpectralReversalChoice(t *testing.T) {
	// Build a graph where the two sort directions give different envelopes:
	// a "comet" (clique head + path tail). Algorithm 1 must return the
	// direction with the smaller envelope.
	b := graph.NewBuilder(15)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := 4; i+1 < 15; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	p, _, err := Spectral(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := envelope.Esize(g, p)
	rev := envelope.Esize(g, p.Reverse())
	if got > rev {
		t.Fatalf("Algorithm 1 returned the worse direction: %d vs %d", got, rev)
	}
}

func TestSpectralComponentsOrderedIndependently(t *testing.T) {
	// Two paths: each must appear contiguously and in path order.
	g := graph.FromEdges(12, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, // comp A (6)
		{6, 7}, {7, 8}, {8, 9}, {9, 10}, {10, 11}, // comp B (6)
	})
	p, info, err := Spectral(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Components != 2 {
		t.Fatalf("components = %d", info.Components)
	}
	s := envelope.Compute(g, p)
	if s.Bandwidth != 1 {
		t.Fatalf("two-path spectral bandwidth = %d, want 1", s.Bandwidth)
	}
}

func TestSpectralSloanNeverWorseThanSpectral(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.Random(80, 200, seed)
		ps, _, err := Spectral(g, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ph, _, err := SpectralSloan(g, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := ph.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		es, eh := envelope.Esize(g, ps), envelope.Esize(g, ph)
		if eh > es {
			t.Fatalf("seed %d: hybrid %d worse than spectral %d", seed, eh, es)
		}
	}
}

func TestFiedlerVectorExported(t *testing.T) {
	g := graph.Grid(10, 10)
	x, lambda, err := FiedlerVector(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 100 {
		t.Fatalf("len = %d", len(x))
	}
	want := 4 * math.Pow(math.Sin(math.Pi/20), 2)
	if math.Abs(lambda-want) > 1e-5*(1+want) {
		t.Fatalf("λ2 = %v, want %v", lambda, want)
	}
}

func BenchmarkSpectralGrid(b *testing.B) {
	g := graph.Grid(60, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Spectral(g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
