// Package linalg provides the dense and iterative linear-algebra kernels
// that back the spectral ordering stack: BLAS-1 vector operations, a cyclic
// Jacobi eigensolver for small dense symmetric matrices, a symmetric
// tridiagonal eigensolver (implicit-shift QL with eigenvector accumulation,
// the classic tql2), dense Cholesky as a verification oracle, and MINRES for
// the symmetric indefinite solves inside Rayleigh Quotient Iteration.
//
// Everything is written against float64 slices; no external dependencies.
package linalg

import "math"

// Grow returns a length-n slice reusing buf's backing array when its
// capacity allows; contents are unspecified. It is the float64 analogue of
// the int32/bool arenas in internal/scratch and lets iterative solvers keep
// their per-cycle work vectors off the allocator.
func Grow(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// Dot returns xᵀy. The slices must have equal length.
//
//envlint:noalloc
//envlint:readonly
func Dot(x, y []float64) float64 {
	var s float64
	for i, xi := range x {
		s += xi * y[i]
	}
	return s
}

// Nrm2 returns the Euclidean norm of x, guarding against overflow by
// scaling (the reference NETLIB dnrm2 approach).
//
//envlint:noalloc
//envlint:readonly
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, xi := range x {
		if xi == 0 {
			continue
		}
		a := math.Abs(xi)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += a·x in place.
//
//envlint:noalloc
//envlint:readonly x
func Axpy(a float64, x, y []float64) {
	for i, xi := range x {
		y[i] += a * xi
	}
}

// Scal computes x *= a in place.
//
//envlint:noalloc
func Scal(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy copies src into dst (lengths must match).
//
//envlint:noalloc
//envlint:readonly src
func Copy(dst, src []float64) {
	copy(dst, src)
}

// Fill sets every element of x to v.
//
//envlint:noalloc
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Normalize scales x to unit 2-norm and returns the original norm.
// A zero vector is left unchanged and 0 is returned.
//
//envlint:noalloc
func Normalize(x []float64) float64 {
	n := Nrm2(x)
	if n > 0 {
		Scal(1/n, x)
	}
	return n
}

// OrthogonalizeAgainst makes x orthogonal to the unit vector q via one step
// of classical Gram–Schmidt: x -= (qᵀx)·q. q must have unit norm.
//
//envlint:noalloc
//envlint:readonly q
func OrthogonalizeAgainst(x, q []float64) {
	Axpy(-Dot(q, x), q, x)
}

// ProjectOutOnes removes the component of x along the constant vector —
// the Laplacian null space. Equivalent to subtracting the mean.
//
//envlint:noalloc
func ProjectOutOnes(x []float64) {
	if len(x) == 0 {
		return
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}
