package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Dense is a square dense matrix in row-major order. It is used for small
// problems only: the coarsest multilevel graph, verification oracles, and
// the exhaustive tests of the paper's theorems.
type Dense struct {
	N int
	A []float64 // row-major, length N*N
}

// NewDense returns a zero N×N matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, A: make([]float64, n*n)}
}

// At returns A[i][j].
func (d *Dense) At(i, j int) float64 { return d.A[i*d.N+j] }

// Set sets A[i][j] = v.
func (d *Dense) Set(i, j int, v float64) { d.A[i*d.N+j] = v }

// MulVec computes y = A·x.
func (d *Dense) MulVec(x, y []float64) {
	for i := 0; i < d.N; i++ {
		row := d.A[i*d.N : (i+1)*d.N]
		var s float64
		for j, xj := range x {
			s += row[j] * xj
		}
		y[i] = s
	}
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.N)
	copy(c.A, d.A)
	return c
}

// SymEig computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi method. It returns eigenvalues in ascending order and
// the corresponding orthonormal eigenvectors as columns of V (V.At(i,k) is
// component i of eigenvector k). The input is not modified.
//
// Jacobi is slow (O(n³) per sweep) but unconditionally robust, which is
// exactly what the coarsest multilevel level (< ~100 vertices) and the test
// oracles need.
func SymEig(m *Dense) (eig []float64, V *Dense) {
	n := m.N
	a := m.Clone()
	V = NewDense(n)
	for i := 0; i < n; i++ {
		V.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-28*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation J(p,q,θ) on both sides.
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := V.At(k, p), V.At(k, q)
					V.Set(k, p, c*vkp-s*vkq)
					V.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	eig = make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = a.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return eig[idx[i]] < eig[idx[j]] })
	sortedEig := make([]float64, n)
	sortedV := NewDense(n)
	for k, src := range idx {
		sortedEig[k] = eig[src]
		for i := 0; i < n; i++ {
			sortedV.Set(i, k, V.At(i, src))
		}
	}
	return sortedEig, sortedV
}

// Cholesky computes the lower-triangular factor G with A = G·Gᵀ of a
// symmetric positive definite matrix. It returns an error if a non-positive
// pivot is found. The result overwrites a copy; the input is unchanged.
func Cholesky(m *Dense) (*Dense, error) {
	n := m.N
	g := NewDense(n)
	for j := 0; j < n; j++ {
		d := m.At(j, j)
		for k := 0; k < j; k++ {
			d -= g.At(j, k) * g.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("linalg: cholesky pivot %d non-positive (%g)", j, d)
		}
		d = math.Sqrt(d)
		g.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= g.At(i, k) * g.At(j, k)
			}
			g.Set(i, j, s/d)
		}
	}
	return g, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor G (A = GGᵀ) via
// forward and back substitution, returning a new slice.
func SolveCholesky(g *Dense, b []float64) []float64 {
	n := g.N
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= g.At(i, k) * y[k]
		}
		y[i] = s / g.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= g.At(k, i) * x[k]
		}
		x[i] = s / g.At(i, i)
	}
	return x
}
