package linalg

import (
	"fmt"
	"math"
)

// TridiagEig computes all eigenvalues and (optionally) eigenvectors of a
// symmetric tridiagonal matrix with diagonal d (length n) and off-diagonal
// e (length n-1, e[i] couples rows i and i+1). It is the implicit-shift QL
// algorithm with Wilkinson shifts — a transcription of the classic EISPACK
// tql2/imtql2 routine — and is what turns the Lanczos tridiagonal into Ritz
// values and vectors.
//
// On return, eigenvalues are ascending in eig. If wantV, Z is the n×n
// matrix whose column k (Z.At(i,k)) holds eigenvector k of T; otherwise Z
// is nil. The inputs are not modified.
func TridiagEig(d, e []float64, wantV bool) (eig []float64, Z *Dense, err error) {
	n := len(d)
	if len(e) != n-1 && !(n == 0 && len(e) == 0) {
		return nil, nil, fmt.Errorf("linalg: tridiag size mismatch: |d|=%d |e|=%d", n, len(e))
	}
	if n == 0 {
		return nil, nil, nil
	}
	dd := append([]float64(nil), d...)
	// ee is padded to length n with a trailing zero, per EISPACK convention.
	ee := make([]float64, n)
	copy(ee, e)
	if wantV {
		Z = NewDense(n)
		for i := 0; i < n; i++ {
			Z.Set(i, i, 1)
		}
	}
	const maxIter = 50
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find a small subdiagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= math.SmallestNonzeroFloat64 || math.Abs(ee[m]) <= 1e-16*s {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= maxIter {
				return nil, nil, fmt.Errorf("linalg: tridiag QL failed to converge at row %d", l)
			}
			// Wilkinson shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = dd[m] - dd[l] + ee[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					// Deflate: recover and retry the outer loop.
					dd[i+1] -= p
					ee[m] = 0
					underflow = i >= l
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
				if wantV {
					for k := 0; k < n; k++ {
						f := Z.At(k, i+1)
						Z.Set(k, i+1, s*Z.At(k, i)+c*f)
						Z.Set(k, i, c*Z.At(k, i)-s*f)
					}
				}
			}
			if underflow {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	// Sort eigenvalues ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // stable insertion sort on dd
		j := i
		for j > 0 && dd[idx[j-1]] > dd[idx[j]] {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	eig = make([]float64, n)
	for k, src := range idx {
		eig[k] = dd[src]
	}
	if wantV {
		sorted := NewDense(n)
		for k, src := range idx {
			for i := 0; i < n; i++ {
				sorted.Set(i, k, Z.At(i, src))
			}
		}
		Z = sorted
	}
	return eig, Z, nil
}
