package linalg

import (
	"fmt"
	"math"
)

// tql2 is the implicit-shift QL iteration with Wilkinson shifts — a
// transcription of the classic EISPACK tql2/imtql2 routine — shared by
// TridiagEig and TridiagSmallestWS so the delicate numerics (the split
// test, the underflow deflation, the rotation accumulation) live in
// exactly one place.
//
// On entry dd (length n) and ee (length n, ee[n-1] ignored and used as
// workspace) hold the diagonal and off-diagonal; both are overwritten —
// dd with the (unsorted) eigenvalues. When z is non-nil it must be a flat
// row-major n×n identity on entry (z[i*n+k] = Z[i][k]) and accumulates the
// eigenvector columns: column k of z is the eigenvector of dd[k].
func tql2(dd, ee []float64, z []float64, n int) error {
	const maxIter = 50
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find a small subdiagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= math.SmallestNonzeroFloat64 || math.Abs(ee[m]) <= 1e-16*s {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= maxIter {
				return fmt.Errorf("linalg: tridiag QL failed to converge at row %d", l)
			}
			// Wilkinson shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = dd[m] - dd[l] + ee[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					// Deflate: recover and retry the outer loop.
					dd[i+1] -= p
					ee[m] = 0
					underflow = i >= l
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
				if z != nil {
					for k := 0; k < n; k++ {
						f := z[k*n+i+1]
						z[k*n+i+1] = s*z[k*n+i] + c*f
						z[k*n+i] = c*z[k*n+i] - s*f
					}
				}
			}
			if underflow {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	return nil
}

// TridiagEig computes all eigenvalues and (optionally) eigenvectors of a
// symmetric tridiagonal matrix with diagonal d (length n) and off-diagonal
// e (length n-1, e[i] couples rows i and i+1), via the shared tql2 QL
// iteration.
//
// On return, eigenvalues are ascending in eig. If wantV, Z is the n×n
// matrix whose column k (Z.At(i,k)) holds eigenvector k of T; otherwise Z
// is nil. The inputs are not modified.
func TridiagEig(d, e []float64, wantV bool) (eig []float64, Z *Dense, err error) {
	n := len(d)
	if len(e) != n-1 && !(n == 0 && len(e) == 0) {
		return nil, nil, fmt.Errorf("linalg: tridiag size mismatch: |d|=%d |e|=%d", n, len(e))
	}
	if n == 0 {
		return nil, nil, nil
	}
	dd := append([]float64(nil), d...)
	// ee is padded to length n with a trailing zero, per EISPACK convention.
	ee := make([]float64, n)
	copy(ee, e)
	var z []float64
	if wantV {
		z = make([]float64, n*n)
		for i := 0; i < n; i++ {
			z[i*n+i] = 1
		}
	}
	if err := tql2(dd, ee, z, n); err != nil {
		return nil, nil, err
	}
	// Sort eigenvalues ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // stable insertion sort on dd
		j := i
		for j > 0 && dd[idx[j-1]] > dd[idx[j]] {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	eig = make([]float64, n)
	for k, src := range idx {
		eig[k] = dd[src]
	}
	if wantV {
		Z = NewDense(n)
		for k, src := range idx {
			for i := 0; i < n; i++ {
				Z.Set(i, k, z[i*n+src])
			}
		}
	}
	return eig, Z, nil
}

// TridiagWork holds the reusable buffers of TridiagSmallestWS: the working
// copies of the diagonal and off-diagonal and the flat row-major rotation
// accumulator. The zero value is ready; buffers grow on demand via Grow, so
// a retained TridiagWork serves repeated Ritz extractions allocation-free.
type TridiagWork struct {
	dd, ee, z []float64
}

// TridiagSmallestWS computes the smallest eigenvalue of the symmetric
// tridiagonal matrix (d, e) and writes its unit eigenvector into y (length
// len(d)), reusing work's buffers. It runs the same tql2 QL iteration as
// TridiagEig but skips the full sort-and-copy of all eigenvector columns:
// only the argmin column is extracted. This is the per-cycle Ritz
// extraction of the Lanczos engine, which needs exactly one eigenpair of a
// basis-sized (≤ MaxBasis) tridiagonal per restart.
func TridiagSmallestWS(d, e []float64, y []float64, work *TridiagWork) (float64, error) {
	n := len(d)
	if len(e) != n-1 {
		return 0, fmt.Errorf("linalg: tridiag size mismatch: |d|=%d |e|=%d", n, len(e))
	}
	if n == 0 {
		return 0, fmt.Errorf("linalg: empty tridiagonal")
	}
	if n == 1 {
		y[0] = 1
		return d[0], nil
	}
	work.dd = Grow(work.dd, n)
	work.ee = Grow(work.ee, n)
	work.z = Grow(work.z, n*n)
	dd, ee, z := work.dd, work.ee, work.z
	copy(dd, d)
	copy(ee, e)
	ee[n-1] = 0
	Fill(z, 0)
	for i := 0; i < n; i++ {
		z[i*n+i] = 1
	}
	if err := tql2(dd, ee, z, n); err != nil {
		return 0, err
	}
	best := 0
	for i := 1; i < n; i++ {
		if dd[i] < dd[best] {
			best = i
		}
	}
	for i := 0; i < n; i++ {
		y[i] = z[i*n+best]
	}
	return dd[best], nil
}
