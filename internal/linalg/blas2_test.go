package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// naiveGemvT/naiveGemvSub are the one-row-at-a-time references the blocked
// kernels must reproduce exactly (same per-row reduction order).
func naiveGemvT(c, q []float64, k, n int, w []float64) {
	for j := 0; j < k; j++ {
		c[j] = Dot(q[j*n:(j+1)*n], w)
	}
}

// sameFloat compares a kernel output against the scalar reference under
// the live kernel set: the portable kernels must reproduce the reference
// bitwise (same per-element reduction order), while an ISA-gated set
// (KernelISA() != "portable", e.g. the GOAMD64=v3 FMA variants) is held
// to a few-ulp relative tolerance — FMA's single rounding legitimately
// differs in the last ulp.
func sameFloat(got, want float64) bool {
	if KernelISA() == "portable" {
		return got == want
	}
	return math.Abs(got-want) <= 1e-14*(1+math.Abs(want))
}

func TestGemvTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
		n := 57
		q := make([]float64, k*n)
		w := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		got := make([]float64, k)
		want := make([]float64, k)
		GemvT(got, q, k, n, w)
		naiveGemvT(want, q, k, n, w)
		for j := range want {
			if !sameFloat(got[j], want[j]) {
				t.Fatalf("k=%d: GemvT[%d] = %v, want %v", k, j, got[j], want[j])
			}
		}
	}
}

func TestGemvSubRemovesProjections(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 3, 4, 6, 8, 13} {
		n := 64
		// Orthonormalize k random rows so GemvT after GemvSub must be ~0.
		q := make([]float64, k*n)
		for j := 0; j < k; j++ {
			row := q[j*n : (j+1)*n]
			for i := range row {
				row[i] = rng.NormFloat64()
			}
			for l := 0; l < j; l++ {
				OrthogonalizeAgainst(row, q[l*n:(l+1)*n])
			}
			Normalize(row)
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		c := make([]float64, k)
		GemvT(c, q, k, n, w)
		GemvSub(w, q, k, n, c)
		GemvT(c, q, k, n, w)
		for j, cj := range c {
			if math.Abs(cj) > 1e-12 {
				t.Fatalf("k=%d: residual projection c[%d] = %v after GemvSub", k, j, cj)
			}
		}
	}
}

func TestOrthoMGSOrthogonalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, k := range []int{1, 2, 4, 5, 8, 11, 16} {
		n := 73
		q := make([]float64, k*n)
		for j := 0; j < k; j++ {
			row := q[j*n : (j+1)*n]
			for i := range row {
				row[i] = rng.NormFloat64()
			}
			for l := 0; l < j; l++ {
				OrthogonalizeAgainst(row, q[l*n:(l+1)*n])
			}
			Normalize(row)
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		before := Nrm2(w)
		c := make([]float64, k)
		csq := OrthoMGS(w, q, k, n, c)
		// Residual projections vanish, and Pythagoras reconstructs ‖w‖².
		check := make([]float64, k)
		GemvT(check, q, k, n, w)
		for j, cj := range check {
			if math.Abs(cj) > 1e-12 {
				t.Fatalf("k=%d: residual projection c[%d] = %v after OrthoMGS", k, j, cj)
			}
		}
		after := Nrm2(w)
		if got := math.Sqrt(after*after + csq); math.Abs(got-before) > 1e-10*(1+before) {
			t.Fatalf("k=%d: Pythagoras off: √(β²+Σc²) = %v, ‖w before‖ = %v", k, got, before)
		}
	}
}

func TestGemvAssemblesCombination(t *testing.T) {
	n, k := 41, 6
	rng := rand.New(rand.NewSource(3))
	q := make([]float64, k*n)
	c := make([]float64, k)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	for j := range c {
		c[j] = rng.NormFloat64()
	}
	cOrig := append([]float64(nil), c...)
	out := make([]float64, n)
	Gemv(out, q, k, n, c)
	want := make([]float64, n)
	for j := 0; j < k; j++ {
		Axpy(cOrig[j], q[j*n:(j+1)*n], want)
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-13 {
			t.Fatalf("Gemv[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// The documented contract: c is read-only.
	for j := range c {
		if c[j] != cOrig[j] {
			t.Fatalf("Gemv modified c[%d]: %v -> %v", j, cOrig[j], c[j])
		}
	}
}

func TestDotAxpyFusion(t *testing.T) {
	n := 77
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	zRef := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		z[i] = rng.NormFloat64()
		zRef[i] = z[i]
	}
	got := DotAxpy(-0.7, x, y, z)
	Axpy(-0.7, x, zRef)
	want := Dot(y, zRef)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("DotAxpy = %v, want %v", got, want)
	}
	for i := range z {
		if !sameFloat(z[i], zRef[i]) {
			t.Fatalf("DotAxpy z[%d] = %v, want %v", i, z[i], zRef[i])
		}
	}
}

func TestAxpyNrm2Fusion(t *testing.T) {
	n := 63
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	y := make([]float64, n)
	yRef := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
		yRef[i] = y[i]
	}
	got := AxpyNrm2(1.3, x, y)
	Axpy(1.3, x, yRef)
	want := Nrm2(yRef)
	if math.Abs(got-want) > 1e-12*(1+want) {
		t.Fatalf("AxpyNrm2 = %v, want %v", got, want)
	}
	for i := range y {
		if y[i] != yRef[i] {
			t.Fatalf("AxpyNrm2 y[%d] = %v, want %v", i, y[i], yRef[i])
		}
	}
}

func TestTridiagSmallestWSMatchesTridiagEig(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	work := new(TridiagWork)
	for _, n := range []int{1, 2, 3, 5, 12, 40} {
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * 3
		}
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		eig, Z, err := TridiagEig(d, e, true)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, n)
		lam, err := TridiagSmallestWS(d, e, y, work)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lam-eig[0]) > 1e-12*(1+math.Abs(eig[0])) {
			t.Fatalf("n=%d: smallest %v, want %v", n, lam, eig[0])
		}
		// Compare eigenvectors up to sign.
		var dot float64
		for i := 0; i < n; i++ {
			dot += y[i] * Z.At(i, 0)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-10 {
			t.Fatalf("n=%d: eigenvector misaligned, |<y,z>| = %v", n, math.Abs(dot))
		}
	}
}

func TestTridiagSmallestWSZeroAlloc(t *testing.T) {
	n := 60
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = float64(2 + i%3)
	}
	for i := range e {
		e[i] = -1
	}
	y := make([]float64, n)
	work := new(TridiagWork)
	if _, err := TridiagSmallestWS(d, e, y, work); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := TridiagSmallestWS(d, e, y, work); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("TridiagSmallestWS allocated %v times, want 0", allocs)
	}
}
