package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func randSPD(n int, seed int64) *Dense {
	// AᵀA + n·I is comfortably SPD.
	rng := rand.New(rand.NewSource(seed))
	b := NewDense(n)
	for i := range b.A {
		b.A[i] = rng.NormFloat64()
	}
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			m.Set(i, j, s)
		}
		m.Set(i, i, m.At(i, i)+float64(n))
	}
	return m
}

func TestDotAxpyNrm2(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if d := Dot(x, y); d != 4-10+18 {
		t.Errorf("Dot = %v", d)
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != -1 || y[2] != 12 {
		t.Errorf("Axpy = %v", y)
	}
	if n := Nrm2([]float64{3, 4}); math.Abs(n-5) > 1e-15 {
		t.Errorf("Nrm2 = %v", n)
	}
	if n := Nrm2(nil); n != 0 {
		t.Errorf("Nrm2(nil) = %v", n)
	}
}

func TestNrm2Overflow(t *testing.T) {
	// Naive Σx² would overflow; the scaled version must not.
	x := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if n := Nrm2(x); math.Abs(n-want)/want > 1e-14 {
		t.Errorf("Nrm2 overflow-guard failed: %v", n)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{0, 3, 4}
	if n := Normalize(x); math.Abs(n-5) > 1e-15 {
		t.Fatalf("returned norm %v", n)
	}
	if math.Abs(Nrm2(x)-1) > 1e-15 {
		t.Fatalf("not unit after Normalize: %v", x)
	}
	z := []float64{0, 0}
	if n := Normalize(z); n != 0 || z[0] != 0 {
		t.Fatalf("zero vector mishandled")
	}
}

func TestProjectOutOnes(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		x := []float64{a, b, c, d}
		ProjectOutOnes(x)
		var sum float64
		for _, v := range x {
			sum += v
		}
		scale := math.Abs(a) + math.Abs(b) + math.Abs(c) + math.Abs(d) + 1
		return math.Abs(sum) <= 1e-12*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrthogonalizeAgainst(t *testing.T) {
	q := []float64{1 / math.Sqrt2, 1 / math.Sqrt2, 0}
	x := []float64{3, 1, 2}
	OrthogonalizeAgainst(x, q)
	if d := Dot(x, q); math.Abs(d) > 1e-14 {
		t.Fatalf("residual dot = %v", d)
	}
}

func TestSymEigDiagonal(t *testing.T) {
	m := NewDense(3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	eig, V := SymEig(m)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-12 {
			t.Fatalf("eig = %v", eig)
		}
	}
	// Eigenvector for eigenvalue 1 must be ±e_1.
	if math.Abs(math.Abs(V.At(1, 0))-1) > 1e-12 {
		t.Fatalf("V = %+v", V)
	}
}

func TestSymEigResidualAndOrthogonality(t *testing.T) {
	for _, n := range []int{1, 2, 5, 12, 30} {
		m := randSym(n, int64(n))
		eig, V := SymEig(m)
		// Ascending.
		for i := 1; i < n; i++ {
			if eig[i] < eig[i-1]-1e-12 {
				t.Fatalf("n=%d eigenvalues not ascending: %v", n, eig)
			}
		}
		// Residual ‖Av − λv‖ small, eigenvectors orthonormal.
		av := make([]float64, n)
		for k := 0; k < n; k++ {
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = V.At(i, k)
			}
			m.MulVec(v, av)
			Axpy(-eig[k], v, av)
			if r := Nrm2(av); r > 1e-9*(1+math.Abs(eig[k])) {
				t.Fatalf("n=%d k=%d residual %v", n, k, r)
			}
			for j := 0; j <= k; j++ {
				u := make([]float64, n)
				for i := 0; i < n; i++ {
					u[i] = V.At(i, j)
				}
				d := Dot(u, v)
				want := 0.0
				if j == k {
					want = 1
				}
				if math.Abs(d-want) > 1e-9 {
					t.Fatalf("n=%d V not orthonormal: <%d,%d> = %v", n, j, k, d)
				}
			}
		}
		// Trace check: Σλ = tr(A).
		var tr, se float64
		for i := 0; i < n; i++ {
			tr += m.At(i, i)
		}
		for _, l := range eig {
			se += l
		}
		if math.Abs(tr-se) > 1e-9*(1+math.Abs(tr)) {
			t.Fatalf("n=%d trace %v != Σλ %v", n, tr, se)
		}
	}
}

func TestTridiagEigMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 8, 25, 60} {
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * 3
		}
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		eig, Z, err := TridiagEig(d, e, true)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Build the dense tridiagonal and compare with Jacobi.
		m := NewDense(n)
		for i := 0; i < n; i++ {
			m.Set(i, i, d[i])
			if i+1 < n {
				m.Set(i, i+1, e[i])
				m.Set(i+1, i, e[i])
			}
		}
		jeig, _ := SymEig(m)
		for i := range eig {
			if math.Abs(eig[i]-jeig[i]) > 1e-9*(1+math.Abs(jeig[i])) {
				t.Fatalf("n=%d eig[%d]: QL %v vs Jacobi %v", n, i, eig[i], jeig[i])
			}
		}
		// Residuals of eigenvectors.
		av := make([]float64, n)
		v := make([]float64, n)
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				v[i] = Z.At(i, k)
			}
			m.MulVec(v, av)
			Axpy(-eig[k], v, av)
			if r := Nrm2(av); r > 1e-9*(1+math.Abs(eig[k])) {
				t.Fatalf("n=%d k=%d tridiag residual %v", n, k, r)
			}
		}
	}
}

func TestTridiagEigKnownSpectrum(t *testing.T) {
	// The tridiagonal of the path-graph Laplacian P_n has eigenvalues
	// 2−2cos(kπ/n) — actually that's T with diag 2 except 1 at ends. Use
	// instead the free tridiagonal toeplitz [1 2 1]: diag=2, off=1 has
	// eigenvalues 2+2cos(kπ/(n+1)), k=1..n.
	n := 10
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = 1
	}
	eig, _, err := TridiagEig(d, e, false)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 + 2*math.Cos(float64(n+1-k)*math.Pi/float64(n+1)) // ascending
		if math.Abs(eig[k-1]-want) > 1e-10 {
			t.Fatalf("eig[%d] = %v, want %v", k-1, eig[k-1], want)
		}
	}
}

func TestTridiagEigSizeMismatch(t *testing.T) {
	if _, _, err := TridiagEig([]float64{1, 2}, []float64{}, false); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if eig, _, err := TridiagEig(nil, nil, false); err != nil || len(eig) != 0 {
		t.Fatal("empty input mishandled")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20} {
		m := randSPD(n, int64(n)+7)
		g, err := Cholesky(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Check GGᵀ = A.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k <= min(i, j); k++ {
					s += g.At(i, k) * g.At(j, k)
				}
				if math.Abs(s-m.At(i, j)) > 1e-8*(1+math.Abs(m.At(i, j))) {
					t.Fatalf("n=%d GGᵀ[%d,%d] = %v, want %v", n, i, j, s, m.At(i, j))
				}
			}
		}
		// Solve check.
		rng := rand.New(rand.NewSource(int64(n)))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := SolveCholesky(g, b)
		ax := make([]float64, n)
		m.MulVec(x, ax)
		Axpy(-1, b, ax)
		if r := Nrm2(ax); r > 1e-8*Nrm2(b) {
			t.Fatalf("n=%d solve residual %v", n, r)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(1, 1, -1)
	if _, err := Cholesky(m); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestMINRESSPD(t *testing.T) {
	n := 30
	m := randSPD(n, 11)
	op := OpFunc{N: n, F: m.MulVec}
	rng := rand.New(rand.NewSource(2))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res := MINRES(op, b, x, MINRESOptions{Tol: 1e-12})
	if !res.Converged {
		t.Fatalf("MINRES did not converge: %+v", res)
	}
	ax := make([]float64, n)
	m.MulVec(x, ax)
	Axpy(-1, b, ax)
	if r := Nrm2(ax); r > 1e-9*Nrm2(b) {
		t.Fatalf("true residual %v", r)
	}
}

// MINRESWS with one reused work bundle must produce the same solution as
// independent MINRES calls — even when recycled buffers held stale values
// from a previous, differently-sized solve.
func TestMINRESWSReusesWork(t *testing.T) {
	var work MINRESWork
	for trial, n := range []int{30, 18, 30} {
		m := randSPD(n, int64(7+trial))
		op := OpFunc{N: n, F: m.MulVec}
		rng := rand.New(rand.NewSource(int64(3 + trial)))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		fresh := make([]float64, n)
		reused := make([]float64, n)
		rf := MINRES(op, b, fresh, MINRESOptions{Tol: 1e-12})
		rw := MINRESWS(op, b, reused, MINRESOptions{Tol: 1e-12}, &work)
		if rf.Iterations != rw.Iterations || rf.Converged != rw.Converged {
			t.Fatalf("trial %d: results differ: %+v vs %+v", trial, rf, rw)
		}
		for i := range fresh {
			if fresh[i] != reused[i] {
				t.Fatalf("trial %d: solutions differ at %d: %v vs %v", trial, i, fresh[i], reused[i])
			}
		}
	}
}

func TestMINRESIndefinite(t *testing.T) {
	// A diagonal indefinite system: the exact regime of RQI shifts.
	n := 25
	m := NewDense(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, float64(i)-7.5) // eigenvalues straddle zero
	}
	op := OpFunc{N: n, F: m.MulVec}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 / float64(i+1)
	}
	x := make([]float64, n)
	res := MINRES(op, b, x, MINRESOptions{Tol: 1e-12})
	if !res.Converged {
		t.Fatalf("MINRES indefinite did not converge: %+v", res)
	}
	for i := 0; i < n; i++ {
		want := b[i] / m.At(i, i)
		if math.Abs(x[i]-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestMINRESZeroRHS(t *testing.T) {
	op := OpFunc{N: 4, F: func(x, y []float64) { copy(y, x) }}
	x := []float64{9, 9, 9, 9}
	res := MINRES(op, make([]float64, 4), x, MINRESOptions{})
	if !res.Converged || Nrm2(x) != 0 {
		t.Fatalf("zero rhs: %+v x=%v", res, x)
	}
}

func TestMINRESMaxIter(t *testing.T) {
	// Force early stop with MaxIter=1 on a nontrivial system.
	n := 20
	m := randSPD(n, 5)
	op := OpFunc{N: n, F: m.MulVec}
	b := make([]float64, n)
	b[0] = 1
	b[n-1] = -2
	x := make([]float64, n)
	res := MINRES(op, b, x, MINRESOptions{Tol: 1e-14, MaxIter: 1})
	if res.Converged {
		t.Fatalf("claims convergence after 1 iter: %+v", res)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1}, y)
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
