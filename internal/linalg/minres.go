package linalg

import "math"

// Operator is a symmetric linear operator y = A·x. Implementations include
// the graph Laplacian (internal/laplacian) and its shifted form L − σI used
// by Rayleigh Quotient Iteration.
type Operator interface {
	// Dim returns the dimension n.
	Dim() int
	// Apply computes y = A·x; x and y have length Dim() and do not alias.
	Apply(x, y []float64)
}

// AxpyApplier is an Operator whose matvec can fuse the Lanczos three-term
// recurrence: ApplyAxpy computes y = A·x − beta·z in one streaming pass,
// saving the separate Axpy sweep over y. The Laplacian operators implement
// it; iterative solvers type-assert for it and fall back to Apply+Axpy.
type AxpyApplier interface {
	Operator
	// ApplyAxpy computes y = A·x − beta·z. x, y and z have length Dim();
	// y aliases neither input, while z may alias x (the shifted-operator
	// case y = A·x − σ·x).
	ApplyAxpy(x, y []float64, beta float64, z []float64)
}

// OpFunc adapts a function to the Operator interface.
type OpFunc struct {
	N int
	F func(x, y []float64)
}

func (o OpFunc) Dim() int             { return o.N }
func (o OpFunc) Apply(x, y []float64) { o.F(x, y) }

// ShiftedOp wraps an Operator as A − σI. RQI solves systems with this
// operator, which is symmetric indefinite when σ sits inside the spectrum —
// the reason MINRES rather than CG is used.
type ShiftedOp struct {
	A     Operator
	Sigma float64
}

func (s ShiftedOp) Dim() int { return s.A.Dim() }

func (s ShiftedOp) Apply(x, y []float64) {
	if s.Sigma != 0 {
		// Fuse the shift into the matvec pass when the wrapped operator
		// supports it — every MINRES iteration inside RQI hits this path.
		if ap, ok := s.A.(AxpyApplier); ok {
			ap.ApplyAxpy(x, y, s.Sigma, x)
			return
		}
	}
	s.A.Apply(x, y)
	if s.Sigma != 0 {
		Axpy(-s.Sigma, x, y)
	}
}

// MINRESResult reports the outcome of a MINRES solve.
type MINRESResult struct {
	Iterations int
	// Residual is the final estimated ‖b − A·x‖.
	Residual float64
	// Converged is true when Residual ≤ Tol·‖b‖ was reached within MaxIter.
	Converged bool
}

// MINRESOptions configures MINRES.
type MINRESOptions struct {
	// Tol is the relative residual tolerance (default 1e-10).
	Tol float64
	// MaxIter caps the iterations (default 2n).
	MaxIter int
	// ProjectOnes, when set, keeps iterates orthogonal to the constant
	// vector. RQI on a Laplacian works entirely in 1⊥, where L − σI is
	// nonsingular even though L itself is singular.
	ProjectOnes bool
}

// MINRESWork holds the six length-n work vectors of a MINRES solve so
// repeated solves (the RQI inner loop) reuse one set of buffers instead of
// allocating per call. The zero value is ready; slices grow on demand via
// Grow, so callers that pre-size them from a scratch arena run
// allocation-free.
type MINRESWork struct {
	V, VOld, W     []float64 // Lanczos vectors v_k, v_{k-1} and A·v scratch
	D, DOld, DOld2 []float64 // direction recurrence d_k, d_{k-1}, d_{k-2}
}

func (wk *MINRESWork) grow(n int) {
	wk.V = Grow(wk.V, n)
	wk.VOld = Grow(wk.VOld, n)
	wk.W = Grow(wk.W, n)
	wk.D = Grow(wk.D, n)
	wk.DOld = Grow(wk.DOld, n)
	wk.DOld2 = Grow(wk.DOld2, n)
}

// MINRES solves A·x = b for symmetric (possibly indefinite) A using the
// Paige–Saunders minimum-residual method. x is the output vector (its
// initial content is ignored; the zero initial guess is used).
//
// This is the inner solver of Rayleigh Quotient Iteration in the multilevel
// Fiedler computation (the role SYMMLQ plays in Barnard–Simon's original
// implementation).
func MINRES(A Operator, b []float64, x []float64, opt MINRESOptions) MINRESResult {
	return MINRESWS(A, b, x, opt, &MINRESWork{})
}

// MINRESWS is MINRES with caller-provided work vectors; see MINRESWork.
func MINRESWS(A Operator, b []float64, x []float64, opt MINRESOptions, work *MINRESWork) MINRESResult {
	n := A.Dim()
	if opt.Tol == 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 2 * n
	}
	for i := range x {
		x[i] = 0
	}
	work.grow(n)
	v, vOld, w := work.V, work.VOld, work.W
	d, dOld, dOld2 := work.D, work.DOld, work.DOld2
	// The direction recurrence multiplies dOld/dOld2 by zero coefficients on
	// the first iterations, which is only safe if recycled buffers hold
	// finite values; clear them.
	Fill(d, 0)
	Fill(dOld, 0)
	Fill(dOld2, 0)

	copy(v, b)
	if opt.ProjectOnes {
		ProjectOutOnes(v)
	}
	beta := Nrm2(v)
	normB := beta
	if normB == 0 {
		return MINRESResult{Converged: true}
	}
	Scal(1/beta, v)

	// QR of the tridiagonal via Givens rotations.
	var cPrev, sPrev, cPrev2, sPrev2 float64 = 1, 0, 1, 0
	eta := beta // residual-driving scalar
	resid := beta
	betaOld := 0.0

	for k := 1; k <= opt.MaxIter; k++ {
		// Lanczos step: w = A v - beta_{k-1} v_{k-1}; alpha = vᵀw. The
		// recurrence subtraction fuses with the alpha reduction (DotAxpy)
		// and the alpha subtraction with the norm (AxpyNrm2) — two memory
		// passes over w instead of four.
		A.Apply(v, w)
		if opt.ProjectOnes {
			ProjectOutOnes(w)
		}
		var alpha float64
		if betaOld != 0 {
			alpha = DotAxpy(-betaOld, vOld, v, w)
		} else {
			alpha = Dot(v, w)
		}
		betaNew := AxpyNrm2(-alpha, v, w)

		// Apply the two previous rotations to the new column (betaOld, alpha, betaNew).
		rho1 := sPrev2 * betaOld            // first super-diagonal effect
		rho2bar := cPrev2 * betaOld         //
		rho2 := cPrev*rho2bar + sPrev*alpha // second entry after prev rotation
		rho3bar := -sPrev*rho2bar + cPrev*alpha
		// New rotation annihilating betaNew.
		rho3 := math.Hypot(rho3bar, betaNew)
		var c, s float64
		if rho3 == 0 {
			c, s = 1, 0
			rho3 = 1e-300 // avoid division by zero; breakdown ⇒ converged
		} else {
			c, s = rho3bar/rho3, betaNew/rho3
		}

		// Update direction: d_k = (v - rho2 d_{k-1} - rho1 d_{k-2}) / rho3.
		for i := 0; i < n; i++ {
			d[i] = (v[i] - rho2*dOld[i] - rho1*dOld2[i]) / rho3
		}
		// Update solution: x += c*eta * d.
		Axpy(c*eta, d, x)
		resid = math.Abs(s * eta)
		eta = -s * eta

		if resid <= opt.Tol*normB {
			return MINRESResult{Iterations: k, Residual: resid, Converged: true}
		}
		if betaNew == 0 {
			// Invariant subspace found; the solve is exact.
			return MINRESResult{Iterations: k, Residual: resid, Converged: resid <= opt.Tol*normB}
		}

		// Shift Lanczos vectors.
		Scal(1/betaNew, w)
		vOld, v, w = v, w, vOld
		betaOld = betaNew
		dOld2, dOld, d = dOld, d, dOld2
		cPrev2, sPrev2 = cPrev, sPrev
		cPrev, sPrev = c, s
	}
	return MINRESResult{Iterations: opt.MaxIter, Residual: resid, Converged: false}
}
