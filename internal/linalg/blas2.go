package linalg

import "math"

// This file holds the BLAS-2 kernels behind the blocked Lanczos engine
// (internal/lanczos) plus the fused BLAS-1 kernels that cut redundant
// memory passes out of the iterative solvers' inner loops.
//
// The Krylov basis is stored as a contiguous row-major matrix: row j of the
// k×n matrix Q (the slice q[j*n : (j+1)*n]) is basis vector q_j. In the
// conventional column view, where basis vectors are columns, GemvT computes
// c = Qᵀw and GemvSub computes w −= Q·c; here both walk rows. The inner
// loops are unrolled four rows wide so one streaming pass over w serves
// four basis vectors — the reorthogonalization then reads w (and writes it,
// in GemvSub) once per four vectors instead of once per vector, which is
// where the memory-bandwidth win over the one-vector-at-a-time loop comes
// from.

// Kernel dispatch: the hottest BLAS-2/fused-BLAS-1 entry points route
// through function variables initialized to the portable 4-wide scalar
// implementations below. Architecture-gated files (see blas2_amd64v3.go,
// build tag amd64.v3) replace them at init with variants exploiting
// instructions the portable baseline cannot assume — under the default
// GOAMD64 level the gated files are not even compiled, so the fallback is
// exactly the historical scalar path. KernelISA reports which set is
// live. The indirect call costs one branch per kernel invocation against
// O(k·n) work inside — unmeasurable.
//
// Numerics: within any single binary the kernels are deterministic, and
// every portable build computes bit-for-bit what previous releases did. A
// GOAMD64=v3 binary may round differently (FMA fuses the multiply-add
// into one rounding); results remain deterministic within that binary.
var (
	gemvTImpl   = gemvTPortable
	gemvImpl    = gemvPortable
	dotAxpyImpl = dotAxpyPortable
	kernelISA   = "portable"
)

// KernelISA reports which kernel implementation set is live:
// "portable" for the scalar baseline, "amd64.v3+fma" when the
// GOAMD64=v3 build tag swapped in the FMA variants at init.
func KernelISA() string { return kernelISA }

// GemvT computes c[j] = q_jᵀ·w for j in 0..k-1, where q_j is row j of the
// row-major k×n matrix q. In the columns-are-basis-vectors view this is
// c = Qᵀw. c must have length ≥ k; q must have length ≥ k·n.
func GemvT(c, q []float64, k, n int, w []float64) { gemvTImpl(c, q, k, n, w) }

//envlint:noalloc
//envlint:readonly q w
func gemvTPortable(c, q []float64, k, n int, w []float64) {
	w = w[:n]
	j := 0
	for ; j+4 <= k; j += 4 {
		q0 := q[(j+0)*n:][:n]
		q1 := q[(j+1)*n:][:n]
		q2 := q[(j+2)*n:][:n]
		q3 := q[(j+3)*n:][:n]
		var s0, s1, s2, s3 float64
		for i, wi := range w {
			s0 += q0[i] * wi
			s1 += q1[i] * wi
			s2 += q2[i] * wi
			s3 += q3[i] * wi
		}
		c[j], c[j+1], c[j+2], c[j+3] = s0, s1, s2, s3
	}
	for ; j < k; j++ {
		c[j] = Dot(q[j*n:][:n], w)
	}
}

// GemvSub computes w −= Σ_j c[j]·q_j over rows j in 0..k-1 of the row-major
// k×n matrix q — w −= Q·c in the column view. It is the subtraction half of
// one classical Gram–Schmidt pass: GemvT collects every projection
// coefficient, GemvSub removes them all in one blocked sweep.
//
//envlint:noalloc
//envlint:readonly q c
func GemvSub(w, q []float64, k, n int, c []float64) {
	w = w[:n]
	j := 0
	for ; j+4 <= k; j += 4 {
		q0 := q[(j+0)*n:][:n]
		q1 := q[(j+1)*n:][:n]
		q2 := q[(j+2)*n:][:n]
		q3 := q[(j+3)*n:][:n]
		c0, c1, c2, c3 := c[j], c[j+1], c[j+2], c[j+3]
		for i := range w {
			w[i] -= c0*q0[i] + c1*q1[i] + c2*q2[i] + c3*q3[i]
		}
	}
	for ; j < k; j++ {
		Axpy(-c[j], q[j*n:][:n], w)
	}
}

// OrthoMGS orthogonalizes w against rows 0..k-1 of the row-major k×n basis
// q by blocked modified Gram–Schmidt: rows are processed four at a time,
// each block's coefficients computed against the w already cleaned of every
// earlier block (c[j] records row j's coefficient), then removed in one
// fused subtraction while the block is hot in cache. Across blocks this is
// MGS — the sequential update that keeps the classic per-vector loop
// numerically safe — while within a block the four rows are treated CGS-
// style, which is harmless for the (near-)orthonormal bases the Lanczos
// engine maintains. One call makes a single effective memory pass over q,
// half the traffic of a separate GemvT+GemvSub sweep.
//
// The returned value is Σ c[j]², which with ‖w after‖² reconstructs
// ‖w before‖² by Pythagoras — the cancellation measure behind the
// "twice is enough" refinement test, available without an extra pass.
//
//envlint:noalloc
//envlint:readonly q
func OrthoMGS(w, q []float64, k, n int, c []float64) float64 {
	w = w[:n]
	var csq float64
	j := 0
	for ; j+4 <= k; j += 4 {
		q0 := q[(j+0)*n:][:n]
		q1 := q[(j+1)*n:][:n]
		q2 := q[(j+2)*n:][:n]
		q3 := q[(j+3)*n:][:n]
		var s0, s1, s2, s3 float64
		for i, wi := range w {
			s0 += q0[i] * wi
			s1 += q1[i] * wi
			s2 += q2[i] * wi
			s3 += q3[i] * wi
		}
		c[j], c[j+1], c[j+2], c[j+3] = s0, s1, s2, s3
		csq += s0*s0 + s1*s1 + s2*s2 + s3*s3
		for i := range w {
			w[i] -= s0*q0[i] + s1*q1[i] + s2*q2[i] + s3*q3[i]
		}
	}
	for ; j < k; j++ {
		qj := q[j*n:][:n]
		cj := Dot(qj, w)
		c[j] = cj
		csq += cj * cj
		Axpy(-cj, qj, w)
	}
	return csq
}

// Gemv overwrites out with Σ_j c[j]·q_j over rows j in 0..k-1 of the
// row-major k×n matrix q — out = Q·c in the column view. The Lanczos engine
// uses it to assemble the Ritz vector from the tridiagonal eigenvector.
// c is read-only.
func Gemv(out, q []float64, k, n int, c []float64) { gemvImpl(out, q, k, n, c) }

//envlint:noalloc
//envlint:readonly q c
func gemvPortable(out, q []float64, k, n int, c []float64) {
	out = out[:n]
	Fill(out, 0)
	j := 0
	for ; j+4 <= k; j += 4 {
		q0 := q[(j+0)*n:][:n]
		q1 := q[(j+1)*n:][:n]
		q2 := q[(j+2)*n:][:n]
		q3 := q[(j+3)*n:][:n]
		c0, c1, c2, c3 := c[j], c[j+1], c[j+2], c[j+3]
		for i := range out {
			out[i] += c0*q0[i] + c1*q1[i] + c2*q2[i] + c3*q3[i]
		}
	}
	for ; j < k; j++ {
		Axpy(c[j], q[j*n:][:n], out)
	}
}

// DotAxpy computes z += a·x and returns yᵀz (of the updated z) in a single
// streaming pass — the fusion of Axpy and Dot that the MINRES Lanczos step
// uses for w −= β·v_old; α = vᵀw.
func DotAxpy(a float64, x, y, z []float64) float64 { return dotAxpyImpl(a, x, y, z) }

//envlint:noalloc
//envlint:readonly x y
func dotAxpyPortable(a float64, x, y, z []float64) float64 {
	var s float64
	z = z[:len(x)]
	y = y[:len(x)]
	for i, xi := range x {
		zi := z[i] + a*xi
		z[i] = zi
		s += y[i] * zi
	}
	return s
}

// AxpyNrm2 computes y += a·x and returns ‖y‖ (of the updated y) in a single
// streaming pass. Unlike Nrm2 it accumulates squares without overflow
// scaling; it is meant for the well-scaled vectors of the solver inner
// loops (unit-norm iterates, residuals of unit vectors), where components
// stay far inside the ±1e150 square-safe range.
//
//envlint:noalloc
//envlint:readonly x
func AxpyNrm2(a float64, x, y []float64) float64 {
	var ssq float64
	y = y[:len(x)]
	for i, xi := range x {
		yi := y[i] + a*xi
		y[i] = yi
		ssq += yi * yi
	}
	return math.Sqrt(ssq)
}
