//go:build amd64.v3

package linalg

import "math"

// GOAMD64=v3 kernel variants. The v3 microarchitecture level guarantees
// FMA3, so math.FMA compiles to a single VFMADD instruction here instead
// of the portable soft-float fallback — each accumulation step becomes
// one fused multiply-add with a single rounding, which both shortens the
// dependency chain and tightens the numerics. The unroll widens to eight
// lanes: v3 cores retire two FMAs per cycle, so eight independent
// accumulators cover the 4-cycle latency where the portable 4-wide
// unroll leaves half the slots empty.
//
// Build with GOAMD64=v3 (or v4) to compile this file; the lint CI job
// builds it on every push so the gated code cannot rot. Results within a
// v3 binary are deterministic; they may differ in the last ulp from the
// portable build (FMA's single rounding) — see the dispatch note in
// blas2.go.

func init() {
	gemvTImpl = gemvTAVX
	gemvImpl = gemvAVX
	dotAxpyImpl = dotAxpyFMA
	kernelISA = "amd64.v3+fma"
}

//envlint:noalloc
//envlint:readonly q w
func gemvTAVX(c, q []float64, k, n int, w []float64) {
	w = w[:n]
	j := 0
	for ; j+8 <= k; j += 8 {
		q0 := q[(j+0)*n:][:n]
		q1 := q[(j+1)*n:][:n]
		q2 := q[(j+2)*n:][:n]
		q3 := q[(j+3)*n:][:n]
		q4 := q[(j+4)*n:][:n]
		q5 := q[(j+5)*n:][:n]
		q6 := q[(j+6)*n:][:n]
		q7 := q[(j+7)*n:][:n]
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for i, wi := range w {
			s0 = math.FMA(q0[i], wi, s0)
			s1 = math.FMA(q1[i], wi, s1)
			s2 = math.FMA(q2[i], wi, s2)
			s3 = math.FMA(q3[i], wi, s3)
			s4 = math.FMA(q4[i], wi, s4)
			s5 = math.FMA(q5[i], wi, s5)
			s6 = math.FMA(q6[i], wi, s6)
			s7 = math.FMA(q7[i], wi, s7)
		}
		c[j], c[j+1], c[j+2], c[j+3] = s0, s1, s2, s3
		c[j+4], c[j+5], c[j+6], c[j+7] = s4, s5, s6, s7
	}
	for ; j < k; j++ {
		qj := q[j*n:][:n]
		var s float64
		for i, wi := range w {
			s = math.FMA(qj[i], wi, s)
		}
		c[j] = s
	}
}

//envlint:noalloc
//envlint:readonly q c
func gemvAVX(out, q []float64, k, n int, c []float64) {
	out = out[:n]
	Fill(out, 0)
	j := 0
	for ; j+4 <= k; j += 4 {
		q0 := q[(j+0)*n:][:n]
		q1 := q[(j+1)*n:][:n]
		q2 := q[(j+2)*n:][:n]
		q3 := q[(j+3)*n:][:n]
		c0, c1, c2, c3 := c[j], c[j+1], c[j+2], c[j+3]
		for i := range out {
			s := math.FMA(c0, q0[i], out[i])
			s = math.FMA(c1, q1[i], s)
			s = math.FMA(c2, q2[i], s)
			out[i] = math.FMA(c3, q3[i], s)
		}
	}
	for ; j < k; j++ {
		qj := q[j*n:][:n]
		cj := c[j]
		for i := range out {
			out[i] = math.FMA(cj, qj[i], out[i])
		}
	}
}

//envlint:noalloc
//envlint:readonly x y
func dotAxpyFMA(a float64, x, y, z []float64) float64 {
	var s float64
	z = z[:len(x)]
	y = y[:len(x)]
	for i, xi := range x {
		zi := math.FMA(a, xi, z[i])
		z[i] = zi
		s = math.FMA(y[i], zi, s)
	}
	return s
}
