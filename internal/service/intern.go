package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/graph"
)

// interner deduplicates request graphs by content so repeated requests on
// the same matrix resolve to one *graph.Graph instance. That pointer
// identity is what makes the tenant Session's artifact cache (which keys
// by graph pointer) effective across the wire: without interning, every
// HTTP request would parse a fresh graph and no eigensolve would ever be
// reused. Capacity matches the Session cache so the two LRUs age together.
type interner struct {
	max     int
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*list.Element
	lru     *list.List // of *internEntry; front = most recently used
}

type internEntry struct {
	key [sha256.Size]byte
	g   *graph.Graph
}

func newInterner(maxGraphs int) *interner {
	return &interner{
		max:     maxGraphs,
		entries: map[[sha256.Size]byte]*list.Element{},
		lru:     list.New(),
	}
}

// intern returns the resident graph equal to g (hit=true) or stores g as
// the resident instance (hit=false), evicting least-recently-used entries
// past capacity.
func (it *interner) intern(g *graph.Graph) (resident *graph.Graph, hit bool) {
	key := fingerprint(g)
	it.mu.Lock()
	defer it.mu.Unlock()
	if el, ok := it.entries[key]; ok {
		it.lru.MoveToFront(el)
		return el.Value.(*internEntry).g, true
	}
	it.entries[key] = it.lru.PushFront(&internEntry{key: key, g: g})
	for it.lru.Len() > it.max {
		back := it.lru.Back()
		delete(it.entries, back.Value.(*internEntry).key)
		it.lru.Remove(back)
	}
	return g, false
}

// fingerprint hashes the CSR arrays (the full content of an immutable
// Graph) chunk-wise through a fixed buffer.
func fingerprint(g *graph.Graph) [sha256.Size]byte {
	h := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(g.N()))
	h.Write(hdr[:])
	var buf [4 * 4096]byte
	hashInt32s(h, buf[:], g.Xadj)
	hashInt32s(h, buf[:], g.Adj)
	return [sha256.Size]byte(h.Sum(nil))
}

func hashInt32s(h interface{ Write([]byte) (int, error) }, buf []byte, vals []int32) {
	for len(vals) > 0 {
		n := len(buf) / 4
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(vals[i]))
		}
		h.Write(buf[:4*n])
		vals = vals[n:]
	}
}
