package service

import (
	"container/list"
	"sync"

	"repro/internal/graph"
)

// interner deduplicates request graphs by content so repeated requests on
// the same matrix resolve to one *graph.Graph instance. That pointer
// identity is what makes the tenant Session's artifact cache (which keys
// by graph pointer) effective across the wire: without interning, every
// HTTP request would parse a fresh graph and no in-memory eigensolve would
// ever be reused. Capacity matches the Session cache so the two LRUs age
// together. The key is the same canonical graph.Fingerprint the persistent
// artifact store addresses entries by, so an interner hit and a store hit
// describe the same content identity at different lifetimes.
type interner struct {
	max     int
	mu      sync.Mutex
	entries map[graph.Fingerprint]*list.Element
	lru     *list.List // of *internEntry; front = most recently used
}

type internEntry struct {
	key graph.Fingerprint
	g   *graph.Graph
}

func newInterner(maxGraphs int) *interner {
	return &interner{
		max:     maxGraphs,
		entries: map[graph.Fingerprint]*list.Element{},
		lru:     list.New(),
	}
}

// intern returns the resident graph equal to g (hit=true) or stores g as
// the resident instance (hit=false), evicting least-recently-used entries
// past capacity.
func (it *interner) intern(g *graph.Graph) (resident *graph.Graph, hit bool) {
	key := graph.FingerprintOf(g)
	it.mu.Lock()
	defer it.mu.Unlock()
	if el, ok := it.entries[key]; ok {
		it.lru.MoveToFront(el)
		return el.Value.(*internEntry).g, true
	}
	it.entries[key] = it.lru.PushFront(&internEntry{key: key, g: g})
	for it.lru.Len() > it.max {
		back := it.lru.Back()
		delete(it.entries, back.Value.(*internEntry).key)
		it.lru.Remove(back)
	}
	return g, false
}
