// Package service implements the envorderd ordering daemon: the Session
// API of the root package served over HTTP/JSON.
//
// Endpoints (all JSON unless noted):
//
//	POST /v1/order              synchronous ordering (graph in body)
//	POST /v1/order/batch        many graphs, one algorithm, one round trip
//	POST /v1/jobs               submit an async ordering job → job id
//	GET  /v1/jobs/{id}          poll job status
//	GET  /v1/jobs/{id}/result   fetch the finished job's ordering
//	GET  /v1/algorithms         registered algorithm names
//	GET|POST /v1/fiedler        Fiedler vector + λ2 of a connected graph
//	GET  /healthz               liveness (always 200 while the process serves)
//	GET  /readyz                readiness: store breaker state and counters
//	GET  /metrics               Prometheus text exposition
//
// Graphs arrive either as a Matrix Market body (any non-JSON content
// type; algorithm/seed/timeout in query parameters) or as a JSON document
// carrying an adjacency list or inline Matrix Market text. See
// parseOrderPayload for the exact wire format.
//
// A Server multiplexes any number of tenants: in open mode (no API keys
// configured) every request shares one tenant; with Config.APIKeys set,
// requests authenticate with Authorization: Bearer or X-API-Key and each
// tenant owns an independent Session (its own LRU artifact cache), an
// independent graph interner and an independent concurrency budget, so one
// tenant's burst cannot evict another's cached eigensolves or starve its
// slots. Actual compute is bounded by one global solve pool shared with
// the async job workers; request timeouts ride the library's context
// cancellation path, so a deadline that expires mid-eigensolve still
// yields the best-so-far fallback ordering (HTTP 503, best_so_far=true).
package service

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	envred "repro"
)

// Config parameterizes a Server. The zero value is a usable open-mode
// daemon with defaults noted on each field.
type Config struct {
	// APIKeys maps API key → tenant name. Empty means open mode: no
	// authentication, one shared tenant. Several keys may share a tenant
	// name (they share its Session, cache and budget).
	APIKeys map[string]string
	// Workers bounds the solve pool: at most this many orderings execute
	// concurrently (sync requests and async jobs combined), each reusing
	// the library's pooled pipeline workspaces. 0 = GOMAXPROCS.
	Workers int
	// QueueDepth bounds the async job queue; submissions beyond it are
	// rejected with 503. 0 = 256.
	QueueDepth int
	// MaxJobsRetained bounds finished jobs kept for result polling;
	// oldest finished jobs are evicted first. 0 = 1024.
	MaxJobsRetained int
	// MaxBodyBytes caps request bodies; larger requests get 413.
	// 0 = 32 MiB.
	MaxBodyBytes int64
	// DefaultTimeout applies to orderings whose request carries no
	// explicit timeout. 0 = no server-side timeout.
	DefaultTimeout time.Duration
	// CacheGraphs sizes each tenant's Session artifact cache and graph
	// interner. 0 = envred.DefaultCacheGraphs.
	CacheGraphs int
	// TenantConcurrency bounds each tenant's in-flight orderings (they
	// queue, honoring the request context, rather than fail). 0 = 4×the
	// solve pool, < 0 = unlimited.
	TenantConcurrency int
	// Seed is the default ordering seed when a request carries none.
	Seed int64
	// Store, when non-nil, is the persistent artifact store every tenant
	// Session shares (entries are content-addressed, so cross-tenant reuse
	// can never leak one tenant's results into another's — equal content is
	// equal artifacts). The daemon wraps it with traffic counters surfaced
	// as envorderd_store_* metrics. The caller owns the store: open it
	// before New (see envred.OpenStore) and close it after Shutdown.
	Store envred.Store
	// Logf, when non-nil, receives one line per request and lifecycle
	// event (log.Printf-compatible).
	Logf func(format string, args ...any)
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 256
}

func (c *Config) maxJobsRetained() int {
	if c.MaxJobsRetained > 0 {
		return c.MaxJobsRetained
	}
	return 1024
}

func (c *Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 32 << 20
}

func (c *Config) cacheGraphs() int {
	if c.CacheGraphs > 0 {
		return c.CacheGraphs
	}
	return envred.DefaultCacheGraphs
}

// tenant is one isolated consumer of the service: its own Session (LRU
// artifact cache), graph interner and concurrency budget.
type tenant struct {
	name    string
	sess    *envred.Session
	graphs  *interner
	sem     chan struct{} // nil = unlimited
	started time.Time
}

// Server is the ordering service. Create with New, expose via Handler
// (behind any net/http server), and stop with Shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	m     *metrics
	start time.Time

	// solveSem is the global bounded solve pool.
	solveSem chan struct{}

	// store is the counted persistent-store handle tenant Sessions solve
	// through (nil without Config.Store); rawStore is the uncounted
	// underlying handle used for advisory cached-flag probes, which must
	// not perturb the hit/miss counters. resilient is the fault-tolerance
	// handle found in the store's wrapper chain (nil when the store is not
	// wrapped in a ResilientStore): /readyz and the breaker metrics read
	// its state at render time.
	store     *envred.CountedStore
	rawStore  envred.Store
	resilient *envred.ResilientStore

	tenantMu sync.Mutex
	byName   map[string]*tenant
	byKey    map[string]*tenant
	open     *tenant // open-mode tenant; nil when APIKeys are configured

	jobs *jobStore

	// lifecycle: baseCtx cancels running work on forced shutdown; jobMu
	// guards the closed → jobCh transition so submits never race close.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	jobMu      sync.Mutex
	closed     bool
	jobCh      chan *job
	workerWG   sync.WaitGroup
}

// New builds a Server and starts its job workers.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		m:        newMetrics(),
		start:    time.Now(),
		solveSem: make(chan struct{}, cfg.workers()),
		byName:   map[string]*tenant{},
		byKey:    map[string]*tenant{},
		jobs:     newJobStore(cfg.maxJobsRetained()),
		jobCh:    make(chan *job, cfg.queueDepth()),
	}
	//envlint:ignore ctxflow the daemon owns its lifetime; Shutdown cancels this base context
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.Store != nil {
		s.rawStore = cfg.Store
		s.store = envred.NewCountedStore(cfg.Store, func(_ string, seconds float64) {
			s.m.storeSeconds.observe(seconds)
		})
		s.m.store = s.store
		s.resilient = resilienceOf(cfg.Store)
		s.m.resilient = s.resilient
	}
	if len(cfg.APIKeys) == 0 {
		s.open = s.newTenant("default")
	} else {
		for key, name := range cfg.APIKeys {
			tnt, ok := s.byName[name]
			if !ok {
				tnt = s.newTenant(name)
				s.byName[name] = tnt
			}
			s.byKey[key] = tnt
		}
	}
	s.routes()
	for i := 0; i < cfg.workers(); i++ {
		s.workerWG.Add(1)
		go s.jobWorker()
	}
	return s
}

func (s *Server) newTenant(name string) *tenant {
	opts := envred.SessionOptions{Seed: s.cfg.Seed, CacheGraphs: s.cfg.cacheGraphs()}
	if s.store != nil {
		opts.Store = s.store
	}
	t := &tenant{
		name:    name,
		sess:    envred.NewSession(opts),
		graphs:  newInterner(s.cfg.cacheGraphs()),
		started: time.Now(),
	}
	budget := s.cfg.TenantConcurrency
	if budget == 0 {
		budget = 4 * s.cfg.workers()
	}
	if budget > 0 {
		t.sem = make(chan struct{}, budget)
	}
	return t
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/order", s.auth(s.handleOrder))
	s.mux.HandleFunc("POST /v1/order/batch", s.auth(s.handleOrderBatch))
	s.mux.HandleFunc("POST /v1/jobs", s.auth(s.handleJobSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.auth(s.handleJobStatus))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.auth(s.handleJobResult))
	s.mux.HandleFunc("GET /v1/algorithms", s.auth(s.handleAlgorithms))
	s.mux.HandleFunc("GET /v1/fiedler", s.auth(s.handleFiedler))
	s.mux.HandleFunc("POST /v1/fiedler", s.auth(s.handleFiedler))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// resilienceOf walks the store's Unwrap chain for the ResilientStore
// handle, so the daemon finds it whether the store arrived as the wrapper
// itself or further wrapped.
func resilienceOf(st envred.Store) *envred.ResilientStore {
	for st != nil {
		if r, ok := st.(*envred.ResilientStore); ok {
			return r
		}
		u, ok := st.(interface{ Unwrap() envred.Store })
		if !ok {
			return nil
		}
		st = u.Unwrap()
	}
	return nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// auth resolves the request's tenant and rejects unauthenticated requests
// when API keys are configured. The tenant rides to handlers via the
// request context.
func (s *Server) auth(h func(http.ResponseWriter, *http.Request, *tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tnt := s.open
		if tnt == nil {
			key := r.Header.Get("X-API-Key")
			if key == "" {
				if auth := r.Header.Get("Authorization"); len(auth) > 7 && auth[:7] == "Bearer " {
					key = auth[7:]
				}
			}
			if key == "" {
				writeError(w, &apiError{Status: http.StatusUnauthorized, Message: "missing API key (use Authorization: Bearer <key> or X-API-Key)"})
				return
			}
			var ok bool
			s.tenantMu.Lock()
			tnt, ok = s.byKey[key]
			s.tenantMu.Unlock()
			if !ok {
				writeError(w, &apiError{Status: http.StatusUnauthorized, Message: "unknown API key"})
				return
			}
		}
		h(w, r, tnt)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Shutdown drains the service: no new jobs are accepted, queued and
// running jobs are given until ctx expires to finish, then any still
// running are cancelled through their contexts (their orderings return
// best-so-far fallbacks internally and the jobs record the cancellation).
// The HTTP listener is owned by the caller and should be shut down first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.jobMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.jobCh)
	}
	s.jobMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // force: cancel in-flight work, then wait it out
		<-done
		return fmt.Errorf("service: shutdown grace expired, %d job(s) cancelled: %w", s.jobs.running(), ctx.Err())
	}
}
