package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	envred "repro"
	"repro/internal/core"
	"repro/internal/service"
)

// countServiceSolves counts the eigensolves actually performed while f
// runs. The hook is process-global, so tests using it must not run in
// parallel with other ordering traffic.
func countServiceSolves(f func()) int {
	var n int64
	restore := core.SetEigensolveTestHook(func(int) { atomic.AddInt64(&n, 1) })
	defer restore()
	f()
	return int(atomic.LoadInt64(&n))
}

// scrapeCounter reads one un-labeled counter's value off /metrics.
func scrapeCounter(t *testing.T, baseURL, name string) int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics", name)
	return 0
}

// TestServiceWarmRestart boots a store-backed daemon, orders a matrix,
// shuts the daemon down, boots a fresh one on the same store directory and
// orders the same matrix again: the restarted daemon must answer with
// cached=true, zero eigensolves and a byte-identical permutation, and the
// store metrics must show the round trip (miss+put cold, hit warm).
func TestServiceWarmRestart(t *testing.T) {
	dir := t.TempDir()
	g := envred.Grid(14, 11)
	body := mmBody(t, g)

	run := func(wantName string) (rep orderReply, solves int, hits, misses, puts int64) {
		st, err := envred.OpenStore("fs://" + dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		svc := service.New(service.Config{Seed: 3, Store: st})
		ts := httptest.NewServer(svc.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := svc.Shutdown(ctx); err != nil {
				t.Errorf("%s shutdown: %v", wantName, err)
			}
		}()
		solves = countServiceSolves(func() {
			resp, raw := postMM(t, ts.URL+"/v1/order?algorithm=spectral", body, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d: %s", wantName, resp.StatusCode, raw)
			}
			if err := json.Unmarshal(raw, &rep); err != nil {
				t.Fatalf("%s: %v", wantName, err)
			}
		})
		hits = scrapeCounter(t, ts.URL, "envorderd_store_hits_total")
		misses = scrapeCounter(t, ts.URL, "envorderd_store_misses_total")
		puts = scrapeCounter(t, ts.URL, "envorderd_store_puts_total")
		return rep, solves, hits, misses, puts
	}

	cold, coldSolves, coldHits, coldMisses, coldPuts := run("cold")
	if cold.Cached {
		t.Error("cold run reported cached=true")
	}
	if coldSolves == 0 {
		t.Fatal("cold run performed no eigensolves")
	}
	if coldHits != 0 || coldMisses == 0 || coldPuts == 0 {
		t.Errorf("cold store traffic hits=%d misses=%d puts=%d, want 0/>0/>0", coldHits, coldMisses, coldPuts)
	}

	warm, warmSolves, warmHits, _, _ := run("warm")
	if !warm.Cached {
		t.Error("restarted daemon reported cached=false for a stored matrix")
	}
	if warmSolves != 0 {
		t.Errorf("restarted daemon performed %d eigensolves, want 0", warmSolves)
	}
	if warmHits == 0 {
		t.Error("restarted daemon's store traffic shows no hits")
	}
	if len(warm.Perm) != len(cold.Perm) {
		t.Fatalf("permutation length changed across restart: %d vs %d", len(warm.Perm), len(cold.Perm))
	}
	for i := range warm.Perm {
		if warm.Perm[i] != cold.Perm[i] {
			t.Fatalf("permutation differs across restart at %d: %d vs %d", i, warm.Perm[i], cold.Perm[i])
		}
	}
}

// TestServiceStoreMetricsAbsentWithoutStore pins the exposition contract:
// a daemon without Config.Store exposes no envorderd_store_* series.
func TestServiceStoreMetricsAbsentWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Seed: 1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), "envorderd_store_") {
			t.Fatalf("store metric leaked without a store: %s", sc.Text())
		}
	}
}
