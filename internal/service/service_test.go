package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	envred "repro"
	"repro/internal/service"
)

// sleepyInit registers two test orderers once per process: SLEEPY blocks
// until its context is cancelled and returns the typed cancellation error
// with a usable fallback Fiedler vector; SLEEPY-EMPTY does the same with
// no fallback. They drive the deterministic timeout-path tests.
var sleepyInit sync.Once

func registerSleepy(t *testing.T) {
	t.Helper()
	sleepyInit.Do(func() {
		envred.MustRegister("sleepy", envred.OrdererFunc(func(ctx context.Context, g *envred.Graph, req *envred.OrderRequest) (envred.Result, error) {
			<-ctx.Done()
			vec := make([]float64, g.N())
			for i := range vec {
				vec[i] = float64(i)
			}
			return envred.Result{}, &envred.ErrCancelled{Cause: ctx.Err(), Vector: vec}
		}))
		envred.MustRegister("sleepy-empty", envred.OrdererFunc(func(ctx context.Context, g *envred.Graph, req *envred.OrderRequest) (envred.Result, error) {
			<-ctx.Done()
			return envred.Result{}, &envred.ErrCancelled{Cause: ctx.Err()}
		}))
	})
}

func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return svc, ts
}

// mmBody renders g as a Matrix Market body, the service's native wire
// encoding.
func mmBody(t *testing.T, g *envred.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := envred.WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postMM(t *testing.T, url string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

type orderReply struct {
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Perm      []int32 `json:"perm"`
	Envelope  struct {
		Esize     int64 `json:"esize"`
		Bandwidth int   `json:"bandwidth"`
	} `json:"envelope"`
	Cached    bool    `json:"cached"`
	Error     string  `json:"error"`
	BestSoFar *bool   `json:"best_so_far"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func TestOrderSyncMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Seed: 1})
	g := envred.Grid(20, 15)

	want, err := envred.NewSession(envred.SessionOptions{Seed: 7}).Order(context.Background(), g, "rcm")
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		resp, body := postMM(t, ts.URL+"/v1/order?algorithm=rcm&seed=7", mmBody(t, g), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", i, resp.StatusCode, body)
		}
		var rep orderReply
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if rep.Algorithm != "RCM" || rep.N != g.N() {
			t.Fatalf("round %d: got algorithm=%q n=%d", i, rep.Algorithm, rep.N)
		}
		if len(rep.Perm) != g.N() {
			t.Fatalf("round %d: perm length %d, want %d", i, len(rep.Perm), g.N())
		}
		for k := range rep.Perm {
			if rep.Perm[k] != want.Perm[k] {
				t.Fatalf("round %d: perm[%d] = %d, local library says %d", i, k, rep.Perm[k], want.Perm[k])
			}
		}
		if rep.Envelope.Esize != want.Stats.Esize {
			t.Fatalf("round %d: esize %d, want %d", i, rep.Envelope.Esize, want.Stats.Esize)
		}
		if rep.Cached != (i == 1) {
			t.Fatalf("round %d: cached=%v (interner should hit only on the repeat)", i, rep.Cached)
		}
	}
}

func TestOrderJSONGraphBody(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	doc := `{"algorithm":"sloan","seed":3,"graph":{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}`
	resp, body := postMM(t, ts.URL+"/v1/order", []byte(doc), map[string]string{"Content-Type": "application/json"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep orderReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != "SLOAN" || len(rep.Perm) != 4 {
		t.Fatalf("got %q perm=%v", rep.Algorithm, rep.Perm)
	}
}

func TestAuthRejection(t *testing.T) {
	_, ts := newTestServer(t, service.Config{APIKeys: map[string]string{"sesame": "acme"}})
	body := mmBody(t, envred.Path(5))

	resp, _ := postMM(t, ts.URL+"/v1/order?algorithm=rcm", body, nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no key: status %d, want 401", resp.StatusCode)
	}
	resp, _ = postMM(t, ts.URL+"/v1/order?algorithm=rcm", body, map[string]string{"X-API-Key": "wrong"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad key: status %d, want 401", resp.StatusCode)
	}
	resp, _ = postMM(t, ts.URL+"/v1/order?algorithm=rcm", body, map[string]string{"Authorization": "Bearer sesame"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good key: status %d, want 200", resp.StatusCode)
	}
	resp, _ = postMM(t, ts.URL+"/v1/order?algorithm=rcm", body, map[string]string{"X-API-Key": "sesame"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good key via X-API-Key: status %d, want 200", resp.StatusCode)
	}
}

func TestOversizeBody413(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxBodyBytes: 128})
	big := mmBody(t, envred.Grid(40, 40))
	if len(big) <= 128 {
		t.Fatalf("fixture too small: %d bytes", len(big))
	}
	resp, body := postMM(t, ts.URL+"/v1/order?algorithm=rcm", big, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
	var rep orderReply
	if err := json.Unmarshal(body, &rep); err != nil || rep.Error == "" {
		t.Fatalf("413 body should be a JSON error document, got %s (err %v)", body, err)
	}
}

func TestMalformedRequests400(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	cases := []struct {
		name string
		body string
		hdr  map[string]string
		url  string
	}{
		{name: "garbage matrix market", body: "this is not a matrix", url: "/v1/order?algorithm=rcm"},
		{name: "empty body", body: "", url: "/v1/order?algorithm=rcm"},
		{name: "bad json", body: "{", hdr: map[string]string{"Content-Type": "application/json"}, url: "/v1/order"},
		{name: "json without graph", body: `{"algorithm":"rcm"}`, hdr: map[string]string{"Content-Type": "application/json"}, url: "/v1/order"},
		{name: "edge out of range", body: `{"algorithm":"rcm","graph":{"n":3,"edges":[[0,7]]}}`, hdr: map[string]string{"Content-Type": "application/json"}, url: "/v1/order"},
		{name: "negative n", body: `{"algorithm":"rcm","graph":{"n":-2}}`, hdr: map[string]string{"Content-Type": "application/json"}, url: "/v1/order"},
		{name: "unknown algorithm", body: `{"algorithm":"nope","graph":{"n":2,"edges":[[0,1]]}}`, hdr: map[string]string{"Content-Type": "application/json"}, url: "/v1/order"},
		{name: "bad seed", body: "x", url: "/v1/order?algorithm=rcm&seed=banana"},
		{name: "bad timeout", body: "x", url: "/v1/order?algorithm=rcm&timeout=banana"},
		{name: "weighted without weights", body: `{"algorithm":"weighted","graph":{"n":3,"edges":[[0,1],[1,2]]}}`, hdr: map[string]string{"Content-Type": "application/json"}, url: "/v1/order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postMM(t, ts.URL+tc.url, []byte(tc.body), tc.hdr)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			var rep orderReply
			if err := json.Unmarshal(body, &rep); err != nil || rep.Error == "" {
				t.Fatalf("400 body should be a JSON error document, got %s", body)
			}
		})
	}
}

func TestJobNotFound404(t *testing.T) {
	_, ts := newTestServer(t, service.Config{APIKeys: map[string]string{"ka": "a", "kb": "b"}})

	resp, body := getWith(t, ts.URL+"/v1/jobs/deadbeef", "ka")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404: %s", resp.StatusCode, body)
	}
	resp, _ = getWith(t, ts.URL+"/v1/jobs/deadbeef/result", "ka")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job result: status %d, want 404", resp.StatusCode)
	}

	// Jobs are tenant-scoped: tenant b must not see tenant a's job.
	resp, body = postMM(t, ts.URL+"/v1/jobs?algorithm=rcm", mmBody(t, envred.Path(6)), map[string]string{"X-API-Key": "ka"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("submit reply %s", body)
	}
	resp, _ = getWith(t, ts.URL+"/v1/jobs/"+st.ID, "kb")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant job peek: status %d, want 404", resp.StatusCode)
	}
	resp, _ = getWith(t, ts.URL+"/v1/jobs/"+st.ID, "ka")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("own job peek: status %d, want 200", resp.StatusCode)
	}
}

func getWith(t *testing.T, url, apiKey string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestTimeout503BestSoFar(t *testing.T) {
	registerSleepy(t)
	_, ts := newTestServer(t, service.Config{})
	g := envred.Grid(10, 10)

	// SLEEPY returns a usable fallback eigenpair when its deadline fires:
	// the service must answer 503 with best_so_far=true and the ordering
	// built from the fallback vector.
	resp, body := postMM(t, ts.URL+"/v1/order?algorithm=sleepy&timeout=50ms", mmBody(t, g), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	var rep orderReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.BestSoFar == nil || !*rep.BestSoFar {
		t.Fatalf("best_so_far flag missing or false in %s", body)
	}
	if len(rep.Perm) != g.N() {
		t.Fatalf("best-so-far perm length %d, want %d", len(rep.Perm), g.N())
	}
	seen := make([]bool, g.N())
	for _, v := range rep.Perm {
		if v < 0 || int(v) >= g.N() || seen[v] {
			t.Fatalf("best-so-far perm is not a permutation: %v", rep.Perm)
		}
		seen[v] = true
	}

	// SLEEPY-EMPTY times out before anything usable exists: still 503,
	// flag present and false, no permutation.
	resp, body = postMM(t, ts.URL+"/v1/order?algorithm=sleepy-empty&timeout=50ms", mmBody(t, g), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	rep = orderReply{}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.BestSoFar == nil || *rep.BestSoFar {
		t.Fatalf("best_so_far should be present and false in %s", body)
	}
	if len(rep.Perm) != 0 {
		t.Fatalf("no fallback perm expected, got %v", rep.Perm)
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	g := envred.Grid(15, 12)

	want, body := postMM(t, ts.URL+"/v1/order?algorithm=auto&seed=5", mmBody(t, g), nil)
	if want.StatusCode != http.StatusOK {
		t.Fatalf("sync reference: %d %s", want.StatusCode, body)
	}
	var ref orderReply
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}

	resp, body := postMM(t, ts.URL+"/v1/jobs?algorithm=auto&seed=5", mmBody(t, g), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || (st.Status != "queued" && st.Status != "running") {
		t.Fatalf("submit reply %s", body)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = getWith(t, ts.URL+"/v1/jobs/"+st.ID+"/result", "")
		if resp.StatusCode == http.StatusOK {
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("result poll: status %d: %s", resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in 30s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	var got orderReply
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != "AUTO" || len(got.Perm) != g.N() {
		t.Fatalf("job result %q perm length %d", got.Algorithm, len(got.Perm))
	}
	for i := range got.Perm {
		if got.Perm[i] != ref.Perm[i] {
			t.Fatalf("async result diverges from sync at %d: %d vs %d", i, got.Perm[i], ref.Perm[i])
		}
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	resp, body := getWith(t, ts.URL+"/v1/algorithms", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc struct {
		Algorithms []string `json:"algorithms"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"AUTO": false, envred.AlgRCM: false, envred.AlgSpectral: false}
	for _, a := range doc.Algorithms {
		if _, ok := want[a]; ok {
			want[a] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("algorithm %s missing from %v", name, doc.Algorithms)
		}
	}
}

func TestFiedlerEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Seed: 1})
	g := envred.Grid(12, 9)
	resp, body := postMM(t, ts.URL+"/v1/fiedler", mmBody(t, g), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		N       int       `json:"n"`
		Lambda2 float64   `json:"lambda2"`
		Vector  []float64 `json:"vector"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.N != g.N() || len(doc.Vector) != g.N() || doc.Lambda2 <= 0 {
		t.Fatalf("fiedler reply n=%d len=%d lambda2=%g", doc.N, len(doc.Vector), doc.Lambda2)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	resp, body := getWith(t, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || doc.Status != "ok" {
		t.Fatalf("healthz reply %s", body)
	}
}

// TestMetricsScrapeParses drives a few orders then checks that /metrics
// is well-formed Prometheus text exposition and that the counters agree
// with the traffic actually served.
func TestMetricsScrapeParses(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	g := envred.Grid(10, 8)
	const rounds = 3
	for i := 0; i < rounds; i++ {
		resp, body := postMM(t, ts.URL+"/v1/order?algorithm=rcm", mmBody(t, g), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("order %d: %d %s", i, resp.StatusCode, body)
		}
	}

	resp, body := getWith(t, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	metrics := parsePrometheus(t, string(body))
	if got := metrics[`envorderd_orders_total{algorithm="RCM",status="ok"}`]; got != rounds {
		t.Fatalf("orders ok = %g, want %d", got, rounds)
	}
	if got := metrics["envorderd_cache_misses_total"]; got != 1 {
		t.Fatalf("cache misses = %g, want 1 (one distinct graph)", got)
	}
	if got := metrics["envorderd_cache_hits_total"]; got != rounds-1 {
		t.Fatalf("cache hits = %g, want %d", got, rounds-1)
	}
	if got := metrics["envorderd_order_seconds_count"]; got != rounds {
		t.Fatalf("order_seconds count = %g, want %d", got, rounds)
	}
	if got := metrics["envorderd_in_flight"]; got != 0 {
		t.Fatalf("in_flight = %g, want 0 at rest", got)
	}
	for _, name := range []string{
		"envorderd_orders_total", "envorderd_cache_hits_total", "envorderd_cache_misses_total",
		"envorderd_jobs_total", "envorderd_order_seconds", "envorderd_eigensolve_seconds",
		"envorderd_in_flight", "envorderd_jobs_queued",
	} {
		if !strings.Contains(string(body), "# TYPE "+name+" ") {
			t.Fatalf("missing # TYPE for %s", name)
		}
	}
}

// parsePrometheus is a strict-enough text-exposition parser: every
// non-comment line must be `name[{labels}] value` with a float value.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("line %d not parseable: %q", ln+1, line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d value %q: %v", ln+1, valStr, err)
		}
		if strings.Contains(name, "{") && !strings.HasSuffix(name, "}") {
			t.Fatalf("line %d has malformed labels: %q", ln+1, line)
		}
		out[name] = val
	}
	return out
}

// TestConcurrentMixedTraffic hammers one server from many goroutines with
// mixed sync orders and async jobs — the unit-level cousin of the CI load
// test, and the -race target for the tenant/session/jobstore locking.
func TestConcurrentMixedTraffic(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	graphs := []*envred.Graph{envred.Grid(12, 10), envred.Grid(13, 10), envred.Path(60)}
	algs := []string{"rcm", "sloan", "spectral", "auto"}
	const n = 24
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := graphs[i%len(graphs)]
			url := fmt.Sprintf("%s/v1/order?algorithm=%s&seed=2", ts.URL, algs[i%len(algs)])
			resp, body := postMM(t, url, mmBody(t, g), nil)
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("req %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var rep orderReply
			if err := json.Unmarshal(body, &rep); err != nil {
				errCh <- fmt.Errorf("req %d: %v", i, err)
				return
			}
			if len(rep.Perm) != g.N() {
				errCh <- fmt.Errorf("req %d: perm length %d want %d", i, len(rep.Perm), g.N())
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestShutdownDrainsJobs submits jobs and shuts down: every accepted job
// must reach a terminal state before Shutdown returns.
func TestShutdownDrainsJobs(t *testing.T) {
	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	g := envred.Grid(14, 11)

	ids := []string{}
	for i := 0; i < 4; i++ {
		resp, body := postMM(t, ts.URL+"/v1/jobs?algorithm=rcm", mmBody(t, g), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range ids {
		resp, body := getWith(t, ts.URL+"/v1/jobs/"+id+"/result", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %s not done after drain: %d %s", id, resp.StatusCode, body)
		}
	}

	// New submissions after shutdown are rejected.
	resp, _ := postMM(t, ts.URL+"/v1/jobs?algorithm=rcm", mmBody(t, g), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: status %d, want 503", resp.StatusCode)
	}
}
