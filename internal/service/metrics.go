package service

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	envred "repro"
)

// metrics is the daemon's hand-rolled Prometheus registry: the handful of
// instruments /metrics exposes, rendered in the text exposition format.
// No external client library — counters are atomics, histograms take one
// short mutex per observation, and rendering sorts label sets so scrapes
// are deterministic.
type metrics struct {
	// orders by {algorithm,status}: status ∈ ok|timeout|invalid|error.
	orders *counterVec
	// graph-cache (interner) traffic: a hit means the request's graph was
	// already resident, so the tenant Session's artifact cache (eigensolve,
	// roots, subgraphs) applies to it.
	cacheHits   counter
	cacheMisses counter
	// jobs by terminal {status}: done|failed.
	jobs *counterVec
	// batches counts /v1/order/batch documents served (their per-item
	// outcomes land in orders above, so orders_total keeps meaning
	// "orderings" whether they arrived alone or batched).
	batches counter
	// latency distributions, in seconds. eigensolve observes only orders
	// that actually ran a fresh eigensolve (spectral-family algorithm on a
	// non-interned graph), so it tracks solver latency, not cache serving.
	orderSeconds *histogram
	eigenSeconds *histogram
	// store is the daemon's counted persistent-store handle (nil without
	// Config.Store); its hit/miss/error counters are read at render time so
	// the exposition and the store never disagree. storeSeconds tracks the
	// wall-clock of every store operation (get/put/delete), keeping
	// persistent-tier latency distinguishable from the in-memory cache
	// traffic above.
	store        *envred.CountedStore
	storeSeconds *histogram
	// resilient is the store's fault-tolerance handle (nil when the store
	// is not wrapped in a ResilientStore); breaker state and retry counters
	// are likewise read from it at render time.
	resilient *envred.ResilientStore
	// live state.
	inFlight   gauge
	jobsQueued gauge
}

func newMetrics() *metrics {
	buckets := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
	return &metrics{
		orders:       newCounterVec("algorithm", "status"),
		jobs:         newCounterVec("status"),
		orderSeconds: newHistogram(buckets),
		eigenSeconds: newHistogram(buckets),
		storeSeconds: newHistogram(buckets),
	}
}

// writeTo renders every instrument in Prometheus text format.
func (m *metrics) writeTo(w io.Writer) {
	writeHeader(w, "envorderd_orders_total", "counter", "Orderings served, by algorithm and terminal status.")
	m.orders.writeTo(w, "envorderd_orders_total")
	writeHeader(w, "envorderd_cache_hits_total", "counter", "Order/fiedler requests whose graph was already resident in the tenant graph cache.")
	fmt.Fprintf(w, "envorderd_cache_hits_total %d\n", m.cacheHits.value())
	writeHeader(w, "envorderd_cache_misses_total", "counter", "Order/fiedler requests that interned a new graph.")
	fmt.Fprintf(w, "envorderd_cache_misses_total %d\n", m.cacheMisses.value())
	writeHeader(w, "envorderd_batches_total", "counter", "Batch ordering documents served (per-item outcomes count in envorderd_orders_total).")
	fmt.Fprintf(w, "envorderd_batches_total %d\n", m.batches.value())
	writeHeader(w, "envorderd_jobs_total", "counter", "Async jobs finished, by terminal status.")
	m.jobs.writeTo(w, "envorderd_jobs_total")
	writeHeader(w, "envorderd_order_seconds", "histogram", "End-to-end ordering latency (queueing included).")
	m.orderSeconds.writeTo(w, "envorderd_order_seconds")
	writeHeader(w, "envorderd_eigensolve_seconds", "histogram", "Latency of orderings that ran a fresh eigensolve (cold graph, spectral-family algorithm).")
	m.eigenSeconds.writeTo(w, "envorderd_eigensolve_seconds")
	if m.store != nil {
		st := m.store.Stats()
		writeHeader(w, "envorderd_store_hits_total", "counter", "Persistent-store reads that returned a valid artifact.")
		fmt.Fprintf(w, "envorderd_store_hits_total %d\n", st.Hits)
		writeHeader(w, "envorderd_store_misses_total", "counter", "Persistent-store reads that found no entry.")
		fmt.Fprintf(w, "envorderd_store_misses_total %d\n", st.Misses)
		writeHeader(w, "envorderd_store_errors_total", "counter", "Persistent-store operations that failed (corrupt entries included); each degraded to a miss.")
		fmt.Fprintf(w, "envorderd_store_errors_total %d\n", st.Errors)
		writeHeader(w, "envorderd_store_puts_total", "counter", "Artifacts written back to the persistent store.")
		fmt.Fprintf(w, "envorderd_store_puts_total %d\n", st.Puts)
		writeHeader(w, "envorderd_store_seconds", "histogram", "Persistent-store operation latency (get/put/delete).")
		m.storeSeconds.writeTo(w, "envorderd_store_seconds")
	}
	if m.resilient != nil {
		rs := m.resilient.Stats()
		writeHeader(w, "envorderd_store_breaker_state", "gauge", "Circuit breaker position: 0=closed, 1=open, 2=half-open.")
		fmt.Fprintf(w, "envorderd_store_breaker_state %d\n", int(rs.State))
		degraded := 0
		if rs.Degraded {
			degraded = 1
		}
		writeHeader(w, "envorderd_store_degraded", "gauge", "1 while the breaker is not closed (store traffic degraded to cache-only).")
		fmt.Fprintf(w, "envorderd_store_degraded %d\n", degraded)
		writeHeader(w, "envorderd_store_retries_total", "counter", "Extra store attempts spent on transient backend errors.")
		fmt.Fprintf(w, "envorderd_store_retries_total %d\n", rs.Retries)
		writeHeader(w, "envorderd_store_timeouts_total", "counter", "Store attempts abandoned at the per-operation timeout.")
		fmt.Fprintf(w, "envorderd_store_timeouts_total %d\n", rs.Timeouts)
		writeHeader(w, "envorderd_store_fastfails_total", "counter", "Store operations refused without touching the backend while the breaker was open.")
		fmt.Fprintf(w, "envorderd_store_fastfails_total %d\n", rs.FastFails)
		writeHeader(w, "envorderd_store_put_drops_total", "counter", "Artifact writebacks dropped after exhausting retries (the in-memory cache still holds them).")
		fmt.Fprintf(w, "envorderd_store_put_drops_total %d\n", rs.PutDrops)
		writeHeader(w, "envorderd_store_breaker_trips_total", "counter", "Closed-to-open breaker transitions after consecutive backend failures.")
		fmt.Fprintf(w, "envorderd_store_breaker_trips_total %d\n", rs.Trips)
		writeHeader(w, "envorderd_store_breaker_recoveries_total", "counter", "Breaker recoveries to closed after a healthy probe.")
		fmt.Fprintf(w, "envorderd_store_breaker_recoveries_total %d\n", rs.Recoveries)
	}
	writeHeader(w, "envorderd_in_flight", "gauge", "Orderings currently executing or queued on the solve pool.")
	fmt.Fprintf(w, "envorderd_in_flight %d\n", m.inFlight.value())
	writeHeader(w, "envorderd_jobs_queued", "gauge", "Async jobs waiting for a worker.")
	fmt.Fprintf(w, "envorderd_jobs_queued %d\n", m.jobsQueued.value())
}

func writeHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// counter ---------------------------------------------------------------------

type counter struct{ v atomic.Int64 }

func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) value() int64 { return c.v.Load() }

// gauge -----------------------------------------------------------------------

type gauge struct{ v atomic.Int64 }

func (g *gauge) add(d int64)  { g.v.Add(d) }
func (g *gauge) value() int64 { return g.v.Load() }

// counterVec ------------------------------------------------------------------

// counterVec is a labeled counter family; the key is the label values
// joined in declaration order.
type counterVec struct {
	labels []string
	mu     sync.Mutex
	vals   map[string]*counter
}

func newCounterVec(labels ...string) *counterVec {
	return &counterVec{labels: labels, vals: map[string]*counter{}}
}

func (v *counterVec) inc(labelValues ...string) {
	if len(labelValues) != len(v.labels) {
		panic("service: counterVec label arity mismatch")
	}
	key := strings.Join(labelValues, "\x00")
	v.mu.Lock()
	c, ok := v.vals[key]
	if !ok {
		c = &counter{}
		v.vals[key] = c
	}
	v.mu.Unlock()
	c.inc()
}

// sum totals the counters whose label values satisfy every given
// {label: value} constraint (empty constraints total the family).
func (v *counterVec) sum(match map[string]string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var total int64
	for key, c := range v.vals {
		parts := strings.Split(key, "\x00")
		ok := true
		for i, lab := range v.labels {
			if want, has := match[lab]; has && parts[i] != want {
				ok = false
				break
			}
		}
		if ok {
			total += c.value()
		}
	}
	return total
}

func (v *counterVec) writeTo(w io.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		parts := strings.Split(k, "\x00")
		pairs := make([]string, len(parts))
		for i, lab := range v.labels {
			pairs[i] = fmt.Sprintf("%s=%q", lab, parts[i])
		}
		lines = append(lines, fmt.Sprintf("%s{%s} %d", name, strings.Join(pairs, ","), v.vals[k].value()))
	}
	v.mu.Unlock()
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// histogram -------------------------------------------------------------------

// histogram is a fixed-bucket Prometheus histogram (cumulative buckets,
// +Inf, _sum and _count on render).
type histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []int64
	sum    float64
	total  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds))}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.total++
	h.mu.Unlock()
}

func (h *histogram) writeTo(w io.Writer, name string) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(b), counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
}
