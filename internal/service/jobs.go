package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"
	"time"

	"repro/internal/pipeline"
)

// Job states, as reported by GET /v1/jobs/{id}.
const (
	jobQueued  = "queued"
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// job is one async ordering: submitted via POST /v1/jobs, executed on the
// worker pool, polled until terminal.
type job struct {
	id      string
	tenant  *tenant
	payload *orderPayload
	created time.Time

	mu       sync.Mutex
	state    string
	started  time.Time
	finished time.Time
	resp     *orderResponse
	fail     *apiError
}

// status snapshots the poll document under the job's lock.
func (j *job) status() jobStatusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	doc := jobStatusJSON{
		ID:        j.id,
		Status:    j.state,
		Algorithm: j.payload.algorithm,
		N:         j.payload.g.N(),
		CreatedMS: j.created.UnixMilli(),
	}
	if !j.started.IsZero() {
		doc.StartedMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		doc.FinishedMS = j.finished.UnixMilli()
	}
	if j.fail != nil {
		doc.Error = j.fail.Message
	}
	return doc
}

type jobStatusJSON struct {
	ID         string `json:"id"`
	Status     string `json:"status"`
	Algorithm  string `json:"algorithm"`
	N          int    `json:"n"`
	CreatedMS  int64  `json:"created_unix_ms"`
	StartedMS  int64  `json:"started_unix_ms,omitempty"`
	FinishedMS int64  `json:"finished_unix_ms,omitempty"`
	Error      string `json:"error,omitempty"`
}

// jobStore indexes jobs by id and evicts the oldest finished jobs beyond
// the retention bound (queued/running jobs are never evicted).
type jobStore struct {
	mu          sync.Mutex
	byID        map[string]*job
	finished    []string // eviction order
	maxRetained int
}

func newJobStore(maxRetained int) *jobStore {
	return &jobStore{byID: map[string]*job{}, maxRetained: maxRetained}
}

func (st *jobStore) add(j *job) {
	st.mu.Lock()
	st.byID[j.id] = j
	st.mu.Unlock()
}

// get returns the job only when it belongs to tnt: jobs are invisible
// across tenants (404, not 403, to avoid leaking job-id existence).
func (st *jobStore) get(id string, tnt *tenant) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.byID[id]
	if !ok || j.tenant != tnt {
		return nil, false
	}
	return j, true
}

func (st *jobStore) markFinished(j *job) {
	st.mu.Lock()
	st.finished = append(st.finished, j.id)
	for len(st.finished) > st.maxRetained {
		delete(st.byID, st.finished[0])
		st.finished = st.finished[1:]
	}
	st.mu.Unlock()
}

func (st *jobStore) running() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, j := range st.byID {
		j.mu.Lock()
		if j.state == jobRunning || j.state == jobQueued {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

func newJobID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// submitJob enqueues a job, failing fast when the service is shutting
// down or the queue is full.
func (s *Server) submitJob(j *job) *apiError {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	if s.closed {
		return &apiError{Status: http.StatusServiceUnavailable, Message: "service is shutting down"}
	}
	select {
	case s.jobCh <- j:
		s.jobs.add(j)
		s.m.jobsQueued.add(1)
		return nil
	default:
		return &apiError{Status: http.StatusServiceUnavailable, Message: "job queue is full"}
	}
}

// runJob executes one job's ordering with panic isolation: a panic
// anywhere in the request path (the orderer call itself is already
// guarded inside the Session) fails this job with a *pipeline.PanicError
// instead of killing the drainer goroutine — the worker pool outlives any
// misbehaving registered algorithm.
func (s *Server) runJob(ctx context.Context, j *job) (resp *orderResponse, fail *apiError) {
	defer func() {
		if p := recover(); p != nil {
			err := pipeline.Recovered("job "+j.id, p)
			s.logf("job %s panicked: %v", j.id, err)
			resp, fail = nil, &apiError{Status: http.StatusInternalServerError, Message: err.Error()}
		}
	}()
	return s.runOrder(ctx, j.tenant, j.payload)
}

// jobWorker drains the job queue until Shutdown closes it. Each job runs
// under the server's base context (forced shutdown cancels it) plus the
// job's own timeout; the ordering itself is bounded by the shared solve
// pool inside runOrder.
func (s *Server) jobWorker() {
	defer s.workerWG.Done()
	for j := range s.jobCh {
		s.m.jobsQueued.add(-1)
		j.mu.Lock()
		j.state = jobRunning
		j.started = time.Now()
		j.mu.Unlock()

		ctx, cancel := s.baseCtx, context.CancelFunc(func() {})
		if j.payload.timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, j.payload.timeout)
		}
		resp, fail := s.runJob(ctx, j)
		cancel()

		j.mu.Lock()
		j.finished = time.Now()
		if fail != nil {
			j.state = jobFailed
			j.fail = fail
			s.m.jobs.inc(jobFailed)
		} else {
			j.state = jobDone
			j.resp = resp
			s.m.jobs.inc(jobDone)
		}
		j.mu.Unlock()
		s.jobs.markFinished(j)
		s.logf("job %s finished state=%s tenant=%s algorithm=%s n=%d", j.id, j.state, j.tenant.name, j.payload.algorithm, j.payload.g.N())
	}
}
