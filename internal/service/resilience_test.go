package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	envred "repro"
	"repro/internal/service"
)

// panickyInit registers the PANICKY test orderer once per process: it
// panics unconditionally, driving the panic-isolation gates — the daemon
// must convert the panic into a per-request (or per-job) error and keep
// serving.
var panickyInit sync.Once

func registerPanicky(t *testing.T) {
	t.Helper()
	panickyInit.Do(func() {
		envred.MustRegister("panicky", envred.OrdererFunc(func(ctx context.Context, g *envred.Graph, req *envred.OrderRequest) (envred.Result, error) {
			panic("panicky orderer: kaboom")
		}))
	})
}

// TestPanickingOrdererIsolated is the crash-safety gate: a registered
// orderer that panics fails its own request with a 500 carrying the panic
// text, and the daemon goes on serving — the panic never reaches the HTTP
// server or the job drainer goroutines.
func TestPanickingOrdererIsolated(t *testing.T) {
	registerPanicky(t)
	_, ts := newTestServer(t, service.Config{Workers: 2})
	g := envred.Grid(10, 8)

	// Sync path: per-request 500, not a dropped connection.
	resp, body := postMM(t, ts.URL+"/v1/order?algorithm=panicky", mmBody(t, g), nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking orderer: status %d, want 500 (body %s)", resp.StatusCode, body)
	}
	var doc struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("panicking orderer reply is not the JSON error document: %s", body)
	}
	if !strings.Contains(doc.Error, "panic") || !strings.Contains(doc.Error, "kaboom") {
		t.Fatalf("error %q does not identify the panic", doc.Error)
	}

	// Async path: the job fails, the drainer survives.
	resp, body = postMM(t, ts.URL+"/v1/jobs?algorithm=panicky", mmBody(t, g), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit reply %s", body)
	}
	waitJobState(t, ts.URL, sub.ID, "failed")

	// The daemon is still fully alive: normal orders succeed on the same
	// workers that just absorbed two panics.
	resp, body = postMM(t, ts.URL+"/v1/order?algorithm=rcm", mmBody(t, g), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("order after panics: status %d: %s", resp.StatusCode, body)
	}
	resp, _ = getWith(t, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics: status %d", resp.StatusCode)
	}
}

// waitJobState polls the job until it reaches the wanted terminal state.
func waitJobState(t *testing.T, base, id, want string) {
	t.Helper()
	for i := 0; i < 500; i++ {
		_, body := getWith(t, base+"/v1/jobs/"+id, "")
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("job poll reply %s", body)
		}
		switch st.Status {
		case want:
			if want == "failed" && !strings.Contains(st.Error, "panic") {
				t.Fatalf("failed job error %q does not identify the panic", st.Error)
			}
			return
		case "done", "failed":
			t.Fatalf("job reached %q, want %q", st.Status, want)
		}
	}
	t.Fatalf("job did not reach %q", want)
}

// readyzDoc mirrors the /readyz reply.
type readyzDoc struct {
	Status string `json:"status"`
	Store  *struct {
		Breaker    string `json:"breaker"`
		Retries    int64  `json:"retries"`
		Trips      int64  `json:"trips"`
		Recoveries int64  `json:"recoveries"`
		LastError  string `json:"last_error"`
	} `json:"store"`
}

// TestReadyzReportsBreaker drives the daemon over a store whose backend
// fails every operation: the breaker trips, /readyz reports "degraded"
// with the open breaker, and /healthz never flaps — liveness stays 200 ok
// because a daemon without its persistent tier still serves correctly
// from memory.
func TestReadyzReportsBreaker(t *testing.T) {
	inner, err := envred.OpenStore("chaos://mem://?err_rate=1&seed=3")
	if err != nil {
		t.Fatal(err)
	}
	st := envred.NewResilientStore(inner, envred.ResilienceOptions{
		Retries:          -1,
		BreakerThreshold: 2,
		OpTimeout:        -1,
	})
	defer st.Close()
	_, ts := newTestServer(t, service.Config{Store: st})
	g := envred.Grid(12, 10)

	// Orders succeed despite the dead store (its failures degrade to cache
	// misses and dropped writebacks) and their store traffic trips the
	// breaker.
	for i := 0; i < 3; i++ {
		resp, body := postMM(t, ts.URL+"/v1/order?algorithm=spectral", mmBody(t, g), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("order %d over dead store: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if st.State() != envred.BreakerOpen {
		t.Fatalf("breaker state %v after dead-store traffic, want open", st.State())
	}

	resp, body := getWith(t, ts.URL+"/readyz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d, want 200 (degraded is a body condition, not a probe failure)", resp.StatusCode)
	}
	var rd readyzDoc
	if err := json.Unmarshal(body, &rd); err != nil {
		t.Fatalf("readyz reply %s", body)
	}
	if rd.Status != "degraded" || rd.Store == nil || rd.Store.Breaker != "open" {
		t.Fatalf("readyz = %s, want degraded with open breaker", body)
	}
	if rd.Store.Trips == 0 || rd.Store.LastError == "" {
		t.Fatalf("readyz store detail incomplete: %s", body)
	}

	// Liveness: still a plain 200 ok.
	resp, body = getWith(t, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d with degraded store, want 200", resp.StatusCode)
	}
	var hz struct {
		Status string `json:"status"`
		Store  string `json:"store"`
	}
	if err := json.Unmarshal(body, &hz); err != nil || hz.Status != "ok" {
		t.Fatalf("healthz reply %s", body)
	}
	if hz.Store != "open" {
		t.Fatalf("healthz store = %q, want open", hz.Store)
	}

	// The exposition carries the breaker family.
	_, body = getWith(t, ts.URL+"/metrics", "")
	metricsText := string(body)
	for _, want := range []string{
		"envorderd_store_breaker_state 1",
		"envorderd_store_degraded 1",
		"envorderd_store_breaker_trips_total 1",
	} {
		if !strings.Contains(metricsText, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsText)
		}
	}
}

// TestReadyzHealthyStore pins the happy-path readiness document: closed
// breaker, status ok.
func TestReadyzHealthyStore(t *testing.T) {
	inner, err := envred.OpenStore("mem://")
	if err != nil {
		t.Fatal(err)
	}
	st := envred.NewResilientStore(inner, envred.ResilienceOptions{})
	defer st.Close()
	_, ts := newTestServer(t, service.Config{Store: st})

	resp, body := getWith(t, ts.URL+"/readyz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d", resp.StatusCode)
	}
	var rd readyzDoc
	if err := json.Unmarshal(body, &rd); err != nil {
		t.Fatalf("readyz reply %s", body)
	}
	if rd.Status != "ok" || rd.Store == nil || rd.Store.Breaker != "closed" {
		t.Fatalf("readyz = %s, want ok with closed breaker", body)
	}
}
