package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	envred "repro"
	"repro/internal/service"
)

type batchReply struct {
	Algorithm string        `json:"algorithm"`
	Count     int           `json:"count"`
	Failed    int           `json:"failed"`
	Results   []*orderReply `json:"results"`
	Errors    []struct {
		Index   int    `json:"index"`
		Message string `json:"error"`
	} `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func postBatch(t *testing.T, url, doc string) (*http.Response, []byte) {
	t.Helper()
	return postMM(t, url, []byte(doc), map[string]string{"Content-Type": "application/json"})
}

// TestOrderBatchEndpointMatchesSingleton pins the wire contract: each batch
// item's permutation and envelope equal a singleton /v1/order (and the
// local library) on the same graph, results align by index, and the second
// round is served entirely from the interned graphs.
func TestOrderBatchEndpointMatchesSingleton(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Seed: 1})
	grids := []*envred.Graph{envred.Grid(14, 9), envred.Grid(7, 7), envred.Grid(23, 4)}

	sess := envred.NewSession(envred.SessionOptions{Seed: 7})
	want := make([]envred.Result, len(grids))
	for i, g := range grids {
		r, err := sess.Order(context.Background(), g, "spectral")
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	items := make([]string, len(grids))
	for i, g := range grids {
		mm, err := json.Marshal(string(mmBody(t, g)))
		if err != nil {
			t.Fatal(err)
		}
		items[i] = fmt.Sprintf(`{"matrix_market":%s}`, mm)
	}
	doc := fmt.Sprintf(`{"algorithm":"spectral","seed":7,"items":[%s]}`, strings.Join(items, ","))

	for round := 0; round < 2; round++ {
		resp, body := postBatch(t, ts.URL+"/v1/order/batch", doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, body)
		}
		var rep batchReply
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Count != len(grids) || rep.Failed != 0 || len(rep.Results) != len(grids) {
			t.Fatalf("round %d: count=%d failed=%d results=%d", round, rep.Count, rep.Failed, len(rep.Results))
		}
		for i, item := range rep.Results {
			if item == nil {
				t.Fatalf("round %d: results[%d] is null", round, i)
			}
			if item.Algorithm != "SPECTRAL" || item.N != grids[i].N() {
				t.Fatalf("round %d item %d: algorithm=%q n=%d", round, i, item.Algorithm, item.N)
			}
			for k := range item.Perm {
				if item.Perm[k] != want[i].Perm[k] {
					t.Fatalf("round %d item %d: perm[%d] = %d, library says %d", round, i, k, item.Perm[k], want[i].Perm[k])
				}
			}
			if item.Envelope.Esize != want[i].Stats.Esize {
				t.Fatalf("round %d item %d: esize %d, want %d", round, i, item.Envelope.Esize, want[i].Stats.Esize)
			}
			if item.Cached != (round == 1) {
				t.Fatalf("round %d item %d: cached=%v", round, i, item.Cached)
			}
		}
	}
}

// TestOrderBatchGraphJSONAndPartialFailure pins per-item independence on
// the wire: a malformed item fails alone (failed=1, its index in errors,
// null at its result slot) while its neighbors complete.
func TestOrderBatchGraphJSONAndPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	doc := `{"algorithm":"rcm","items":[
		{"graph":{"n":4,"edges":[[0,1],[1,2],[2,3]]}},
		{"graph":{"n":2,"edges":[[0,5]]}},
		{"matrix_market":"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n"}
	]}`
	resp, body := postBatch(t, ts.URL+"/v1/order/batch", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep batchReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Count != 3 || rep.Failed != 1 || len(rep.Errors) != 1 || rep.Errors[0].Index != 1 {
		t.Fatalf("count=%d failed=%d errors=%+v", rep.Count, rep.Failed, rep.Errors)
	}
	if rep.Results[1] != nil {
		t.Fatalf("failed item has a result: %+v", rep.Results[1])
	}
	if rep.Results[0] == nil || len(rep.Results[0].Perm) != 4 {
		t.Fatalf("item 0 incomplete: %+v", rep.Results[0])
	}
	if rep.Results[2] == nil || len(rep.Results[2].Perm) != 3 {
		t.Fatalf("item 2 incomplete: %+v", rep.Results[2])
	}
}

// TestOrderBatchValidation pins the document-level 400s.
func TestOrderBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	for _, tc := range []struct {
		name, doc, wantFrag string
	}{
		{"no-algorithm", `{"items":[{"graph":{"n":1,"edges":[]}}]}`, "must name an algorithm"},
		{"auto", `{"algorithm":"auto","items":[{"graph":{"n":1,"edges":[]}}]}`, "not batchable"},
		{"weighted", `{"algorithm":"weighted","items":[{"graph":{"n":1,"edges":[]}}]}`, "not batchable"},
		{"unknown", `{"algorithm":"nope","items":[{"graph":{"n":1,"edges":[]}}]}`, "unknown algorithm"},
		{"empty", `{"algorithm":"rcm","items":[]}`, "no items"},
		{"bad-json", `{"algorithm":`, "bad JSON"},
	} {
		resp, body := postBatch(t, ts.URL+"/v1/order/batch", tc.doc)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", tc.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), tc.wantFrag) {
			t.Fatalf("%s: body %s does not mention %q", tc.name, body, tc.wantFrag)
		}
	}
}

// TestOrderBatchMetrics pins the observability contract: a batch document
// bumps envorderd_batches_total once and envorderd_orders_total by its
// item count, so orders_total keeps meaning "orderings served".
func TestOrderBatchMetrics(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	doc := `{"algorithm":"rcm","items":[
		{"graph":{"n":3,"edges":[[0,1],[1,2]]}},
		{"graph":{"n":4,"edges":[[0,1],[1,2],[2,3]]}}
	]}`
	if resp, body := postBatch(t, ts.URL+"/v1/order/batch", doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "envorderd_batches_total 1") {
		t.Fatalf("metrics missing batches_total 1:\n%s", text)
	}
	if !strings.Contains(text, `envorderd_orders_total{algorithm="RCM",status="ok"} 2`) {
		t.Fatalf("metrics missing 2 ok RCM orders:\n%s", text)
	}
}
