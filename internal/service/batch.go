package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	envred "repro"
	"repro/internal/graph"
)

// POST /v1/order/batch: many graphs, one algorithm, one round trip. The
// batch rides Session.OrderBatch, so the per-request overhead a singleton
// /v1/order pays — result allocation, permutation re-validation, envelope
// re-scoring of cached orderings — is paid once per batch instead of once
// per graph. Items share the tenant's graph interner, Session artifact
// cache and persistent store exactly as singleton requests do; a batch
// holds one solve-pool slot for its whole duration.

// batchRequestJSON is the JSON request document of POST /v1/order/batch.
// Algorithm/seed/timeout may also arrive as query parameters (the body
// wins). AUTO and WEIGHTED are not batchable: AUTO is a portfolio race
// with its own reply shape, WEIGHTED needs per-item edge weights.
type batchRequestJSON struct {
	Algorithm string `json:"algorithm,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	// Workers bounds the batch's internal parallelism (0 = GOMAXPROCS).
	Workers int             `json:"workers,omitempty"`
	Items   []batchItemJSON `json:"items"`
}

// batchItemJSON carries one graph, in either singleton encoding.
type batchItemJSON struct {
	Graph        *graphJSON `json:"graph,omitempty"`
	MatrixMarket string     `json:"matrix_market,omitempty"`
}

// batchItemError reports one failed item; successful items have their
// orderResponse at the same index of results and no entry here.
type batchItemError struct {
	Index   int    `json:"index"`
	Message string `json:"error"`
}

// batchResponseJSON is the batch reply: results[i] answers items[i]
// (null when that item failed — see errors), in one document.
type batchResponseJSON struct {
	Algorithm string            `json:"algorithm"`
	Count     int               `json:"count"`
	Failed    int               `json:"failed"`
	Results   []*orderResponse  `json:"results"`
	Errors    []*batchItemError `json:"errors,omitempty"`
	ElapsedMS float64           `json:"elapsed_ms"`
}

// maxBatchItems bounds one batch document; larger batches should be split
// (or sent as async jobs) rather than monopolize a solve-pool slot.
const maxBatchItems = 4096

func (s *Server) handleOrderBatch(w http.ResponseWriter, r *http.Request, tnt *tenant) {
	body, aerr := s.readBody(w, r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	var doc batchRequestJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		writeError(w, &apiError{Status: http.StatusBadRequest, Message: fmt.Sprintf("bad JSON body: %v", err)})
		return
	}
	q := r.URL.Query()
	if doc.Algorithm == "" {
		doc.Algorithm = q.Get("algorithm")
	}
	algorithm := strings.ToUpper(strings.TrimSpace(doc.Algorithm))
	if algorithm == "" {
		writeError(w, &apiError{Status: http.StatusBadRequest, Message: "batch requests must name an algorithm"})
		return
	}
	if algorithm == "AUTO" || algorithm == envred.AlgWeighted {
		writeError(w, &apiError{Status: http.StatusBadRequest,
			Message: fmt.Sprintf("algorithm %s is not batchable (use POST /v1/order per graph)", algorithm)})
		return
	}
	if _, ok := envred.Lookup(algorithm); !ok {
		writeError(w, &apiError{Status: http.StatusBadRequest,
			Message: fmt.Sprintf("unknown algorithm %q (registered: %s)", doc.Algorithm, strings.Join(envred.Algorithms(), ", "))})
		return
	}
	if len(doc.Items) == 0 {
		writeError(w, &apiError{Status: http.StatusBadRequest, Message: "batch carries no items"})
		return
	}
	if len(doc.Items) > maxBatchItems {
		writeError(w, &apiError{Status: http.StatusRequestEntityTooLarge,
			Message: fmt.Sprintf("batch has %d items, limit %d", len(doc.Items), maxBatchItems)})
		return
	}
	seed := doc.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}
	timeout := s.cfg.DefaultTimeout
	if doc.TimeoutMS != 0 {
		timeout = time.Duration(doc.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := orderCtx(r.Context(), &orderPayload{timeout: timeout})
	defer cancel()

	// Parse and intern every item up front. A malformed item fails alone;
	// valid items proceed (graphs is compacted, idx maps back to items).
	resp := &batchResponseJSON{
		Algorithm: algorithm,
		Count:     len(doc.Items),
		Results:   make([]*orderResponse, len(doc.Items)),
	}
	graphs := make([]*envred.Graph, 0, len(doc.Items))
	idx := make([]int, 0, len(doc.Items))
	cachedFlags := make([]bool, 0, len(doc.Items))
	for i := range doc.Items {
		g, ierr := s.parseBatchItem(&doc.Items[i])
		if ierr != nil {
			resp.Errors = append(resp.Errors, &batchItemError{Index: i, Message: ierr.Message})
			continue
		}
		g, cached := tnt.graphs.intern(g)
		if cached {
			s.m.cacheHits.inc()
		} else {
			s.m.cacheMisses.inc()
			cached = s.storeHas(g, seed)
		}
		graphs = append(graphs, g)
		idx = append(idx, i)
		cachedFlags = append(cachedFlags, cached)
	}

	s.m.inFlight.add(1)
	defer s.m.inFlight.add(-1)
	if aerr := acquire(ctx, tnt.sem); aerr != nil {
		s.m.orders.inc(algorithm, "timeout")
		writeError(w, aerr)
		return
	}
	defer release(tnt.sem)
	if aerr := acquire(ctx, s.solveSem); aerr != nil {
		s.m.orders.inc(algorithm, "timeout")
		writeError(w, aerr)
		return
	}
	defer release(s.solveSem)

	start := time.Now()
	var results []envred.BatchResult
	if len(graphs) > 0 {
		var err error
		results, err = tnt.sess.OrderBatch(ctx, graphs, envred.BatchOptions{
			Algorithm: algorithm,
			Seed:      seed,
			Workers:   doc.Workers,
		})
		if err != nil {
			// Unreachable after the Lookup above; report it uniformly anyway.
			writeError(w, &apiError{Status: http.StatusBadRequest, Message: err.Error()})
			return
		}
	}
	elapsed := time.Since(start)
	s.m.orderSeconds.observe(elapsed.Seconds())
	s.m.batches.inc()

	for k := range results {
		i, g, cached := idx[k], graphs[k], cachedFlags[k]
		if err := results[k].Err; err != nil {
			aerr := orderError(err, results[k].Result, g)
			s.m.orders.inc(algorithm, statusLabel(aerr))
			resp.Errors = append(resp.Errors, &batchItemError{Index: i, Message: aerr.Message})
			continue
		}
		res := results[k].Result
		s.m.orders.inc(algorithm, "ok")
		if !cached && (res.Info != nil || res.Solve != nil) {
			s.m.eigenSeconds.observe(res.Elapsed.Seconds())
		}
		item := &orderResponse{
			Algorithm: res.Algorithm,
			N:         g.N(),
			Nonzeros:  g.Nonzeros(),
			Perm:      res.Perm,
			Envelope:  envelopeOf(res.Stats),
			Solve:     res.Solve,
			Cached:    cached,
			ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
		}
		if res.Info != nil {
			item.Lambda2 = res.Info.Lambda2
			if item.Solve == nil {
				solve := res.Info.Solve
				item.Solve = &solve
			}
		}
		resp.Results[i] = item
	}
	resp.Failed = len(resp.Errors)
	resp.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	s.logf("order-batch tenant=%s algorithm=%s items=%d failed=%d elapsed=%.1fms",
		tnt.name, algorithm, resp.Count, resp.Failed, resp.ElapsedMS)
	writeJSON(w, http.StatusOK, resp)
}

// parseBatchItem decodes one batch item into a graph (unweighted — the
// batch endpoint rejects WEIGHTED up front).
func (s *Server) parseBatchItem(item *batchItemJSON) (*graph.Graph, *apiError) {
	switch {
	case item.Graph != nil:
		g, _, aerr := buildGraphJSON(item.Graph, false)
		return g, aerr
	case item.MatrixMarket != "":
		g, _, aerr := parseMM(strings.NewReader(item.MatrixMarket), false)
		return g, aerr
	default:
		return nil, &apiError{Status: http.StatusBadRequest, Message: "item carries neither \"graph\" nor \"matrix_market\""}
	}
}
