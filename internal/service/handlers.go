package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	envred "repro"
	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/mm"
	"repro/internal/perm"
	"repro/internal/pipeline"
	"repro/internal/scratch"
	"repro/internal/solver"
)

// Wire format ----------------------------------------------------------------

// orderRequestJSON is the JSON request document of POST /v1/order,
// POST /v1/jobs and /v1/fiedler. Exactly one of Graph and MatrixMarket
// must carry the graph. Query parameters (algorithm, seed, timeout) fill
// any field the body leaves zero.
type orderRequestJSON struct {
	Algorithm    string     `json:"algorithm,omitempty"`
	Seed         int64      `json:"seed,omitempty"`
	TimeoutMS    int64      `json:"timeout_ms,omitempty"`
	Graph        *graphJSON `json:"graph,omitempty"`
	MatrixMarket string     `json:"matrix_market,omitempty"`
}

// graphJSON is the adjacency-list graph encoding: n vertices labeled
// 0..n-1 and an undirected edge list (duplicates and self-loops are
// dropped). Weights, when present, align with Edges and feed the WEIGHTED
// algorithm.
type graphJSON struct {
	N       int       `json:"n"`
	Edges   [][2]int  `json:"edges"`
	Weights []float64 `json:"weights,omitempty"`
}

// orderResponse is the ordering reply document.
type orderResponse struct {
	Algorithm string       `json:"algorithm"`
	N         int          `json:"n"`
	Nonzeros  int          `json:"nonzeros"`
	Perm      perm.Perm    `json:"perm"`
	Envelope  envelopeJSON `json:"envelope"`
	// Lambda2 and Solve report the eigensolver when the algorithm ran one.
	Lambda2 float64       `json:"lambda2,omitempty"`
	Solve   *solver.Stats `json:"solve,omitempty"`
	// Winners and Eigensolves summarize AUTO portfolio runs.
	Winners     map[string]int `json:"winners,omitempty"`
	Eigensolves int            `json:"eigensolves,omitempty"`
	// Cached is true when the expensive artifacts behind this ordering were
	// already available without solving: the graph was resident in the
	// tenant's graph cache (so the Session's in-memory artifacts apply), or
	// the persistent store held the whole-graph eigensolve for this content
	// and seed — the warm-restart case.
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// envelopeJSON mirrors envelope.Stats with stable snake_case field names.
type envelopeJSON struct {
	Esize         int64 `json:"esize"`
	Ework         int64 `json:"ework"`
	Bandwidth     int   `json:"bandwidth"`
	OneSum        int64 `json:"one_sum"`
	TwoSum        int64 `json:"two_sum"`
	MaxFrontwidth int   `json:"max_frontwidth"`
}

func envelopeOf(s envelope.Stats) envelopeJSON {
	return envelopeJSON{
		Esize:         s.Esize,
		Ework:         s.Ework,
		Bandwidth:     s.Bandwidth,
		OneSum:        s.OneSum,
		TwoSum:        s.TwoSum,
		MaxFrontwidth: s.MaxFrontwidth,
	}
}

// apiError is the uniform error reply: {"error": ...} plus, on 503
// timeouts, the best_so_far flag and — when an interrupted eigensolve
// left a usable fallback — the partial ordering itself.
type apiError struct {
	Status    int       `json:"-"`
	Message   string    `json:"error"`
	BestSoFar *bool     `json:"best_so_far,omitempty"`
	Perm      perm.Perm `json:"perm,omitempty"`
}

func (e *apiError) Error() string { return e.Message }

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(doc)
}

func writeError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.Status, e)
}

// Request parsing -------------------------------------------------------------

// orderPayload is a parsed, validated ordering request.
type orderPayload struct {
	algorithm string // canonical registry name, or "AUTO"
	seed      int64
	timeout   time.Duration
	g         *graph.Graph
	// weight is non-nil for WEIGHTED requests; weighted graphs are not
	// interned (the pattern may repeat with different values).
	weight func(u, v int) float64
}

// parseOrderPayload reads one ordering request. JSON bodies carry the
// orderRequestJSON document; any other content type is a raw Matrix
// Market body with parameters in the query string. Oversize bodies give
// 413, malformed graphs 400.
func (s *Server) parseOrderPayload(w http.ResponseWriter, r *http.Request) (*orderPayload, *apiError) {
	body, aerr := s.readBody(w, r)
	if aerr != nil {
		return nil, aerr
	}
	p := &orderPayload{seed: s.cfg.Seed, timeout: s.cfg.DefaultTimeout}
	q := r.URL.Query()
	algorithm := q.Get("algorithm")
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, &apiError{Status: http.StatusBadRequest, Message: fmt.Sprintf("bad seed %q: %v", v, err)}
		}
		p.seed = n
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, &apiError{Status: http.StatusBadRequest, Message: fmt.Sprintf("bad timeout %q (want a Go duration like 2s): %v", v, err)}
		}
		p.timeout = d
	}

	var doc orderRequestJSON
	isJSON := strings.Contains(r.Header.Get("Content-Type"), "json")
	if isJSON {
		if err := json.Unmarshal(body, &doc); err != nil {
			return nil, &apiError{Status: http.StatusBadRequest, Message: fmt.Sprintf("bad JSON body: %v", err)}
		}
		if doc.Algorithm != "" {
			algorithm = doc.Algorithm
		}
		if doc.Seed != 0 {
			p.seed = doc.Seed
		}
		if doc.TimeoutMS != 0 {
			p.timeout = time.Duration(doc.TimeoutMS) * time.Millisecond
		}
	}
	if algorithm == "" {
		algorithm = "auto"
	}
	p.algorithm = strings.ToUpper(strings.TrimSpace(algorithm))
	if p.algorithm != "AUTO" {
		if _, ok := envred.Lookup(p.algorithm); !ok {
			return nil, &apiError{Status: http.StatusBadRequest,
				Message: fmt.Sprintf("unknown algorithm %q (registered: %s, plus AUTO)", algorithm, strings.Join(envred.Algorithms(), ", "))}
		}
	}
	weighted := p.algorithm == envred.AlgWeighted

	switch {
	case isJSON && doc.Graph != nil:
		g, weight, aerr := buildGraphJSON(doc.Graph, weighted)
		if aerr != nil {
			return nil, aerr
		}
		p.g, p.weight = g, weight
	case isJSON && doc.MatrixMarket != "":
		g, weight, aerr := parseMM(strings.NewReader(doc.MatrixMarket), weighted)
		if aerr != nil {
			return nil, aerr
		}
		p.g, p.weight = g, weight
	case isJSON:
		return nil, &apiError{Status: http.StatusBadRequest, Message: "JSON body carries neither \"graph\" nor \"matrix_market\""}
	case len(body) == 0:
		return nil, &apiError{Status: http.StatusBadRequest, Message: "empty body (send a Matrix Market matrix, or a JSON document with Content-Type: application/json)"}
	default:
		g, weight, aerr := parseMM(bytes.NewReader(body), weighted)
		if aerr != nil {
			return nil, aerr
		}
		p.g, p.weight = g, weight
	}
	if weighted && p.weight == nil {
		return nil, &apiError{Status: http.StatusBadRequest, Message: "algorithm WEIGHTED needs edge weights (a valued Matrix Market body, or graph.weights)"}
	}
	return p, nil
}

// readBody drains the request body under the configured size cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *apiError) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes()))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &apiError{Status: http.StatusRequestEntityTooLarge,
				Message: fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit)}
		}
		return nil, &apiError{Status: http.StatusBadRequest, Message: fmt.Sprintf("reading body: %v", err)}
	}
	return body, nil
}

func buildGraphJSON(doc *graphJSON, weighted bool) (*graph.Graph, func(u, v int) float64, *apiError) {
	if doc.N < 0 {
		return nil, nil, &apiError{Status: http.StatusBadRequest, Message: fmt.Sprintf("graph.n = %d is negative", doc.N)}
	}
	if weighted && len(doc.Weights) != len(doc.Edges) {
		return nil, nil, &apiError{Status: http.StatusBadRequest,
			Message: fmt.Sprintf("graph.weights has %d entries for %d edges", len(doc.Weights), len(doc.Edges))}
	}
	b := graph.NewBuilder(doc.N)
	weights := map[[2]int]float64{}
	for i, e := range doc.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= doc.N || v < 0 || v >= doc.N {
			return nil, nil, &apiError{Status: http.StatusBadRequest,
				Message: fmt.Sprintf("edge %d (%d,%d) out of range [0,%d)", i, u, v, doc.N)}
		}
		b.AddEdge(u, v)
		if weighted && u != v {
			if u > v {
				u, v = v, u
			}
			weights[[2]int{u, v}] = doc.Weights[i]
		}
	}
	g := b.Build()
	if !weighted {
		return g, nil, nil
	}
	return g, func(u, v int) float64 {
		if u > v {
			u, v = v, u
		}
		if w, ok := weights[[2]int{u, v}]; ok && w > 0 {
			return w
		}
		return 1
	}, nil
}

func parseMM(r io.Reader, weighted bool) (*graph.Graph, func(u, v int) float64, *apiError) {
	if weighted {
		g, weight, err := mm.ReadWeighted(r)
		if err != nil {
			return nil, nil, &apiError{Status: http.StatusBadRequest, Message: fmt.Sprintf("bad Matrix Market body: %v", err)}
		}
		return g, weight, nil
	}
	g, err := mm.ReadGraph(r)
	if err != nil {
		return nil, nil, &apiError{Status: http.StatusBadRequest, Message: fmt.Sprintf("bad Matrix Market body: %v", err)}
	}
	return g, nil, nil
}

// Ordering execution ----------------------------------------------------------

// runOrder executes one ordering end to end: tenant concurrency budget,
// global solve pool, graph interning, dispatch, metrics. ctx must already
// carry the request's timeout; queueing counts against it.
func (s *Server) runOrder(ctx context.Context, tnt *tenant, p *orderPayload) (*orderResponse, *apiError) {
	s.m.inFlight.add(1)
	defer s.m.inFlight.add(-1)

	if aerr := acquire(ctx, tnt.sem); aerr != nil {
		s.m.orders.inc(p.algorithm, "timeout")
		return nil, aerr
	}
	defer release(tnt.sem)
	if aerr := acquire(ctx, s.solveSem); aerr != nil {
		s.m.orders.inc(p.algorithm, "timeout")
		return nil, aerr
	}
	defer release(s.solveSem)

	cached := false
	if p.weight == nil {
		p.g, cached = tnt.graphs.intern(p.g)
	}
	if cached {
		s.m.cacheHits.inc()
	} else {
		s.m.cacheMisses.inc()
	}
	if !cached && p.weight == nil {
		cached = s.storeHas(p.g, p.seed)
	}

	start := time.Now()
	var (
		res envred.Result
		err error
	)
	if p.algorithm == "AUTO" {
		res, err = tnt.sess.AutoWith(ctx, p.g, envred.AutoOptions{Seed: p.seed})
	} else {
		res, err = tnt.sess.Do(ctx, p.g, p.algorithm, envred.OrderRequest{Seed: p.seed, Weight: p.weight})
	}
	elapsed := time.Since(start)
	s.m.orderSeconds.observe(elapsed.Seconds())

	if err != nil {
		aerr := orderError(err, res, p.g)
		s.m.orders.inc(p.algorithm, statusLabel(aerr))
		return nil, aerr
	}
	spectral := res.Info != nil || res.Solve != nil ||
		(res.Report != nil && res.Report.Eigensolves > 0)
	if spectral && !cached {
		s.m.eigenSeconds.observe(elapsed.Seconds())
	}
	s.m.orders.inc(p.algorithm, "ok")

	resp := &orderResponse{
		Algorithm: res.Algorithm,
		N:         p.g.N(),
		Nonzeros:  p.g.Nonzeros(),
		Perm:      res.Perm,
		Envelope:  envelopeOf(res.Stats),
		Solve:     res.Solve,
		Cached:    cached,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if res.Info != nil {
		resp.Lambda2 = res.Info.Lambda2
		if resp.Solve == nil {
			solve := res.Info.Solve
			resp.Solve = &solve
		}
	}
	if res.Report != nil {
		resp.Winners = res.Report.Wins
		resp.Eigensolves = res.Report.Eigensolves
	}
	return resp, nil
}

// storeHas reports whether the persistent store already holds the
// whole-graph artifact a request on g with this seed will consult — the
// advisory probe behind the response's cached flag across restarts. It
// reads through the uncounted handle so probes never skew the store
// hit/miss metrics, and it is best-effort: a miss here just means the
// ordering pays its normal (possibly store-warmed) cost.
func (s *Server) storeHas(g *graph.Graph, seed int64) bool {
	if s.rawStore == nil {
		return false
	}
	if seed == 0 {
		seed = s.cfg.Seed
	}
	_, err := s.rawStore.Get(pipeline.StoreKeyFor(g, core.Options{Seed: seed}))
	return err == nil
}

// acquire takes one slot of sem (nil = unlimited), honoring ctx.
func acquire(ctx context.Context, sem chan struct{}) *apiError {
	if sem == nil {
		return nil
	}
	select {
	case sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		f := false
		return &apiError{Status: http.StatusServiceUnavailable,
			Message: fmt.Sprintf("request expired while queued: %v", ctx.Err()), BestSoFar: &f}
	}
}

func release(sem chan struct{}) {
	if sem != nil {
		<-sem
	}
}

// orderError maps an ordering failure to the wire. A cancelled eigensolve
// (deadline or client disconnect) is 503; when the run left a usable
// best-so-far ordering — either a valid permutation in the result or a
// fallback Fiedler vector inside the typed cancellation error — the reply
// carries it with best_so_far=true, so callers with hard latency budgets
// still get a (suboptimal but valid) ordering for their money.
func orderError(err error, res envred.Result, g *graph.Graph) *apiError {
	var ec *envred.ErrCancelled
	if errors.As(err, &ec) {
		p := res.Perm
		if len(p) != g.N() || p.Check() != nil {
			p = nil
		}
		if p == nil && ec.Vector != nil && len(ec.Vector) == g.N() {
			ws := scratch.Get()
			p, _, _ = core.OrderFiedler(ws, g, ec.Vector)
			scratch.Put(ws)
		}
		best := p != nil
		return &apiError{Status: http.StatusServiceUnavailable,
			Message: fmt.Sprintf("ordering interrupted: %v", err), BestSoFar: &best, Perm: p}
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		f := false
		return &apiError{Status: http.StatusServiceUnavailable,
			Message: fmt.Sprintf("ordering interrupted: %v", err), BestSoFar: &f}
	}
	return &apiError{Status: http.StatusInternalServerError, Message: err.Error()}
}

func statusLabel(e *apiError) string {
	switch e.Status {
	case http.StatusServiceUnavailable:
		return "timeout"
	case http.StatusBadRequest:
		return "invalid"
	default:
		return "error"
	}
}

// orderCtx applies the payload timeout on top of parent.
func orderCtx(parent context.Context, p *orderPayload) (context.Context, context.CancelFunc) {
	if p.timeout > 0 {
		return context.WithTimeout(parent, p.timeout)
	}
	return context.WithCancel(parent)
}

// Handlers --------------------------------------------------------------------

func (s *Server) handleOrder(w http.ResponseWriter, r *http.Request, tnt *tenant) {
	p, aerr := s.parseOrderPayload(w, r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	ctx, cancel := orderCtx(r.Context(), p)
	defer cancel()
	resp, aerr := s.runOrder(ctx, tnt, p)
	if aerr != nil {
		s.logf("order tenant=%s algorithm=%s n=%d status=%d err=%q", tnt.name, p.algorithm, p.g.N(), aerr.Status, aerr.Message)
		writeError(w, aerr)
		return
	}
	s.logf("order tenant=%s algorithm=%s n=%d esize=%d cached=%v elapsed=%.1fms",
		tnt.name, resp.Algorithm, resp.N, resp.Envelope.Esize, resp.Cached, resp.ElapsedMS)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request, tnt *tenant) {
	p, aerr := s.parseOrderPayload(w, r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	j := &job{id: newJobID(), tenant: tnt, payload: p, created: time.Now(), state: jobQueued}
	if aerr := s.submitJob(j); aerr != nil {
		writeError(w, aerr)
		return
	}
	s.logf("job %s submitted tenant=%s algorithm=%s n=%d", j.id, tnt.name, p.algorithm, p.g.N())
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request, tnt *tenant) {
	j, ok := s.jobs.get(r.PathValue("id"), tnt)
	if !ok {
		writeError(w, &apiError{Status: http.StatusNotFound, Message: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request, tnt *tenant) {
	j, ok := s.jobs.get(r.PathValue("id"), tnt)
	if !ok {
		writeError(w, &apiError{Status: http.StatusNotFound, Message: "unknown job"})
		return
	}
	j.mu.Lock()
	state, resp, fail := j.state, j.resp, j.fail
	j.mu.Unlock()
	switch state {
	case jobDone:
		writeJSON(w, http.StatusOK, resp)
	case jobFailed:
		writeError(w, fail)
	default:
		// Not terminal yet: 202 with the poll document.
		writeJSON(w, http.StatusAccepted, j.status())
	}
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request, _ *tenant) {
	writeJSON(w, http.StatusOK, map[string]any{
		// AUTO is the service-level portfolio mode on top of the registry.
		"algorithms": append([]string{"AUTO"}, envred.Algorithms()...),
	})
}

// fiedlerResponse is the /v1/fiedler reply.
type fiedlerResponse struct {
	N         int           `json:"n"`
	Lambda2   float64       `json:"lambda2"`
	Vector    []float64     `json:"vector"`
	Solve     *solver.Stats `json:"solve,omitempty"`
	Cached    bool          `json:"cached"`
	ElapsedMS float64       `json:"elapsed_ms"`
}

func (s *Server) handleFiedler(w http.ResponseWriter, r *http.Request, tnt *tenant) {
	p, aerr := s.parseOrderPayload(w, r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	ctx, cancel := orderCtx(r.Context(), p)
	defer cancel()

	s.m.inFlight.add(1)
	defer s.m.inFlight.add(-1)
	if aerr := acquire(ctx, tnt.sem); aerr != nil {
		writeError(w, aerr)
		return
	}
	defer release(tnt.sem)
	if aerr := acquire(ctx, s.solveSem); aerr != nil {
		writeError(w, aerr)
		return
	}
	defer release(s.solveSem)

	g, cached := tnt.graphs.intern(p.g)
	if cached {
		s.m.cacheHits.inc()
	} else {
		s.m.cacheMisses.inc()
	}
	if !cached {
		// Session.Fiedler always runs with the session-default options, so
		// probe with the session seed (0 defaults to it inside storeHas).
		cached = s.storeHas(g, 0)
	}
	start := time.Now()
	vec, st, err := tnt.sess.Fiedler(ctx, g)
	elapsed := time.Since(start)
	if err != nil {
		var ec *envred.ErrCancelled
		if errors.As(err, &ec) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			best := ec != nil && ec.Vector != nil
			writeError(w, &apiError{Status: http.StatusServiceUnavailable,
				Message: fmt.Sprintf("eigensolve interrupted: %v", err), BestSoFar: &best})
			return
		}
		writeError(w, &apiError{Status: http.StatusBadRequest, Message: err.Error()})
		return
	}
	if !cached {
		s.m.eigenSeconds.observe(elapsed.Seconds())
	}
	writeJSON(w, http.StatusOK, fiedlerResponse{
		N:         g.N(),
		Lambda2:   st.Lambda,
		Vector:    vec,
		Solve:     &st,
		Cached:    cached,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	})
}

// handleHealthz is the liveness probe: always 200 while the process can
// answer HTTP. A degraded persistent store is reported in the body but
// never fails liveness — the daemon keeps serving from its in-memory
// caches; restarting it would only throw those away too. Readiness detail
// lives on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"in_flight":      s.m.inFlight.value(),
	}
	if s.resilient != nil {
		doc["store"] = s.resilient.State().String()
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleReadyz is the readiness probe. Like /healthz it always answers
// 200 — an open store breaker means cache-only operation, not an
// unservable daemon, so readiness reports "degraded" in the body instead
// of flapping the probe — but the body carries the full breaker detail:
// position, failure streak, retry/timeout/drop counters, and the last
// error, failure and healthy-op timestamps.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"in_flight":      s.m.inFlight.value(),
	}
	switch {
	case s.resilient != nil:
		rs := s.resilient.Stats()
		storeDoc := map[string]any{
			"breaker":              rs.State.String(),
			"consecutive_failures": rs.ConsecutiveFailures,
			"retries":              rs.Retries,
			"timeouts":             rs.Timeouts,
			"fast_fails":           rs.FastFails,
			"put_drops":            rs.PutDrops,
			"trips":                rs.Trips,
			"recoveries":           rs.Recoveries,
		}
		if rs.LastError != "" {
			storeDoc["last_error"] = rs.LastError
		}
		if !rs.LastFailure.IsZero() {
			storeDoc["last_failure_unix_ms"] = rs.LastFailure.UnixMilli()
		}
		if !rs.LastSuccess.IsZero() {
			storeDoc["last_success_unix_ms"] = rs.LastSuccess.UnixMilli()
		}
		doc["store"] = storeDoc
		if rs.Degraded {
			doc["status"] = "degraded"
		}
	case s.store != nil:
		// A store without the resilience wrapper has no breaker to report.
		doc["store"] = map[string]any{"breaker": "none"}
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.writeTo(w)
}
