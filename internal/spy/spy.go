// Package spy renders the nonzero structure of an ordered sparse symmetric
// matrix — the spy plots of Figures 4.1–4.5 — as ASCII art or a binary PGM
// image. Each cell of a coarse raster is shaded by the number of nonzeros
// (both triangles plus the diagonal) falling into it.
package spy

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
	"repro/internal/perm"
)

// Raster is a density grid of the permuted matrix pattern.
type Raster struct {
	Size  int     // cells per side
	N     int     // matrix order
	Count []int32 // row-major Size×Size nonzero counts
}

// Rasterize bins the nonzeros of PᵀAP (pattern of g under order, plus the
// diagonal) into a size×size grid.
func Rasterize(g *graph.Graph, order perm.Perm, size int) *Raster {
	n := g.N()
	if size < 1 {
		size = 1
	}
	if size > n && n > 0 {
		size = n
	}
	r := &Raster{Size: size, N: n, Count: make([]int32, size*size)}
	if n == 0 {
		return r
	}
	cell := func(p int32) int {
		c := int(int64(p) * int64(size) / int64(n))
		if c >= size {
			c = size - 1
		}
		return c
	}
	inv := order.Inverse()
	for v := 0; v < n; v++ {
		iv := cell(inv[v])
		r.Count[iv*size+iv]++ // diagonal
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				a, b := cell(inv[v]), cell(inv[w])
				r.Count[a*size+b]++
				r.Count[b*size+a]++
			}
		}
	}
	return r
}

// Max returns the maximum cell count.
func (r *Raster) Max() int32 {
	var m int32
	for _, c := range r.Count {
		if c > m {
			m = c
		}
	}
	return m
}

// ASCII renders the raster with a density ramp: ' ' for empty cells up to
// '@' for the densest. The output has Size lines of Size runes.
func (r *Raster) ASCII() string {
	ramp := []byte(" .:-=+*#%@")
	max := r.Max()
	var sb strings.Builder
	sb.Grow((r.Size + 1) * r.Size)
	for i := 0; i < r.Size; i++ {
		for j := 0; j < r.Size; j++ {
			c := r.Count[i*r.Size+j]
			if c == 0 {
				sb.WriteByte(' ')
				continue
			}
			idx := 1 + int(int64(c-1)*int64(len(ramp)-2)/int64(max))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WritePGM writes the raster as a binary 8-bit PGM image (dark = dense),
// the portable format every image tool reads.
func (r *Raster) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", r.Size, r.Size); err != nil {
		return err
	}
	max := r.Max()
	for _, c := range r.Count {
		pix := byte(255) // white background
		if c > 0 {
			// Nonzero cells darken with density; keep even single entries
			// clearly visible (≤128).
			v := 128 - int64(c)*128/int64(max)
			pix = byte(v)
		}
		if err := bw.WriteByte(pix); err != nil {
			return err
		}
	}
	return bw.Flush()
}
