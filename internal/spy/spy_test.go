package spy

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/perm"
)

func TestRasterizeCountsAllNonzeros(t *testing.T) {
	g := graph.Grid(10, 10)
	r := Rasterize(g, perm.Identity(100), 20)
	var total int64
	for _, c := range r.Count {
		total += int64(c)
	}
	// diagonal n + both triangles 2m
	want := int64(g.N() + 2*g.M())
	if total != want {
		t.Fatalf("total binned = %d, want %d", total, want)
	}
}

func TestRasterizeSymmetric(t *testing.T) {
	g := graph.Random(60, 120, 1)
	r := Rasterize(g, perm.Random(60, 2), 15)
	for i := 0; i < r.Size; i++ {
		for j := 0; j < r.Size; j++ {
			if r.Count[i*r.Size+j] != r.Count[j*r.Size+i] {
				t.Fatalf("raster not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestBandedMatrixLooksBanded(t *testing.T) {
	// Path with identity order: all nonzeros on the diagonal band, so every
	// cell off the raster tridiagonal must be empty.
	g := graph.Path(100)
	r := Rasterize(g, perm.Identity(100), 10)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > 1 && r.Count[i*10+j] != 0 {
				t.Fatalf("banded matrix has mass at (%d,%d)", i, j)
			}
		}
	}
}

func TestASCIIShape(t *testing.T) {
	g := graph.Grid(8, 8)
	r := Rasterize(g, perm.Identity(64), 12)
	art := r.ASCII()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 12 {
		t.Fatalf("got %d lines, want 12", len(lines))
	}
	for i, l := range lines {
		if len(l) != 12 {
			t.Fatalf("line %d has %d chars", i, len(l))
		}
	}
	// Diagonal must be non-blank.
	for i := 0; i < 12; i++ {
		if lines[i][i] == ' ' {
			t.Fatalf("diagonal blank at %d", i)
		}
	}
}

func TestWritePGM(t *testing.T) {
	g := graph.Grid(6, 6)
	r := Rasterize(g, perm.Identity(36), 8)
	var buf bytes.Buffer
	if err := r.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P5\n8 8\n255\n")) {
		t.Fatalf("bad PGM header: %q", b[:12])
	}
	if len(b) != len("P5\n8 8\n255\n")+64 {
		t.Fatalf("PGM length %d", len(b))
	}
}

func TestEmptyAndTiny(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	r := Rasterize(empty, perm.Perm{}, 4)
	if r.Max() != 0 {
		t.Fatal("empty raster has mass")
	}
	single := graph.NewBuilder(1).Build()
	r = Rasterize(single, perm.Identity(1), 4)
	if r.Size != 1 {
		t.Fatalf("size clamped to %d, want 1", r.Size)
	}
	if r.Count[0] != 1 {
		t.Fatal("diagonal of singleton missing")
	}
}
