package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

type marked struct{ r bool }

func (m marked) Error() string   { return "marked" }
func (m marked) Retryable() bool { return m.r }

func TestTransient(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"marked retryable", marked{true}, true},
		{"marked final", marked{false}, false},
		{"wrapped retryable", fmt.Errorf("op: %w", marked{true}), true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"canceled wrapping retryable", fmt.Errorf("%w: %w", context.Canceled, marked{true}), false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("%s: Transient = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDelayFullJitter(t *testing.T) {
	// Rand pinned to its supremum: Delay returns (just under) the ceiling,
	// so the doubling and the cap are observable.
	p := Policy{Base: 10 * time.Millisecond, Cap: 75 * time.Millisecond, Rand: func() float64 { return 0.999999 }}
	want := []time.Duration{10, 20, 40, 75, 75} // ms ceilings per attempt
	for i, w := range want {
		got := p.Delay(i)
		ceil := w * time.Millisecond
		if got >= ceil || got < ceil-time.Millisecond {
			t.Errorf("Delay(%d) = %v, want just under %v", i, got, ceil)
		}
	}
	// Rand at zero: full jitter legitimately reaches zero delay.
	p.Rand = func() float64 { return 0 }
	if got := p.Delay(3); got != 0 {
		t.Errorf("Delay with zero Rand = %v, want 0", got)
	}
}

func TestDelayDefaults(t *testing.T) {
	p := Policy{Rand: func() float64 { return 0.5 }}
	if got := p.Delay(0); got != 10*time.Millisecond {
		t.Errorf("default Delay(0) = %v, want 10ms (half of the 20ms base)", got)
	}
	if got := p.Delay(100); got != 500*time.Millisecond {
		t.Errorf("default Delay(100) = %v, want 500ms (half of the 1s cap)", got)
	}
}

func TestSleepHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	err := Sleep(ctx, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Sleep parked %v past cancellation", elapsed)
	}
}

func TestSleepRefusesToOutliveDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Sleep(ctx, 10*time.Second)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sleep = %v, want context.DeadlineExceeded", err)
	}
	// The refusal must be immediate, not a park until the deadline.
	if elapsed := time.Since(start); elapsed > 15*time.Millisecond {
		t.Fatalf("Sleep waited %v instead of refusing up front", elapsed)
	}
}

func TestSleepZeroAndExpired(t *testing.T) {
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
}
