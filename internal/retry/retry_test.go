package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

type marked struct{ r bool }

func (m marked) Error() string   { return "marked" }
func (m marked) Retryable() bool { return m.r }

func TestTransient(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"marked retryable", marked{true}, true},
		{"marked final", marked{false}, false},
		{"wrapped retryable", fmt.Errorf("op: %w", marked{true}), true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"canceled wrapping retryable", fmt.Errorf("%w: %w", context.Canceled, marked{true}), false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("%s: Transient = %v, want %v", c.name, got, c.want)
		}
	}
}

// wrapper wraps without an opinion of its own — the shape of the store's
// decorators and fmt.Errorf("...: %w") chains.
type wrapper struct{ inner error }

func (w wrapper) Error() string { return "wrap: " + w.inner.Error() }
func (w wrapper) Unwrap() error { return w.inner }

func TestTransientWrappedChains(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"double-wrapped retryable", fmt.Errorf("a: %w", fmt.Errorf("b: %w", marked{true})), true},
		{"double-wrapped final marker", fmt.Errorf("a: %w", fmt.Errorf("b: %w", marked{false})), false},
		{"custom unwrapper around retryable", wrapper{wrapper{marked{true}}}, true},
		{"joined errors containing retryable", errors.Join(errors.New("side"), marked{true}), true},
		{"joined errors all unmarked", errors.Join(errors.New("a"), errors.New("b")), false},
		{"retryable wrapping deadline stays final", fmt.Errorf("op: %w: %w", marked{true}, context.DeadlineExceeded), false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("%s: Transient = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestTransientOutermostMarkerWins pins the errors.As traversal order: the
// first Retryable() in the chain decides, so a decorator that downgrades a
// transient inner error to final is honored.
func TestTransientOutermostMarkerWins(t *testing.T) {
	err := fmt.Errorf("op: %w", downgrading{marked{true}})
	if Transient(err) {
		t.Error("outer Retryable()=false did not override the inner retryable")
	}
	// Without the downgrade the same chain is transient — the downgrade is
	// what flips it.
	if !Transient(fmt.Errorf("op: %w", wrapper{marked{true}})) {
		t.Error("opinion-free wrapper hid the inner retryable")
	}
}

// downgrading is final itself but unwraps to a retryable error — a
// decorator that has decided retries stopped helping.
type downgrading struct{ inner error }

func (d downgrading) Error() string   { return "downgraded: " + d.inner.Error() }
func (d downgrading) Unwrap() error   { return d.inner }
func (d downgrading) Retryable() bool { return false }

// TestSleepDeadlineResultIsFinal closes the retry loop's invariant: when
// Sleep refuses to park past the deadline, the error it returns must
// classify as final, so the loop that called it terminates instead of
// spinning on zero-length sleeps.
func TestSleepDeadlineResultIsFinal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := Sleep(ctx, time.Second)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sleep = %v, want context.DeadlineExceeded", err)
	}
	if Transient(err) {
		t.Fatal("Sleep's deadline refusal classified as transient; retry loops would spin")
	}
	// Same for a mid-sleep cancellation.
	cctx, ccancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); ccancel() }()
	if err := Sleep(cctx, time.Second); Transient(err) {
		t.Fatal("Sleep's cancellation result classified as transient")
	}
}

func TestDelayFullJitter(t *testing.T) {
	// Rand pinned to its supremum: Delay returns (just under) the ceiling,
	// so the doubling and the cap are observable.
	p := Policy{Base: 10 * time.Millisecond, Cap: 75 * time.Millisecond, Rand: func() float64 { return 0.999999 }}
	want := []time.Duration{10, 20, 40, 75, 75} // ms ceilings per attempt
	for i, w := range want {
		got := p.Delay(i)
		ceil := w * time.Millisecond
		if got >= ceil || got < ceil-time.Millisecond {
			t.Errorf("Delay(%d) = %v, want just under %v", i, got, ceil)
		}
	}
	// Rand at zero: full jitter legitimately reaches zero delay.
	p.Rand = func() float64 { return 0 }
	if got := p.Delay(3); got != 0 {
		t.Errorf("Delay with zero Rand = %v, want 0", got)
	}
}

func TestDelayDefaults(t *testing.T) {
	p := Policy{Rand: func() float64 { return 0.5 }}
	if got := p.Delay(0); got != 10*time.Millisecond {
		t.Errorf("default Delay(0) = %v, want 10ms (half of the 20ms base)", got)
	}
	if got := p.Delay(100); got != 500*time.Millisecond {
		t.Errorf("default Delay(100) = %v, want 500ms (half of the 1s cap)", got)
	}
}

func TestSleepHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	err := Sleep(ctx, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Sleep parked %v past cancellation", elapsed)
	}
}

func TestSleepRefusesToOutliveDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Sleep(ctx, 10*time.Second)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sleep = %v, want context.DeadlineExceeded", err)
	}
	// The refusal must be immediate, not a park until the deadline.
	if elapsed := time.Since(start); elapsed > 15*time.Millisecond {
		t.Fatalf("Sleep waited %v instead of refusing up front", elapsed)
	}
}

func TestSleepZeroAndExpired(t *testing.T) {
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
}
