// Package retry is the module's one retry vocabulary: full-jitter capped
// exponential backoff, context-aware sleeping that never parks past a
// deadline, and the retryable-vs-final error classification that the HTTP
// client and the tier-2 store resilience layer both dispatch on. Keeping
// these in one place means a transient store fault and a retryable HTTP
// status are backed off and classified by exactly the same rules.
package retry

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// retryable is the marker interface Transient classifies by: an error (or
// any error in its Unwrap chain) that knows whether retrying can help
// implements it. store.ErrTransient and the client's APIError both do.
type retryable interface {
	Retryable() bool
}

// Transient reports whether err is worth retrying. Context cancellation
// and deadline expiry are always final — the caller has given up, so
// retrying on their behalf would outlive the request. Otherwise the error
// chain is searched for a Retryable() marker; errors that carry no opinion
// are final, because blind retries against a deterministic failure only
// multiply its cost.
func Transient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var r retryable
	if errors.As(err, &r) {
		return r.Retryable()
	}
	return false
}

// Policy parameterizes full-jitter exponential backoff: attempt k draws a
// delay uniformly from [0, min(Cap, Base·2^k)). Full jitter (rather than
// equal-jitter or bare exponential) is what decorrelates a thundering herd
// of clients that all failed at the same instant.
type Policy struct {
	// Base is the backoff ceiling of attempt 0; it doubles per attempt.
	// Zero or negative means 20ms.
	Base time.Duration
	// Cap bounds the ceiling regardless of attempt count. Zero or negative
	// means 1s.
	Cap time.Duration
	// Rand, when non-nil, replaces the uniform [0,1) source — deterministic
	// tests pin it. Must be safe for concurrent use if the Policy is shared.
	Rand func() float64
}

// Delay returns the randomized backoff before retry number attempt
// (0-based: the delay between the first failure and the second try is
// Delay(0)).
func (p Policy) Delay(attempt int) time.Duration {
	base, cap := p.Base, p.Cap
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	if cap <= 0 {
		cap = time.Second
	}
	ceil := base
	for i := 0; i < attempt && ceil < cap; i++ {
		ceil <<= 1
	}
	if ceil > cap {
		ceil = cap
	}
	f := p.Rand
	if f == nil {
		f = rand.Float64
	}
	return time.Duration(f() * float64(ceil))
}

// Sleep parks for d, honoring ctx: it returns ctx.Err() immediately on
// cancellation, and — the part a bare timer select gets wrong — it refuses
// to start a sleep the context's deadline cannot survive, returning
// context.DeadlineExceeded up front instead of burning the request's last
// budget inside a backoff pause.
func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
