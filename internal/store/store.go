// Package store is the persistent (tier-2) artifact store behind the
// Session cache: a content-addressed map from (graph fingerprint, option
// digest) keys to serialized eigensolve artifacts — Fiedler vectors, the
// spectral ordering derived from them and the solver statistics — that
// survives the process. The in-memory pipeline.Cache is tier 1: it keys by
// graph pointer and dies with the process; this package keys by content and
// lets a daemon restart come up warm, replicas pool eigensolves through a
// shared directory, and a second CLI run on the same matrix file skip the
// solve entirely.
//
// Backends are selected by URL the way database/sql dispatches on driver
// name: Open("fs:///var/cache/envorder") yields the on-disk backend,
// Open("mem://") an in-process one, and Register adds third-party schemes
// (redis, SQL, …) without touching callers. All backends speak the same
// versioned binary serialization (see codec.go), so entries written by one
// are readable by any other pointed at the same bytes.
//
// Failure philosophy: the store is an accelerator, never an authority. A
// corrupt, truncated or unreadable entry is reported as an error for the
// caller to count and is otherwise equivalent to a miss — the eigensolve
// reruns and the entry is rewritten. No store outcome may change a result,
// only its cost.
package store

import (
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/solver"
)

// ErrNotFound reports a key with no stored entry — the one "failure" that
// is pure cache semantics, not an error condition. Drivers must return it
// (possibly wrapped) from Get and Delete on absent keys.
var ErrNotFound = errors.New("store: entry not found")

// ErrCorrupt is wrapped by Get when an entry exists but cannot be decoded
// (truncation, version mismatch, trailing garbage, key mismatch). Callers
// treat it as a miss plus a counted error; drivers are encouraged to drop
// the entry so the next write starts clean.
var ErrCorrupt = errors.New("store: corrupt entry")

// ErrTransient marks a backend failure that may succeed if simply retried
// — a dropped connection, an injected chaos fault, a timed-out operation.
// Drivers wrap it (fmt.Errorf("...: %w", ErrTransient)) so the Resilient
// layer can classify without knowing backend specifics; ErrNotFound and
// ErrCorrupt are never transient — the backend answered, the answer just
// wasn't an entry.
var ErrTransient error = transientError{}

// transientError is the typed sentinel behind ErrTransient. It implements
// the Retryable marker the shared classifier (internal/retry.Transient)
// dispatches on, so one errors.As walk serves both the store retrier and
// the HTTP client.
type transientError struct{}

func (transientError) Error() string { return "store: transient backend error" }

// Retryable marks the error for internal/retry.Transient.
func (transientError) Retryable() bool { return true }

// ErrUnavailable is returned by the Resilient wrapper while its circuit
// breaker is open: the backend has failed enough consecutive operations
// that further attempts are refused up front, and the caller should run
// cache-only (tier 1) until a probe succeeds. Deliberately NOT transient —
// retrying through an open breaker is the breaker's own job, on its probe
// schedule, not the caller's.
var ErrUnavailable = errors.New("store: backend unavailable (circuit breaker open)")

// Key addresses one artifact entry: the canonical content fingerprint of
// the (component) graph plus a digest of the eigensolver options that
// parameterize the solve. Both halves are content-derived, so the same
// matrix ordered with the same options maps to the same entry from any
// process, replica or CLI run.
type Key struct {
	// Graph is the canonical SHA-256 CSR fingerprint (graph.FingerprintOf).
	Graph graph.Fingerprint
	// Opts digests the spectral options the artifacts are keyed by (seed,
	// solver scheme and tolerances); see pipeline.StoreKeyFor.
	Opts [32]byte
}

// String renders the key as "<graph-hex>-<opts-hex>" — stable, unique and
// safe as a file or object name.
func (k Key) String() string {
	return fmt.Sprintf("%s-%x", k.Graph, k.Opts)
}

// Artifact is the persistent eigensolve record for one (graph, options)
// key. HasFiedler/HasSpectral mark which stages are present: a Fiedler-only
// entry is upgraded in place when the spectral ordering is later derived.
//
// Slices handed out by Get are owned by the caller's cache layer and
// treated as read-only memoized values there; the store itself never
// retains or mutates them after the call.
type Artifact struct {
	// N is the graph's vertex count — redundant with the slice lengths, but
	// serialized so decoders can validate before allocating.
	N int
	// HasFiedler marks Fiedler/Stats as present.
	HasFiedler bool
	// Fiedler is the unit-norm Fiedler vector (length N).
	Fiedler []float64
	// Stats are the uniform solver statistics of the recorded solve.
	Stats solver.Stats
	// HasSpectral marks Perm/Esize/Reversed as present.
	HasSpectral bool
	// Perm is the Algorithm 1 spectral ordering (length N).
	Perm []int32
	// Esize is the winning direction's envelope size.
	Esize int64
	// Reversed reports whether the nonincreasing sort won.
	Reversed bool
}

// Store is the tier-2 artifact driver interface. Implementations must be
// safe for concurrent use by multiple goroutines; the fs backend is
// additionally safe for concurrent use by multiple processes sharing one
// directory (atomic write-then-rename, miss on racing eviction).
type Store interface {
	// Get returns the entry at key, ErrNotFound when absent, or an error
	// (wrapping ErrCorrupt for undecodable entries). The returned Artifact
	// and its slices are the caller's to own.
	Get(key Key) (*Artifact, error)
	// Put writes the entry at key, replacing any previous value. The
	// artifact and its slices are not retained past the call.
	Put(key Key, a *Artifact) error
	// Delete removes the entry at key; deleting an absent key is a no-op.
	Delete(key Key) error
	// Len reports the number of stored entries.
	Len() (int, error)
	// Close releases the driver's resources. The Store is unusable after.
	Close() error
}

// Driver opens a Store from a parsed URL; see Register.
type Driver func(u *url.URL) (Store, error)

var (
	driversMu sync.Mutex
	drivers   = map[string]Driver{}
)

// Register makes a driver available to Open under the given URL scheme
// (case-insensitive). It panics on an empty scheme, a nil driver or a
// scheme already taken — registration is an init-time act, like
// database/sql's.
func Register(scheme string, d Driver) {
	scheme = strings.ToLower(scheme)
	driversMu.Lock()
	defer driversMu.Unlock()
	if scheme == "" || d == nil {
		panic("store: Register with empty scheme or nil driver")
	}
	if _, dup := drivers[scheme]; dup {
		panic("store: Register called twice for scheme " + scheme)
	}
	drivers[scheme] = d
}

// Schemes returns the registered URL schemes, sorted.
func Schemes() []string {
	driversMu.Lock()
	defer driversMu.Unlock()
	out := make([]string, 0, len(drivers))
	for s := range drivers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Open dispatches on the URL scheme to a registered driver:
//
//	fs:///var/cache/envorder?max_bytes=1073741824   on-disk store
//	mem://?max_entries=64                           in-process store
//	/var/cache/envorder                             bare path = fs
//
// A string without "://" is shorthand for the fs driver on that path.
func Open(rawurl string) (Store, error) {
	if !strings.Contains(rawurl, "://") {
		return openFS(rawurl, url.Values{})
	}
	u, err := url.Parse(rawurl)
	if err != nil {
		return nil, fmt.Errorf("store: bad URL %q: %w", rawurl, err)
	}
	scheme := strings.ToLower(u.Scheme)
	driversMu.Lock()
	d, ok := drivers[scheme]
	driversMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: unknown scheme %q in %q (registered: %s)",
			u.Scheme, rawurl, strings.Join(Schemes(), ", "))
	}
	return d(u)
}
