package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/solver"
)

// Binary serialization: everything little-endian, every variable-length
// section length-prefixed, one format-version byte after a fixed magic so
// incompatible readers fail typed instead of misreading.
//
//	[0:4)  magic "EVST"
//	[4]    format version (formatVersion)
//	[5]    kind byte (kindArtifact | kindGraph)
//	[6:]   kind-specific payload, no trailing bytes allowed
//
// Artifact payload:
//
//	key        64 bytes (graph fingerprint ‖ option digest) — lets a
//	           backend verify an entry landed under the name it claims
//	n          u64
//	flags      u8 (bit0 = fiedler present, bit1 = spectral present)
//	stats      scheme string (u32 len + bytes), lambda f64, residual f64,
//	           matvecs u64, rqi u64, jacobi u64, levels u64, coarsest u64,
//	           workers u64, converged u8
//	fiedler    u64 count + count f64          (iff bit0; count == n)
//	perm       u64 count + count i32,          (iff bit1; count == n)
//	           esize u64 (two's complement), reversed u8
//
// Graph payload:
//
//	n          u64
//	xadj       u64 count + count i32           (count == n+1)
//	adj        u64 count + count i32
const formatVersion = 1

const (
	kindArtifact = 1
	kindGraph    = 2
)

var magic = [4]byte{'E', 'V', 'S', 'T'}

const (
	flagFiedler  = 1 << 0
	flagSpectral = 1 << 1
)

// corrupt builds the typed decode error every malformed input funnels to.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// encoder appends primitives to a byte slice.
type encoder struct{ b []byte }

func (e *encoder) u8(v byte)     { e.b = append(e.b, v) }
func (e *encoder) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *encoder) f64s(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}
func (e *encoder) i32s(v []int32) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u32(uint32(x))
	}
}

// decoder consumes primitives from a byte slice, bounds-checked; the first
// overrun poisons it and every later read reports failure.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corrupt(format, args...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated at offset %d (want %d more bytes, have %d)", d.off, n, len(d.b)-d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) str() string {
	n := d.u32()
	// The length itself is bounds-checked by take, so a hostile huge count
	// fails before allocating.
	return string(d.take(int(n)))
}

// count reads a u64 length prefix for elements of elemSize bytes and
// rejects counts the remaining input cannot possibly hold, so fuzzed
// inputs cannot trigger giant allocations.
func (d *decoder) count(elemSize int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off)/uint64(elemSize) {
		d.fail("length prefix %d exceeds remaining input at offset %d", n, d.off)
		return 0
	}
	return int(n)
}

func (d *decoder) f64s() []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *decoder) i32s() []int32 {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.u32())
	}
	return out
}

// finish rejects trailing garbage: an entry must decode to exactly its
// length or it is not the entry that was written.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return corrupt("%d trailing bytes after offset %d", len(d.b)-d.off, d.off)
	}
	return nil
}

func encodeHeader(e *encoder, kind byte) {
	e.b = append(e.b, magic[:]...)
	e.u8(formatVersion)
	e.u8(kind)
}

func decodeHeader(d *decoder, wantKind byte) {
	got := d.take(4)
	if d.err != nil {
		return
	}
	if [4]byte(got) != magic {
		d.fail("bad magic %q", got)
		return
	}
	if v := d.u8(); d.err == nil && v != formatVersion {
		d.fail("unsupported format version %d (want %d)", v, formatVersion)
		return
	}
	if k := d.u8(); d.err == nil && k != wantKind {
		d.fail("wrong entry kind %d (want %d)", k, wantKind)
	}
}

// EncodeArtifact serializes a under key. The key is embedded so backends
// can verify an entry still matches the name it is stored under.
func EncodeArtifact(key Key, a *Artifact) []byte {
	e := &encoder{b: make([]byte, 0, artifactSizeHint(a))}
	encodeHeader(e, kindArtifact)
	e.b = append(e.b, key.Graph[:]...)
	e.b = append(e.b, key.Opts[:]...)
	e.u64(uint64(a.N))
	var flags byte
	if a.HasFiedler {
		flags |= flagFiedler
	}
	if a.HasSpectral {
		flags |= flagSpectral
	}
	e.u8(flags)
	e.str(a.Stats.Scheme)
	e.f64(a.Stats.Lambda)
	e.f64(a.Stats.Residual)
	e.u64(uint64(a.Stats.MatVecs))
	e.u64(uint64(a.Stats.RQIIterations))
	e.u64(uint64(a.Stats.JacobiSweeps))
	e.u64(uint64(a.Stats.Levels))
	e.u64(uint64(a.Stats.CoarsestN))
	e.u64(uint64(a.Stats.Workers))
	e.bool(a.Stats.Converged)
	if a.HasFiedler {
		e.f64s(a.Fiedler)
	}
	if a.HasSpectral {
		e.i32s(a.Perm)
		e.u64(uint64(a.Esize))
		e.bool(a.Reversed)
	}
	return e.b
}

func artifactSizeHint(a *Artifact) int {
	return 6 + 64 + 9 + 96 + len(a.Stats.Scheme) + 8*len(a.Fiedler) + 4*len(a.Perm) + 32
}

// DecodeArtifact parses an encoded artifact, returning the embedded key and
// the record. Any malformation — truncation, bad magic, version or kind
// mismatch, impossible lengths, trailing garbage, or sections inconsistent
// with N — fails with an error wrapping ErrCorrupt.
//
//envlint:readonly data
func DecodeArtifact(data []byte) (Key, *Artifact, error) {
	d := &decoder{b: data}
	decodeHeader(d, kindArtifact)
	var key Key
	copy(key.Graph[:], d.take(len(key.Graph)))
	copy(key.Opts[:], d.take(len(key.Opts)))
	a := &Artifact{}
	n := d.u64()
	if d.err == nil && n > uint64(math.MaxInt32) {
		d.fail("vertex count %d out of range", n)
	}
	a.N = int(n)
	flags := d.u8()
	if d.err == nil && flags&^(flagFiedler|flagSpectral) != 0 {
		d.fail("unknown flag bits %#x", flags)
	}
	a.HasFiedler = flags&flagFiedler != 0
	a.HasSpectral = flags&flagSpectral != 0
	a.Stats = solver.Stats{
		Scheme:        d.str(),
		Lambda:        d.f64(),
		Residual:      d.f64(),
		MatVecs:       int(d.u64()),
		RQIIterations: int(d.u64()),
		JacobiSweeps:  int(d.u64()),
		Levels:        int(d.u64()),
		CoarsestN:     int(d.u64()),
		Workers:       int(d.u64()),
		Converged:     d.bool(),
	}
	if a.HasFiedler {
		a.Fiedler = d.f64s()
		if d.err == nil && len(a.Fiedler) != a.N {
			d.fail("fiedler vector has %d entries for n=%d", len(a.Fiedler), a.N)
		}
	}
	if a.HasSpectral {
		a.Perm = d.i32s()
		if d.err == nil && len(a.Perm) != a.N {
			d.fail("permutation has %d entries for n=%d", len(a.Perm), a.N)
		}
		a.Esize = int64(d.u64())
		a.Reversed = d.bool()
	}
	if err := d.finish(); err != nil {
		return Key{}, nil, err
	}
	return key, a, nil
}

// EncodeGraph serializes a graph's CSR arrays — the stable wire form of a
// versioned graph identity, available to backends or tooling that persist
// graphs alongside their artifacts.
func EncodeGraph(g *graph.Graph) []byte {
	e := &encoder{b: make([]byte, 0, 6+24+4*(len(g.Xadj)+len(g.Adj)))}
	encodeHeader(e, kindGraph)
	e.u64(uint64(g.N()))
	e.i32s(g.Xadj)
	e.i32s(g.Adj)
	return e.b
}

// DecodeGraph parses an encoded graph and validates the full CSR
// invariants (monotone Xadj, sorted symmetric duplicate-free adjacency),
// so a corrupted entry can never yield a structurally invalid Graph.
//
//envlint:readonly data
func DecodeGraph(data []byte) (*graph.Graph, error) {
	d := &decoder{b: data}
	decodeHeader(d, kindGraph)
	n := d.u64()
	xadj := d.i32s()
	adj := d.i32s()
	if err := d.finish(); err != nil {
		return nil, err
	}
	if uint64(len(xadj)) != n+1 {
		return nil, corrupt("xadj has %d entries for n=%d", len(xadj), n)
	}
	g, err := graph.FromCSR(xadj, adj)
	if err != nil {
		return nil, corrupt("invalid CSR: %v", err)
	}
	return g, nil
}
