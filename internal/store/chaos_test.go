package store

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/retry"
)

func TestChaosURLParsing(t *testing.T) {
	// Inner fs store through the chaos wrapper, chaos params consumed,
	// inner params forwarded.
	dir := t.TempDir()
	st, err := Open("chaos://fs://" + filepath.Join(dir, "c") + "?err_rate=0&latency=0s&seed=3&max_bytes=1000000")
	if err != nil {
		t.Fatalf("Open chaos over fs: %v", err)
	}
	key, art := testKey(1), testArtifact()
	if err := st.Put(key, art); err != nil {
		t.Fatalf("Put through quiet chaos: %v", err)
	}
	if _, err := st.Get(key); err != nil {
		t.Fatalf("Get through quiet chaos: %v", err)
	}
	st.Close()

	bad := []string{
		"chaos://",                      // no inner store
		"chaos://mem://?err_rate=1.5",   // rate out of range
		"chaos://mem://?err_rate=x",     // rate unparsable
		"chaos://mem://?latency=5",      // bare number is not a duration
		"chaos://mem://?seed=-1",        // seed must be unsigned
		"chaos://mem://?bogus_param=1",  // unknown params reach mem and are rejected there
		"chaos://nosuch://?err_rate=.1", // unknown inner scheme
	}
	for _, u := range bad {
		if _, err := Open(u); err == nil {
			t.Errorf("Open(%q) succeeded, want error", u)
		}
	}
}

// faultPattern records which of n sequential Gets on an absent key drew an
// injected fault (vs a clean ErrNotFound from the inner store).
func faultPattern(t *testing.T, rawurl string, n int) []bool {
	t.Helper()
	st, err := Open(rawurl)
	if err != nil {
		t.Fatalf("Open(%q): %v", rawurl, err)
	}
	defer st.Close()
	key := testKey(9)
	out := make([]bool, n)
	for i := range out {
		_, err := st.Get(key)
		switch {
		case errors.Is(err, ErrTransient):
			out[i] = true
		case errors.Is(err, ErrNotFound):
		default:
			t.Fatalf("op %d: unexpected error %v", i, err)
		}
	}
	return out
}

func TestChaosScheduleDeterministic(t *testing.T) {
	const u = "chaos://mem://?err_rate=0.5&seed=7"
	a := faultPattern(t, u, 64)
	b := faultPattern(t, u, 64)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: fault schedule differs across identically-seeded stores", i)
		}
		if a[i] {
			faults++
		}
	}
	// At rate 0.5 over 64 ops, both extremes would mean a broken schedule.
	if faults == 0 || faults == len(a) {
		t.Fatalf("err_rate=0.5 injected %d/%d faults", faults, len(a))
	}
	c := faultPattern(t, "chaos://mem://?err_rate=0.5&seed=8", 64)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestChaosTransientFaults(t *testing.T) {
	st, err := Open("chaos://mem://?err_rate=1&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key, art := testKey(2), testArtifact()
	for name, op := range map[string]func() error{
		"put":    func() error { return st.Put(key, art) },
		"get":    func() error { _, err := st.Get(key); return err },
		"delete": func() error { return st.Delete(key) },
	} {
		err := op()
		if !errors.Is(err, ErrTransient) {
			t.Errorf("%s at err_rate=1: %v, want ErrTransient", name, err)
		}
		if !retry.Transient(err) {
			t.Errorf("%s fault not classified retryable by the shared helper", name)
		}
	}
	// Control-plane calls stay clean.
	if _, err := st.Len(); err != nil {
		t.Errorf("Len through chaos: %v", err)
	}
}

func TestChaosCorruption(t *testing.T) {
	st, err := Open("chaos://mem://?corrupt_rate=1&seed=4")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key, art := testKey(5), testArtifact()
	if err := st.Put(key, art); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_, err = st.Get(key)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get at corrupt_rate=1: %v, want ErrCorrupt", err)
	}
	if retry.Transient(err) {
		t.Fatal("corruption classified retryable; it is a definitive answer")
	}
	// Absent keys still miss cleanly — there is no payload to damage.
	if _, err := st.Get(testKey(6)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get absent key: %v, want ErrNotFound", err)
	}
}

func TestChaosLatency(t *testing.T) {
	st, err := Open("chaos://mem://?latency=30ms&seed=2")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	start := time.Now()
	st.Get(testKey(1))
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("Get with latency=30ms returned in %v", d)
	}
}

func TestChaosCloseUnblocksHang(t *testing.T) {
	st, err := Open("chaos://mem://?hang_rate=1&hang=1h&seed=3")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		st.Get(testKey(1))
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the Get reach its hang
	st.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock a hung op")
	}
}
