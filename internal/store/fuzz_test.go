package store

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/solver"
)

// FuzzArtifactRoundTrip drives the codec from fuzzed artifact fields:
// encode must succeed and decode must reproduce the artifact and key
// byte-identically (encode∘decode∘encode is the identity on bytes).
func FuzzArtifactRoundTrip(f *testing.F) {
	f.Add(uint16(4), true, true, "multilevel-rqi", 0.12, 1e-9, int64(42), true, int64(17), true)
	f.Add(uint16(0), false, false, "", 0.0, 0.0, int64(0), false, int64(0), false)
	f.Add(uint16(1000), true, false, "lanczos", math.Inf(1), math.NaN(), int64(-1), true, int64(-5), false)
	f.Fuzz(func(t *testing.T, n uint16, hasF, hasS bool, scheme string,
		lambda, residual float64, counters int64, converged bool, esize int64, reversed bool) {
		a := &Artifact{
			N:          int(n),
			HasFiedler: hasF,
			Stats: solver.Stats{
				Scheme:        scheme,
				Lambda:        lambda,
				Residual:      residual,
				MatVecs:       int(counters),
				RQIIterations: int(counters % 7),
				JacobiSweeps:  int(counters % 11),
				Levels:        int(counters % 5),
				CoarsestN:     int(counters % 97),
				Workers:       int(counters % 17),
				Converged:     converged,
			},
			HasSpectral: hasS,
			Esize:       esize,
			Reversed:    reversed,
		}
		if hasF {
			a.Fiedler = make([]float64, n)
			for i := range a.Fiedler {
				a.Fiedler[i] = lambda + float64(i)
			}
		}
		if hasS {
			a.Perm = make([]int32, n)
			for i := range a.Perm {
				a.Perm[i] = int32(i)
			}
		}
		key := testKey(byte(n))
		data := EncodeArtifact(key, a)
		gotKey, got, err := DecodeArtifact(data)
		if err != nil {
			t.Fatalf("decode of freshly encoded artifact failed: %v", err)
		}
		if gotKey != key {
			t.Fatal("key changed across round trip")
		}
		data2 := EncodeArtifact(gotKey, got)
		if !reflect.DeepEqual(data, data2) {
			t.Fatal("re-encode of decoded artifact is not byte-identical")
		}
	})
}

// FuzzDecodeArtifact feeds arbitrary bytes to the decoder: it must never
// panic or allocate unboundedly, and must either decode cleanly or fail
// with an error wrapping ErrCorrupt.
func FuzzDecodeArtifact(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("EVST"))
	f.Add(EncodeArtifact(testKey(1), testArtifact()))
	valid := EncodeArtifact(testKey(2), testArtifact())
	f.Add(valid[:len(valid)-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, err := DecodeArtifact(data)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
		}
	})
}

// FuzzDecodeGraph: arbitrary bytes must never yield a structurally invalid
// graph or a panic.
func FuzzDecodeGraph(f *testing.F) {
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeGraph(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph fails validation: %v", err)
		}
	})
}
