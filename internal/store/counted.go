package store

import (
	"errors"
	"sync/atomic"
	"time"
)

// Stats is a point-in-time snapshot of a Counted store's traffic.
type Stats struct {
	// Hits counts Gets that returned an entry.
	Hits int64
	// Misses counts Gets that found no entry (ErrNotFound).
	Misses int64
	// Puts counts successful writes.
	Puts int64
	// Errors counts every other failure: corrupt entries, I/O errors on any
	// operation. Corrupt Gets count here and NOT under Misses, though the
	// caller treats them the same way.
	Errors int64
}

// HitRate returns Hits/(Hits+Misses) — errors excluded — or 0 with no
// traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Counted wraps a Store with atomic hit/miss/error accounting and an
// optional per-operation latency observer — the single instrumentation
// point the Session, daemon metrics and CLI stats all read, so their
// numbers always agree.
type Counted struct {
	inner Store

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
	errs   atomic.Int64

	// observe, when non-nil, receives ("get"|"put"|"delete", wall seconds)
	// after each corresponding operation. Set once before use.
	observe func(op string, seconds float64)
}

// NewCounted wraps inner with traffic counters. observe may be nil; when
// set it is called after every Get/Put/Delete with the operation name and
// its wall-clock duration in seconds (the daemon feeds its latency
// histogram this way).
func NewCounted(inner Store, observe func(op string, seconds float64)) *Counted {
	return &Counted{inner: inner, observe: observe}
}

// Unwrap returns the underlying store (for Sizer-style type assertions).
func (c *Counted) Unwrap() Store { return c.inner }

// Stats snapshots the counters.
func (c *Counted) Stats() Stats {
	return Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Puts:   c.puts.Load(),
		Errors: c.errs.Load(),
	}
}

func (c *Counted) timeOp(op string) func() {
	if c.observe == nil {
		return func() {}
	}
	start := time.Now()
	return func() { c.observe(op, time.Since(start).Seconds()) }
}

func (c *Counted) Get(key Key) (*Artifact, error) {
	done := c.timeOp("get")
	a, err := c.inner.Get(key)
	done()
	switch {
	case err == nil:
		c.hits.Add(1)
	case errors.Is(err, ErrNotFound):
		c.misses.Add(1)
	default:
		c.errs.Add(1)
	}
	return a, err
}

func (c *Counted) Put(key Key, a *Artifact) error {
	done := c.timeOp("put")
	err := c.inner.Put(key, a)
	done()
	if err != nil {
		c.errs.Add(1)
	} else {
		c.puts.Add(1)
	}
	return err
}

func (c *Counted) Delete(key Key) error {
	done := c.timeOp("delete")
	err := c.inner.Delete(key)
	done()
	if err != nil && !errors.Is(err, ErrNotFound) {
		c.errs.Add(1)
	}
	return err
}

func (c *Counted) Len() (int, error) { return c.inner.Len() }

func (c *Counted) Close() error { return c.inner.Close() }
