package store

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The chaos driver wraps any inner store URL with deterministic seeded
// fault injection — the test double for every network backend failure mode
// the Resilient layer must survive:
//
//	chaos://fs:///var/cache/envorder?err_rate=0.2&hang_rate=0.05&corrupt_rate=0.1&latency=50ms&seed=7
//	chaos://mem://?err_rate=0.5&seed=1&max_entries=64
//
// The inner URL is everything after "chaos://"; query parameters the chaos
// layer does not own are forwarded to the inner driver untouched.
// Recognized parameters (all optional):
//
//	err_rate      probability in [0,1] an op fails with ErrTransient
//	hang_rate     probability in [0,1] an op stalls for `hang` first
//	corrupt_rate  probability in [0,1] a Get delivers a corrupt payload
//	latency       fixed extra delay added to every op (duration)
//	hang          stall duration for hung ops (duration, default 30s)
//	seed          fault-schedule seed (uint64, default 1)
//
// Determinism: each operation takes the next value of an atomic op counter
// and derives its fault rolls by hashing (seed, op, roll-kind) through
// splitmix64 — so for a fixed seed the fault sequence is a pure function
// of operation order, independent of timing or goroutine interleaving.
// Two runs issuing the same ops in the same order inject the same faults;
// tests pin schedules this way.
func init() {
	Register("chaos", openChaos)
}

// chaosParams are the query keys the chaos layer consumes; everything else
// is forwarded to the inner driver (which rejects what it doesn't know).
var chaosParams = map[string]bool{
	"err_rate": true, "hang_rate": true, "corrupt_rate": true,
	"latency": true, "hang": true, "seed": true,
}

type chaosConfig struct {
	errRate     float64
	hangRate    float64
	corruptRate float64
	latency     time.Duration
	hangFor     time.Duration
	seed        uint64
}

func openChaos(u *url.URL) (Store, error) {
	// url.Parse("chaos://fs:///p") yields Host "fs:" (empty port) and Path
	// "///p": the inner scheme is the host minus the colon, the inner
	// opaque part is the path minus the "//" the outer URL contributed.
	scheme := strings.ToLower(strings.TrimSuffix(u.Host, ":"))
	if scheme == "" || scheme == "chaos" {
		return nil, fmt.Errorf("store: chaos: URL %q needs an inner store, e.g. chaos://fs:///path", u)
	}
	cfg := chaosConfig{hangFor: 30 * time.Second, seed: 1}
	rest := url.Values{}
	for key, vals := range u.Query() {
		if !chaosParams[key] {
			rest[key] = vals
			continue
		}
		v := vals[len(vals)-1]
		var err error
		switch key {
		case "err_rate":
			cfg.errRate, err = parseRate(v)
		case "hang_rate":
			cfg.hangRate, err = parseRate(v)
		case "corrupt_rate":
			cfg.corruptRate, err = parseRate(v)
		case "latency":
			cfg.latency, err = time.ParseDuration(v)
		case "hang":
			cfg.hangFor, err = time.ParseDuration(v)
		case "seed":
			cfg.seed, err = strconv.ParseUint(v, 10, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("store: chaos: bad %s %q: %w", key, v, err)
		}
	}
	inner := scheme + "://" + strings.TrimPrefix(u.Path, "//")
	if len(rest) > 0 {
		inner += "?" + rest.Encode()
	}
	st, err := Open(inner)
	if err != nil {
		return nil, fmt.Errorf("store: chaos: inner store %q: %w", inner, err)
	}
	return newChaos(st, cfg), nil
}

func parseRate(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 || f > 1 {
		return 0, errors.New("want a probability in [0,1]")
	}
	return f, nil
}

// chaosStore injects faults in front of an inner store. Safe for
// concurrent use; Close unblocks any op currently hung.
type chaosStore struct {
	inner Store
	cfg   chaosConfig
	op    atomic.Uint64

	closeOnce sync.Once
	closed    chan struct{}
}

func newChaos(inner Store, cfg chaosConfig) *chaosStore {
	return &chaosStore{inner: inner, cfg: cfg, closed: make(chan struct{})}
}

// Unwrap returns the inner store (for Sizer-style type assertions).
func (c *chaosStore) Unwrap() Store { return c.inner }

// splitmix64 is the mixing function behind the deterministic schedule —
// tiny, stateless, and well distributed even on sequential inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns the deterministic uniform [0,1) draw for (op, kind): kind
// separates the hang/error/corrupt decisions of one op so their rates stay
// independent.
func (c *chaosStore) roll(op, kind uint64) float64 {
	v := splitmix64(splitmix64(c.cfg.seed^kind*0x9e3779b97f4a7c15) ^ op)
	return float64(v>>11) / (1 << 53)
}

// pause blocks for d or until the store is closed, whichever comes first —
// hangs are bounded so abandoned-goroutine leaks under the Resilient
// timeout stay bounded too.
func (c *chaosStore) pause(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.closed:
	case <-t.C:
	}
}

// before runs the per-op fault schedule: latency, then a possible hang,
// then a possible transient error. It returns whether this op should also
// corrupt its payload (Get only acts on it).
func (c *chaosStore) before() (corrupt bool, err error) {
	op := c.op.Add(1) - 1
	c.pause(c.cfg.latency)
	if c.cfg.hangRate > 0 && c.roll(op, 1) < c.cfg.hangRate {
		c.pause(c.cfg.hangFor)
	}
	if c.cfg.errRate > 0 && c.roll(op, 2) < c.cfg.errRate {
		return false, fmt.Errorf("store: chaos: injected fault (op %d): %w", op, ErrTransient)
	}
	return c.cfg.corruptRate > 0 && c.roll(op, 3) < c.cfg.corruptRate, nil
}

func (c *chaosStore) Get(key Key) (*Artifact, error) {
	damage, err := c.before()
	if err != nil {
		return nil, err
	}
	a, err := c.inner.Get(key)
	if err != nil || !damage {
		return a, err
	}
	// Deliver what a rotten disk would: the real payload pushed through the
	// codec with its tail torn off, so the caller sees the same typed
	// ErrCorrupt every other corruption source funnels to.
	data := EncodeArtifact(key, a)
	if _, _, derr := DecodeArtifact(data[:len(data)-1]); derr != nil {
		return nil, fmt.Errorf("store: chaos: injected corruption on %s: %w", key, derr)
	}
	return nil, corrupt("chaos: injected corruption on %s", key)
}

func (c *chaosStore) Put(key Key, a *Artifact) error {
	if _, err := c.before(); err != nil {
		return err
	}
	return c.inner.Put(key, a)
}

func (c *chaosStore) Delete(key Key) error {
	if _, err := c.before(); err != nil {
		return err
	}
	return c.inner.Delete(key)
}

// Len and Close pass through unfaulted: they are control-plane calls the
// stats paths rely on, not the data plane under test.
func (c *chaosStore) Len() (int, error) { return c.inner.Len() }

func (c *chaosStore) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}
