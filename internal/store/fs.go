package store

import (
	"errors"
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

func init() {
	Register("fs", func(u *url.URL) (Store, error) {
		// fs:///abs/path has an empty host; fs://rel/path puts the first
		// segment in Host — accept both so relative dirs work in tests.
		path := u.Path
		if u.Host != "" {
			path = filepath.Join(u.Host, strings.TrimPrefix(u.Path, "/"))
		}
		if path == "" {
			return nil, errors.New("store: fs URL has no path")
		}
		return openFS(path, u.Query())
	})
}

// artExt names on-disk artifact entries: "<key>.art".
const artExt = ".art"

// fsStore is the on-disk backend: one file per entry under a flat
// directory, named by the key's hex form. Writes go through a temp file in
// the same directory plus rename, so readers — including other processes
// sharing the directory — only ever observe complete entries. Eviction is
// size-bounded and oldest-mtime-first.
type fsStore struct {
	dir      string
	maxBytes int64 // 0 = unbounded

	// evictMu serializes this process's eviction scans; Get/Put/Delete on
	// individual entries need no lock because the filesystem rename/unlink
	// operations are themselves atomic.
	evictMu sync.Mutex
	closed  bool
	mu      sync.Mutex // guards closed
}

// openFS opens (creating if needed) the directory-backed store at path.
// Recognized query parameters:
//
//	max_bytes  total on-disk budget in bytes; oldest entries are evicted
//	           after each write that pushes past it (0 or absent = unbounded)
func openFS(path string, q url.Values) (Store, error) {
	for param := range q {
		if param != "max_bytes" {
			return nil, fmt.Errorf("store: fs: unknown parameter %q", param)
		}
	}
	var maxBytes int64
	if v := q.Get("max_bytes"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("store: fs: bad max_bytes %q", v)
		}
		maxBytes = n
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: fs: %w", err)
	}
	return &fsStore{dir: path, maxBytes: maxBytes}, nil
}

func (s *fsStore) checkClosed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: fs: use after Close")
	}
	return nil
}

func (s *fsStore) entryPath(key Key) string {
	return filepath.Join(s.dir, key.String()+artExt)
}

func (s *fsStore) Get(key Key) (*Artifact, error) {
	if err := s.checkClosed(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.entryPath(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: fs: read %s: %w", key, err)
	}
	gotKey, a, err := DecodeArtifact(data)
	if err == nil && gotKey != key {
		err = corrupt("entry %s holds key %s", key, gotKey)
	}
	if err != nil {
		// Drop the bad entry so the next solve's write starts clean; a
		// failure to remove is irrelevant — the caller already treats this
		// as a miss.
		os.Remove(s.entryPath(key))
		return nil, fmt.Errorf("store: fs: entry %s: %w", key, err)
	}
	return a, nil
}

func (s *fsStore) Put(key Key, a *Artifact) error {
	if err := s.checkClosed(); err != nil {
		return err
	}
	data := EncodeArtifact(key, a)
	// Temp file in the target directory (not os.TempDir) so the final
	// rename never crosses filesystems and stays atomic.
	tmp, err := os.CreateTemp(s.dir, "put-*"+artExt+".tmp")
	if err != nil {
		return fmt.Errorf("store: fs: write %s: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: fs: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: fs: write %s: %w", key, err)
	}
	if err := os.Rename(tmpName, s.entryPath(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: fs: write %s: %w", key, err)
	}
	if s.maxBytes > 0 {
		s.evict(key)
	}
	return nil
}

// evict removes oldest-mtime entries until the directory fits maxBytes,
// sparing the just-written key so a single oversized budget pass never
// deletes the entry the caller came to store.
func (s *fsStore) evict(justWrote Key) {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	type ent struct {
		name  string
		size  int64
		mtime int64
	}
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var ents []ent
	var total int64
	for _, de := range dirents {
		if !strings.HasSuffix(de.Name(), artExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a delete
		}
		ents = append(ents, ent{de.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].mtime < ents[j].mtime })
	spare := justWrote.String() + artExt
	for _, e := range ents {
		if total <= s.maxBytes {
			break
		}
		if e.name == spare {
			continue
		}
		if os.Remove(filepath.Join(s.dir, e.name)) == nil {
			total -= e.size
		}
	}
}

func (s *fsStore) Delete(key Key) error {
	if err := s.checkClosed(); err != nil {
		return err
	}
	err := os.Remove(s.entryPath(key))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: fs: delete %s: %w", key, err)
	}
	return nil
}

func (s *fsStore) Len() (int, error) {
	if err := s.checkClosed(); err != nil {
		return 0, err
	}
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: fs: %w", err)
	}
	n := 0
	for _, de := range dirents {
		if strings.HasSuffix(de.Name(), artExt) {
			n++
		}
	}
	return n, nil
}

func (s *fsStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// SizeBytes reports the total size of the entries on disk — exported for
// the CLI's -stats output and CI benchmarks; not part of the Store
// interface because not every backend can answer cheaply.
func (s *fsStore) SizeBytes() (int64, error) {
	if err := s.checkClosed(); err != nil {
		return 0, err
	}
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: fs: %w", err)
	}
	var total int64
	for _, de := range dirents {
		if !strings.HasSuffix(de.Name(), artExt) {
			continue
		}
		if info, err := de.Info(); err == nil {
			total += info.Size()
		}
	}
	return total, nil
}

// Sizer is implemented by backends that can report their total stored
// bytes (the fs backend does). Callers type-assert through Unwrap-style
// wrappers as needed.
type Sizer interface {
	SizeBytes() (int64, error)
}
