package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestOpenDispatch(t *testing.T) {
	dir := t.TempDir()
	cases := []string{
		"fs://" + dir,
		dir, // bare path shorthand
		"mem://",
		"mem://?max_entries=8",
	}
	for _, rawurl := range cases {
		s, err := Open(rawurl)
		if err != nil {
			t.Errorf("Open(%q): %v", rawurl, err)
			continue
		}
		s.Close()
	}
	if _, err := Open("redis://localhost"); err == nil {
		t.Error("Open with unregistered scheme succeeded")
	}
	if _, err := Open("fs://" + dir + "?bogus=1"); err == nil {
		t.Error("Open with unknown fs parameter succeeded")
	}
	if _, err := Open("mem://?max_entries=no"); err == nil {
		t.Error("Open with bad max_entries succeeded")
	}
}

func TestSchemesRegistered(t *testing.T) {
	got := Schemes()
	want := map[string]bool{"fs": false, "mem": false}
	for _, s := range got {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for s, seen := range want {
		if !seen {
			t.Errorf("scheme %q not registered (got %v)", s, got)
		}
	}
}

// storeBehavior exercises the common Get/Put/Delete/Len contract against
// any backend.
func storeBehavior(t *testing.T, s Store) {
	t.Helper()
	key := testKey(1)
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: err=%v, want ErrNotFound", err)
	}
	want := testArtifact()
	if err := s.Put(key, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Get round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1, nil", n, err)
	}
	// Overwrite upgrades in place.
	want2 := testArtifact()
	want2.Stats.MatVecs = 999
	if err := s.Put(key, want2); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	if got, err := s.Get(key); err != nil || got.Stats.MatVecs != 999 {
		t.Errorf("overwrite not visible: got %+v, err %v", got, err)
	}
	if n, _ := s.Len(); n != 1 {
		t.Errorf("Len after overwrite = %d, want 1", n)
	}
	if err := s.Delete(key); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete(key); err != nil {
		t.Fatalf("Delete of absent key: %v, want nil", err)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: err=%v, want ErrNotFound", err)
	}
	if n, _ := s.Len(); n != 0 {
		t.Errorf("Len after Delete = %d, want 0", n)
	}
}

func TestFSBehavior(t *testing.T) {
	s, err := Open("fs://" + t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storeBehavior(t, s)
}

func TestMemBehavior(t *testing.T) {
	s, err := Open("mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storeBehavior(t, s)
}

func TestFSPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	key := testKey(4)
	want := testArtifact()

	s1, err := Open("fs://" + dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(key, want); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// A fresh handle on the same directory — a "new process" — sees the
	// entry.
	s2, err := Open("fs://" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get(key)
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("entry changed across reopen")
	}
}

func TestFSCorruptEntryIsMissPlusError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open("fs://" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := testKey(7)
	if err := s.Put(key, testArtifact()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.String()+artExt)

	corruptions := map[string]func([]byte) []byte{
		"truncated":        func(b []byte) []byte { return b[:len(b)/2] },
		"version flipped":  func(b []byte) []byte { b[4] ^= 0xff; return b },
		"trailing garbage": func(b []byte) []byte { return append(b, 0xca, 0xfe) },
		"wrong key": func(b []byte) []byte {
			return EncodeArtifact(testKey(8), testArtifact())
		},
	}
	for name, mut := range corruptions {
		if err := s.Put(key, testArtifact()); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mut(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Get err=%v, want ErrCorrupt", name, err)
		}
		// The bad entry must be dropped so the next read is a clean miss.
		if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
			t.Errorf("%s: second Get err=%v, want ErrNotFound (entry not dropped)", name, err)
		}
	}
}

func TestFSEviction(t *testing.T) {
	dir := t.TempDir()
	// Budget sized to hold roughly two entries of this artifact's size.
	one := int64(len(EncodeArtifact(testKey(0), testArtifact())))
	s, err := Open(fmt.Sprintf("fs://%s?max_bytes=%d", dir, 2*one+one/2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := []Key{testKey(10), testKey(20), testKey(30), testKey(40)}
	for _, k := range keys {
		if err := s.Put(k, testArtifact()); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n > 2 {
		t.Errorf("Len after eviction = %d, want <= 2", n)
	}
	// The most recent write always survives.
	if _, err := s.Get(keys[len(keys)-1]); err != nil {
		t.Errorf("most recent entry evicted: %v", err)
	}
	if sz, err := s.(Sizer).SizeBytes(); err != nil || sz > 2*one+one/2 {
		t.Errorf("SizeBytes = %d, %v; want <= budget %d", sz, err, 2*one+one/2)
	}
}

func TestFSConcurrentAccess(t *testing.T) {
	s, err := Open("fs://" + t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := testKey(byte(w % 3)) // overlap keys across goroutines
			for i := 0; i < 20; i++ {
				if err := s.Put(key, testArtifact()); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := s.Get(key); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("Get: %v", err)
					return
				}
				if i%7 == 0 {
					if err := s.Delete(key); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestMemEviction(t *testing.T) {
	s, err := Open("mem://?max_entries=2")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := byte(0); i < 4; i++ {
		if err := s.Put(testKey(i), testArtifact()); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s.Len(); n != 2 {
		t.Errorf("Len = %d, want 2", n)
	}
	if _, err := s.Get(testKey(3)); err != nil {
		t.Errorf("most recent entry evicted: %v", err)
	}
	if _, err := s.Get(testKey(0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest entry survived: err=%v", err)
	}
}

func TestMemCorruptEntry(t *testing.T) {
	s := NewMem(0)
	defer s.Close()
	key := testKey(2)
	if err := s.Put(key, testArtifact()); err != nil {
		t.Fatal(err)
	}
	if !s.(*memStore).corruptEntry(key, []byte("not an entry")) {
		t.Fatal("corruptEntry found no entry")
	}
	if _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get err=%v, want ErrCorrupt", err)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Get err=%v, want ErrNotFound (entry not dropped)", err)
	}
}

func TestCountedStats(t *testing.T) {
	var observed []string
	c := NewCounted(NewMem(0), func(op string, seconds float64) {
		if seconds < 0 {
			t.Errorf("negative duration for %s", op)
		}
		observed = append(observed, op)
	})
	defer c.Close()
	key := testKey(6)

	if _, err := c.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get: %v", err)
	}
	if err := c.Put(key, testArtifact()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(key); err != nil {
		t.Fatal(err)
	}
	c.Unwrap().(*memStore).corruptEntry(key, []byte("junk"))
	if _, err := c.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupt entry: %v", err)
	}
	if err := c.Delete(key); err != nil {
		t.Fatal(err)
	}

	got := c.Stats()
	want := Stats{Hits: 1, Misses: 1, Puts: 1, Errors: 1}
	if got != want {
		t.Errorf("Stats = %+v, want %+v", got, want)
	}
	if r := got.HitRate(); r != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", r)
	}
	wantOps := []string{"get", "put", "get", "get", "delete"}
	if !reflect.DeepEqual(observed, wantOps) {
		t.Errorf("observed ops = %v, want %v", observed, wantOps)
	}
}

func TestCountedZeroTraffic(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Errorf("HitRate with no traffic = %v, want 0", r)
	}
}
