package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/retry"
)

// BreakerState is the circuit breaker's position: Closed (traffic flows),
// Open (backend declared down, ops fast-fail with ErrUnavailable) or
// HalfOpen (the probe window — exactly one trial op is admitted).
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// ResilienceOptions tunes the Resilient wrapper. The zero value means:
// 2s op timeout, 2 retries with 20ms→250ms full-jitter backoff, breaker
// tripping after 5 consecutive failures and probing every 5s.
type ResilienceOptions struct {
	// OpTimeout bounds each attempt of one backend operation; an attempt
	// that overruns is abandoned (its goroutine parks until the backend
	// returns) and counted as a transient failure. < 0 disables.
	OpTimeout time.Duration
	// Retries is the number of extra attempts after a transient failure
	// (total attempts = Retries+1). < 0 disables retrying.
	Retries int
	// RetryBase/RetryCap parameterize the full-jitter backoff between
	// attempts (see retry.Policy).
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold trips the breaker to Open after this many
	// consecutive failed operations (retries exhausted). < 0 disables the
	// breaker.
	BreakerThreshold int
	// BreakerProbe is how long the breaker stays Open before admitting a
	// single half-open probe.
	BreakerProbe time.Duration
	// Logf, when non-nil, receives one line per state change and dropped
	// Put — the "logged metric" degraded mode speaks through.
	Logf func(format string, args ...any)
}

func (o ResilienceOptions) withDefaults() ResilienceOptions {
	if o.OpTimeout == 0 {
		o.OpTimeout = 2 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 20 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 250 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerProbe <= 0 {
		o.BreakerProbe = 5 * time.Second
	}
	return o
}

// ResilienceStats is a point-in-time snapshot of a Resilient store's
// health machinery, rendered into /metrics, /readyz and the CLI's -stats.
type ResilienceStats struct {
	// State is the breaker position; Degraded is state != closed.
	State    BreakerState
	Degraded bool
	// ConsecutiveFailures is the current failed-op streak feeding the
	// breaker threshold.
	ConsecutiveFailures int
	// Retries counts extra attempts spent on transient failures; Timeouts
	// counts attempts abandoned at OpTimeout; FastFails counts ops refused
	// while the breaker was open; PutDrops counts writes that exhausted
	// their retries and were dropped (the cache runs cold, nothing breaks).
	Retries   int64
	Timeouts  int64
	FastFails int64
	PutDrops  int64
	// Trips counts closed→open transitions; Recoveries counts returns to
	// closed from open/half-open.
	Trips      int64
	Recoveries int64
	// LastError is the most recent backend failure ("" if none yet);
	// LastFailure/LastSuccess are its and the last healthy op's times.
	LastError   string
	LastFailure time.Time
	LastSuccess time.Time
}

// Resilient wraps a Store with the fault-tolerance layer every network
// backend plugs into: per-attempt timeouts, capped full-jitter retries for
// transient errors, and a consecutive-failure circuit breaker that trips
// the tier-2 store out of the request path — callers run cache-only
// (tier 1) behind fast ErrUnavailable failures instead of stalling solves
// behind a dead backend — then half-opens on a probe interval and closes
// again on the first healthy op.
//
// Classification: ErrNotFound and ErrCorrupt are healthy responses (the
// backend answered) — they reset the failure streak and are returned
// unretried. Only errors marked transient (ErrTransient, timeouts) are
// retried; any other failure is final for the call but still counts
// toward the breaker.
type Resilient struct {
	inner Store
	opts  ResilienceOptions
	pol   retry.Policy

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probing     bool
	lastErr     string
	lastFailAt  time.Time
	lastOKAt    time.Time

	retries    atomic.Int64
	timeouts   atomic.Int64
	fastFails  atomic.Int64
	putDrops   atomic.Int64
	trips      atomic.Int64
	recoveries atomic.Int64

	// Injectable time for deterministic breaker tests; real clock otherwise.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
	after func(d time.Duration) <-chan time.Time
}

// NewResilient wraps inner. See ResilienceOptions for the zero-value
// defaults.
func NewResilient(inner Store, opts ResilienceOptions) *Resilient {
	opts = opts.withDefaults()
	return &Resilient{
		inner: inner,
		opts:  opts,
		pol:   retry.Policy{Base: opts.RetryBase, Cap: opts.RetryCap},
		now:   time.Now,
		sleep: retry.Sleep,
		after: time.After,
	}
}

// Unwrap returns the wrapped store (for Sizer-style type assertions).
func (r *Resilient) Unwrap() Store { return r.inner }

// State returns the breaker's current position.
func (r *Resilient) State() BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Healthy reports whether the backend is fully in the request path
// (breaker closed).
func (r *Resilient) Healthy() bool { return r.State() == BreakerClosed }

// Stats snapshots the resilience counters and breaker state.
func (r *Resilient) Stats() ResilienceStats {
	r.mu.Lock()
	s := ResilienceStats{
		State:               r.state,
		Degraded:            r.state != BreakerClosed,
		ConsecutiveFailures: r.consecFails,
		LastError:           r.lastErr,
		LastFailure:         r.lastFailAt,
		LastSuccess:         r.lastOKAt,
	}
	r.mu.Unlock()
	s.Retries = r.retries.Load()
	s.Timeouts = r.timeouts.Load()
	s.FastFails = r.fastFails.Load()
	s.PutDrops = r.putDrops.Load()
	s.Trips = r.trips.Load()
	s.Recoveries = r.recoveries.Load()
	return s
}

func (r *Resilient) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// admit decides whether an operation may reach the backend: always when
// closed; when open, only once the probe interval has elapsed (the op
// becomes the half-open probe); when half-open, only if no probe is
// already in flight.
func (r *Resilient) admit() bool {
	if r.opts.BreakerThreshold < 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if r.now().Sub(r.openedAt) < r.opts.BreakerProbe {
			return false
		}
		r.state = BreakerHalfOpen
		r.probing = true
		return true
	default: // BreakerHalfOpen
		if r.probing {
			return false
		}
		r.probing = true
		return true
	}
}

// onHealthy records a backend that answered (success, not-found, corrupt):
// the streak resets and an open/half-open breaker closes.
func (r *Resilient) onHealthy() {
	r.mu.Lock()
	recovered := r.state != BreakerClosed
	r.state = BreakerClosed
	r.consecFails = 0
	r.probing = false
	r.lastOKAt = r.now()
	r.mu.Unlock()
	if recovered {
		r.recoveries.Add(1)
		r.logf("store: breaker closed: backend recovered")
	}
}

// onFailure records a failed operation (retries exhausted): the streak
// grows, a half-open probe reopens the breaker, and a closed breaker at
// threshold trips.
func (r *Resilient) onFailure(err error) {
	r.mu.Lock()
	r.consecFails++
	r.lastErr = err.Error()
	r.lastFailAt = r.now()
	tripped := false
	switch r.state {
	case BreakerHalfOpen:
		r.state = BreakerOpen
		r.openedAt = r.now()
		r.probing = false
	case BreakerClosed:
		if r.opts.BreakerThreshold > 0 && r.consecFails >= r.opts.BreakerThreshold {
			r.state = BreakerOpen
			r.openedAt = r.now()
			tripped = true
		}
	}
	fails := r.consecFails
	r.mu.Unlock()
	if tripped {
		r.trips.Add(1)
		r.logf("store: breaker tripped open after %d consecutive failures (last: %v); running cache-only, probing every %v",
			fails, err, r.opts.BreakerProbe)
	}
}

// attempt runs one bounded try of f. On timeout the backend call is
// abandoned, not cancelled — the Store interface has no context — so the
// goroutine parks until the backend returns; hangs must therefore be
// bounded by the backend (the chaos driver bounds its own).
func (r *Resilient) attempt(opName string, f func() (any, error)) (any, error) {
	if r.opts.OpTimeout <= 0 {
		return f()
	}
	type res struct {
		v   any
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := f()
		ch <- res{v, err}
	}()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-r.after(r.opts.OpTimeout):
		r.timeouts.Add(1)
		return nil, fmt.Errorf("store: resilient: %s timed out after %v (backend abandoned): %w",
			opName, r.opts.OpTimeout, ErrTransient)
	}
}

// run is the common op path: breaker admission, then up to Retries+1
// bounded attempts with full-jitter backoff between transient failures.
func (r *Resilient) run(opName string, f func() (any, error)) (any, error) {
	if !r.admit() {
		r.fastFails.Add(1)
		return nil, fmt.Errorf("store: resilient: %s: %w", opName, ErrUnavailable)
	}
	var v any
	var err error
	for attempt := 0; ; attempt++ {
		v, err = r.attempt(opName, f)
		if err == nil || !backendFailure(err) {
			r.onHealthy()
			return v, err
		}
		if attempt >= r.opts.Retries || !retry.Transient(err) {
			break
		}
		r.retries.Add(1)
		//envlint:ignore ctxflow Store ops take no ctx by design; the backoff sleep has nothing to inherit
		if serr := r.sleep(context.Background(), r.pol.Delay(attempt)); serr != nil {
			break
		}
	}
	r.onFailure(err)
	return v, err
}

// backendFailure reports whether err indicts the backend. ErrNotFound and
// ErrCorrupt are definitive answers from a live backend, not failures.
func backendFailure(err error) bool {
	return err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrCorrupt)
}

func (r *Resilient) Get(key Key) (*Artifact, error) {
	v, err := r.run("get", func() (any, error) { return r.inner.Get(key) })
	a, _ := v.(*Artifact)
	return a, err
}

// Put writes through the same retry/breaker machinery; a write that still
// fails is dropped — counted in PutDrops and logged, because tier-2
// persistence is an accelerator, not a commitment — but the error is
// returned so instrumentation layers above can count it too.
func (r *Resilient) Put(key Key, a *Artifact) error {
	_, err := r.run("put", func() (any, error) { return nil, r.inner.Put(key, a) })
	if err != nil && backendFailure(err) {
		r.putDrops.Add(1)
		r.logf("store: dropped write %s (degraded): %v", key, err)
	}
	return err
}

func (r *Resilient) Delete(key Key) error {
	_, err := r.run("delete", func() (any, error) { return nil, r.inner.Delete(key) })
	return err
}

func (r *Resilient) Len() (int, error) {
	v, err := r.run("len", func() (any, error) { return r.inner.Len() })
	n, _ := v.(int)
	return n, err
}

func (r *Resilient) Close() error { return r.inner.Close() }
