package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/retry"
)

// fakeClock drives the breaker's probe schedule deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// flipStore is an inner store whose failure mode is a switch: when failing,
// every data op returns a transient error; otherwise it delegates to mem.
// calls counts ops that actually reached the backend.
type flipStore struct {
	inner Store
	fail  atomic.Bool
	calls atomic.Int64
}

func newFlipStore() *flipStore { return &flipStore{inner: NewMem(0)} }

func (f *flipStore) op() error {
	f.calls.Add(1)
	if f.fail.Load() {
		return fmt.Errorf("flip: backend down: %w", ErrTransient)
	}
	return nil
}

func (f *flipStore) Get(key Key) (*Artifact, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	return f.inner.Get(key)
}

func (f *flipStore) Put(key Key, a *Artifact) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Put(key, a)
}

func (f *flipStore) Delete(key Key) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Delete(key)
}

func (f *flipStore) Len() (int, error) { return f.inner.Len() }
func (f *flipStore) Close() error      { return f.inner.Close() }

// newTestResilient wires a Resilient to a fake clock and instant sleeps.
func newTestResilient(inner Store, opts ResilienceOptions, clk *fakeClock) *Resilient {
	r := NewResilient(inner, opts)
	r.now = clk.now
	r.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	return r
}

func TestResilientRetriesTransient(t *testing.T) {
	flip := newFlipStore()
	clk := newFakeClock()
	r := newTestResilient(flip, ResilienceOptions{OpTimeout: -1, Retries: 3, BreakerThreshold: -1}, clk)
	key, art := testKey(1), testArtifact()
	if err := flip.inner.Put(key, art); err != nil {
		t.Fatal(err)
	}

	// All attempts fail: the final error surfaces, retries were spent.
	flip.fail.Store(true)
	if _, err := r.Get(key); !errors.Is(err, ErrTransient) {
		t.Fatalf("Get with backend down: %v, want ErrTransient", err)
	}
	if got := r.Stats().Retries; got != 3 {
		t.Fatalf("Retries = %d, want 3", got)
	}
	if got := flip.calls.Load(); got != 4 {
		t.Fatalf("backend saw %d attempts, want 4 (1 + 3 retries)", got)
	}

	// Healthy backend: one attempt, no extra retries.
	flip.fail.Store(false)
	flip.calls.Store(0)
	if _, err := r.Get(key); err != nil {
		t.Fatalf("Get with backend up: %v", err)
	}
	if got := flip.calls.Load(); got != 1 {
		t.Fatalf("healthy Get cost %d attempts, want 1", got)
	}
}

func TestResilientFinalErrorsNotRetried(t *testing.T) {
	clk := newFakeClock()
	r := newTestResilient(NewMem(0), ResilienceOptions{OpTimeout: -1, Retries: 5, BreakerThreshold: 3}, clk)
	// ErrNotFound is a healthy answer: no retries, no breaker movement.
	for i := 0; i < 10; i++ {
		if _, err := r.Get(testKey(7)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get absent: %v, want ErrNotFound", err)
		}
	}
	st := r.Stats()
	if st.Retries != 0 || st.State != BreakerClosed || st.ConsecutiveFailures != 0 {
		t.Fatalf("misses moved the resilience machinery: %+v", st)
	}
}

func TestResilientBreakerLifecycle(t *testing.T) {
	flip := newFlipStore()
	clk := newFakeClock()
	opts := ResilienceOptions{OpTimeout: -1, Retries: -1, BreakerThreshold: 3, BreakerProbe: 10 * time.Second}
	r := newTestResilient(flip, opts, clk)
	key := testKey(1)

	// Trip: three consecutive failures open the breaker.
	flip.fail.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := r.Get(key); !errors.Is(err, ErrTransient) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if got := r.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if got := r.Stats().Trips; got != 1 {
		t.Fatalf("Trips = %d, want 1", got)
	}

	// Open: ops fast-fail with ErrUnavailable without touching the backend.
	flip.calls.Store(0)
	_, err := r.Get(key)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Get while open: %v, want ErrUnavailable", err)
	}
	if retry.Transient(err) {
		t.Fatal("ErrUnavailable classified retryable; the breaker owns the retry schedule")
	}
	if flip.calls.Load() != 0 {
		t.Fatal("open breaker let an op through to the backend")
	}
	if r.Stats().FastFails == 0 {
		t.Fatal("fast-fail not counted")
	}

	// Failed probe: past the interval one op is admitted, fails, reopens.
	clk.advance(11 * time.Second)
	if _, err := r.Get(key); !errors.Is(err, ErrTransient) {
		t.Fatalf("probe: %v, want the backend's transient error", err)
	}
	if flip.calls.Load() != 1 {
		t.Fatalf("probe reached backend %d times, want 1", flip.calls.Load())
	}
	if got := r.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}

	// Recovery: backend healed, probe succeeds, breaker closes.
	flip.fail.Store(false)
	clk.advance(11 * time.Second)
	if _, err := r.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("healed probe: %v, want the backend's ErrNotFound", err)
	}
	st := r.Stats()
	if st.State != BreakerClosed || st.Recoveries != 1 || st.Degraded {
		t.Fatalf("after recovery: %+v", st)
	}
}

func TestResilientHalfOpenSingleFlight(t *testing.T) {
	release := make(chan struct{})
	inner := &blockingStore{release: release}
	clk := newFakeClock()
	opts := ResilienceOptions{OpTimeout: -1, Retries: -1, BreakerThreshold: 1, BreakerProbe: time.Second}
	r := newTestResilient(inner, opts, clk)

	inner.failNext.Store(true)
	r.Get(testKey(1)) // trip (threshold 1)
	if r.State() != BreakerOpen {
		t.Fatal("breaker did not trip")
	}
	inner.failNext.Store(false)
	clk.advance(2 * time.Second)

	// First op becomes the half-open probe and parks on the backend...
	probeDone := make(chan error, 1)
	go func() {
		_, err := r.Get(testKey(1))
		probeDone <- err
	}()
	inner.entered.await(t)
	// ...every op meanwhile is refused without queueing behind it.
	if _, err := r.Get(testKey(1)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("second op during probe: %v, want ErrUnavailable", err)
	}
	close(release)
	if err := <-probeDone; !errors.Is(err, ErrNotFound) {
		t.Fatalf("probe result: %v, want ErrNotFound", err)
	}
	if r.State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
}

// blockingStore fails one op on demand, then parks Gets until released —
// scaffolding for the single-flight and timeout tests.
type blockingStore struct {
	failNext atomic.Bool
	release  chan struct{}
	entered  signalOnce
}

type signalOnce struct {
	once sync.Once
	ch   chan struct{}
	mu   sync.Mutex
}

func (s *signalOnce) fire() {
	s.mu.Lock()
	if s.ch == nil {
		s.ch = make(chan struct{})
	}
	s.mu.Unlock()
	s.once.Do(func() { close(s.ch) })
}

func (s *signalOnce) await(t *testing.T) {
	t.Helper()
	s.mu.Lock()
	if s.ch == nil {
		s.ch = make(chan struct{})
	}
	ch := s.ch
	s.mu.Unlock()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked op never reached the backend")
	}
}

func (b *blockingStore) Get(key Key) (*Artifact, error) {
	if b.failNext.Load() {
		return nil, fmt.Errorf("blocking: %w", ErrTransient)
	}
	b.entered.fire()
	<-b.release
	return nil, ErrNotFound
}

func (b *blockingStore) Put(key Key, a *Artifact) error { return nil }
func (b *blockingStore) Delete(key Key) error           { return nil }
func (b *blockingStore) Len() (int, error)              { return 0, nil }
func (b *blockingStore) Close() error                   { return nil }

func TestResilientOpTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	inner := &blockingStore{release: release}
	r := NewResilient(inner, ResilienceOptions{OpTimeout: 20 * time.Millisecond, Retries: -1, BreakerThreshold: -1})
	start := time.Now()
	_, err := r.Get(testKey(1))
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("timed-out Get: %v, want ErrTransient", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timed-out Get took %v", d)
	}
	if got := r.Stats().Timeouts; got != 1 {
		t.Fatalf("Timeouts = %d, want 1", got)
	}
}

func TestResilientPutDropCounted(t *testing.T) {
	flip := newFlipStore()
	flip.fail.Store(true)
	clk := newFakeClock()
	var logged atomic.Int64
	opts := ResilienceOptions{
		OpTimeout: -1, Retries: 1, BreakerThreshold: -1,
		Logf: func(string, ...any) { logged.Add(1) },
	}
	r := newTestResilient(flip, opts, clk)
	if err := r.Put(testKey(1), testArtifact()); !errors.Is(err, ErrTransient) {
		t.Fatalf("Put with backend down: %v", err)
	}
	if got := r.Stats().PutDrops; got != 1 {
		t.Fatalf("PutDrops = %d, want 1", got)
	}
	if logged.Load() == 0 {
		t.Fatal("dropped Put not logged")
	}
}

// TestResilientBreakerStormRace is the -race gate on the breaker state
// machine: concurrent Get/Put storms across every transition — closed →
// open under a failing backend, fast-fails while open, a failed half-open
// probe, then recovery to closed — with the probe schedule driven by a
// fake clock so the phases are deterministic.
func TestResilientBreakerStormRace(t *testing.T) {
	flip := newFlipStore()
	clk := newFakeClock()
	opts := ResilienceOptions{OpTimeout: -1, Retries: 1, BreakerThreshold: 4, BreakerProbe: time.Minute}
	r := newTestResilient(flip, opts, clk)
	key, art := testKey(3), testArtifact()
	flip.inner.Put(key, art)

	storm := func(n, workers int) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if (i+w)%3 == 0 {
						r.Put(key, art)
					} else {
						r.Get(key)
					}
					r.Stats() // snapshots race against the ops
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 1: backend down — the storm must trip the breaker exactly once
	// and leave it open.
	flip.fail.Store(true)
	storm(50, 8)
	st := r.Stats()
	if st.State != BreakerOpen || st.Trips != 1 {
		t.Fatalf("after failing storm: state=%v trips=%d, want open/1", st.State, st.Trips)
	}
	if st.FastFails == 0 {
		t.Fatal("open breaker produced no fast-fails under storm")
	}

	// Phase 2: probe while still down — breaker reopens, no recovery.
	clk.advance(2 * time.Minute)
	storm(20, 8)
	if st := r.Stats(); st.State != BreakerOpen || st.Recoveries != 0 {
		t.Fatalf("after failed-probe storm: %+v", st)
	}

	// Phase 3: backend healed — the next probe closes the breaker and the
	// storm runs clean.
	flip.fail.Store(false)
	clk.advance(2 * time.Minute)
	storm(50, 8)
	st = r.Stats()
	if st.State != BreakerClosed || st.Recoveries != 1 {
		t.Fatalf("after recovery storm: state=%v recoveries=%d, want closed/1", st.State, st.Recoveries)
	}
	if _, err := r.Get(key); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
}

// TestResilientOverChaosSchedule pins the integration the chaos CI tier
// relies on: a Resilient over a seeded chaos store retries through the
// injected transient faults, so callers see clean results despite a 30%
// error rate.
func TestResilientOverChaosSchedule(t *testing.T) {
	inner, err := Open("chaos://mem://?err_rate=0.3&seed=11")
	if err != nil {
		t.Fatal(err)
	}
	r := NewResilient(inner, ResilienceOptions{
		OpTimeout: -1, Retries: 4, RetryBase: time.Microsecond, RetryCap: 10 * time.Microsecond,
		BreakerThreshold: -1,
	})
	defer r.Close()
	key, art := testKey(8), testArtifact()
	for i := 0; i < 32; i++ {
		if err := r.Put(key, art); err != nil {
			t.Fatalf("Put %d through resilient chaos: %v", i, err)
		}
		if _, err := r.Get(key); err != nil {
			t.Fatalf("Get %d through resilient chaos: %v", i, err)
		}
	}
	if r.Stats().Retries == 0 {
		t.Fatal("a 30%% fault rate cost zero retries — chaos not injecting")
	}
}
