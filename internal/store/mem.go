package store

import (
	"container/list"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"sync"
)

func init() {
	Register("mem", func(u *url.URL) (Store, error) {
		q := u.Query()
		for param := range q {
			if param != "max_entries" {
				return nil, fmt.Errorf("store: mem: unknown parameter %q", param)
			}
		}
		max := 0
		if v := q.Get("max_entries"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("store: mem: bad max_entries %q", v)
			}
			max = n
		}
		return NewMem(max), nil
	})
}

// memStore is the in-process backend: an LRU map from key to the entry's
// encoded bytes. Storing the wire form rather than the live Artifact keeps
// the backend honest — Get exercises the same decode path as the fs store,
// and callers can never alias a stored slice. Useful for tests and as a
// shared second tier across Sessions in one process.
type memStore struct {
	max int // 0 = unbounded

	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // of *memEntry; front = most recently used
	closed  bool
}

type memEntry struct {
	key  Key
	data []byte
}

// NewMem returns an in-process store holding at most maxEntries entries
// (0 = unbounded), evicting least-recently-used first. Equivalent to
// Open("mem://?max_entries=N").
func NewMem(maxEntries int) Store {
	return &memStore{
		max:     maxEntries,
		entries: map[Key]*list.Element{},
		lru:     list.New(),
	}
}

func (s *memStore) Get(key Key) (*Artifact, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("store: mem: use after Close")
	}
	el, ok := s.entries[key]
	var data []byte
	if ok {
		s.lru.MoveToFront(el)
		data = el.Value.(*memEntry).data
	}
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	gotKey, a, err := DecodeArtifact(data)
	if err == nil && gotKey != key {
		err = corrupt("entry %s holds key %s", key, gotKey)
	}
	if err != nil {
		s.Delete(key)
		return nil, fmt.Errorf("store: mem: entry %s: %w", key, err)
	}
	return a, nil
}

func (s *memStore) Put(key Key, a *Artifact) error {
	data := EncodeArtifact(key, a)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: mem: use after Close")
	}
	if el, ok := s.entries[key]; ok {
		el.Value.(*memEntry).data = data
		s.lru.MoveToFront(el)
		return nil
	}
	s.entries[key] = s.lru.PushFront(&memEntry{key: key, data: data})
	for s.max > 0 && s.lru.Len() > s.max {
		back := s.lru.Back()
		delete(s.entries, back.Value.(*memEntry).key)
		s.lru.Remove(back)
	}
	return nil
}

func (s *memStore) Delete(key Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: mem: use after Close")
	}
	if el, ok := s.entries[key]; ok {
		delete(s.entries, key)
		s.lru.Remove(el)
	}
	return nil
}

func (s *memStore) Len() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("store: mem: use after Close")
	}
	return s.lru.Len(), nil
}

func (s *memStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.entries = nil
	s.lru = list.New()
	return nil
}

// CorruptMemEntry overwrites the stored bytes for key when s is (or wraps
// nothing but) a mem store — test support for exercising corrupt-entry
// handling from other packages without reaching into a directory. Returns
// false when s is not a mem store or holds no entry at key.
func CorruptMemEntry(s Store, key Key, data []byte) bool {
	m, ok := s.(*memStore)
	if !ok {
		return false
	}
	return m.corruptEntry(key, data)
}

// corruptEntry overwrites the stored bytes for key — test hook for
// exercising the corrupt-entry path without reaching into a directory.
func (s *memStore) corruptEntry(key Key, data []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if ok {
		el.Value.(*memEntry).data = data
	}
	return ok
}
