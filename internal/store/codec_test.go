package store

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/solver"
)

func testKey(seed byte) Key {
	var k Key
	for i := range k.Graph {
		k.Graph[i] = seed + byte(i)
	}
	for i := range k.Opts {
		k.Opts[i] = seed ^ byte(i*7)
	}
	return k
}

func testArtifact() *Artifact {
	return &Artifact{
		N:          4,
		HasFiedler: true,
		Fiedler:    []float64{-0.5, -0.1, 0.2, 0.4},
		Stats: solver.Stats{
			Scheme:        "multilevel-rqi",
			Lambda:        0.123456789,
			Residual:      1e-9,
			MatVecs:       42,
			RQIIterations: 3,
			JacobiSweeps:  7,
			Levels:        2,
			CoarsestN:     10,
			Workers:       4,
			Converged:     true,
		},
		HasSpectral: true,
		Perm:        []int32{2, 0, 3, 1},
		Esize:       17,
		Reversed:    true,
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	key := testKey(3)
	want := testArtifact()
	data := EncodeArtifact(key, want)
	gotKey, got, err := DecodeArtifact(data)
	if err != nil {
		t.Fatalf("DecodeArtifact: %v", err)
	}
	if gotKey != key {
		t.Errorf("key round-trip mismatch: got %s want %s", gotKey, key)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("artifact round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Encoding must be deterministic: same input, same bytes.
	if data2 := EncodeArtifact(key, want); !reflect.DeepEqual(data, data2) {
		t.Error("EncodeArtifact is not deterministic")
	}
}

func TestArtifactRoundTripPartial(t *testing.T) {
	cases := map[string]*Artifact{
		"fiedler only": {
			N: 3, HasFiedler: true,
			Fiedler: []float64{0.1, 0.2, 0.3},
			Stats:   solver.Stats{Scheme: "lanczos", Converged: true},
		},
		"neither stage": {N: 5},
		"empty graph":   {N: 0, HasFiedler: true, HasSpectral: true, Fiedler: []float64{}, Perm: []int32{}},
	}
	for name, want := range cases {
		data := EncodeArtifact(testKey(9), want)
		_, got, err := DecodeArtifact(data)
		if err != nil {
			t.Errorf("%s: DecodeArtifact: %v", name, err)
			continue
		}
		// Decoder materializes empty slices as non-nil; normalize for the
		// comparison since callers only index them.
		if want.Fiedler == nil && len(got.Fiedler) == 0 {
			got.Fiedler = nil
		}
		if want.Perm == nil && len(got.Perm) == 0 {
			got.Perm = nil
		}
		if len(want.Fiedler) == 0 {
			want.Fiedler, got.Fiedler = nil, nil
		}
		if len(want.Perm) == 0 {
			want.Perm, got.Perm = nil, nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round-trip mismatch:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestDecodeArtifactCorruption is the satellite-required corruption matrix:
// every malformed variant must fail with ErrCorrupt and never panic.
func TestDecodeArtifactCorruption(t *testing.T) {
	valid := EncodeArtifact(testKey(1), testArtifact())

	mutate := func(f func(b []byte) []byte) []byte {
		cp := append([]byte(nil), valid...)
		return f(cp)
	}
	cases := map[string][]byte{
		"empty":          {},
		"magic only":     valid[:4],
		"truncated head": valid[:5],
		"truncated body": valid[:len(valid)/2],
		"one byte short": valid[:len(valid)-1],
		"trailing garbage": append(append([]byte(nil), valid...),
			0xde, 0xad),
		"bad magic": mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"flipped version byte": mutate(func(b []byte) []byte {
			b[4] ^= 0xff
			return b
		}),
		"future version": mutate(func(b []byte) []byte {
			b[4] = formatVersion + 1
			return b
		}),
		"wrong kind": mutate(func(b []byte) []byte {
			b[5] = kindGraph
			return b
		}),
		"unknown flags": mutate(func(b []byte) []byte {
			// flags byte sits after header(6) + key(64) + n(8)
			b[6+64+8] |= 0x80
			return b
		}),
		"huge length prefix": mutate(func(b []byte) []byte {
			// scheme string length field immediately follows flags
			off := 6 + 64 + 8 + 1
			for i := 0; i < 4; i++ {
				b[off+i] = 0xff
			}
			return b
		}),
	}
	for name, data := range cases {
		_, _, err := DecodeArtifact(data)
		if err == nil {
			t.Errorf("%s: DecodeArtifact accepted malformed input", name)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	want := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}})
	got, err := DecodeGraph(EncodeGraph(want))
	if err != nil {
		t.Fatalf("DecodeGraph: %v", err)
	}
	if !reflect.DeepEqual(got.Xadj, want.Xadj) || !reflect.DeepEqual(got.Adj, want.Adj) {
		t.Error("graph round-trip mismatch")
	}
	if graph.FingerprintOf(got) != graph.FingerprintOf(want) {
		t.Error("round-tripped graph changed fingerprint")
	}
}

func TestDecodeGraphCorruption(t *testing.T) {
	valid := EncodeGraph(graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}))
	cases := map[string][]byte{
		"truncated":        valid[:len(valid)-3],
		"trailing garbage": append(append([]byte(nil), valid...), 1),
		"artifact kind": func() []byte {
			cp := append([]byte(nil), valid...)
			cp[5] = kindArtifact
			return cp
		}(),
		"invalid CSR": func() []byte {
			cp := append([]byte(nil), valid...)
			cp[len(cp)-1] = 0x7f // out-of-range neighbor id
			return cp
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeGraph(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got err %v, want ErrCorrupt", name, err)
		}
	}
}

func TestKeyStringStable(t *testing.T) {
	k := testKey(5)
	s := k.String()
	if len(s) != 64+1+64 {
		t.Fatalf("Key.String() = %q, want 64+1+64 chars", s)
	}
	if s != k.String() {
		t.Error("Key.String() not deterministic")
	}
}
