// Package perm provides the permutation utilities shared by all ordering
// algorithms in this repository.
//
// Convention: an ordering is represented "new→old": order[k] = v means that
// vertex v (old label) occupies position k (0-based) in the new ordering.
// This matches the permutation-matrix view PᵀAP of the paper, where column k
// of P is the unit vector e_{order[k]}. The inverse ("old→new") maps a
// vertex to its new position and is what the envelope formulas consume.
package perm

import (
	"fmt"
	"math/rand"
)

// Perm is a permutation of {0,...,n-1} in new→old convention.
type Perm []int32

// Identity returns the identity permutation of length n.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// Random returns a uniformly random permutation of length n, deterministic
// for a given seed.
func Random(n int, seed int64) Perm {
	rng := rand.New(rand.NewSource(seed))
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Valid reports whether p is a permutation of {0,...,len(p)-1}.
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || int(v) >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Check returns a descriptive error if p is not a valid permutation.
func (p Perm) Check() error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || int(v) >= len(p) {
			return fmt.Errorf("perm: entry %d = %d out of range [0,%d)", i, v, len(p))
		}
		if seen[v] {
			return fmt.Errorf("perm: value %d repeated (second occurrence at %d)", v, i)
		}
		seen[v] = true
	}
	return nil
}

// Inverse returns the inverse permutation: Inverse()[p[k]] = k. When p is
// new→old, the inverse is old→new (vertex → position).
func (p Perm) Inverse() Perm {
	inv := make(Perm, len(p))
	for k, v := range p {
		inv[v] = int32(k)
	}
	return inv
}

// Reverse returns the reversal of p: position k gets p[n-1-k]. Reversing a
// Cuthill–McKee order yields RCM.
func (p Perm) Reverse() Perm {
	r := make(Perm, len(p))
	for i, v := range p {
		r[len(p)-1-i] = v
	}
	return r
}

// Compose returns the permutation "apply q, then p": out[k] = q[p[k]].
// In ordering terms, if p places old labels of an intermediate ordering and
// q maps intermediate labels to original labels, the result places original
// labels directly.
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic(fmt.Sprintf("perm: compose length mismatch %d vs %d", len(p), len(q)))
	}
	out := make(Perm, len(p))
	for k, v := range p {
		out[k] = q[v]
	}
	return out
}

// Clone returns a copy of p.
func (p Perm) Clone() Perm {
	return append(Perm(nil), p...)
}

// Equal reports whether p and q are identical.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// FromInts converts an []int permutation (new→old) to a Perm.
func FromInts(xs []int) Perm {
	p := make(Perm, len(xs))
	for i, x := range xs {
		p[i] = int32(x)
	}
	return p
}

// Ints converts p to []int.
func (p Perm) Ints() []int {
	xs := make([]int, len(p))
	for i, v := range p {
		xs[i] = int(v)
	}
	return xs
}
