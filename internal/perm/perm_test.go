package perm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	p := Identity(5)
	if !p.Valid() {
		t.Fatal("identity invalid")
	}
	for i, v := range p {
		if int(v) != i {
			t.Fatalf("Identity[%d] = %d", i, v)
		}
	}
	if !Identity(0).Valid() {
		t.Fatal("empty identity invalid")
	}
}

func TestRandomIsValidAndDeterministic(t *testing.T) {
	a := Random(100, 42)
	b := Random(100, 42)
	c := Random(100, 43)
	if !a.Valid() {
		t.Fatal("random perm invalid")
	}
	if !a.Equal(b) {
		t.Fatal("same seed gave different permutations")
	}
	if a.Equal(c) {
		t.Fatal("different seeds gave identical permutations (very unlikely)")
	}
}

func TestValidRejects(t *testing.T) {
	cases := []Perm{
		{0, 0},          // duplicate
		{1, 2},          // out of range
		{-1, 0},         // negative
		{0, 2, 1, 3, 3}, // duplicate later
	}
	for _, p := range cases {
		if p.Valid() {
			t.Errorf("Valid(%v) = true", p)
		}
		if p.Check() == nil {
			t.Errorf("Check(%v) = nil", p)
		}
	}
	if !(Perm{2, 0, 1}).Valid() {
		t.Error("valid perm rejected")
	}
}

func TestInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%50) + 1
		if n < 0 {
			n = -n + 1
		}
		p := Random(n, seed)
		inv := p.Inverse()
		// p ∘ inv = inv ∘ p = identity.
		return p.Compose(inv).Equal(Identity(n)) && inv.Compose(p).Equal(Identity(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReverse(t *testing.T) {
	p := Perm{3, 1, 0, 2}
	r := p.Reverse()
	want := Perm{2, 0, 1, 3}
	if !r.Equal(want) {
		t.Fatalf("Reverse = %v, want %v", r, want)
	}
	if !p.Reverse().Reverse().Equal(p) {
		t.Fatal("double reverse is not identity")
	}
}

func TestReverseEnvelopeInvariant(t *testing.T) {
	// Reversal preserves validity for random permutations.
	for seed := int64(0); seed < 20; seed++ {
		p := Random(30, seed)
		if !p.Reverse().Valid() {
			t.Fatalf("seed %d: reversed perm invalid", seed)
		}
	}
}

func TestComposeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(40) + 1
		a, b, c := Random(n, rng.Int63()), Random(n, rng.Int63()), Random(n, rng.Int63())
		left := a.Compose(b).Compose(c)
		right := a.Compose(b.Compose(c))
		if !left.Equal(right) {
			t.Fatalf("compose not associative at n=%d", n)
		}
	}
}

func TestComposePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Identity(3).Compose(Identity(4))
}

func TestIntsRoundTrip(t *testing.T) {
	p := Random(37, 5)
	q := FromInts(p.Ints())
	if !p.Equal(q) {
		t.Fatal("Ints/FromInts round trip failed")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Random(10, 1)
	q := p.Clone()
	q[0], q[1] = q[1], q[0]
	if reflect.DeepEqual(p, q) {
		t.Fatal("clone aliases original")
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if Identity(3).Equal(Identity(4)) {
		t.Fatal("different lengths reported equal")
	}
}
