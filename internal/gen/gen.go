// Package gen generates the deterministic synthetic test problems that
// stand in for the Boeing–Harwell and NASA matrices of the paper's Section
// 4 (which are not redistributable here). Each named problem matches its
// original in order n, nonzero count and — most importantly for ordering
// behaviour — topology class: multi-DOF structural shells and frames for
// the BCSSTK series, planar/surface triangulations for the NASA meshes,
// sparse networks for POW9, and a large 3-D lattice for IN3C.
//
// Every generator takes an explicit seed and is bit-for-bit reproducible.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Stencil selects the node-level connectivity of the structured mesh
// generators.
type Stencil int

const (
	// Stencil5 is the 4-neighbor (5-point) grid.
	Stencil5 Stencil = iota
	// StencilTri is a triangulated grid: 4-neighbor plus one diagonal per
	// cell (≈6 neighbors per interior node).
	StencilTri
	// Stencil9 is the 8-neighbor (9-point) grid.
	Stencil9
	// Stencil13 is the 8-neighbor grid plus second-nearest axial neighbors
	// (≈12 neighbors), modeling braced/stiffened panels.
	Stencil13
)

// meshEdges adds node-grid edges for the given stencil. wrap joins the last
// row back to the first (a cylinder), matching shell-of-revolution models.
// The addEdge callback receives node ids y*nx+x.
func meshEdges(nx, ny int, st Stencil, wrap bool, seed int64, addEdge func(a, b int)) {
	rng := rand.New(rand.NewSource(seed))
	id := func(x, y int) int { return ((y+ny)%ny)*nx + x }
	for y := 0; y < ny; y++ {
		lastRow := y+1 >= ny
		if lastRow && !wrap {
			// horizontal edges of the final row only
			for x := 0; x+1 < nx; x++ {
				addEdge(id(x, y), id(x+1, y))
			}
			continue
		}
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				addEdge(id(x, y), id(x+1, y))
			}
			addEdge(id(x, y), id(x, y+1))
			hasCell := x+1 < nx
			if hasCell {
				switch st {
				case StencilTri:
					if rng.Intn(2) == 0 {
						addEdge(id(x, y), id(x+1, y+1))
					} else {
						addEdge(id(x+1, y), id(x, y+1))
					}
				case Stencil9, Stencil13:
					addEdge(id(x, y), id(x+1, y+1))
					addEdge(id(x+1, y), id(x, y+1))
				}
			}
			if st == Stencil13 {
				if x+2 < nx {
					addEdge(id(x, y), id(x+2, y))
				}
				if wrap || y+2 < ny {
					addEdge(id(x, y), id(x, (y+2)%ny))
				}
			}
		}
	}
}

// Mesh returns a structured nx×ny surface mesh with the given stencil;
// wrap produces a cylinder.
func Mesh(nx, ny int, st Stencil, wrap bool, seed int64) *graph.Graph {
	b := graph.NewBuilder(nx * ny)
	meshEdges(nx, ny, st, wrap, seed, b.AddEdge)
	return b.Build()
}

// WithDOF expands a node graph into a structural stiffness pattern with
// dof unknowns per node: the dofs of one node form a clique, and all dof
// pairs of adjacent nodes are connected — the block structure that gives
// the BCSSTK matrices their high nonzero densities. Node v becomes dofs
// v·dof … v·dof+dof−1.
func WithDOF(node *graph.Graph, dof int) *graph.Graph {
	if dof <= 1 {
		return node
	}
	n := node.N()
	b := graph.NewBuilder(n * dof)
	for p := 0; p < n; p++ {
		for a := 0; a < dof; a++ {
			for c := a + 1; c < dof; c++ {
				b.AddEdge(p*dof+a, p*dof+c)
			}
		}
		for _, q := range node.Neighbors(p) {
			if int(q) < p {
				continue
			}
			for a := 0; a < dof; a++ {
				for c := 0; c < dof; c++ {
					b.AddEdge(p*dof+a, int(q)*dof+c)
				}
			}
		}
	}
	return b.Build()
}

// Shell expands an nx×ny node mesh into a multi-DOF stiffness pattern; see
// WithDOF.
func Shell(nx, ny, dof int, st Stencil, wrap bool, seed int64) *graph.Graph {
	return WithDOF(Mesh(nx, ny, st, wrap, seed), dof)
}

// Airfoil returns an annular "airfoil" triangulation in the style of the
// Barth meshes: concentric rings of vertices whose counts grow with the
// radius, consecutive vertices linked within each ring, and each vertex
// linked to its angularly nearest neighbors on the next ring. The result
// is an irregular planar triangulation with a hole — the mesh class on
// which the paper's spectral ordering shines (BARTH4, BLKHOLE, PWT, BODY).
func Airfoil(rings, c0 int, growth float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, rings)
	starts := make([]int, rings+1)
	n := 0
	for r := 0; r < rings; r++ {
		c := int(math.Round(float64(c0) * math.Pow(growth, float64(r))))
		if c < 3 {
			c = 3
		}
		counts[r] = c
		starts[r] = n
		n += c
	}
	starts[rings] = n
	// Angular positions with slight jitter for irregularity.
	theta := make([]float64, n)
	for r := 0; r < rings; r++ {
		c := counts[r]
		off := rng.Float64() * 2 * math.Pi / float64(c)
		for k := 0; k < c; k++ {
			jit := (rng.Float64() - 0.5) * 0.5 * 2 * math.Pi / float64(c)
			theta[starts[r]+k] = math.Mod(off+2*math.Pi*float64(k)/float64(c)+jit+2*math.Pi, 2*math.Pi)
		}
	}
	b := graph.NewBuilder(n)
	// Within-ring cycle.
	for r := 0; r < rings; r++ {
		c := counts[r]
		for k := 0; k < c; k++ {
			b.AddEdge(starts[r]+k, starts[r]+(k+1)%c)
		}
	}
	// Between rings: connect each outer vertex to the two angularly nearest
	// inner vertices (forming triangles).
	for r := 0; r+1 < rings; r++ {
		ci, co := counts[r], counts[r+1]
		for k := 0; k < co; k++ {
			vo := starts[r+1] + k
			// nearest inner index by angle (rings are near-uniform, so a
			// proportional guess plus local scan suffices)
			guess := int(theta[vo] / (2 * math.Pi) * float64(ci))
			bestA, bestB := -1, -1
			var dA, dB float64 = math.Inf(1), math.Inf(1)
			for dk := -2; dk <= 2; dk++ {
				idx := ((guess+dk)%ci + ci) % ci
				vi := starts[r] + idx
				d := math.Abs(math.Mod(theta[vo]-theta[vi]+3*math.Pi, 2*math.Pi) - math.Pi)
				if d < dA {
					bestB, dB = bestA, dA
					bestA, dA = vi, d
				} else if d < dB && vi != bestA {
					bestB, dB = vi, d
				}
			}
			b.AddEdge(vo, bestA)
			if bestB >= 0 {
				b.AddEdge(vo, bestB)
			}
		}
	}
	return b.Build()
}

// PowerNet returns a power-network-like graph: a locality-biased random
// tree (lines follow geography, so new nodes attach to recent ones) with a
// degree cap, plus sparse cross-links. Average degree lands near POW9's
// ≈2.8.
func PowerNet(n int, cross int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	deg := make([]int, n)
	const window = 60
	const degCap = 6
	for v := 1; v < n; v++ {
		lo := v - window
		if lo < 0 {
			lo = 0
		}
		u := lo + rng.Intn(v-lo)
		for tries := 0; deg[u] >= degCap && tries < 8; tries++ {
			u = lo + rng.Intn(v-lo)
		}
		b.AddEdge(v, u)
		deg[v]++
		deg[u]++
	}
	for i := 0; i < cross; i++ {
		u := rng.Intn(n)
		span := 1 + rng.Intn(3*window)
		v := u + span
		if v >= n {
			v = u - span
		}
		if v >= 0 && v != u {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Frame3D returns an nx×ny×nz 7-point lattice — the very sparse 3-D frame
// class of IN3C.
func Frame3D(nx, ny, nz int) *graph.Graph {
	return graph.Grid3D(nx, ny, nz)
}

// Frame3DL returns an L-shaped 7-point lattice with interior voids: two
// bars of cross-section w×h and lengths a and b joined at a right angle,
// from which `voids` small rectangular pockets are carved (deterministic
// per seed). Bent, perforated geometry is what separates the global
// spectral ordering from breadth-first local search — BFS fronts widen at
// the corner and grow ragged around the holes, while the Fiedler vector
// stays smooth along the intrinsic arc length. Real large NASA frames
// (IN3C) are bent and full of cutouts, never perfect boxes.
func Frame3DL(a, b, w, h, voids int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	// Bar 1: x∈[0,a), y∈[0,w). Bar 2: x∈[a−w,a), y∈[w,w+b). Both z∈[0,h).
	type box struct{ x0, x1, y0, y1, z0, z1 int }
	holes := make([]box, 0, voids)
	for i := 0; i < voids; i++ {
		// A pocket at most a third of each cross-section dimension, placed
		// strictly inside one of the arms so connectivity is preserved.
		dw, dh := 1+rng.Intn(w/3+1), 1+rng.Intn(h/3+1)
		dl := 1 + rng.Intn(8)
		var bx box
		if rng.Intn(2) == 0 && a > dl+2 {
			x := 1 + rng.Intn(a-dl-2)
			y := 1 + rng.Intn(max(1, w-dw-1))
			z := 1 + rng.Intn(max(1, h-dh-1))
			bx = box{x, x + dl, y, y + dw, z, z + dh}
		} else {
			y := w + 1 + rng.Intn(max(1, b-dl-2))
			x := a - w + 1 + rng.Intn(max(1, w-dw-1))
			z := 1 + rng.Intn(max(1, h-dh-1))
			bx = box{x, x + dw, y, y + dl, z, z + dh}
		}
		holes = append(holes, bx)
	}
	type pt struct{ x, y, z int }
	inside := func(p pt) bool {
		if p.z < 0 || p.z >= h || p.x < 0 || p.y < 0 {
			return false
		}
		ok := false
		if p.y < w {
			ok = p.x < a
		} else {
			ok = p.x >= a-w && p.x < a && p.y < w+b
		}
		if !ok {
			return false
		}
		for _, bx := range holes {
			if p.x >= bx.x0 && p.x < bx.x1 && p.y >= bx.y0 && p.y < bx.y1 && p.z >= bx.z0 && p.z < bx.z1 {
				return false
			}
		}
		return true
	}
	// Assign contiguous ids by scanning the bounding box.
	id := make(map[pt]int)
	var pts []pt
	for z := 0; z < h; z++ {
		for y := 0; y < w+b; y++ {
			for x := 0; x < a; x++ {
				p := pt{x, y, z}
				if inside(p) {
					id[p] = len(pts)
					pts = append(pts, p)
				}
			}
		}
	}
	gb := graph.NewBuilder(len(pts))
	for _, p := range pts {
		for _, q := range []pt{{p.x + 1, p.y, p.z}, {p.x, p.y + 1, p.z}, {p.x, p.y, p.z + 1}} {
			if j, ok := id[q]; ok {
				gb.AddEdge(id[p], j)
			}
		}
	}
	g := gb.Build()
	// Overlapping voids can, in principle, pinch off slivers; keep the
	// dominant component so the problem stays connected like the original.
	if !graph.IsConnected(g) {
		comps := graph.Components(g)
		g, _ = g.Subgraph(comps[0])
	}
	return g
}
