package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestWithDOFDegreeFormula(t *testing.T) {
	// For a node of degree d and dof f: dof vertex degree = (f−1) + d·f.
	node := graph.Grid(6, 6)
	for _, dof := range []int{2, 3, 6} {
		g := WithDOF(node, dof)
		if g.N() != 36*dof {
			t.Fatalf("dof=%d: N = %d", dof, g.N())
		}
		for v := 0; v < node.N(); v++ {
			want := (dof - 1) + node.Degree(v)*dof
			for a := 0; a < dof; a++ {
				if got := g.Degree(v*dof + a); got != want {
					t.Fatalf("dof=%d node=%d slot=%d: degree %d, want %d", dof, v, a, got, want)
				}
			}
		}
	}
}

func TestWithDOFOneIsIdentity(t *testing.T) {
	node := graph.Path(9)
	if g := WithDOF(node, 1); g != node {
		t.Fatal("dof=1 should return the node graph unchanged")
	}
}

func TestWithDOFEdgeCount(t *testing.T) {
	node := graph.Cycle(10) // n=10, m=10
	g := WithDOF(node, 3)
	// m = nodes·C(3,2) + nodeEdges·3² = 10·3 + 10·9 = 120.
	if g.M() != 120 {
		t.Fatalf("M = %d, want 120", g.M())
	}
}

func TestFrame3DLStraightDegenerates(t *testing.T) {
	// With b=0 the L reduces to a plain box... b must be ≥ 1 in our
	// builder; compare instead a tiny L against hand counts.
	g := Frame3DL(4, 2, 2, 2, 0, 1)
	// Bar1: 4·2·2 = 16; bar2: x∈[2,4), y∈[2,4), z∈[0,2) = 8. Total 24.
	if g.N() != 24 {
		t.Fatalf("N = %d, want 24", g.N())
	}
	if !graph.IsConnected(g) {
		t.Fatal("L-frame disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFrame3DLVoidsReduceSize(t *testing.T) {
	full := Frame3DL(30, 20, 8, 8, 0, 7)
	holed := Frame3DL(30, 20, 8, 8, 12, 7)
	if holed.N() >= full.N() {
		t.Fatalf("voids did not remove vertices: %d vs %d", holed.N(), full.N())
	}
	if !graph.IsConnected(holed) {
		t.Fatal("perforated frame disconnected")
	}
	if err := holed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFrame3DLDeterministic(t *testing.T) {
	a := Frame3DL(20, 14, 6, 6, 8, 3)
	b := Frame3DL(20, 14, 6, 6, 8, 3)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("same seed, different frame")
	}
	c := Frame3DL(20, 14, 6, 6, 8, 4)
	if a.N() == c.N() && a.M() == c.M() {
		t.Log("different seeds coincidentally equal (allowed but unlikely)")
	}
}

func TestFrame3DLMaxDegree(t *testing.T) {
	g := Frame3DL(10, 8, 4, 4, 0, 1)
	if d := g.MaxDegree(); d > 6 {
		t.Fatalf("7-point lattice max degree %d > 6", d)
	}
}
