package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestMeshStencils(t *testing.T) {
	for _, st := range []Stencil{Stencil5, StencilTri, Stencil9, Stencil13} {
		g := Mesh(10, 8, st, false, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("stencil %d: %v", st, err)
		}
		if g.N() != 80 {
			t.Fatalf("stencil %d: N = %d", st, g.N())
		}
		if !graph.IsConnected(g) {
			t.Fatalf("stencil %d: disconnected", st)
		}
	}
	// Stencil ordering by density.
	m5 := Mesh(10, 8, Stencil5, false, 1).M()
	mt := Mesh(10, 8, StencilTri, false, 1).M()
	m9 := Mesh(10, 8, Stencil9, false, 1).M()
	m13 := Mesh(10, 8, Stencil13, false, 1).M()
	if !(m5 < mt && mt < m9 && m9 < m13) {
		t.Fatalf("edge counts not ordered: %d %d %d %d", m5, mt, m9, m13)
	}
}

func TestMeshWrapIsCylinder(t *testing.T) {
	flat := Mesh(12, 10, Stencil5, false, 1)
	wrap := Mesh(12, 10, Stencil5, true, 1)
	if wrap.M() <= flat.M() {
		t.Fatalf("wrapped mesh has no extra edges: %d vs %d", wrap.M(), flat.M())
	}
	// On a cylinder every vertex of column x=5 has degree 4.
	for y := 0; y < 10; y++ {
		if d := wrap.Degree(y*12 + 5); d != 4 {
			t.Fatalf("cylinder interior degree = %d at y=%d", d, y)
		}
	}
}

func TestShellBlockStructure(t *testing.T) {
	g := Shell(5, 4, 3, Stencil5, false, 2)
	if g.N() != 60 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Node-internal cliques: dofs 0,1,2 of node 0 pairwise adjacent.
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			if !g.HasEdge(a, b) {
				t.Fatalf("node-internal dof edge (%d,%d) missing", a, b)
			}
		}
	}
	// Adjacent nodes fully block-connected: node 0 and node 1.
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if !g.HasEdge(a, 3+b) {
				t.Fatalf("block edge dof%d-node1dof%d missing", a, b)
			}
		}
	}
	if !graph.IsConnected(g) {
		t.Fatal("shell disconnected")
	}
}

func TestAirfoilProperties(t *testing.T) {
	g := Airfoil(20, 30, 1.03, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("airfoil disconnected")
	}
	// Triangulation-like degrees: average between 4 and 8.
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 3.5 || avg > 8.5 {
		t.Fatalf("average degree %v out of triangulation range", avg)
	}
}

func TestPowerNetSparseConnected(t *testing.T) {
	g := PowerNet(1723, 672, 4)
	if !graph.IsConnected(g) {
		t.Fatal("power network disconnected")
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 2.0 || avg > 3.6 {
		t.Fatalf("average degree %v, want ≈2.8", avg)
	}
}

func TestSpecsCount(t *testing.T) {
	specs := Specs()
	if len(specs) != 18 {
		t.Fatalf("got %d specs, want 18", len(specs))
	}
	if len(SuiteSpecs(SuiteStructural)) != 6 {
		t.Fatalf("structural suite size wrong")
	}
	if len(SuiteSpecs(SuiteMisc)) != 5 {
		t.Fatalf("misc suite size wrong")
	}
	if len(SuiteSpecs(SuiteNASA)) != 7 {
		t.Fatalf("NASA suite size wrong")
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("BARTH4")
	if !ok || s.PaperN != 6019 {
		t.Fatalf("ByName(BARTH4) = %+v, %v", s, ok)
	}
	if _, ok := ByName("NOPE"); ok {
		t.Fatal("unknown name found")
	}
}

// Every generated problem must be connected, valid, deterministic and match
// the paper's n within 5% and nnz within 35% at full scale. (Full-scale
// generation of the largest problems takes a few seconds total.)
func TestSuiteFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale suite generation in -short mode")
	}
	for _, spec := range Specs() {
		p := spec.Generate(1, 42)
		g := p.G
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !graph.IsConnected(g) {
			t.Fatalf("%s: disconnected", spec.Name)
		}
		nErr := relErr(g.N(), spec.PaperN)
		if nErr > 0.05 {
			t.Errorf("%s: n = %d vs paper %d (%.1f%% off)", spec.Name, g.N(), spec.PaperN, 100*nErr)
		}
		nnzErr := relErr(g.Nonzeros(), spec.PaperNNZ)
		if nnzErr > 0.35 {
			t.Errorf("%s: nnz = %d vs paper %d (%.1f%% off)", spec.Name, g.Nonzeros(), spec.PaperNNZ, 100*nnzErr)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := ByName("BLKHOLE")
	a := spec.Generate(0.5, 7).G
	b := spec.Generate(0.5, 7).G
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("same seed, different graph size")
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatal("same seed, different adjacency")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("same seed, different adjacency")
			}
		}
	}
}

func TestScaledGeneration(t *testing.T) {
	for _, spec := range Specs() {
		p := spec.Generate(0.1, 1)
		if p.G.N() == 0 {
			t.Fatalf("%s: empty at scale 0.1", spec.Name)
		}
		if !graph.IsConnected(p.G) {
			t.Fatalf("%s: disconnected at scale 0.1", spec.Name)
		}
		// Should be much smaller than full size.
		if p.G.N() > spec.PaperN/2 {
			t.Errorf("%s: scale 0.1 gave n=%d (paper %d)", spec.Name, p.G.N(), spec.PaperN)
		}
	}
}

func TestGeneratePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	spec, _ := ByName("POW9")
	spec.Generate(0, 1)
}

func relErr(got, want int) float64 {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}
