package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Problem is one generated test matrix (as its adjacency graph) together
// with the paper statistics of the matrix it stands in for.
type Problem struct {
	Name     string
	Suite    string // "bh-structural", "bh-misc" or "nasa"
	PaperN   int    // order reported in the paper
	PaperNNZ int    // lower-triangle nonzeros reported in the paper
	G        *graph.Graph
}

// Spec describes a named problem and how to generate it at a given scale.
type Spec struct {
	Name     string
	Suite    string
	PaperN   int
	PaperNNZ int
	build    func(scale float64, seed int64) *graph.Graph
}

// Generate materializes the problem. scale ∈ (0,1] shrinks the vertex
// count roughly proportionally (mesh axes scale by √scale, 3-D lattices by
// ∛scale); scale 1 reproduces the paper's sizes.
func (s Spec) Generate(scale float64, seed int64) Problem {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("gen: scale %v out of (0,1]", scale))
	}
	return Problem{
		Name:     s.Name,
		Suite:    s.Suite,
		PaperN:   s.PaperN,
		PaperNNZ: s.PaperNNZ,
		G:        s.build(scale, seed),
	}
}

// ax scales a mesh axis by the per-axis factor f, flooring at 2.
func ax(x int, f float64) int {
	v := int(math.Round(float64(x) * f))
	if v < 2 {
		v = 2
	}
	return v
}

// airfoilForN picks the base ring count c0 so the Airfoil total vertex
// count is as close as possible to target.
func airfoilForN(target, rings int, growth float64, seed int64) *graph.Graph {
	total := func(c0 int) int {
		n := 0
		for r := 0; r < rings; r++ {
			c := int(math.Round(float64(c0) * math.Pow(growth, float64(r))))
			if c < 3 {
				c = 3
			}
			n += c
		}
		return n
	}
	bestC0, bestDiff := 3, math.MaxInt
	for c0 := 3; c0 < target; c0++ {
		d := total(c0) - target
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			bestC0, bestDiff = c0, d
		}
		if total(c0) > target {
			break
		}
	}
	return Airfoil(rings, bestC0, growth, seed)
}

// Specs returns every named problem of the paper's three tables, in table
// order. The generator classes and size matches are documented in
// DESIGN.md §4.
func Specs() []Spec {
	sq := math.Sqrt
	cbrt := math.Cbrt
	return []Spec{
		// ---- Table 4.1: Boeing–Harwell, structural analysis ----
		{"BCSSTK13", "bh-structural", 2003, 11973, func(s float64, seed int64) *graph.Graph {
			return Mesh(ax(50, sq(s)), ax(40, sq(s)), Stencil9, false, seed)
		}},
		{"BCSSTK29", "bh-structural", 13992, 316740, func(s float64, seed int64) *graph.Graph {
			return Shell(ax(59, sq(s)), ax(59, sq(s)), 4, Stencil9, true, seed)
		}},
		{"BCSSTK30", "bh-structural", 28924, 1036208, func(s float64, seed int64) *graph.Graph {
			return Shell(ax(53, sq(s)), ax(91, sq(s)), 6, Stencil9, false, seed)
		}},
		{"BCSSTK31", "bh-structural", 35588, 608502, func(s float64, seed int64) *graph.Graph {
			return Shell(ax(89, sq(s)), ax(133, sq(s)), 3, Stencil9, false, seed)
		}},
		{"BCSSTK32", "bh-structural", 44609, 1029655, func(s float64, seed int64) *graph.Graph {
			return Shell(ax(74, sq(s)), ax(100, sq(s)), 6, Stencil9, false, seed)
		}},
		{"BCSSTK33", "bh-structural", 8738, 300321, func(s float64, seed int64) *graph.Graph {
			return Shell(ax(30, sq(s)), ax(48, sq(s)), 6, Stencil13, false, seed)
		}},
		// ---- Table 4.2: Boeing–Harwell, miscellaneous ----
		{"CAN1072", "bh-misc", 1072, 6758, func(s float64, seed int64) *graph.Graph {
			return Mesh(ax(67, sq(s)), ax(16, sq(s)), Stencil9, false, seed)
		}},
		{"POW9", "bh-misc", 1723, 4117, func(s float64, seed int64) *graph.Graph {
			n := int(math.Round(1723 * s))
			if n < 10 {
				n = 10
			}
			return PowerNet(n, int(math.Round(672*s)), seed)
		}},
		{"BLKHOLE", "bh-misc", 2132, 8502, func(s float64, seed int64) *graph.Graph {
			return airfoilForN(int(math.Round(2132*s)), ax(26, sq(s)), 1.03, seed)
		}},
		{"DWT2680", "bh-misc", 2680, 13853, func(s float64, seed int64) *graph.Graph {
			return Mesh(ax(67, sq(s)), ax(40, sq(s)), Stencil9, false, seed)
		}},
		{"SSTMODEL", "bh-misc", 3345, 13047, func(s float64, seed int64) *graph.Graph {
			return Mesh(ax(223, sq(s)), ax(15, sq(s)), StencilTri, false, seed)
		}},
		// ---- Table 4.3: NASA ----
		{"BARTH4", "nasa", 6019, 23492, func(s float64, seed int64) *graph.Graph {
			return airfoilForN(int(math.Round(6019*s)), ax(45, sq(s)), 1.02, seed)
		}},
		{"SHUTTLE", "nasa", 9205, 45966, func(s float64, seed int64) *graph.Graph {
			return Mesh(ax(96, sq(s)), ax(96, sq(s)), Stencil9, true, seed)
		}},
		{"SKIRT", "nasa", 12598, 104559, func(s float64, seed int64) *graph.Graph {
			// A tapered shell of revolution: rings of slowly shrinking
			// circumference (the "skirt"), expanded to 2 DOF per node.
			nodes := airfoilForN(int(math.Round(6300*s)), ax(98, sq(s)), 0.995, seed)
			return WithDOF(nodes, 2)
		}},
		{"PWT", "nasa", 36519, 181313, func(s float64, seed int64) *graph.Graph {
			return Mesh(ax(170, sq(s)), ax(215, sq(s)), Stencil9, false, seed)
		}},
		{"BODY", "nasa", 45087, 208821, func(s float64, seed int64) *graph.Graph {
			return airfoilForN(int(math.Round(45087*s)), ax(110, sq(s)), 1.012, seed)
		}},
		{"FLAP", "nasa", 51537, 531157, func(s float64, seed int64) *graph.Graph {
			return Shell(ax(131, sq(s)), ax(131, sq(s)), 3, StencilTri, false, seed)
		}},
		{"IN3C", "nasa", 262620, 1026888, func(s float64, seed int64) *graph.Graph {
			// An L-shaped, perforated 3-D frame: n ≈ (a+b)·w·h with a=166,
			// b=100, w=h=32 ≈ the paper's 262,620 after voids. Bent,
			// cut-out geometry — not a perfect box, whose diagonal-friendly
			// BFS levels and degenerate spectra no real structure has.
			c := cbrt(s)
			voids := int(math.Round(160 * s))
			return Frame3DL(ax(172, c), ax(106, c), ax(32, c), ax(32, c), voids, seed)
		}},
	}
}

// ByName returns the Spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// SuiteSpecs returns the specs belonging to one suite, in table order.
func SuiteSpecs(suite string) []Spec {
	var out []Spec
	for _, s := range Specs() {
		if s.Suite == suite {
			out = append(out, s)
		}
	}
	return out
}

// Table identifiers of the paper.
const (
	SuiteStructural = "bh-structural" // Table 4.1
	SuiteMisc       = "bh-misc"       // Table 4.2
	SuiteNASA       = "nasa"          // Table 4.3
)
