package chol

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/envelope"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/order"
	"repro/internal/perm"
)

// denseOf materializes PᵀAP densely for verification.
func denseOf(g *graph.Graph, p perm.Perm, vals ValueFn) *linalg.Dense {
	n := g.N()
	inv := p.Inverse()
	d := linalg.NewDense(n)
	for v := 0; v < n; v++ {
		d.Set(int(inv[v]), int(inv[v]), vals(v, v))
		for _, w := range g.Neighbors(v) {
			d.Set(int(inv[v]), int(inv[w]), vals(v, int(w)))
		}
	}
	return d
}

func TestEnvelopeSizeMatches(t *testing.T) {
	g := graph.Grid(6, 6)
	p := order.RCM(g)
	m, err := NewMatrix(g, p, LaplacianPlusIdentity(g))
	if err != nil {
		t.Fatal(err)
	}
	if m.EnvelopeSize() != envelope.Esize(g, p) {
		t.Fatalf("storage %d != Esize %d", m.EnvelopeSize(), envelope.Esize(g, p))
	}
}

func TestFactorMatchesDenseCholesky(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(25, 45, seed)
		p := perm.Random(25, seed+50)
		vals := LaplacianPlusIdentity(g)
		m, err := NewMatrix(g, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Factorize(m); err != nil {
			t.Fatal(err)
		}
		dg, err := linalg.Cholesky(denseOf(g, p, vals))
		if err != nil {
			t.Fatal(err)
		}
		// Compare the in-envelope entries and the diagonal.
		for i := 0; i < g.N(); i++ {
			row, fc := m.Row(i)
			if math.Abs(m.diag[i]-dg.At(i, i)) > 1e-9*(1+math.Abs(dg.At(i, i))) {
				t.Fatalf("seed %d: diag %d mismatch: %v vs %v", seed, i, m.diag[i], dg.At(i, i))
			}
			for k, l := range row {
				j := fc + k
				if math.Abs(l-dg.At(i, j)) > 1e-9*(1+math.Abs(dg.At(i, j))) {
					t.Fatalf("seed %d: L[%d,%d] = %v, dense %v", seed, i, j, l, dg.At(i, j))
				}
			}
			// Entries left of the envelope must be zero in the dense factor
			// too (no fill outside the envelope).
			for j := 0; j < fc; j++ {
				if math.Abs(dg.At(i, j)) > 1e-10 {
					t.Fatalf("seed %d: dense factor has fill outside envelope at (%d,%d)", seed, i, j)
				}
			}
		}
	}
}

func TestSolveResidual(t *testing.T) {
	for _, alg := range []struct {
		name string
		f    func(*graph.Graph) perm.Perm
	}{
		{"identity", func(g *graph.Graph) perm.Perm { return perm.Identity(g.N()) }},
		{"rcm", order.RCM},
		{"gps", order.GPS},
	} {
		g := graph.Grid9(12, 9)
		vals := LaplacianPlusIdentity(g)
		m, err := NewMatrix(g, alg.f(g), vals)
		if err != nil {
			t.Fatal(err)
		}
		// Keep a pristine copy for the residual (Factorize is in place).
		m2, _ := NewMatrix(g, alg.f(g), vals)
		f, err := Factorize(m)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		rng := rand.New(rand.NewSource(8))
		b := make([]float64, g.N())
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := f.Solve(b)
		ax := make([]float64, g.N())
		m2.MulVec(x, ax)
		linalg.Axpy(-1, b, ax)
		if r := linalg.Nrm2(ax); r > 1e-10*linalg.Nrm2(b) {
			t.Fatalf("%s: residual %v", alg.name, r)
		}
	}
}

func TestSolveOriginalLabels(t *testing.T) {
	g := graph.Grid(7, 7)
	vals := LaplacianPlusIdentity(g)
	p := order.RCM(g)
	m, _ := NewMatrix(g, p, vals)
	m2, _ := NewMatrix(g, perm.Identity(g.N()), vals)
	f, err := Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	z := f.SolveOriginal(b)
	// Verify A·z = b in original labels via the identity-ordered matrix.
	az := make([]float64, g.N())
	m2.MulVec(z, az)
	linalg.Axpy(-1, b, az)
	if r := linalg.Nrm2(az); r > 1e-10*(1+linalg.Nrm2(b)) {
		t.Fatalf("original-label residual %v", r)
	}
}

func TestFlopsMatchesFormula(t *testing.T) {
	// The multiply–add count of the active-row scheme is determined by the
	// overlap structure; it is bounded by the §2.1 estimate Σ rᵢ(rᵢ+3)/2
	// plus the n square roots.
	g := graph.Grid(10, 8)
	p := order.RCM(g)
	m, _ := NewMatrix(g, p, LaplacianPlusIdentity(g))
	f, err := Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	bound := envelope.EworkBound(g, p) + int64(g.N())
	if f.Flops() > bound {
		t.Fatalf("flops %d exceed the §2.1 bound %d", f.Flops(), bound)
	}
	if f.Flops() <= 0 {
		t.Fatal("flop counter did not run")
	}
}

// The headline claim of Table 4.4: factorization work scales ~quadratically
// with envelope size, so a better ordering (smaller envelope) yields fewer
// flops on the same matrix.
func TestOrderingReducesFlops(t *testing.T) {
	g := graph.Grid9(40, 40)
	vals := LaplacianPlusIdentity(g)
	run := func(p perm.Perm) int64 {
		m, err := NewMatrix(g, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Factorize(m)
		if err != nil {
			t.Fatal(err)
		}
		return f.Flops()
	}
	flopsRandom := run(perm.Random(g.N(), 1))
	flopsRCM := run(order.RCM(g))
	if flopsRCM >= flopsRandom {
		t.Fatalf("RCM flops %d not below random-order flops %d", flopsRCM, flopsRandom)
	}
}

func TestNonSPDRejected(t *testing.T) {
	g := graph.Complete(4)
	// -Laplacian - I is negative definite.
	vals := func(u, v int) float64 {
		if u == v {
			return -float64(g.Degree(u)) - 1
		}
		return 1
	}
	m, err := NewMatrix(g, perm.Identity(4), vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Factorize(m); err == nil {
		t.Fatal("negative definite matrix factorized")
	}
}

func TestNewMatrixRejectsBadOrdering(t *testing.T) {
	g := graph.Path(4)
	if _, err := NewMatrix(g, perm.Perm{0, 0, 1, 2}, LaplacianPlusIdentity(g)); err == nil {
		t.Fatal("duplicate ordering accepted")
	}
	if _, err := NewMatrix(g, perm.Identity(3), LaplacianPlusIdentity(g)); err == nil {
		t.Fatal("short ordering accepted")
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	g := graph.Random(20, 35, 3)
	p := perm.Random(20, 9)
	vals := LaplacianPlusIdentity(g)
	m, _ := NewMatrix(g, p, vals)
	d := denseOf(g, p, vals)
	x := make([]float64, 20)
	for i := range x {
		x[i] = math.Cos(float64(i))
	}
	y1 := make([]float64, 20)
	y2 := make([]float64, 20)
	m.MulVec(x, y1)
	d.MulVec(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("MulVec mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func BenchmarkFactorizeRCM(b *testing.B) {
	g := graph.Grid9(60, 60)
	p := order.RCM(g)
	vals := LaplacianPlusIdentity(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMatrix(g, p, vals)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Factorize(m); err != nil {
			b.Fatal(err)
		}
	}
}
