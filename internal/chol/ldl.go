package chol

import (
	"fmt"
	"math"
)

// LDLFactor is a root-free envelope factorization A = L·D·Lᵀ with unit
// lower-triangular L and diagonal D. It shares the envelope-storage layout
// with Factor, avoids square roots (the classic "envelope LDLᵀ" used by
// several structural codes), and extends to symmetric indefinite matrices
// whose leading principal minors are nonsingular — no pivoting is
// performed, so a zero pivot aborts.
type LDLFactor struct {
	m     *Matrix // env holds L (unit diagonal implicit); diag holds D
	flops int64
}

// Flops returns the multiply–add count of the numeric factorization.
func (f *LDLFactor) Flops() int64 { return f.flops }

// EnvelopeSize returns the strictly-lower storage of the factor.
func (f *LDLFactor) EnvelopeSize() int64 { return f.m.EnvelopeSize() }

// D returns the diagonal matrix entries (aliased; callers must not
// modify).
func (f *LDLFactor) D() []float64 { return f.m.diag }

// FactorizeLDL computes the envelope LDLᵀ factorization in place (the
// Matrix must not be used afterwards except through the returned factor).
// It fails on an exactly-zero (or subnormal) pivot; unlike Cholesky,
// negative pivots are fine.
func FactorizeLDL(m *Matrix) (*LDLFactor, error) {
	n := m.n
	var flops int64
	// work[j] caches l_ij·d_j for the current row i.
	work := make([]float64, n)
	for i := 0; i < n; i++ {
		fi := int(m.first[i])
		rowI := m.env[m.rowptr[i]:m.rowptr[i+1]]
		for jo := 0; jo < len(rowI); jo++ {
			j := fi + jo
			fj := int(m.first[j])
			lo := fi
			if fj > lo {
				lo = fj
			}
			s := rowI[jo]
			rowJ := m.env[m.rowptr[j]:m.rowptr[j+1]]
			ii := lo - fi
			jj := lo - fj
			for k := lo; k < j; k++ {
				s -= work[k] * rowJ[jj] // work[k] = l_ik·d_k
				ii++
				jj++
			}
			flops += int64(j - lo)
			d := m.diag[j]
			if math.Abs(d) < math.SmallestNonzeroFloat64 {
				return nil, fmt.Errorf("chol: zero LDL pivot at column %d", j)
			}
			work[j] = s // l_ij·d_j
			rowI[jo] = s / d
			flops++
		}
		d := m.diag[i]
		for jo, l := range rowI {
			d -= l * work[fi+jo]
		}
		flops += int64(len(rowI))
		if math.Abs(d) < math.SmallestNonzeroFloat64 {
			return nil, fmt.Errorf("chol: zero LDL pivot at row %d", i)
		}
		m.diag[i] = d
	}
	return &LDLFactor{m: m, flops: flops}, nil
}

// Solve solves PᵀAP·x = b (new-ordering positions): L·y = b, D·z = y,
// Lᵀ·x = z.
func (f *LDLFactor) Solve(b []float64) []float64 {
	m := f.m
	n := m.n
	x := make([]float64, n)
	copy(x, b)
	// Forward with unit L.
	for i := 0; i < n; i++ {
		row, fc := m.Row(i)
		s := x[i]
		for k, l := range row {
			s -= l * x[fc+k]
		}
		x[i] = s
	}
	// Diagonal.
	for i := 0; i < n; i++ {
		x[i] /= m.diag[i]
	}
	// Backward with unit Lᵀ (column sweep).
	for i := n - 1; i >= 0; i-- {
		row, fc := m.Row(i)
		for k, l := range row {
			x[fc+k] -= l * x[i]
		}
	}
	return x
}

// SolveOriginal solves A·z = b in original vertex labels.
func (f *LDLFactor) SolveOriginal(b []float64) []float64 {
	m := f.m
	pb := make([]float64, m.n)
	for i, v := range m.order {
		pb[i] = b[v]
	}
	px := f.Solve(pb)
	x := make([]float64, m.n)
	for i, v := range m.order {
		x[v] = px[i]
	}
	return x
}

// Inertia returns the number of positive, negative and (numerically) zero
// entries of D — by Sylvester's law of inertia, the inertia of A itself.
// Useful to confirm definiteness after an indefinite solve.
func (f *LDLFactor) Inertia() (pos, neg, zero int) {
	for _, d := range f.m.diag {
		switch {
		case d > 0:
			pos++
		case d < 0:
			neg++
		default:
			zero++
		}
	}
	return pos, neg, zero
}
