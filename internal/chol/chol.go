// Package chol implements Cholesky factorization in envelope (variable
// band, "profile", SPARSPAK-style) storage — the factorization scheme whose
// storage and time the envelope-reducing orderings of this repository
// minimize, and the engine behind the paper's Table 4.4.
//
// The factor L of PᵀAP = LLᵀ fills in only inside the envelope, so the
// storage is exactly Esize + n and the arithmetic is Θ(Σ rᵢ²) — which is
// why a smaller envelope translates quadratically into faster numeric
// factorization (the observation Table 4.4 demonstrates).
package chol

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/perm"
)

// ValueFn supplies matrix values in *original* labels: ValueFn(u,u) is the
// diagonal entry of vertex u and ValueFn(u,v) the off-diagonal entry of an
// edge {u,v}. The pattern is fixed by the graph; values must make the
// matrix symmetric positive definite.
type ValueFn func(u, v int) float64

// LaplacianPlusIdentity returns the SPD model matrix L(G) + I used by the
// factorization benchmarks: same pattern as the adjacency structure plus a
// nonzero diagonal, strictly diagonally dominant, hence safely SPD for any
// ordering.
func LaplacianPlusIdentity(g *graph.Graph) ValueFn {
	return func(u, v int) float64 {
		if u == v {
			return float64(g.Degree(u)) + 1
		}
		return -1
	}
}

// Matrix is a symmetric matrix stored in envelope form under a fixed
// ordering: for each (new) row i all columns from fi(i) through i−1 are
// stored contiguously, plus the diagonal.
type Matrix struct {
	n      int
	first  []int32   // fi per row (new positions)
	rowptr []int64   // prefix offsets into env; row i = env[rowptr[i]:rowptr[i+1]]
	env    []float64 // in-envelope strictly-lower entries, row by row
	diag   []float64
	order  perm.Perm
}

// NewMatrix assembles PᵀAP in envelope storage for the pattern of g, the
// ordering order (new→old) and values vals.
func NewMatrix(g *graph.Graph, order perm.Perm, vals ValueFn) (*Matrix, error) {
	n := g.N()
	if len(order) != n {
		return nil, fmt.Errorf("chol: ordering length %d != n %d", len(order), n)
	}
	if err := order.Check(); err != nil {
		return nil, fmt.Errorf("chol: %w", err)
	}
	inv := order.Inverse()
	first := make([]int32, n)
	rowptr := make([]int64, n+1)
	for i := 0; i < n; i++ {
		f := int32(i)
		for _, w := range g.Neighbors(int(order[i])) {
			if p := inv[w]; p < f {
				f = p
			}
		}
		first[i] = f
		rowptr[i+1] = rowptr[i] + int64(int32(i)-f)
	}
	m := &Matrix{
		n:      n,
		first:  first,
		rowptr: rowptr,
		env:    make([]float64, rowptr[n]),
		diag:   make([]float64, n),
		order:  order.Clone(),
	}
	for i := 0; i < n; i++ {
		v := int(order[i])
		m.diag[i] = vals(v, v)
		base := m.rowptr[i]
		f := int64(first[i])
		for _, w := range g.Neighbors(v) {
			if p := int64(inv[w]); p < int64(i) {
				m.env[base+(p-f)] = vals(v, int(w))
			}
		}
	}
	return m, nil
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// EnvelopeSize returns the number of stored strictly-lower entries, which
// equals Esize of the ordering.
func (m *Matrix) EnvelopeSize() int64 { return m.rowptr[m.n] }

// Row returns the stored strictly-lower slice of row i (columns
// first[i]..i−1) and the first column index.
func (m *Matrix) Row(i int) ([]float64, int) {
	return m.env[m.rowptr[i]:m.rowptr[i+1]], int(m.first[i])
}

// MulVec computes y = PᵀAP·x using the envelope representation (entries
// outside the envelope are zero by construction).
func (m *Matrix) MulVec(x, y []float64) {
	for i := 0; i < m.n; i++ {
		y[i] = m.diag[i] * x[i]
	}
	for i := 0; i < m.n; i++ {
		row, f := m.Row(i)
		for k, a := range row {
			if a == 0 {
				continue
			}
			j := f + k
			y[i] += a * x[j]
			y[j] += a * x[i]
		}
	}
}

// Factor is the lower-triangular Cholesky factor in envelope storage.
type Factor struct {
	m     *Matrix // storage reused: env/diag hold L after factorization
	flops int64
}

// Flops returns the number of floating-point multiply–add/sqrt operations
// performed by the numeric factorization.
func (f *Factor) Flops() int64 { return f.flops }

// EnvelopeSize returns the factor's strictly-lower storage (equals the
// matrix envelope: envelope Cholesky has no fill outside it).
func (f *Factor) EnvelopeSize() int64 { return f.m.EnvelopeSize() }

// Factorize computes the envelope Cholesky factorization in place
// (the Matrix must not be used afterwards except through the Factor).
// It fails with a descriptive error on a non-positive pivot.
//
// The algorithm is the standard active-row scheme: for each row i and each
// in-envelope column j, the inner products run over the overlap of rows i
// and j — the code path whose operation count is Σᵢ rᵢ(rᵢ+3)/2 quoted in
// §2.1 of the paper.
func Factorize(m *Matrix) (*Factor, error) {
	n := m.n
	var flops int64
	for i := 0; i < n; i++ {
		fi := int(m.first[i])
		rowI := m.env[m.rowptr[i]:m.rowptr[i+1]]
		for jo := 0; jo < len(rowI); jo++ {
			j := fi + jo
			fj := int(m.first[j])
			lo := fi
			if fj > lo {
				lo = fj
			}
			s := rowI[jo]
			rowJ := m.env[m.rowptr[j]:m.rowptr[j+1]]
			// dot over overlap columns lo..j-1
			ii := lo - fi
			jj := lo - fj
			for k := lo; k < j; k++ {
				s -= rowI[ii] * rowJ[jj]
				ii++
				jj++
			}
			flops += int64(j - lo)
			rowI[jo] = s / m.diag[j] // diag[j] already holds l_jj
			flops++
		}
		d := m.diag[i]
		for _, l := range rowI {
			d -= l * l
		}
		flops += int64(len(rowI))
		if d <= 0 {
			return nil, fmt.Errorf("chol: non-positive pivot %g at row %d (matrix not SPD?)", d, i)
		}
		m.diag[i] = math.Sqrt(d)
		flops++
	}
	return &Factor{m: m, flops: flops}, nil
}

// Solve solves PᵀAP·x = b (both in new-ordering positions) by forward and
// back substitution, writing into a new slice.
func (f *Factor) Solve(b []float64) []float64 {
	m := f.m
	n := m.n
	y := make([]float64, n)
	// Forward: L·y = b, row-oriented.
	for i := 0; i < n; i++ {
		s := b[i]
		row, fc := m.Row(i)
		for k, l := range row {
			s -= l * y[fc+k]
		}
		y[i] = s / m.diag[i]
	}
	// Backward: Lᵀ·x = y, column-oriented (rows of L are columns of Lᵀ).
	x := y // reuse
	for i := n - 1; i >= 0; i-- {
		x[i] /= m.diag[i]
		row, fc := m.Row(i)
		for k, l := range row {
			x[fc+k] -= l * x[i]
		}
	}
	return x
}

// SolveOriginal solves A·z = b with b and z in *original* vertex labels,
// wrapping the permutation bookkeeping: it permutes b, solves, and permutes
// back.
func (f *Factor) SolveOriginal(b []float64) []float64 {
	m := f.m
	pb := make([]float64, m.n)
	for i, v := range m.order {
		pb[i] = b[v]
	}
	px := f.Solve(pb)
	x := make([]float64, m.n)
	for i, v := range m.order {
		x[v] = px[i]
	}
	return x
}
