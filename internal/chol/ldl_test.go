package chol

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/order"
	"repro/internal/perm"
)

func TestLDLMatchesCholeskySolve(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Random(30, 55, seed)
		p := perm.Random(30, seed+1)
		vals := LaplacianPlusIdentity(g)
		mLL, _ := NewMatrix(g, p, vals)
		mLDL, _ := NewMatrix(g, p, vals)
		fLL, err := Factorize(mLL)
		if err != nil {
			t.Fatal(err)
		}
		fLDL, err := FactorizeLDL(mLDL)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		b := make([]float64, 30)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1 := fLL.Solve(b)
		x2 := fLDL.Solve(b)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-9*(1+math.Abs(x1[i])) {
				t.Fatalf("seed %d: LDL solve differs at %d: %v vs %v", seed, i, x1[i], x2[i])
			}
		}
	}
}

func TestLDLIndefinite(t *testing.T) {
	// −(L+I) is negative definite: Cholesky must fail, LDLᵀ must succeed
	// with all-negative D.
	g := graph.Grid(5, 5)
	neg := func(u, v int) float64 {
		if u == v {
			return -float64(g.Degree(u)) - 1
		}
		return 1
	}
	mC, _ := NewMatrix(g, perm.Identity(25), neg)
	if _, err := Factorize(mC); err == nil {
		t.Fatal("Cholesky accepted a negative definite matrix")
	}
	mL, _ := NewMatrix(g, perm.Identity(25), neg)
	f, err := FactorizeLDL(mL)
	if err != nil {
		t.Fatal(err)
	}
	pos, negN, zero := f.Inertia()
	if pos != 0 || zero != 0 || negN != 25 {
		t.Fatalf("inertia = (%d,%d,%d), want (0,25,0)", pos, negN, zero)
	}
	// Solve check against the positive counterpart: (−A)x = b ⇔ A(−x) = b.
	b := make([]float64, 25)
	b[3] = 1
	x := f.Solve(b)
	mPos, _ := NewMatrix(g, perm.Identity(25), LaplacianPlusIdentity(g))
	ax := make([]float64, 25)
	mPos.MulVec(x, ax)
	for i := range ax {
		if math.Abs(-ax[i]-b[i]) > 1e-10 {
			t.Fatalf("indefinite solve wrong at %d", i)
		}
	}
}

func TestLDLInertiaMixedSigns(t *testing.T) {
	// A diagonal-ish indefinite matrix: path Laplacian shifted by −0.5 has
	// eigenvalues 4sin²(kπ/2n)−0.5; count how many are negative and check
	// the inertia matches. n=8: eigenvalues of L(P8): 0, .152, .586, 1.235,
	// 2, 2.765, 3.414, 3.848 → shifted: 2 negative.
	g := graph.Path(8)
	vals := func(u, v int) float64 {
		if u == v {
			return float64(g.Degree(u)) - 0.5
		}
		return -1
	}
	m, _ := NewMatrix(g, perm.Identity(8), vals)
	f, err := FactorizeLDL(m)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg, zero := f.Inertia()
	if neg != 2 || zero != 0 || pos != 6 {
		t.Fatalf("inertia = (%d,%d,%d), want (6,2,0)", pos, neg, zero)
	}
}

func TestLDLSolveOriginalLabels(t *testing.T) {
	g := graph.Grid9(8, 8)
	p := order.GK(g)
	vals := LaplacianPlusIdentity(g)
	m, _ := NewMatrix(g, p, vals)
	f, err := FactorizeLDL(m)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	for i := range b {
		b[i] = 1
	}
	x := f.SolveOriginal(b)
	// (L+I)·1 = 1: solution is the ones vector.
	for i, xi := range x {
		if math.Abs(xi-1) > 1e-10 {
			t.Fatalf("x[%d] = %v", i, xi)
		}
	}
}

func TestLDLFlopsComparableToCholesky(t *testing.T) {
	g := graph.Grid(12, 12)
	p := order.RCM(g)
	vals := LaplacianPlusIdentity(g)
	m1, _ := NewMatrix(g, p, vals)
	m2, _ := NewMatrix(g, p, vals)
	fC, _ := Factorize(m1)
	fL, err := FactorizeLDL(m2)
	if err != nil {
		t.Fatal(err)
	}
	// Same O(Σr²) structure: within 2× of each other.
	if fL.Flops() > 2*fC.Flops() || fC.Flops() > 2*fL.Flops() {
		t.Fatalf("flop counts diverge: LDL %d vs LLᵀ %d", fL.Flops(), fC.Flops())
	}
}

func TestLDLZeroPivot(t *testing.T) {
	// The 2x2 zero matrix on an edge: first pivot is exactly 0.
	g := graph.Path(2)
	vals := func(u, v int) float64 { return 0 }
	m, _ := NewMatrix(g, perm.Identity(2), vals)
	if _, err := FactorizeLDL(m); err == nil {
		t.Fatal("zero pivot accepted")
	}
}

func TestLDLResidualLarge(t *testing.T) {
	g := graph.Grid9(20, 20)
	p := order.RCM(g)
	vals := LaplacianPlusIdentity(g)
	m, _ := NewMatrix(g, p, vals)
	check, _ := NewMatrix(g, p, vals)
	f, err := FactorizeLDL(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b := make([]float64, g.N())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := f.Solve(b)
	ax := make([]float64, g.N())
	check.MulVec(x, ax)
	linalg.Axpy(-1, b, ax)
	if r := linalg.Nrm2(ax) / linalg.Nrm2(b); r > 1e-10 {
		t.Fatalf("residual %v", r)
	}
}
