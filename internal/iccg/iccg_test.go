package iccg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/order"
	"repro/internal/perm"
)

func lapPlusI(g *graph.Graph) chol.ValueFn { return chol.LaplacianPlusIdentity(g) }

func TestSparseSymApplyMatchesEnvelope(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Random(30, 60, seed)
		p := perm.Random(30, seed+9)
		vals := lapPlusI(g)
		a, err := NewSparseSym(g, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		e, err := chol.NewMatrix(g, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 30)
		for i := range x {
			x[i] = math.Sin(float64(i) + float64(seed))
		}
		y1 := make([]float64, 30)
		y2 := make([]float64, 30)
		a.Apply(x, y1)
		e.MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12 {
				t.Fatalf("seed %d: Apply mismatch at %d: %v vs %v", seed, i, y1[i], y2[i])
			}
		}
	}
}

func TestRowsSortedByColumn(t *testing.T) {
	g := graph.Random(40, 90, 3)
	a, err := NewSparseSym(g, perm.Random(40, 4), lapPlusI(g))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.n; i++ {
		for k := a.rowptr[i] + 1; k < a.rowptr[i+1]; k++ {
			if a.cols[k-1] >= a.cols[k] {
				t.Fatalf("row %d not strictly sorted", i)
			}
			if a.cols[k] >= int32(i) {
				t.Fatalf("row %d has non-strictly-lower column %d", i, a.cols[k])
			}
		}
	}
}

// On a tree (no fill under any elimination order given the pattern is the
// tree itself... specifically a path with the natural order) IC(0) is the
// exact Cholesky factor, so the preconditioned system solves in one
// iteration.
func TestIC0ExactOnPath(t *testing.T) {
	g := graph.Path(50)
	a, err := NewSparseSym(g, perm.Identity(50), lapPlusI(g))
	if err != nil {
		t.Fatal(err)
	}
	f, err := FactorizeIC0(a, IC0Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 50)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := make([]float64, 50)
	res := PCG(a, f, b, x, PCGOptions{Tol: 1e-12})
	if !res.Converged || res.Iterations > 2 {
		t.Fatalf("path PCG took %d iterations (converged=%v)", res.Iterations, res.Converged)
	}
}

func TestIC0FactorEquation(t *testing.T) {
	// (LLᵀ)ᵢⱼ must equal Aᵢⱼ on the pattern (including the diagonal).
	g := graph.Grid(6, 5)
	p := order.RCM(g)
	a, err := NewSparseSym(g, p, lapPlusI(g))
	if err != nil {
		t.Fatal(err)
	}
	f, err := FactorizeIC0(a, IC0Options{})
	if err != nil {
		t.Fatal(err)
	}
	L := f.m
	// Dense L for verification.
	n := a.n
	dl := linalg.NewDense(n)
	for i := 0; i < n; i++ {
		dl.Set(i, i, L.diag[i])
		for k := L.rowptr[i]; k < L.rowptr[i+1]; k++ {
			dl.Set(i, int(L.cols[k]), L.vals[k])
		}
	}
	prod := func(i, j int) float64 {
		var s float64
		for k := 0; k <= j; k++ {
			s += dl.At(i, k) * dl.At(j, k)
		}
		return s
	}
	for i := 0; i < n; i++ {
		if math.Abs(prod(i, i)-a.diag[i]) > 1e-10 {
			t.Fatalf("diagonal %d: %v vs %v", i, prod(i, i), a.diag[i])
		}
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			j := int(a.cols[k])
			if math.Abs(prod(i, j)-a.vals[k]) > 1e-10 {
				t.Fatalf("pattern entry (%d,%d): %v vs %v", i, j, prod(i, j), a.vals[k])
			}
		}
	}
}

func TestPCGUnpreconditioned(t *testing.T) {
	g := graph.Grid(10, 10)
	a, _ := NewSparseSym(g, perm.Identity(100), lapPlusI(g))
	b := make([]float64, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 100)
	res := PCG(a, nil, b, x, PCGOptions{Tol: 1e-10})
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	ax := make([]float64, 100)
	a.Apply(x, ax)
	linalg.Axpy(-1, b, ax)
	if r := linalg.Nrm2(ax) / linalg.Nrm2(b); r > 1e-9 {
		t.Fatalf("true residual %v", r)
	}
}

func TestPreconditioningReducesIterations(t *testing.T) {
	g := graph.Grid(30, 30)
	a, _ := NewSparseSym(g, order.RCM(g), lapPlusI(g))
	b := make([]float64, g.N())
	rng := rand.New(rand.NewSource(2))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, g.N())
	plain := PCG(a, nil, b, x, PCGOptions{Tol: 1e-10})
	f, err := FactorizeIC0(a, IC0Options{})
	if err != nil {
		t.Fatal(err)
	}
	pre := PCG(a, f, b, x, PCGOptions{Tol: 1e-10})
	if !plain.Converged || !pre.Converged {
		t.Fatalf("convergence failure: %+v %+v", plain, pre)
	}
	if pre.Iterations >= plain.Iterations {
		t.Fatalf("IC(0) did not help: %d vs %d iterations", pre.Iterations, plain.Iterations)
	}
}

// The §1 claim: ordering affects the quality of the IC(0) preconditioner.
// A random ordering must need at least as many PCG iterations as RCM
// (Duff & Meurant 1989).
func TestOrderingAffectsPreconditionerQuality(t *testing.T) {
	g := graph.Grid9(25, 25)
	vals := lapPlusI(g)
	b := make([]float64, g.N())
	rng := rand.New(rand.NewSource(3))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	iters := func(p perm.Perm) int {
		a, err := NewSparseSym(g, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		f, err := FactorizeIC0(a, IC0Options{MaxShiftRetries: 8})
		if err != nil {
			t.Fatal(err)
		}
		// Permute b to the ordering's positions.
		pb := make([]float64, len(b))
		for i, v := range p {
			pb[i] = b[v]
		}
		x := make([]float64, len(b))
		res := PCG(a, f, pb, x, PCGOptions{Tol: 1e-10})
		if !res.Converged {
			t.Fatalf("PCG diverged")
		}
		return res.Iterations
	}
	random := iters(perm.Random(g.N(), 5))
	rcm := iters(order.RCM(g))
	if rcm > random {
		t.Fatalf("RCM-ordered IC(0) worse than random: %d vs %d iterations", rcm, random)
	}
}

func TestIC0BreakdownAndShiftRetry(t *testing.T) {
	// A matrix engineered to break IC(0): strong negative off-diagonals
	// exceeding the diagonal. With retries the shifted factorization must
	// succeed.
	g := graph.Complete(6)
	vals := func(u, v int) float64 {
		if u == v {
			return 1.0 // far from diagonally dominant: Σ|offdiag| = 10
		}
		return -2
	}
	a, err := NewSparseSym(g, perm.Identity(6), vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FactorizeIC0(a, IC0Options{}); err == nil {
		t.Skip("expected breakdown did not occur; matrix unexpectedly factorable")
	}
	if _, err := FactorizeIC0(a, IC0Options{MaxShiftRetries: 40}); err != nil {
		t.Fatalf("shift retries failed: %v", err)
	}
}

func TestPCGZeroRHS(t *testing.T) {
	g := graph.Path(5)
	a, _ := NewSparseSym(g, perm.Identity(5), lapPlusI(g))
	x := []float64{1, 1, 1, 1, 1}
	res := PCG(a, nil, make([]float64, 5), x, PCGOptions{})
	if !res.Converged || linalg.Nrm2(x) != 0 {
		t.Fatalf("zero rhs mishandled: %+v %v", res, x)
	}
}

func TestNewSparseSymRejectsBadOrdering(t *testing.T) {
	g := graph.Path(4)
	if _, err := NewSparseSym(g, perm.Perm{0, 1, 1, 2}, lapPlusI(g)); err == nil {
		t.Fatal("invalid ordering accepted")
	}
	if _, err := NewSparseSym(g, perm.Identity(5), lapPlusI(g)); err == nil {
		t.Fatal("wrong-length ordering accepted")
	}
}

func BenchmarkIC0PCGGrid(b *testing.B) {
	g := graph.Grid(60, 60)
	a, _ := NewSparseSym(g, order.RCM(g), lapPlusI(g))
	f, err := FactorizeIC0(a, IC0Options{})
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, g.N())
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PCG(a, f, rhs, x, PCGOptions{Tol: 1e-8})
	}
}
