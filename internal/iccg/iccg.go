// Package iccg implements zero-fill incomplete Cholesky factorization
// (IC(0)) and the preconditioned conjugate gradient method — the second
// application domain the paper's introduction cites for envelope-reducing
// orderings: "The RCM ordering has been found to be an effective
// preordering in computing incomplete factorization preconditioners for
// preconditioned conjugate gradients methods" (D'Azevedo–Forsyth–Tang,
// Duff–Meurant). The quality of IC(0) depends on the ordering of the
// matrix, so the orderings produced by this repository change the PCG
// iteration count — which the tests and the `examples/preconditioning`
// program measure.
package iccg

import (
	"fmt"
	"math"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/perm"
)

// SparseSym is a symmetric matrix in sorted strictly-lower CSR form plus a
// diagonal, stored under a fixed ordering (positions, not original
// labels). Unlike chol.Matrix it stores only the pattern's entries — the
// representation IC(0) factors without fill.
type SparseSym struct {
	n      int
	rowptr []int32
	cols   []int32
	vals   []float64
	diag   []float64
	order  perm.Perm
}

// NewSparseSym assembles PᵀAP for the pattern of g under order with values
// vals (original labels, as in package chol).
func NewSparseSym(g *graph.Graph, order perm.Perm, vals chol.ValueFn) (*SparseSym, error) {
	n := g.N()
	if len(order) != n {
		return nil, fmt.Errorf("iccg: ordering length %d != n %d", len(order), n)
	}
	if err := order.Check(); err != nil {
		return nil, fmt.Errorf("iccg: %w", err)
	}
	inv := order.Inverse()
	rowptr := make([]int32, n+1)
	for i := 0; i < n; i++ {
		v := int(order[i])
		cnt := int32(0)
		for _, w := range g.Neighbors(v) {
			if inv[w] < int32(i) {
				cnt++
			}
		}
		rowptr[i+1] = rowptr[i] + cnt
	}
	m := &SparseSym{
		n:      n,
		rowptr: rowptr,
		cols:   make([]int32, rowptr[n]),
		vals:   make([]float64, rowptr[n]),
		diag:   make([]float64, n),
		order:  order.Clone(),
	}
	fill := make([]int32, n)
	for i := 0; i < n; i++ {
		v := int(order[i])
		m.diag[i] = vals(v, v)
		base := rowptr[i]
		for _, w := range g.Neighbors(v) {
			if p := inv[w]; p < int32(i) {
				m.cols[base+fill[i]] = p
				m.vals[base+fill[i]] = vals(v, int(w))
				fill[i]++
			}
		}
		// Sort this row's (col,val) pairs ascending by column (insertion
		// sort; rows are short).
		lo, hi := base, base+fill[i]
		for a := lo + 1; a < hi; a++ {
			for b := a; b > lo && m.cols[b-1] > m.cols[b]; b-- {
				m.cols[b-1], m.cols[b] = m.cols[b], m.cols[b-1]
				m.vals[b-1], m.vals[b] = m.vals[b], m.vals[b-1]
			}
		}
	}
	return m, nil
}

// N returns the dimension.
func (m *SparseSym) N() int { return m.n }

// Dim implements linalg.Operator.
func (m *SparseSym) Dim() int { return m.n }

// Apply computes y = A·x (both triangles plus diagonal).
func (m *SparseSym) Apply(x, y []float64) {
	for i := 0; i < m.n; i++ {
		y[i] = m.diag[i] * x[i]
	}
	for i := 0; i < m.n; i++ {
		xi := x[i]
		var s float64
		for k := m.rowptr[i]; k < m.rowptr[i+1]; k++ {
			j := m.cols[k]
			a := m.vals[k]
			s += a * x[j]
			y[j] += a * xi
		}
		y[i] += s
	}
}

// IC0 is a zero-fill incomplete Cholesky factor: the same pattern as the
// lower triangle of the matrix, with entries chosen so that (L·Lᵀ)ᵢⱼ = Aᵢⱼ
// on the pattern.
type IC0 struct {
	m *SparseSym // vals/diag hold L after factorization
}

// IC0Options configures the factorization.
type IC0Options struct {
	// Shift is added to the diagonal before factoring (a standard remedy
	// when IC(0) breaks down on matrices that are not H-matrices). Zero by
	// default.
	Shift float64
	// MaxShiftRetries: on breakdown, the shift is doubled (starting from
	// 1e-3 of the max diagonal if Shift is 0) and the factorization
	// retried this many times.
	MaxShiftRetries int
}

// FactorizeIC0 computes the IC(0) factor of a copy of m. The input is not
// modified.
func FactorizeIC0(m *SparseSym, opt IC0Options) (*IC0, error) {
	shift := opt.Shift
	maxDiag := 0.0
	for _, d := range m.diag {
		if d > maxDiag {
			maxDiag = d
		}
	}
	for attempt := 0; ; attempt++ {
		f, err := tryIC0(m, shift)
		if err == nil {
			return f, nil
		}
		if attempt >= opt.MaxShiftRetries {
			return nil, err
		}
		if shift == 0 {
			shift = 1e-3 * maxDiag
		} else {
			shift *= 2
		}
	}
}

func tryIC0(m *SparseSym, shift float64) (*IC0, error) {
	n := m.n
	c := &SparseSym{
		n:      n,
		rowptr: m.rowptr,
		cols:   m.cols,
		vals:   append([]float64(nil), m.vals...),
		diag:   append([]float64(nil), m.diag...),
		order:  m.order,
	}
	for i := range c.diag {
		c.diag[i] += shift
	}
	for i := 0; i < n; i++ {
		rs, re := c.rowptr[i], c.rowptr[i+1]
		for k := rs; k < re; k++ {
			j := c.cols[k]
			// dot of rows i and j over shared columns < j (two-pointer on
			// the sorted column lists).
			s := c.vals[k]
			a, b := rs, c.rowptr[j]
			be := c.rowptr[j+1]
			for a < k && b < be {
				ca, cb := c.cols[a], c.cols[b]
				switch {
				case ca == cb:
					s -= c.vals[a] * c.vals[b]
					a++
					b++
				case ca < cb:
					a++
				default:
					b++
				}
			}
			c.vals[k] = s / c.diag[j] // diag[j] holds l_jj already
		}
		d := c.diag[i]
		for k := rs; k < re; k++ {
			d -= c.vals[k] * c.vals[k]
		}
		if d <= 0 {
			return nil, fmt.Errorf("iccg: IC(0) breakdown at row %d (pivot %g)", i, d)
		}
		c.diag[i] = math.Sqrt(d)
	}
	return &IC0{m: c}, nil
}

// Solve applies the preconditioner: z = (LLᵀ)⁻¹ r, overwriting z.
func (f *IC0) Solve(r, z []float64) {
	m := f.m
	n := m.n
	// Forward L·y = r.
	for i := 0; i < n; i++ {
		s := r[i]
		for k := m.rowptr[i]; k < m.rowptr[i+1]; k++ {
			s -= m.vals[k] * z[m.cols[k]]
		}
		z[i] = s / m.diag[i]
	}
	// Backward Lᵀ·z = y (column sweep).
	for i := n - 1; i >= 0; i-- {
		z[i] /= m.diag[i]
		for k := m.rowptr[i]; k < m.rowptr[i+1]; k++ {
			z[m.cols[k]] -= m.vals[k] * z[i]
		}
	}
}

// PCGResult reports a conjugate-gradient solve.
type PCGResult struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖/‖b‖
	Converged  bool
}

// PCGOptions configures PCG.
type PCGOptions struct {
	// Tol is the relative residual target (default 1e-8).
	Tol float64
	// MaxIter caps iterations (default 10n).
	MaxIter int
}

// PCG solves A·x = b by conjugate gradients, preconditioned by pre (pass
// nil for plain CG). x is the output (zero initial guess).
func PCG(A linalg.Operator, pre *IC0, b, x []float64, opt PCGOptions) PCGResult {
	n := A.Dim()
	if opt.Tol == 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 10 * n
	}
	for i := range x {
		x[i] = 0
	}
	normB := linalg.Nrm2(b)
	if normB == 0 {
		return PCGResult{Converged: true}
	}
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	applyPre := func() {
		if pre != nil {
			pre.Solve(r, z)
		} else {
			copy(z, r)
		}
	}
	applyPre()
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := linalg.Dot(r, z)
	for it := 1; it <= opt.MaxIter; it++ {
		A.Apply(p, ap)
		alpha := rz / linalg.Dot(p, ap)
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		res := linalg.Nrm2(r) / normB
		if res <= opt.Tol {
			return PCGResult{Iterations: it, Residual: res, Converged: true}
		}
		applyPre()
		rzNew := linalg.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return PCGResult{Iterations: opt.MaxIter, Residual: linalg.Nrm2(r) / normB, Converged: false}
}
