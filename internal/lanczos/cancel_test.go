package lanczos

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/laplacian"
	"repro/internal/linalg"
)

// cancelOp wraps a Laplacian operator and cancels a context after a fixed
// number of Apply calls — the "hooked operator" used to pin the promise
// that a cancelled solve returns within one restart iteration.
type cancelOp struct {
	laplacian.Interface
	applies  int
	cancelAt int
	cancel   context.CancelFunc
}

func (c *cancelOp) Apply(x, y []float64) {
	c.applies++
	if c.applies == c.cancelAt {
		c.cancel()
	}
	c.Interface.Apply(x, y)
}

// The fused path must count too, or the bound below would be meaningless.
func (c *cancelOp) ApplyAxpy(x, y []float64, beta float64, z []float64) {
	c.applies++
	if c.applies == c.cancelAt {
		c.cancel()
	}
	c.Interface.ApplyAxpy(x, y, beta, z)
}

var _ linalg.AxpyApplier = (*cancelOp)(nil)

func TestFiedlerCancelledMidSolveReturnsWithinOneRestart(t *testing.T) {
	g := graph.Grid(30, 20)
	ctx, cancel := context.WithCancel(context.Background())
	const maxBasis = 24
	op := &cancelOp{Interface: laplacian.New(g), cancelAt: maxBasis + 5, cancel: cancel}
	// A tolerance far below reach keeps the solver restarting until the
	// hook fires.
	res, err := Fiedler(ctx, op, op.GershgorinBound(), Options{
		Tol: 1e-300, MaxBasis: maxBasis, MaxRestarts: 1000,
	})
	if err == nil {
		t.Fatal("cancelled solve reported success")
	}
	var ce *ErrCancelled
	if !errors.As(err, &ce) {
		t.Fatalf("err %v (%T) is not *ErrCancelled", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not unwrap to context.Canceled", err)
	}
	// The hook fired during the second restart cycle; the solve must stop
	// at the next restart boundary — one more basis build plus the
	// per-cycle residual check, never a third cycle.
	if limit := op.cancelAt + maxBasis + 2; op.applies > limit {
		t.Fatalf("solve ran %d applies after cancellation at %d (limit %d) — not within one restart",
			op.applies, op.cancelAt, limit)
	}
	// The first completed restart's Ritz pair is the fallback.
	if ce.Vector == nil || len(ce.Vector) != g.N() {
		t.Fatalf("no best-so-far fallback vector carried: %+v", ce)
	}
	if ce.Lambda <= 0 {
		t.Fatalf("fallback lambda %v not a usable λ2 estimate", ce.Lambda)
	}
	if res.Vector == nil || res.Restarts == 0 {
		t.Fatalf("result does not carry the partial solve: %+v", res)
	}
}

func TestFiedlerPreCancelledReturnsImmediately(t *testing.T) {
	g := graph.Path(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	op := laplacian.New(g)
	_, err := Fiedler(ctx, op, op.GershgorinBound(), Options{})
	var ce *ErrCancelled
	if !errors.As(err, &ce) {
		t.Fatalf("err %v is not *ErrCancelled", err)
	}
	if ce.Vector != nil {
		t.Fatal("pre-cancelled solve claims a fallback vector")
	}
}

func TestFiedlerNilContextMeansNoCancellation(t *testing.T) {
	g := graph.Path(64)
	op := laplacian.New(g)
	res, err := Fiedler(nil, op, op.GershgorinBound(), Options{})
	if err != nil {
		t.Fatalf("nil-ctx solve failed: %v", err)
	}
	if res.Vector == nil {
		t.Fatal("no vector")
	}
}
