package lanczos

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/laplacian"
	"repro/internal/linalg"
)

// This file pins the BLAS-2 engine against the implementation it replaced:
// referenceFiedler below is a frozen copy of the pre-rewrite solver (per-
// vector modified Gram–Schmidt over separately-allocated basis vectors,
// rand.NormFloat64 start). The engines take different floating-point paths
// and different start vectors, but both drive the residual below Tol·scale,
// so their converged Ritz values must agree to the eigenvalue-accuracy
// implied by that residual — the tests run at Tol 1e-12 where λ agreement
// to 1e-10 is guaranteed on these well-separated spectra.

func referenceFiedler(A linalg.Operator, scale float64, opt Options) (Result, error) {
	n := A.Dim()
	if opt.Tol == 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxBasis == 0 {
		opt.MaxBasis = 120
	}
	if opt.MaxBasis > n {
		opt.MaxBasis = n
	}
	if opt.MaxBasis < 2 {
		opt.MaxBasis = 2
	}
	if opt.MaxRestarts == 0 {
		opt.MaxRestarts = 40
	}
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed*2654435761 + 12345))
	start := make([]float64, n)
	for i := range start {
		start[i] = rng.NormFloat64()
	}
	var res Result
	tol := opt.Tol * scale
	x := start
	var r []float64
	for cycle := 0; cycle < opt.MaxRestarts; cycle++ {
		lambda, vec, mv, err := referenceCycle(A, x, opt.MaxBasis)
		res.MatVecs += mv
		res.Restarts = cycle + 1
		if err != nil {
			return res, err
		}
		r = linalg.Grow(r, n)
		A.Apply(vec, r)
		res.MatVecs++
		linalg.Axpy(-lambda, vec, r)
		res.Lambda = lambda
		res.Vector = vec
		res.Residual = linalg.Nrm2(r)
		if res.Residual <= tol {
			return res, nil
		}
		x = vec
	}
	return res, ErrNotConverged
}

func referenceCycle(A linalg.Operator, start []float64, maxBasis int) (lambda float64, vec []float64, matvecs int, err error) {
	n := A.Dim()
	v := append([]float64(nil), start...)
	linalg.ProjectOutOnes(v)
	if linalg.Normalize(v) == 0 {
		for i := range v {
			v[i] = float64(1 - 2*(i&1))
		}
		linalg.ProjectOutOnes(v)
		linalg.Normalize(v)
	}
	basis := make([][]float64, 0, maxBasis)
	var alphas, betas []float64
	w := make([]float64, n)
	beta := 0.0
	for k := 0; k < maxBasis; k++ {
		basis = append(basis, v)
		A.Apply(v, w)
		matvecs++
		if k > 0 {
			linalg.Axpy(-beta, basis[k-1], w)
		}
		alpha := linalg.Dot(v, w)
		linalg.Axpy(-alpha, v, w)
		alphas = append(alphas, alpha)
		linalg.ProjectOutOnes(w)
		for _, q := range basis {
			linalg.OrthogonalizeAgainst(w, q)
		}
		beta = linalg.Nrm2(w)
		if beta < 1e-12*(1+math.Abs(alpha)) || k == maxBasis-1 {
			break
		}
		betas = append(betas, beta)
		next := make([]float64, n)
		copy(next, w)
		linalg.Scal(1/beta, next)
		v = next
	}
	m := len(alphas)
	eig, Z, terr := linalg.TridiagEig(alphas, betas[:m-1], true)
	if terr != nil {
		return 0, nil, matvecs, terr
	}
	lambda = eig[0]
	vec = make([]float64, n)
	for j := 0; j < m; j++ {
		linalg.Axpy(Z.At(j, 0), basis[j], vec)
	}
	linalg.ProjectOutOnes(vec)
	linalg.Normalize(vec)
	return lambda, vec, matvecs, nil
}

// vectorMismatch returns min(‖a−b‖∞, ‖a+b‖∞) — eigenvectors are defined up
// to sign.
func vectorMismatch(a, b []float64) float64 {
	var plus, minus float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > minus {
			minus = d
		}
		if d := math.Abs(a[i] + b[i]); d > plus {
			plus = d
		}
	}
	return math.Min(plus, minus)
}

// TestBLAS2MatchesReferenceOnPath pins the engine on the path graph, where
// λ2 is analytic: both implementations must hit the closed form to 1e-10
// and produce the same (sign-normalized) eigenvector.
func TestBLAS2MatchesReferenceOnPath(t *testing.T) {
	for _, n := range []int{16, 61, 200} {
		g := graph.Path(n)
		op := laplacian.New(g)
		opt := Options{Tol: 1e-12}
		want := 4 * math.Pow(math.Sin(math.Pi/(2*float64(n))), 2)

		res, err := Fiedler(context.Background(), op, op.GershgorinBound(), opt)
		if err != nil {
			t.Fatalf("P%d: new engine: %v", n, err)
		}
		ref, err := referenceFiedler(op, op.GershgorinBound(), opt)
		if err != nil {
			t.Fatalf("P%d: reference: %v", n, err)
		}
		if d := math.Abs(res.Lambda - want); d > 1e-10 {
			t.Errorf("P%d: new λ2 off analytic by %.3e", n, d)
		}
		if d := math.Abs(res.Lambda - ref.Lambda); d > 1e-10 {
			t.Errorf("P%d: engines disagree on λ2 by %.3e", n, d)
		}
		if d := vectorMismatch(res.Vector, ref.Vector); d > 1e-6 {
			t.Errorf("P%d: eigenvector mismatch %.3e", n, d)
		}
	}
}

// TestBLAS2MatchesReferenceRandomSuite pins the engine against the old
// implementation on a fixed random suite: converged Ritz values agree to
// 1e-10 and both match the dense eigensolver; vectors align up to sign.
func TestBLAS2MatchesReferenceRandomSuite(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.Random(80, 160, seed)
		op := laplacian.New(g)
		opt := Options{Tol: 1e-12, Seed: seed}

		res, err := Fiedler(context.Background(), op, op.GershgorinBound(), opt)
		if err != nil {
			t.Fatalf("seed %d: new engine: %v", seed, err)
		}
		ref, err := referenceFiedler(op, op.GershgorinBound(), opt)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		if d := math.Abs(res.Lambda - ref.Lambda); d > 1e-10 {
			t.Errorf("seed %d: engines disagree on λ2 by %.3e (new %v, ref %v)",
				seed, d, res.Lambda, ref.Lambda)
		}
		eig, _ := linalg.SymEig(laplacian.Dense(g))
		lam2 := eig[1]
		if d := math.Abs(res.Lambda - lam2); d > 1e-10*(1+lam2) {
			t.Errorf("seed %d: new λ2 off dense by %.3e", seed, d)
		}
		if d := vectorMismatch(res.Vector, ref.Vector); d > 1e-6 {
			t.Errorf("seed %d: eigenvector mismatch %.3e", seed, d)
		}
	}
}

// TestFiedlerWSZeroAlloc is the workspace contract gate: with a warm Work
// and output buffer, a full solve performs zero allocations.
func TestFiedlerWSZeroAlloc(t *testing.T) {
	g := graph.Grid(40, 30)
	op := laplacian.New(g)
	scale := op.GershgorinBound()
	wk := new(Work)
	out := make([]float64, g.N())
	// Warm the workspace (first call grows every buffer).
	if _, err := FiedlerWS(context.Background(), wk, op, scale, Options{}, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := FiedlerWS(context.Background(), wk, op, scale, Options{}, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FiedlerWS allocated %v times per solve, want 0", allocs)
	}
}

// TestFiedlerWSMatchesFiedler checks the pooled wrapper and the explicit-
// workspace entry point produce identical results.
func TestFiedlerWSMatchesFiedler(t *testing.T) {
	g := graph.Grid(25, 17)
	op := laplacian.New(g)
	scale := op.GershgorinBound()
	a, err := Fiedler(context.Background(), op, scale, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wk := new(Work)
	out := make([]float64, g.N())
	b, err := FiedlerWS(context.Background(), wk, op, scale, Options{Seed: 3}, out)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lambda != b.Lambda || a.MatVecs != b.MatVecs {
		t.Fatalf("wrapper diverges: λ %v vs %v, matvecs %d vs %d", a.Lambda, b.Lambda, a.MatVecs, b.MatVecs)
	}
	for i := range a.Vector {
		if a.Vector[i] != b.Vector[i] {
			t.Fatalf("vectors differ at %d", i)
		}
	}
}

// BenchmarkLanczosWS is the CI allocation gate for the Lanczos hot path: a
// steady-state workspace-threaded solve must report 0 allocs/op (enforced
// by cmd/benchjson -zero-alloc).
func BenchmarkLanczosWS(b *testing.B) {
	g := graph.Grid(45, 45)
	op := laplacian.New(g)
	scale := op.GershgorinBound()
	wk := new(Work)
	out := make([]float64, g.N())
	if _, err := FiedlerWS(context.Background(), wk, op, scale, Options{}, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FiedlerWS(context.Background(), wk, op, scale, Options{}, out); err != nil {
			b.Fatal(err)
		}
	}
}
