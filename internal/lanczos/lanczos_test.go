package lanczos

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/laplacian"
	"repro/internal/linalg"
)

func fiedlerOf(t *testing.T, g *graph.Graph) Result {
	t.Helper()
	op := laplacian.New(g)
	res, err := Fiedler(context.Background(), op, op.GershgorinBound(), Options{})
	if err != nil {
		t.Fatalf("Fiedler: %v", err)
	}
	return res
}

func TestPathClosedForm(t *testing.T) {
	for _, n := range []int{2, 3, 5, 16, 61, 200} {
		g := graph.Path(n)
		res := fiedlerOf(t, g)
		want := 4 * math.Pow(math.Sin(math.Pi/(2*float64(n))), 2)
		if math.Abs(res.Lambda-want) > 1e-6*(1+want) {
			t.Errorf("P%d: λ2 = %v, want %v", n, res.Lambda, want)
		}
	}
}

func TestCycleClosedForm(t *testing.T) {
	for _, n := range []int{3, 4, 10, 47} {
		g := graph.Cycle(n)
		res := fiedlerOf(t, g)
		want := 2 - 2*math.Cos(2*math.Pi/float64(n))
		if math.Abs(res.Lambda-want) > 1e-6*(1+want) {
			t.Errorf("C%d: λ2 = %v, want %v", n, res.Lambda, want)
		}
	}
}

func TestCompleteAndStar(t *testing.T) {
	if res := fiedlerOf(t, graph.Complete(9)); math.Abs(res.Lambda-9) > 1e-6 {
		t.Errorf("K9: λ2 = %v, want 9", res.Lambda)
	}
	if res := fiedlerOf(t, graph.Star(12)); math.Abs(res.Lambda-1) > 1e-6 {
		t.Errorf("Star12: λ2 = %v, want 1", res.Lambda)
	}
}

func TestGridProductRule(t *testing.T) {
	// λ2(P_a × P_b) = min(λ2(P_a), λ2(P_b)).
	g := graph.Grid(9, 4)
	res := fiedlerOf(t, g)
	want := 4 * math.Pow(math.Sin(math.Pi/18), 2)
	if math.Abs(res.Lambda-want) > 1e-6*(1+want) {
		t.Errorf("Grid9x4: λ2 = %v, want %v", res.Lambda, want)
	}
}

func TestVectorProperties(t *testing.T) {
	g := graph.Grid(8, 5)
	res := fiedlerOf(t, g)
	// Unit norm, orthogonal to ones, small residual.
	if math.Abs(linalg.Nrm2(res.Vector)-1) > 1e-8 {
		t.Errorf("‖x‖ = %v", linalg.Nrm2(res.Vector))
	}
	var sum float64
	for _, v := range res.Vector {
		sum += v
	}
	if math.Abs(sum) > 1e-8 {
		t.Errorf("1ᵀx = %v", sum)
	}
	op := laplacian.New(g)
	if rq := op.RayleighQuotient(res.Vector); math.Abs(rq-res.Lambda) > 1e-8 {
		t.Errorf("RQ %v vs λ %v", rq, res.Lambda)
	}
}

func TestMatchesDenseEigensolver(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.Random(40, 70, seed)
		eig, _ := linalg.SymEig(laplacian.Dense(g))
		res := fiedlerOf(t, g)
		if math.Abs(res.Lambda-eig[1]) > 1e-6*(1+eig[1]) {
			t.Errorf("seed %d: Lanczos λ2 = %v, dense = %v", seed, res.Lambda, eig[1])
		}
	}
}

// The Fiedler vector of a path is monotone (it is cos((k+1/2)π/n)), so the
// spectral ordering recovers the natural ordering of the path. This is the
// smallest end-to-end sanity check of the paper's whole premise.
func TestPathVectorMonotone(t *testing.T) {
	g := graph.Path(31)
	res := fiedlerOf(t, g)
	x := res.Vector
	increasing, decreasing := true, true
	for i := 1; i < len(x); i++ {
		if x[i] < x[i-1] {
			increasing = false
		}
		if x[i] > x[i-1] {
			decreasing = false
		}
	}
	if !increasing && !decreasing {
		t.Fatalf("path Fiedler vector not monotone: %v", x[:8])
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := graph.Grid(6, 6)
	op := laplacian.New(g)
	a, err := Fiedler(context.Background(), op, op.GershgorinBound(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fiedler(context.Background(), op, op.GershgorinBound(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Vector {
		if a.Vector[i] != b.Vector[i] {
			t.Fatal("same seed produced different vectors")
		}
	}
}

func TestTinyGraphs(t *testing.T) {
	// n=1: λ=0 by convention.
	op := laplacian.New(graph.NewBuilder(1).Build())
	res, err := Fiedler(context.Background(), op, 1, Options{})
	if err != nil || res.Lambda != 0 {
		t.Fatalf("n=1: %v %v", res, err)
	}
	// n=2 path: λ2 = 2.
	res = fiedlerOf(t, graph.Path(2))
	if math.Abs(res.Lambda-2) > 1e-9 {
		t.Fatalf("P2: λ2 = %v", res.Lambda)
	}
}

func TestNotConvergedStillUsable(t *testing.T) {
	// Starve the solver: one restart with a tiny basis on a big slow graph.
	g := graph.Path(4000)
	op := laplacian.New(g)
	res, err := Fiedler(context.Background(), op, op.GershgorinBound(), Options{MaxBasis: 5, MaxRestarts: 1, Tol: 1e-12})
	if err == nil {
		t.Skip("unexpectedly converged; nothing to test")
	}
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("wrong error type: %v", err)
	}
	if len(res.Vector) != g.N() || linalg.Nrm2(res.Vector) == 0 {
		t.Fatal("no usable vector returned with ErrNotConverged")
	}
}

func TestMediumGraphConvergence(t *testing.T) {
	g := graph.Grid(40, 25) // n=1000
	res := fiedlerOf(t, g)
	want := 4 * math.Pow(math.Sin(math.Pi/80), 2)
	if math.Abs(res.Lambda-want) > 1e-5*(1+want) {
		t.Errorf("Grid40x25: λ2 = %v, want %v", res.Lambda, want)
	}
}

func BenchmarkFiedlerGrid(b *testing.B) {
	g := graph.Grid(50, 50)
	op := laplacian.New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fiedler(context.Background(), op, op.GershgorinBound(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
