// Package lanczos implements the Lanczos algorithm for computing the
// smallest nontrivial eigenpair (λ2, x2) of a graph Laplacian — the Fiedler
// value and vector of §2.2. It is "the standard algorithm for computing a
// few eigenvalues and eigenvectors of large sparse symmetric matrices"
// referenced in §3 of the paper.
//
// The implementation deflates the known null vector (the constant vector)
// and fully reorthogonalizes the Krylov basis, trading memory for
// unconditional robustness. For graphs too large for that trade the
// multilevel driver in internal/multilevel calls this only at the coarsest
// level, exactly as the paper prescribes.
package lanczos

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Options configures the Fiedler computation.
type Options struct {
	// Tol is the residual tolerance on ‖L·x − λ·x‖ relative to λn's
	// Gershgorin scale. Default 1e-8.
	Tol float64
	// MaxBasis caps the Krylov basis per restart cycle. Default min(n, 120).
	MaxBasis int
	// MaxRestarts caps restart cycles. Default 40.
	MaxRestarts int
	// Seed drives the random start vector. The default (0) is a fixed seed,
	// keeping runs reproducible.
	Seed int64
}

// Result reports the computed eigenpair and solver statistics.
type Result struct {
	// Lambda is the converged Ritz value approximating λ2.
	Lambda float64
	// Vector is the unit-norm eigenvector approximation (the Fiedler
	// vector), orthogonal to the constant vector.
	Vector []float64
	// Residual is the final ‖L·x − λ·x‖.
	Residual float64
	// MatVecs counts Laplacian applications.
	MatVecs int
	// Restarts counts restart cycles used.
	Restarts int
}

// ErrNotConverged is wrapped by Fiedler when the iteration limit is reached;
// the best available eigenpair is still returned alongside it, because an
// approximate Fiedler vector still yields a usable ordering (the paper's
// "iterative in nature" trade-off).
var ErrNotConverged = errors.New("lanczos: not converged")

// Fiedler computes the smallest eigenpair of A restricted to the complement
// of the constant vector. For a connected-graph Laplacian this is (λ2, x2).
//
// A must be symmetric positive semidefinite with the constant vector in its
// null space (a Laplacian); scale is an upper bound on its largest
// eigenvalue used for the relative convergence test (pass the Gershgorin
// bound).
func Fiedler(A linalg.Operator, scale float64, opt Options) (Result, error) {
	n := A.Dim()
	if n == 0 {
		return Result{}, errors.New("lanczos: empty operator")
	}
	if n == 1 {
		return Result{Lambda: 0, Vector: []float64{1}}, nil
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxBasis == 0 {
		opt.MaxBasis = 120
	}
	if opt.MaxBasis > n {
		opt.MaxBasis = n
	}
	if opt.MaxBasis < 2 {
		opt.MaxBasis = 2
	}
	if opt.MaxRestarts == 0 {
		opt.MaxRestarts = 40
	}
	if scale <= 0 {
		scale = 1
	}

	rng := rand.New(rand.NewSource(opt.Seed*2654435761 + 12345))
	start := make([]float64, n)
	for i := range start {
		start[i] = rng.NormFloat64()
	}

	var res Result
	tol := opt.Tol * scale
	x := start
	var r []float64
	for cycle := 0; cycle < opt.MaxRestarts; cycle++ {
		lambda, vec, mv, err := cycleLanczos(A, x, opt.MaxBasis)
		res.MatVecs += mv
		res.Restarts = cycle + 1
		if err != nil {
			return res, err
		}
		// Residual check; the residual vector is reused across restarts.
		r = linalg.Grow(r, n)
		A.Apply(vec, r)
		res.MatVecs++
		linalg.Axpy(-lambda, vec, r)
		res.Lambda = lambda
		res.Vector = vec
		res.Residual = linalg.Nrm2(r)
		if res.Residual <= tol {
			return res, nil
		}
		// Restart from the best Ritz vector.
		x = vec
	}
	return res, fmt.Errorf("%w after %d restarts (residual %.3e, tol %.3e)",
		ErrNotConverged, opt.MaxRestarts, res.Residual, tol)
}

// cycleLanczos runs one Lanczos cycle with full reorthogonalization against
// both the constant vector and the accumulated basis, then extracts the
// smallest Ritz pair.
func cycleLanczos(A linalg.Operator, start []float64, maxBasis int) (lambda float64, vec []float64, matvecs int, err error) {
	n := A.Dim()

	// q0 = start, projected off the constant vector and normalized.
	v := append([]float64(nil), start...)
	linalg.ProjectOutOnes(v)
	if linalg.Normalize(v) == 0 {
		// Degenerate start (constant); use an alternating vector.
		for i := range v {
			v[i] = float64(1 - 2*(i&1))
		}
		linalg.ProjectOutOnes(v)
		linalg.Normalize(v)
	}

	basis := make([][]float64, 0, maxBasis)
	var alphas, betas []float64
	w := make([]float64, n)
	beta := 0.0
	for k := 0; k < maxBasis; k++ {
		basis = append(basis, v)
		A.Apply(v, w)
		matvecs++
		if k > 0 {
			linalg.Axpy(-beta, basis[k-1], w)
		}
		alpha := linalg.Dot(v, w)
		linalg.Axpy(-alpha, v, w)
		alphas = append(alphas, alpha)
		// Full reorthogonalization: against ones and the whole basis.
		linalg.ProjectOutOnes(w)
		for _, q := range basis {
			linalg.OrthogonalizeAgainst(w, q)
		}
		beta = linalg.Nrm2(w)
		if beta < 1e-12*(1+math.Abs(alpha)) || k == maxBasis-1 {
			break
		}
		betas = append(betas, beta)
		next := make([]float64, n)
		copy(next, w)
		linalg.Scal(1/beta, next)
		v = next
	}

	m := len(alphas)
	eig, Z, terr := linalg.TridiagEig(alphas, betas[:m-1], true)
	if terr != nil {
		return 0, nil, matvecs, terr
	}
	lambda = eig[0]
	vec = make([]float64, n)
	for j := 0; j < m; j++ {
		linalg.Axpy(Z.At(j, 0), basis[j], vec)
	}
	linalg.ProjectOutOnes(vec)
	linalg.Normalize(vec)
	return lambda, vec, matvecs, nil
}
