// Package lanczos implements the Lanczos algorithm for computing the
// smallest nontrivial eigenpair (λ2, x2) of a graph Laplacian — the Fiedler
// value and vector of §2.2. It is "the standard algorithm for computing a
// few eigenvalues and eigenvectors of large sparse symmetric matrices"
// referenced in §3 of the paper.
//
// The implementation deflates the known null vector (the constant vector)
// and fully reorthogonalizes the Krylov basis, trading memory for
// unconditional robustness. For graphs too large for that trade the
// multilevel driver in internal/multilevel calls this only at the coarsest
// level, exactly as the paper prescribes.
//
// # Engine layout
//
// The hot loop is a BLAS-2 engine over a contiguous Krylov basis: the k
// basis vectors live in one row-major backing array (row j = vector q_j),
// and full reorthogonalization runs as one blocked-MGS kernel per step
// (linalg.OrthoMGS): basis rows are processed four at a time, each block's
// coefficients computed against the already-updated candidate and removed
// while the block is hot in cache — the numerical behavior of the old
// one-vector-at-a-time modified Gram–Schmidt loop at a quarter of its
// memory traffic. A classical-GS refinement pass (linalg.GemvT +
// linalg.GemvSub) fires under a Parlett–Kahan-style "twice is enough"
// cancellation test near breakdown. The matvec itself fuses the three-term
// recurrence when the operator implements linalg.AxpyApplier (the
// Laplacian operators do): w = A·q_k − β·q_{k−1} in a single pass.
//
// All per-solve state lives in a reusable Work workspace (single backing
// array for the basis, α/β coefficient buffers reused ring-style across
// restart cycles, workspace-threaded Ritz extraction), so steady-state
// solves via FiedlerWS run with zero allocations — pinned by an
// AllocsPerRun gate and the BenchmarkLanczosWS CI gate.
package lanczos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/linalg"
)

// Options configures the Fiedler computation.
type Options struct {
	// Tol is the residual tolerance on ‖L·x − λ·x‖ relative to λn's
	// Gershgorin scale. Default 1e-8.
	Tol float64
	// MaxBasis caps the Krylov basis per restart cycle. Default min(n, 120).
	MaxBasis int
	// MaxRestarts caps restart cycles. Default 40.
	MaxRestarts int
	// Seed drives the random start vector. The default (0) is a fixed seed,
	// keeping runs reproducible.
	Seed int64
}

// Result reports the computed eigenpair and solver statistics.
type Result struct {
	// Lambda is the converged Ritz value approximating λ2.
	Lambda float64
	// Vector is the unit-norm eigenvector approximation (the Fiedler
	// vector), orthogonal to the constant vector.
	Vector []float64
	// Residual is the final ‖L·x − λ·x‖.
	Residual float64
	// MatVecs counts Laplacian applications.
	MatVecs int
	// Restarts counts restart cycles used.
	Restarts int
}

// ErrNotConverged is wrapped by Fiedler when the iteration limit is reached;
// the best available eigenpair is still returned alongside it, because an
// approximate Fiedler vector still yields a usable ordering (the paper's
// "iterative in nature" trade-off).
var ErrNotConverged = errors.New("lanczos: not converged")

// ErrCancelled is the typed error an in-flight eigensolve returns when its
// context is cancelled (explicit cancellation or a deadline, e.g. the
// portfolio engine's Budget). It carries the best-so-far fallback eigenpair
// so callers can still order with an approximate vector instead of losing
// the work already spent: Vector is nil only when cancellation hit before
// the first restart cycle produced anything usable. errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) see
// through it via Unwrap. The multilevel scheme returns the same type with
// its partially-refined iterate interpolated up to the finest level.
type ErrCancelled struct {
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
	// Lambda and Vector are the best-so-far fallback eigenpair available
	// when cancellation was observed; Vector is nil when nothing usable
	// existed yet.
	Lambda float64
	Vector []float64
}

func (e *ErrCancelled) Error() string {
	state := "with a usable fallback eigenpair"
	if e.Vector == nil {
		state = "before a usable eigenpair existed"
	}
	return fmt.Sprintf("eigensolve cancelled %s: %v", state, e.Cause)
}

// Unwrap exposes the context error for errors.Is.
func (e *ErrCancelled) Unwrap() error { return e.Cause }

// Work is the reusable Lanczos workspace: the contiguous row-major Krylov
// basis, the candidate/iterate/residual vectors, the Gram–Schmidt
// coefficient buffer, the α/β tridiagonal entries (reused across restart
// cycles) and the Ritz-extraction scratch. The zero value is ready; buffers
// grow on demand and are retained, so a Work reused across solves of the
// same size allocates nothing (see TestFiedlerWSZeroAlloc). A Work is not
// safe for concurrent use.
type Work struct {
	q      []float64 // row-major basis: row j is q[j*n : (j+1)*n]
	w      []float64 // candidate vector being orthogonalized
	x      []float64 // current iterate: restart start, then Ritz vector
	r      []float64 // residual of the restart convergence check
	c      []float64 // Gram–Schmidt coefficients / tridiagonal eigenvector
	alphas []float64
	betas  []float64
	td     linalg.TridiagWork
}

func (wk *Work) bind(n, m int) {
	wk.q = linalg.Grow(wk.q, m*n)
	wk.w = linalg.Grow(wk.w, n)
	wk.x = linalg.Grow(wk.x, n)
	wk.r = linalg.Grow(wk.r, n)
	wk.c = linalg.Grow(wk.c, m)
	wk.alphas = linalg.Grow(wk.alphas, m)
	wk.betas = linalg.Grow(wk.betas, m)
}

var workPool = sync.Pool{New: func() any { return new(Work) }}

// fillStart writes a deterministic pseudo-random start vector derived from
// seed — a splitmix64 stream mapped to [−0.5, 0.5). Any generic direction
// works as a Lanczos start; an inline generator keeps the zero-allocation
// contract that rand.New would break.
func fillStart(x []float64, seed int64) {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	for i := range x {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		x[i] = float64(z>>11)/(1<<53) - 0.5
	}
}

// Fiedler computes the smallest eigenpair of A restricted to the complement
// of the constant vector. For a connected-graph Laplacian this is (λ2, x2).
//
// A must be symmetric positive semidefinite with the constant vector in its
// null space (a Laplacian); scale is an upper bound on its largest
// eigenvalue used for the relative convergence test (pass the Gershgorin
// bound). ctx is checked once per restart cycle: cancellation or deadline
// expiry interrupts the solve within one restart and returns *ErrCancelled
// with the best-so-far eigenpair (nil ctx means no cancellation). The
// workspace is drawn from an internal pool; callers that solve repeatedly
// and want the zero-allocation path use FiedlerWS.
func Fiedler(ctx context.Context, A linalg.Operator, scale float64, opt Options) (Result, error) {
	n := A.Dim()
	if n == 0 {
		return Result{}, errors.New("lanczos: empty operator")
	}
	wk := workPool.Get().(*Work)
	defer workPool.Put(wk)
	res, err := FiedlerWS(ctx, wk, A, scale, opt, make([]float64, n))
	return res, err
}

// FiedlerWS is Fiedler with a caller-provided workspace and output vector.
// out must have length A.Dim(); on return Result.Vector aliases out. With a
// warm Work of matching size the whole solve performs zero allocations —
// the contract the BenchmarkLanczosWS CI gate pins.
func FiedlerWS(ctx context.Context, wk *Work, A linalg.Operator, scale float64, opt Options, out []float64) (Result, error) {
	n := A.Dim()
	if n == 0 {
		return Result{}, errors.New("lanczos: empty operator")
	}
	if len(out) != n {
		return Result{}, fmt.Errorf("lanczos: out has length %d, want %d", len(out), n)
	}
	if n == 1 {
		out[0] = 1
		return Result{Lambda: 0, Vector: out}, nil
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxBasis == 0 {
		opt.MaxBasis = 120
	}
	if opt.MaxBasis > n {
		opt.MaxBasis = n
	}
	if opt.MaxBasis < 2 {
		opt.MaxBasis = 2
	}
	if opt.MaxRestarts == 0 {
		opt.MaxRestarts = 40
	}
	if scale <= 0 {
		scale = 1
	}

	wk.bind(n, opt.MaxBasis)
	fillStart(wk.x, opt.Seed)

	var res Result
	tol := opt.Tol * scale
	for cycle := 0; cycle < opt.MaxRestarts; cycle++ {
		// The cancellation check runs once per restart cycle — cheap next to
		// the ≤ MaxBasis matvecs a cycle costs — so a cancelled or
		// budget-expired solve returns within one restart iteration with the
		// best Ritz pair computed so far as the fallback.
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return res, &ErrCancelled{Cause: cerr, Lambda: res.Lambda, Vector: res.Vector}
			}
		}
		lambda, mv, err := wk.cycle(A, opt.MaxBasis)
		res.MatVecs += mv
		res.Restarts = cycle + 1
		if err != nil {
			return res, err
		}
		// Residual check: r = A·x − λ·x and its norm in one fused pass. The
		// Ritz vector in wk.x doubles as the next restart's start.
		A.Apply(wk.x, wk.r)
		res.MatVecs++
		res.Lambda = lambda
		res.Residual = linalg.AxpyNrm2(-lambda, wk.x, wk.r)
		copy(out, wk.x)
		res.Vector = out
		if res.Residual <= tol {
			return res, nil
		}
	}
	return res, fmt.Errorf("%w after %d restarts (residual %.3e, tol %.3e)",
		ErrNotConverged, opt.MaxRestarts, res.Residual, tol)
}

// cycle runs one Lanczos restart cycle: build a fully-reorthogonalized
// Krylov basis from the start vector in wk.x, then overwrite wk.x with the
// smallest Ritz vector. The basis is grown in the contiguous wk.q array;
// reorthogonalization is blocked CGS with a conditional second pass.
func (wk *Work) cycle(A linalg.Operator, maxBasis int) (lambda float64, matvecs int, err error) {
	n := A.Dim()
	q, w, c := wk.q, wk.w, wk.c
	fused, hasFused := A.(linalg.AxpyApplier)

	// Row 0: the start vector, deflated and normalized.
	v := q[:n]
	copy(v, wk.x)
	linalg.ProjectOutOnes(v)
	if linalg.Normalize(v) == 0 {
		// Degenerate start (constant); use an alternating vector.
		for i := range v {
			v[i] = float64(1 - 2*(i&1))
		}
		linalg.ProjectOutOnes(v)
		linalg.Normalize(v)
	}

	beta := 0.0
	m := 0
	for k := 0; k < maxBasis; k++ {
		m = k + 1
		qk := q[k*n : (k+1)*n]
		// w = A·q_k − β·q_{k−1}, fused into the matvec when the operator
		// supports it (the Laplacian operators do).
		if k > 0 && hasFused {
			fused.ApplyAxpy(qk, w, beta, q[(k-1)*n:k*n])
		} else {
			A.Apply(qk, w)
			if k > 0 {
				linalg.Axpy(-beta, q[(k-1)*n:k*n], w)
			}
		}
		matvecs++
		// The recurrence coefficient α = q_kᵀw is read off before any other
		// projection (the raw tridiagonal entry), then the whole basis —
		// row k included, cleaning α's roundoff remainder — is removed by
		// one blocked-MGS pass: block-sequential updates for the stability
		// of the classic per-vector loop, four rows per memory pass for the
		// BLAS-2 traffic.
		alpha := linalg.Dot(qk, w)
		linalg.Axpy(-alpha, qk, w)
		linalg.ProjectOutOnes(w)
		csq := linalg.OrthoMGS(w, q, m, n, c) + alpha*alpha
		beta = linalg.Nrm2(w)
		// "Twice is enough" safety net: ‖w before‖² ≈ β² + Σc² by
		// Pythagoras, so no extra pass is needed to detect cancellation.
		// The MGS pass already has the per-vector loop's stability, so the
		// refinement only needs to fire on severe cancellation (η = 1e-4,
		// near-breakdown), where the remainder is roundoff-dominated under
		// ANY one-pass scheme — not at the classical 1/√2 that would
		// trigger on nearly every Laplacian step.
		const eta = 1e-4
		if beta*beta < eta*eta*(beta*beta+csq) {
			linalg.GemvT(c, q, m, n, w)
			alpha += c[k]
			linalg.GemvSub(w, q, m, n, c)
			linalg.ProjectOutOnes(w)
			beta = linalg.Nrm2(w)
		}
		wk.alphas[k] = alpha
		if beta < 1e-12*(1+math.Abs(alpha)) || k == maxBasis-1 {
			break
		}
		wk.betas[k] = beta
		// Next basis row: w/β.
		next := q[(k+1)*n : (k+2)*n]
		inv := 1 / beta
		for i, wi := range w {
			next[i] = wi * inv
		}
	}

	lambda, terr := linalg.TridiagSmallestWS(wk.alphas[:m], wk.betas[:m-1], c[:m], &wk.td)
	if terr != nil {
		return 0, matvecs, terr
	}
	// Assemble the Ritz vector x = Σ c[j]·q_j in place of the iterate.
	linalg.Gemv(wk.x, q, m, n, c)
	linalg.ProjectOutOnes(wk.x)
	linalg.Normalize(wk.x)
	return lambda, matvecs, nil
}
