package mm

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestReadSymmetricPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment line
4 4 6
1 1
2 1
2 2
3 2
4 4
4 3
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
}

func TestReadRealValuesIgnored(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 2.5
2 1 -1.0e0
3 2 7
3 3 1.25
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

func TestReadGeneralSymmetrizes(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
3 3 3
1 2 1.0
2 1 1.0
3 1 4
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatalf("general symmetrization wrong: M=%d", g.M())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"not mm":        "garbage\n1 1 0\n",
		"array format":  "%%MatrixMarket matrix array real symmetric\n2 2\n1\n2\n3\n",
		"not square":    "%%MatrixMarket matrix coordinate pattern symmetric\n3 4 0\n",
		"out of range":  "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n3 1\n",
		"short entries": "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 5\n1 1\n2 1\n",
		"bad size line": "%%MatrixMarket matrix coordinate pattern symmetric\nx y z\n",
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig := graph.Random(40, 80, 9)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || back.M() != orig.M() {
		t.Fatalf("round trip size: %d/%d vs %d/%d", back.N(), back.M(), orig.N(), orig.M())
	}
	for v := 0; v < orig.N(); v++ {
		a, b := orig.Neighbors(v), back.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestReadNoTrailingNewline(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n1 1\n2 1"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d", g.M())
	}
}
