package mm

import (
	"strings"
	"testing"
)

// A tiny 4×4 symmetric matrix in genuine Harwell–Boeing layout (RSA,
// lower-triangle column storage):
//
//	[ 2 -1  0  0]
//	[-1  2 -1  0]
//	[ 0 -1  2 -3]
//	[ 0  0 -3  2]
const hbRSA = `Tiny test matrix                                                        TEST1
             5             1             1             2             0
RSA                          4             4             7             0
(13I6)          (16I5)          (4E20.12)
     1     3     5     7     8
    1    2    2    3    3    4    4
  0.200000000000E+01 -0.100000000000E+01  0.200000000000E+01 -0.100000000000E+01
  0.200000000000E+01 -0.300000000000E+01  0.200000000000E+01
`

func TestReadHarwellBoeingRSA(t *testing.T) {
	g, w, err := ReadHarwellBoeing(strings.NewReader(hbRSA))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 4, 3", g.N(), g.M())
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if g.HasEdge(0, 2) {
		t.Error("spurious edge 0-2")
	}
	if got := w(0, 1); got != 1 {
		t.Errorf("w(0,1) = %v, want 1", got)
	}
	if got := w(2, 3); got != 3 {
		t.Errorf("w(2,3) = %v, want |−3| = 3", got)
	}
}

const hbPSA = `Pattern-only matrix                                                     TEST2
             4             1             2             0             0
PSA                          5             5             6             0
(13I6)          (8I3)
     1     3     4     6     7     7
  2  3
  3
  4  5
  5
`

func TestReadHarwellBoeingPattern(t *testing.T) {
	g, w, err := ReadHarwellBoeing(strings.NewReader(hbPSA))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	// Entries: col1 rows {2,3}, col2 row {3}, col3 rows {4,5}, col4 {5}.
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}}
	if g.M() != len(want) {
		t.Fatalf("M = %d, want %d", g.M(), len(want))
	}
	for _, e := range want {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if w(0, 1) != 1 {
		t.Error("pattern weights not unit")
	}
}

func TestReadHarwellBoeingErrors(t *testing.T) {
	cases := map[string]string{
		"elemental": strings.Replace(hbRSA, "RSA", "RSE", 1),
		"truncated": hbRSA[:len(hbRSA)/2],
		"not square": `x
             4             1             1             2             0
RSA                          3             4             7             0
(13I6)          (16I5)          (4E20.12)
`,
		"bad pointers": `x
             4             1             1             2             0
RSA                          2             2             1             0
(13I6)          (16I5)          (4E20.12)
     2     2     2
     1
  0.1E+01
`,
	}
	for name, in := range cases {
		if _, _, err := ReadHarwellBoeing(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseFortranFormat(t *testing.T) {
	cases := map[string]fortranFormat{
		"(13I6)":       {13, 6},
		"(16I5)":       {16, 5},
		"(4E20.12)":    {4, 20},
		"(1P5D16.8)":   {5, 16},
		"(1P,4E20.12)": {4, 20},
		"(I9)":         {1, 9},
		"(10F7.1)":     {10, 7},
	}
	for in, want := range cases {
		got, err := parseFortranFormat(in)
		if err != nil {
			t.Errorf("%s: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("%s: got %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"(A8)", "13I6", "(I)", "()"} {
		if _, err := parseFortranFormat(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestFortranFloat(t *testing.T) {
	cases := map[string]float64{
		"0.2E+01":  2,
		"-1.5D-02": -0.015,
		"3.25":     3.25,
		"1.23+05":  123000,
		"-4.5-01":  -0.45,
	}
	for in, want := range cases {
		got, err := fortranFloat(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-12*(1+want) && diff > 1e-12 {
			t.Errorf("%q: got %v, want %v", in, got, want)
		}
	}
}
