package mm

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// This file reads the Harwell–Boeing exchange format — the fixed-column
// FORTRAN format in which the paper's Boeing–Harwell test matrices
// (BCSSTK13/29/30/31/32/33, CAN1072, …) were actually distributed. With it,
// users holding the original collection can run the pipeline on the exact
// matrices of Tables 4.1–4.2.

// fortranFormat describes one repeated fixed-width numeric field, parsed
// from descriptors such as "(13I6)", "(4E20.12)" or "(1P5D16.8)".
type fortranFormat struct {
	perLine int
	width   int
}

var fortranFormatRE = regexp.MustCompile(`^\(\s*(?:\d+\s*P\s*,?\s*)?(\d*)\s*[IiEeFfDdGg]\s*(\d+)(?:\.\d+)?\s*\)$`)

func parseFortranFormat(s string) (fortranFormat, error) {
	m := fortranFormatRE.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return fortranFormat{}, fmt.Errorf("mm: unsupported FORTRAN format %q", s)
	}
	per := 1
	if m[1] != "" {
		v, err := strconv.Atoi(m[1])
		if err != nil || v < 1 {
			return fortranFormat{}, fmt.Errorf("mm: bad repeat in format %q", s)
		}
		per = v
	}
	w, err := strconv.Atoi(m[2])
	if err != nil || w < 1 {
		return fortranFormat{}, fmt.Errorf("mm: bad width in format %q", s)
	}
	return fortranFormat{perLine: per, width: w}, nil
}

// readFixed reads count fixed-width fields laid out f.perLine per card.
func readFixed(br *bufio.Reader, f fortranFormat, count int) ([]string, error) {
	out := make([]string, 0, count)
	for len(out) < count {
		line, err := br.ReadString('\n')
		if line == "" && err != nil {
			return nil, fmt.Errorf("mm: unexpected end of HB data: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		for i := 0; i < f.perLine && len(out) < count; i++ {
			lo := i * f.width
			if lo >= len(line) {
				break
			}
			hi := lo + f.width
			if hi > len(line) {
				hi = len(line)
			}
			field := strings.TrimSpace(line[lo:hi])
			if field == "" {
				continue
			}
			out = append(out, field)
		}
		if err != nil && len(out) < count {
			return nil, fmt.Errorf("mm: HB data truncated (%d of %d fields)", len(out), count)
		}
	}
	return out, nil
}

// fortranFloat converts FORTRAN literals (D exponents, missing 'E') to Go
// floats.
func fortranFloat(s string) (float64, error) {
	s = strings.ReplaceAll(strings.ReplaceAll(s, "D", "E"), "d", "e")
	// Handle "1.23+05" style (exponent without letter).
	if i := strings.LastIndexAny(s, "+-"); i > 0 && s[i-1] != 'e' && s[i-1] != 'E' {
		s = s[:i] + "e" + s[i:]
	}
	return strconv.ParseFloat(s, 64)
}

// ReadHarwellBoeing parses a Harwell–Boeing file and returns the adjacency
// graph of the matrix pattern together with a positive symmetric weight
// function (unit weights for pattern matrices), exactly as ReadWeighted
// does for Matrix Market files. Supported types: assembled (x-x-A) real,
// pattern and complex matrices, symmetric or general (symmetrized);
// elemental matrices are rejected.
func ReadHarwellBoeing(r io.Reader) (*graph.Graph, func(u, v int) float64, error) {
	br := bufio.NewReader(r)
	card := func() (string, error) {
		line, err := br.ReadString('\n')
		if line == "" && err != nil {
			return "", fmt.Errorf("mm: truncated HB header: %w", err)
		}
		return strings.TrimRight(line, "\r\n"), nil
	}
	// Card 1: title/key — ignored.
	if _, err := card(); err != nil {
		return nil, nil, err
	}
	// Card 2: card counts.
	l2, err := card()
	if err != nil {
		return nil, nil, err
	}
	var totcrd, ptrcrd, indcrd, valcrd, rhscrd int
	n2, _ := fmt.Sscan(l2, &totcrd, &ptrcrd, &indcrd, &valcrd, &rhscrd)
	if n2 < 4 {
		return nil, nil, fmt.Errorf("mm: bad HB card-count line %q", l2)
	}
	// Card 3: type and dimensions.
	l3, err := card()
	if err != nil {
		return nil, nil, err
	}
	if len(l3) < 3 {
		return nil, nil, fmt.Errorf("mm: bad HB type line %q", l3)
	}
	mxtype := strings.ToUpper(strings.TrimSpace(l3[:3]))
	rest := strings.Fields(l3[3:])
	if len(rest) < 3 {
		return nil, nil, fmt.Errorf("mm: bad HB dimension line %q", l3)
	}
	nrow, err1 := strconv.Atoi(rest[0])
	ncol, err2 := strconv.Atoi(rest[1])
	nnz, err3 := strconv.Atoi(rest[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, nil, fmt.Errorf("mm: bad HB dimensions in %q", l3)
	}
	if nrow != ncol {
		return nil, nil, fmt.Errorf("mm: HB matrix is %dx%d, want square", nrow, ncol)
	}
	if len(mxtype) != 3 || mxtype[2] == 'E' {
		return nil, nil, fmt.Errorf("mm: unsupported HB type %q (elemental or malformed)", mxtype)
	}
	valued := mxtype[0] == 'R' || mxtype[0] == 'C'
	complexVals := mxtype[0] == 'C'
	// Card 4: formats.
	l4, err := card()
	if err != nil {
		return nil, nil, err
	}
	ff := strings.Fields(l4)
	if len(ff) < 2 {
		return nil, nil, fmt.Errorf("mm: bad HB format line %q", l4)
	}
	ptrFmt, err := parseFortranFormat(ff[0])
	if err != nil {
		return nil, nil, err
	}
	indFmt, err := parseFortranFormat(ff[1])
	if err != nil {
		return nil, nil, err
	}
	var valFmt fortranFormat
	if valued && valcrd > 0 {
		if len(ff) < 3 {
			return nil, nil, fmt.Errorf("mm: missing value format in %q", l4)
		}
		valFmt, err = parseFortranFormat(ff[2])
		if err != nil {
			return nil, nil, err
		}
	}
	// Card 5 (optional): RHS descriptor.
	if rhscrd > 0 {
		if _, err := card(); err != nil {
			return nil, nil, err
		}
	}

	colPtrS, err := readFixed(br, ptrFmt, ncol+1)
	if err != nil {
		return nil, nil, err
	}
	rowIndS, err := readFixed(br, indFmt, nnz)
	if err != nil {
		return nil, nil, err
	}
	colPtr := make([]int, ncol+1)
	for i, s := range colPtrS {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, nil, fmt.Errorf("mm: bad HB pointer %q", s)
		}
		colPtr[i] = v
	}
	if colPtr[0] != 1 || colPtr[ncol]-1 != nnz {
		return nil, nil, fmt.Errorf("mm: inconsistent HB pointers (first %d, last %d, nnz %d)",
			colPtr[0], colPtr[ncol], nnz)
	}
	vals := make([]float64, nnz)
	for i := range vals {
		vals[i] = 1
	}
	if valued && valcrd > 0 {
		want := nnz
		if complexVals {
			want = 2 * nnz
		}
		valS, err := readFixed(br, valFmt, want)
		if err != nil {
			return nil, nil, err
		}
		for i := 0; i < nnz; i++ {
			if complexVals {
				re, err1 := fortranFloat(valS[2*i])
				im, err2 := fortranFloat(valS[2*i+1])
				if err1 != nil || err2 != nil {
					return nil, nil, fmt.Errorf("mm: bad HB complex value at %d", i)
				}
				vals[i] = abs2(re, im)
			} else {
				v, err := fortranFloat(valS[i])
				if err != nil {
					return nil, nil, fmt.Errorf("mm: bad HB value %q", valS[i])
				}
				if v < 0 {
					v = -v
				}
				vals[i] = v
			}
		}
	}

	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	weights := make(map[int64]float64)
	minPos := 0.0
	b := graph.NewBuilder(nrow)
	idx := 0
	for col := 0; col < ncol; col++ {
		for p := colPtr[col]; p < colPtr[col+1]; p++ {
			rs := rowIndS[idx]
			idx++
			row, err := strconv.Atoi(rs)
			if err != nil || row < 1 || row > nrow {
				return nil, nil, fmt.Errorf("mm: bad HB row index %q in column %d", rs, col+1)
			}
			if row-1 == col {
				continue
			}
			b.AddEdge(row-1, col)
			w := vals[p-1]
			k := key(row-1, col)
			if w > weights[k] {
				weights[k] = w
			}
			if w > 0 && (minPos == 0 || w < minPos) {
				minPos = w
			}
		}
	}
	if minPos == 0 {
		minPos = 1
	}
	g := b.Build()
	weight := func(u, v int) float64 {
		if w := weights[key(u, v)]; w > 0 {
			return w
		}
		return minPos
	}
	return g, weight, nil
}

func abs2(re, im float64) float64 {
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if re == 0 {
		return im
	}
	if im == 0 {
		return re
	}
	// hypot without importing math twice; precision is irrelevant for
	// ordering weights.
	if re < im {
		re, im = im, re
	}
	r := im / re
	return re * sqrt1p(r*r)
}

func sqrt1p(x float64) float64 {
	// Newton iteration for sqrt(1+x), x ∈ [0,1]; three steps suffice for
	// weight purposes.
	y := 1 + x/2
	for i := 0; i < 3; i++ {
		y = 0.5 * (y + (1+x)/y)
	}
	return y
}
