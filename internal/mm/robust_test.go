package mm

import (
	"strings"
	"testing"
)

const robustBody = `%%MatrixMarket matrix coordinate real symmetric
% a comment line
4 4 4
2 1 1.5
3 2 -2.0
4 3 0.5
4 4 9.0
`

// Every reader must accept CRLF line endings — files prepared on Windows —
// and files whose final line is not newline-terminated.
func TestReadersTolerateCRLFAndMissingFinalNewline(t *testing.T) {
	variants := map[string]string{
		"unix":              robustBody,
		"crlf":              strings.ReplaceAll(robustBody, "\n", "\r\n"),
		"no final newline":  strings.TrimSuffix(robustBody, "\n"),
		"crlf, no final nl": strings.TrimSuffix(strings.ReplaceAll(robustBody, "\n", "\r\n"), "\r\n"),
	}
	for name, body := range variants {
		g, err := ReadGraph(strings.NewReader(body))
		if err != nil {
			t.Fatalf("ReadGraph(%s): %v", name, err)
		}
		if g.N() != 4 || g.M() != 3 {
			t.Fatalf("ReadGraph(%s): n=%d m=%d, want 4/3", name, g.N(), g.M())
		}
		gw, weight, err := ReadWeighted(strings.NewReader(body))
		if err != nil {
			t.Fatalf("ReadWeighted(%s): %v", name, err)
		}
		if gw.N() != 4 || gw.M() != 3 {
			t.Fatalf("ReadWeighted(%s): n=%d m=%d, want 4/3", name, gw.N(), gw.M())
		}
		if w := weight(1, 0); w != 1.5 {
			t.Fatalf("ReadWeighted(%s): weight(1,0) = %v, want 1.5", name, w)
		}
		if w := weight(2, 1); w != 2.0 {
			t.Fatalf("ReadWeighted(%s): weight(2,1) = %v, want |−2.0|", name, w)
		}
	}
}

// A file that declares more entries than it contains must fail with a
// truncation error, not hang or succeed silently.
func TestReadersRejectTruncatedFile(t *testing.T) {
	truncated := `%%MatrixMarket matrix coordinate pattern symmetric
5 5 10
2 1
3 1
`
	if _, err := ReadGraph(strings.NewReader(truncated)); err == nil {
		t.Fatal("ReadGraph accepted a truncated file")
	} else if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "expected") {
		t.Fatalf("ReadGraph truncation error unhelpful: %v", err)
	}
	if _, _, err := ReadWeighted(strings.NewReader(truncated)); err == nil {
		t.Fatal("ReadWeighted accepted a truncated file")
	}
	// Truncation right after the size line, without a trailing newline.
	if _, err := ReadGraph(strings.NewReader("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2")); err == nil {
		t.Fatal("ReadGraph accepted a file with no entries for nnz=2")
	}
	// Truncation before the size line.
	if _, err := ReadGraph(strings.NewReader("%%MatrixMarket matrix coordinate pattern symmetric\n% only comments")); err == nil {
		t.Fatal("ReadGraph accepted a file with no size line")
	}
}

// CRLF must also survive a WriteGraph → ReadGraph round trip when the
// written bytes are re-encoded with Windows line endings.
func TestRoundTripThroughCRLF(t *testing.T) {
	g, err := ReadGraph(strings.NewReader(robustBody))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	crlf := strings.ReplaceAll(sb.String(), "\n", "\r\n")
	g2, err := ReadGraph(strings.NewReader(crlf))
	if err != nil {
		t.Fatalf("re-reading CRLF-encoded output: %v", err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
}
