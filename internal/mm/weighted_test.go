package mm

import (
	"strings"
	"testing"
)

func TestReadWeightedReal(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
4 4 6
1 1 4.0
2 1 -2.5
3 2 1.5
4 3 -0.5
3 3 4.0
4 4 4.0
`
	g, w, err := ReadWeighted(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if got := w(0, 1); got != 2.5 {
		t.Errorf("w(0,1) = %v, want 2.5 (absolute value)", got)
	}
	if got := w(1, 0); got != 2.5 {
		t.Errorf("weight not symmetric: %v", got)
	}
	if got := w(1, 2); got != 1.5 {
		t.Errorf("w(1,2) = %v", got)
	}
	if got := w(2, 3); got != 0.5 {
		t.Errorf("w(2,3) = %v", got)
	}
}

func TestReadWeightedPatternUnitWeights(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 3
2 1
3 1
3 3
`
	g, w, err := ReadWeighted(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d", g.M())
	}
	if w(0, 1) != 1 || w(0, 2) != 1 {
		t.Fatal("pattern weights not unit")
	}
}

func TestReadWeightedZeroEntryGetsPositiveWeight(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
2 1 0.0
3 2 0.25
1 1 1.0
`
	g, w, err := ReadWeighted(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d", g.M())
	}
	// The explicitly-zero stored entry must still get a positive weight
	// (the smallest positive magnitude present: 0.25).
	if got := w(0, 1); got != 0.25 {
		t.Fatalf("w(0,1) = %v, want fallback 0.25", got)
	}
}

func TestReadWeightedComplexUsesModulus(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate complex hermitian
2 2 2
1 1 1.0 0.0
2 1 3.0 4.0
`
	g, w, err := ReadWeighted(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d", g.M())
	}
	if got := w(0, 1); got != 5 {
		t.Fatalf("w = %v, want |3+4i| = 5", got)
	}
}

func TestReadWeightedErrors(t *testing.T) {
	cases := map[string]string{
		"missing value": "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1\n",
		"bad value":     "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 xyz\n",
		"not square":    "%%MatrixMarket matrix coordinate real symmetric\n2 3 0\n",
		"array":         "%%MatrixMarket matrix array real symmetric\n2 2\n",
	}
	for name, in := range cases {
		if _, _, err := ReadWeighted(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
