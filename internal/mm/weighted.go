package mm

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// ReadWeighted parses a Matrix Market coordinate file keeping the entry
// magnitudes: it returns the pattern graph together with a symmetric
// weight function weight(u,v) = |a_uv| suitable for the weighted spectral
// ordering (core.WeightedSpectral). Pattern files get unit weights;
// duplicate entries keep the last value; for "general" matrices the
// magnitudes of a_uv and a_vu may differ, in which case the larger wins.
// Zero-valued stored entries receive the smallest positive stored
// magnitude so the weight function stays positive on the pattern.
func ReadWeighted(r io.Reader) (*graph.Graph, func(u, v int) float64, error) {
	lr := newLineReader(r)
	header, err := lr.next()
	if err != nil {
		return nil, nil, fmt.Errorf("mm: reading header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, nil, fmt.Errorf("mm: not a Matrix Market file: %q", strings.TrimSpace(header))
	}
	if fields[2] != "coordinate" {
		return nil, nil, fmt.Errorf("mm: only coordinate format supported, got %q", fields[2])
	}
	valType := fields[3]
	hasValues := valType == "real" || valType == "integer" || valType == "complex"

	sizeLine, err := lr.sizeLine()
	if err != nil {
		return nil, nil, err
	}
	var rows, cols, nnz int
	if _, err := fmt.Sscan(sizeLine, &rows, &cols, &nnz); err != nil {
		return nil, nil, fmt.Errorf("mm: bad size line %q: %w", sizeLine, err)
	}
	if rows != cols {
		return nil, nil, fmt.Errorf("mm: matrix is %dx%d, want square", rows, cols)
	}

	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	weights := make(map[int64]float64, nnz)
	b := graph.NewBuilder(rows)
	read := 0
	minPos := math.Inf(1)
	for read < nnz {
		line, err := lr.next()
		if err != nil {
			if err == io.EOF {
				return nil, nil, fmt.Errorf("mm: expected %d entries, got %d (truncated file?)", nnz, read)
			}
			return nil, nil, fmt.Errorf("mm: %w", err)
		}
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "%") {
			continue
		}
		f := strings.Fields(t)
		if len(f) < 2 {
			return nil, nil, fmt.Errorf("mm: bad entry line %q", t)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("mm: bad indices in %q", t)
		}
		if i < 1 || i > rows || j < 1 || j > rows {
			return nil, nil, fmt.Errorf("mm: entry (%d,%d) out of range [1,%d]", i, j, rows)
		}
		w := 1.0
		if hasValues {
			if len(f) < 3 {
				return nil, nil, fmt.Errorf("mm: missing value in %q", t)
			}
			v, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("mm: bad value in %q: %w", t, err)
			}
			w = math.Abs(v)
			if valType == "complex" && len(f) >= 4 {
				im, err := strconv.ParseFloat(f[3], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("mm: bad imaginary part in %q: %w", t, err)
				}
				w = math.Hypot(v, im)
			}
		}
		if i != j {
			b.AddEdge(i-1, j-1)
			k := key(i-1, j-1)
			if w > weights[k] {
				weights[k] = w
			}
			if w > 0 && w < minPos {
				minPos = w
			}
		}
		read++
	}
	if math.IsInf(minPos, 1) {
		minPos = 1
	}
	g := b.Build()
	weight := func(u, v int) float64 {
		if w := weights[key(u, v)]; w > 0 {
			return w
		}
		return minPos
	}
	return g, weight, nil
}
