package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package — the unit a Pass analyzes.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// LoadConfig parameterizes Load. The zero value loads ./... from the
// current directory with the host build configuration.
type LoadConfig struct {
	// Dir is the working directory for `go list` (any directory inside the
	// module). Empty means the process working directory.
	Dir string
	// Patterns are the go-list package patterns to analyze. Empty means
	// ./...
	Patterns []string
	// Tags are extra build tags (`go list -tags`), e.g. "integration".
	Tags []string
	// Env entries override the inherited environment for `go list` (e.g.
	// GOAMD64=v3). CGO_ENABLED=0 is always forced: the analyzers
	// type-check everything from source and never process cgo output.
	Env []string
	// NoBodies type-checks even the matched packages without function
	// bodies — used when a caller only needs export data (the fixture
	// runner preparing standard-library imports).
	NoBodies bool
	// Fset, when non-nil, is the file set to parse into; callers merging
	// several loads (fixtures plus their imports) share one.
	Fset *token.FileSet
	// Preloaded seeds the importer: packages already type-checked by an
	// earlier Load are reused instead of re-checked.
	Preloaded map[string]*types.Package
}

// LoadResult is the outcome of one Load: the packages that matched the
// patterns (fully type-checked, with bodies and TypesInfo) plus the
// types of every package in the transitive closure, for reuse as
// Preloaded in later loads.
type LoadResult struct {
	Matched []*Package
	Closure map[string]*types.Package
	Fset    *token.FileSet
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go command, then parses and type-checks
// the transitive import closure from source in dependency order.
// Dependencies are checked without function bodies (export data is all an
// importer needs); matched packages keep bodies and receive full
// types.Info. Any parse, type or list error fails the load — envlint
// refuses to report on a tree it could not fully see.
func Load(cfg LoadConfig) (*LoadResult, error) {
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	deps, err := goList(cfg, true)
	if err != nil {
		return nil, err
	}
	matchedList, err := goList(cfg, false)
	if err != nil {
		return nil, err
	}
	matched := map[string]bool{}
	for _, p := range matchedList {
		matched[p.ImportPath] = true
	}

	fset := cfg.Fset
	if fset == nil {
		fset = token.NewFileSet()
	}
	closure := map[string]*types.Package{}
	for path, tp := range cfg.Preloaded {
		closure[path] = tp
	}
	// The standard library vendors x/net, x/crypto etc. under a vendor/
	// prefix, but its sources import them by the unvendored path; register
	// each vendored package under both names.
	record := func(path string, tp *types.Package) {
		closure[path] = tp
		if trimmed, ok := strings.CutPrefix(path, "vendor/"); ok {
			closure[trimmed] = tp
		}
	}
	imp := mapImporter(closure)
	res := &LoadResult{Closure: closure, Fset: fset}

	// `go list -deps` emits dependencies before dependents, so a single
	// pass type-checks every import before it is needed.
	for _, lp := range deps {
		if lp.ImportPath == "unsafe" {
			closure["unsafe"] = types.Unsafe
			continue
		}
		if _, done := closure[lp.ImportPath]; done {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			// Assembly-only or build-constrained-empty package: nothing to
			// check, but blank importers still need a resolvable handle.
			if lp.Name != "" {
				empty := types.NewPackage(lp.ImportPath, lp.Name)
				empty.MarkComplete()
				record(lp.ImportPath, empty)
			}
			continue
		}
		files, err := parsePackage(fset, lp)
		if err != nil {
			return nil, err
		}
		withInfo := matched[lp.ImportPath] && !cfg.NoBodies
		var info *types.Info
		if withInfo {
			info = newTypesInfo()
		}
		tpkg, err := typeCheck(fset, lp.ImportPath, files, imp, !withInfo, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
		}
		record(lp.ImportPath, tpkg)
		if matched[lp.ImportPath] {
			res.Matched = append(res.Matched, &Package{
				PkgPath:   lp.ImportPath,
				Name:      lp.Name,
				Dir:       lp.Dir,
				Fset:      fset,
				Syntax:    files,
				Types:     tpkg,
				TypesInfo: info,
			})
		}
	}
	return res, nil
}

// goList shells out to `go list -json` (with -deps when deps is true) and
// decodes the JSON stream.
func goList(cfg LoadConfig, deps bool) ([]*listedPackage, error) {
	args := []string{"list", "-e", "-json=ImportPath,Name,Dir,GoFiles,Imports,Standard,Incomplete,Error"}
	if deps {
		args = append(args, "-deps")
	}
	if len(cfg.Tags) > 0 {
		args = append(args, "-tags", strings.Join(cfg.Tags, ","))
	}
	args = append(args, cfg.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	cmd.Env = append(cmd.Env, cfg.Env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s", strings.Join(cfg.Patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// parsePackage parses every listed Go file of one package, comments
// included (the directives live there).
func parsePackage(fset *token.FileSet, lp *listedPackage) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// newTypesInfo allocates the full set of type-information maps the
// analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// typeCheck runs go/types over one parsed package.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, noBodies bool, info *types.Info) (*types.Package, error) {
	var firstErr error
	conf := types.Config{
		Importer:         imp,
		IgnoreFuncBodies: noBodies,
		FakeImportC:      true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, firstErr
	}
	if err != nil {
		return nil, err
	}
	return tpkg, nil
}

// mapImporter resolves imports from an already-type-checked closure.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("analysis: import %q not in load closure", path)
}
